(* The cost-model extensions of Section 3.2, exercised one by one.

   The base MC-PERF cost is storage (alpha) + replica creation (beta).
   The extensions:
     - gamma: best-effort penalty for reads served above the threshold;
     - delta: update messages sent to every replica on a write;
     - zeta:  enabling a node for placement.

   This example shows how each term shifts the optimal placement: writes
   discourage wide replication, penalties encourage coverage beyond the
   QoS target, and opening costs concentrate replicas on few nodes.

   Run with:  dune exec examples/cost_extensions.exe *)

let system () =
  let graph =
    Topology.Graph.of_edges 5
      [ (0, 1, 120.); (1, 2, 130.); (2, 3, 110.); (3, 4, 140.); (0, 4, 150.) ]
  in
  Topology.System.make ~origin:0 graph

let demand ~write_fraction =
  let rng = Util.Prng.create ~seed:7 in
  let spec =
    {
      Workload.Synthesize.web_spec with
      nodes = 5;
      objects = 30;
      total_requests = 3_000;
      max_object_requests = 400;
      min_object_requests = 1;
    }
  in
  let trace = Workload.Synthesize.web ~rng spec in
  let trace =
    if write_fraction > 0. then
      Workload.Synthesize.with_writes ~rng ~write_fraction trace
    else trace
  in
  Workload.Demand.of_trace ~intervals:8 trace

let bound_with ~label ?(write_fraction = 0.) costs =
  let spec =
    Mcperf.Spec.make ~system:(system ()) ~demand:(demand ~write_fraction)
      ~costs
      ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 0.95 })
      ()
  in
  let r = Bounds.Pipeline.compute spec Mcperf.Classes.general in
  (match r.Bounds.Pipeline.rounded with
  | Some rr ->
    let e = rr.Rounding.Round.evaluation in
    Format.printf
      "%-32s bound %8.1f   feasible %8.1f  (storage %.0f, creation %.0f, \
       writes %.0f, penalty %.0f, opening %.0f)@."
      label r.Bounds.Pipeline.lower_bound e.Mcperf.Costing.total
      e.Mcperf.Costing.storage e.Mcperf.Costing.creation
      e.Mcperf.Costing.write_cost e.Mcperf.Costing.penalty
      e.Mcperf.Costing.open_cost
  | None ->
    Format.printf "%-32s bound %8.1f   (no feasible rounding)@." label
      r.Bounds.Pipeline.lower_bound);
  r.Bounds.Pipeline.lower_bound

let () =
  let base = Mcperf.Spec.default_costs in
  let b0 = bound_with ~label:"base (alpha=beta=1)" base in
  let b_pen =
    bound_with ~label:"+ lateness penalty (gamma=0.05)"
      { base with gamma = 0.05 }
  in
  let b_wr =
    bound_with ~label:"+ update costs (delta=1, 20% writes)" ~write_fraction:0.2
      { base with delta = 1. }
  in
  let b_open =
    bound_with ~label:"+ node opening (zeta=500)" { base with zeta = 500. }
  in
  Format.printf
    "@.every extension can only increase the inherent cost:@.  %.1f <= %.1f \
     (penalty), %.1f (writes), %.1f (opening)@."
    b0 b_pen b_wr b_open
