(* Quickstart: the library in ~60 lines.

   Build a tiny wide-area system, describe a workload and a QoS goal, and
   ask the methodology which replica placement heuristic to use.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A system: six sites; node 0 will be the best-connected node and
     therefore the origin (it stores every object permanently). *)
  let graph =
    Topology.Graph.of_edges 6
      [
        (0, 1, 120.);
        (0, 2, 140.);
        (0, 3, 180.);
        (3, 4, 110.);
        (4, 5, 130.);
        (1, 2, 100.);
      ]
  in
  let system = Topology.System.make graph in
  Format.printf "%a@." Topology.Graph.pp graph;
  Format.printf "origin (headquarters): node %d@.@."
    system.Topology.System.origin;

  (* 2. A workload: 40 objects, 5000 requests over a day, Zipf popularity,
     bucketed into 12 two-hour evaluation intervals. *)
  let rng = Util.Prng.create ~seed:42 in
  let spec_template =
    {
      Workload.Synthesize.web_spec with
      nodes = 6;
      objects = 40;
      total_requests = 5_000;
      max_object_requests = 600;
      min_object_requests = 1;
    }
  in
  let trace = Workload.Synthesize.web ~rng spec_template in
  let demand = Workload.Demand.of_trace ~intervals:12 trace in
  Format.printf "%a@.@." Workload.Demand.pp_summary demand;

  (* 3. A performance goal: 99% of each user's reads within 150 ms. *)
  let spec =
    Mcperf.Spec.make ~system ~demand
      ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 0.99 })
      ()
  in

  (* 4. Ask the methodology: rank the heuristic classes by their inherent
     cost (lower bounds), pick the cheapest feasible one. *)
  let selection = Replica_select.Methodology.select spec in
  Replica_select.Report.print_selection ~title:"Which heuristic?" selection;

  (* 5. Sanity-check the choice by deploying heuristics in simulation. *)
  (match Sim.Runner.greedy_replica ~spec () with
  | Some d ->
    Format.printf "greedy-replica:  %d replicas/object, cost %.0f@."
      d.Sim.Runner.parameter d.Sim.Runner.cost
  | None -> Format.printf "greedy-replica cannot meet the goal@.");
  (match Sim.Runner.greedy_global ~spec () with
  | Some d ->
    Format.printf "greedy-global:   capacity %d/node, cost %.0f@."
      d.Sim.Runner.parameter d.Sim.Runner.cost
  | None -> Format.printf "greedy-global cannot meet the goal@.");
  match Sim.Runner.lru_caching ~spec ~trace () with
  | Some d ->
    Format.printf "lru-caching:     capacity %d/node, cost %.0f@."
      d.Sim.Runner.parameter d.Sim.Runner.cost
  | None ->
    Format.printf
      "lru-caching cannot meet the goal at any capacity (cold misses)@."
