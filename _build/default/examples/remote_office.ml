(* The paper's Section 6.1 scenario end-to-end, at reduced scale.

   A corporation with 20 sites runs a remote-office file service on
   existing infrastructure. The designer has example workloads (WEB-like
   and GROUP-like) and a QoS goal, and must pick a placement heuristic.

   The methodology: compute the lower bound of each implementable
   heuristic class, pick the cheapest feasible class, deploy its concrete
   heuristic, and verify by simulation that the deployed cost lands above
   its class bound but below the other classes' bounds.

   Run with:  dune exec examples/remote_office.exe  (takes a few minutes) *)

module CS = Replica_select.Case_study

let study workload =
  let name = CS.workload_name workload in
  Format.printf "@.==================== %s ====================@." name;
  (* Smaller than the default case study so the example runs quickly. *)
  let cs = CS.make ~scale:0.05 workload in
  let goal = 0.999 in
  let bound_spec = CS.qos_spec cs ~fraction:goal ~for_bounds:true () in
  let sim_spec = CS.qos_spec cs ~fraction:goal ~for_bounds:false () in

  (* Step 1: rank the classes by inherent cost. *)
  let selection = Replica_select.Methodology.select bound_spec in
  Replica_select.Report.print_selection
    ~title:(Printf.sprintf "%s: class ranking at %.1f%% QoS" name (100. *. goal))
    selection;

  (* Step 2: deploy the recommended heuristic and the "obvious" default
     (LRU caching), and compare their real costs. *)
  let describe label = function
    | Some (d : Sim.Runner.deployed) ->
      Format.printf "  %-28s parameter %4d   cost %10.0f   worst QoS %.5f@."
        label d.Sim.Runner.parameter d.Sim.Runner.cost d.Sim.Runner.worst_qos;
      Some d.Sim.Runner.cost
    | None ->
      Format.printf "  %-28s cannot meet the goal@." label;
      None
  in
  Format.printf "@.deployed heuristics at %.1f%% QoS:@." (100. *. goal);
  let chosen_cost =
    match selection.Replica_select.Methodology.chosen with
    | Some { deployable = Some "greedy-global"; _ } ->
      describe "greedy-global (chosen)" (Sim.Runner.greedy_global ~spec:sim_spec ())
    | Some { deployable = Some "greedy-replica"; _ } ->
      describe "greedy-replica (chosen)"
        (Sim.Runner.greedy_replica ~spec:sim_spec ())
    | Some { deployable = Some other; _ } ->
      Format.printf "  chosen class maps to %s@." other;
      None
    | Some { deployable = None; _ } | None ->
      Format.printf "  no deployable recommendation@.";
      None
  in
  let lru_cost =
    describe "LRU caching (default)"
      (Sim.Runner.lru_caching ~spec:sim_spec ~trace:cs.CS.trace ())
  in
  match (chosen_cost, lru_cost) with
  | Some c, Some l when c > 0. ->
    Format.printf
      "@.==> choosing by the methodology instead of defaulting to caching \
       saves %.1fx@."
      (l /. c)
  | Some _, None ->
    Format.printf
      "@.==> the default (caching) cannot even meet this goal; the \
       methodology's choice can@."
  | _ -> ()

let () =
  study CS.Web;
  study CS.Group
