(* The paper's second performance metric: average latency (Section 3.1,
   constraints (7)-(10)).

   Instead of "99% of reads within 150 ms", the goal here is "each user's
   mean read latency is at most T ms". The model gains explicit route
   variables (a request is served by exactly one replica holder), and the
   rounding changes accordingly — but the methodology is identical:
   compare classes on their bounds, sweep the goal, watch where placement
   becomes mandatory.

   Run with:  dune exec examples/average_latency.exe *)

let system () =
  (* A chain: the far end (node 4) is 480 ms from the origin. *)
  let g =
    Topology.Graph.of_edges 5
      [ (0, 1, 120.); (1, 2, 120.); (2, 3, 120.); (3, 4, 120.) ]
  in
  Topology.System.make ~origin:0 g

let demand () =
  let rng = Util.Prng.create ~seed:11 in
  let spec =
    {
      Workload.Synthesize.web_spec with
      nodes = 5;
      objects = 25;
      total_requests = 2_500;
      max_object_requests = 300;
      min_object_requests = 1;
    }
  in
  Workload.Demand.of_trace ~intervals:8 (Workload.Synthesize.web ~rng spec)

let () =
  let demand = demand () in
  Format.printf "Average-latency goal sweep (general lower bound):@.";
  Format.printf "%-12s %-14s %-14s %-10s@." "T_avg (ms)" "lower bound"
    "rounded cost" "status";
  List.iter
    (fun tavg ->
      let spec =
        Mcperf.Spec.make ~system:(system ()) ~demand
          ~goal:(Mcperf.Spec.Avg_latency { tavg_ms = tavg })
          ()
      in
      let r = Bounds.Pipeline.compute spec Mcperf.Classes.general in
      if not r.Bounds.Pipeline.feasible then
        Format.printf "%-12.0f %-14s %-14s unreachable@." tavg "-" "-"
      else
        Format.printf "%-12.0f %-14.1f %-14s %s@." tavg
          r.Bounds.Pipeline.lower_bound
          (match r.Bounds.Pipeline.rounded with
          | Some rr ->
            Printf.sprintf "%.1f"
              rr.Rounding.Round.evaluation.Mcperf.Costing.total
          | None -> "-")
          (if r.Bounds.Pipeline.lower_bound = 0. then "free (origin suffices)"
           else "replicas required"))
    [ 400.; 300.; 200.; 120.; 60.; 20. ];
  Format.printf
    "@.The tighter the average-latency goal, the more object-hours of@.\
     replicas the system inherently needs; past the point where even full@.\
     replication cannot reach the goal, the sweep reports unreachable.@."
