examples/quickstart.ml: Format Mcperf Replica_select Sim Topology Util Workload
