examples/remote_office.mli:
