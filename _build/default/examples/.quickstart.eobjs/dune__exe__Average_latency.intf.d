examples/average_latency.mli:
