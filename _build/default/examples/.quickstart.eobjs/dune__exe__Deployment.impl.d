examples/deployment.ml: Bounds Format List Mcperf Replica_select Sim Workload
