examples/average_latency.ml: Bounds Format List Mcperf Printf Rounding Topology Util Workload
