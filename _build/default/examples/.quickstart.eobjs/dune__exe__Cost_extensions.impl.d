examples/cost_extensions.ml: Bounds Format Mcperf Rounding Topology Util Workload
