examples/quickstart.mli:
