examples/deployment.mli:
