examples/remote_office.ml: Format Printf Replica_select Sim
