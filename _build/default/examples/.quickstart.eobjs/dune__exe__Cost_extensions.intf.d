examples/cost_extensions.mli:
