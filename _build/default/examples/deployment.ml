(* The paper's Section 6.2 scenario: greenfield deployment.

   No file servers exist yet. Phase one solves MC-PERF with a node-opening
   cost in the objective, which selects a small set of sites to deploy.
   Phase two reassigns every site's users to the nearest deployed node and
   recomputes the class bounds on the reduced system — the right heuristic
   can change (the paper's GROUP case: caching becomes competitive once
   only a few well-placed nodes exist).

   Run with:  dune exec examples/deployment.exe *)

module CS = Replica_select.Case_study
module M = Replica_select.Methodology

let () =
  let cs = CS.make ~scale:0.05 CS.Group in
  let goal = 0.99 in
  let spec = CS.qos_spec cs ~fraction:goal ~for_bounds:true () in

  (* Phase 1: where should file servers go? *)
  match M.plan_deployment ~zeta:10_000. spec with
  | None -> Format.printf "even opening every site cannot meet the goal@."
  | Some plan ->
    Replica_select.Report.print_deployment plan;

    (* Phase 2: bounds on the reduced system. *)
    let placeable = plan.M.placeable in
    let reduced = M.reassign_demand spec plan in
    Format.printf "@.class bounds with only the deployed nodes:@.";
    List.iter
      (fun (cls : Mcperf.Classes.t) ->
        let r = Bounds.Pipeline.compute ~placeable reduced cls in
        Format.printf "  %a@." Bounds.Pipeline.pp r)
      [
        (* The per-access refinement matches the planner's own feasibility
           notion (Theorem 3); without it the hourly discretization makes
           interval-0 demand look uncoverable for any reactive scheme. *)
        Mcperf.Classes.allow_intra_interval_reaction
          Mcperf.Classes.reactive_general;
        Mcperf.Classes.storage_constrained;
        Mcperf.Classes.replica_constrained_uniform;
        Mcperf.Classes.allow_intra_interval_reaction Mcperf.Classes.caching;
      ];

    (* If caching's bound is close to the others, the designer can pick it
       for its simplicity — run it to see the real cost. *)
    let sim_spec =
      M.reassign_demand (CS.qos_spec cs ~fraction:goal ~for_bounds:false ()) plan
    in
    let trace =
      Workload.Trace.remap_nodes cs.CS.trace ~mapping:plan.M.assignment
    in
    (match Sim.Runner.lru_caching ~placeable ~spec:sim_spec ~trace () with
    | Some d ->
      Format.printf
        "@.LRU caching on the deployed nodes: capacity %d, cost %.0f, worst \
         QoS %.5f@."
        d.Sim.Runner.parameter d.Sim.Runner.cost d.Sim.Runner.worst_qos
    | None ->
      Format.printf "@.LRU caching cannot meet the goal on this deployment@.")
