(* Tests for the rounding algorithm and the lower-bound pipeline:
   feasibility of rounded solutions, validity of bounds against the exact
   IP optimum, and the methodology-level class comparisons. *)

let cell n i c : Workload.Demand.cell = { node = n; interval = i; count = c }

let line_system () =
  let g =
    Topology.Graph.of_edges 4 [ (0, 1, 100.); (1, 2, 100.); (2, 3, 100.) ]
  in
  Topology.System.make ~origin:0 g

let tail_demand () =
  Workload.Demand.create ~nodes:4 ~intervals:4 ~interval_s:3600.
    ~reads:[| [| cell 3 0 10.; cell 3 1 10.; cell 3 2 10.; cell 3 3 10. |] |]
    ()

let qos_spec ?(fraction = 1.0) () =
  Mcperf.Spec.make ~system:(line_system ()) ~demand:(tail_demand ())
    ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction })
    ()

(* --- rounding on the fixture ------------------------------------------- *)

let round_class spec cls =
  let perm = Mcperf.Permission.compute spec cls in
  let model = Mcperf.Model.build perm in
  match Lp.Simplex.solve model.Mcperf.Model.problem with
  | Lp.Simplex.Optimal { x; objective } -> (perm, model, x, objective)
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
    Alcotest.fail "fixture LP should solve"

let test_rounding_integral_lp () =
  (* The general LP optimum on the fixture is already integral; rounding
     must return it unchanged: cost 5, no rounding steps. *)
  let perm, model, x, _ = round_class (qos_spec ()) Mcperf.Classes.general in
  match Rounding.Round.round model ~x with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check (float 1e-6)) "cost" 5.
      r.Rounding.Round.evaluation.Mcperf.Costing.total;
    Alcotest.(check bool) "meets goal" true
      r.Rounding.Round.evaluation.Mcperf.Costing.meets_goal;
    Alcotest.(check bool) "respects permissions" true
      (Mcperf.Costing.respects_permissions perm r.Rounding.Round.placement)

let test_rounding_fractional_lp () =
  (* At 75% QoS the LP is fractional (0.75 everywhere); rounding must
     produce a feasible integral placement costing >= the bound. *)
  let perm, model, x, lp = round_class (qos_spec ~fraction:0.75 ()) Mcperf.Classes.general in
  match Rounding.Round.round model ~x with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let cost = r.Rounding.Round.evaluation.Mcperf.Costing.total in
    Alcotest.(check bool) "meets goal" true
      r.Rounding.Round.evaluation.Mcperf.Costing.meets_goal;
    Alcotest.(check bool) "cost at least the LP bound" true (cost >= lp -. 1e-6);
    Alcotest.(check bool) "rounded something" true
      (r.Rounding.Round.rounded_up + r.Rounding.Round.rounded_down > 0);
    Alcotest.(check bool) "permissions" true
      (Mcperf.Costing.respects_permissions perm r.Rounding.Round.placement);
    (* Integral optimum at 75% is 4 (3 intervals + 1 create). *)
    Alcotest.(check (float 1e-6)) "optimal integral rounding" 4. cost

let test_rounding_sc_padding_charged () =
  let _, model, x, lp =
    round_class (qos_spec ()) Mcperf.Classes.storage_constrained
  in
  match Rounding.Round.round model ~x with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let e = r.Rounding.Round.evaluation in
    Alcotest.(check bool) "padding charged" true
      (e.Mcperf.Costing.sc_padding > 0.);
    Alcotest.(check bool) "cost >= bound" true
      (e.Mcperf.Costing.total >= lp -. 1e-6)

let test_rounding_rejects_avg_goal () =
  let spec =
    Mcperf.Spec.make ~system:(line_system ()) ~demand:(tail_demand ())
      ~goal:(Mcperf.Spec.Avg_latency { tavg_ms = 150. })
      ()
  in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
  let model = Mcperf.Model.build perm in
  let x = Array.make (Lp.Problem.nvars model.Mcperf.Model.problem) 0. in
  match Rounding.Round.round model ~x with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "avg-latency rounding should be rejected"

(* --- pipeline ------------------------------------------------------------ *)

let test_pipeline_general_exact () =
  let r = Bounds.Pipeline.compute (qos_spec ()) Mcperf.Classes.general in
  Alcotest.(check bool) "feasible" true r.Bounds.Pipeline.feasible;
  Alcotest.(check bool) "exact" true r.Bounds.Pipeline.exact;
  Alcotest.(check (float 1e-6)) "bound" 5. r.Bounds.Pipeline.lower_bound;
  (match r.Bounds.Pipeline.gap with
  | Some g -> Alcotest.(check (float 1e-6)) "zero gap" 0. g
  | None -> Alcotest.fail "expected a gap");
  match r.Bounds.Pipeline.rounded with
  | Some rr ->
    Alcotest.(check (float 1e-6)) "rounded cost" 5.
      rr.Rounding.Round.evaluation.Mcperf.Costing.total
  | None -> Alcotest.fail "expected a rounded solution"

let test_pipeline_detects_infeasible_class () =
  let r = Bounds.Pipeline.compute (qos_spec ()) Mcperf.Classes.caching in
  Alcotest.(check bool) "caching infeasible at 100%" false
    r.Bounds.Pipeline.feasible;
  Alcotest.(check (float 1e-9)) "ceiling 0.75" 0.75
    r.Bounds.Pipeline.max_feasible_qos;
  Alcotest.(check bool) "bound is +inf" true
    (r.Bounds.Pipeline.lower_bound = infinity)

let test_pipeline_caching_at_75 () =
  let r =
    Bounds.Pipeline.compute (qos_spec ~fraction:0.75 ()) Mcperf.Classes.caching
  in
  Alcotest.(check bool) "feasible" true r.Bounds.Pipeline.feasible;
  (* Caching (uniform SC): stores on node 3 for intervals 1-3, capacity 1
     on all three sites. LP splits nothing here (only node 3 can store). *)
  Alcotest.(check bool) "bound positive" true (r.Bounds.Pipeline.lower_bound > 0.)

let test_pipeline_first_order_agrees () =
  let spec = qos_spec () in
  let exact =
    Bounds.Pipeline.compute ~solver:Bounds.Pipeline.Exact_simplex spec
      Mcperf.Classes.general
  in
  let fo =
    Bounds.Pipeline.compute
      ~solver:
        (Bounds.Pipeline.First_order
           { Lp.Pdhg.default_options with max_iters = 60_000; rel_tol = 1e-7 })
      spec Mcperf.Classes.general
  in
  Alcotest.(check bool) "first-order bound is valid" true
    (fo.Bounds.Pipeline.lower_bound
    <= exact.Bounds.Pipeline.lower_bound +. 1e-4);
  Alcotest.(check bool) "first-order bound is tight here" true
    (Float.abs
       (fo.Bounds.Pipeline.lower_bound -. exact.Bounds.Pipeline.lower_bound)
    < 0.01)

let test_best_class () =
  let spec = qos_spec () in
  let results =
    Bounds.Pipeline.compare_classes spec
      [
        Mcperf.Classes.caching;
        Mcperf.Classes.general;
        Mcperf.Classes.storage_constrained;
      ]
  in
  match Bounds.Pipeline.best_class results with
  | Some best ->
    Alcotest.(check string) "general wins" "general"
      best.Bounds.Pipeline.class_name
  | None -> Alcotest.fail "expected a best class"


(* --- average-latency rounding ------------------------------------------- *)

let avg_spec ~tavg () =
  Mcperf.Spec.make ~system:(line_system ()) ~demand:(tail_demand ())
    ~goal:(Mcperf.Spec.Avg_latency { tavg_ms = tavg })
    ()

let test_avg_pipeline_end_to_end () =
  (* Node 3's only alternative to a local replica is the 300 ms origin; an
     average goal of 150 ms needs replicas at least half the time. *)
  let r = Bounds.Pipeline.compute (avg_spec ~tavg:150. ()) Mcperf.Classes.general in
  Alcotest.(check bool) "feasible" true r.Bounds.Pipeline.feasible;
  Alcotest.(check bool) "bound positive" true (r.Bounds.Pipeline.lower_bound > 0.);
  match r.Bounds.Pipeline.rounded with
  | None -> Alcotest.fail "expected an avg rounding"
  | Some rr ->
    let e = rr.Rounding.Round.evaluation in
    Alcotest.(check bool) "meets avg goal" true e.Mcperf.Costing.meets_goal;
    Alcotest.(check bool) "cost at least the bound" true
      (e.Mcperf.Costing.total >= r.Bounds.Pipeline.lower_bound -. 1e-6)

let test_avg_loose_goal_is_free () =
  (* With tavg = 300 the origin alone meets the goal: bound 0, empty
     rounding. *)
  let r = Bounds.Pipeline.compute (avg_spec ~tavg:300. ()) Mcperf.Classes.general in
  Alcotest.(check (float 1e-6)) "free" 0. r.Bounds.Pipeline.lower_bound;
  match r.Bounds.Pipeline.rounded with
  | Some rr ->
    Alcotest.(check (float 1e-6)) "rounded is free too" 0.
      rr.Rounding.Round.evaluation.Mcperf.Costing.total
  | None -> Alcotest.fail "expected a rounding"

let test_avg_rounding_respects_permissions () =
  let spec = avg_spec ~tavg:150. () in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.cooperative_caching in
  if Mcperf.Permission.feasible perm then begin
    let model = Mcperf.Model.build perm in
    match Lp.Simplex.solve model.Mcperf.Model.problem with
    | Lp.Simplex.Optimal { x; _ } -> (
      match Rounding.Round_avg.round model ~x with
      | Ok rr ->
        Alcotest.(check bool) "permissions" true
          (Mcperf.Costing.respects_permissions perm rr.Rounding.Round.placement)
      | Error _ -> () (* the class may be unable to meet the goal *))
    | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> ()
  end

(* --- randomized validation against the exact IP --------------------------- *)

let random_scenario rng =
  let nodes = 4 + Util.Prng.int rng 3 in
  let g =
    Topology.Generate.as_like ~rng ~nodes
      ~latency:Topology.Generate.default_hop_latency ()
  in
  let sys = Topology.System.make g in
  let intervals = 3 + Util.Prng.int rng 3 in
  let objects = 1 + Util.Prng.int rng 2 in
  let reads =
    Array.init objects (fun _ ->
        let ncells = 1 + Util.Prng.int rng 5 in
        let tbl = Hashtbl.create 8 in
        for _ = 1 to ncells do
          let n = Util.Prng.int rng nodes and i = Util.Prng.int rng intervals in
          let c = float_of_int (1 + Util.Prng.int rng 20) in
          let prev = Option.value (Hashtbl.find_opt tbl (i, n)) ~default:0. in
          Hashtbl.replace tbl (i, n) (prev +. c)
        done;
        let cells =
          Hashtbl.fold (fun (i, n) c acc -> cell n i c :: acc) tbl []
        in
        let arr = Array.of_list cells in
        Array.sort
          (fun (a : Workload.Demand.cell) b ->
            match compare a.interval b.interval with
            | 0 -> compare a.node b.node
            | c -> c)
          arr;
        arr)
  in
  let demand =
    Workload.Demand.create ~nodes ~intervals ~interval_s:3600. ~reads ()
  in
  let fraction = 0.5 +. (0.5 *. Util.Prng.float rng 1.) in
  Mcperf.Spec.make ~system:sys ~demand
    ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction })
    ()

let classes_under_test =
  [
    Mcperf.Classes.general;
    Mcperf.Classes.storage_constrained;
    Mcperf.Classes.replica_constrained;
    Mcperf.Classes.cooperative_caching;
    Mcperf.Classes.caching;
  ]

let prop_bound_sandwich =
  QCheck2.Test.make ~count:25
    ~name:"LP bound <= IP optimum <= rounded cost on random scenarios"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed in
      let spec = random_scenario rng in
      List.for_all
        (fun cls ->
          let perm = Mcperf.Permission.compute spec cls in
          if not (Mcperf.Permission.feasible perm) then true
          else begin
            let model = Mcperf.Model.build perm in
            match Lp.Simplex.solve model.Mcperf.Model.problem with
            | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> false
            | Lp.Simplex.Optimal { x; objective = lp } -> (
              match Rounding.Round.round model ~x with
              | Error _ -> false
              | Ok r ->
                let e = r.Rounding.Round.evaluation in
                let ip_ok =
                  if Lp.Problem.nvars model.Mcperf.Model.problem > 80 then true
                  else
                    match
                      Ipsolve.Branch_bound.solve ~max_nodes:20_000
                        model.Mcperf.Model.problem
                    with
                    | Ipsolve.Branch_bound.Optimal { objective = ip; _ } ->
                      lp <= ip +. 1e-6
                    | Ipsolve.Branch_bound.Node_limit _ -> true
                    | Ipsolve.Branch_bound.Infeasible -> false
                in
                e.Mcperf.Costing.meets_goal
                && Mcperf.Costing.respects_permissions perm
                     r.Rounding.Round.placement
                && e.Mcperf.Costing.total >= lp -. 1e-6
                && ip_ok)
          end)
        classes_under_test)

let prop_general_is_weakest_bound =
  QCheck2.Test.make ~count:25
    ~name:"general bound <= every feasible class bound"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 31) in
      let spec = random_scenario rng in
      let bound cls =
        let r =
          Bounds.Pipeline.compute ~solver:Bounds.Pipeline.Exact_simplex spec
            cls
        in
        if r.Bounds.Pipeline.feasible then Some r.Bounds.Pipeline.lower_bound
        else None
      in
      match bound Mcperf.Classes.general with
      | None -> false (* the general class can always meet a feasible goal? *)
      | Some g ->
        List.for_all
          (fun cls ->
            match bound cls with
            | None -> true
            | Some b -> b >= g -. 1e-6)
          (List.tl classes_under_test))

let prop_pdhg_bound_valid_on_mcperf =
  QCheck2.Test.make ~count:15
    ~name:"first-order certified bound <= exact LP optimum on MC-PERF"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 77) in
      let spec = random_scenario rng in
      let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
      if not (Mcperf.Permission.feasible perm) then true
      else begin
        let model = Mcperf.Model.build perm in
        match Lp.Simplex.solve model.Mcperf.Model.problem with
        | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> false
        | Lp.Simplex.Optimal { objective = lp; _ } ->
          let out =
            Lp.Pdhg.solve
              ~options:
                { Lp.Pdhg.default_options with max_iters = 20_000; rel_tol = 1e-6 }
              model.Mcperf.Model.problem
          in
          out.Lp.Pdhg.best_bound <= lp +. 1e-5
      end)


(* --- Lagrangian decomposition bound -------------------------------------- *)

let test_lagrangian_on_fixture () =
  (* LP optimum on the fixture is 5; the Lagrangian dual should approach
     it from below and never exceed it. *)
  let spec = qos_spec () in
  let out = Bounds.Lagrangian.bound ~iterations:200 spec Mcperf.Classes.general in
  Alcotest.(check bool) "valid" true (out.Bounds.Lagrangian.bound <= 5. +. 1e-6);
  Alcotest.(check bool) "nontrivial" true (out.Bounds.Lagrangian.bound > 2.);
  Alcotest.(check bool) "solved exactly" true
    (out.Bounds.Lagrangian.subproblems_exact > 0)

let test_lagrangian_infeasible_class () =
  let out = Bounds.Lagrangian.bound (qos_spec ()) Mcperf.Classes.caching in
  Alcotest.(check bool) "infinite" true (out.Bounds.Lagrangian.bound = infinity)

let test_lagrangian_rejects_avg () =
  let spec =
    Mcperf.Spec.make ~system:(line_system ()) ~demand:(tail_demand ())
      ~goal:(Mcperf.Spec.Avg_latency { tavg_ms = 150. })
      ()
  in
  Alcotest.check_raises "avg rejected"
    (Invalid_argument "Lagrangian.bound: requires a QoS goal") (fun () ->
      ignore (Bounds.Lagrangian.bound spec Mcperf.Classes.general))

let prop_lagrangian_below_lp =
  QCheck2.Test.make ~count:15
    ~name:"lagrangian dual <= exact LP optimum on random scenarios"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 5) in
      let spec = random_scenario rng in
      List.for_all
        (fun cls ->
          let perm = Mcperf.Permission.compute spec cls in
          if not (Mcperf.Permission.feasible perm) then true
          else begin
            let model = Mcperf.Model.build perm in
            match Lp.Simplex.solve model.Mcperf.Model.problem with
            | Lp.Simplex.Optimal { objective = lp; _ } ->
              let out = Bounds.Lagrangian.bound ~iterations:30 spec cls in
              out.Bounds.Lagrangian.bound <= lp +. 1e-5
            | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> false
          end)
        [ Mcperf.Classes.general; Mcperf.Classes.replica_constrained;
          Mcperf.Classes.cooperative_caching ])

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_bound_sandwich;
        prop_general_is_weakest_bound;
        prop_pdhg_bound_valid_on_mcperf;
        prop_lagrangian_below_lp;
      ]
  in
  Alcotest.run "bounds"
    [
      ( "rounding",
        [
          Alcotest.test_case "integral LP passthrough" `Quick
            test_rounding_integral_lp;
          Alcotest.test_case "fractional LP" `Quick test_rounding_fractional_lp;
          Alcotest.test_case "sc padding" `Quick
            test_rounding_sc_padding_charged;
          Alcotest.test_case "rejects avg goal" `Quick
            test_rounding_rejects_avg_goal;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "general exact" `Quick test_pipeline_general_exact;
          Alcotest.test_case "infeasible class" `Quick
            test_pipeline_detects_infeasible_class;
          Alcotest.test_case "caching at 75%" `Quick test_pipeline_caching_at_75;
          Alcotest.test_case "first-order agrees" `Quick
            test_pipeline_first_order_agrees;
          Alcotest.test_case "best class" `Quick test_best_class;
        ] );
      ( "lagrangian",
        [
          Alcotest.test_case "fixture" `Quick test_lagrangian_on_fixture;
          Alcotest.test_case "infeasible class" `Quick
            test_lagrangian_infeasible_class;
          Alcotest.test_case "rejects avg" `Quick test_lagrangian_rejects_avg;
        ] );
      ( "avg-latency",
        [
          Alcotest.test_case "pipeline end-to-end" `Quick
            test_avg_pipeline_end_to_end;
          Alcotest.test_case "loose goal free" `Quick test_avg_loose_goal_is_free;
          Alcotest.test_case "permissions" `Quick
            test_avg_rounding_respects_permissions;
        ] );
      ("properties", props);
    ]
