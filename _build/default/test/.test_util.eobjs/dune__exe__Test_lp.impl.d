test/test_lp.ml: Alcotest Array Float List Lp QCheck2 QCheck_alcotest Util
