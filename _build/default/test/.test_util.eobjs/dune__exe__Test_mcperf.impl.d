test/test_mcperf.ml: Alcotest Array Float Ipsolve List Lp Mcperf Topology Workload
