test/test_bounds.ml: Alcotest Array Bounds Float Hashtbl Ipsolve List Lp Mcperf Option QCheck2 QCheck_alcotest Rounding Topology Util Workload
