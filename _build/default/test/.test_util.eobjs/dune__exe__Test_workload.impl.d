test/test_workload.ml: Alcotest Array Filename Float Fun QCheck2 QCheck_alcotest String Sys Util Workload
