test/test_topology.ml: Alcotest Array Filename List Printf QCheck2 QCheck_alcotest Sys Topology Util
