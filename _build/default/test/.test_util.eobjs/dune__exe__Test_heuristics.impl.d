test/test_heuristics.ml: Alcotest Array Bounds Float Heuristics List Mcperf QCheck2 QCheck_alcotest Sim Topology Util Workload
