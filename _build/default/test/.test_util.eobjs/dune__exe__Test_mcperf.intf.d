test/test_mcperf.mli:
