test/test_core.ml: Alcotest Array Bounds Filename Float List Mcperf Printf Replica_select String Sys Topology Workload
