(* Tests for the MC-PERF core: permission analysis (constraints (20),
   (20a), (21)), model assembly (constraints (2)-(19)), cost accounting,
   and the NP-hardness reduction of Theorem 1. *)

let cell n i c : Workload.Demand.cell = { node = n; interval = i; count = c }

(* Line topology 0 -- 1 -- 2 -- 3 with 100 ms hops, origin at node 0,
   Tlat = 150 ms: each node reaches only itself and its direct
   neighbours. *)
let line_system () =
  let g =
    Topology.Graph.of_edges 4 [ (0, 1, 100.); (1, 2, 100.); (2, 3, 100.) ]
  in
  Topology.System.make ~origin:0 g

(* Single object, read by node 3 in all four intervals. *)
let tail_demand () =
  Workload.Demand.create ~nodes:4 ~intervals:4 ~interval_s:3600.
    ~reads:[| [| cell 3 0 10.; cell 3 1 10.; cell 3 2 10.; cell 3 3 10. |] |]
    ()

let qos_spec ?(fraction = 1.0) ?costs () =
  Mcperf.Spec.make ~system:(line_system ()) ~demand:(tail_demand ()) ?costs
    ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction })
    ()

(* --- spec validation --------------------------------------------------- *)

let test_spec_validation () =
  Alcotest.check_raises "node mismatch"
    (Invalid_argument "Spec.make: system and demand disagree on node count")
    (fun () ->
      let d =
        Workload.Demand.create ~nodes:2 ~intervals:1 ~interval_s:1.
          ~reads:[| [| cell 0 0 1. |] |] ()
      in
      ignore
        (Mcperf.Spec.make ~system:(line_system ()) ~demand:d
           ~goal:(Mcperf.Spec.Qos { tlat_ms = 1.; fraction = 1. })
           ()));
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Spec.make: QoS fraction must be in [0, 1]") (fun () ->
      ignore
        (Mcperf.Spec.make ~system:(line_system ()) ~demand:(tail_demand ())
           ~goal:(Mcperf.Spec.Qos { tlat_ms = 1.; fraction = 1.5 })
           ()))

(* --- permission masks --------------------------------------------------- *)

let test_permission_general () =
  let spec = qos_spec () in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
  (* Node 1 cannot help node 3 (200 ms), so it has no store support. *)
  Alcotest.(check bool) "node 1 pruned" false
    (Mcperf.Permission.store_possible perm ~node:1 ~interval:0 ~object_id:0);
  (* Nodes 2 and 3 can cover node 3 from interval 0 (proactive, global). *)
  Alcotest.(check bool) "node 2 interval 0" true
    (Mcperf.Permission.store_possible perm ~node:2 ~interval:0 ~object_id:0);
  Alcotest.(check bool) "node 3 interval 0" true
    (Mcperf.Permission.store_possible perm ~node:3 ~interval:0 ~object_id:0);
  (* The origin never receives placement variables. *)
  Alcotest.(check bool) "origin pruned" false
    (Mcperf.Permission.store_possible perm ~node:0 ~interval:0 ~object_id:0)

let test_permission_caching_reactive () =
  let spec = qos_spec () in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.caching in
  (* Reactive, window 1, local knowledge: node 3 may create only at
     intervals following its own accesses (1, 2, 3 — not 0). *)
  Alcotest.(check bool) "no create at 0" false
    (Mcperf.Permission.create_allowed perm ~node:3 ~interval:0 ~object_id:0);
  Alcotest.(check bool) "create at 1" true
    (Mcperf.Permission.create_allowed perm ~node:3 ~interval:1 ~object_id:0);
  Alcotest.(check bool) "store holds from 1" true
    (Mcperf.Permission.store_possible perm ~node:3 ~interval:3 ~object_id:0);
  Alcotest.(check bool) "no store at 0" false
    (Mcperf.Permission.store_possible perm ~node:3 ~interval:0 ~object_id:0);
  (* Local routing: node 2's replica is unreachable for node 3, so node 2
     has no store support at all. *)
  Alcotest.(check bool) "node 2 pruned under local routing" false
    (Mcperf.Permission.store_possible perm ~node:2 ~interval:1 ~object_id:0)

let test_permission_cooperative_window () =
  let spec = qos_spec () in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.cooperative_caching in
  (* Global knowledge, reactive window 1: node 2 may create at i+1 after
     anyone's access at i. *)
  Alcotest.(check bool) "node 2 create at 1" true
    (Mcperf.Permission.create_allowed perm ~node:2 ~interval:1 ~object_id:0);
  Alcotest.(check bool) "node 2 no create at 0" false
    (Mcperf.Permission.create_allowed perm ~node:2 ~interval:0 ~object_id:0)

let test_permission_prefetch_proactive () =
  let spec = qos_spec () in
  let perm =
    Mcperf.Permission.compute spec Mcperf.Classes.cooperative_caching_prefetch
  in
  (* Proactive window 1: the current interval's accesses are usable. *)
  Alcotest.(check bool) "create at 0" true
    (Mcperf.Permission.create_allowed perm ~node:2 ~interval:0 ~object_id:0)

let test_max_feasible_qos () =
  let spec = qos_spec () in
  (* General class: everything coverable. *)
  let perm_gen = Mcperf.Permission.compute spec Mcperf.Classes.general in
  let q = Mcperf.Permission.max_feasible_qos perm_gen in
  Alcotest.(check (float 1e-9)) "general covers all" 1. q.(3);
  (* Caching: interval 0's read is a cold miss 300 ms from the origin. *)
  let perm_cache = Mcperf.Permission.compute spec Mcperf.Classes.caching in
  let q = Mcperf.Permission.max_feasible_qos perm_cache in
  Alcotest.(check (float 1e-9)) "caching cold-miss ceiling" 0.75 q.(3);
  Alcotest.(check bool) "caching infeasible at 100%" false
    (Mcperf.Permission.feasible perm_cache)

(* --- exact bounds on the hand-computed fixture -------------------------- *)

let simplex_bound spec cls =
  let perm = Mcperf.Permission.compute spec cls in
  let model = Mcperf.Model.build perm in
  match Lp.Simplex.solve model.Mcperf.Model.problem with
  | Lp.Simplex.Optimal { x; objective } ->
    (model, x, objective +. model.Mcperf.Model.objective_offset)
  | Lp.Simplex.Infeasible -> Alcotest.fail "unexpected LP infeasibility"
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected unbounded LP"

let test_general_bound_exact () =
  (* Cover node 3's four reads with one replica held for four intervals:
     4 alpha + 1 beta = 5. *)
  let _, _, bound = simplex_bound (qos_spec ()) Mcperf.Classes.general in
  Alcotest.(check (float 1e-6)) "general bound" 5. bound

let test_general_bound_matches_ip () =
  let model, _, bound =
    simplex_bound (qos_spec ()) Mcperf.Classes.general
  in
  match Ipsolve.Branch_bound.solve model.Mcperf.Model.problem with
  | Ipsolve.Branch_bound.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "LP = IP on this instance" bound objective
  | Ipsolve.Branch_bound.Infeasible -> Alcotest.fail "IP infeasible"
  | Ipsolve.Branch_bound.Node_limit _ -> Alcotest.fail "IP node limit"

let test_sc_bound_exact () =
  (* Uniform storage constraint: capacity 1 on each of the 3 non-origin
     sites for 4 intervals = 12, plus one creation = 13. *)
  let _, _, bound =
    simplex_bound (qos_spec ()) Mcperf.Classes.storage_constrained
  in
  (* The LP splits capacity fractionally across nodes 2 and 3 (C = 0.5
     each covering half): 12 * 0.5 storage + 1 creation = 7 — strictly
     below any integral SC solution, as a lower bound should be. *)
  Alcotest.(check (float 1e-6)) "SC bound" 7. bound

let test_sc_per_node_bound_exact () =
  (* Per-node capacities: only the storing node pays: 4 + 1 = 5. *)
  let _, _, bound =
    simplex_bound (qos_spec ()) Mcperf.Classes.storage_constrained_per_node
  in
  Alcotest.(check (float 1e-6)) "SC per-node bound" 5. bound

let test_rc_bound_exact () =
  (* Per-object replica constraint: R_0 = 1 replica held all 4 intervals =
     4 storage + 1 creation = 5. *)
  let _, _, bound =
    simplex_bound (qos_spec ()) Mcperf.Classes.replica_constrained
  in
  Alcotest.(check (float 1e-6)) "RC bound" 5. bound

let test_class_bounds_dominate_general () =
  let spec = qos_spec () in
  let _, _, general = simplex_bound spec Mcperf.Classes.general in
  List.iter
    (fun cls ->
      let perm = Mcperf.Permission.compute spec cls in
      if Mcperf.Permission.feasible perm then begin
        let _, _, bound = simplex_bound spec cls in
        if bound < general -. 1e-6 then
          Alcotest.failf "class %s bound %.3f below general %.3f"
            cls.Mcperf.Classes.name bound general
      end)
    Mcperf.Classes.catalogue

let test_lower_qos_is_cheaper () =
  (* At 75% QoS the LP stores a constant fractional 0.75 replica:
     4 * 0.75 storage + 0.75 creation = 3.75 (below the best integral
     solution, 4). *)
  let _, _, bound =
    simplex_bound (qos_spec ~fraction:0.75 ()) Mcperf.Classes.general
  in
  Alcotest.(check (float 1e-6)) "75% bound" 3.75 bound

let test_origin_covered_demand_is_free () =
  (* Node 1 is a neighbour of the origin: its reads cost nothing. *)
  let demand =
    Workload.Demand.create ~nodes:4 ~intervals:4 ~interval_s:3600.
      ~reads:[| [| cell 1 0 10.; cell 1 2 5. |] |]
      ()
  in
  let spec =
    Mcperf.Spec.make ~system:(line_system ()) ~demand
      ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 1. })
      ()
  in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
  let model = Mcperf.Model.build perm in
  Alcotest.(check int) "no variables needed" 0
    (Mcperf.Model.var_count model);
  Alcotest.(check (float 1e-9)) "always covered" 15.
    model.Mcperf.Model.always_covered.(1)

(* --- cost extensions ----------------------------------------------------- *)

let test_write_cost_extension () =
  (* delta > 0: writes to the object charge each replica. One replica held
     4 intervals; node 1 writes 3 times in interval 2 -> 3 * delta extra. *)
  let demand =
    Workload.Demand.create ~nodes:4 ~intervals:4 ~interval_s:3600.
      ~writes:[| [| cell 1 2 3. |] |]
      ~reads:[| [| cell 3 0 10.; cell 3 1 10.; cell 3 2 10.; cell 3 3 10. |] |]
      ()
  in
  let costs = { Mcperf.Spec.default_costs with delta = 2. } in
  let spec =
    Mcperf.Spec.make ~system:(line_system ()) ~demand ~costs
      ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 1. })
      ()
  in
  let _, _, bound = simplex_bound spec Mcperf.Classes.general in
  (* 5 (storage+create) + 2 * 3 (updates to the one replica) = 11. *)
  Alcotest.(check (float 1e-6)) "write extension" 11. bound

let test_penalty_extension () =
  (* gamma > 0 at a QoS goal below 100%: the uncovered read pays
     gamma * (300 - 150) from the origin fallback. *)
  let costs = { Mcperf.Spec.default_costs with gamma = 0.01 } in
  let spec = qos_spec ~fraction:0.75 ~costs () in
  let _, _, bound = simplex_bound spec Mcperf.Classes.general in
  (* Serving 3 reads: 3 + 1 = 4; the 10 uncovered interval-0 reads pay
     0.01 * 150 * 10 = 15. Alternative: cover everything for 5 + 0. The
     LP picks the cheaper: 5. *)
  Alcotest.(check (float 1e-6)) "penalty favours full coverage" 5. bound

let test_open_cost_extension () =
  (* zeta > 0 charges each node that stores anything. *)
  let costs = { Mcperf.Spec.default_costs with zeta = 100. } in
  let spec = qos_spec ~costs () in
  let _, _, bound = simplex_bound spec Mcperf.Classes.general in
  Alcotest.(check (float 1e-6)) "open cost" 105. bound

(* --- average-latency goal ------------------------------------------------ *)

let test_avg_latency_goal () =
  (* Node 3's reads: origin is 300 ms away. Avg goal 150 ms forces a
     replica at 2 or 3 for at least half the demand-time. *)
  let demand = tail_demand () in
  let spec =
    Mcperf.Spec.make ~system:(line_system ()) ~demand
      ~goal:(Mcperf.Spec.Avg_latency { tavg_ms = 150. })
      ()
  in
  let _, _, bound = simplex_bound spec Mcperf.Classes.general in
  (* Local replica at node 3 (0 ms) for half the reads: avg = 150. Two
     intervals of storage + 1 create = 3; fractional solutions may spread
     thinner. Bound must be positive and at most 5 (full coverage). *)
  Alcotest.(check bool) "bound in range" true (bound > 0. && bound <= 5.);
  let loose =
    Mcperf.Spec.make ~system:(line_system ()) ~demand
      ~goal:(Mcperf.Spec.Avg_latency { tavg_ms = 300. })
      ()
  in
  let _, _, loose_bound = simplex_bound loose Mcperf.Classes.general in
  Alcotest.(check (float 1e-6)) "loose avg goal is free" 0. loose_bound

(* --- costing -------------------------------------------------------------- *)

let test_costing_storage_creation () =
  let spec = qos_spec () in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
  let placement = Mcperf.Costing.empty_placement spec in
  (* Store object 0 on node 3 during intervals 1-3 (mask 0b1110). *)
  placement.(3).(0) <- 0b1110;
  let e = Mcperf.Costing.evaluate perm placement in
  Alcotest.(check (float 1e-9)) "storage" 3. e.Mcperf.Costing.storage;
  Alcotest.(check (float 1e-9)) "creation" 1. e.Mcperf.Costing.creation;
  Alcotest.(check (float 1e-9)) "qos 3/4" 0.75 e.Mcperf.Costing.qos.(3);
  Alcotest.(check bool) "misses 100% goal" false e.Mcperf.Costing.meets_goal

let test_costing_multiple_creations () =
  let spec = qos_spec () in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
  let placement = Mcperf.Costing.empty_placement spec in
  (* Store in intervals 0 and 2-3: two separate creations. *)
  placement.(3).(0) <- 0b1101;
  let e = Mcperf.Costing.evaluate perm placement in
  Alcotest.(check (float 1e-9)) "storage" 3. e.Mcperf.Costing.storage;
  Alcotest.(check (float 1e-9)) "creations" 2. e.Mcperf.Costing.creation

let test_costing_sc_padding () =
  let spec = qos_spec () in
  let perm =
    Mcperf.Permission.compute spec Mcperf.Classes.storage_constrained
  in
  let placement = Mcperf.Costing.empty_placement spec in
  placement.(3).(0) <- 0b1111;
  let e = Mcperf.Costing.evaluate perm placement in
  (* cmax = 1. Node 3 is full every interval (pad 0); nodes 1 and 2 pad 4
     intervals of storage + 1 creation each: 2 * 5 = 10. *)
  Alcotest.(check (float 1e-9)) "sc padding" 10. e.Mcperf.Costing.sc_padding;
  Alcotest.(check (float 1e-9)) "total" 15. e.Mcperf.Costing.total

let test_costing_respects_permissions () =
  let spec = qos_spec () in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.caching in
  let ok = Mcperf.Costing.empty_placement spec in
  ok.(3).(0) <- 0b1110;
  Alcotest.(check bool) "legal caching placement" true
    (Mcperf.Costing.respects_permissions perm ok);
  let bad = Mcperf.Costing.empty_placement spec in
  bad.(3).(0) <- 0b1111;
  Alcotest.(check bool) "storing at interval 0 is illegal" false
    (Mcperf.Costing.respects_permissions perm bad);
  let bad2 = Mcperf.Costing.empty_placement spec in
  bad2.(2).(0) <- 0b0010;
  Alcotest.(check bool) "node 2 cannot store under local routing" false
    (Mcperf.Costing.respects_permissions perm bad2)



let test_spec_rejects_too_many_intervals () =
  let reads = [| [| cell 0 0 1. |] |] in
  let d =
    Workload.Demand.create ~nodes:4 ~intervals:63 ~interval_s:1. ~reads ()
  in
  Alcotest.check_raises "63 intervals"
    (Invalid_argument "Spec.make: at most 62 evaluation intervals are supported")
    (fun () ->
      ignore
        (Mcperf.Spec.make ~system:(line_system ()) ~demand:d
           ~goal:(Mcperf.Spec.Qos { tlat_ms = 1.; fraction = 1. })
           ()))

let test_interval_bits () =
  Alcotest.(check int) "0 bits" 0 (Mcperf.Permission.interval_bits 0);
  Alcotest.(check int) "3 bits" 0b111 (Mcperf.Permission.interval_bits 3);
  Alcotest.(check int) "62 bits" (-1 lsr 1) (Mcperf.Permission.interval_bits 62);
  Alcotest.check_raises "63 rejected"
    (Invalid_argument "Permission.interval_bits") (fun () ->
      ignore (Mcperf.Permission.interval_bits 63))

let test_placeable_origin_only () =
  (* With no placeable site, node 3\'s demand is uncoverable and the class
     is infeasible; node-1-only demand (origin-covered) stays feasible. *)
  let spec = qos_spec () in
  let none = Array.make 4 false in
  let perm = Mcperf.Permission.compute ~placeable:none spec Mcperf.Classes.general in
  Alcotest.(check bool) "infeasible without sites" false
    (Mcperf.Permission.feasible perm);
  let demand =
    Workload.Demand.create ~nodes:4 ~intervals:4 ~interval_s:3600.
      ~reads:[| [| cell 1 0 5. |] |] ()
  in
  let spec1 =
    Mcperf.Spec.make ~system:(line_system ()) ~demand
      ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 1. })
      ()
  in
  let perm1 =
    Mcperf.Permission.compute ~placeable:none spec1 Mcperf.Classes.general
  in
  Alcotest.(check bool) "origin suffices" true (Mcperf.Permission.feasible perm1)

let test_placeable_subset_raises_bound () =
  (* Restricting placement to node 2 only: node 3\'s reads must be served
     from node 2, same minimal cost here (one replica, 4 intervals). *)
  let spec = qos_spec () in
  let only2 = [| false; false; true; false |] in
  let perm = Mcperf.Permission.compute ~placeable:only2 spec Mcperf.Classes.general in
  Alcotest.(check bool) "feasible via node 2" true
    (Mcperf.Permission.feasible perm);
  let model = Mcperf.Model.build perm in
  (match Lp.Simplex.solve model.Mcperf.Model.problem with
  | Lp.Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "cost" 5. objective
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> Alcotest.fail "LP failed");
  (* And node 3 itself must have no store support. *)
  Alcotest.(check bool) "node 3 restricted" false
    (Mcperf.Permission.store_possible perm ~node:3 ~interval:1 ~object_id:0)

(* --- evaluation-interval theory (Theorems 2-3) --------------------------- *)

let test_interval_theorem2 () =
  Alcotest.(check bool) "same interval" true
    (Mcperf.Interval.covers_heuristic_interval ~delta_s:3600.
       ~heuristic_delta_s:3600.);
  Alcotest.(check bool) "double covers" true
    (Mcperf.Interval.covers_heuristic_interval ~delta_s:3600.
       ~heuristic_delta_s:7200.);
  Alcotest.(check bool) "1.5x does not" false
    (Mcperf.Interval.covers_heuristic_interval ~delta_s:3600.
       ~heuristic_delta_s:5400.)

let test_interval_gaps () =
  (* Node 3 reads object 0 at t=0, 10, 25: gaps 10 and 15 (self-interaction
     is within reach). *)
  let sys = line_system () in
  let t =
    Workload.Trace.of_events ~nodes:4 ~objects:1 ~duration_s:100.
      [
        (0., 3, 0, Workload.Trace.Read);
        (10., 3, 0, Workload.Trace.Read);
        (25., 3, 0, Workload.Trace.Read);
      ]
  in
  (match Mcperf.Interval.min_interaction_gaps sys ~tlat_ms:150. t with
  | Some (m1, m2) ->
    Alcotest.(check (float 1e-9)) "m1" 10. m1;
    Alcotest.(check (float 1e-9)) "m2" 15. m2
  | None -> Alcotest.fail "expected gaps");
  (* 2*m1 = 20 >= m2 = 15 -> delta = m1/2 = 5. *)
  match Mcperf.Interval.per_access_delta sys ~tlat_ms:150. t with
  | Some d -> Alcotest.(check (float 1e-9)) "delta" 5. d
  | None -> Alcotest.fail "expected a delta"

let test_interval_gaps_sparse () =
  (* Gaps 10 and 30: 2*m1 < m2 -> delta = m1. *)
  let sys = line_system () in
  let t =
    Workload.Trace.of_events ~nodes:4 ~objects:1 ~duration_s:100.
      [
        (0., 3, 0, Workload.Trace.Read);
        (10., 3, 0, Workload.Trace.Read);
        (40., 3, 0, Workload.Trace.Read);
      ]
  in
  match Mcperf.Interval.per_access_delta sys ~tlat_ms:150. t with
  | Some d -> Alcotest.(check (float 1e-9)) "delta = m1" 10. d
  | None -> Alcotest.fail "expected a delta"

let test_interval_non_interacting () =
  (* Nodes 0 and 3 are 300 ms apart (> 150): their accesses do not
     interact, and each accesses the object only once. *)
  let sys = line_system () in
  let t =
    Workload.Trace.of_events ~nodes:4 ~objects:1 ~duration_s:100.
      [ (0., 0, 0, Workload.Trace.Read); (10., 3, 0, Workload.Trace.Read) ]
  in
  Alcotest.(check bool) "no interacting gaps" true
    (Mcperf.Interval.min_interaction_gaps sys ~tlat_ms:150. t = None)

let test_intervals_for () =
  let t =
    Workload.Trace.of_events ~nodes:1 ~objects:1 ~duration_s:100.
      [ (0., 0, 0, Workload.Trace.Read) ]
  in
  Alcotest.(check int) "ceil" 34 (Mcperf.Interval.intervals_for t ~delta_s:3.);
  Alcotest.(check int) "exact" 10 (Mcperf.Interval.intervals_for t ~delta_s:10.)

(* --- Theorem 1: SET-COVER reduces to MC-PERF ----------------------------- *)

(* Build the reduction from the appendix: candidate-set nodes C, element
   nodes E; dist(c, e) = 1 iff set c covers element e; one object, one
   interval, demand 1 on each element node, 100% QoS, alpha = 1, beta = 0.
   The topology realizes the dist matrix with edge latency 100 and
   threshold 150 (everything else is further). The IP optimum equals the
   minimum cover size. *)
let set_cover_instance ~num_sets ~num_elements ~covers =
  (* Node layout: 0 = origin (far away), 1..num_sets = candidate sets,
     num_sets+1 .. num_sets+num_elements = elements. *)
  let n = 1 + num_sets + num_elements in
  let edges = ref [] in
  (* Chain everything to the origin with 1000 ms links so the graph is
     connected but the origin never covers anything. *)
  for v = 1 to n - 1 do
    edges := (0, v, 1000.) :: !edges
  done;
  List.iter
    (fun (set_id, elem_id) ->
      edges := (1 + set_id, 1 + num_sets + elem_id, 100.) :: !edges)
    covers;
  let g = Topology.Graph.of_edges n !edges in
  let sys = Topology.System.make ~origin:0 g in
  let reads =
    [|
      Array.init num_elements (fun e ->
          cell (1 + num_sets + e) 0 1.)
      |> Array.to_list |> List.sort compare |> Array.of_list;
    |]
  in
  let demand =
    Workload.Demand.create ~nodes:n ~intervals:1 ~interval_s:3600. ~reads ()
  in
  let costs = { Mcperf.Spec.default_costs with alpha = 1.; beta = 0.0001 } in
  Mcperf.Spec.make ~system:sys ~demand ~costs
    ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 1. })
    ()

let test_set_cover_reduction () =
  (* Sets: s0 = {e0, e1}, s1 = {e1, e2}, s2 = {e2, e3}. Minimum cover of
     {e0..e3} is 2 (s0 and s2). *)
  let covers = [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 2); (2, 3) ] in
  let spec = set_cover_instance ~num_sets:3 ~num_elements:4 ~covers in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
  let model = Mcperf.Model.build perm in
  (match Ipsolve.Branch_bound.solve model.Mcperf.Model.problem with
  | Ipsolve.Branch_bound.Optimal { objective; _ } ->
    (* Each chosen set pays alpha (1) + beta (0.0001). *)
    Alcotest.(check (float 1e-3)) "minimum cover = 2" 2. objective
  | Ipsolve.Branch_bound.Infeasible -> Alcotest.fail "reduction infeasible"
  | Ipsolve.Branch_bound.Node_limit _ -> Alcotest.fail "node limit");
  (* The LP relaxation may be fractional but never exceeds the IP value. *)
  match Lp.Simplex.solve model.Mcperf.Model.problem with
  | Lp.Simplex.Optimal { objective; _ } ->
    Alcotest.(check bool) "LP <= IP" true (objective <= 2.0002 +. 1e-9)
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
    Alcotest.fail "LP should be solvable"

let test_set_cover_lp_fractional_instance () =
  (* Triangle cover: 3 sets {e0,e1} {e1,e2} {e0,e2}; IP = 2, LP = 1.5. *)
  let covers = [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 0); (2, 2) ] in
  let spec = set_cover_instance ~num_sets:3 ~num_elements:3 ~covers in
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
  let model = Mcperf.Model.build perm in
  (match Lp.Simplex.solve model.Mcperf.Model.problem with
  | Lp.Simplex.Optimal { objective; _ } ->
    Alcotest.(check bool) "LP about 1.5" true
      (Float.abs (objective -. 1.50015) < 0.01)
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> Alcotest.fail "LP failed");
  match Ipsolve.Branch_bound.solve model.Mcperf.Model.problem with
  | Ipsolve.Branch_bound.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-3)) "IP = 2" 2. objective
  | Ipsolve.Branch_bound.Infeasible | Ipsolve.Branch_bound.Node_limit _ ->
    Alcotest.fail "IP failed"

let () =
  Alcotest.run "mcperf"
    [
      ( "spec",
        [
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "interval cap" `Quick
            test_spec_rejects_too_many_intervals;
        ] );
      ( "placement-sites",
        [
          Alcotest.test_case "interval bits" `Quick test_interval_bits;
          Alcotest.test_case "origin only" `Quick test_placeable_origin_only;
          Alcotest.test_case "subset" `Quick test_placeable_subset_raises_bound;
        ] );
      ( "permission",
        [
          Alcotest.test_case "general" `Quick test_permission_general;
          Alcotest.test_case "caching reactive" `Quick
            test_permission_caching_reactive;
          Alcotest.test_case "cooperative window" `Quick
            test_permission_cooperative_window;
          Alcotest.test_case "prefetch proactive" `Quick
            test_permission_prefetch_proactive;
          Alcotest.test_case "max feasible qos" `Quick test_max_feasible_qos;
        ] );
      ( "bounds-exact",
        [
          Alcotest.test_case "general" `Quick test_general_bound_exact;
          Alcotest.test_case "general = IP" `Quick
            test_general_bound_matches_ip;
          Alcotest.test_case "storage constrained" `Quick test_sc_bound_exact;
          Alcotest.test_case "storage per-node" `Quick
            test_sc_per_node_bound_exact;
          Alcotest.test_case "replica constrained" `Quick test_rc_bound_exact;
          Alcotest.test_case "classes dominate general" `Quick
            test_class_bounds_dominate_general;
          Alcotest.test_case "lower qos cheaper" `Quick
            test_lower_qos_is_cheaper;
          Alcotest.test_case "origin covers for free" `Quick
            test_origin_covered_demand_is_free;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "write cost" `Quick test_write_cost_extension;
          Alcotest.test_case "penalty" `Quick test_penalty_extension;
          Alcotest.test_case "open cost" `Quick test_open_cost_extension;
          Alcotest.test_case "average latency" `Quick test_avg_latency_goal;
        ] );
      ( "costing",
        [
          Alcotest.test_case "storage and creation" `Quick
            test_costing_storage_creation;
          Alcotest.test_case "multiple creations" `Quick
            test_costing_multiple_creations;
          Alcotest.test_case "sc padding" `Quick test_costing_sc_padding;
          Alcotest.test_case "permission check" `Quick
            test_costing_respects_permissions;
        ] );
      ( "interval-theory",
        [
          Alcotest.test_case "theorem 2" `Quick test_interval_theorem2;
          Alcotest.test_case "gaps and delta" `Quick test_interval_gaps;
          Alcotest.test_case "sparse gaps" `Quick test_interval_gaps_sparse;
          Alcotest.test_case "non-interacting" `Quick
            test_interval_non_interacting;
          Alcotest.test_case "interval count" `Quick test_intervals_for;
        ] );
      ( "set-cover",
        [
          Alcotest.test_case "reduction optimum" `Quick
            test_set_cover_reduction;
          Alcotest.test_case "fractional LP instance" `Quick
            test_set_cover_lp_fractional_instance;
        ] );
    ]
