(* Tests for the public replica_select layer: case-study assembly, the
   Section 6.1 selection methodology, the Section 6.2 deployment planner,
   and report rendering. *)

module CS = Replica_select.Case_study
module M = Replica_select.Methodology
module Report = Replica_select.Report

(* Small and fast: 8 nodes, 2% of the paper's request volume. *)
let small_web () = CS.make ~nodes:8 ~scale:0.02 ~intervals:8 CS.Web
let small_group () = CS.make ~nodes:8 ~scale:0.01 ~intervals:8 CS.Group

let test_case_study_construction () =
  let cs = small_web () in
  Alcotest.(check int) "nodes" 8 (Topology.System.node_count cs.CS.system);
  Alcotest.(check int) "intervals" 8 cs.CS.demand.Workload.Demand.intervals;
  Alcotest.(check bool) "objects scaled up for the tail" true
    (Workload.Trace.object_count cs.CS.trace >= 40);
  (* The bound demand preserves the weighted read volume. *)
  Alcotest.(check bool) "bound demand preserves volume" true
    (Float.abs
       (Workload.Demand.total_reads cs.CS.bound_demand
       -. Workload.Demand.total_reads cs.CS.demand)
    < 1e-6 *. Workload.Demand.total_reads cs.CS.demand)

let test_case_study_determinism () =
  let a = small_web () and b = small_web () in
  Alcotest.(check int) "same trace length" (Workload.Trace.length a.CS.trace)
    (Workload.Trace.length b.CS.trace);
  Alcotest.(check (float 1e-9)) "same demand"
    (Workload.Demand.total_reads a.CS.demand)
    (Workload.Demand.total_reads b.CS.demand);
  let c = CS.make ~nodes:8 ~scale:0.02 ~intervals:8 ~seed:99 CS.Web in
  Alcotest.(check bool) "different seed differs" true
    (Workload.Demand.total_reads c.CS.demand
     <> Workload.Demand.total_reads a.CS.demand
    || Workload.Trace.node a.CS.trace 0 <> Workload.Trace.node c.CS.trace 0)

let test_group_aggregation_small () =
  let cs = small_group () in
  Alcotest.(check bool) "group clusters to few classes" true
    (cs.CS.bound_demand.Workload.Demand.objects <= 24)

let test_selection_ranks_classes () =
  let cs = small_web () in
  let spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:true () in
  let sel = M.select spec in
  Alcotest.(check bool) "general bound positive" true (sel.M.general_bound >= 0.);
  (match sel.M.chosen with
  | Some best ->
    Alcotest.(check bool) "chosen is feasible" true
      best.M.result.Bounds.Pipeline.feasible;
    Alcotest.(check bool) "chosen >= general" true
      (best.M.result.Bounds.Pipeline.lower_bound >= sel.M.general_bound -. 1e-6);
    (* The ranking's feasible prefix is sorted by bound. *)
    let feasible_bounds =
      List.filter_map
        (fun (r : M.ranked) ->
          if r.M.result.Bounds.Pipeline.feasible then
            Some r.M.result.Bounds.Pipeline.lower_bound
          else None)
        sel.M.ranking
    in
    Alcotest.(check bool) "sorted" true
      (List.sort compare feasible_bounds = feasible_bounds)
  | None -> Alcotest.fail "expected a feasible class at 95%")

let test_deployable_mapping () =
  Alcotest.(check (option string)) "sc" (Some "greedy-global")
    (M.deployable_of_class "storage-constrained");
  Alcotest.(check (option string)) "rc" (Some "greedy-replica")
    (M.deployable_of_class "replica-constrained-uniform");
  Alcotest.(check (option string)) "caching" (Some "lru-caching")
    (M.deployable_of_class "caching");
  Alcotest.(check (option string)) "general" None
    (M.deployable_of_class "general")

let test_plan_deployment () =
  let cs = small_group () in
  let spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:true () in
  match M.plan_deployment ~zeta:100. spec with
  | None -> Alcotest.fail "deployment should be possible"
  | Some plan ->
    let origin = cs.CS.system.Topology.System.origin in
    Alcotest.(check bool) "origin open" true
      (List.mem origin plan.M.open_nodes);
    Alcotest.(check bool) "some nodes open" true
      (List.length plan.M.open_nodes >= 1);
    Alcotest.(check bool) "not everything opened" true
      (List.length plan.M.open_nodes
      < Topology.System.node_count cs.CS.system);
    (* Every site is assigned to an open node. *)
    Array.iter
      (fun a ->
        Alcotest.(check bool) "assigned to open" true
          (List.mem a plan.M.open_nodes))
      plan.M.assignment;
    (* Placeable mask matches the open list (origin excluded by
       Permission, but present in the plan's list). *)
    List.iter
      (fun o ->
        if o <> origin then
          Alcotest.(check bool) "placeable" true plan.M.placeable.(o))
      plan.M.open_nodes;
    (* The reduced system must still meet the goal for the general class. *)
    let reduced = M.reassign_demand spec plan in
    let r =
      Bounds.Pipeline.compute ~placeable:plan.M.placeable reduced
        (Mcperf.Classes.allow_intra_interval_reaction
           Mcperf.Classes.reactive_general)
    in
    Alcotest.(check bool) "reduced system feasible" true
      r.Bounds.Pipeline.feasible;
    (* Total demand is preserved by the reassignment. *)
    Alcotest.(check bool) "demand preserved" true
      (Float.abs
         (Workload.Demand.total_reads reduced.Mcperf.Spec.demand
         -. Workload.Demand.total_reads spec.Mcperf.Spec.demand)
      < 1e-6)

let test_deployment_restricts_placement () =
  let cs = small_group () in
  let spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:true () in
  match M.plan_deployment ~zeta:100. spec with
  | None -> Alcotest.fail "deployment should be possible"
  | Some plan ->
    let reduced = M.reassign_demand spec plan in
    let perm =
      Mcperf.Permission.compute ~placeable:plan.M.placeable reduced
        Mcperf.Classes.general
    in
    let nodes = Topology.System.node_count cs.CS.system in
    for m = 0 to nodes - 1 do
      if not plan.M.placeable.(m) then
        for k = 0 to reduced.Mcperf.Spec.demand.Workload.Demand.objects - 1 do
          Alcotest.(check int)
            (Printf.sprintf "closed node %d has no store support" m)
            0
            perm.Mcperf.Permission.store_mask.(m).(k)
        done
    done

(* Deployment reduces the phase-2 bound versus opening nothing extra:
   cross-check that an open set chosen by the planner is at least
   goal-feasible while a trivial (origin-only) one may not be. *)
let test_deployment_beats_origin_only () =
  let cs = small_group () in
  let spec = CS.qos_spec cs ~fraction:0.999 ~for_bounds:true () in
  let origin_only =
    Array.init (Topology.System.node_count cs.CS.system) (fun _ -> false)
  in
  let perm =
    Mcperf.Permission.compute ~placeable:origin_only spec
      (Mcperf.Classes.allow_intra_interval_reaction
         Mcperf.Classes.reactive_general)
  in
  if Mcperf.Permission.feasible perm then ()
    (* If the origin alone suffices topologically, the planner may open
       nothing; that is fine. *)
  else
    match M.plan_deployment ~zeta:100. spec with
    | None -> Alcotest.fail "planner should find a deployment"
    | Some plan ->
      Alcotest.(check bool) "opened at least one node" true
        (List.length plan.M.open_nodes >= 2)

(* --- report rendering --------------------------------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_report_figure_rendering () =
  let series =
    [
      Report.series_of ~label:"a" [ (0.95, Some 10.); (0.99, Some 20.) ];
      Report.series_of ~label:"b" [ (0.95, Some 15.); (0.99, None) ];
    ]
  in
  let buf_name = Filename.temp_file "report" ".txt" in
  let oc = open_out buf_name in
  Report.print_figure ~oc ~title:"test" ~xlabel:"QoS" series;
  close_out oc;
  let content =
    let ic = open_in buf_name in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove buf_name;
    s
  in
  Alcotest.(check bool) "has title" true (contains content "=== test ===");
  Alcotest.(check bool) "has infeasible dash" true (contains content "-");
  Alcotest.(check bool) "has values" true (contains content "15")

let test_report_csv () =
  let series =
    [
      Report.series_of ~label:"a" [ (0.95, Some 10.); (0.99, Some 20.) ];
      Report.series_of ~label:"b" [ (0.95, None); (0.99, Some 5.) ];
    ]
  in
  let csv = Report.csv_of_figure series in
  Alcotest.(check string) "csv"
    "qos,a,b\n0.95,10,\n0.99,20,5\n" csv

let () =
  Alcotest.run "replica_select"
    [
      ( "case-study",
        [
          Alcotest.test_case "construction" `Quick test_case_study_construction;
          Alcotest.test_case "determinism" `Quick test_case_study_determinism;
          Alcotest.test_case "group aggregation" `Quick
            test_group_aggregation_small;
        ] );
      ( "selection",
        [
          Alcotest.test_case "ranking" `Slow test_selection_ranks_classes;
          Alcotest.test_case "deployable mapping" `Quick test_deployable_mapping;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "plan" `Slow test_plan_deployment;
          Alcotest.test_case "placement restricted" `Slow
            test_deployment_restricts_placement;
          Alcotest.test_case "beats origin-only" `Slow
            test_deployment_beats_origin_only;
        ] );
      ( "report",
        [
          Alcotest.test_case "figure rendering" `Quick
            test_report_figure_rendering;
          Alcotest.test_case "csv" `Quick test_report_csv;
        ] );
    ]
