type t = {
  reads : int;
  writes : int;
  objects_touched : int;
  top_object_reads : int;
  median_object_reads : float;
  min_object_reads : int;
  node_share_max : float;
  node_share_min : float;
  active_nodes : int;
  mean_working_set : float;
  max_working_set : int;
  cold_miss_fraction : float;
  worst_user_cold_miss_fraction : float;
}

let of_trace trace =
  let nodes = Trace.node_count trace in
  let objects = Trace.object_count trace in
  let object_reads = Array.make objects 0 in
  let node_reads = Array.make nodes 0 in
  let seen = Hashtbl.create 4096 in
  let node_first = Array.make nodes 0 in
  let reads = ref 0 and writes = ref 0 in
  Trace.iter
    (fun ~time:_ ~node ~object_id ~kind ->
      match kind with
      | Trace.Write -> incr writes
      | Trace.Read ->
        incr reads;
        object_reads.(object_id) <- object_reads.(object_id) + 1;
        node_reads.(node) <- node_reads.(node) + 1;
        if not (Hashtbl.mem seen (node, object_id)) then begin
          Hashtbl.add seen (node, object_id) ();
          node_first.(node) <- node_first.(node) + 1
        end)
    trace;
  let touched = Array.to_list object_reads |> List.filter (fun c -> c > 0) in
  let touched_sorted = List.sort compare touched in
  let objects_touched = List.length touched_sorted in
  let median =
    if objects_touched = 0 then 0.
    else begin
      let arr = Array.of_list touched_sorted in
      let n = Array.length arr in
      if n mod 2 = 1 then float_of_int arr.(n / 2)
      else float_of_int (arr.((n / 2) - 1) + arr.(n / 2)) /. 2.
    end
  in
  let total_reads = float_of_int (max 1 !reads) in
  let shares =
    Array.to_list node_reads
    |> List.filter (fun c -> c > 0)
    |> List.map (fun c -> float_of_int c /. total_reads)
  in
  let working_sets = Array.make nodes 0 in
  Hashtbl.iter (fun (n, _) () -> working_sets.(n) <- working_sets.(n) + 1) seen;
  let active = List.length shares in
  let worst_cold =
    let worst = ref 0. in
    for n = 0 to nodes - 1 do
      if node_reads.(n) > 0 then
        worst :=
          Float.max !worst
            (float_of_int node_first.(n) /. float_of_int node_reads.(n))
    done;
    !worst
  in
  {
    reads = !reads;
    writes = !writes;
    objects_touched;
    top_object_reads = List.fold_left max 0 touched_sorted;
    median_object_reads = median;
    min_object_reads =
      (match touched_sorted with [] -> 0 | c :: _ -> c);
    node_share_max = List.fold_left Float.max 0. shares;
    node_share_min =
      (if shares = [] then 0. else List.fold_left Float.min 1. shares);
    active_nodes = active;
    mean_working_set =
      (if active = 0 then 0.
       else
         float_of_int (Hashtbl.length seen) /. float_of_int active);
    max_working_set = Array.fold_left max 0 working_sets;
    cold_miss_fraction = float_of_int (Hashtbl.length seen) /. total_reads;
    worst_user_cold_miss_fraction = worst_cold;
  }

let pp ppf p =
  Format.fprintf ppf
    "@[<v>reads %d, writes %d, %d objects touched@,\
     popularity: top %d, median %.1f, min %d reads/object@,\
     sites: %d active, busiest %.1f%%, quietest %.2f%% of reads@,\
     working sets: mean %.1f, max %d objects/site@,\
     cold misses: %.2f%% overall, %.2f%% at the worst site@]"
    p.reads p.writes p.objects_touched p.top_object_reads
    p.median_object_reads p.min_object_reads p.active_nodes
    (100. *. p.node_share_max)
    (100. *. p.node_share_min)
    p.mean_working_set p.max_working_set
    (100. *. p.cold_miss_fraction)
    (100. *. p.worst_user_cold_miss_fraction)
