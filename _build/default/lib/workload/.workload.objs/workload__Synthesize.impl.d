lib/workload/synthesize.ml: Array Float Option Trace Util Zipf
