lib/workload/zipf.mli:
