lib/workload/demand.ml: Array Format Hashtbl List Trace
