lib/workload/aggregate.mli: Demand
