lib/workload/synthesize.mli: Trace Util
