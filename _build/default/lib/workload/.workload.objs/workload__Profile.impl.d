lib/workload/profile.ml: Array Float Format Hashtbl List Trace
