lib/workload/profile.mli: Format Trace
