lib/workload/trace.mli:
