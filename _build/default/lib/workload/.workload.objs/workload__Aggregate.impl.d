lib/workload/aggregate.ml: Array Demand Float Hashtbl List Option Printf
