lib/workload/trace.ml: Array
