lib/workload/demand.mli: Format Trace
