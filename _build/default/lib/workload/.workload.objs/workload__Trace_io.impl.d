lib/workload/trace_io.ml: Buffer Fun List Printf String Trace
