lib/workload/zipf.ml: Array Float Util
