let header_prefix = "# replica-select trace v1"

let to_buffer buf t =
  Buffer.add_string buf
    (Printf.sprintf "%s nodes=%d objects=%d duration_s=%.9g\n" header_prefix
       (Trace.node_count t) (Trace.object_count t) (Trace.duration_s t));
  Buffer.add_string buf "time_s,node,object,kind\n";
  Trace.iter
    (fun ~time ~node ~object_id ~kind ->
      Buffer.add_string buf
        (Printf.sprintf "%.9g,%d,%d,%c" time node object_id
           (match kind with Trace.Read -> 'r' | Trace.Write -> 'w'));
      Buffer.add_char buf '\n')
    t

let to_string t =
  let buf = Buffer.create 4096 in
  to_buffer buf t;
  Buffer.contents buf

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let fail_line lineno msg = failwith (Printf.sprintf "trace line %d: %s" lineno msg)

let parse_header line =
  let kv key =
    let marker = key ^ "=" in
    match String.index_opt line '=' with
    | None -> fail_line 1 "missing header fields"
    | Some _ -> (
      (* Find "key=" and read until the next space or end. *)
      let rec find i =
        if i + String.length marker > String.length line then
          fail_line 1 ("missing header field " ^ key)
        else if String.sub line i (String.length marker) = marker then
          i + String.length marker
        else find (i + 1)
      in
      let start = find 0 in
      let stop =
        match String.index_from_opt line start ' ' with
        | Some j -> j
        | None -> String.length line
      in
      String.sub line start (stop - start))
  in
  ( int_of_string (kv "nodes"),
    int_of_string (kv "objects"),
    float_of_string (kv "duration_s") )

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: _column_names :: rest ->
    if
      String.length header < String.length header_prefix
      || String.sub header 0 (String.length header_prefix) <> header_prefix
    then failwith "trace: not a replica-select trace file";
    let nodes, objects, duration_s =
      try parse_header header
      with Failure _ | Invalid_argument _ ->
        failwith "trace: malformed header"
    in
    let events = ref [] in
    List.iteri
      (fun idx line ->
        let lineno = idx + 3 in
        if String.trim line <> "" then
          match String.split_on_char ',' line with
          | [ time; node; obj; kind ] -> (
            try
              let kind =
                match String.trim kind with
                | "r" -> Trace.Read
                | "w" -> Trace.Write
                | other -> fail_line lineno ("unknown kind " ^ other)
              in
              events :=
                ( float_of_string (String.trim time),
                  int_of_string (String.trim node),
                  int_of_string (String.trim obj),
                  kind )
                :: !events
            with Failure msg -> fail_line lineno msg)
          | _ -> fail_line lineno "expected 4 comma-separated fields")
      rest;
    Trace.of_events ~nodes ~objects ~duration_s (List.rev !events)
  | _ -> failwith "trace: empty file"

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
