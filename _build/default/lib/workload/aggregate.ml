type mapping = {
  demand : Demand.t;
  class_of_object : int array;
}

let pattern_key cells =
  Array.fold_left
    (fun acc (c : Demand.cell) ->
      Printf.sprintf "%s;%d,%d,%g" acc c.node c.interval c.count)
    "" cells

let build_classes (d : Demand.t) class_of_object class_count =
  (* Sum member weights per class; average member patterns. *)
  let members = Array.make class_count [] in
  Array.iteri
    (fun k cls -> members.(cls) <- k :: members.(cls))
    class_of_object;
  let weight = Array.make class_count 0. in
  Array.iteri
    (fun cls ks ->
      weight.(cls) <-
        List.fold_left (fun acc k -> acc +. d.weight.(k)) 0. ks)
    members;
  let average select cls =
    let ks = members.(cls) in
    let total_weight = weight.(cls) in
    if total_weight <= 0. then [||]
    else begin
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun k ->
          Array.iter
            (fun (c : Demand.cell) ->
              let key = (c.interval, c.node) in
              let prev =
                Option.value (Hashtbl.find_opt tbl key) ~default:0.
              in
              Hashtbl.replace tbl key (prev +. (c.count *. d.weight.(k))))
            (select k))
        ks;
      let cells =
        Hashtbl.fold
          (fun (interval, node) total acc ->
            ({ Demand.node; interval; count = total /. total_weight } : Demand.cell)
            :: acc)
          tbl []
      in
      let arr = Array.of_list cells in
      Array.sort
        (fun (a : Demand.cell) b ->
          match compare a.interval b.interval with
          | 0 -> compare a.node b.node
          | c -> c)
        arr;
      arr
    end
  in
  let reads = Array.init class_count (average (fun k -> d.reads.(k))) in
  let writes = Array.init class_count (average (fun k -> d.writes.(k))) in
  let weight = Array.map (fun w -> Float.max w 1.) weight in
  let demand =
    Demand.create ~nodes:d.nodes ~intervals:d.intervals
      ~interval_s:d.interval_s ~weight ~writes ~reads ()
  in
  { demand; class_of_object = Array.copy class_of_object }

let exact (d : Demand.t) =
  let tbl = Hashtbl.create 256 in
  let class_of_object = Array.make d.objects 0 in
  let next = ref 0 in
  for k = 0 to d.objects - 1 do
    let key = pattern_key d.reads.(k) ^ "|" ^ pattern_key d.writes.(k) in
    match Hashtbl.find_opt tbl key with
    | Some cls -> class_of_object.(k) <- cls
    | None ->
      Hashtbl.add tbl key !next;
      class_of_object.(k) <- !next;
      incr next
  done;
  build_classes d class_of_object !next

let by_popularity ~classes (d : Demand.t) =
  if classes < 1 then invalid_arg "Aggregate.by_popularity: classes must be >= 1";
  let totals = Array.init d.objects (fun k -> Demand.object_total d k) in
  let max_total = Array.fold_left Float.max 0. totals in
  let class_of_object = Array.make d.objects 0 in
  let empty_class = ref (-1) in
  let next = ref 0 in
  let bucket_ids = Hashtbl.create 64 in
  for k = 0 to d.objects - 1 do
    if totals.(k) <= 0. then begin
      if !empty_class < 0 then begin
        empty_class := !next;
        incr next
      end;
      class_of_object.(k) <- !empty_class
    end
    else begin
      (* Logarithmic bucket index in [0, classes): popular objects (near
         max_total) land in low buckets with fine resolution. *)
      let ratio = totals.(k) /. max_total in
      let idx =
        if classes = 1 then 0
        else
          let b =
            int_of_float
              (Float.floor (-.log ratio /. log 2. *. 2.))
          in
          min (classes - 1) (max 0 b)
      in
      let cls =
        match Hashtbl.find_opt bucket_ids idx with
        | Some c -> c
        | None ->
          let c = !next in
          Hashtbl.add bucket_ids idx c;
          incr next;
          c
      in
      class_of_object.(k) <- cls
    end
  done;
  build_classes d class_of_object !next
