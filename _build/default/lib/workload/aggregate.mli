(** Object aggregation: shrink the object dimension of a demand matrix.

    MC-PERF's size is O(|N| |I| |K|); the paper runs CPLEX for up to 12
    hours on K = 1000. To keep lower-bound computation tractable we merge
    objects into weighted classes:

    - {!exact} merges only objects with {e identical} access patterns. The
      resulting bound equals the unaggregated bound: the LP is symmetric in
      identical objects, so averaging an optimal solution across a class
      yields an equal-cost solution in which the class members share one
      placement.
    - {!by_popularity} merges objects with {e similar} patterns (same total
      count bucket), averaging their patterns. This is an approximation;
      EXPERIMENTS.md quantifies the deviation on small instances.

    Both return a demand whose [weight] array records class multiplicity
    and a mapping from original object ids to class ids. *)

type mapping = {
  demand : Demand.t;
  class_of_object : int array;  (** original object id -> class id *)
}

val exact : Demand.t -> mapping
(** Merge objects with identical read and write patterns. *)

val by_popularity : classes:int -> Demand.t -> mapping
(** Merge objects into at most [classes] popularity buckets with
    logarithmically spaced boundaries (heavy-tailed workloads get fine
    buckets at the head, coarse at the tail). Within a bucket the cell
    pattern is the per-object average of the members. Objects with no reads
    form their own empty class. Requires [classes >= 1]. *)
