(** Plain-text trace serialization.

    Format: a header line carrying the trace dimensions, then one CSV
    record per event in time order:

    {v
    # replica-select trace v1 nodes=20 objects=1000 duration_s=86400
    time_s,node,object,kind
    12.5,3,17,r
    13.1,0,2,w
    v}

    Intended for exchanging synthetic workloads between runs and for
    importing real traces (convert to this format, then
    {!Workload.Demand.of_trace} buckets them). *)

val save : Trace.t -> path:string -> unit
(** Writes the trace; overwrites an existing file. *)

val load : path:string -> Trace.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val to_string : Trace.t -> string
val of_string : string -> Trace.t
