type spec = {
  nodes : int;
  objects : int;
  total_requests : int;
  max_object_requests : int;
  min_object_requests : int;
  duration_s : float;
  node_skew : float;
  locality_h : float;
  diurnal : bool;
}

let day_s = 86_400.

let web_spec =
  {
    nodes = 20;
    objects = 1000;
    total_requests = 300_000;
    max_object_requests = 36_000;
    min_object_requests = 1;
    duration_s = day_s;
    node_skew = 0.6;
    locality_h = 3000.;
    diurnal = true;
  }

let group_spec =
  {
    nodes = 20;
    objects = 1000;
    total_requests = 16_000_000;
    max_object_requests = 36_000;
    min_object_requests = 8_500;
    duration_s = day_s;
    node_skew = 0.6;
    locality_h = 0.;
    diurnal = false;
  }

(* Shrinking a workload cannot preserve all of (objects, total, max, min)
   simultaneously: objects and total scale linearly (so the per-object mean
   is preserved), the minimum is kept when it stays below the mean, and the
   maximum is scaled linearly but kept at least twice the mean so the
   popularity skew survives. Extremely small factors may still leave the
   Zipf total slightly short of [total_requests * factor] — see
   {!Zipf.fit_mandelbrot}'s clamping. *)
let scale_spec ?object_factor spec ~factor =
  if factor <= 0. || factor > 1. then
    invalid_arg "Synthesize.scale_spec: factor must be in (0, 1]";
  let object_factor = Option.value object_factor ~default:factor in
  if object_factor <= 0. || object_factor > 1. then
    invalid_arg "Synthesize.scale_spec: object_factor must be in (0, 1]";
  let scale_by f x =
    max 1 (int_of_float (Float.round (float_of_int x *. f)))
  in
  let scaled = scale_by factor in
  let objects = scale_by object_factor spec.objects in
  let total_requests = scaled spec.total_requests in
  let mean = total_requests / max 1 objects in
  let min_object_requests = max 1 (min spec.min_object_requests mean) in
  let max_object_requests =
    let upper = total_requests - ((objects - 1) * min_object_requests) in
    max (scaled spec.max_object_requests) (2 * mean)
    |> min spec.max_object_requests
    |> min upper
  in
  {
    spec with
    objects;
    total_requests;
    max_object_requests;
    min_object_requests;
    locality_h = spec.locality_h *. factor;
  }

let node_weights ~rng ~nodes ~skew =
  if nodes <= 0 then invalid_arg "Synthesize.node_weights: need nodes >= 1";
  if skew < 0. then invalid_arg "Synthesize.node_weights: negative skew";
  let ranked =
    if skew = 0. then Array.make nodes (1. /. float_of_int nodes)
    else Zipf.frequencies ~n:nodes ~s:skew
  in
  let slots = Array.init nodes (fun i -> i) in
  Util.Prng.shuffle rng slots;
  let weights = Array.make nodes 0. in
  Array.iteri (fun rank node -> weights.(node) <- ranked.(rank)) slots;
  weights

(* Inverse-CDF sampling of a one-period diurnal density
   f(t) = (1 + 0.8 sin(2 pi t/D - pi/2)) / D via rejection sampling, which
   avoids inverting the transcendental CDF. *)
let draw_time rng spec =
  if not spec.diurnal then Util.Prng.float rng spec.duration_s
  else begin
    let rec draw () =
      let t = Util.Prng.float rng spec.duration_s in
      let phase = (2. *. Float.pi *. t /. spec.duration_s) -. (Float.pi /. 2.) in
      let density = 1. +. (0.8 *. sin phase) in
      if Util.Prng.float rng 1.8 <= density then t else draw ()
    in
    draw ()
  end

(* Pick [size] distinct nodes, biased by activity weight, by shuffling a
   weighted-expanded candidate order. *)
let pick_home_subset rng ~weights ~size =
  let nodes = Array.length weights in
  if size >= nodes then Array.init nodes (fun n -> n)
  else begin
    let chosen = Array.make nodes false in
    let subset = Array.make size 0 in
    let filled = ref 0 in
    while !filled < size do
      let n = Util.Prng.pick_weighted rng ~weights in
      if not chosen.(n) then begin
        chosen.(n) <- true;
        subset.(!filled) <- n;
        incr filled
      end
    done;
    subset
  end

let trace_of_counts ~rng ~spec counts =
  let total = Array.fold_left ( + ) 0 counts in
  let weights = node_weights ~rng ~nodes:spec.nodes ~skew:spec.node_skew in
  let times = Array.make total 0. in
  let event_nodes = Array.make total 0 in
  let event_objects = Array.make total 0 in
  let kinds = Array.make total Trace.Read in
  let pos = ref 0 in
  Array.iteri
    (fun k c ->
      (* Interest locality: restrict this object's accesses to its home
         subset; hot objects (c >> locality_h) remain global. *)
      let node_pool, pool_weights =
        if spec.locality_h <= 0. then (None, weights)
        else begin
          let fc = float_of_int c in
          let size =
            max 1
              (int_of_float
                 (Float.round
                    (float_of_int spec.nodes *. fc /. (fc +. spec.locality_h))))
          in
          if size >= spec.nodes then (None, weights)
          else begin
            let subset = pick_home_subset rng ~weights ~size in
            let w = Array.map (fun n -> weights.(n)) subset in
            (Some subset, w)
          end
        end
      in
      for _ = 1 to c do
        times.(!pos) <- draw_time rng spec;
        let idx = Util.Prng.pick_weighted rng ~weights:pool_weights in
        event_nodes.(!pos) <-
          (match node_pool with Some subset -> subset.(idx) | None -> idx);
        event_objects.(!pos) <- k;
        incr pos
      done)
    counts;
  (* Sort all four arrays by time via an index permutation. *)
  let order = Array.init total (fun i -> i) in
  Array.sort (fun i j -> compare times.(i) times.(j)) order;
  let permute src = Array.map (fun i -> src.(i)) order in
  Trace.create_unsafe ~nodes:spec.nodes ~objects:spec.objects
    ~duration_s:spec.duration_s ~times:(permute times)
    ~event_nodes:(permute event_nodes) ~event_objects:(permute event_objects)
    ~kinds:(permute kinds)

let web ~rng spec =
  let m =
    Zipf.fit_mandelbrot ~n:spec.objects
      ~total:(float_of_int spec.total_requests)
      ~max_count:(float_of_int spec.max_object_requests)
      ~min_count:(float_of_int spec.min_object_requests)
  in
  let counts = Zipf.counts m ~n:spec.objects in
  trace_of_counts ~rng ~spec counts

let group ~rng spec =
  if spec.objects < 1 then invalid_arg "Synthesize.group: need objects >= 1";
  let lo = float_of_int spec.min_object_requests in
  let hi = float_of_int spec.max_object_requests in
  if lo > hi then invalid_arg "Synthesize.group: min > max";
  let raw =
    Array.init spec.objects (fun k ->
        if k = 0 then hi
        else if lo = hi then lo
        else Util.Prng.uniform rng ~lo ~hi)
  in
  (* Rescale the non-pinned objects so the total matches, then clamp back
     into [lo, hi]; one clamping pass is enough in practice because the
     adjustment factors are mild. *)
  let target = float_of_int spec.total_requests -. hi in
  let body_sum = Util.Vecops.sum raw -. hi in
  let factor = if body_sum > 0. then target /. body_sum else 1. in
  let counts =
    Array.mapi
      (fun k x ->
        if k = 0 then int_of_float hi
        else
          let scaled = Util.Vecops.clamp (x *. factor) ~lo ~hi:(hi -. 1.) in
          max 1 (int_of_float (Float.round scaled)))
      raw
  in
  trace_of_counts ~rng ~spec counts

let with_writes ~rng ~write_fraction trace =
  if write_fraction < 0. || write_fraction > 1. then
    invalid_arg "Synthesize.with_writes: fraction must be in [0, 1]";
  let n = Trace.length trace in
  let times = Array.make n 0. in
  let event_nodes = Array.make n 0 in
  let event_objects = Array.make n 0 in
  let kinds = Array.make n Trace.Read in
  let pos = ref 0 in
  Trace.iter
    (fun ~time ~node ~object_id ~kind ->
      times.(!pos) <- time;
      event_nodes.(!pos) <- node;
      event_objects.(!pos) <- object_id;
      kinds.(!pos) <-
        (match kind with
        | Trace.Write -> Trace.Write
        | Trace.Read ->
          if Util.Prng.float rng 1. < write_fraction then Trace.Write
          else Trace.Read);
      incr pos)
    trace;
  Trace.create_unsafe ~nodes:(Trace.node_count trace)
    ~objects:(Trace.object_count trace)
    ~duration_s:(Trace.duration_s trace)
    ~times ~event_nodes ~event_objects ~kinds
