(** Synthetic case-study workloads.

    The paper evaluates two one-day workloads over 1000 shared objects on a
    20-node system:

    - {b WEB}: heavy-tailed Zipf popularity derived from the WorldCup98 web
      logs — 300K requests, most popular object 36K accesses, least popular
      1 access.
    - {b GROUP}: a working group on an active collaborative project — only
      popular objects, near-uniform popularity, 16M requests, most popular
      36K accesses, least popular 8.5K.

    The original traces are not redistributable; these generators synthesize
    workloads with the same published marginals (see DESIGN.md). Request
    origins follow a skewed node-activity distribution ("some sites are
    bigger or more active than others"); request times are uniform with an
    optional diurnal modulation. A [scale] factor shrinks request counts
    (and the object universe) proportionally for faster experiments. *)

type spec = {
  nodes : int;
  objects : int;
  total_requests : int;
  max_object_requests : int;
  min_object_requests : int;
  duration_s : float;
  node_skew : float;
      (** Zipf exponent of per-node activity; 0. = uniform sites. *)
  locality_h : float;
      (** Interest locality: an object accessed [c] times is spread over a
          "home subset" of roughly [nodes * c / (c + locality_h)] sites
          (weighted towards active ones), so rarely-accessed objects live
          at few sites — as in real office traces — instead of scattering
          single accesses across every node. [0.] disables (every object
          is accessed from everywhere), which makes per-user cold-miss
          rates unrealistically high for heavy-tailed workloads. *)
  diurnal : bool;
      (** When true, request times follow a one-period sinusoidal daily
          pattern instead of a uniform spread. *)
}

val web_spec : spec
(** The paper's WEB workload at full scale. *)

val group_spec : spec
(** The paper's GROUP workload at full scale. *)

val scale_spec : ?object_factor:float -> spec -> factor:float -> spec
(** Scale request counts by [factor] in (0, 1] and object counts by
    [object_factor] (default [factor]); keeps durations. Scaling objects
    less aggressively than requests ([object_factor > factor]) preserves a
    heavy tail's character — the per-node working set stays a small
    fraction of the catalogue, which is what makes storage-constrained
    placement cheap relative to replica-constrained placement on WEB-like
    workloads (Figure 1). *)

val node_weights : rng:Util.Prng.t -> nodes:int -> skew:float -> float array
(** Per-node activity weights, normalized to sum 1, assigned to a random
    permutation of nodes so the busiest site is not always node 0. *)

val web : rng:Util.Prng.t -> spec -> Trace.t
(** Zipf–Mandelbrot popularity fitted to the spec's marginals. *)

val group : rng:Util.Prng.t -> spec -> Trace.t
(** Near-uniform popularity in [min, max] with one object pinned to the
    spec's maximum, rescaled to the requested total. *)

val with_writes :
  rng:Util.Prng.t -> write_fraction:float -> Trace.t -> Trace.t
(** Convert a uniformly chosen fraction of read events into writes — used
    to exercise the update-cost extension (term (12) of the paper). *)
