(** Zipf and Zipf–Mandelbrot popularity laws.

    The WEB workload of the paper is derived from the WorldCup98 trace; the
    published marginals are: 1000 objects, 300K requests, most popular
    object 36K accesses, least popular 1 access. A pure power law cannot
    satisfy all three constraints at once, so we fit the three-parameter
    Zipf–Mandelbrot law [count(r) = a / (r + q)^s], which can. *)

val harmonic : n:int -> s:float -> float
(** Generalized harmonic number [sum_{r=1..n} r^{-s}]. Requires [n >= 1]. *)

val frequencies : n:int -> s:float -> float array
(** Normalized Zipf probabilities for ranks 1..n ([index 0] = rank 1). *)

type mandelbrot = { c1 : float; q : float; s : float }
(** [count r = c1 * ((1 + q) / (r + q))^s] for rank [r] in 1..n; [c1] is
    the count at rank 1. Evaluated in log space so that extreme [q]/[s]
    combinations stay finite. *)

val mandelbrot_count : mandelbrot -> int -> float
(** Expected access count at a 1-based rank. *)

val fit_mandelbrot :
  n:int -> total:float -> max_count:float -> min_count:float -> mandelbrot
(** [fit_mandelbrot ~n ~total ~max_count ~min_count] finds parameters such
    that rank 1 has [max_count] accesses, rank [n] has [min_count], and the
    counts sum as close to [total] as the law permits. The max/min
    marginals are always honored exactly; with those pinned the law can
    express totals only within an interval (pure power law at one end,
    geometric decay at the other), so an out-of-interval [total] is clamped
    to the nearest achievable value — this happens when a workload spec is
    scaled down aggressively, see {!Synthesize.scale_spec}. Requires
    [max_count > min_count > 0], [n >= 2], and
    [n * min_count < total < n * max_count]. *)

val counts : mandelbrot -> n:int -> int array
(** Integer access counts per rank, rounded with the fractional remainders
    redistributed so the total is preserved exactly. Every rank gets at
    least 1. *)
