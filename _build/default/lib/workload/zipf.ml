let harmonic ~n ~s =
  if n < 1 then invalid_arg "Zipf.harmonic: n must be >= 1";
  let acc = ref 0. in
  for r = 1 to n do
    acc := !acc +. (float_of_int r ** -.s)
  done;
  !acc

let frequencies ~n ~s =
  let h = harmonic ~n ~s in
  Array.init n (fun i -> (float_of_int (i + 1) ** -.s) /. h)

type mandelbrot = { c1 : float; q : float; s : float }

let mandelbrot_count { c1; q; s } r =
  if r < 1 then invalid_arg "Zipf.mandelbrot_count: rank must be >= 1";
  c1 *. exp (s *. (log (1. +. q) -. log (float_of_int r +. q)))

(* With the max/min ratio pinned, q determines s:
     ((n + q) / (1 + q))^s = max/min
     => s = log ratio / log ((n + q) / (1 + q)).
   As q -> 0 the law approaches a pure power law (smallest total); as
   q -> infinity it approaches geometric decay between max and min (largest
   total). The total is monotone in q, so bisection finds the q whose total
   is closest to the request, clamped to the achievable interval. *)
let fit_mandelbrot ~n ~total ~max_count ~min_count =
  if n < 2 then invalid_arg "Zipf.fit_mandelbrot: n must be >= 2";
  if not (max_count > min_count && min_count > 0.) then
    invalid_arg "Zipf.fit_mandelbrot: requires max_count > min_count > 0";
  if total <= float_of_int n *. min_count || total >= float_of_int n *. max_count
  then invalid_arg "Zipf.fit_mandelbrot: total out of representable range";
  let ratio = max_count /. min_count in
  let params q =
    let s = log ratio /. log ((float_of_int n +. q) /. (1. +. q)) in
    { c1 = max_count; q; s }
  in
  let total_of q =
    let m = params q in
    let acc = ref 0. in
    for r = 1 to n do
      acc := !acc +. mandelbrot_count m r
    done;
    !acc
  in
  let q_min = 1e-9 and q_max = 1e12 in
  let t_min = total_of q_min and t_max = total_of q_max in
  if total <= t_min then params q_min
  else if total >= t_max then params q_max
  else begin
    let lo = ref q_min and hi = ref q_max in
    for _ = 1 to 200 do
      (* Bisect in log space: the interesting scale of q spans many orders
         of magnitude. *)
      let mid = exp (0.5 *. (log !lo +. log !hi)) in
      if total_of mid < total then lo := mid else hi := mid
    done;
    params !lo
  end

let counts m ~n =
  let raw = Array.init n (fun i -> mandelbrot_count m (i + 1)) in
  let target = int_of_float (Float.round (Util.Vecops.sum raw)) in
  let floors = Array.map (fun x -> int_of_float (Float.floor x)) raw in
  let out = Array.map (fun f -> max f 1) floors in
  (* Hand the remaining budget to the ranks with the largest fractional
     parts, preserving the total and the monotone shape. *)
  let assigned = Array.fold_left ( + ) 0 out in
  let deficit = target - assigned in
  if deficit > 0 then begin
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun i j ->
        let fi = raw.(i) -. Float.of_int floors.(i)
        and fj = raw.(j) -. Float.of_int floors.(j) in
        compare fj fi)
      order;
    for idx = 0 to deficit - 1 do
      let i = order.(idx mod n) in
      out.(i) <- out.(i) + 1
    done
  end;
  out
