(** Trace profiling: the workload statistics the methodology's inputs are
    judged by.

    The paper characterizes its workloads by total requests, per-object
    popularity extremes, and how active the sites are; the caching
    ceiling additionally depends on per-site working sets (a site's first
    access to an object can never be a cache hit). This module computes
    those numbers for any trace, so users can compare their own traces
    against the synthetic WEB/GROUP stand-ins. *)

type t = {
  reads : int;
  writes : int;
  objects_touched : int;  (** objects with at least one read *)
  top_object_reads : int;
  median_object_reads : float;
  min_object_reads : int;  (** among touched objects *)
  node_share_max : float;  (** busiest site's fraction of all reads *)
  node_share_min : float;  (** quietest active site's fraction *)
  active_nodes : int;
  mean_working_set : float;
      (** average over sites of distinct objects read by the site *)
  max_working_set : int;
  cold_miss_fraction : float;
      (** per-(site, object) first reads / all reads — a lower bound on
          any local reactive cache's miss rate *)
  worst_user_cold_miss_fraction : float;
      (** the same ratio for the worst single site — an upper bound on
          LRU's per-user QoS there *)
}

val of_trace : Trace.t -> t

val pp : Format.formatter -> t -> unit
