type kind = Read | Write

type t = {
  nodes : int;
  objects : int;
  duration_s : float;
  times : float array;
  event_nodes : int array;
  event_objects : int array;
  kinds : kind array;
}

let length t = Array.length t.times
let duration_s t = t.duration_s
let node_count t = t.nodes
let object_count t = t.objects

let time t i = t.times.(i)
let node t i = t.event_nodes.(i)
let object_id t i = t.event_objects.(i)
let kind t i = t.kinds.(i)

let iter f t =
  for i = 0 to length t - 1 do
    f ~time:t.times.(i) ~node:t.event_nodes.(i) ~object_id:t.event_objects.(i)
      ~kind:t.kinds.(i)
  done

let validate t =
  let n = length t in
  if
    Array.length t.event_nodes <> n
    || Array.length t.event_objects <> n
    || Array.length t.kinds <> n
  then invalid_arg "Trace: field arrays must have equal lengths";
  if t.duration_s <= 0. then invalid_arg "Trace: duration must be positive";
  for i = 0 to n - 1 do
    if t.times.(i) < 0. || t.times.(i) >= t.duration_s then
      invalid_arg "Trace: event time outside [0, duration)";
    if t.event_nodes.(i) < 0 || t.event_nodes.(i) >= t.nodes then
      invalid_arg "Trace: node out of range";
    if t.event_objects.(i) < 0 || t.event_objects.(i) >= t.objects then
      invalid_arg "Trace: object out of range";
    if i > 0 && t.times.(i) < t.times.(i - 1) then
      invalid_arg "Trace: events not sorted by time"
  done;
  t

let of_events ~nodes ~objects ~duration_s events =
  let arr = Array.of_list events in
  Array.sort (fun (t1, _, _, _) (t2, _, _, _) -> compare t1 t2) arr;
  let n = Array.length arr in
  let times = Array.make n 0.
  and event_nodes = Array.make n 0
  and event_objects = Array.make n 0
  and kinds = Array.make n Read in
  Array.iteri
    (fun i (t, nd, k, kd) ->
      times.(i) <- t;
      event_nodes.(i) <- nd;
      event_objects.(i) <- k;
      kinds.(i) <- kd)
    arr;
  validate
    { nodes; objects; duration_s; times; event_nodes; event_objects; kinds }

let create_unsafe ~nodes ~objects ~duration_s ~times ~event_nodes
    ~event_objects ~kinds =
  validate
    { nodes; objects; duration_s; times; event_nodes; event_objects; kinds }

let count_kind t k =
  Array.fold_left (fun acc kd -> if kd = k then acc + 1 else acc) 0 t.kinds

let read_count t = count_kind t Read
let write_count t = count_kind t Write

let remap_nodes t ~mapping =
  if Array.length mapping <> t.nodes then
    invalid_arg "Trace.remap_nodes: mapping length must equal node count";
  Array.iter
    (fun m ->
      if m < 0 || m >= t.nodes then
        invalid_arg "Trace.remap_nodes: mapping target out of range")
    mapping;
  { t with event_nodes = Array.map (fun n -> mapping.(n)) t.event_nodes }
