lib/rounding/round_avg.ml: Array Float List Mcperf Round Topology Workload
