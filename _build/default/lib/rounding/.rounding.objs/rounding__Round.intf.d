lib/rounding/round.mli: Mcperf Stdlib
