lib/rounding/round_avg.mli: Mcperf Round Stdlib
