lib/rounding/round.ml: Array Float List Mcperf Workload
