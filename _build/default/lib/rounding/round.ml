type result = {
  placement : Mcperf.Costing.placement;
  evaluation : Mcperf.Costing.evaluation;
  rounded_up : int;
  rounded_down : int;
  repaired : int;
}

let integral_eps = 1e-6

(* A maximal run of consecutive intervals of one (node, object) pair that
   carry the same fractional store value; rounded as a unit (the appendix's
   speed optimization). *)
type run = {
  node : int;
  object_id : int;
  i0 : int;
  i1 : int;
  mutable value : float;
  mutable live : bool;  (* still fractional / not yet rounded *)
}

(* One read cell (n, i, k) with positive demand that placement must cover;
   [rw] is the weighted read count. *)
type cell = {
  cnode : int;
  cinterval : int;
  rw : float;
  mutable cover_sum : float;  (* sum of reachable store values *)
  mutable int_cover : int;  (* number of reachable stores at exactly 1 *)
}

type state = {
  perm : Mcperf.Permission.t;
  nodes : int;
  intervals : int;
  vals : float array array array;  (* node -> object -> interval *)
  cells : cell array array;  (* object -> cells *)
  qos : float array;  (* per node: always_covered + sum rw*min(1,cover) *)
  target : float array;  (* per node: fraction * total reads *)
  alpha : float;
  beta : float;
  weight : float array;
}

let cap1 x = if x > 1. then 1. else x

(* Cells of object [k] within [i0, i1] whose node can reach [m]. *)
let iter_affected st ~m ~k ~i0 ~i1 f =
  Array.iter
    (fun c ->
      if
        c.cinterval >= i0 && c.cinterval <= i1
        && st.perm.Mcperf.Permission.reach.(c.cnode).(m)
      then f c)
    st.cells.(k)

(* Change a run's value, maintaining cover sums, integral-cover counts and
   per-node qos. *)
let set_run st (r : run) new_value =
  let old_value = r.value in
  let delta = new_value -. old_value in
  if delta <> 0. then begin
    iter_affected st ~m:r.node ~k:r.object_id ~i0:r.i0 ~i1:r.i1 (fun c ->
        let before = cap1 c.cover_sum in
        c.cover_sum <- c.cover_sum +. delta;
        if new_value >= 1. -. integral_eps && old_value < 1. -. integral_eps
        then c.int_cover <- c.int_cover + 1;
        if old_value >= 1. -. integral_eps && new_value < 1. -. integral_eps
        then c.int_cover <- c.int_cover - 1;
        let after = cap1 c.cover_sum in
        st.qos.(c.cnode) <- st.qos.(c.cnode) +. (c.rw *. (after -. before)));
    for i = r.i0 to r.i1 do
      st.vals.(r.node).(r.object_id).(i) <- new_value
    done;
    r.value <- new_value
  end

(* Signed creation-cost delta of moving the run's value to [target], from
   the neighbouring-interval case analysis of Figures 6/7 (derived directly
   from the max(0, x_i - x_(i-1)) creation terms). *)
let creation_delta st (r : run) ~target =
  let v = r.value in
  let prev =
    if r.i0 = 0 then 0. else st.vals.(r.node).(r.object_id).(r.i0 - 1)
  in
  let succ_term x =
    (* Creation edge between the run and interval i1+1, if that interval
       exists within the horizon. *)
    if r.i1 + 1 >= st.intervals then 0.
    else
      let succ = st.vals.(r.node).(r.object_id).(r.i1 + 1) in
      Float.max 0. (succ -. x)
  in
  let old_cost = Float.max 0. (v -. prev) +. succ_term v in
  let new_cost = Float.max 0. (target -. prev) +. succ_term target in
  new_cost -. old_cost

type benefit = {
  dcost : float;  (* signed cost change (storage + creation) *)
  reward : float;  (* demand whose integral coverage depends on this run *)
  dqos : float array option;
      (* per-affected-node mixed-qos change; None means zero everywhere *)
}

let run_length r = r.i1 - r.i0 + 1

let benefit_of st (r : run) ~target =
  let w = st.weight.(r.object_id) in
  let len = float_of_int (run_length r) in
  let dstorage = st.alpha *. w *. (target -. r.value) *. len in
  let dcreate = st.beta *. w *. creation_delta st r ~target in
  let delta = target -. r.value in
  let reward = ref 0. in
  let dqos = Array.make st.nodes 0. in
  let any = ref false in
  iter_affected st ~m:r.node ~k:r.object_id ~i0:r.i0 ~i1:r.i1 (fun c ->
      if c.int_cover = 0 then reward := !reward +. c.rw;
      let change = c.rw *. (cap1 (c.cover_sum +. delta) -. cap1 c.cover_sum) in
      if change <> 0. then begin
        dqos.(c.cnode) <- dqos.(c.cnode) +. change;
        any := true
      end);
  {
    dcost = dstorage +. dcreate;
    reward = !reward;
    dqos = (if !any then Some dqos else None);
  }

let down_is_safe st b =
  match b.dqos with
  | None -> true
  | Some dqos ->
    let ok = ref true in
    Array.iteri
      (fun n d ->
        if d < 0. && st.qos.(n) +. d < st.target.(n) -. 1e-9 then ok := false)
      dqos;
    !ok

(* Quantize interior values onto a grid so that solver noise does not
   fragment runs: a first-order LP solution that has not fully converged
   carries per-interval jitter, and without quantization almost every
   fractional interval becomes its own run, making the greedy loop
   quadratic in tens of thousands of units. Coarsen until the run count
   is workable; the values only seed the rounding, so the perturbation is
   harmless (feasibility is re-established by the algorithm itself). *)
let quantize_vals st ~grid =
  for m = 0 to st.nodes - 1 do
    Array.iter
      (fun per_interval ->
        Array.iteri
          (fun i v ->
            if v > integral_eps && v < 1. -. integral_eps then begin
              let q = Float.round (v *. grid) /. grid in
              per_interval.(i) <-
                (if q <= integral_eps then 0.
                 else if q >= 1. -. integral_eps then 1.
                 else q)
            end)
          per_interval)
      st.vals.(m)
  done

let count_runs st =
  let count = ref 0 in
  for m = 0 to st.nodes - 1 do
    Array.iter
      (fun per_interval ->
        let prev = ref 0. in
        Array.iter
          (fun v ->
            if
              v > integral_eps && v < 1. -. integral_eps
              && Float.abs (v -. !prev) > 1e-9
            then incr count;
            prev := v)
          per_interval)
      st.vals.(m)
  done;
  !count

let max_runs = 8_000

(* Extract maximal equal-value fractional runs from the LP solution. *)
let runs_of_vals st =
  let runs = ref [] in
  for m = 0 to st.nodes - 1 do
    Array.iteri
      (fun k per_interval ->
        let i = ref 0 in
        while !i < st.intervals do
          let v = per_interval.(!i) in
          if v > integral_eps && v < 1. -. integral_eps then begin
            let j = ref !i in
            while
              !j + 1 < st.intervals
              && Float.abs (per_interval.(!j + 1) -. v) < 1e-9
            do
              incr j
            done;
            runs :=
              { node = m; object_id = k; i0 = !i; i1 = !j; value = v; live = true }
              :: !runs;
            i := !j + 1
          end
          else incr i
        done)
      st.vals.(m)
  done;
  !runs

let round (model : Mcperf.Model.t) ~x =
  let perm = model.Mcperf.Model.permission in
  let spec = perm.Mcperf.Permission.spec in
  match spec.Mcperf.Spec.goal with
  | Mcperf.Spec.Avg_latency _ ->
    Error "Round.round: the rounding algorithm applies to QoS goals only"
  | Mcperf.Spec.Qos { fraction; _ } ->
    let nodes = Mcperf.Spec.node_count spec in
    let intervals = Mcperf.Spec.interval_count spec in
    let demand = spec.Mcperf.Spec.demand in
    let weight = demand.Workload.Demand.weight in
    let vals = Mcperf.Model.store_placement model x in
    (* Snap nearly-integral values. *)
    Array.iter
      (Array.iter (fun per_interval ->
           Array.iteri
             (fun i v ->
               if v < integral_eps then per_interval.(i) <- 0.
               else if v > 1. -. integral_eps then per_interval.(i) <- 1.)
             per_interval))
      vals;
    (* Build cells and initialize coverage state. *)
    let cells =
      Array.mapi
        (fun k kcells ->
          let out = ref [] in
          Array.iter
            (fun (c : Workload.Demand.cell) ->
              if not perm.Mcperf.Permission.origin_covered.(c.node) then
                out :=
                  {
                    cnode = c.node;
                    cinterval = c.interval;
                    rw = c.count *. weight.(k);
                    cover_sum = 0.;
                    int_cover = 0;
                  }
                  :: !out)
            kcells;
          Array.of_list !out)
        demand.Workload.Demand.reads
    in
    let st =
      {
        perm;
        nodes;
        intervals;
        vals;
        cells;
        qos = Array.copy model.Mcperf.Model.always_covered;
        target =
          Array.map (fun t -> fraction *. t) model.Mcperf.Model.node_totals;
        alpha = spec.Mcperf.Spec.costs.Mcperf.Spec.alpha;
        beta = spec.Mcperf.Spec.costs.Mcperf.Spec.beta;
        weight;
      }
    in
    (* Coarsen the value grid until the run count is tractable, then
       rebuild the coverage state from the quantized values. *)
    let grid = ref 1000. in
    quantize_vals st ~grid:!grid;
    while count_runs st > max_runs && !grid >= 10. do
      grid := !grid /. 10.;
      quantize_vals st ~grid:!grid
    done;
    Array.iteri
      (fun k kcells ->
        Array.iter
          (fun c ->
            for m = 0 to nodes - 1 do
              if perm.Mcperf.Permission.reach.(c.cnode).(m) then begin
                let v = vals.(m).(k).(c.cinterval) in
                c.cover_sum <- c.cover_sum +. v;
                if v >= 1. -. integral_eps then c.int_cover <- c.int_cover + 1
              end
            done;
            st.qos.(c.cnode) <- st.qos.(c.cnode) +. (c.rw *. cap1 c.cover_sum))
          kcells)
      cells;
    let live = ref (runs_of_vals st) in
    let rounded_up = ref 0 and rounded_down = ref 0 in
    let drop r =
      r.live <- false;
      live := List.filter (fun r' -> r'.live) !live
    in
    (* Apply every safe round-down, best (most saving per unit of reward
       put at risk) first. *)
    let rec drain_down () =
      let best = ref None in
      List.iter
        (fun r ->
          let b = benefit_of st r ~target:0. in
          if down_is_safe st b then begin
            let profitable = b.dcost < -1e-12 in
            if profitable then begin
              let score =
                if b.reward > 0. then b.dcost /. b.reward else b.dcost *. 1e12
              in
              match !best with
              | Some (_, s) when s <= score -> ()
              | _ -> best := Some (r, score)
            end
          end)
        !live;
      match !best with
      | Some (r, _) ->
        set_run st r 0.;
        incr rounded_down;
        drop r;
        drain_down ()
      | None -> ()
    in
    (* One greedy step: for each remaining run, consider rounding up, or
       down when that is qos-safe and at most as expensive; apply the
       action with the best cost/reward ratio. *)
    let step_best () =
      let best = ref None in
      List.iter
        (fun r ->
          let bu = benefit_of st r ~target:1. in
          let bd = benefit_of st r ~target:0. in
          let target, b =
            if down_is_safe st bd && bd.dcost <= bu.dcost then (0., bd)
            else (1., bu)
          in
          let score =
            if b.reward > 0. then b.dcost /. b.reward else b.dcost *. 1e12
          in
          match !best with
          | Some (_, _, s) when s <= score -> ()
          | _ -> best := Some (r, target, score))
        !live;
      match !best with
      | Some (r, target, _) ->
        set_run st r target;
        if target = 1. then incr rounded_up else incr rounded_down;
        drop r
      | None -> ()
    in
    drain_down ();
    while !live <> [] do
      step_best ();
      drain_down ()
    done;
    (* Legalize: the LP lets store values decrease mid-support, so a run
       rounded up may start at an interval where creation is not permitted
       (its fractional predecessor carried the creation). Extend such runs
       backward to the nearest permitted creation interval -- the prefix
       structure of the store support guarantees one exists, and extending
       only adds coverage, so feasibility is preserved. *)
    let stored m k i =
      i >= 0 && i < intervals && st.vals.(m).(k).(i) >= 1. -. integral_eps
    in
    let set_single m k i value =
      let r =
        {
          node = m;
          object_id = k;
          i0 = i;
          i1 = i;
          value = st.vals.(m).(k).(i);
          live = false;
        }
      in
      set_run st r value
    in
    let legalize m k =
      for i = intervals - 1 downto 0 do
        if
          stored m k i
          && (not (stored m k (i - 1)))
          && not (Mcperf.Permission.create_allowed perm ~node:m ~interval:i
                    ~object_id:k)
        then begin
          (* Walk back to a permitted creation interval, storing along the
             way. *)
          let j = ref (i - 1) in
          while
            !j >= 0
            && not
                 (Mcperf.Permission.create_allowed perm ~node:m ~interval:!j
                    ~object_id:k)
          do
            set_single m k !j 1.;
            decr j
          done;
          if !j >= 0 then set_single m k !j 1.
        end
      done
    in
    for m = 0 to nodes - 1 do
      for k = 0 to Array.length st.cells - 1 do
        legalize m k
      done
    done;
    (* Trim: rounding whole runs can overshoot (a run of four intervals
       rounded up when three suffice). Shed boundary intervals of stored
       runs while the target QoS holds -- the integral-granularity
       counterpart of the paper's round-down phase. A start interval can
       only be shed when the successor may legally become the new run
       start (permitted creation). *)
    let try_drop m k i =
      if stored m k i then begin
        let is_end = not (stored m k (i + 1)) in
        let is_start = not (stored m k (i - 1)) in
        let successor_legal =
          is_end
          || Mcperf.Permission.create_allowed perm ~node:m ~interval:(i + 1)
               ~object_id:k
        in
        let droppable = is_end || (is_start && successor_legal) in
        if droppable then begin
          let r =
            { node = m; object_id = k; i0 = i; i1 = i; value = 1.; live = false }
          in
          let b = benefit_of st r ~target:0. in
          if b.dcost < -1e-12 && down_is_safe st b then begin
            set_run st r 0.;
            incr rounded_down;
            true
          end
          else false
        end
        else false
      end
      else false
    in
    let improved = ref true in
    while !improved do
      improved := false;
      for m = 0 to nodes - 1 do
        Array.iteri
          (fun k per_interval ->
            Array.iteri
              (fun i _ -> if try_drop m k i then improved := true)
              per_interval)
          st.vals.(m)
      done
    done;
    (* Repair: first-order LP solutions can carry small infeasibilities, so
       greedily add covering replicas until every user meets the target. *)
    let repaired = ref 0 in
    let max_qos = Mcperf.Permission.max_feasible_qos perm in
    let infeasible = ref None in
    for n = 0 to nodes - 1 do
      if
        max_qos.(n) *. model.Mcperf.Model.node_totals.(n)
        < st.target.(n) -. 1e-9
      then infeasible := Some n
    done;
    (match !infeasible with
    | Some n ->
      ignore n;
      ()
    | None ->
      let progress = ref true in
      while
        !progress
        && Array.exists
             (fun n -> st.qos.(n) < st.target.(n) -. 1e-9)
             (Array.init nodes (fun n -> n))
      do
        progress := false;
        for n = 0 to nodes - 1 do
          if st.qos.(n) < st.target.(n) -. 1e-9 then begin
            (* Cheapest single-interval cover for this node's biggest
               uncovered read. *)
            let best_cell = ref None in
            Array.iteri
              (fun k kcells ->
                Array.iter
                  (fun c ->
                    if c.cnode = n && c.int_cover = 0 then begin
                      (* A store is addable iff permitted and not already 1. *)
                      let addable = ref false in
                      for m = 0 to nodes - 1 do
                        if
                          perm.Mcperf.Permission.reach.(n).(m)
                          && Mcperf.Permission.store_possible perm ~node:m
                               ~interval:c.cinterval ~object_id:k
                          && st.vals.(m).(k).(c.cinterval) < 1.
                        then addable := true
                      done;
                      if !addable then
                        match !best_cell with
                        | Some (_, _, rw) when rw >= c.rw -> ()
                        | _ -> best_cell := Some (k, c, c.rw)
                    end)
                  kcells)
              cells;
            match !best_cell with
            | None -> ()
            | Some (k, c, _) ->
              (* Choose the covering node that extends an existing run if
                 possible (saves the creation cost). *)
              let pick = ref None in
              for m = 0 to nodes - 1 do
                if
                  perm.Mcperf.Permission.reach.(n).(m)
                  && Mcperf.Permission.store_possible perm ~node:m
                       ~interval:c.cinterval ~object_id:k
                  && st.vals.(m).(k).(c.cinterval) < 1.
                then begin
                  let adjacent =
                    (c.cinterval > 0 && st.vals.(m).(k).(c.cinterval - 1) = 1.)
                    || (c.cinterval + 1 < intervals
                       && st.vals.(m).(k).(c.cinterval + 1) = 1.)
                  in
                  match !pick with
                  | Some (_, best_adj) when best_adj || not adjacent -> ()
                  | _ -> pick := Some (m, adjacent)
                end
              done;
              (match !pick with
              | None -> ()
              | Some (m, _) ->
                let r =
                  {
                    node = m;
                    object_id = k;
                    i0 = c.cinterval;
                    i1 = c.cinterval;
                    value = st.vals.(m).(k).(c.cinterval);
                    live = false;
                  }
                in
                set_run st r 1.;
                legalize m k;
                incr repaired;
                progress := true)
          end
        done
      done);
    (* Assemble the integral placement. *)
    let placement = Mcperf.Costing.empty_placement spec in
    for m = 0 to nodes - 1 do
      Array.iteri
        (fun k per_interval ->
          let mask = ref 0 in
          Array.iteri
            (fun i v -> if v >= 1. -. integral_eps then mask := !mask lor (1 lsl i))
            per_interval;
          placement.(m).(k) <- !mask)
        st.vals.(m)
    done;
    let evaluation = Mcperf.Costing.evaluate perm placement in
    if not evaluation.Mcperf.Costing.meets_goal then
      Error
        "Round.round: could not reach the QoS target (class-infeasible goal)"
    else
      Ok
        {
          placement;
          evaluation;
          rounded_up = !rounded_up;
          rounded_down = !rounded_down;
          repaired = !repaired;
        }
