let thresholds = [ 0.9; 0.7; 0.5; 0.3; 0.1; 0.01 ]

(* Legalize run starts in place: a stored run must begin at an interval
   with creation permission; extend backward to the nearest permitted
   interval (the store support's prefix structure guarantees one). *)
let legalize (perm : Mcperf.Permission.t) placement =
  let spec = perm.Mcperf.Permission.spec in
  let nodes = Mcperf.Spec.node_count spec in
  let objects = Mcperf.Spec.object_count spec in
  let intervals = Mcperf.Spec.interval_count spec in
  for m = 0 to nodes - 1 do
    for k = 0 to objects - 1 do
      let mask = ref placement.(m).(k) in
      for i = intervals - 1 downto 0 do
        let stored = !mask land (1 lsl i) <> 0 in
        let prev_stored = i > 0 && !mask land (1 lsl (i - 1)) <> 0 in
        if
          stored && (not prev_stored)
          && not
               (Mcperf.Permission.create_allowed perm ~node:m ~interval:i
                  ~object_id:k)
        then begin
          let j = ref (i - 1) in
          while
            !j >= 0
            && not
                 (Mcperf.Permission.create_allowed perm ~node:m ~interval:!j
                    ~object_id:k)
          do
            mask := !mask lor (1 lsl !j);
            decr j
          done;
          if !j >= 0 then mask := !mask lor (1 lsl !j)
        end
      done;
      placement.(m).(k) <- !mask
    done
  done

let placement_at_threshold (model : Mcperf.Model.t) x theta =
  let perm = model.Mcperf.Model.permission in
  let spec = perm.Mcperf.Permission.spec in
  let vals = Mcperf.Model.store_placement model x in
  let placement = Mcperf.Costing.empty_placement spec in
  Array.iteri
    (fun m per_obj ->
      Array.iteri
        (fun k per_interval ->
          let mask = ref 0 in
          Array.iteri
            (fun i v -> if v >= theta then mask := !mask lor (1 lsl i))
            per_interval;
          placement.(m).(k) <- !mask)
        per_obj)
    vals;
  legalize perm placement;
  placement

(* Best single repair: for the node furthest above its average goal, add
   the permitted store with the largest weighted latency reduction per
   unit of (storage + creation) cost. Returns false when no addition can
   help. *)
let repair_step (perm : Mcperf.Permission.t) placement =
  let spec = perm.Mcperf.Permission.spec in
  let sys = spec.Mcperf.Spec.system in
  let demand = spec.Mcperf.Spec.demand in
  let nodes = Mcperf.Spec.node_count spec in
  let origin = sys.Topology.System.origin in
  let weight = demand.Workload.Demand.weight in
  let costs = spec.Mcperf.Spec.costs in
  let e = Mcperf.Costing.evaluate perm placement in
  let tavg =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Avg_latency { tavg_ms } -> tavg_ms
    | Mcperf.Spec.Qos _ -> invalid_arg "Round_avg.repair_step: QoS goal"
  in
  (* Worst node relative to the goal. *)
  let worst = ref (-1) in
  for n = 0 to nodes - 1 do
    if
      e.Mcperf.Costing.avg_latency.(n) > tavg +. 1e-9
      && (!worst < 0
         || e.Mcperf.Costing.avg_latency.(n)
            > e.Mcperf.Costing.avg_latency.(!worst))
    then worst := n
  done;
  if !worst < 0 then `Done
  else begin
    let n = !worst in
    (* Current serving latency of each of n's read cells, and the best
       permitted improvement. *)
    let best = ref None in
    Array.iteri
      (fun k cells ->
        Array.iter
          (fun (c : Workload.Demand.cell) ->
            if c.node = n then begin
              let i = c.interval in
              let cur = ref sys.Topology.System.latency.(n).(origin) in
              for m = 0 to nodes - 1 do
                if
                  m <> origin
                  && perm.Mcperf.Permission.reach.(n).(m)
                  && placement.(m).(k) land (1 lsl i) <> 0
                  && sys.Topology.System.latency.(n).(m) < !cur
                then cur := sys.Topology.System.latency.(n).(m)
              done;
              for m = 0 to nodes - 1 do
                if
                  m <> origin
                  && perm.Mcperf.Permission.reach.(n).(m)
                  && placement.(m).(k) land (1 lsl i) = 0
                  && Mcperf.Permission.store_possible perm ~node:m ~interval:i
                       ~object_id:k
                  && sys.Topology.System.latency.(n).(m) < !cur
                then begin
                  let gain =
                    (!cur -. sys.Topology.System.latency.(n).(m))
                    *. c.count *. weight.(k)
                  in
                  let add_cost =
                    weight.(k)
                    *. (costs.Mcperf.Spec.alpha +. costs.Mcperf.Spec.beta)
                  in
                  let score = gain /. Float.max add_cost 1e-9 in
                  match !best with
                  | Some (_, _, _, s) when s >= score -> ()
                  | _ -> best := Some (m, k, i, score)
                end
              done
            end)
          cells)
      demand.Workload.Demand.reads;
    match !best with
    | None -> `Stuck
    | Some (m, k, i, _) ->
      placement.(m).(k) <- placement.(m).(k) lor (1 lsl i);
      legalize perm placement;
      `Progress
  end

let trim (perm : Mcperf.Permission.t) placement =
  let spec = perm.Mcperf.Permission.spec in
  let nodes = Mcperf.Spec.node_count spec in
  let objects = Mcperf.Spec.object_count spec in
  let intervals = Mcperf.Spec.interval_count spec in
  let dropped = ref 0 in
  let improved = ref true in
  while !improved do
    improved := false;
    for m = 0 to nodes - 1 do
      for k = 0 to objects - 1 do
        let mask = placement.(m).(k) in
        if mask <> 0 then
          for i = 0 to intervals - 1 do
            let bit = 1 lsl i in
            let stored = placement.(m).(k) land bit <> 0 in
            let is_end =
              i + 1 >= intervals || placement.(m).(k) land (bit lsl 1) = 0
            in
            let is_start = i = 0 || placement.(m).(k) land (bit lsr 1) = 0 in
            let successor_legal =
              is_end
              || Mcperf.Permission.create_allowed perm ~node:m
                   ~interval:(i + 1) ~object_id:k
            in
            if stored && (is_end || (is_start && successor_legal)) then begin
              placement.(m).(k) <- placement.(m).(k) land lnot bit;
              let e = Mcperf.Costing.evaluate perm placement in
              if e.Mcperf.Costing.meets_goal then begin
                incr dropped;
                improved := true
              end
              else placement.(m).(k) <- placement.(m).(k) lor bit
            end
          done
      done
    done
  done;
  !dropped

let round (model : Mcperf.Model.t) ~x =
  let perm = model.Mcperf.Model.permission in
  let spec = perm.Mcperf.Permission.spec in
  match spec.Mcperf.Spec.goal with
  | Mcperf.Spec.Qos _ ->
    Error "Round_avg.round: use Round.round for QoS goals"
  | Mcperf.Spec.Avg_latency _ ->
    let feasible_placement =
      List.fold_left
        (fun acc theta ->
          match acc with
          | Some _ -> acc
          | None ->
            let placement = placement_at_threshold model x theta in
            let e = Mcperf.Costing.evaluate perm placement in
            if e.Mcperf.Costing.meets_goal then Some placement else None)
        None thresholds
    in
    let placement, repaired =
      match feasible_placement with
      | Some p -> (p, 0)
      | None ->
        (* Repair from the densest threshold. *)
        let p = placement_at_threshold model x 0.01 in
        let repaired = ref 0 in
        let budget = ref 10_000 in
        let rec loop () =
          if !budget <= 0 then ()
          else begin
            decr budget;
            match repair_step perm p with
            | `Done -> ()
            | `Stuck -> budget := 0
            | `Progress ->
              incr repaired;
              loop ()
          end
        in
        loop ();
        (p, !repaired)
    in
    let dropped = trim perm placement in
    let evaluation = Mcperf.Costing.evaluate perm placement in
    if not evaluation.Mcperf.Costing.meets_goal then
      Error "Round_avg.round: could not reach the average-latency goal"
    else
      Ok
        {
          Round.placement;
          evaluation;
          rounded_up = 0;
          rounded_down = dropped;
          repaired;
        }
