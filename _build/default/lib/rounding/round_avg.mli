(** Rounding for average-latency goals.

    The paper's rounding algorithm (Figures 5–7) is specific to the QoS
    metric; for the average-latency metric (constraints (7)–(10)) this
    module provides a simpler threshold-plus-repair rounding that serves
    the same purpose — a feasible integral solution certifying how tight
    the LP bound is:

    + threshold: keep the stores whose fractional value reaches θ,
      scanning θ from high to low until the average-latency goal is met
      (more stores can only lower averages, so feasibility is monotone in
      θ);
    + repair: if even a tiny threshold fails (first-order solutions carry
      slack), greedily add the store with the best latency-improvement per
      unit cost until every user meets the goal;
    + trim: drop run-boundary stores whose removal keeps the goal and
      saves cost.

    Placement-permission legality (creations only at permitted intervals)
    is maintained throughout, exactly as in {!Round}. *)

val round :
  Mcperf.Model.t -> x:float array -> (Round.result, string) Stdlib.result
(** [round model ~x] for average-latency models; returns an [Error] for
    QoS models (use {!Round.round}). *)
