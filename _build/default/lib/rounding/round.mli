(** The domain-specific rounding algorithm (paper appendix, Figures 5–7).

    Input: a fractional [store] solution of the MC-PERF LP relaxation.
    Output: a feasible integral placement whose cost certifies how tight
    the LP lower bound is (the paper reports within 10%).

    The algorithm alternates round-ups and round-downs of fractional store
    values, ranked by a cost/reward ratio:

    - {e qos} is the mixed coverage measure (fractional values count
      proportionally, capped at 1 per read); the LP solution satisfies the
      QoS constraint under this measure, and the algorithm never lets it
      drop below the target, so the final all-integral solution is
      feasible.
    - {e reward} is the coverage a value would provide if all fractional
      values were treated as 0 — it breaks ties among values whose
      round-up has no immediate mixed-qos effect (Figure 4's example).
    - {e cost} is the exact storage + creation cost delta, including the
      neighbouring-interval creation effects of Figures 6/7.

    As in the appendix's optimization, maximal runs of consecutive
    intervals holding the same fractional value are rounded as single
    units, which cuts the run time by an order of magnitude for a small
    cost increase.

    The storage/replica-constraint padding, write costs, penalties and
    node-opening costs of the final solution are charged by
    {!Mcperf.Costing.evaluate}, exactly as for simulated heuristics.

    When the first-order LP solution carries residual infeasibility, a
    final repair phase greedily adds cheapest covering replicas until the
    goal is met (or reports failure if the class cannot meet it at all). *)

type result = {
  placement : Mcperf.Costing.placement;
  evaluation : Mcperf.Costing.evaluation;
  rounded_up : int;  (** number of run-units rounded up *)
  rounded_down : int;
  repaired : int;  (** replicas added by the repair phase (0 normally) *)
}

val round : Mcperf.Model.t -> x:float array -> (result, string) Stdlib.result
(** [round model ~x] rounds the LP solution vector [x] (from
    {!Lp.Simplex} or {!Lp.Pdhg}) for QoS-goal models. Average-latency
    models are not supported by this algorithm (the paper's rounding is
    QoS-specific); an [Error] is returned for them. *)
