(** The paper's case study: a corporate remote-office file service.

    Twenty sites on an AS-level-like topology (100–200 ms hops), one of
    which (the best-connected) is the headquarters data center storing all
    files. Two one-day workloads over a shared object set: WEB
    (WorldCup98-like Zipf) and GROUP (uniformly popular collaborative
    files). See {!Workload.Synthesize} for the workload marginals and
    DESIGN.md for the substitutions relative to the paper's proprietary
    data.

    A scenario carries both the event-level trace (driving deployed cache
    heuristics) and two interval-bucketed demands: the raw one (driving
    the greedy heuristics) and an aggregated one (driving the LP lower
    bounds, where the object dimension costs |N|·|I|·|K| in model size). *)

type workload = Web | Group

val workload_name : workload -> string

type t = {
  system : Topology.System.t;
  workload : workload;
  trace : Workload.Trace.t;
  demand : Workload.Demand.t;  (** full-resolution interval demand *)
  bound_demand : Workload.Demand.t;  (** aggregated for LP bounds *)
}

val make :
  ?seed:int ->
  ?nodes:int ->
  ?intervals:int ->
  ?scale:float ->
  ?bound_classes:int ->
  workload ->
  t
(** [make w] builds the case study for workload [w].

    - [seed] (default 2004) drives topology and workload synthesis;
    - [nodes] (default 20) and [intervals] (default 24, i.e. hourly
      evaluation intervals over one day) set the system size;
    - [scale] (default 0.1) scales request counts — 1.0 is the paper's
      full size (16M requests for GROUP; expect long runs). WEB object
      counts scale by [2.5 * scale] to preserve the heavy tail;
    - [bound_classes] caps the object classes used for the lower-bound
      models. Defaults per workload: WEB keeps exact pattern aggregation
      (valid bounds), GROUP clusters to a handful of popularity buckets
      ({!Workload.Aggregate.by_popularity}), which is near-lossless for
      its uniform popularity and much faster. *)

val qos_spec : t -> ?tlat_ms:float -> fraction:float -> for_bounds:bool -> unit
  -> Mcperf.Spec.t
(** A QoS-goal spec over the scenario ([tlat_ms] defaults to the paper's
    150 ms). [for_bounds] selects the aggregated demand. *)

val qos_points : float list
(** The QoS sweep of Figures 1–3: 0.95, 0.99, 0.999, 0.9999, 0.99999. *)
