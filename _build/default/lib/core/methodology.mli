(** The paper's two decision workflows.

    {2 Heuristic selection (Section 6.1)}

    Infrastructure already exists; the designer needs a heuristic. The
    method: compute the general lower bound and the bound of every
    implementable class; choose a heuristic from the feasible class with
    the lowest bound; if that bound is close to the general one, no other
    heuristic can do significantly better.

    {2 Infrastructure deployment (Section 6.2)}

    No file servers exist yet. Phase one solves MC-PERF with a
    node-opening cost ζ in the objective; the rounded [open] variables
    say where to deploy. Phase two reassigns every site's users to their
    nearest open node and recomputes the class bounds with placement
    restricted to the open nodes (the conclusions can change — on GROUP,
    caching becomes competitive). *)

type ranked = {
  result : Bounds.Pipeline.t;
  deployable : string option;
      (** the repo's deployed implementation of this class, when one
          exists (Table 3 lookup): "greedy-global", "greedy-replica",
          "lru-caching", ... *)
}

type selection = {
  general_bound : float;
  ranking : ranked list;  (** feasible classes first, sorted by bound *)
  chosen : ranked option;  (** lowest-bound feasible non-general class *)
  near_general : bool;
      (** the chosen class's bound is within [slack] of the general bound
          — no class of heuristics can be significantly better *)
}

val deployable_of_class : string -> string option
(** Class name -> deployed heuristic name (None for the general/reactive
    pseudo-classes that exist only as bounds). *)

val select :
  ?solver:Bounds.Pipeline.solver ->
  ?classes:Mcperf.Classes.t list ->
  ?slack:float ->
  Mcperf.Spec.t ->
  selection
(** [select spec] ranks the candidate classes (default: the implementable
    ones of Table 3 — storage-constrained, replica-constrained,
    decentralized, caching variants) by lower bound. [slack] (default 2.0)
    is the "close to the general bound" factor. *)

type deployment = {
  open_nodes : int list;  (** deployed sites, origin included *)
  assignment : int array;  (** every site -> its serving node *)
  placeable : bool array;  (** open-node mask, for phase-two calls *)
  phase1_bound : float;
      (** certified lower bound of the ζ-augmented MC-PERF solve *)
}

val plan_deployment :
  ?solver:Bounds.Pipeline.solver ->
  ?zeta:float ->
  Mcperf.Spec.t ->
  deployment option
(** Phase one. [zeta] defaults to the paper's 10_000. Returns [None] when
    even opening every node cannot meet the goal. The open set is derived
    by rounding the LP's [open] variables greedily (largest fractional
    value first) until the goal is coverable. *)

val reassign_demand : Mcperf.Spec.t -> deployment -> Mcperf.Spec.t
(** Phase-two spec: every site's demand is redirected to its assigned open
    node (users of a closed site are served by the nearest deployed file
    server, as in the paper). Combine with [deployment.placeable] when
    computing bounds or running heuristics. *)
