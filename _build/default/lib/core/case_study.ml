type workload = Web | Group

let workload_name = function Web -> "WEB" | Group -> "GROUP"

type t = {
  system : Topology.System.t;
  workload : workload;
  trace : Workload.Trace.t;
  demand : Workload.Demand.t;
  bound_demand : Workload.Demand.t;
}

let make ?(seed = 2004) ?(nodes = 20) ?(intervals = 24) ?(scale = 0.1)
    ?bound_classes workload =
  (* WEB's bound models use exact pattern aggregation (valid bounds; the
     tail classes have tiny store supports, so the models stay tractable);
     GROUP's uniformly popular objects cluster into a handful of classes
     with negligible distortion and a large speedup. *)
  let bound_classes =
    match bound_classes with
    | Some c -> c
    | None -> ( match workload with Web -> 1000 | Group -> 24)
  in
  let rng = Util.Prng.create ~seed in
  let topo_rng = Util.Prng.split rng in
  let trace_rng = Util.Prng.split rng in
  let graph =
    Topology.Generate.as_like ~rng:topo_rng ~nodes
      ~latency:Topology.Generate.default_hop_latency ()
  in
  let system = Topology.System.make graph in
  (* WEB keeps 2.5x more objects than the request scale so the heavy tail
     survives downscaling (see Synthesize.scale_spec); GROUP objects are
     uniformly popular, so they scale with the requests. *)
  let trace =
    match workload with
    | Web ->
      let object_factor = Float.min 1. (2.5 *. scale) in
      Workload.Synthesize.web ~rng:trace_rng
        (Workload.Synthesize.scale_spec ~object_factor
           { Workload.Synthesize.web_spec with nodes }
           ~factor:scale)
    | Group ->
      Workload.Synthesize.group ~rng:trace_rng
        (Workload.Synthesize.scale_spec
           { Workload.Synthesize.group_spec with nodes }
           ~factor:scale)
  in
  let demand = Workload.Demand.of_trace ~intervals trace in
  let bound_demand =
    let exact = Workload.Aggregate.exact demand in
    if exact.Workload.Aggregate.demand.Workload.Demand.objects <= bound_classes
    then exact.Workload.Aggregate.demand
    else
      (Workload.Aggregate.by_popularity ~classes:bound_classes demand)
        .Workload.Aggregate.demand
  in
  { system; workload; trace; demand; bound_demand }

let qos_spec t ?(tlat_ms = 150.) ~fraction ~for_bounds () =
  let demand = if for_bounds then t.bound_demand else t.demand in
  Mcperf.Spec.make ~system:t.system ~demand
    ~goal:(Mcperf.Spec.Qos { tlat_ms; fraction })
    ()

let qos_points = [ 0.95; 0.99; 0.999; 0.9999; 0.99999 ]
