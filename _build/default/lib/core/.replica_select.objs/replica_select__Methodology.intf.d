lib/core/methodology.mli: Bounds Mcperf
