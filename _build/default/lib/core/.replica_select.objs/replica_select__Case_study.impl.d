lib/core/case_study.ml: Float Mcperf Topology Util Workload
