lib/core/case_study.mli: Mcperf Topology Workload
