lib/core/report.mli: Methodology
