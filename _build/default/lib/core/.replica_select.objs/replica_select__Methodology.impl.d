lib/core/methodology.ml: Array Bounds Float List Lp Mcperf Topology Workload
