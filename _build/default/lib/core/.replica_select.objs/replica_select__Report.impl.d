lib/core/report.ml: Array Bounds Buffer Float List Methodology Printf String
