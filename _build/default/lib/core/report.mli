(** Plain-text rendering of experiment series and methodology output.

    The experiment binaries print the same rows/series as the paper's
    figures; a series maps the QoS sweep to costs, with [None] marking
    goals the class cannot meet (e.g. local caching above its cold-miss
    ceiling on WEB). *)

type point = { x : float; cost : float option }

type series = { label : string; points : point list }

val series_of : label:string -> (float * float option) list -> series

val print_figure :
  ?oc:out_channel -> title:string -> xlabel:string -> series list -> unit
(** Aligned-column table: one row per x value, one column per series;
    infeasible points print as ["-"]. *)

val print_selection :
  ?oc:out_channel -> title:string -> Methodology.selection -> unit
(** The ranked class table of the selection methodology. *)

val print_deployment : ?oc:out_channel -> Methodology.deployment -> unit

val csv_of_figure : series list -> string
(** Machine-readable dump (one line per x value). *)
