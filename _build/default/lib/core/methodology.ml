type ranked = {
  result : Bounds.Pipeline.t;
  deployable : string option;
}

type selection = {
  general_bound : float;
  ranking : ranked list;
  chosen : ranked option;
  near_general : bool;
}

let deployable_of_class = function
  | "storage-constrained" | "storage-constrained-per-node" ->
    Some "greedy-global"
  | "replica-constrained" | "replica-constrained-uniform" ->
    Some "greedy-replica"
  | "caching" -> Some "lru-caching"
  | "cooperative-caching" -> Some "cooperative-caching"
  | "caching-prefetch" -> Some "caching-prefetch"
  | "cooperative-caching-prefetch" -> Some "cooperative-caching-prefetch"
  | "decentralized-local-routing" | "general" | "reactive-general" | _ -> None

let default_candidates =
  [
    Mcperf.Classes.storage_constrained;
    Mcperf.Classes.replica_constrained_uniform;
    Mcperf.Classes.decentralized_local_routing;
    Mcperf.Classes.caching;
    Mcperf.Classes.cooperative_caching;
  ]

let select ?solver ?(classes = default_candidates) ?(slack = 2.0) spec =
  let general = Bounds.Pipeline.compute ?solver spec Mcperf.Classes.general in
  let results = Bounds.Pipeline.compare_classes ?solver spec classes in
  let ranked =
    List.map
      (fun (r : Bounds.Pipeline.t) ->
        { result = r; deployable = deployable_of_class r.Bounds.Pipeline.class_name })
      results
  in
  let feasible, infeasible =
    List.partition (fun r -> r.result.Bounds.Pipeline.feasible) ranked
  in
  let sorted =
    List.sort
      (fun a b ->
        compare a.result.Bounds.Pipeline.lower_bound
          b.result.Bounds.Pipeline.lower_bound)
      feasible
  in
  let chosen = match sorted with [] -> None | best :: _ -> Some best in
  let near_general =
    match chosen with
    | None -> false
    | Some c ->
      c.result.Bounds.Pipeline.lower_bound
      <= slack *. Float.max general.Bounds.Pipeline.lower_bound 1e-9
  in
  {
    general_bound = general.Bounds.Pipeline.lower_bound;
    ranking = sorted @ infeasible;
    chosen;
    near_general;
  }

type deployment = {
  open_nodes : int list;
  assignment : int array;
  placeable : bool array;
  phase1_bound : float;
}

(* Fractional open values from a solved phase-one model. *)
let open_values (model : Mcperf.Model.t) x =
  let nodes =
    Mcperf.Spec.node_count model.Mcperf.Model.permission.Mcperf.Permission.spec
  in
  let vals = Array.make nodes 0. in
  Array.iteri
    (fun j kind ->
      match kind with
      | Mcperf.Model.Open_node { node } -> vals.(node) <- x.(j)
      | Mcperf.Model.Store _ | Mcperf.Model.Create _ | Mcperf.Model.Covered _
      | Mcperf.Model.Route _ | Mcperf.Model.Capacity _
      | Mcperf.Model.Replicas _ ->
        ())
    model.Mcperf.Model.kinds;
  vals

let plan_deployment ?solver ?(zeta = 10_000.) (spec : Mcperf.Spec.t) =
  let phase1_spec =
    { spec with Mcperf.Spec.costs = { spec.Mcperf.Spec.costs with zeta } }
  in
  (* Per the paper's Section 6.2 all heuristics considered are reactive;
     the per-access refinement (Theorem 3) avoids the coarse-interval
     artifact that would make all interval-0 demand look uncoverable. *)
  let cls =
    Mcperf.Classes.allow_intra_interval_reaction
      Mcperf.Classes.reactive_general
  in
  let feasible_with placeable =
    Mcperf.Permission.feasible
      (Mcperf.Permission.compute ~placeable phase1_spec cls)
  in
  let nodes = Mcperf.Spec.node_count spec in
  let origin = spec.Mcperf.Spec.system.Topology.System.origin in
  let all = Array.make nodes true in
  if not (feasible_with all) then None
  else begin
    let perm = Mcperf.Permission.compute phase1_spec cls in
    let model = Mcperf.Model.build perm in
    let problem = model.Mcperf.Model.problem in
    let use_simplex =
      match solver with
      | Some Bounds.Pipeline.Exact_simplex -> true
      | Some (Bounds.Pipeline.First_order _) -> false
      | Some Bounds.Pipeline.Auto | None ->
        Lp.Problem.nvars problem <= 260 && Lp.Problem.nrows problem <= 260
    in
    let x, bound =
      if use_simplex then
        match Lp.Simplex.solve problem with
        | Lp.Simplex.Optimal { x; objective } -> (x, objective)
        | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
          invalid_arg "plan_deployment: phase-one LP failed"
      else begin
        let options =
          match solver with
          | Some (Bounds.Pipeline.First_order o) -> o
          | Some Bounds.Pipeline.Auto | Some Bounds.Pipeline.Exact_simplex
          | None ->
            Bounds.Pipeline.default_pdhg_options
        in
        let out = Lp.Pdhg.solve ~options problem in
        (out.Lp.Pdhg.x, out.Lp.Pdhg.best_bound)
      end
    in
    let opens = open_values model x in
    (* Greedy rounding of the open variables: largest fractional value
       first, until the goal becomes coverable with the open set. *)
    let order =
      List.init nodes (fun n -> n)
      |> List.filter (fun n -> n <> origin)
      |> List.sort (fun a b -> compare opens.(b) opens.(a))
    in
    let placeable = Array.make nodes false in
    placeable.(origin) <- true;
    let opened = ref [] in
    let rec add_until = function
      | [] -> feasible_with placeable
      | n :: rest ->
        if feasible_with placeable then true
        else begin
          placeable.(n) <- true;
          opened := n :: !opened;
          add_until rest
        end
    in
    let ok = add_until order in
    if not ok then None
    else begin
      let open_nodes = origin :: List.rev !opened in
      let latency = spec.Mcperf.Spec.system.Topology.System.latency in
      let assignment =
        Array.init nodes (fun n ->
            List.fold_left
              (fun best o ->
                if latency.(n).(o) < latency.(n).(best) then o else best)
              origin open_nodes)
      in
      Some
        {
          open_nodes;
          assignment;
          placeable;
          phase1_bound = bound +. model.Mcperf.Model.objective_offset;
        }
    end
  end

let reassign_demand (spec : Mcperf.Spec.t) deployment =
  let demand =
    Workload.Demand.remap_nodes spec.Mcperf.Spec.demand
      ~mapping:deployment.assignment
  in
  { spec with Mcperf.Spec.demand }
