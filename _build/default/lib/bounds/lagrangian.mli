(** Lagrangian-decomposition lower bounds for MC-PERF.

    The only constraints of the basic QoS formulation that couple objects
    are the per-user QoS rows (2). Relaxing them with multipliers
    [lambda_n >= 0] makes the problem separate into one small subproblem
    per object:

    {v
    L(lambda) = sum_n lambda_n * T_n
              + sum_k min { cost_k(x_k) - sum_n lambda_n * coverage_nk(x_k) }
    v}

    and weak duality gives [L(lambda) <= LP optimum <= IP optimum] for
    {e every} non-negative [lambda] — the same always-valid-bound property
    as {!Lp.Certificate}, obtained by a different route. Each subproblem
    is solved exactly (dense simplex) when small, or itself lower-bounded
    by a short PDHG run's dual certificate when large; both compose into a
    valid overall bound.

    Why this exists alongside the monolithic LP: the subproblems are
    embarrassingly parallel and have constant size as |K| grows, so this
    path scales to object counts where even the first-order solver's
    per-iteration cost hurts (the paper reports 12-hour CPLEX runs at
    K = 1000). It also cross-checks the PDHG bounds in the test suite.

    Class support: knowledge/history/reactivity/routing properties are
    honored exactly (they live in the per-object permission masks); the
    per-object replica constraint (17a) is honored exactly; the uniform
    replica constraint and the storage constraints couple objects and are
    dropped, which keeps the bound valid for the class (dropping
    constraints can only lower a minimum) but makes it no tighter than the
    corresponding unconstrained-storage bound. *)

type outcome = {
  bound : float;  (** best certified lower bound over all iterations *)
  iterations : int;
  lambda : float array;  (** multipliers achieving [bound] *)
  subproblems_exact : int;  (** per-object solves done by simplex *)
  subproblems_bounded : int;  (** per-object solves bounded by PDHG *)
}

val bound :
  ?iterations:int ->
  ?step_scale:float ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t ->
  outcome
(** Projected subgradient ascent on the QoS multipliers ([iterations]
    default 60, [step_scale] default 1.0 — the step at round t is
    [step_scale * alpha / (1 + t)]). Requires a QoS goal. Infeasible
    classes (by the {!Mcperf.Permission} oracle) yield [infinity]. *)
