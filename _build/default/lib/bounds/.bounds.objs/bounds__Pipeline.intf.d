lib/bounds/pipeline.mli: Format Lp Mcperf Rounding
