lib/bounds/lagrangian.ml: Array Float Hashtbl List Lp Mcperf Util Workload
