lib/bounds/lagrangian.mli: Mcperf
