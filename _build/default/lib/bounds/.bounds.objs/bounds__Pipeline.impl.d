lib/bounds/pipeline.ml: Array Float Format List Logs Lp Mcperf Printf Rounding
