let header_prefix = "# replica-select topology v1"

let to_string ?origin g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s nodes=%d%s\n" header_prefix (Graph.node_count g)
       (match origin with
       | Some o -> Printf.sprintf " origin=%d" o
       | None -> ""));
  Buffer.add_string buf "u,v,latency_ms\n";
  List.iter
    (fun (u, v, w) ->
      Buffer.add_string buf (Printf.sprintf "%d,%d,%.9g\n" u v w))
    (Graph.edges g);
  Buffer.contents buf

let save ?origin g ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?origin g))

let fail_line lineno msg =
  failwith (Printf.sprintf "topology line %d: %s" lineno msg)

let header_field line key =
  let marker = key ^ "=" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length line then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop =
      match String.index_from_opt line start ' ' with
      | Some j -> j
      | None -> String.length line
    in
    Some (String.sub line start (stop - start))

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: _columns :: rest ->
    if
      String.length header < String.length header_prefix
      || String.sub header 0 (String.length header_prefix) <> header_prefix
    then failwith "topology: not a replica-select topology file";
    let nodes =
      match header_field header "nodes" with
      | Some v -> (
        try int_of_string v with Failure _ -> failwith "topology: bad nodes")
      | None -> failwith "topology: missing nodes field"
    in
    let origin =
      match header_field header "origin" with
      | Some v -> (
        try Some (int_of_string v)
        with Failure _ -> failwith "topology: bad origin")
      | None -> None
    in
    let g = Graph.create nodes in
    List.iteri
      (fun idx line ->
        let lineno = idx + 3 in
        if String.trim line <> "" then
          match String.split_on_char ',' line with
          | [ u; v; w ] -> (
            try
              Graph.add_edge g
                (int_of_string (String.trim u))
                (int_of_string (String.trim v))
                (float_of_string (String.trim w))
            with
            | Failure msg -> fail_line lineno msg
            | Invalid_argument msg -> fail_line lineno msg)
          | _ -> fail_line lineno "expected 3 comma-separated fields")
      rest;
    (g, origin)
  | _ -> failwith "topology: empty file"

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))

let load_system ~path =
  let g, origin = load ~path in
  System.make ?origin g
