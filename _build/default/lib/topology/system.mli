(** A concrete wide-area system: topology, latency matrix and origin node.

    This is the "system" input of MC-PERF. The origin (headquarters in the
    paper's case study) permanently stores every object; all misses can be
    served from it, possibly above the latency threshold. *)

type t = private {
  graph : Graph.t;
  latency : float array array;  (** all-pairs shortest-path latency, ms *)
  origin : int;  (** node that stores all objects permanently *)
}

val make : ?origin:int -> Graph.t -> t
(** Builds the system view; [origin] defaults to {!Generate.headquarters}.
    Requires a connected graph so that every miss can reach the origin. *)

val node_count : t -> int

val within_threshold : t -> tlat:float -> bool array array
(** [within_threshold sys ~tlat] is the [dist] matrix of the paper:
    [m.(n).(u)] iff node [n] can access a replica on node [u] within
    [tlat] ms. The diagonal is always true. *)

val covers : t -> tlat:float -> int -> int list
(** [covers sys ~tlat u] lists nodes whose accesses a replica at [u]
    serves within the threshold (including [u] itself). *)

(** Routing knowledge (the [fetch] matrix): which nodes a given node can
    fetch replicas from. *)
type routing =
  | Route_local  (** only itself and the origin, like plain caching *)
  | Route_global  (** any node, like cooperative caching or centralized *)
  | Route_custom of bool array array

(** Placement knowledge (the [know] matrix): whose activity a node's
    placement decision may use. *)
type knowledge =
  | Know_local  (** only accesses initiated at the node itself *)
  | Know_global  (** accesses anywhere in the system *)
  | Know_custom of bool array array

val fetch_matrix : t -> routing -> bool array array
(** [fetch_matrix sys r] gives [f.(n).(u)] iff [n] may fetch from [u].
    [f.(n).(n)] and [f.(n).(origin)] are always true: a node can always
    read its own replica and fall back to the origin. *)

val know_matrix : t -> knowledge -> bool array array
(** [k.(n).(u)] iff activity at [u] may drive placement on [n]. The
    diagonal is always true. *)

val effective_reach :
  t -> tlat:float -> routing -> bool array array
(** Pointwise conjunction of {!within_threshold} and {!fetch_matrix}: node
    [n]'s demand is covered by a replica at [u] iff [u] is both reachable
    within the threshold and routable-to. This is the coverage matrix the
    model builder consumes. *)
