type t = {
  graph : Graph.t;
  latency : float array array;
  origin : int;
}

let make ?origin graph =
  if not (Graph.is_connected graph) then
    invalid_arg "System.make: graph must be connected";
  let origin =
    match origin with
    | Some o ->
      if o < 0 || o >= Graph.node_count graph then
        invalid_arg "System.make: origin out of range";
      o
    | None -> Generate.headquarters graph
  in
  { graph; latency = Shortest_path.all_pairs graph; origin }

let node_count sys = Graph.node_count sys.graph

let within_threshold sys ~tlat =
  if tlat < 0. then invalid_arg "System.within_threshold: negative threshold";
  let n = node_count sys in
  Array.init n (fun i -> Array.init n (fun j -> sys.latency.(i).(j) <= tlat))

let covers sys ~tlat u =
  let n = node_count sys in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if sys.latency.(v).(u) <= tlat then acc := v :: !acc
  done;
  !acc

type routing =
  | Route_local
  | Route_global
  | Route_custom of bool array array

type knowledge =
  | Know_local
  | Know_global
  | Know_custom of bool array array

let check_square name n m =
  if Array.length m <> n || Array.exists (fun row -> Array.length row <> n) m
  then invalid_arg (name ^ ": matrix must be node_count x node_count")

let fetch_matrix sys r =
  let n = node_count sys in
  let base =
    match r with
    | Route_local -> Array.make_matrix n n false
    | Route_global -> Array.make_matrix n n true
    | Route_custom m ->
      check_square "System.fetch_matrix" n m;
      Array.map Array.copy m
  in
  for i = 0 to n - 1 do
    base.(i).(i) <- true;
    base.(i).(sys.origin) <- true
  done;
  base

let know_matrix sys k =
  let n = node_count sys in
  let base =
    match k with
    | Know_local -> Array.make_matrix n n false
    | Know_global -> Array.make_matrix n n true
    | Know_custom m ->
      check_square "System.know_matrix" n m;
      Array.map Array.copy m
  in
  for i = 0 to n - 1 do
    base.(i).(i) <- true
  done;
  base

let effective_reach sys ~tlat r =
  let dist = within_threshold sys ~tlat in
  let fetch = fetch_matrix sys r in
  let n = node_count sys in
  Array.init n (fun i -> Array.init n (fun j -> dist.(i).(j) && fetch.(i).(j)))
