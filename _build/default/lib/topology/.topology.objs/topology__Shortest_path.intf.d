lib/topology/shortest_path.mli: Graph
