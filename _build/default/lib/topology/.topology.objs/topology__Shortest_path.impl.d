lib/topology/shortest_path.ml: Array Float Graph List Util
