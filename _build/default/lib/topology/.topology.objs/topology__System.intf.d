lib/topology/system.mli: Graph
