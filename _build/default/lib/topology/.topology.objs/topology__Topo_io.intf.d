lib/topology/topo_io.mli: Graph System
