lib/topology/topo_io.ml: Buffer Fun Graph List Printf String System
