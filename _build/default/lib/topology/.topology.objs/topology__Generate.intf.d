lib/topology/generate.mli: Graph Util
