lib/topology/graph.ml: Array Format Fun List
