lib/topology/system.ml: Array Generate Graph Shortest_path
