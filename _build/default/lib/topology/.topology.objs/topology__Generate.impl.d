lib/topology/generate.ml: Array Float Graph Util
