type latency_range = { lo_ms : float; hi_ms : float }

let default_hop_latency = { lo_ms = 100.; hi_ms = 200. }

let draw_latency rng { lo_ms; hi_ms } =
  if lo_ms < 0. || hi_ms < lo_ms then invalid_arg "Generate: bad latency range";
  if hi_ms = lo_ms then lo_ms else Util.Prng.uniform rng ~lo:lo_ms ~hi:hi_ms

let as_like ?(extra_edge_fraction = 0.3) ~rng ~nodes ~latency () =
  if nodes < 1 then invalid_arg "Generate.as_like: need at least one node";
  if extra_edge_fraction < 0. then
    invalid_arg "Generate.as_like: negative extra_edge_fraction";
  let g = Graph.create nodes in
  (* Preferential attachment: endpoints of existing edges, each listed once
     per incidence, form the attachment pool, so a node's pick probability
     is proportional to its degree. *)
  let pool = ref [ 0 ] in
  for v = 1 to nodes - 1 do
    let pool_arr = Array.of_list !pool in
    let target = pool_arr.(Util.Prng.int rng (Array.length pool_arr)) in
    Graph.add_edge g v target (draw_latency rng latency);
    pool := v :: target :: !pool
  done;
  let extra = int_of_float (Float.round (extra_edge_fraction *. float_of_int nodes)) in
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra && !attempts < 50 * (extra + 1) do
    incr attempts;
    let u = Util.Prng.int rng nodes and v = Util.Prng.int rng nodes in
    if u <> v && not (Graph.has_edge g u v) then begin
      Graph.add_edge g u v (draw_latency rng latency);
      incr added
    end
  done;
  g

let ring ~rng ~nodes ~latency =
  if nodes < 1 then invalid_arg "Generate.ring: need at least one node";
  let g = Graph.create nodes in
  if nodes = 2 then Graph.add_edge g 0 1 (draw_latency rng latency)
  else if nodes > 2 then
    for v = 0 to nodes - 1 do
      Graph.add_edge g v ((v + 1) mod nodes) (draw_latency rng latency)
    done;
  g

let star ~rng ~nodes ~latency =
  if nodes < 1 then invalid_arg "Generate.star: need at least one node";
  let g = Graph.create nodes in
  for v = 1 to nodes - 1 do
    Graph.add_edge g 0 v (draw_latency rng latency)
  done;
  g

let grid ~rng ~width ~height ~latency =
  if width < 1 || height < 1 then invalid_arg "Generate.grid: bad dimensions";
  let g = Graph.create (width * height) in
  let id x y = (y * width) + x in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then
        Graph.add_edge g (id x y) (id (x + 1) y) (draw_latency rng latency);
      if y + 1 < height then
        Graph.add_edge g (id x y) (id x (y + 1)) (draw_latency rng latency)
    done
  done;
  g

let clique ~rng ~nodes ~latency =
  if nodes < 1 then invalid_arg "Generate.clique: need at least one node";
  let g = Graph.create nodes in
  for u = 0 to nodes - 1 do
    for v = u + 1 to nodes - 1 do
      Graph.add_edge g u v (draw_latency rng latency)
    done
  done;
  g

let headquarters g =
  let n = Graph.node_count g in
  if n = 0 then invalid_arg "Generate.headquarters: empty graph";
  let best = ref 0 in
  for v = 1 to n - 1 do
    if Graph.degree g v > Graph.degree g !best then best := v
  done;
  !best
