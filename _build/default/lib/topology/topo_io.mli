(** Plain-text topology serialization.

    Format: a header with the node count (and optionally the origin), then
    one CSV record per undirected edge:

    {v
    # replica-select topology v1 nodes=20 origin=4
    u,v,latency_ms
    0,1,137.2
    1,4,101.0
    v}

    Real AS-level measurements (the paper used a Telstra-derived topology)
    can be converted to this format and loaded with {!load_system}. *)

val save : ?origin:int -> Graph.t -> path:string -> unit

val load : path:string -> Graph.t * int option
(** The graph plus the origin recorded in the header, if any. Raises
    [Failure] with a line-numbered message on malformed input. *)

val load_system : path:string -> System.t
(** {!load} followed by {!System.make} (using the recorded origin, or the
    highest-degree node). *)

val to_string : ?origin:int -> Graph.t -> string
val of_string : string -> Graph.t * int option
