(** Shortest-path latencies between all node pairs.

    The MC-PERF model only consumes the latency matrix ([latency_nm] in the
    paper, Table 1), so this module materializes it once per topology.
    Dijkstra from every source is the workhorse; Floyd–Warshall is kept as
    an independent oracle for the test suite. *)

val dijkstra : Graph.t -> int -> float array
(** [dijkstra g src] returns the array of shortest-path latencies from
    [src]; unreachable nodes map to [infinity]. *)

val all_pairs : Graph.t -> float array array
(** [all_pairs g] is the full latency matrix ([m.(u).(v)]); the diagonal is
    [0.] (a local access has negligible network latency). *)

val floyd_warshall : Graph.t -> float array array
(** Same contract as {!all_pairs}, computed by Floyd–Warshall. Used as a
    cross-check in tests; O(n^3). *)

val eccentricity : float array array -> int -> float
(** Largest finite latency from a node; [0.] if the node reaches nothing. *)

val diameter : float array array -> float
(** Largest finite entry of the matrix. *)
