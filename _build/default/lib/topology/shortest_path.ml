let dijkstra g src =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let settled = Array.make n false in
  let heap = Util.Pqueue.create () in
  dist.(src) <- 0.;
  Util.Pqueue.push heap 0. src;
  let rec drain () =
    match Util.Pqueue.pop_min heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        let relax (v, w) =
          let cand = d +. w in
          if cand < dist.(v) then begin
            dist.(v) <- cand;
            Util.Pqueue.push heap cand v
          end
        in
        List.iter relax (Graph.neighbors g u)
      end;
      drain ()
  in
  drain ();
  dist

let all_pairs g =
  Array.init (Graph.node_count g) (fun src -> dijkstra g src)

let floyd_warshall g =
  let n = Graph.node_count g in
  let d = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.
  done;
  List.iter
    (fun (u, v, w) ->
      if w < d.(u).(v) then begin
        d.(u).(v) <- w;
        d.(v).(u) <- w
      end)
    (Graph.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = d.(i).(k) +. d.(k).(j) in
        if via < d.(i).(j) then d.(i).(j) <- via
      done
    done
  done;
  d

let eccentricity m u =
  Array.fold_left
    (fun acc d -> if Float.is_finite d && d > acc then d else acc)
    0. m.(u)

let diameter m =
  Array.fold_left (fun acc row ->
      Array.fold_left
        (fun acc d -> if Float.is_finite d && d > acc then d else acc)
        acc row)
    0. m
