(** MC-PERF problem specifications.

    A spec bundles the three inputs of the paper's methodology — system,
    workload, performance goal — with the unit costs of the cost function
    (Table 1): α storage, β replica creation, γ late-access penalty,
    δ update message, ζ node enabling. *)

type costs = {
  alpha : float;  (** storing one object for one interval *)
  beta : float;  (** creating one replica *)
  gamma : float;  (** penalty per ms above the threshold, per late read *)
  delta : float;  (** cost per update message (write x replica) *)
  zeta : float;  (** enabling a node for placement *)
}

val default_costs : costs
(** The paper's case-study costs: α = β = 1, everything else 0. *)

type goal =
  | Qos of { tlat_ms : float; fraction : float }
      (** Constraint (2): at least [fraction] of each user's reads are
          served within [tlat_ms]. [fraction] in [\[0, 1\]]. *)
  | Avg_latency of { tavg_ms : float }
      (** Constraints (7)–(10): each user's average read latency is at
          most [tavg_ms]. *)

type t = {
  system : Topology.System.t;
  demand : Workload.Demand.t;
  costs : costs;
  goal : goal;
}

val make :
  system:Topology.System.t ->
  demand:Workload.Demand.t ->
  ?costs:costs ->
  goal:goal ->
  unit ->
  t
(** Validates: node counts agree, demand has at least one read, costs are
    non-negative with [alpha > 0. || beta > 0.], goal parameters are in
    range, and the interval count fits the bitset-based permission
    machinery (at most 62 intervals). *)

val latency_threshold : t -> float
(** The [tlat_ms] of a QoS goal; for an average-latency goal, the [tavg_ms]
    value (used only for reporting and for coverage diagnostics). *)

val node_count : t -> int
val interval_count : t -> int
val object_count : t -> int
