lib/mcperf/classes.ml: Format List Printf Topology
