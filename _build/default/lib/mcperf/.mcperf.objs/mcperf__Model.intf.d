lib/mcperf/model.mli: Format Hashtbl Lp Permission
