lib/mcperf/spec.ml: Topology Workload
