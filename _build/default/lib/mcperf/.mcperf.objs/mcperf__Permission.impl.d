lib/mcperf/permission.ml: Array Classes Spec Topology Workload
