lib/mcperf/interval.mli: Topology Workload
