lib/mcperf/spec.mli: Topology Workload
