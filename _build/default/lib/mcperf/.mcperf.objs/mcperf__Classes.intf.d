lib/mcperf/classes.mli: Format Topology
