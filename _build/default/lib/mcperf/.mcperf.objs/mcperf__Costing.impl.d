lib/mcperf/costing.ml: Array Classes Float Permission Spec Topology Workload
