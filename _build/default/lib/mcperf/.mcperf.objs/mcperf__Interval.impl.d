lib/mcperf/interval.ml: Array Float Topology Workload
