lib/mcperf/costing.mli: Permission Spec
