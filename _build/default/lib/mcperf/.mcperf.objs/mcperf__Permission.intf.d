lib/mcperf/permission.mli: Classes Spec
