lib/mcperf/model.ml: Array Classes Float Format Hashtbl List Lp Permission Printf Spec Topology Util Workload
