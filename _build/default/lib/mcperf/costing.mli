(** Cost accounting for integral placements.

    A placement assigns each non-origin node, for each object, the set of
    intervals during which it stores a replica (an interval bitmask, like
    {!Permission.store_mask}). This module evaluates the paper's full cost
    function against such a placement — including the storage-constraint /
    replica-constraint padding of the rounding algorithm (Figure 5): a
    heuristic with a fixed footprint pays for its maximum footprint in
    every interval, so a placement is charged up to that maximum.

    Both the rounding algorithm's output and the simulated heuristics are
    evaluated through this single module, which keeps the "lower bound vs
    deployed heuristic" comparison of Figure 2 internally consistent. *)

type placement = int array array
(** [p.(node).(object_id)] = bitmask of intervals stored. The origin row is
    ignored (it stores everything permanently at sunk cost). *)

val empty_placement : Spec.t -> placement

val copy_placement : placement -> placement

type evaluation = {
  storage : float;  (** alpha * weighted object-intervals stored *)
  creation : float;  (** beta * weighted replica creations *)
  sc_padding : float;
      (** extra storage+creation charged to reach the fixed footprint of a
          storage-constrained heuristic (0 when the class has none) *)
  rc_padding : float;  (** same for the replica constraint *)
  write_cost : float;  (** delta * update messages *)
  penalty : float;  (** gamma * lateness of uncovered reads *)
  open_cost : float;  (** zeta * number of nodes storing anything *)
  total : float;
  qos : float array;  (** per node: fraction of reads served in time *)
  avg_latency : float array;  (** per node: mean read latency, ms *)
  meets_goal : bool;
}

val evaluate : Permission.t -> placement -> evaluation

val respects_permissions : Permission.t -> placement -> bool
(** Whether every stored interval lies in the class's store support and
    every creation (0->1 transition) happens at a permitted interval.
    Rounding outputs must satisfy this; simulated heuristics may not
    (holding an object longer than useful is permitted wastefulness —
    it only costs them). *)
