type costs = {
  alpha : float;
  beta : float;
  gamma : float;
  delta : float;
  zeta : float;
}

let default_costs = { alpha = 1.; beta = 1.; gamma = 0.; delta = 0.; zeta = 0. }

type goal =
  | Qos of { tlat_ms : float; fraction : float }
  | Avg_latency of { tavg_ms : float }

type t = {
  system : Topology.System.t;
  demand : Workload.Demand.t;
  costs : costs;
  goal : goal;
}

let max_intervals = 62

let make ~system ~demand ?(costs = default_costs) ~goal () =
  if Topology.System.node_count system <> demand.Workload.Demand.nodes then
    invalid_arg "Spec.make: system and demand disagree on node count";
  if Workload.Demand.total_reads demand <= 0. then
    invalid_arg "Spec.make: demand has no reads";
  if demand.Workload.Demand.intervals > max_intervals then
    invalid_arg "Spec.make: at most 62 evaluation intervals are supported";
  let { alpha; beta; gamma; delta; zeta } = costs in
  if alpha < 0. || beta < 0. || gamma < 0. || delta < 0. || zeta < 0. then
    invalid_arg "Spec.make: costs must be non-negative";
  if alpha = 0. && beta = 0. then
    invalid_arg "Spec.make: at least one of alpha, beta must be positive";
  (match goal with
  | Qos { tlat_ms; fraction } ->
    if tlat_ms < 0. then invalid_arg "Spec.make: negative latency threshold";
    if fraction < 0. || fraction > 1. then
      invalid_arg "Spec.make: QoS fraction must be in [0, 1]"
  | Avg_latency { tavg_ms } ->
    if tavg_ms < 0. then invalid_arg "Spec.make: negative average-latency goal");
  { system; demand; costs; goal }

let latency_threshold t =
  match t.goal with
  | Qos { tlat_ms; _ } -> tlat_ms
  | Avg_latency { tavg_ms } -> tavg_ms

let node_count t = Topology.System.node_count t.system
let interval_count t = t.demand.Workload.Demand.intervals
let object_count t = t.demand.Workload.Demand.objects
