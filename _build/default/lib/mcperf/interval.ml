let covers_heuristic_interval ~delta_s ~heuristic_delta_s =
  if delta_s <= 0. || heuristic_delta_s <= 0. then
    invalid_arg "Interval.covers_heuristic_interval: intervals must be positive";
  heuristic_delta_s >= 2. *. delta_s
  || Float.abs (heuristic_delta_s -. delta_s) < 1e-12

(* Two accesses interact when the same object is involved and one node's
   placement decision or coverage can be affected by the other node
   (Lemma 1: A_nm = dec_nm or dist_nm). We approximate A with "within the
   latency threshold of each other", which subsumes local interaction and
   cooperative reach. *)
let min_interaction_gaps sys ~tlat_ms trace =
  let nodes = Topology.System.node_count sys in
  if nodes > 62 then
    invalid_arg "Interval.min_interaction_gaps: at most 62 nodes supported";
  let reach = Topology.System.within_threshold sys ~tlat:tlat_ms in
  (* Bitmask of nodes that interact with each node. *)
  let peers =
    Array.init nodes (fun n ->
        let mask = ref 0 in
        for m = 0 to nodes - 1 do
          if reach.(n).(m) || reach.(m).(n) then mask := !mask lor (1 lsl m)
        done;
        !mask)
  in
  (* Last access time of each object per node. *)
  let objects = Workload.Trace.object_count trace in
  let last = Array.make_matrix objects nodes neg_infinity in
  let m1 = ref infinity and m2 = ref infinity in
  let note gap =
    if gap > 0. then
      if gap < !m1 then begin
        if !m1 < !m2 then m2 := !m1;
        m1 := gap
      end
      else if gap < !m2 && gap > !m1 then m2 := gap
  in
  Workload.Trace.iter
    (fun ~time ~node ~object_id ~kind ->
      if kind = Workload.Trace.Read then begin
        for m = 0 to nodes - 1 do
          if peers.(node) land (1 lsl m) <> 0 then begin
            let prev = last.(object_id).(m) in
            if prev > neg_infinity then note (time -. prev)
          end
        done;
        last.(object_id).(node) <- time
      end)
    trace;
  (* m2 may remain infinite when every interacting gap is equal; Theorem 3
     then picks delta = m1 (no gaps fall inside [m1, 2*m1)). *)
  if Float.is_finite !m1 then Some (!m1, !m2) else None

let per_access_delta sys ~tlat_ms trace =
  match min_interaction_gaps sys ~tlat_ms trace with
  | None -> None
  | Some (m1, m2) -> Some (if 2. *. m1 >= m2 then m1 /. 2. else m1)

let intervals_for trace ~delta_s =
  if delta_s <= 0. then invalid_arg "Interval.intervals_for: delta must be positive";
  let d = Workload.Trace.duration_s trace in
  max 1 (int_of_float (Float.ceil (d /. delta_s)))
