type placement = int array array

let empty_placement spec =
  Array.make_matrix (Spec.node_count spec) (Spec.object_count spec) 0

let copy_placement p = Array.map Array.copy p

type evaluation = {
  storage : float;
  creation : float;
  sc_padding : float;
  rc_padding : float;
  write_cost : float;
  penalty : float;
  open_cost : float;
  total : float;
  qos : float array;
  avg_latency : float array;
  meets_goal : bool;
}

let popcount mask =
  let rec loop m acc = if m = 0 then acc else loop (m land (m - 1)) (acc + 1) in
  loop mask 0

(* Number of 0->1 transitions, counting bit 0 (constraint (4): the system
   starts empty, so storing in interval 0 is a creation). *)
let creations mask = popcount (mask land lnot (mask lsl 1))

let evaluate (perm : Permission.t) (placement : placement) =
  let spec = perm.Permission.spec in
  let cls = perm.Permission.cls in
  let sys = spec.Spec.system in
  let demand = spec.Spec.demand in
  let nodes = Spec.node_count spec in
  let intervals = Spec.interval_count spec in
  let objects = Spec.object_count spec in
  let origin = sys.Topology.System.origin in
  let weight = demand.Workload.Demand.weight in
  let costs = spec.Spec.costs in
  if
    Array.length placement <> nodes
    || Array.exists (fun row -> Array.length row <> objects) placement
  then invalid_arg "Costing.evaluate: placement has wrong dimensions";
  (* Raw storage and creation. *)
  let storage = ref 0. and creation = ref 0. in
  for m = 0 to nodes - 1 do
    if m <> origin then
      for k = 0 to objects - 1 do
        let mask = placement.(m).(k) in
        if mask <> 0 then begin
          storage :=
            !storage +. (costs.Spec.alpha *. weight.(k) *. float_of_int (popcount mask));
          creation :=
            !creation
            +. (costs.Spec.beta *. weight.(k) *. float_of_int (creations mask))
        end
      done
  done;
  (* Footprints for the SC / RC padding. used.(m).(i) counts weighted
     objects on node m during interval i; reps.(k).(i) counts replicas. *)
  let used = Array.make_matrix nodes intervals 0. in
  let reps = Array.make_matrix objects intervals 0. in
  for m = 0 to nodes - 1 do
    if m <> origin then
      for k = 0 to objects - 1 do
        let mask = placement.(m).(k) in
        if mask <> 0 then
          for i = 0 to intervals - 1 do
            if mask land (1 lsl i) <> 0 then begin
              used.(m).(i) <- used.(m).(i) +. weight.(k);
              reps.(k).(i) <- reps.(k).(i) +. 1.
            end
          done
      done
  done;
  let sc_padding =
    match cls.Classes.storage with
    | Classes.Sc_none -> 0.
    | Classes.Sc_uniform | Classes.Sc_per_node ->
      let node_max =
        Array.init nodes (fun m ->
            if m = origin then 0.
            else Array.fold_left Float.max 0. used.(m))
      in
      let cmax = Array.fold_left Float.max 0. node_max in
      let acc = ref 0. in
      for m = 0 to nodes - 1 do
        if m <> origin && perm.Permission.placeable.(m) then begin
          let target =
            match cls.Classes.storage with
            | Classes.Sc_uniform -> cmax
            | Classes.Sc_per_node | Classes.Sc_none -> node_max.(m)
          in
          for i = 0 to intervals - 1 do
            acc := !acc +. (costs.Spec.alpha *. (target -. used.(m).(i)))
          done;
          (* Creating the padding replicas once (Figure 5's beta term;
             zero for the per-node variant where target = node_max). *)
          acc := !acc +. (costs.Spec.beta *. (target -. node_max.(m)))
        end
      done;
      !acc
  in
  let rc_padding =
    match cls.Classes.replicas with
    | Classes.Rc_none -> 0.
    | Classes.Rc_uniform | Classes.Rc_per_object ->
      let object_max =
        Array.init objects (fun k -> Array.fold_left Float.max 0. reps.(k))
      in
      let rmax = Array.fold_left Float.max 0. object_max in
      let acc = ref 0. in
      for k = 0 to objects - 1 do
        let target =
          match cls.Classes.replicas with
          | Classes.Rc_uniform -> rmax
          | Classes.Rc_per_object | Classes.Rc_none -> object_max.(k)
        in
        for i = 0 to intervals - 1 do
          acc :=
            !acc +. (costs.Spec.alpha *. weight.(k) *. (target -. reps.(k).(i)))
        done;
        acc :=
          !acc +. (costs.Spec.beta *. weight.(k) *. (target -. object_max.(k)))
      done;
      !acc
  in
  (* Update messages: each write touches every replica (term (12)). *)
  let write_cost =
    if costs.Spec.delta <= 0. then 0.
    else begin
      let acc = ref 0. in
      Array.iteri
        (fun k cells ->
          Array.iter
            (fun (c : Workload.Demand.cell) ->
              acc :=
                !acc
                +. costs.Spec.delta *. weight.(k) *. c.count
                   *. reps.(k).(c.interval))
            cells)
        demand.Workload.Demand.writes;
      !acc
    end
  in
  (* Coverage, penalty, QoS and average latency, per read cell. *)
  let tlat =
    match spec.Spec.goal with
    | Spec.Qos { tlat_ms; _ } -> tlat_ms
    | Spec.Avg_latency _ -> infinity
  in
  let covered_demand = Array.make nodes 0. in
  let latency_sum = Array.make nodes 0. in
  let node_totals = Workload.Demand.node_read_totals demand in
  let penalty = ref 0. in
  Array.iteri
    (fun k cells ->
      let w = weight.(k) in
      Array.iter
        (fun (c : Workload.Demand.cell) ->
          let n = c.node and i = c.interval in
          let rw = w *. c.count in
          (* Closest routable replica (origin included). *)
          let best = ref sys.Topology.System.latency.(n).(origin) in
          for m = 0 to nodes - 1 do
            if
              m <> origin
              && perm.Permission.reach.(n).(m)
              && placement.(m).(k) land (1 lsl i) <> 0
              && sys.Topology.System.latency.(n).(m) < !best
            then best := sys.Topology.System.latency.(n).(m)
          done;
          latency_sum.(n) <- latency_sum.(n) +. (!best *. rw);
          if !best <= tlat then
            covered_demand.(n) <- covered_demand.(n) +. rw
          else if costs.Spec.gamma > 0. then
            penalty := !penalty +. (costs.Spec.gamma *. (!best -. tlat) *. rw))
        cells)
    demand.Workload.Demand.reads;
  let qos =
    Array.init nodes (fun n ->
        if node_totals.(n) <= 0. then 1.
        else covered_demand.(n) /. node_totals.(n))
  in
  let avg_latency =
    Array.init nodes (fun n ->
        if node_totals.(n) <= 0. then 0. else latency_sum.(n) /. node_totals.(n))
  in
  let open_cost =
    if costs.Spec.zeta <= 0. then 0.
    else begin
      let count = ref 0 in
      for m = 0 to nodes - 1 do
        if m <> origin && Array.exists (fun mask -> mask <> 0) placement.(m)
        then incr count
      done;
      costs.Spec.zeta *. float_of_int !count
    end
  in
  let meets_goal =
    match spec.Spec.goal with
    | Spec.Qos { fraction; _ } ->
      Array.for_all (fun q -> q >= fraction -. 1e-9) qos
    | Spec.Avg_latency { tavg_ms } ->
      Array.for_all (fun l -> l <= tavg_ms +. 1e-9) avg_latency
  in
  let total =
    !storage +. !creation +. sc_padding +. rc_padding +. write_cost
    +. !penalty +. open_cost
  in
  {
    storage = !storage;
    creation = !creation;
    sc_padding;
    rc_padding;
    write_cost;
    penalty = !penalty;
    open_cost;
    total;
    qos;
    avg_latency;
    meets_goal;
  }

let respects_permissions (perm : Permission.t) placement =
  let spec = perm.Permission.spec in
  let nodes = Spec.node_count spec in
  let objects = Spec.object_count spec in
  let origin = spec.Spec.system.Topology.System.origin in
  let ok = ref true in
  for m = 0 to nodes - 1 do
    for k = 0 to objects - 1 do
      let mask = placement.(m).(k) in
      if mask <> 0 then begin
        if m = origin then ok := false
        else begin
          if mask land lnot perm.Permission.store_mask.(m).(k) <> 0 then
            ok := false;
          let starts = mask land lnot (mask lsl 1) in
          if starts land lnot perm.Permission.create_mask.(m).(k) <> 0 then
            ok := false
        end
      end
    done
  done;
  !ok
