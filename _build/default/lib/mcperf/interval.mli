(** Evaluation-interval theory (Section 4.3 and appendix Theorems 2–3).

    MC-PERF discretizes time into evaluation intervals of length Δ. The
    choice of Δ trades fidelity for model size:

    - {b Theorem 2}: a lower bound computed with interval Δ is also a lower
      bound for any heuristic whose own evaluation interval Δ' satisfies
      Δ' >= 2Δ or Δ' = Δ.
    - {b Theorem 3}: for heuristics evaluated at {e every access} (caching),
      let m1 be the smallest time between two accesses that can influence
      each other (within reach or sphere of knowledge) and m2 the next
      smallest. Then Δ = m1/2 if 2·m1 >= m2, else Δ = m1, suffices.

    These are advisory computations for designers choosing the [intervals]
    parameter; the solvers accept any interval count up to 62. *)

val covers_heuristic_interval : delta_s:float -> heuristic_delta_s:float -> bool
(** Theorem 2's applicability test: a bound computed at [delta_s] applies
    to a heuristic evaluated every [heuristic_delta_s]. *)

val min_interaction_gaps :
  Topology.System.t -> tlat_ms:float -> Workload.Trace.t -> (float * float) option
(** [(m1, m2)] of Theorem 3: the two smallest positive gaps between
    consecutive interacting accesses (same object, nodes within reach of a
    common coverage point or of each other). [m2] is [infinity] when all
    gaps are equal; the result is [None] when no two accesses interact at
    all. O(events x nodes). *)

val per_access_delta :
  Topology.System.t -> tlat_ms:float -> Workload.Trace.t -> float option
(** Theorem 3's recommended Δ (seconds) for bounding per-access heuristics
    on this trace. *)

val intervals_for :
  Workload.Trace.t -> delta_s:float -> int
(** Number of evaluation intervals implied by a Δ (ceiling of
    duration/Δ). May exceed the solver's 62-interval limit — the caller
    decides whether to clamp (the paper itself used 1-hour intervals for
    tractability and reports that bounds stay indicative). *)
