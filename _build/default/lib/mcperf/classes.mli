(** Heuristic classes: combinations of the six heuristic properties of
    Table 2, including the catalogue of Table 3.

    Each property translates to extra constraints on MC-PERF; solving the
    constrained LP yields the lowest possible cost of any heuristic in the
    class (Section 4 of the paper). *)

(** Storage constraint (16)/(16a): the amount of storage used is fixed
    across intervals — uniform across nodes, or per-node. *)
type storage_constraint = Sc_none | Sc_uniform | Sc_per_node

(** Replica constraint (17)/(17a): the number of replicas of each object is
    fixed across intervals — one global factor, or per-object. *)
type replica_constraint = Rc_none | Rc_uniform | Rc_per_object

(** Activity history (20): how many past (or current) intervals of activity
    a heuristic may base placement on. [Window 1] with [Reactive] is plain
    caching; [All_intervals] keeps the full execution history. *)
type history = All_intervals | Window of int

(** Reactive heuristics (20a) may only place objects accessed strictly
    before the current interval; proactive ones may act on current-interval
    accesses (placement with knowledge of the interval's accesses, or
    prefetching). *)
type timing = Proactive | Reactive

type t = {
  name : string;
  storage : storage_constraint;
  replicas : replica_constraint;
  routing : Topology.System.routing;  (** the [fetch] matrix *)
  knowledge : Topology.System.knowledge;  (** the [know] matrix *)
  history : history;
  timing : timing;
  intra_interval : bool;
      (** Approximate per-access evaluation intervals (Theorem 3 of the
          paper's appendix) for reactive heuristics: when the sphere of
          knowledge sees two or more accesses to an object within one
          evaluation interval, a reactive heuristic evaluated at every
          access could already have reacted to the earlier one, so
          creation in that same interval is permitted. Without this, a
          coarse evaluation interval makes all interval-0 demand
          artificially uncacheable. Off by default (the paper's exact
          constraint (20a)); enable with {!allow_intra_interval_reaction}
          when bounding per-access heuristics such as LRU. *)
}

val general : t
(** No property constraints: solving MC-PERF with this class gives the
    general lower bound that applies to any placement algorithm. *)

val storage_constrained : t
(** Centralized storage-constrained heuristics (global routing and
    knowledge, full history): e.g. greedy global placement. Uniform
    capacity variant. *)

val storage_constrained_per_node : t
(** As {!storage_constrained} but each node may have its own fixed
    capacity (larger caches on strategic nodes). *)

val replica_constrained : t
(** Centralized replica-constrained heuristics (Qiu et al. style), with a
    per-object replication factor. *)

val replica_constrained_uniform : t
(** Same replication factor for every object. *)

val decentralized_local_routing : t
(** Decentralized storage-constrained heuristics with local routing: a
    node serves misses from the origin only, but placement uses full local
    history. *)

val caching : t
(** Plain local caching (e.g. LRU): storage-constrained, local routing,
    local knowledge, single-interval history, reactive. *)

val cooperative_caching : t
(** Cooperative caching: global routing/knowledge, single-interval
    history, reactive. *)

val caching_prefetch : t
(** Local caching with prefetching: as {!caching} but proactive. *)

val cooperative_caching_prefetch : t
(** Cooperative caching with prefetching: as {!cooperative_caching} but
    proactive. *)

val reactive_general : t
(** The general bound restricted to reactive placement only — the
    "Reactive bound" series of Figure 3. *)

val catalogue : t list
(** Table 3's classes (plus the general and reactive-general bounds), in
    presentation order. *)

val find : string -> t option
(** Look up a catalogue class by name. *)

val allow_intra_interval_reaction : t -> t
(** Enable the per-access reactive refinement (no effect on proactive
    classes). The name is suffixed with ["@access"]. *)

val pp : Format.formatter -> t -> unit
