type storage_constraint = Sc_none | Sc_uniform | Sc_per_node
type replica_constraint = Rc_none | Rc_uniform | Rc_per_object
type history = All_intervals | Window of int
type timing = Proactive | Reactive

type t = {
  name : string;
  storage : storage_constraint;
  replicas : replica_constraint;
  routing : Topology.System.routing;
  knowledge : Topology.System.knowledge;
  history : history;
  timing : timing;
  intra_interval : bool;
}

let general =
  {
    name = "general";
    storage = Sc_none;
    replicas = Rc_none;
    routing = Topology.System.Route_global;
    knowledge = Topology.System.Know_global;
    history = All_intervals;
    timing = Proactive;
    intra_interval = false;
  }

let storage_constrained =
  { general with name = "storage-constrained"; storage = Sc_uniform }

let storage_constrained_per_node =
  {
    general with
    name = "storage-constrained-per-node";
    storage = Sc_per_node;
  }

let replica_constrained =
  { general with name = "replica-constrained"; replicas = Rc_per_object }

let replica_constrained_uniform =
  {
    general with
    name = "replica-constrained-uniform";
    replicas = Rc_uniform;
  }

let decentralized_local_routing =
  {
    general with
    name = "decentralized-local-routing";
    storage = Sc_per_node;
    routing = Topology.System.Route_local;
    knowledge = Topology.System.Know_local;
  }

let caching =
  {
    name = "caching";
    storage = Sc_uniform;
    replicas = Rc_none;
    routing = Topology.System.Route_local;
    knowledge = Topology.System.Know_local;
    history = Window 1;
    timing = Reactive;
    intra_interval = false;
  }

let cooperative_caching =
  {
    caching with
    name = "cooperative-caching";
    routing = Topology.System.Route_global;
    knowledge = Topology.System.Know_global;
  }

let caching_prefetch =
  { caching with name = "caching-prefetch"; timing = Proactive }

let cooperative_caching_prefetch =
  {
    cooperative_caching with
    name = "cooperative-caching-prefetch";
    timing = Proactive;
  }

let reactive_general =
  { general with name = "reactive-general"; timing = Reactive }

let catalogue =
  [
    general;
    storage_constrained;
    storage_constrained_per_node;
    replica_constrained;
    replica_constrained_uniform;
    decentralized_local_routing;
    caching;
    cooperative_caching;
    caching_prefetch;
    cooperative_caching_prefetch;
    reactive_general;
  ]

let find name = List.find_opt (fun c -> c.name = name) catalogue

let allow_intra_interval_reaction c =
  if c.intra_interval then c
  else { c with name = c.name ^ "@access"; intra_interval = true }

let pp ppf c =
  let storage =
    match c.storage with
    | Sc_none -> "none"
    | Sc_uniform -> "uniform"
    | Sc_per_node -> "per-node"
  in
  let replicas =
    match c.replicas with
    | Rc_none -> "none"
    | Rc_uniform -> "uniform"
    | Rc_per_object -> "per-object"
  in
  let routing =
    match c.routing with
    | Topology.System.Route_local -> "local"
    | Topology.System.Route_global -> "global"
    | Topology.System.Route_custom _ -> "custom"
  in
  let knowledge =
    match c.knowledge with
    | Topology.System.Know_local -> "local"
    | Topology.System.Know_global -> "global"
    | Topology.System.Know_custom _ -> "custom"
  in
  let history =
    match c.history with
    | All_intervals -> "all"
    | Window w -> Printf.sprintf "window:%d" w
  in
  let timing =
    match c.timing with Proactive -> "proactive" | Reactive -> "reactive"
  in
  Format.fprintf ppf
    "%s (SC=%s, RC=%s, route=%s, know=%s, hist=%s, %s%s)" c.name storage
    replicas routing knowledge history timing
    (if c.intra_interval then ", per-access" else "")
