(** Deterministic pseudo-random number generator.

    All randomized components of the library (topology generation, workload
    synthesis, property tests that need auxiliary noise) draw from this
    splittable generator rather than the global [Stdlib.Random] state, so
    that every experiment is reproducible from a single integer seed. The
    core is the splitmix64 sequence, which has a 64-bit state, passes
    BigCrush, and is trivially splittable. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use one split per logical component so that adding draws to one
    component does not perturb another. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original then
    produce identical streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. Requires [x > 0.]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> rate:float -> float
(** Exponentially distributed value with the given rate (mean [1/rate]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)

val pick_weighted : t -> weights:float array -> int
(** [pick_weighted t ~weights] returns index [i] with probability
    proportional to [weights.(i)]. Requires at least one strictly positive
    weight and no negative weights. *)
