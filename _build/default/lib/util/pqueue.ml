type 'a t = {
  mutable prio : float array;
  mutable data : 'a option array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { prio = Array.make capacity 0.; data = Array.make capacity None; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.prio in
  let prio = Array.make (2 * cap) 0. in
  let data = Array.make (2 * cap) None in
  Array.blit h.prio 0 prio 0 h.size;
  Array.blit h.data 0 data 0 h.size;
  h.prio <- prio;
  h.data <- data

let swap h i j =
  let p = h.prio.(i) in
  h.prio.(i) <- h.prio.(j);
  h.prio.(j) <- p;
  let d = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- d

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(i) < h.prio.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.prio.(l) < h.prio.(!smallest) then smallest := l;
  if r < h.size && h.prio.(r) < h.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h p v =
  if h.size = Array.length h.prio then grow h;
  h.prio.(h.size) <- p;
  h.data.(h.size) <- Some v;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop_min h =
  if h.size = 0 then None
  else begin
    let p = h.prio.(0) in
    let v =
      match h.data.(0) with
      | Some v -> v
      | None -> assert false
    in
    h.size <- h.size - 1;
    h.prio.(0) <- h.prio.(h.size);
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some (p, v)
  end

let peek_min h =
  if h.size = 0 then None
  else
    match h.data.(0) with
    | Some v -> Some (h.prio.(0), v)
    | None -> assert false

let clear h =
  Array.fill h.data 0 h.size None;
  h.size <- 0
