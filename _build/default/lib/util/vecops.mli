(** Small dense-vector helpers shared by the LP solvers.

    These are deliberately plain [float array] functions — no abstraction —
    because the solvers live in tight loops and the arrays are reused as
    scratch space. *)

val dot : float array -> float array -> float
(** Inner product. Requires equal lengths. *)

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val scale : float -> float array -> unit
(** In-place multiply by a scalar. *)

val norm2 : float array -> float
(** Euclidean norm. *)

val norm_inf : float array -> float
(** Max absolute entry; [0.] for the empty vector. *)

val sub_into : float array -> float array -> float array -> unit
(** [sub_into x y dst] writes [x - y] into [dst]. *)

val clamp : float -> lo:float -> hi:float -> float
(** Clamp a scalar into an interval. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Absolute-plus-relative comparison used throughout the tests:
    [|a-b| <= eps * (1 + max |a| |b|)]. Default [eps = 1e-9]. *)

val sum : float array -> float
(** Sum of entries (Kahan-compensated). *)
