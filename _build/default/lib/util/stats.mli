(** Descriptive statistics over float samples.

    Used by the simulator's latency metrics and by the benchmark harness
    when summarizing experiment series. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** Single pass mean/variance (Welford). The empty array summarizes to
    all-zero fields with [count = 0]. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]] returns the linearly
    interpolated p-th percentile. Sorts a copy; the input is untouched.
    Requires a non-empty array. *)

val mean : float array -> float
(** Arithmetic mean; [0.] for the empty array. *)

val weighted_mean : values:float array -> weights:float array -> float
(** Weighted arithmetic mean. Requires equal lengths and positive total
    weight. *)

val fraction_within : float array -> threshold:float -> float
(** Fraction of samples [<= threshold]; [1.] for the empty array (an empty
    demand trivially meets any latency goal). *)
