type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

let copy t = { state = t.state }

(* Top 53 bits give a uniform float in [0, 1). *)
let unit_float t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem bits n64 in
    if Int64.sub (Int64.add bits (Int64.sub n64 1L)) v < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let float t x =
  if x <= 0. then invalid_arg "Prng.float: bound must be positive";
  unit_float t *. x

let uniform t ~lo ~hi =
  if lo >= hi then invalid_arg "Prng.uniform: requires lo < hi";
  lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. unit_float t in
  -.log u /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let pick_weighted t ~weights =
  let total = Array.fold_left (fun acc w ->
      if w < 0. then invalid_arg "Prng.pick_weighted: negative weight";
      acc +. w)
      0. weights
  in
  if total <= 0. then invalid_arg "Prng.pick_weighted: all weights zero";
  let target = unit_float t *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.
