let dot x y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Vecops.dot: length mismatch";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let axpy a x y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Vecops.axpy: length mismatch";
  for i = 0 to n - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let scale a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. x

let sub_into x y dst =
  let n = Array.length x in
  if n <> Array.length y || n <> Array.length dst then
    invalid_arg "Vecops.sub_into: length mismatch";
  for i = 0 to n - 1 do
    dst.(i) <- x.(i) -. y.(i)
  done

let clamp v ~lo ~hi = if v < lo then lo else if v > hi then hi else v

let approx_equal ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. (1. +. Float.max (Float.abs a) (Float.abs b))

let sum x =
  let acc = ref 0. and comp = ref 0. in
  for i = 0 to Array.length x - 1 do
    let y = x.(i) -. !comp in
    let t = !acc +. y in
    comp := t -. !acc -. y;
    acc := t
  done;
  !acc
