(** Mutable binary min-heap keyed by floats.

    Used by the shortest-path code and the greedy placement heuristics.
    Entries are [(priority, value)] pairs; duplicate values are allowed
    (stale entries are the caller's concern — the usual "lazy deletion"
    pattern of Dijkstra works fine). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap. [capacity] is just the initial backing-store size. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h p v] inserts value [v] with priority [p]. *)

val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest priority, if any.
    Ties are broken arbitrarily. *)

val peek_min : 'a t -> (float * 'a) option

val clear : 'a t -> unit
