type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0. }
  else begin
    let mean = ref 0. and m2 = ref 0. in
    let mn = ref xs.(0) and mx = ref xs.(0) in
    Array.iteri
      (fun i x ->
        let delta = x -. !mean in
        mean := !mean +. (delta /. float_of_int (i + 1));
        m2 := !m2 +. (delta *. (x -. !mean));
        if x < !mn then mn := x;
        if x > !mx then mx := x)
      xs;
    let variance = if n > 1 then !m2 /. float_of_int (n - 1) else 0. in
    { count = n; mean = !mean; stddev = sqrt variance; min = !mn; max = !mx }
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Vecops.sum xs /. float_of_int n

let weighted_mean ~values ~weights =
  let n = Array.length values in
  if n <> Array.length weights then
    invalid_arg "Stats.weighted_mean: length mismatch";
  let num = ref 0. and den = ref 0. in
  for i = 0 to n - 1 do
    num := !num +. (values.(i) *. weights.(i));
    den := !den +. weights.(i)
  done;
  if !den <= 0. then invalid_arg "Stats.weighted_mean: non-positive total weight";
  !num /. !den

let fraction_within xs ~threshold =
  let n = Array.length xs in
  if n = 0 then 1.
  else begin
    let within = ref 0 in
    Array.iter (fun x -> if x <= threshold then incr within) xs;
    float_of_int !within /. float_of_int n
  end
