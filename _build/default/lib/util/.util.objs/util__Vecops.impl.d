lib/util/vecops.ml: Array Float
