lib/util/prng.mli:
