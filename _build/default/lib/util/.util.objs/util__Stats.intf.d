lib/util/stats.mli:
