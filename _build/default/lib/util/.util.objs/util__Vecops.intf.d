lib/util/vecops.mli:
