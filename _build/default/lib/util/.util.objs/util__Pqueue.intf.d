lib/util/pqueue.mli:
