(** Replacement-policy-parameterized caches.

    All caching heuristics in the paper's caching {e class} share the same
    class properties (Table 3) and hence the same lower bound — the policy
    only decides how close a deployed cache gets to that bound. This
    module provides the classic policies so the gap can be measured
    (see the policy-ablation benchmark):

    - [Lru]: evict the least recently used object (delegates to
      {!Lru_cache});
    - [Fifo]: evict the oldest-inserted object, ignoring recency;
    - [Lfu]: evict the least frequently used object (access counts since
      insertion; ties broken by recency of insertion). *)

type kind = Lru | Fifo | Lfu

val kind_name : kind -> string

type t

val create : kind -> capacity:int -> t
val capacity : t -> int
val size : t -> int

val mem : t -> int -> bool
(** Pure lookup; never changes eviction state. *)

val touch : t -> int -> bool
(** Record an access; returns whether it was a hit. *)

val insert : t -> int -> int option
(** Insert after a miss; returns the evicted object, if any. Inserting a
    present object behaves like {!touch} and returns [None]. Capacity 0
    returns [Some k]. *)

val remove : t -> int -> bool
(** Remove a specific object (e.g. on invalidation); returns whether it
    was present. *)

val contents : t -> int list
(** Cached objects, in an unspecified order. *)
