(** Baseline replica-placement strategies from Qiu, Padmanabhan and
    Voelker, "On the Placement of Web Server Replicas" (INFOCOM 2001) —
    the paper behind the replica-constrained class.

    Qiu et al. evaluate greedy placement against simpler baselines; this
    module provides those baselines so the repository can replay that
    comparison inside the MC-PERF cost model:

    - [Random]: replica locations drawn uniformly among permitted sites
      (averaging over placements is the caller's concern; the function is
      deterministic given the PRNG);
    - [Hotspot]: replicas at the sites generating the most demand for the
      object (Qiu's "hot spot" heuristic);
    - [Greedy]: the cost-driven greedy of {!Greedy_replica} (re-exported
      for uniform invocation).

    All strategies produce fixed-replication-factor placements held for
    the whole horizon, i.e. members of the replica-constrained class, so
    their costs are directly comparable to that class's lower bound. *)

type strategy = Random | Hotspot | Greedy

val strategy_name : strategy -> string

val place :
  ?rng:Util.Prng.t ->
  perm:Mcperf.Permission.t ->
  strategy:strategy ->
  replicas:int ->
  unit ->
  Mcperf.Costing.placement
(** [place ~perm ~strategy ~replicas ()] picks up to [replicas] sites per
    object. [rng] is required for [Random] (defaults to a fixed seed).
    Sites are restricted to those with store support for the object, so
    every strategy respects the class's permissions. *)

val evaluate :
  ?rng:Util.Prng.t ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  strategy:strategy ->
  replicas:int ->
  unit ->
  Mcperf.Costing.evaluation
(** Place under the uniform replica-constrained class and evaluate. *)

val compare_strategies :
  ?rng:Util.Prng.t ->
  spec:Mcperf.Spec.t ->
  replicas:int ->
  unit ->
  (strategy * Mcperf.Costing.evaluation) list
(** All three strategies at the same replication factor — the rows of
    Qiu et al.'s comparison. *)
