(** A classic O(1) LRU cache over integer object ids.

    Backing structure: hash table + intrusive doubly-linked recency list.
    Capacity is measured in objects (the paper's case study uses
    equal-sized objects). A capacity of 0 is legal and caches nothing. *)

type t

val create : capacity:int -> t
(** Requires [capacity >= 0]. *)

val capacity : t -> int
val size : t -> int

val mem : t -> int -> bool
(** Pure lookup; does not touch recency. *)

val touch : t -> int -> bool
(** [touch t k] returns whether [k] was cached, moving it to
    most-recently-used position if so. *)

val insert : t -> int -> int option
(** [insert t k] adds [k] (MRU position). Returns the evicted object, if
    the cache was full. Inserting a cached object just refreshes recency
    and returns [None]. With capacity 0, returns [Some k] immediately (the
    object cannot be retained). *)

val remove : t -> int -> bool
(** Remove a specific object; returns whether it was present. *)

val evict_lru : t -> int option
(** Remove and return the least-recently-used entry. *)

val contents : t -> int list
(** Cached objects, most-recent first. O(size). *)

val iter : (int -> unit) -> t -> unit
(** Iterate cached objects (most-recent first). *)

val clear : t -> unit
