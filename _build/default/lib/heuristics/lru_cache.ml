(* Intrusive doubly-linked list over array-free nodes; the hash table maps
   object id -> node. *)
type node = {
  key : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable count : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru_cache.create: negative capacity";
  { cap = capacity; table = Hashtbl.create 64; head = None; tail = None; count = 0 }

let capacity t = t.cap
let size t = t.count
let mem t k = Hashtbl.mem t.table k

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t k =
  match Hashtbl.find_opt t.table k with
  | None -> false
  | Some n ->
    unlink t n;
    push_front t n;
    true

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> false
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table k;
    t.count <- t.count - 1;
    true

let evict_lru t =
  match t.tail with
  | None -> None
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key;
    t.count <- t.count - 1;
    Some n.key

let insert t k =
  if t.cap = 0 then Some k
  else if touch t k then None
  else begin
    let evicted = if t.count >= t.cap then evict_lru t else None in
    let n = { key = k; prev = None; next = None } in
    Hashtbl.add t.table k n;
    push_front t n;
    t.count <- t.count + 1;
    evicted
  end

let contents t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.key :: acc) n.next
  in
  walk [] t.head

let iter f t =
  let rec walk = function
    | None -> ()
    | Some n ->
      let next = n.next in
      f n.key;
      walk next
  in
  walk t.head

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.count <- 0
