type kind = Lru | Fifo | Lfu

let kind_name = function Lru -> "lru" | Fifo -> "fifo" | Lfu -> "lfu"

(* FIFO and LFU share a simple table-based representation; the eviction
   scan is O(size), which is fine at cache-simulation scales (the LRU
   variant keeps its O(1) structure). *)
type entry = {
  mutable frequency : int;
  mutable sequence : int;  (* insertion order *)
}

type t =
  | Lru_impl of Lru_cache.t
  | Table of {
      kind : kind;
      cap : int;
      entries : (int, entry) Hashtbl.t;
      mutable next_sequence : int;
    }

let create kind ~capacity =
  if capacity < 0 then invalid_arg "Policy_cache.create: negative capacity";
  match kind with
  | Lru -> Lru_impl (Lru_cache.create ~capacity)
  | Fifo | Lfu ->
    Table { kind; cap = capacity; entries = Hashtbl.create 64; next_sequence = 0 }

let capacity = function
  | Lru_impl c -> Lru_cache.capacity c
  | Table t -> t.cap

let size = function
  | Lru_impl c -> Lru_cache.size c
  | Table t -> Hashtbl.length t.entries

let mem t k =
  match t with
  | Lru_impl c -> Lru_cache.mem c k
  | Table t -> Hashtbl.mem t.entries k

let touch t k =
  match t with
  | Lru_impl c -> Lru_cache.touch c k
  | Table t -> (
    match Hashtbl.find_opt t.entries k with
    | Some e ->
      e.frequency <- e.frequency + 1;
      true
    | None -> false)

let evict_candidate (t : (int, entry) Hashtbl.t) kind =
  (* FIFO: smallest sequence. LFU: smallest frequency, ties by smallest
     sequence. *)
  Hashtbl.fold
    (fun k e acc ->
      match acc with
      | None -> Some (k, e)
      | Some (_, best) ->
        let better =
          match kind with
          | Fifo -> e.sequence < best.sequence
          | Lfu ->
            e.frequency < best.frequency
            || (e.frequency = best.frequency && e.sequence < best.sequence)
          | Lru -> assert false
        in
        if better then Some (k, e) else acc)
    t None

let insert t k =
  match t with
  | Lru_impl c -> Lru_cache.insert c k
  | Table tb ->
    if tb.cap = 0 then Some k
    else if touch t k then None
    else begin
      let evicted =
        if Hashtbl.length tb.entries >= tb.cap then begin
          match evict_candidate tb.entries tb.kind with
          | Some (victim, _) ->
            Hashtbl.remove tb.entries victim;
            Some victim
          | None -> None
        end
        else None
      in
      Hashtbl.add tb.entries k { frequency = 1; sequence = tb.next_sequence };
      tb.next_sequence <- tb.next_sequence + 1;
      evicted
    end

let remove t k =
  match t with
  | Lru_impl c -> Lru_cache.remove c k
  | Table tb ->
    if Hashtbl.mem tb.entries k then begin
      Hashtbl.remove tb.entries k;
      true
    end
    else false

let contents = function
  | Lru_impl c -> Lru_cache.contents c
  | Table t -> Hashtbl.fold (fun k _ acc -> k :: acc) t.entries []
