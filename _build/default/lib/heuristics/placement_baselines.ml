type strategy = Random | Hotspot | Greedy

let strategy_name = function
  | Random -> "random"
  | Hotspot -> "hotspot"
  | Greedy -> "greedy"

let place ?rng ~(perm : Mcperf.Permission.t) ~strategy ~replicas () =
  if replicas < 0 then
    invalid_arg "Placement_baselines.place: negative replicas";
  match strategy with
  | Greedy -> Greedy_replica.place ~perm ~replicas ()
  | Random | Hotspot ->
    let rng =
      match rng with Some r -> r | None -> Util.Prng.create ~seed:7
    in
    let spec = perm.Mcperf.Permission.spec in
    let demand = spec.Mcperf.Spec.demand in
    let nodes = Mcperf.Spec.node_count spec in
    let intervals = Mcperf.Spec.interval_count spec in
    let weight = demand.Workload.Demand.weight in
    let full_mask = Mcperf.Permission.interval_bits intervals in
    let placement = Mcperf.Costing.empty_placement spec in
    Array.iteri
      (fun k kcells ->
        (* Candidate sites: any node with store support for this object. *)
        let candidates = ref [] in
        for m = 0 to nodes - 1 do
          if perm.Mcperf.Permission.store_mask.(m).(k) <> 0 then
            candidates := m :: !candidates
        done;
        let candidates = Array.of_list !candidates in
        let chosen =
          match strategy with
          | Random ->
            let pool = Array.copy candidates in
            Util.Prng.shuffle rng pool;
            Array.sub pool 0 (min replicas (Array.length pool))
          | Hotspot ->
            (* Demand each candidate site itself generates for the
               object (Qiu's per-site request counts). *)
            let local_demand = Array.make nodes 0. in
            Array.iter
              (fun (c : Workload.Demand.cell) ->
                local_demand.(c.node) <-
                  local_demand.(c.node) +. (c.count *. weight.(k)))
              kcells;
            let pool = Array.copy candidates in
            Array.sort
              (fun a b -> compare local_demand.(b) local_demand.(a))
              pool;
            Array.sub pool 0 (min replicas (Array.length pool))
          | Greedy -> assert false
        in
        Array.iter (fun m -> placement.(m).(k) <- full_mask) chosen)
      demand.Workload.Demand.reads;
    placement

let evaluate ?rng ?placeable ~spec ~strategy ~replicas () =
  let perm =
    Mcperf.Permission.compute ?placeable spec
      Mcperf.Classes.replica_constrained_uniform
  in
  let placement = place ?rng ~perm ~strategy ~replicas () in
  Mcperf.Costing.evaluate perm placement

let compare_strategies ?rng ~spec ~replicas () =
  List.map
    (fun strategy -> (strategy, evaluate ?rng ~spec ~strategy ~replicas ()))
    [ Random; Hotspot; Greedy ]
