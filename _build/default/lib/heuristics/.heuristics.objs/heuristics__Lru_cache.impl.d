lib/heuristics/lru_cache.ml: Hashtbl List
