lib/heuristics/policy_cache.ml: Hashtbl Lru_cache
