lib/heuristics/event_cache.ml: Array Hashtbl List Mcperf Option Policy_cache Topology Workload
