lib/heuristics/greedy_global.ml: Array Float List Mcperf Topology Util Workload
