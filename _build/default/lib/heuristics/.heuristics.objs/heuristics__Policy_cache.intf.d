lib/heuristics/policy_cache.mli:
