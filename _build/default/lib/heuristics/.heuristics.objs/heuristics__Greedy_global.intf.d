lib/heuristics/greedy_global.mli: Mcperf
