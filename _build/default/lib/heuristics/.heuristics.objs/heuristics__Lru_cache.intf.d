lib/heuristics/lru_cache.mli:
