lib/heuristics/placement_baselines.ml: Array Greedy_replica List Mcperf Util Workload
