lib/heuristics/event_cache.mli: Mcperf Policy_cache Topology Workload
