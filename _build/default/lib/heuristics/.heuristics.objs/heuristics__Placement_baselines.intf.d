lib/heuristics/placement_baselines.mli: Mcperf Util
