lib/heuristics/greedy_replica.mli: Mcperf
