lib/heuristics/greedy_replica.ml: Array Mcperf Topology Workload
