let dual_bound_parts (p : Problem.t) ~y =
  let m = Problem.nrows p in
  if Array.length y <> m then
    invalid_arg "Certificate.dual_bound: dual dimension mismatch";
  let y_feas =
    Array.mapi
      (fun i yi ->
        match p.rows.(i).kind with
        | Problem.Ge -> Float.max 0. yi
        | Problem.Eq -> yi
        | Problem.Le ->
          invalid_arg "Certificate.dual_bound: problem must be Ge-normalized")
      y
  in
  let r = Array.copy p.objective in
  Array.iteri
    (fun i (row : Problem.row) ->
      let yi = y_feas.(i) in
      if yi <> 0. then
        Array.iter (fun (j, v) -> r.(j) <- r.(j) -. (yi *. v)) row.coeffs)
    p.rows;
  let bound = ref 0. in
  Array.iteri (fun i (row : Problem.row) -> bound := !bound +. (y_feas.(i) *. row.rhs)) p.rows;
  (try
     for j = 0 to Problem.nvars p - 1 do
       let lo = p.lower.(j) and hi = p.upper.(j) in
       let contrib =
         if r.(j) >= 0. then r.(j) *. lo
         else if Float.is_finite hi then r.(j) *. hi
         else raise Exit
       in
       bound := !bound +. contrib
     done
   with Exit -> bound := neg_infinity);
  (!bound, r)

let dual_bound p ~y = fst (dual_bound_parts p ~y)
