(** Exact dense two-phase simplex.

    Solves small LP instances to optimality; used for validation-sized
    MC-PERF models, as the relaxation engine inside the branch-and-bound IP
    solver, and as the ground-truth oracle in the test suite. Bland's rule
    is used throughout, so the method terminates on degenerate instances
    (set-cover relaxations are heavily degenerate).

    Dense tableau: O((rows + bounded vars)^2 * vars) memory and work per
    pivot — intended for problems with at most a few hundred rows and
    variables. Large instances go to {!Pdhg}. *)

type result =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

val solve : ?max_pivots:int -> Problem.t -> result
(** [solve p] requires every variable to have a finite lower bound (upper
    bounds may be infinite). [max_pivots] defaults to [100_000]; raises
    [Failure] if exceeded, which indicates a bug rather than a hard
    instance at the intended scale. *)
