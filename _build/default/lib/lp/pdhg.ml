type options = {
  max_iters : int;
  check_every : int;
  rel_tol : float;
  restart_every : int;
  verbose : bool;
}

let default_options =
  {
    max_iters = 20_000;
    check_every = 50;
    rel_tol = 1e-6;
    restart_every = 1_000;
    verbose = false;
  }

type outcome = {
  x : float array;
  y : float array;
  best_bound : float;
  best_y : float array;
  primal_objective : float;
  primal_infeasibility : float;
  iterations : int;
  converged : bool;
}

let src = Logs.Src.create "lp.pdhg" ~doc:"first-order LP solver"

module Log = (val Logs.src_log src : Logs.LOG)

let solve ?(options = default_options) ?x0 ?y0 problem =
  let p = Problem.normalize_ge problem in
  let n = Problem.nvars p and m = Problem.nrows p in
  Array.iteri
    (fun j l ->
      if not (Float.is_finite l && Float.is_finite p.upper.(j)) then
        invalid_arg "Pdhg.solve: all variable bounds must be finite")
    p.lower;
  let a = Problem.constraint_matrix p in
  let b = Problem.rhs_vector p in
  let c = p.objective in
  (* Diagonal preconditioners: tau_j = 1 / sum_i |A_ij|, sigma_i =
     1 / sum_j |A_ij| (alpha = 1), which satisfies the Pock-Chambolle
     convergence condition. Empty rows/columns get a neutral step. *)
  let col_sums = Sparse.col_abs_sums a in
  let row_sums = Sparse.row_abs_sums a in
  let tau = Array.map (fun s -> if s > 0. then 1. /. s else 1.) col_sums in
  let sigma = Array.map (fun s -> if s > 0. then 1. /. s else 1.) row_sums in
  let x =
    match x0 with
    | None -> Array.copy p.lower
    | Some x0 ->
      if Array.length x0 <> n then invalid_arg "Pdhg.solve: x0 dimension";
      Array.mapi
        (fun j v -> Util.Vecops.clamp v ~lo:p.lower.(j) ~hi:p.upper.(j))
        x0
  in
  let y =
    match y0 with
    | None -> Array.make m 0.
    | Some y0 ->
      if Array.length y0 <> m then invalid_arg "Pdhg.solve: y0 dimension";
      Array.copy y0
  in
  let x_prev = Array.make n 0. in
  let aty = Array.make n 0. in
  let ax_bar = Array.make m 0. in
  let x_bar = Array.make n 0. in
  (* Running averages for restarts: on LPs, periodically restarting the
     iteration from the ergodic average empirically upgrades PDHG's O(1/k)
     rate to fast linear convergence (the key idea behind PDLP). *)
  let x_sum = Array.make n 0. in
  let y_sum = Array.make m 0. in
  let since_restart = ref 0 in
  let is_eq = Array.map (fun (r : Problem.row) -> r.kind = Problem.Eq) p.rows in
  let best_bound = ref neg_infinity in
  let best_y = ref (Array.copy y) in
  let iterations = ref 0 in
  let converged = ref false in
  Sparse.mul_t a y aty;
  (try
     for iter = 1 to options.max_iters do
       iterations := iter;
       Array.blit x 0 x_prev 0 n;
       (* Primal step with box projection. *)
       for j = 0 to n - 1 do
         let g = c.(j) -. aty.(j) in
         x.(j) <-
           Util.Vecops.clamp
             (x.(j) -. (tau.(j) *. g))
             ~lo:p.lower.(j) ~hi:p.upper.(j)
       done;
       (* Extrapolated point. *)
       for j = 0 to n - 1 do
         x_bar.(j) <- (2. *. x.(j)) -. x_prev.(j)
       done;
       Sparse.mul a x_bar ax_bar;
       (* Dual step: ascend on b - A x_bar; project Ge duals to >= 0. *)
       for i = 0 to m - 1 do
         let yi = y.(i) +. (sigma.(i) *. (b.(i) -. ax_bar.(i))) in
         y.(i) <- (if is_eq.(i) then yi else Float.max 0. yi)
       done;
       Sparse.mul_t a y aty;
       Util.Vecops.axpy 1. x x_sum;
       Util.Vecops.axpy 1. y y_sum;
       incr since_restart;
       if options.restart_every > 0 && !since_restart >= options.restart_every
       then begin
         let inv = 1. /. float_of_int !since_restart in
         for j = 0 to n - 1 do
           x.(j) <- x_sum.(j) *. inv;
           x_sum.(j) <- 0.
         done;
         for i = 0 to m - 1 do
           let avg = y_sum.(i) *. inv in
           y.(i) <- (if is_eq.(i) then avg else Float.max 0. avg);
           y_sum.(i) <- 0.
         done;
         since_restart := 0;
         Sparse.mul_t a y aty
       end;
       if iter mod options.check_every = 0 then begin
         let bound = Certificate.dual_bound p ~y in
         if bound > !best_bound then begin
           best_bound := bound;
           best_y := Array.copy y
         end;
         let pobj = Util.Vecops.dot c x in
         let pinf = Problem.max_violation p x in
         let scale = 1. +. Float.abs pobj +. Float.abs !best_bound in
         let gap = Float.abs (pobj -. !best_bound) /. scale in
         if options.verbose then
           Log.info (fun f ->
               f "iter %6d  obj %.6g  bound %.6g  gap %.2e  pinf %.2e" iter
                 pobj !best_bound gap pinf);
         if
           Float.is_finite !best_bound
           && gap < options.rel_tol
           && pinf < options.rel_tol *. (1. +. Util.Vecops.norm_inf b)
         then begin
           converged := true;
           raise Exit
         end
       end
     done
   with Exit -> ());
  (* Final checkpoint in case the loop ended between checks. *)
  let final_bound = Certificate.dual_bound p ~y in
  if final_bound > !best_bound then begin
    best_bound := final_bound;
    best_y := Array.copy y
  end;
  {
    x;
    y;
    best_bound = !best_bound;
    best_y = !best_y;
    primal_objective = Util.Vecops.dot c x;
    primal_infeasibility = Problem.max_violation p x;
    iterations = !iterations;
    converged = !converged;
  }
