(** First-order LP solver: preconditioned primal–dual hybrid gradient
    (Chambolle–Pock, with the diagonal preconditioning of Pock–Chambolle
    2011).

    This is the scalable replacement for CPLEX. It needs only sparse
    matrix–vector products per iteration, so MC-PERF instances with 10^5+
    variables are tractable. Because the {!Certificate} bound is valid at
    every iterate, the solver can stop on an iteration budget and still
    return a usable (merely looser) lower bound; the [best_bound] field is
    the maximum certified bound seen at any checkpoint. *)

type options = {
  max_iters : int;  (** hard iteration cap (default 20_000) *)
  check_every : int;  (** convergence/bound checkpoint period (default 50) *)
  rel_tol : float;  (** relative gap + infeasibility target (default 1e-6) *)
  restart_every : int;
      (** restart from the ergodic average every this many iterations
          (default 1_000; 0 disables). Restarting upgrades PDHG's
          sublinear tail to fast linear convergence on most LPs — the
          core trick of Google's PDLP. *)
  verbose : bool;  (** log checkpoint progress via [logs] *)
}

val default_options : options

type outcome = {
  x : float array;  (** final primal iterate (approximately feasible) *)
  y : float array;  (** final dual iterate *)
  best_bound : float;  (** best certified lower bound over all checkpoints *)
  best_y : float array;  (** dual iterate achieving [best_bound] *)
  primal_objective : float;  (** c . x at the final iterate *)
  primal_infeasibility : float;  (** max constraint/bound violation of x *)
  iterations : int;
  converged : bool;  (** met [rel_tol] before the iteration cap *)
}

val solve :
  ?options:options ->
  ?x0:float array ->
  ?y0:float array ->
  Problem.t ->
  outcome
(** [solve p] normalizes [p] with {!Problem.normalize_ge} and runs PDHG
    from the lower-bound corner, or from the warm-start iterates [x0]/[y0]
    when given (box-projected; a QoS sweep over similar models converges
    much faster from the previous point). Every variable must have finite
    lower and upper bounds (the MC-PERF builder guarantees this);
    otherwise [Invalid_argument] is raised. *)
