(** Certified lower bounds from (possibly non-optimal) dual vectors.

    For the minimization problem in [Ge]/[Eq]-normalized form

        min c.x   s.t.  A x >= b (rows Ge), A x = b (rows Eq),
                        l <= x <= u,

    weak duality gives, for ANY multiplier vector [y] with [y_i >= 0] on
    the Ge rows (free on Eq rows):

        opt >= b.y + sum_j min(r_j * l_j, r_j * u_j)
        where r = c - A^T y.

    This holds regardless of how [y] was produced, so a truncated PDHG run
    still yields a mathematically valid lower bound — the property the
    paper's methodology needs from its LP relaxations. The bound degrades
    gracefully with dual suboptimality. If some variable has [u_j =
    infinity] and [r_j < 0], the bound is [neg_infinity]; the MC-PERF
    builder therefore gives every variable a finite upper bound. *)

val dual_bound : Problem.t -> y:float array -> float
(** [dual_bound p ~y] computes the bound above. The problem must be in
    normalized form ({!Problem.normalize_ge}); [Le] rows are rejected.
    Negative entries of [y] on Ge rows are clamped to 0 (which preserves
    validity), so any real vector is accepted. *)

val dual_bound_parts :
  Problem.t -> y:float array -> float * float array
(** Bound together with the reduced-cost vector [r] (useful for tests and
    diagnostics). *)
