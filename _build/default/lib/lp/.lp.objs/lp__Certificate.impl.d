lib/lp/certificate.ml: Array Float Problem
