lib/lp/certificate.mli: Problem
