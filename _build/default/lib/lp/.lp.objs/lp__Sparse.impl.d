lib/lp/sparse.ml: Array Float Hashtbl List Option
