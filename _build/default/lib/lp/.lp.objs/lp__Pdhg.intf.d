lib/lp/pdhg.mli: Problem
