lib/lp/sparse.mli:
