lib/lp/pdhg.ml: Array Certificate Float Logs Problem Sparse Util
