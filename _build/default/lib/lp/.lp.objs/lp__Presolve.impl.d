lib/lp/presolve.ml: Array Float Fun List Problem Util
