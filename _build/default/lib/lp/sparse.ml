type t = {
  nrows : int;
  ncols : int;
  (* CSR image *)
  row_ptr : int array;  (* length nrows + 1 *)
  col_idx : int array;
  values : float array;
  (* CSC image (transpose in CSR layout) *)
  colt_ptr : int array;  (* length ncols + 1 *)
  rowt_idx : int array;
  valuest : float array;
}

let rows t = t.nrows
let cols t = t.ncols
let nnz t = Array.length t.values

let of_row_list ~rows ~cols per_row =
  if Array.length per_row <> rows then
    invalid_arg "Sparse.of_row_list: row array length mismatch";
  (* Combine duplicates and drop zeros row by row. *)
  let cleaned =
    Array.map
      (fun entries ->
        let tbl = Hashtbl.create (List.length entries) in
        List.iter
          (fun (j, v) ->
            if j < 0 || j >= cols then
              invalid_arg "Sparse.of_row_list: column index out of range";
            let prev = Option.value (Hashtbl.find_opt tbl j) ~default:0. in
            Hashtbl.replace tbl j (prev +. v))
          entries;
        let acc = Hashtbl.fold (fun j v acc ->
            if v <> 0. then (j, v) :: acc else acc) tbl []
        in
        let arr = Array.of_list acc in
        Array.sort (fun (a, _) (b, _) -> compare a b) arr;
        arr)
      per_row
  in
  let total = Array.fold_left (fun acc r -> acc + Array.length r) 0 cleaned in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  let pos = ref 0 in
  Array.iteri
    (fun i entries ->
      row_ptr.(i) <- !pos;
      Array.iter
        (fun (j, v) ->
          col_idx.(!pos) <- j;
          values.(!pos) <- v;
          incr pos)
        entries)
    cleaned;
  row_ptr.(rows) <- !pos;
  (* Build the transpose with a counting pass. *)
  let colt_ptr = Array.make (cols + 1) 0 in
  Array.iter (fun j -> colt_ptr.(j + 1) <- colt_ptr.(j + 1) + 1) col_idx;
  for j = 1 to cols do
    colt_ptr.(j) <- colt_ptr.(j) + colt_ptr.(j - 1)
  done;
  let rowt_idx = Array.make total 0 in
  let valuest = Array.make total 0. in
  let cursor = Array.copy colt_ptr in
  for i = 0 to rows - 1 do
    for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      let j = col_idx.(p) in
      let q = cursor.(j) in
      rowt_idx.(q) <- i;
      valuest.(q) <- values.(p);
      cursor.(j) <- q + 1
    done
  done;
  { nrows = rows; ncols = cols; row_ptr; col_idx; values;
    colt_ptr; rowt_idx; valuest }

let mul t x y =
  if Array.length x <> t.ncols || Array.length y <> t.nrows then
    invalid_arg "Sparse.mul: dimension mismatch";
  for i = 0 to t.nrows - 1 do
    let acc = ref 0. in
    for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.values.(p) *. x.(t.col_idx.(p)))
    done;
    y.(i) <- !acc
  done

let mul_t t x y =
  if Array.length x <> t.nrows || Array.length y <> t.ncols then
    invalid_arg "Sparse.mul_t: dimension mismatch";
  for j = 0 to t.ncols - 1 do
    let acc = ref 0. in
    for p = t.colt_ptr.(j) to t.colt_ptr.(j + 1) - 1 do
      acc := !acc +. (t.valuest.(p) *. x.(t.rowt_idx.(p)))
    done;
    y.(j) <- !acc
  done

let row t i =
  if i < 0 || i >= t.nrows then invalid_arg "Sparse.row: index out of range";
  Array.init
    (t.row_ptr.(i + 1) - t.row_ptr.(i))
    (fun k ->
      let p = t.row_ptr.(i) + k in
      (t.col_idx.(p), t.values.(p)))

let iter_row t i f =
  if i < 0 || i >= t.nrows then invalid_arg "Sparse.iter_row: index out of range";
  for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(p) t.values.(p)
  done

let row_abs_sums t =
  Array.init t.nrows (fun i ->
      let acc = ref 0. in
      for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. Float.abs t.values.(p)
      done;
      !acc)

let col_abs_sums t =
  let sums = Array.make t.ncols 0. in
  Array.iteri
    (fun p j -> sums.(j) <- sums.(j) +. Float.abs t.values.(p))
    t.col_idx;
  sums
