(** Minimal-parameter searches for deployed heuristics.

    Heuristic families are parameterized by a scalar knob — cache capacity,
    replication factor — and the designer wants the smallest knob value
    that meets the performance goal (storage cost grows with the knob).
    Feasibility is monotone for these families (LRU contents satisfy the
    inclusion property; the greedy placements only grow with their
    budget), so binary search applies. *)

val min_feasible_int : lo:int -> hi:int -> feasible:(int -> bool) -> int option
(** Smallest [p] in [\[lo, hi\]] with [feasible p], assuming monotonicity
    ([feasible p] implies [feasible (p+1)]). [None] when even [hi] fails.
    [feasible] is invoked O(log (hi - lo)) times. Requires [lo <= hi]. *)

val min_feasible_float :
  lo:float -> hi:float -> tol:float -> feasible:(float -> bool) -> float option
(** Continuous counterpart, bisecting until the bracket is narrower than
    [tol] and returning the feasible end. *)
