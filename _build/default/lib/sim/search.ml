let min_feasible_int ~lo ~hi ~feasible =
  if lo > hi then invalid_arg "Search.min_feasible_int: lo > hi";
  if not (feasible hi) then None
  else if feasible lo then Some lo
  else begin
    (* Invariant: feasible hi, not (feasible lo). *)
    let lo = ref lo and hi = ref hi in
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if feasible mid then hi := mid else lo := mid
    done;
    Some !hi
  end

let min_feasible_float ~lo ~hi ~tol ~feasible =
  if lo > hi then invalid_arg "Search.min_feasible_float: lo > hi";
  if tol <= 0. then invalid_arg "Search.min_feasible_float: tol must be positive";
  if not (feasible hi) then None
  else if feasible lo then Some lo
  else begin
    let lo = ref lo and hi = ref hi in
    while !hi -. !lo > tol do
      let mid = 0.5 *. (!lo +. !hi) in
      if feasible mid then hi := mid else lo := mid
    done;
    Some !hi
  end
