lib/sim/runner.mli: Heuristics Mcperf Workload
