lib/sim/search.mli:
