lib/sim/runner.ml: Array Float Heuristics Mcperf Search Util Workload
