lib/sim/search.ml:
