lib/ipsolve/branch_bound.mli: Lp
