lib/ipsolve/branch_bound.ml: Array Float Logs Lp
