(** Exact integer-programming solver by LP-based branch and bound.

    MC-PERF is an IP; the paper computes exact optima only at toy scale
    (Section 5: "feasible only at a very small scale"), and so does this
    module. It exists to (a) validate the LP-relaxation + rounding pipeline
    on instances where the exact optimum is known, and (b) execute the
    SET-COVER reduction of the NP-hardness proof (appendix, Theorem 1) as a
    test.

    The relaxation engine is the dense {!Lp.Simplex}; branching is
    most-fractional-variable, depth-first with incumbent pruning. *)

type result =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Node_limit of { incumbent : (float array * float) option }
      (** Search truncated; the best integral solution found so far, if
          any (an upper bound on the optimum, not a certificate). *)

val solve :
  ?max_nodes:int ->
  ?integer_vars:int array ->
  ?integrality_tol:float ->
  Lp.Problem.t ->
  result
(** [solve p] minimizes [p] with the given variables restricted to
    integers (default: all variables). [max_nodes] bounds the search-tree
    size (default 100_000). Variables are branched within their box
    bounds, so binaries are just variables with bounds [0, 1]. Raises
    [Invalid_argument] on an unbounded relaxation (MC-PERF instances are
    always bounded: every variable is boxed). *)
