(* Regenerates the paper's evaluation figures (Section 6).

   - fig1: lower bounds per heuristic class vs QoS goal (WEB and GROUP).
   - fig2: cost of the chosen deployed heuristic vs its class bound, with
     LRU caching for comparison.
   - fig3: the two-phase deployment scenario (node opening + bounds on the
     reduced topology).
   - scale: solver wall-clock vs instance size (the Section 5 discussion).

   Absolute numbers depend on the synthetic substitutes for the paper's
   proprietary trace and topology (see DESIGN.md); the reproduced
   artefacts are the orderings, ceilings and cost ratios. *)

module CS = Replica_select.Case_study
module SS = Replica_select.Scale_scenario
module Report = Replica_select.Report
module Methodology = Replica_select.Methodology

let qos_sweep quick =
  if quick then [ 0.95; 0.999; 0.99999 ] else CS.qos_points

let maybe_write_csv ~csv_dir ~name series =
  match csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    output_string oc (Report.csv_of_figure series);
    close_out oc;
    Printf.printf "wrote %s\n%!" path

let cost_of_result (r : Bounds.Pipeline.t) =
  if r.Bounds.Pipeline.feasible then Some r.Bounds.Pipeline.lower_bound
  else None

(* Recovery bookkeeping: how each sweep's cells were actually solved and
   how much supervision the worker pool needed. Quiet unless something
   out of the ordinary happened (or faults are being injected, so the
   recovery paths are visibly exercised). *)
let pool_nontrivial (p : Util.Parallel.pool_stats) =
  p.Util.Parallel.worker_deaths > 0
  || p.Util.Parallel.respawns > 0
  || p.Util.Parallel.task_retries > 0
  || p.Util.Parallel.inline_recoveries > 0
  || p.Util.Parallel.timeouts > 0
  || p.Util.Parallel.fork_failures > 0
  || p.Util.Parallel.degraded
  || p.Util.Parallel.remote_deaths > 0
  || p.Util.Parallel.reconnects > 0
  || p.Util.Parallel.blacklisted > 0

let pool_summary (p : Util.Parallel.pool_stats) =
  Printf.sprintf
    "deaths=%d respawns=%d retries=%d inline=%d timeouts=%d fork_failures=%d \
     remote_workers=%d remote_deaths=%d reconnects=%d blacklisted=%d%s"
    p.Util.Parallel.worker_deaths p.Util.Parallel.respawns
    p.Util.Parallel.task_retries p.Util.Parallel.inline_recoveries
    p.Util.Parallel.timeouts p.Util.Parallel.fork_failures
    p.Util.Parallel.remote_workers p.Util.Parallel.remote_deaths
    p.Util.Parallel.reconnects p.Util.Parallel.blacklisted
    (if p.Util.Parallel.degraded then " degraded" else "")

(* Acceptance violations (deadline overruns, failed certificate rechecks)
   accumulate here; the figure drivers exit nonzero when any occurred so
   scripted runs can gate on them. *)
let violations = ref 0

(* Distributed-sweep configuration, installed ambiently by the CLI (like
   the fault spec): remote worker addresses and the per-task timeout that
   makes dropped dispatch frames recoverable. Every bound sweep in the
   process picks them up through [sweep_figure]. *)
let dist_workers : (string * int) list ref = ref []
let dist_task_timeout_s : float option ref = ref None

(* --- observability ------------------------------------------------------- *)

(* The ambient Obs configuration is installed once, before any sweep
   forks workers. --trace keeps the deterministic logical clock (the
   trace is byte-identical at every --jobs); --profile switches on
   wall-clock attributes and timing histograms for performance triage. *)
let setup_obs ~trace ~metrics ~profile =
  if trace <> None || metrics <> None || profile then
    Obs.Config.install
      {
        Obs.Config.trace = trace <> None || profile;
        metrics = metrics <> None || profile;
        wall_clock = profile;
        sink =
          (match trace with
          | Some f -> Obs.Config.Jsonl_file f
          | None -> Obs.Config.Null);
        metrics_path = metrics;
      }

(* The counters worth a line in the per-sweep summary: enough to see at
   a glance where a sweep's work went (solver iterations, fallback hops,
   pool supervision) when triaging a degraded or slow cell. *)
let summary_counters =
  lazy
    (List.map
       (fun n -> (n, Obs.Metrics.counter n))
       [
         "pipeline.cells"; "pipeline.fallback_hops"; "pdhg.solves";
         "pdhg.iterations"; "pdhg.restarts"; "pdhg.deadline_stops";
         "simplex.solves"; "simplex.pivots"; "branch_bound.nodes";
         "sim.heuristic_runs"; "pool.tasks_dispatched"; "pool.worker_deaths";
         "pool.task_retries"; "pool.inline_recoveries"; "pool.timeouts";
       ])

(* Metrics accumulate for the whole process, so the per-sweep table
   shows the movement across one sweep: value-after minus value-before
   for every counter that moved. *)
let with_metrics_summary ~name f =
  if not (Obs.Config.metering ()) then f ()
  else begin
    let counters = Lazy.force summary_counters in
    let before =
      List.map (fun (n, c) -> (n, Obs.Metrics.counter_value c)) counters
    in
    let r = f () in
    let moved =
      List.filter_map
        (fun ((n, c), (_, b)) ->
          let d = Obs.Metrics.counter_value c - b in
          if d > 0 then Some (n, d) else None)
        (List.combine counters before)
    in
    if moved <> [] then begin
      Printf.printf "metrics %s:\n" name;
      List.iter (fun (n, d) -> Printf.printf "  %-28s %12d\n" n d) moved;
      Printf.printf "%!"
    end;
    r
  end

let print_sweep_robustness ~name (sweep : Bounds.Pipeline.sweep) =
  let paths =
    List.filter (fun (_, n) -> n > 0) (Bounds.Pipeline.path_counts sweep)
  in
  let fallbacks =
    List.exists
      (fun (p, _) ->
        p = Bounds.Pipeline.Path_pdhg_retry
        || p = Bounds.Pipeline.Path_simplex_fallback)
      paths
  in
  if
    Util.Faults.active () || fallbacks
    || pool_nontrivial sweep.Bounds.Pipeline.pool
    || sweep.Bounds.Pipeline.resumed > 0
  then
    Printf.printf "robustness %s: paths[%s] pool[%s] resumed=%d\n%!" name
      (String.concat " "
         (List.map
            (fun (p, n) ->
              Printf.sprintf "%s=%d" (Bounds.Pipeline.path_label p) n)
            paths))
      (pool_summary sweep.Bounds.Pipeline.pool)
      sweep.Bounds.Pipeline.resumed

(* Degradation bookkeeping: which quality each cell stopped with, and —
   under a --deadline — whether the sweep honored its budget. The grace
   term is one cell's wall-clock plus scheduling slop: the governor can
   only stop a cell at its next solver checkpoint, so the last cell may
   straddle the deadline by its own runtime but never more. *)
let print_sweep_quality ~name ~deadline_s ~cell_budget_s
    (sweep : Bounds.Pipeline.sweep) =
  let budgeted =
    Float.is_finite deadline_s || Float.is_finite cell_budget_s
  in
  let counts =
    List.filter (fun (_, n) -> n > 0) (Bounds.Pipeline.quality_counts sweep)
  in
  let degraded =
    List.exists
      (fun (q, _) ->
        q = Bounds.Pipeline.Iter_budget || q = Bounds.Pipeline.Time_budget)
      counts
  in
  if budgeted || degraded then
    Printf.printf "quality %s: %s\n%!" name
      (String.concat " "
         (List.map
            (fun (q, n) ->
              Printf.sprintf "%s=%d" (Bounds.Pipeline.quality_label q) n)
            counts));
  if Float.is_finite deadline_s then begin
    let max_cell =
      List.fold_left
        (fun acc (s : Bounds.Pipeline.task_stat) ->
          Float.max acc s.Bounds.Pipeline.wall_s)
        0. sweep.Bounds.Pipeline.stats
    in
    let grace = max_cell +. 1.0 in
    let elapsed = sweep.Bounds.Pipeline.elapsed_s in
    if elapsed <= deadline_s +. grace then
      Printf.printf "deadline %s: budget %.2fs elapsed %.2fs (within; grace %.2fs)\n%!"
        name deadline_s elapsed grace
    else begin
      incr violations;
      Printf.printf "deadline %s: budget %.2fs elapsed %.2fs OVERRUN (grace %.2fs)\n%!"
        name deadline_s elapsed grace
    end
  end

(* Recheck every cell's certificate from scratch (see
   {!Bounds.Pipeline.certify}): feasible cells must reproduce their bound
   from the attached dual, infeasible cells must carry a Farkas ray that
   [check_farkas] accepts. *)
let certify_sweep ?placeable ~name spec (sweep : Bounds.Pipeline.sweep)
    classes =
  match spec.Mcperf.Spec.goal with
  | Mcperf.Spec.Avg_latency _ -> ()
  | Mcperf.Spec.Qos { tlat_ms; _ } ->
    let total = ref 0 and ok = ref 0 in
    List.iter
      (fun (label, results) ->
        match List.assoc_opt label classes with
        | None -> ()
        | Some cls ->
          List.iter
            (fun (q, r) ->
              incr total;
              let spec =
                {
                  spec with
                  Mcperf.Spec.goal = Mcperf.Spec.Qos { tlat_ms; fraction = q };
                }
              in
              match Bounds.Pipeline.certify ?placeable spec cls r with
              | Ok () -> incr ok
              | Error msg ->
                incr violations;
                Printf.printf "certificate FAIL %s @ %.5f: %s\n%!" label q msg)
            results)
      sweep.Bounds.Pipeline.per_class;
    Printf.printf "certificates %s: %d/%d verified\n%!" name !ok !total

(* One parallel batch for a whole figure: every (class, point) cell is an
   independent task, so a figure's bound grid saturates the worker pool
   instead of sweeping class by class. [journal_dir] turns on
   checkpointing: an interrupted run re-executed with the same arguments
   resumes from DIR/<name>.journal. *)
let sweep_figure ?placeable ?journal_dir ?(deadline_s = infinity)
    ?(cell_budget_s = infinity) ?(certify = false) ~name ~jobs spec points
    classes =
  let journal =
    Option.map
      (fun dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        Filename.concat dir (name ^ ".journal"))
      journal_dir
  in
  let cfg =
    {
      Bounds.Pipeline.Sweep_config.default with
      jobs;
      placeable;
      deadline_s;
      cell_budget_s;
      journal;
      workers = !dist_workers;
      timeout_s = !dist_task_timeout_s;
    }
  in
  let sweep =
    with_metrics_summary ~name (fun () ->
        Bounds.Pipeline.sweep_classes cfg spec ~fractions:points classes)
  in
  print_sweep_robustness ~name sweep;
  print_sweep_quality ~name ~deadline_s ~cell_budget_s sweep;
  if certify then certify_sweep ?placeable ~name spec sweep classes;
  let series =
    List.map
      (fun (label, results) ->
        Report.series_of ~label
          (List.map (fun (q, r) -> (q, cost_of_result r)) results))
      sweep.Bounds.Pipeline.per_class
  in
  (series, Report.timing_of_stats sweep.Bounds.Pipeline.stats,
   sweep.Bounds.Pipeline.elapsed_s)

(* --- Figure 1 ----------------------------------------------------------- *)

let fig1_classes =
  [
    ("General lower bound", Mcperf.Classes.general);
    ("Storage constrained", Mcperf.Classes.storage_constrained);
    ("Replica constrained", Mcperf.Classes.replica_constrained_uniform);
    ("Decentral local routing", Mcperf.Classes.decentralized_local_routing);
    ( "Caching",
      Mcperf.Classes.allow_intra_interval_reaction Mcperf.Classes.caching );
    ( "Cooperative caching",
      Mcperf.Classes.allow_intra_interval_reaction
        Mcperf.Classes.cooperative_caching );
  ]

let fig1 ?csv_dir ?journal_dir ~quick ~scale ~seed ~jobs ~deadline_s
    ~cell_budget_s ~certify workload =
  let cs = CS.make ~seed ~scale workload in
  let spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:true () in
  let points = qos_sweep quick in
  Logs.app (fun f ->
      f "fig1 %s: %d classes x %d points, jobs=%d ..."
        (CS.workload_name workload)
        (List.length fig1_classes) (List.length points) jobs);
  let name = "fig1-" ^ String.lowercase_ascii (CS.workload_name workload) in
  let series, timing, elapsed_s =
    sweep_figure ?journal_dir ~deadline_s ~cell_budget_s ~certify ~name ~jobs
      spec points fig1_classes
  in
  Report.print_figure
    ~title:
      (Printf.sprintf
         "Figure 1 (%s): lower bound per heuristic class vs QoS goal"
         (CS.workload_name workload))
    ~xlabel:"QoS" series;
  Report.print_timing
    ~title:(Printf.sprintf "fig1 %s" (CS.workload_name workload))
    ~jobs ~elapsed_s timing;
  maybe_write_csv ~csv_dir ~name series;
  series

(* --- Figure 2 ----------------------------------------------------------- *)

(* Deployed-heuristic sweeps: one task per goal point. Each point's
   minimal-parameter search is itself monotone-deterministic, so parallel
   and sequential sweeps agree; the raw per-point outcomes are returned so
   callers can derive ratios without re-simulating. [cell_budget_s] gives
   each point an advisory budget: the bisection inside is anytime (its
   upper bracket stays feasible), so on expiry it returns a valid but
   possibly non-minimal parameter. *)
let deployed_sweep ?(cell_budget_s = infinity) ~jobs ~label points run =
  let budget_of =
    if Float.is_finite cell_budget_s then Some (fun _ -> cell_budget_s)
    else None
  in
  let t0 = Unix.gettimeofday () in
  let outcomes = Util.Parallel.map ~jobs ?budget_of ~f:run points in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let pool = Util.Parallel.last_pool_stats () in
  if pool_nontrivial pool then
    Printf.printf "robustness %s: pool[%s]\n%!" label (pool_summary pool);
  let raw =
    List.map2 (fun q (o : _ Util.Parallel.result) -> (q, o.Util.Parallel.value))
      points outcomes
  in
  let series =
    Report.series_of ~label
      (List.map
         (fun (q, d) ->
           (q, Option.map (fun (d : Sim.Runner.deployed) -> d.Sim.Runner.cost) d))
         raw)
  in
  let timing =
    List.map2
      (fun q (o : _ Util.Parallel.result) ->
        {
          Report.task = label;
          x = q;
          wall_s = o.Util.Parallel.wall_s;
          solver = "sim";
          iterations = 0;
          quality = "-";
        })
      points outcomes
  in
  (series, raw, timing, elapsed_s)

let fig2 ?csv_dir ?journal_dir ~quick ~scale ~seed ~jobs ~deadline_s
    ~cell_budget_s ~certify workload =
  let cs = CS.make ~seed ~scale workload in
  let points = qos_sweep quick in
  let bound_spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:true () in
  let sim_spec q = CS.qos_spec cs ~fraction:q ~for_bounds:false () in
  let chosen_cls, chosen_label, run_chosen =
    match workload with
    | CS.Web ->
      ( Mcperf.Classes.storage_constrained,
        "Greedy global heuristic",
        fun q -> Sim.Runner.greedy_global ~spec:(sim_spec q) () )
    | CS.Group ->
      ( Mcperf.Classes.replica_constrained_uniform,
        "Replica constrained heuristic",
        fun q -> Sim.Runner.greedy_replica ~spec:(sim_spec q) () )
  in
  Logs.app (fun f -> f "fig2 %s: class bound ..." (CS.workload_name workload));
  let bound_label =
    match workload with
    | CS.Web -> "Storage constrained bound"
    | CS.Group -> "Replica constrained bound"
  in
  let bound_series, bound_timing, bound_elapsed =
    sweep_figure ?journal_dir ~deadline_s ~cell_budget_s ~certify
      ~name:
        ("fig2-" ^ String.lowercase_ascii (CS.workload_name workload) ^ "-bound")
      ~jobs bound_spec points
      [ (bound_label, chosen_cls) ]
  in
  Logs.app (fun f -> f "fig2 %s: %s ..." (CS.workload_name workload) chosen_label);
  let chosen_series, chosen_raw, chosen_timing, chosen_elapsed =
    deployed_sweep ~cell_budget_s ~jobs ~label:chosen_label points run_chosen
  in
  Logs.app (fun f -> f "fig2 %s: LRU caching ..." (CS.workload_name workload));
  let lru_series, lru_raw, lru_timing, lru_elapsed =
    deployed_sweep ~cell_budget_s ~jobs ~label:"LRU caching" points (fun q ->
        Sim.Runner.lru_caching ~spec:(sim_spec q) ~trace:cs.CS.trace ())
  in
  let series = List.concat [ bound_series; [ chosen_series; lru_series ] ] in
  Report.print_figure
    ~title:
      (Printf.sprintf
         "Figure 2 (%s): deployed heuristic cost vs its class bound"
         (CS.workload_name workload))
    ~xlabel:"QoS" series;
  Report.print_timing
    ~title:(Printf.sprintf "fig2 %s" (CS.workload_name workload))
    ~jobs
    ~elapsed_s:(bound_elapsed +. chosen_elapsed +. lru_elapsed)
    (bound_timing @ chosen_timing @ lru_timing);
  (* The introduction's headline claim: cost ratio of the default heuristic
     (LRU) to the methodology's choice, at the goals both can meet. *)
  let ratios =
    List.filter_map
      (fun q ->
        match (List.assoc q chosen_raw, List.assoc q lru_raw) with
        | Some c, Some l when c.Sim.Runner.cost > 0. ->
          Some (q, l.Sim.Runner.cost /. c.Sim.Runner.cost)
        | _ -> None)
      points
  in
  List.iter
    (fun (q, ratio) ->
      Printf.printf "intro-claim %s @ %.5f: LRU costs %.1fx the chosen heuristic\n"
        (CS.workload_name workload) q ratio)
    ratios;
  maybe_write_csv ~csv_dir
    ~name:("fig2-" ^ String.lowercase_ascii (CS.workload_name workload))
    series;
  series

(* --- Figure 3 ----------------------------------------------------------- *)

let fig3_classes =
  [
    ( "Reactive bound",
      Mcperf.Classes.allow_intra_interval_reaction
        Mcperf.Classes.reactive_general );
    ("Storage constrained", Mcperf.Classes.storage_constrained);
    ("Replica constrained", Mcperf.Classes.replica_constrained_uniform);
    ( "Caching bound",
      Mcperf.Classes.allow_intra_interval_reaction Mcperf.Classes.caching );
  ]

let fig3 ?csv_dir ?journal_dir ~quick ~scale ~seed ~zeta ~jobs ~deadline_s
    ~cell_budget_s ~certify workload =
  let cs = CS.make ~seed ~scale workload in
  let points = qos_sweep quick in
  (* Phase 1: decide where to deploy nodes. The planning goal must be one
     the reactive classes can reach at all (heavy-tailed workloads have an
     irreducible cold-miss floor per site), so plan at the sweep's lowest
     goal; phase 2 then reports how far up the deployed system can go. *)
  let phase1_spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:true () in
  match Methodology.plan_deployment ~zeta phase1_spec with
  | None ->
    Printf.printf "fig3 %s: no deployment can meet the goal\n"
      (CS.workload_name workload);
    []
  | Some plan ->
    Report.print_deployment plan;
    (* Phase 2: bounds with users reassigned to the open nodes and
       placement restricted to them. *)
    let placeable = plan.Methodology.placeable in
    let bound_spec =
      Methodology.reassign_demand
        (CS.qos_spec cs ~fraction:0.95 ~for_bounds:true ())
        plan
    in
    let sim_spec q =
      Methodology.reassign_demand (CS.qos_spec cs ~fraction:q ~for_bounds:false ()) plan
    in
    let trace =
      Workload.Trace.remap_nodes cs.CS.trace
        ~mapping:plan.Methodology.assignment
    in
    Logs.app (fun f ->
        f "fig3 %s: %d classes x %d points, jobs=%d ..."
          (CS.workload_name workload)
          (List.length fig3_classes) (List.length points) jobs);
    let bound_series, bound_timing, bound_elapsed =
      sweep_figure ~placeable ?journal_dir ~deadline_s ~cell_budget_s ~certify
        ~name:
          ("fig3-"
          ^ String.lowercase_ascii (CS.workload_name workload)
          ^ "-bound")
        ~jobs bound_spec points fig3_classes
    in
    let deployed, _, deployed_timing, deployed_elapsed =
      match workload with
      | CS.Web ->
        deployed_sweep ~cell_budget_s ~jobs ~label:"Greedy global heuristic"
          points (fun q ->
            Sim.Runner.greedy_global ~placeable ~spec:(sim_spec q) ())
      | CS.Group ->
        deployed_sweep ~cell_budget_s ~jobs ~label:"LRU caching" points
          (fun q ->
            Sim.Runner.lru_caching ~placeable ~spec:(sim_spec q) ~trace ())
    in
    let series = bound_series @ [ deployed ] in
    Report.print_figure
      ~title:
        (Printf.sprintf
           "Figure 3 (%s): bounds with only the %d deployed nodes"
           (CS.workload_name workload)
           (List.length plan.Methodology.open_nodes))
      ~xlabel:"QoS" series;
    Report.print_timing
      ~title:(Printf.sprintf "fig3 %s" (CS.workload_name workload))
      ~jobs
      ~elapsed_s:(bound_elapsed +. deployed_elapsed)
      (bound_timing @ deployed_timing);
    maybe_write_csv ~csv_dir
      ~name:("fig3-" ^ String.lowercase_ascii (CS.workload_name workload))
      series;
    series

(* --- Scale (Section 5 runtime discussion) -------------------------------- *)

let scale_experiment ~seed () =
  Printf.printf
    "\n=== Solver wall-clock vs instance scale (general bound, WEB, 99%%) ===\n";
  Printf.printf "%-8s %-10s %-10s %-12s %-12s %-10s\n" "scale" "vars" "rows"
    "solve(s)" "round(s)" "gap";
  List.iter
    (fun scale ->
      let cs = CS.make ~seed ~scale CS.Web in
      let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:true () in
      let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
      let model = Mcperf.Model.build perm in
      let t0 = Unix.gettimeofday () in
      let out =
        Lp.Pdhg.solve ~options:Bounds.Pipeline.default_pdhg_options
          model.Mcperf.Model.problem
      in
      let t1 = Unix.gettimeofday () in
      let rounded = Rounding.Round.round model ~x:out.Lp.Pdhg.x in
      let t2 = Unix.gettimeofday () in
      let gap =
        match rounded with
        | Ok r ->
          let c = r.Rounding.Round.evaluation.Mcperf.Costing.total in
          Printf.sprintf "%.1f%%"
            (100. *. (c -. out.Lp.Pdhg.best_bound) /. Float.max c 1e-9)
        | Error _ -> "-"
      in
      Printf.printf "%-8.3f %-10d %-10d %-12.2f %-12.2f %-10s\n%!" scale
        (Lp.Problem.nvars model.Mcperf.Model.problem)
        (Lp.Problem.nrows model.Mcperf.Model.problem)
        (t1 -. t0) (t2 -. t1) gap)
    [ 0.02; 0.05; 0.1; 0.2 ]

(* --- Selection methodology demo (Section 6.1 narrative) ------------------- *)

let selection ~scale ~seed workload =
  let cs = CS.make ~seed ~scale workload in
  let spec = CS.qos_spec cs ~fraction:0.999 ~for_bounds:true () in
  let sel = Methodology.select spec in
  Report.print_selection
    ~title:
      (Printf.sprintf "Heuristic selection for %s at 99.9%% QoS"
         (CS.workload_name workload))
    sel


(* --- validate: cross-check every bound producer on small instances -------- *)

let validate ~seed () =
  Printf.printf
    "\n=== Cross-validation: IP optimum vs LP bounds vs rounding (8 nodes, 2%% WEB) ===\n";
  Printf.printf "%-30s %12s %12s %12s %12s\n" "class" "simplex-LP"
    "pdhg-bound" "lagrangian" "rounded";
  let cs = CS.make ~seed ~nodes:8 ~scale:0.01 ~intervals:8 CS.Web in
  let spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:true () in
  List.iter
    (fun (cls : Mcperf.Classes.t) ->
      let perm = Mcperf.Permission.compute spec cls in
      if not (Mcperf.Permission.feasible perm) then
        Printf.printf "%-30s infeasible at this goal\n" cls.Mcperf.Classes.name
      else begin
        let model = Mcperf.Model.build perm in
        let problem = model.Mcperf.Model.problem in
        let simplex_lp, x_exact =
          match Lp.Simplex.solve problem with
          | Lp.Simplex.Optimal { x; objective } -> (objective, Some x)
          | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> (nan, None)
        in
        let pdhg =
          (Lp.Pdhg.solve
             ~options:{ Lp.Pdhg.default_options with max_iters = 10_000; rel_tol = 1e-5 }
             problem)
            .Lp.Pdhg.best_bound
        in
        let lagr =
          (Bounds.Lagrangian.bound ~iterations:40 spec cls)
            .Bounds.Lagrangian.bound
        in
        let rounded =
          match x_exact with
          | Some x -> (
            match Rounding.Round.round model ~x with
            | Ok r -> r.Rounding.Round.evaluation.Mcperf.Costing.total
            | Error _ -> nan)
          | None -> nan
        in
        Printf.printf "%-30s %12.2f %12.2f %12.2f %12.2f\n%!"
          cls.Mcperf.Classes.name simplex_lp pdhg lagr rounded
      end)
    [
      Mcperf.Classes.general;
      Mcperf.Classes.storage_constrained;
      Mcperf.Classes.replica_constrained;
      Mcperf.Classes.replica_constrained_uniform;
      Mcperf.Classes.cooperative_caching;
    ];
  (* A second, genuinely tiny instance where the exact IP is tractable:
     the LP bound must sit below the IP optimum, the rounded cost above. *)
  Printf.printf
    "\n=== Tiny instance (5 nodes, 4 intervals): LP <= IP <= rounded ===\n";
  Printf.printf "%-30s %12s %12s %12s\n" "class" "LP" "IP" "rounded";
  let cs = CS.make ~seed ~nodes:5 ~scale:0.002 ~intervals:4 CS.Web in
  let spec = CS.qos_spec cs ~fraction:0.9 ~for_bounds:true () in
  List.iter
    (fun (cls : Mcperf.Classes.t) ->
      let perm = Mcperf.Permission.compute spec cls in
      if not (Mcperf.Permission.feasible perm) then
        Printf.printf "%-30s infeasible at this goal\n" cls.Mcperf.Classes.name
      else begin
        let model = Mcperf.Model.build perm in
        let problem = model.Mcperf.Model.problem in
        match Lp.Simplex.solve problem with
        | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
          Printf.printf "%-30s LP failed\n" cls.Mcperf.Classes.name
        | Lp.Simplex.Optimal { x; objective = lp } ->
          let ip =
            match Ipsolve.Branch_bound.solve ~max_nodes:20_000 problem with
            | Ipsolve.Branch_bound.Optimal { objective; _ } -> objective
            | Ipsolve.Branch_bound.Node_limit _
            | Ipsolve.Branch_bound.Infeasible ->
              nan
          in
          let rounded =
            match Rounding.Round.round model ~x with
            | Ok r -> r.Rounding.Round.evaluation.Mcperf.Costing.total
            | Error _ -> nan
          in
          Printf.printf "%-30s %12.2f %12.2f %12.2f\n%!"
            cls.Mcperf.Classes.name lp ip rounded
      end)
    [ Mcperf.Classes.general; Mcperf.Classes.replica_constrained ]

(* --- validate --family tree: the exact DP as ground truth ----------------- *)

module TS = Replica_select.Tree_scenario

(* Every number printed here is deterministic (no wall clocks), so
   scripted runs can [cmp] the output across --jobs settings. *)
let validate_tree ~seed ~count ~jobs () =
  let tol x = 1e-6 *. (1. +. Float.abs x) in
  let fail name fmt =
    incr violations;
    Printf.printf "FAIL %s: " name;
    Printf.kfprintf (fun oc -> output_char oc '\n') stdout fmt
  in
  Printf.printf
    "\n=== Tree family: exact DP vs every other producer (%d instances, seed %d) ===\n"
    count seed;
  Printf.printf "%-22s %5s %5s %9s %9s %9s %9s %9s %9s %12s\n" "instance"
    "nodes" "sites" "dp" "simplex" "pdhg" "lagrange" "rounded" "propor"
    "path";
  let family = TS.family ~seed ~count () in
  List.iter
    (fun (scen : TS.t) ->
      let spec = scen.TS.spec and placeable = scen.TS.placeable in
      let name = scen.TS.name in
      let nodes = Mcperf.Spec.node_count spec in
      let sites =
        match placeable with
        | None -> nodes
        | Some p -> Array.fold_left (fun n b -> if b then n + 1 else n) 0 p
      in
      let dp_cell = Bounds.Pipeline.compute ?placeable spec Mcperf.Classes.general in
      if not dp_cell.Bounds.Pipeline.feasible then
        fail name "general class infeasible";
      if dp_cell.Bounds.Pipeline.solve_path <> Bounds.Pipeline.Path_tree_dp
      then
        fail name "not routed through tree-dp (%s)"
          (Bounds.Pipeline.path_label dp_cell.Bounds.Pipeline.solve_path);
      let dp = dp_cell.Bounds.Pipeline.lower_bound in
      (match
         Bounds.Pipeline.certify ?placeable spec Mcperf.Classes.general
           dp_cell
       with
      | Ok () -> ()
      | Error msg -> fail name "certify rejected the DP cell: %s" msg);
      let lp_cell =
        Bounds.Pipeline.compute ~solver:Bounds.Pipeline.Exact_simplex
          ?placeable spec Mcperf.Classes.general
      in
      let lp = lp_cell.Bounds.Pipeline.lower_bound in
      if lp > dp +. tol dp then fail name "simplex LP %.6f above DP %.6f" lp dp;
      let rounded =
        match lp_cell.Bounds.Pipeline.rounded with
        | None -> nan
        | Some r ->
          let ev = r.Rounding.Round.evaluation in
          if not ev.Mcperf.Costing.meets_goal then
            fail name "rounded LP placement misses the goal";
          if ev.Mcperf.Costing.total < dp -. tol dp then
            fail name "rounded LP cost %.6f below DP optimum %.6f"
              ev.Mcperf.Costing.total dp;
          ev.Mcperf.Costing.total
      in
      let pdhg_cell =
        Bounds.Pipeline.compute
          ~solver:
            (Bounds.Pipeline.First_order
               {
                 Lp.Pdhg.default_options with
                 Lp.Pdhg.max_iters = 20_000;
                 rel_tol = 1e-6;
               })
          ?placeable spec Mcperf.Classes.general
      in
      let pdhg = pdhg_cell.Bounds.Pipeline.lower_bound in
      if pdhg > dp +. tol dp then
        fail name "PDHG bound %.6f above DP %.6f" pdhg dp;
      (* the Lagrangian producer has no placeable support; compare only
         on unrestricted instances *)
      let lagr =
        match placeable with
        | Some _ -> nan
        | None ->
          let b =
            (Bounds.Lagrangian.bound ~iterations:40 spec
               Mcperf.Classes.general)
              .Bounds.Lagrangian.bound
          in
          if b > dp +. tol dp then
            fail name "Lagrangian %.6f above DP %.6f" b dp;
          b
      in
      let prop =
        match Heuristics.Proportional.search ?placeable ~spec () with
        | None ->
          fail name "proportional search found no feasible budget";
          nan
        | Some (_, ev) ->
          if ev.Mcperf.Costing.total < dp -. tol dp then
            fail name "proportional cost %.6f below DP optimum %.6f"
              ev.Mcperf.Costing.total dp;
          ev.Mcperf.Costing.total
      in
      Printf.printf "%-22s %5d %5d %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %12s\n%!"
        name nodes sites dp lp pdhg lagr rounded prop
        (Bounds.Pipeline.path_label dp_cell.Bounds.Pipeline.solve_path))
    family;
  (* Sweep layer: the same instances through sweep_classes at the
     requested --jobs; every general cell must take the DP path and the
     printed grid is identical at any --jobs (which is why the header
     does not echo the jobs count). *)
  Printf.printf "\n=== Tree sweeps (general + caching) ===\n";
  List.iter
    (fun (scen : TS.t) ->
      let cfg =
        {
          Bounds.Pipeline.Sweep_config.default with
          Bounds.Pipeline.Sweep_config.jobs;
          placeable = scen.TS.placeable;
        }
      in
      let sweep =
        Bounds.Pipeline.sweep_classes cfg scen.TS.spec
          ~fractions:TS.default_fractions
          [
            ("general", Mcperf.Classes.general);
            ( "caching",
              Mcperf.Classes.allow_intra_interval_reaction
                Mcperf.Classes.caching );
          ]
      in
      List.iter
        (fun (label, cells) ->
          Printf.printf "%-22s %-8s" scen.TS.name label;
          List.iter
            (fun (q, (r : Bounds.Pipeline.t)) ->
              if
                String.equal label "general"
                && r.Bounds.Pipeline.feasible
                && r.Bounds.Pipeline.solve_path
                   <> Bounds.Pipeline.Path_tree_dp
              then
                fail scen.TS.name "sweep cell @ %g not on the DP path" q;
              Printf.printf "  %g:%s" q
                (if r.Bounds.Pipeline.feasible then
                   Printf.sprintf "%.2f" r.Bounds.Pipeline.lower_bound
                 else "-"))
            cells;
          print_newline ())
        sweep.Bounds.Pipeline.per_class)
    family;
  Printf.printf "\ntree validation: %s\n%!"
    (if !violations = 0 then "all checks passed"
     else Printf.sprintf "%d violations" !violations)

(* --- validate --family avail: correlated failures, survivable bounds ------ *)

(* Like the tree family, every number printed here is deterministic (no
   wall clocks, order-preserving parallel maps), so scripted runs [cmp]
   the output across --jobs settings. [count] is the sampled scenario
   count. *)
let validate_avail ~seed ~count ~jobs () =
  let tol x = 1e-6 *. (1. +. Float.abs x) in
  let fail name fmt =
    incr violations;
    Printf.printf "FAIL %s: " name;
    Printf.kfprintf (fun oc -> output_char oc '\n') stdout fmt
  in
  Printf.printf
    "\n=== Avail family: failure sampler, survivability, scenario LP (%d \
     scenarios, seed %d) ===\n"
    count seed;
  let cs = CS.make ~seed ~nodes:8 ~scale:0.01 ~intervals:8 CS.Web in
  let spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:true () in
  let sys = spec.Mcperf.Spec.system in
  let nodes = Mcperf.Spec.node_count spec in
  let groups = Avail.Groups.derive sys in
  Printf.printf "failure groups: %d\n" (Array.length groups);
  Array.iter
    (fun (g : Avail.Groups.t) ->
      Printf.printf "  %-14s size=%d members=[%s]\n" g.Avail.Groups.name
        (Array.length g.Avail.Groups.members)
        (String.concat ","
           (Array.to_list (Array.map string_of_int g.Avail.Groups.members))))
    groups;
  let sspec = { Avail.Scenario.default with Avail.Scenario.seed; count } in
  let scenarios = Avail.Scenario.sample_all sspec sys ~groups in
  (* Sampler determinism: a second sampling pass must be byte-identical. *)
  let scenarios2 = Avail.Scenario.sample_all sspec sys ~groups in
  Array.iteri
    (fun i s ->
      if
        not
          (String.equal (Avail.Scenario.signature s)
             (Avail.Scenario.signature scenarios2.(i)))
      then fail "sampler" "scenario %d not reproducible" i)
    scenarios;
  Printf.printf "\nscenarios (down-count, signature):";
  Array.iter
    (fun s ->
      Printf.printf " %d:%s" (Avail.Scenario.down_count s)
        (Avail.Scenario.signature s))
    scenarios;
  print_newline ();
  let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
  (* The expected-cost scenario LP for the general class: a lower bound
     on the expected degraded cost of EVERY placement that meets the
     nominal goal. *)
  let bound_cell =
    Bounds.Avail_bound.expected_cost_bound spec Mcperf.Classes.general
      ~scenarios
  in
  if not bound_cell.Bounds.Avail_bound.feasible then
    fail "scenario-lp" "general class reported infeasible at the goal";
  Printf.printf
    "\nscenario LP (general): bound=%.4f vars=%d (%d nominal) rows=%d %s\n"
    bound_cell.Bounds.Avail_bound.expected_bound
    bound_cell.Bounds.Avail_bound.vars
    bound_cell.Bounds.Avail_bound.nominal_vars
    bound_cell.Bounds.Avail_bound.rows
    (if bound_cell.Bounds.Avail_bound.exact then "simplex" else "pdhg");
  (* Placements to check the bound against: the rounded LP solution and
     the two centralized greedy heuristics, all evaluated on the same
     spec. *)
  let placements =
    List.filter_map
      (fun x -> x)
      [
        (match
           (Bounds.Pipeline.compute spec Mcperf.Classes.general)
             .Bounds.Pipeline.rounded
         with
        | Some r -> Some ("rounded-lp", r.Rounding.Round.placement)
        | None -> None);
        Option.bind
          (Sim.Runner.greedy_global ~jobs ~spec ())
          (fun d ->
            Option.map (fun p -> ("greedy-global", p)) d.Sim.Runner.placement);
        Option.bind
          (Sim.Runner.greedy_replica ~jobs ~spec ())
          (fun d ->
            Option.map (fun p -> ("greedy-replica", p)) d.Sim.Runner.placement);
      ]
  in
  if placements = [] then fail "placements" "no feasible placement produced";
  Printf.printf "\n%-14s %10s %10s %10s %9s %9s %9s\n" "placement" "cost"
    "expected" "lp-bound" "fragility" "worstviol" "meanunav";
  List.iter
    (fun (name, placement) ->
      let base = Mcperf.Costing.evaluate perm placement in
      if not base.Mcperf.Costing.meets_goal then
        fail name "placement misses the nominal goal";
      (* All-up degradation must reproduce the nominal total exactly. *)
      let up = Array.make nodes false in
      let d0 = Avail.Survive.degrade ~base perm placement ~down:up in
      if
        Float.abs (d0.Avail.Survive.degraded_cost -. base.Mcperf.Costing.total)
        > 1e-9 *. (1. +. Float.abs base.Mcperf.Costing.total)
      then
        fail name "all-up degraded cost %.6f <> nominal %.6f"
          d0.Avail.Survive.degraded_cost base.Mcperf.Costing.total;
      (* Monotonicity along a nested chain of failure sets. *)
      let chain = Array.init nodes (fun n -> n) in
      let prev = ref d0.Avail.Survive.degraded_cost in
      let down = Array.make nodes false in
      Array.iter
        (fun n ->
          if n <> sys.Topology.System.origin then begin
            down.(n) <- true;
            let d = Avail.Survive.degrade ~base perm placement ~down in
            if d.Avail.Survive.degraded_cost < !prev -. tol !prev then
              fail name "degraded cost dropped when failing node %d" n;
            prev := d.Avail.Survive.degraded_cost
          end)
        chain;
      (* Assessment is identical at --jobs 1 and the requested --jobs. *)
      let a1 = Avail.Survive.assess ~jobs:1 perm placement ~scenarios in
      let aj = Avail.Survive.assess ~jobs perm placement ~scenarios in
      if a1 <> aj then fail name "assessment differs across jobs";
      (* The scenario LP is a valid lower bound on the expected degraded
         cost of this goal-meeting placement. *)
      if
        bound_cell.Bounds.Avail_bound.feasible
        && aj.Avail.Survive.expected_cost
           < bound_cell.Bounds.Avail_bound.expected_bound
             -. tol bound_cell.Bounds.Avail_bound.expected_bound
      then
        fail name "expected degraded cost %.6f below scenario LP %.6f"
          aj.Avail.Survive.expected_cost
          bound_cell.Bounds.Avail_bound.expected_bound;
      (* k-failure checks agree with their own survives flag. *)
      let checks =
        Bounds.Avail_bound.k_failure_check perm placement ~groups ()
      in
      let survived =
        Array.fold_left
          (fun acc (c : Bounds.Avail_bound.group_check) ->
            let expect =
              c.Bounds.Avail_bound.violation <= 0.05 +. 1e-12
            in
            if expect <> c.Bounds.Avail_bound.survives then
              fail name "k-failure survives flag inconsistent for %s"
                c.Bounds.Avail_bound.group;
            if c.Bounds.Avail_bound.survives then acc + 1 else acc)
          0 checks
      in
      Printf.printf "%-14s %10.2f %10.2f %10.2f %9.4f %9.4f %9.4f  k2:%d/%d\n"
        name base.Mcperf.Costing.total aj.Avail.Survive.expected_cost
        bound_cell.Bounds.Avail_bound.expected_bound
        aj.Avail.Survive.fragility aj.Avail.Survive.worst_violation
        aj.Avail.Survive.mean_unavailable survived (Array.length checks))
    placements;
  (* Timeline: deterministic regeneration and jobs-invariant replay. *)
  let tl = Avail.Scenario.timeline sspec sys ~groups in
  let tl2 = Avail.Scenario.timeline sspec sys ~groups in
  if
    not
      (String.equal
         (Avail.Scenario.render_timeline tl)
         (Avail.Scenario.render_timeline tl2))
  then fail "timeline" "regeneration not byte-identical";
  let down_steps =
    Array.fold_left
      (fun acc row -> if Array.exists (fun d -> d) row then acc + 1 else acc)
      0 tl.Avail.Scenario.down
  in
  Printf.printf "\ntimeline: %d steps, %d with failures\n"
    tl.Avail.Scenario.steps down_steps;
  (match placements with
  | (name, placement) :: _ ->
    let r1 =
      Sim.Runner.degradation_replay ~jobs:1 ~perm ~placement ~timeline:tl ()
    in
    let rj =
      Sim.Runner.degradation_replay ~jobs ~perm ~placement ~timeline:tl ()
    in
    if r1 <> rj then fail name "replay differs across jobs";
    Printf.printf
      "replay %s: unavail_steps=%d worst_violation=%.4f mean_cost_ratio=%.4f\n"
      name rj.Sim.Runner.unavail_steps rj.Sim.Runner.worst_violation
      rj.Sim.Runner.mean_cost_ratio
  | [] -> ());
  Printf.printf "\navail validation: %s\n%!"
    (if !violations = 0 then "all checks passed"
     else Printf.sprintf "%d violations" !violations)

(* --- tree figure: how much the rule-of-thumb leaves on the table ---------- *)

(* On trees the general bound is the exact optimum (the DP), so the
   figure reads as ground truth vs the caching class's bound vs the
   proportional heuristic's deployed cost — the paper's bound-vs-deployed
   comparison, but with the bound known to be tight. *)
let figtree ?csv_dir ~seed ~jobs () =
  let scen = TS.make ~seed (TS.Random { nodes = 24 }) in
  let spec = scen.TS.spec in
  let points = [ 0.9; 0.95; 0.99; 0.999 ] in
  let classes =
    [
      ("Exact tree optimum (general)", Mcperf.Classes.general);
      ( "Caching",
        Mcperf.Classes.allow_intra_interval_reaction Mcperf.Classes.caching );
    ]
  in
  let name = Printf.sprintf "figtree-n24-s%d" seed in
  let series, timing, elapsed_s =
    sweep_figure ~name ~jobs spec points classes
  in
  (match spec.Mcperf.Spec.goal with
  | Mcperf.Spec.Avg_latency _ -> ()
  | Mcperf.Spec.Qos { tlat_ms; _ } ->
    let prop =
      Report.series_of ~label:"Proportional (deployed)"
        (List.map
           (fun q ->
             let spec =
               {
                 spec with
                 Mcperf.Spec.goal = Mcperf.Spec.Qos { tlat_ms; fraction = q };
               }
             in
             ( q,
               Option.map
                 (fun (_, (ev : Mcperf.Costing.evaluation)) ->
                   ev.Mcperf.Costing.total)
                 (Heuristics.Proportional.search ~spec ()) ))
           points)
    in
    let series = series @ [ prop ] in
    Report.print_figure
      ~title:
        (Printf.sprintf
           "Tree figure (random 24-node tree, seed %d): exact optimum vs \
            caching bound vs proportional heuristic"
           seed)
      ~xlabel:"QoS" series;
    Report.print_timing ~title:"figtree" ~jobs ~elapsed_s timing;
    maybe_write_csv ~csv_dir ~name series)

(* --- avail figure: fragility frontier vs the scenario-LP bound ------------ *)

(* Every deployed heuristic is sized at the nominal goal as in fig2, then
   re-priced under the sampled correlated-failure scenarios: the table
   ranks heuristics by fragility (expected degraded-cost blow-up) and
   compares their expected degraded cost against the class-level scenario
   LP (a certified lower bound for every goal-meeting placement). A
   degradation replay over the failure timeline adds the temporal view.
   Timings go to stderr; stdout is deterministic. *)
let figavail ~seed ~scale ~scenarios:scenario_count ~jobs workload =
  let cs = CS.make ~seed ~scale workload in
  let fraction = 0.95 in
  let sim_spec = CS.qos_spec cs ~fraction ~for_bounds:false () in
  let bound_spec = CS.qos_spec cs ~fraction ~for_bounds:true () in
  let sys = sim_spec.Mcperf.Spec.system in
  let groups = Avail.Groups.derive sys in
  let sspec =
    {
      Avail.Scenario.default with
      Avail.Scenario.seed;
      count = scenario_count;
    }
  in
  let scenarios = Avail.Scenario.sample_all sspec sys ~groups in
  let perm = Mcperf.Permission.compute sim_spec Mcperf.Classes.general in
  Printf.printf
    "\n=== figavail (%s): fragility frontier @ QoS %.2f (%d scenarios, %d \
     failure groups, seed %d) ===\n"
    (CS.workload_name workload) fraction (Array.length scenarios)
    (Array.length groups) seed;
  let t0 = Unix.gettimeofday () in
  let runners =
    [
      (fun () -> Sim.Runner.lru_caching ~jobs ~spec:sim_spec ~trace:cs.CS.trace ());
      (fun () ->
        Sim.Runner.cooperative_caching ~jobs ~spec:sim_spec ~trace:cs.CS.trace ());
      (fun () ->
        Sim.Runner.caching_with_prefetch ~jobs ~spec:sim_spec ~trace:cs.CS.trace ());
      (fun () ->
        Sim.Runner.hierarchical_caching ~jobs ~spec:sim_spec ~trace:cs.CS.trace ());
      (fun () -> Sim.Runner.greedy_global ~jobs ~spec:sim_spec ());
      (fun () -> Sim.Runner.greedy_replica ~jobs ~spec:sim_spec ());
    ]
  in
  let timeline = Avail.Scenario.timeline sspec sys ~groups in
  let assessed =
    List.filter_map
      (fun run ->
        match run () with
        | Some (d : Sim.Runner.deployed) -> (
          match d.Sim.Runner.placement with
          | Some p ->
            let a = Avail.Survive.assess ~jobs perm p ~scenarios in
            let checks =
              Bounds.Avail_bound.k_failure_check perm p ~groups ()
            in
            let survived =
              Array.fold_left
                (fun acc (c : Bounds.Avail_bound.group_check) ->
                  if c.Bounds.Avail_bound.survives then acc + 1 else acc)
                0 checks
            in
            let replay =
              Sim.Runner.degradation_replay ~jobs ~perm ~placement:p ~timeline
                ()
            in
            Some (d, a, survived, Array.length checks, replay)
          | None -> None)
        | None -> None)
      runners
  in
  (* Rank by fragility, most robust first; ties break on the name. *)
  let ranked =
    List.stable_sort
      (fun (d1, a1, _, _, _) (d2, a2, _, _, _) ->
        match compare a1.Avail.Survive.fragility a2.Avail.Survive.fragility with
        | 0 -> compare d1.Sim.Runner.name d2.Sim.Runner.name
        | c -> c)
      assessed
  in
  (* [cost] is the deployed, class-priced cost (as in fig2); [nominal]
     and [expected] re-price the placement uniformly under the general
     class, which is what fragility relates. *)
  Printf.printf "%-28s %5s %10s %10s %10s %9s %9s %9s %6s %12s\n" "heuristic"
    "param" "cost" "nominal" "expected" "fragility" "worstviol" "meanunav"
    "k2-ok" "replay";
  List.iter
    (fun ((d : Sim.Runner.deployed), a, survived, total, (r : Sim.Runner.replay)) ->
      Printf.printf
        "%-28s %5d %10.1f %10.1f %10.1f %9.4f %9.4f %9.4f %3d/%-3d %5d/%d steps\n"
        d.Sim.Runner.name d.Sim.Runner.parameter d.Sim.Runner.cost
        a.Avail.Survive.base_cost a.Avail.Survive.expected_cost
        a.Avail.Survive.fragility
        a.Avail.Survive.worst_violation a.Avail.Survive.mean_unavailable
        survived total r.Sim.Runner.unavail_steps
        (Array.length r.Sim.Runner.steps))
    ranked;
  (* Class-level expected-cost bounds on the aggregated bound demand. *)
  let chosen_cls, chosen_name =
    match workload with
    | CS.Web -> (Mcperf.Classes.storage_constrained, "storage-constrained")
    | CS.Group ->
      (Mcperf.Classes.replica_constrained_uniform, "replica-constrained")
  in
  Printf.printf "\n%-28s %12s %12s %8s %8s\n" "class" "nominal-lb"
    "expected-lb" "vars" "solver";
  List.iter
    (fun (label, cls) ->
      let nominal = Bounds.Pipeline.compute bound_spec cls in
      let cell =
        Bounds.Avail_bound.expected_cost_bound bound_spec cls ~scenarios
      in
      Printf.printf "%-28s %12.1f %12.1f %8d %8s\n" label
        (if nominal.Bounds.Pipeline.feasible then
           nominal.Bounds.Pipeline.lower_bound
         else nan)
        (if cell.Bounds.Avail_bound.feasible then
           cell.Bounds.Avail_bound.expected_bound
         else nan)
        cell.Bounds.Avail_bound.vars
        (if cell.Bounds.Avail_bound.exact then "simplex" else "pdhg"))
    [ ("general", Mcperf.Classes.general); (chosen_name, chosen_cls) ];
  Printf.eprintf "figavail %s: %.1fs\n%!" (CS.workload_name workload)
    (Unix.gettimeofday () -. t0)

(* --- scale figure: Lagrangian sweep on the CDN scale family --------------- *)

(* Fig2-style sweep at 200+ nodes and 10k objects, far past where the
   monolithic LP is tractable, via the bundled + sharded Lagrangian
   decomposition. Everything printed on stdout is deterministic in the
   inputs (timings go to stderr), so check.sh can [cmp] runs at
   different --jobs byte for byte. *)
let figscale ~seed ~objects ~jobs ~check () =
  let fail fmt =
    incr violations;
    Printf.printf "FAIL figscale: ";
    Printf.kfprintf (fun oc -> output_char oc '\n') stdout fmt
  in
  let points = [ 0.9; 0.95; 0.99 ] in
  let scen = SS.make ~seed ~objects () in
  let spec = SS.qos_spec scen ~fraction:(List.hd points) in
  let t0 = Unix.gettimeofday () in
  let sweep =
    Bounds.Lagrangian.sweep ~iterations:40 ~jobs spec Mcperf.Classes.general
      ~fractions:points
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "\n=== Scale figure: %s (%d nodes, %d objects, %d leaves) ===\n"
    scen.SS.name (SS.node_count scen) (SS.object_count scen) scen.SS.leaves;
  (match sweep with
  | (_, out) :: _ ->
    Printf.printf
      "bundling: %d objects -> %d bundles (%.1fx), %d rescaled members\n"
      out.Bounds.Lagrangian.objects out.Bounds.Lagrangian.bundles
      (float_of_int out.Bounds.Lagrangian.objects
      /. float_of_int (max 1 out.Bounds.Lagrangian.bundles))
      out.Bounds.Lagrangian.rescaled_members
  | [] -> ());
  Printf.printf "%-8s %14s %10s %10s\n" "QoS" "lagr-bound" "sub-exact"
    "sub-pdhg";
  List.iter
    (fun (q, (out : Bounds.Lagrangian.outcome)) ->
      Printf.printf "%-8g %14.2f %10d %10d\n" q out.Bounds.Lagrangian.bound
        out.Bounds.Lagrangian.subproblems_exact
        out.Bounds.Lagrangian.subproblems_bounded)
    sweep;
  Printf.eprintf "figscale: sweep %.2fs (jobs=%d)\n%!" elapsed jobs;
  if check then begin
    (* Down-shifted instance where the monolithic LP is still exactly
       solvable: the Lagrangian dual must stay below the LP optimum
       (weak duality), and — the family being homogeneous — the bundled
       bound must equal the forced-unbundled one bit for bit. *)
    let small = SS.make ~seed ~fanouts:[ 2; 3 ] ~objects:60 () in
    List.iter
      (fun q ->
        let spec = SS.qos_spec small ~fraction:q in
        let bundled =
          Bounds.Lagrangian.bound ~iterations:40 ~jobs spec
            Mcperf.Classes.general
        in
        let unbundled =
          Bounds.Lagrangian.bound ~iterations:40 ~jobs ~bundling:false spec
            Mcperf.Classes.general
        in
        if
          bundled.Bounds.Lagrangian.bound
          <> unbundled.Bounds.Lagrangian.bound
        then
          fail "bundled %.17g <> unbundled %.17g at QoS %g"
            bundled.Bounds.Lagrangian.bound
            unbundled.Bounds.Lagrangian.bound q;
        let perm = Mcperf.Permission.compute spec Mcperf.Classes.general in
        if Mcperf.Permission.feasible perm then begin
          let model = Mcperf.Model.build perm in
          match Lp.Simplex.solve model.Mcperf.Model.problem with
          | Lp.Simplex.Optimal { objective = lp; _ } ->
            if bundled.Bounds.Lagrangian.bound > lp +. 1e-6 then
              fail "lagrangian %.6f above LP optimum %.6f at QoS %g"
                bundled.Bounds.Lagrangian.bound lp q
          | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
            fail "small-instance LP did not solve at QoS %g" q
        end)
      points;
    if !violations = 0 then Printf.printf "scale checks passed\n%!"
  end

(* --- ablations: the design choices DESIGN.md calls out -------------------- *)

let ablation ~seed () =
  (* 1. Object aggregation: exact pattern classes vs popularity clusters.
     GROUP's uniform popularity makes clustering near-lossless and much
     faster; the table quantifies both claims. *)
  Printf.printf "\n=== Ablation 1: object aggregation (GROUP, 99%% QoS) ===\n";
  Printf.printf "%-24s %10s %14s %10s\n" "aggregation" "classes" "general-bound"
    "time(s)";
  List.iter
    (fun (label, bound_classes) ->
      let cs = CS.make ~seed ~bound_classes CS.Group in
      let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:true () in
      let t0 = Unix.gettimeofday () in
      let r = Bounds.Pipeline.compute spec Mcperf.Classes.general in
      Printf.printf "%-24s %10d %14.1f %10.1f\n%!" label
        cs.CS.bound_demand.Workload.Demand.objects
        r.Bounds.Pipeline.lower_bound
        (Unix.gettimeofday () -. t0))
    [ ("exact patterns", 1000); ("popularity clusters", 24) ];
  (* 2. PDHG restarts: certified bound after a fixed budget. *)
  Printf.printf "\n=== Ablation 2: PDHG restart-to-average (WEB SC, 99.9%%, 8k iters) ===\n";
  let cs = CS.make ~seed CS.Web in
  let spec = CS.qos_spec cs ~fraction:0.999 ~for_bounds:true () in
  let perm =
    Mcperf.Permission.compute spec Mcperf.Classes.storage_constrained
  in
  let model = Mcperf.Model.build perm in
  List.iter
    (fun (label, restart_every) ->
      let t0 = Unix.gettimeofday () in
      let out =
        Lp.Pdhg.solve
          ~options:
            {
              Lp.Pdhg.default_options with
              max_iters = 8_000;
              rel_tol = 1e-7;
              restart_every;
            }
          model.Mcperf.Model.problem
      in
      Printf.printf "%-24s bound %12.1f  pinf %9.2e  (%.1fs)\n%!" label
        out.Lp.Pdhg.best_bound out.Lp.Pdhg.primal_infeasibility
        (Unix.gettimeofday () -. t0))
    [ ("no restarts", 0); ("restart every 1000", 1_000) ];
  (* 3. Replacement policy: same class bound, different deployed costs. *)
  Printf.printf "\n=== Ablation 3: replacement policy (WEB at 95%% QoS) ===\n";
  Printf.printf "%-10s %10s %12s %12s\n" "policy" "capacity" "cost" "worst-QoS";
  let sim_spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:false () in
  List.iter
    (fun policy ->
      match
        Sim.Runner.policy_caching ~policy ~spec:sim_spec ~trace:cs.CS.trace ()
      with
      | Some d ->
        Printf.printf "%-10s %10d %12.0f %12.5f\n%!"
          (Heuristics.Policy_cache.kind_name policy)
          d.Sim.Runner.parameter d.Sim.Runner.cost d.Sim.Runner.worst_qos
      | None ->
        Printf.printf "%-10s cannot meet the goal\n"
          (Heuristics.Policy_cache.kind_name policy))
    [ Heuristics.Policy_cache.Lru; Heuristics.Policy_cache.Fifo;
      Heuristics.Policy_cache.Lfu ];
  (* 4. The per-access reactive refinement (Theorem 3) on the caching
     ceiling. *)
  Printf.printf
    "\n=== Ablation 4: per-access reactive refinement (GROUP caching ceiling) ===\n";
  let csg = CS.make ~seed CS.Group in
  let specg = CS.qos_spec csg ~fraction:0.999 ~for_bounds:true () in
  List.iter
    (fun (label, cls) ->
      let p = Mcperf.Permission.compute specg cls in
      let ceiling =
        Array.fold_left Float.min 1. (Mcperf.Permission.max_feasible_qos p)
      in
      Printf.printf "%-34s worst-user ceiling %.5f\n%!" label ceiling)
    [
      ("caching, interval-exact (20a)", Mcperf.Classes.caching);
      ( "caching, per-access (Theorem 3)",
        Mcperf.Classes.allow_intra_interval_reaction Mcperf.Classes.caching );
    ]


(* --- workload: profile the synthetic case-study traces -------------------- *)

let workload_profiles ~scale ~seed () =
  List.iter
    (fun w ->
      let cs = CS.make ~seed ~scale w in
      Printf.printf "\n=== Workload profile: %s (scale %.2f) ===\n"
        (CS.workload_name w) scale;
      Format.printf "%a@." Workload.Profile.pp
        (Workload.Profile.of_trace cs.CS.trace))
    [ CS.Web; CS.Group ]


(* --- baselines: Qiu et al.'s placement-strategy comparison ---------------- *)

let baselines ~scale ~seed () =
  List.iter
    (fun w ->
      let cs = CS.make ~seed ~scale w in
      let spec = CS.qos_spec cs ~fraction:0.99 ~for_bounds:false () in
      Printf.printf
        "\n=== Placement strategies at fixed replication factors (%s, RC class) ===\n"
        (CS.workload_name w);
      Printf.printf "(worst-user QoS bought by the same storage budget)\n";
      Printf.printf "%-10s %12s %12s %12s\n" "replicas" "random" "hotspot"
        "greedy";
      List.iter
        (fun replicas ->
          let results =
            Heuristics.Placement_baselines.compare_strategies
              ~rng:(Util.Prng.create ~seed) ~spec ~replicas ()
          in
          (* The uniform replica constraint fixes the storage bill at
             alpha*I*K*R for every strategy; what distinguishes them is the
             worst-user QoS the same budget buys. *)
          let cost st =
            let _, (e : Mcperf.Costing.evaluation) =
              List.find (fun (s, _) -> s = st) results
            in
            Printf.sprintf "%.5f%s"
              (Array.fold_left Float.min 1. e.Mcperf.Costing.qos)
              (if e.Mcperf.Costing.meets_goal then "" else "*")
          in
          Printf.printf "%-10d %12s %12s %12s\n%!" replicas
            (cost Heuristics.Placement_baselines.Random)
            (cost Heuristics.Placement_baselines.Hotspot)
            (cost Heuristics.Placement_baselines.Greedy))
        [ 1; 2; 4; 8 ];
      Printf.printf "(* = does not meet the 99%% QoS goal at this factor)\n")
    [ CS.Web; CS.Group ]

(* --- validate --family strategy: ported heuristics vs the legacy route ---- *)

(* The heuristics now reach the runner only through the Strategy
   interface. This gate re-implements the pre-redesign deployment
   sequence verbatim (direct Permission.compute + place + evaluate, and
   direct Event_cache searches) and insists the strategy route produces
   byte-identical results — parameter, cost, QoS, placement and full
   outcome — on the seed case-study figures. *)

let digest_of v = Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

let validate_strategy ~seed ~scale () =
  let module EC = Heuristics.Event_cache in
  let worst arr = Array.fold_left Float.min 1. arr in
  let check name legacy ported =
    let dl = digest_of legacy and dp = digest_of ported in
    if dl = dp then Printf.printf "  %-30s ok       %s\n" name (String.sub dl 0 12)
    else begin
      incr violations;
      Printf.printf "  %-30s MISMATCH legacy=%s ported=%s\n" name
        (String.sub dl 0 12) (String.sub dp 0 12)
    end
  in
  (* Pre-redesign cache deployment: linear object-count ceiling, direct
     Event_cache search. *)
  let legacy_cache ?policy ~name ~mode ~prefetch ~spec ~trace () =
    let tlat_ms = Mcperf.Spec.latency_threshold spec in
    let outcome_at c =
      EC.simulate ~system:spec.Mcperf.Spec.system ~trace
        ~intervals:(Mcperf.Spec.interval_count spec)
        ~costs:spec.Mcperf.Spec.costs ~tlat_ms ~capacity:c ~mode ~prefetch
        ?policy ()
    in
    let meets (o : EC.outcome) =
      match spec.Mcperf.Spec.goal with
      | Mcperf.Spec.Qos { fraction; _ } -> EC.meets_qos o ~fraction
      | Mcperf.Spec.Avg_latency { tavg_ms } ->
        Array.for_all (fun l -> l <= tavg_ms +. 1e-9) o.EC.avg_latency
    in
    let objects = Workload.Trace.object_count trace in
    match
      Sim.Search.min_feasible_int ~lo:0 ~hi:objects (fun c ->
          meets (outcome_at c))
    with
    | None -> None
    | Some capacity ->
      let o = outcome_at capacity in
      Some
        {
          Sim.Runner.name;
          parameter = capacity;
          cost = o.EC.provisioned_cost;
          worst_qos = worst o.EC.qos;
          detail = Sim.Runner.Cache o;
          placement = o.EC.placement;
        }
  in
  let legacy_greedy_global ~spec () =
    let total_weight =
      Util.Vecops.sum spec.Mcperf.Spec.demand.Workload.Demand.weight
    in
    let hi = int_of_float (Float.ceil total_weight) in
    let eval_at c =
      Heuristics.Greedy_global.evaluate ~spec ~capacity:(float_of_int c) ()
    in
    match
      Sim.Search.min_feasible_int ~lo:0 ~hi (fun c ->
          (eval_at c).Mcperf.Costing.meets_goal)
    with
    | None -> None
    | Some capacity ->
      let e = eval_at capacity in
      let perm =
        Mcperf.Permission.compute spec Mcperf.Classes.storage_constrained
      in
      let p =
        Heuristics.Greedy_global.place ~perm ~capacity:(float_of_int capacity)
          ()
      in
      Some
        {
          Sim.Runner.name = "greedy-global";
          parameter = capacity;
          cost = e.Mcperf.Costing.total;
          worst_qos = worst e.Mcperf.Costing.qos;
          detail = Sim.Runner.Placement e;
          placement = Some p;
        }
  in
  let legacy_greedy_replica ~spec () =
    let hi = Mcperf.Spec.node_count spec - 1 in
    let eval_at r =
      Heuristics.Greedy_replica.evaluate ~spec ~replicas:r ()
    in
    match
      Sim.Search.min_feasible_int ~lo:0 ~hi (fun r ->
          (eval_at r).Mcperf.Costing.meets_goal)
    with
    | None -> None
    | Some replicas ->
      let e = eval_at replicas in
      let perm =
        Mcperf.Permission.compute spec Mcperf.Classes.replica_constrained_uniform
      in
      let p = Heuristics.Greedy_replica.place ~perm ~replicas () in
      Some
        {
          Sim.Runner.name = "greedy-replica";
          parameter = replicas;
          cost = e.Mcperf.Costing.total;
          worst_qos = worst e.Mcperf.Costing.qos;
          detail = Sim.Runner.Placement e;
          placement = Some p;
        }
  in
  let strip (d : Sim.Runner.deployed option) =
    (* Compare everything except the display name (factories own their
       names now). *)
    Option.map
      (fun (d : Sim.Runner.deployed) ->
        (d.Sim.Runner.parameter, d.Sim.Runner.cost, d.Sim.Runner.worst_qos,
         d.Sim.Runner.detail, d.Sim.Runner.placement))
      d
  in
  List.iter
    (fun w ->
      let cs = CS.make ~seed ~scale w in
      Printf.printf "strategy port equivalence (%s, scale %.2f):\n"
        (CS.workload_name w) scale;
      List.iter
        (fun fraction ->
          Printf.printf " fraction %.5f\n" fraction;
          let spec = CS.qos_spec cs ~fraction ~for_bounds:false () in
          let trace = cs.CS.trace in
          check "greedy-global"
            (strip (legacy_greedy_global ~spec ()))
            (strip (Sim.Runner.greedy_global ~spec ()));
          check "greedy-replica"
            (strip (legacy_greedy_replica ~spec ()))
            (strip (Sim.Runner.greedy_replica ~spec ()));
          check "proportional"
            (Heuristics.Proportional.search ~spec ())
            (match
               Sim.Runner.deploy_offline
                 ~factory:Heuristics.Proportional.strategy ~spec ()
             with
            | Some
                {
                  Sim.Runner.parameter;
                  detail = Sim.Runner.Placement e;
                  _;
                } ->
              Some (parameter, e)
            | _ -> None);
          check "lru-caching"
            (strip
               (legacy_cache ~name:"lru-caching" ~mode:EC.Local
                  ~prefetch:false ~spec ~trace ()))
            (strip (Sim.Runner.lru_caching ~spec ~trace ()));
          check "fifo-caching"
            (strip
               (legacy_cache ~policy:Heuristics.Policy_cache.Fifo
                  ~name:"fifo-caching" ~mode:EC.Local ~prefetch:false ~spec
                  ~trace ()))
            (strip
               (Sim.Runner.policy_caching ~policy:Heuristics.Policy_cache.Fifo
                  ~spec ~trace ())))
        [ 0.95; 0.999 ])
    [ CS.Web; CS.Group ];
  if !violations = 0 then Printf.printf "all strategy-port checks passed\n%!"

(* --- serve: the epoch-driven online placement service --------------------- *)

let serve ~source ~intervals ~epoch_intervals ~fraction ~tlat_ms ~warm ~jobs
    ~strategies () =
  let system, trace, label =
    match source with
    | `Synthetic (w, scale, seed) ->
      let cs = CS.make ~seed ~scale w in
      (cs.CS.system, cs.CS.trace, CS.workload_name w)
    | `Replay (trace_file, topo_file) ->
      let system =
        match Topology.Topo_io.load_system_result ~path:topo_file with
        | Ok s -> s
        | Error e -> failwith (Util.Parse_error.to_string e)
      in
      let trace =
        match Workload.Trace_io.load_result ~path:trace_file with
        | Ok t -> t
        | Error e -> failwith (Util.Parse_error.to_string e)
      in
      (system, trace, Filename.basename trace_file)
  in
  if Workload.Trace.node_count trace <> Topology.System.node_count system then
    failwith "serve: trace and topology disagree on node count";
  let interval_s = Workload.Trace.duration_s trace /. float_of_int intervals in
  let factories =
    match strategies with
    | [] -> Online.Engine.default_strategies
    | names ->
      List.map
        (fun n ->
          match Heuristics.Registry.find n with
          | Some f -> (n, f)
          | None ->
            failwith
              (Printf.sprintf "serve: unknown strategy %S (known: %s)" n
                 (String.concat ", " (Heuristics.Registry.names ()))))
        names
  in
  let config =
    {
      Online.Engine.system;
      interval_s;
      epoch_intervals;
      costs = Mcperf.Spec.default_costs;
      goal = Mcperf.Spec.Qos { tlat_ms; fraction };
      placeable = None;
      strategies = factories;
      solver = Bounds.Pipeline.Auto;
      warm;
      jobs;
    }
  in
  Printf.printf
    "online service: %s nodes=%d intervals=%d epoch=%d fraction=%.5f \
     tlat=%.0fms strategies=%s\n"
    label
    (Topology.System.node_count system)
    intervals epoch_intervals fraction tlat_ms
    (String.concat "," (List.map fst factories));
  let engine = Online.Engine.create config in
  let chunks =
    Online.Engine.chunks ~interval_s ~epoch_intervals trace
  in
  List.iter
    (fun chunk ->
      let e = Online.Engine.feed engine chunk in
      Printf.printf
        "epoch %d: intervals=%d events=%d (+%d) working_set=%d\n"
        e.Online.Engine.index e.Online.Engine.intervals
        e.Online.Engine.total_events e.Online.Engine.chunk_events
        e.Online.Engine.working_set;
      if e.Online.Engine.decisions = [] then
        Printf.printf "  (warm-up: no reads yet)\n"
      else begin
        List.iter
          (fun (cls, (r : Bounds.Pipeline.t)) ->
            if r.Bounds.Pipeline.feasible then
              Printf.printf "  bound %-28s %14.6f\n" cls
                r.Bounds.Pipeline.lower_bound
            else Printf.printf "  bound %-28s     infeasible\n" cls)
          e.Online.Engine.bounds;
        List.iter
          (fun (d : Online.Engine.decision) ->
            match d.Online.Engine.parameter with
            | None ->
              Printf.printf "  %-28s infeasible at every parameter\n"
                d.Online.Engine.strategy
            | Some p ->
              Printf.printf "  %-28s param=%-5d cost=%14.6f qos=%.5f%s\n"
                d.Online.Engine.strategy p
                (Option.get d.Online.Engine.cost)
                (Option.get d.Online.Engine.worst_qos)
                (match d.Online.Engine.regret with
                | Some r -> Printf.sprintf " regret=%14.6f" r
                | None -> ""))
          e.Online.Engine.decisions
      end;
      (* Wall-clock lives on stderr so service output stays byte-stable
         across hosts and --jobs. *)
      Printf.eprintf "epoch %d timing: search %.3fs solve %.3fs\n%!"
        e.Online.Engine.index e.Online.Engine.search_s
        e.Online.Engine.solve_s)
    chunks;
  let epochs = Online.Engine.epochs engine in
  let decided =
    List.fold_left
      (fun acc (e : Online.Engine.epoch) ->
        acc
        + List.length
            (List.filter
               (fun (d : Online.Engine.decision) ->
                 d.Online.Engine.parameter <> None)
               e.Online.Engine.decisions))
      0 epochs
  in
  let negative_regret =
    List.exists
      (fun (e : Online.Engine.epoch) ->
        List.exists
          (fun (d : Online.Engine.decision) ->
            match d.Online.Engine.regret with
            | Some r -> r < -1e-9
            | None -> false)
          e.Online.Engine.decisions)
      epochs
  in
  if negative_regret then begin
    incr violations;
    Printf.printf "NEGATIVE REGRET: a deployed cost undercut its class bound\n"
  end;
  Printf.printf
    "served %d epochs: %d deployments, %d bound solves (%d warm-lifted)\n%!"
    (List.length epochs) decided
    (Online.Engine.bound_solves engine)
    (Online.Engine.warm_lifts engine)

(* --- command line ---------------------------------------------------------- *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.App))

let verbose_t =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Chatty solver logging.")

let quick_t =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Use 3 QoS points instead of 5 (faster).")

let scale_t =
  Arg.(
    value & opt float 0.1
    & info [ "scale" ] ~docv:"FACTOR"
        ~doc:"Workload scale; 1.0 is the paper's full size.")

let seed_t =
  Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let zeta_t =
  Arg.(
    value & opt float 10_000.
    & info [ "zeta" ] ~docv:"COST" ~doc:"Node-opening cost for fig3 phase 1.")

let jobs_t =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker processes for the sweep layers. 0 (the default) \
           auto-detects the processor count from /proc/cpuinfo; 1 forces \
           the sequential path. Results are identical at every setting.")

let csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each figure as CSV into $(docv).")

let faults_conv =
  let parse s =
    match Util.Faults.parse_result s with
    | Ok spec -> Ok spec
    | Error e -> Error (`Msg (Util.Parse_error.to_string e))
  in
  let print ppf spec = Format.pp_print_string ppf (Util.Faults.to_string spec) in
  Arg.conv (parse, print)

let inject_t =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection, e.g. \
           'seed=42,crash=0.2,diverge=0.1' or 'crash_every=3,stall=0.05'. \
           Injected faults exercise worker supervision and the solver \
           fallback chain without changing any reported number. Defaults \
           to the $(b,REPLICA_FAULTS) environment variable.")

let journal_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:
          "Checkpoint each bound sweep into $(docv): an interrupted run \
           re-executed with the same arguments resumes from the journal \
           and produces identical output.")

let deadline_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget per bound sweep. A governor apportions the \
           remaining budget across outstanding cells; cells that run out \
           of time stop at a solver checkpoint and keep their best \
           certified bound (the timing table's quality column records \
           which cells degraded). Unset: no clock is read and output is \
           byte-identical to an unbudgeted run.")

let cell_budget_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "cell-budget" ] ~docv:"SECONDS"
        ~doc:
          "Cap any single sweep cell's solver time, independently of \
           $(b,--deadline). Also bounds each deployed-heuristic search \
           point (its bisection returns the best feasible parameter found \
           so far).")

let certify_t =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "After each bound sweep, recheck every cell's certificate from \
           scratch: feasible cells must reproduce their lower bound from \
           the attached dual vector, infeasible cells must carry a \
           verified Farkas ray. Any failure makes the command exit \
           nonzero.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.jsonl"
        ~doc:
          "Record a structured trace (solver spans, sweep cells, worker \
           tasks) and write it to $(docv) as JSON lines. Worker spans \
           from every job merge into one trace, ordered by logical \
           counters, so the file is byte-identical at every $(b,--jobs) \
           setting (unless $(b,--profile) adds wall-clock attributes).")

let metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE.json"
        ~doc:
          "Collect solver / pipeline / pool counters and write the final \
           registry snapshot to $(docv) as JSON. Also prints a per-sweep \
           summary of the counters that moved.")

let profile_t =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable tracing and metrics with wall-clock attributes and \
           timing histograms (per-task wall clock, span durations). \
           Implies the per-sweep metrics summary; combine with \
           $(b,--trace) to keep the timed trace.")

let workers_conv =
  let parse s =
    match Dist.Client.parse_workers s with
    | Ok ws -> Ok ws
    | Error msg -> Error (`Msg msg)
  in
  let print ppf ws =
    Format.pp_print_string ppf
      (String.concat ","
         (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) ws))
  in
  Arg.conv (parse, print)

let workers_t =
  Arg.(
    value & opt workers_conv []
    & info [ "workers" ] ~docv:"HOST:PORT,..."
        ~doc:
          "Remote sweep workers (each started with $(b,experiments worker \
           --listen PORT)). Every address becomes one extra pool slot \
           alongside the $(b,--jobs) local workers; $(b,--jobs 1) with a \
           worker list means no local workers at all. Dead workers are \
           reconnected with exponential backoff and blacklisted after \
           repeated failures; the sweep degrades to the survivors and \
           its output stays byte-identical to a local run. Pair with \
           $(b,--task-timeout).")

let task_timeout_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "task-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-task supervision deadline for the sweep pool: a cell that \
           produces no response within $(docv) has its worker killed (or \
           its connection torn down) and is retried. Required in practice \
           with $(b,--workers): a dropped dispatch frame is only ever \
           reclaimed by this timeout.")

let setup_dist workers task_timeout =
  dist_workers := workers;
  (dist_task_timeout_s :=
     match task_timeout with Some s when s > 0. -> Some s | _ -> None);
  if workers <> [] then
    Logs.app (fun f ->
        f "distributed sweep: %d remote worker%s (%s)%s" (List.length workers)
          (if List.length workers = 1 then "" else "s")
          (String.concat ", "
             (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) workers))
          (match !dist_task_timeout_s with
          | Some s -> Printf.sprintf ", task timeout %gs" s
          | None -> ", no task timeout (drop faults would hang!)"))

let setup_faults inject =
  let spec =
    match inject with
    | Some spec -> spec
    | None -> (
      match Util.Faults.of_env () with
      | Ok spec -> spec
      | Error msg ->
        Logs.warn (fun f -> f "ignoring %s: %s" Util.Faults.env_var msg);
        Util.Faults.none)
  in
  Util.Faults.install spec;
  if Util.Faults.active () then
    Logs.app (fun f ->
        f "fault injection active: %s" (Util.Faults.to_string spec))

let workload_t =
  let wconv =
    Arg.enum [ ("web", [ CS.Web ]); ("group", [ CS.Group ]);
               ("both", [ CS.Web; CS.Group ]) ]
  in
  Arg.(
    value & opt wconv [ CS.Web; CS.Group ]
    & info [ "workload"; "w" ] ~docv:"WORKLOAD" ~doc:"web, group or both.")

let resolve_jobs jobs = if jobs <= 0 then Util.Parallel.default_jobs () else jobs

let run_figure f =
  let run verbose quick scale seed zeta csv_dir jobs inject journal_dir
      deadline cell_budget certify trace metrics profile workers task_timeout
      workloads =
    setup_logs verbose;
    setup_faults inject;
    setup_obs ~trace ~metrics ~profile;
    setup_dist workers task_timeout;
    let jobs = resolve_jobs jobs in
    (* Non-positive budgets mean "no budget", matching sweep_classes —
       the overrun check must not treat them as already blown. *)
    let budget = function Some s when s > 0. -> s | _ -> infinity in
    let deadline_s = budget deadline in
    let cell_budget_s = budget cell_budget in
    List.iter
      (fun w ->
        ignore
          (f ?csv_dir ?journal_dir ~quick ~scale ~seed ~zeta ~jobs ~deadline_s
             ~cell_budget_s ~certify w))
      workloads;
    (* Write the merged trace / metrics snapshot (no-op when neither
       --trace, --metrics nor --profile was given). *)
    Obs.Sink.flush ();
    (match trace with
    | Some file -> Printf.printf "wrote trace %s\n%!" file
    | None -> ());
    (match metrics with
    | Some file -> Printf.printf "wrote metrics %s\n%!" file
    | None -> ());
    if !violations > 0 then exit 1
  in
  Term.(
    const run $ verbose_t $ quick_t $ scale_t $ seed_t $ zeta_t $ csv_t
    $ jobs_t $ inject_t $ journal_t $ deadline_t $ cell_budget_t $ certify_t
    $ trace_t $ metrics_t $ profile_t $ workers_t $ task_timeout_t
    $ workload_t)

let fig1_cmd =
  Cmd.v (Cmd.info "fig1" ~doc:"Lower bounds per class vs QoS (Figure 1).")
    (run_figure
       (fun ?csv_dir ?journal_dir ~quick ~scale ~seed ~zeta:_ ~jobs ~deadline_s
            ~cell_budget_s ~certify w ->
         fig1 ?csv_dir ?journal_dir ~quick ~scale ~seed ~jobs ~deadline_s
           ~cell_budget_s ~certify w))

let fig2_cmd =
  Cmd.v
    (Cmd.info "fig2" ~doc:"Deployed heuristics vs class bounds (Figure 2).")
    (run_figure
       (fun ?csv_dir ?journal_dir ~quick ~scale ~seed ~zeta:_ ~jobs ~deadline_s
            ~cell_budget_s ~certify w ->
         fig2 ?csv_dir ?journal_dir ~quick ~scale ~seed ~jobs ~deadline_s
           ~cell_budget_s ~certify w))

let fig3_cmd =
  Cmd.v (Cmd.info "fig3" ~doc:"Deployment scenario bounds (Figure 3).")
    (run_figure
       (fun ?csv_dir ?journal_dir ~quick ~scale ~seed ~zeta ~jobs ~deadline_s
            ~cell_budget_s ~certify w ->
         fig3 ?csv_dir ?journal_dir ~quick ~scale ~seed ~zeta ~jobs ~deadline_s
           ~cell_budget_s ~certify w))

let select_cmd =
  Cmd.v
    (Cmd.info "select"
       ~doc:"Run the Section 6.1 selection methodology and print the ranking.")
    (run_figure
       (fun ?csv_dir:_ ?journal_dir:_ ~quick:_ ~scale ~seed ~zeta:_ ~jobs:_
            ~deadline_s:_ ~cell_budget_s:_ ~certify:_ w ->
         selection ~scale ~seed w;
         []))

let baselines_cmd =
  let run verbose scale seed =
    setup_logs verbose;
    baselines ~scale ~seed ()
  in
  Cmd.v
    (Cmd.info "baselines"
       ~doc:"Replay Qiu et al.'s placement-strategy comparison (random vs \
             hotspot vs greedy) inside the MC-PERF cost model.")
    Term.(const run $ verbose_t $ scale_t $ seed_t)

let workload_cmd =
  let run verbose scale seed =
    setup_logs verbose;
    workload_profiles ~scale ~seed ()
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Profile the synthetic WEB/GROUP traces (popularity, site \
             shares, working sets, cold-miss floors).")
    Term.(const run $ verbose_t $ scale_t $ seed_t)

let ablation_cmd =
  let run verbose seed =
    setup_logs verbose;
    ablation ~seed ()
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Quantify the repo's own design choices (aggregation, restarts, \
             policies, the Theorem-3 refinement).")
    Term.(const run $ verbose_t $ seed_t)

let validate_cmd =
  let family_t =
    Arg.(
      value
      & opt
          (enum
             [
               ("default", `Default); ("tree", `Tree); ("avail", `Avail);
               ("strategy", `Strategy);
             ])
          `Default
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Instance family to validate: $(b,default) cross-checks the \
             case-study instance; $(b,tree) runs the tree scenario family, \
             where the closest-allocation DP is the exact optimum and \
             every other producer must sandwich it; $(b,avail) checks the \
             correlated-failure sampler, the survivability evaluator and \
             the expected-cost scenario LP against goal-meeting \
             placements; $(b,strategy) replays the pre-redesign heuristic \
             deployment sequence and insists the Strategy-interface route \
             reproduces it byte-for-byte on the seed figures. Tree, avail \
             and strategy output carries no wall clocks, so runs at \
             different $(b,--jobs) compare byte-for-byte.")
  in
  let count_t =
    Arg.(
      value & opt int 10
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Tree-family instances, or avail-family sampled scenarios, to \
             validate.")
  in
  let run verbose seed scale family count jobs =
    setup_logs verbose;
    (match family with
    | `Default -> validate ~seed ()
    | `Tree -> validate_tree ~seed ~count ~jobs:(resolve_jobs jobs) ()
    | `Avail -> validate_avail ~seed ~count ~jobs:(resolve_jobs jobs) ()
    | `Strategy -> validate_strategy ~seed ~scale ());
    if !violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Cross-check all bound producers (simplex, PDHG, Lagrangian, exact \
          IP, tree DP, rounding) on small instances; exits nonzero on any \
          violated bound ordering.")
    Term.(const run $ verbose_t $ seed_t $ scale_t $ family_t $ count_t $ jobs_t)

let serve_cmd =
  let trace_file_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-file" ] ~docv:"FILE"
          ~doc:
            "Replay a trace file (requires $(b,--topo)). Without it the \
             synthetic case-study workload of $(b,-w) is streamed.")
  in
  let topo_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "topo" ] ~docv:"FILE" ~doc:"Topology file for $(b,--trace-file).")
  in
  let one_workload_t =
    Arg.(
      value
      & opt (enum [ ("web", CS.Web); ("group", CS.Group) ]) CS.Web
      & info [ "workload"; "w" ] ~docv:"WORKLOAD"
          ~doc:"Synthetic workload to stream: web or group.")
  in
  let intervals_t =
    Arg.(
      value & opt int 24
      & info [ "intervals" ] ~docv:"N"
          ~doc:"Evaluation intervals covering the whole trace horizon.")
  in
  let epoch_t =
    Arg.(
      value & opt int 6
      & info [ "epoch-intervals" ] ~docv:"K"
          ~doc:"Intervals ingested per re-placement epoch.")
  in
  let fraction_t =
    Arg.(
      value & opt float 0.95
      & info [ "fraction" ] ~docv:"Q" ~doc:"QoS fraction of the goal.")
  in
  let tlat_t =
    Arg.(
      value & opt float 150.
      & info [ "tlat" ] ~docv:"MS" ~doc:"QoS latency threshold, ms.")
  in
  let no_warm_t =
    Arg.(
      value & flag
      & info [ "no-warm" ]
          ~doc:
            "Solve every epoch's class bounds cold instead of warm-starting \
             from the previous epoch (same bounds, more iterations).")
  in
  let strategies_t =
    Arg.(
      value
      & opt (list string) []
      & info [ "strategies" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated strategy names from the registry (default: one \
             representative per major class).")
  in
  let run verbose trace_file topo w scale seed intervals epoch_intervals
      fraction tlat jobs no_warm strategies trace metrics profile =
    setup_logs verbose;
    setup_obs ~trace ~metrics ~profile;
    let source =
      match (trace_file, topo) with
      | Some tf, Some topo -> `Replay (tf, topo)
      | Some _, None | None, Some _ ->
        failwith "serve: --trace-file and --topo go together"
      | None, None -> `Synthetic (w, scale, seed)
    in
    serve ~source ~intervals ~epoch_intervals ~fraction ~tlat_ms:tlat
      ~warm:(not no_warm) ~jobs:(resolve_jobs jobs) ~strategies ();
    Obs.Sink.flush ();
    if !violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the epoch-driven online placement service: stream a trace in \
          epoch-sized chunks, re-deploy every registered strategy per \
          epoch, warm-start the class bounds, and report per-epoch regret \
          (deployed cost minus class bound).")
    Term.(
      const run $ verbose_t $ trace_file_t $ topo_t $ one_workload_t $ scale_t
      $ seed_t $ intervals_t $ epoch_t $ fraction_t $ tlat_t $ jobs_t
      $ no_warm_t $ strategies_t $ trace_t $ metrics_t $ profile_t)

let figtree_cmd =
  let run verbose seed csv_dir jobs =
    setup_logs verbose;
    figtree ?csv_dir ~seed ~jobs:(resolve_jobs jobs) ();
    if !violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "figtree"
       ~doc:
         "Tree-network figure: the exact DP optimum (general class) vs the \
          caching-class bound vs the proportional heuristic's deployed \
          cost, across QoS goals on a random tree.")
    Term.(const run $ verbose_t $ seed_t $ csv_t $ jobs_t)

let figavail_cmd =
  let scenarios_t =
    Arg.(
      value & opt int 32
      & info [ "scenarios" ] ~docv:"N"
          ~doc:"Sampled correlated-failure scenarios (default 32).")
  in
  let run verbose seed scale scenarios jobs workloads =
    setup_logs verbose;
    List.iter
      (fun w -> figavail ~seed ~scale ~scenarios ~jobs:(resolve_jobs jobs) w)
      workloads;
    if !violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "figavail"
       ~doc:
         "Availability figure: every deployed heuristic re-priced under \
          sampled correlated-failure scenarios, ranked by fragility \
          (expected degraded-cost blow-up), with worst-case k-failure \
          survival per failure group and a degradation replay over a \
          failure timeline — against the class-level expected-cost \
          scenario LP bound. Deterministic stdout (timings on stderr).")
    Term.(
      const run $ verbose_t $ seed_t $ scale_t $ scenarios_t $ jobs_t
      $ workload_t)

let scale_cmd =
  let run verbose seed =
    setup_logs verbose;
    scale_experiment ~seed ()
  in
  Cmd.v
    (Cmd.info "scale" ~doc:"Solver wall-clock vs instance size (Section 5).")
    Term.(const run $ verbose_t $ seed_t)

let figscale_cmd =
  let objects_t =
    Arg.(
      value & opt int 10_000
      & info [ "objects" ] ~docv:"N"
          ~doc:"Objects in the CDN scale scenario (default 10000).")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also cross-check the decomposition on a small instance: \
             Lagrangian dual below the exact LP optimum, and the bundled \
             bound bit-identical to the forced-unbundled one. Exits \
             nonzero on any violation.")
  in
  let run verbose seed objects jobs check =
    setup_logs verbose;
    figscale ~seed ~objects ~jobs:(resolve_jobs jobs) ~check ();
    if !violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "figscale"
       ~doc:
         "Fig2-style QoS sweep on the 200+-node / 10k-object CDN scale \
          family via the bundled, sharded Lagrangian decomposition. \
          Deterministic stdout (timings on stderr), so output can be \
          compared byte-for-byte across $(b,--jobs).")
    Term.(const run $ verbose_t $ seed_t $ objects_t $ jobs_t $ check_t)

let worker_cmd =
  let port_t =
    Arg.(
      required
      & opt (some int) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:
            "TCP port to listen on (0 binds an ephemeral port; the \
             stderr banner reports the bound one).")
  in
  let host_t =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST"
          ~doc:"Address to bind (default loopback only).")
  in
  let run verbose port host =
    setup_logs verbose;
    (* No --inject here on purpose: each coordinator session ships its
       own fault spec (and obs config, and pool phase) in its handshake,
       so a chaos run controls every process from one flag. *)
    Dist.Server.serve ~host ~port ()
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run as a distributed sweep worker: accept coordinator sessions \
          on $(b,--listen) and solve the cells they dispatch. One session \
          child is forked per connection, so injected crashes kill a \
          session, never the listener. Point a coordinator at it with \
          $(b,--workers HOST:PORT).")
    Term.(const run $ verbose_t $ port_t $ host_t)

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment (fig1, fig2, fig3, scale).")
    (run_figure
       (fun ?csv_dir ?journal_dir ~quick ~scale ~seed ~zeta ~jobs ~deadline_s
            ~cell_budget_s ~certify w ->
         ignore
           (fig1 ?csv_dir ?journal_dir ~quick ~scale ~seed ~jobs ~deadline_s
              ~cell_budget_s ~certify w);
         ignore
           (fig2 ?csv_dir ?journal_dir ~quick ~scale ~seed ~jobs ~deadline_s
              ~cell_budget_s ~certify w);
         ignore
           (fig3 ?csv_dir ?journal_dir ~quick ~scale ~seed ~zeta ~jobs
              ~deadline_s ~cell_budget_s ~certify w);
         selection ~scale ~seed w;
         if w = CS.Web then scale_experiment ~seed ();
         []))

let main =
  Cmd.group
    (Cmd.info "experiments" ~version:"1.0"
       ~doc:
         "Regenerate the evaluation of 'Choosing Replica Placement \
          Heuristics for Wide-Area Systems' (ICDCS 2004).")
    [
      fig1_cmd; fig2_cmd; fig3_cmd; figtree_cmd; figscale_cmd; figavail_cmd;
      select_cmd; scale_cmd;
      validate_cmd; serve_cmd; ablation_cmd; workload_cmd; baselines_cmd;
      worker_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval main)
