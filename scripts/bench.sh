#!/usr/bin/env sh
# Performance evidence refresh: run the LP-substrate benchmark (which
# reads the *previous* BENCH_sweep.json as its end-to-end baseline) and
# then the sweep benchmark (which overwrites it), in that order, and
# append a timestamped summary row to BENCH_LOG.tsv so regressions are
# visible across revisions. The sweep benchmark also re-runs the sweep
# under an injected-fault spec (worker crashes + poisoned PDHG cells);
# the row records that leg's overhead and fallback-path counts so the
# cost of the recovery machinery is tracked alongside raw speed. The
# obs benchmark then pins the instrumentation overhead (null sink and
# JSONL trace) so the always-on guards stay effectively free. The tree
# benchmark times the exact tree DP against the forced LP producers on
# the same cells, so the third producer's speedup claim stays measured.
# The avail benchmark prices the availability layer: degradation-replay
# throughput, the reference placement's fragility, and the scenario LP's
# overhead over a plain nominal sweep. The dist benchmark dispatches the
# sweep to two loopback TCP workers under injected network faults and
# records the distributed wall-clock and recovery-event count, so the
# distributed backend's overhead under fire is tracked alongside the
# local pool's. The online benchmark runs the epoch-driven placement
# service twice (warm-started vs cold class-bound re-solves, PDHG
# forced) and records the sustained epoch rate and the warm-start
# speedup, so the online service's responsiveness claim stays measured.
set -e
cd "$(dirname "$0")/.."

dune build bench/main.exe
./_build/default/bench/main.exe lp
./_build/default/bench/main.exe sweep
./_build/default/bench/main.exe obs
./_build/default/bench/main.exe tree
./_build/default/bench/main.exe scale
./_build/default/bench/main.exe avail
./_build/default/bench/main.exe dist
./_build/default/bench/main.exe online

# One summary row: pull the headline numbers out of the two JSON files.
json_num() { # json_num FILE KEY (anchored so KEY never matches a suffix)
  sed -n "s/^ *\"$2\": *\([0-9.eE+-]*\).*/\1/p" "$1" | head -n 1
}
# Same, but scoped to the "faulted" object — several keys (parallel_s,
# worker_deaths, the solve-path counts) appear in both the clean and the
# faulted sections, and json_num would take the clean one first.
json_num_faulted() { # json_num_faulted FILE KEY
  # The solve-path and pool counters sit on one line each, so the key is
  # matched anywhere in the line, not only at line start.
  sed -n '/"faulted"/,$p' "$1" \
    | sed -n "s/.*\"$2\": *\([0-9.eE+-][0-9.eE+-]*\).*/\1/p" | head -n 1
}
# And scoped to the "deadline" object (budget_s, elapsed_s, the quality
# counts), which also shares key names with earlier sections. Booleans
# are matched separately since json_num only takes numbers.
json_num_deadline() { # json_num_deadline FILE KEY
  sed -n '/"deadline"/,$p' "$1" \
    | sed -n "s/^ *\"$2\": *\([0-9.eE+-]*\).*/\1/p" | head -n 1
}
json_bool_deadline() { # json_bool_deadline FILE KEY
  sed -n '/"deadline"/,$p' "$1" \
    | sed -n "s/^ *\"$2\": *\(true\|false\).*/\1/p" | head -n 1
}
# Quality counters live on one line inside the deadline object's
# "quality" map, so match the key anywhere in the line.
json_qcount_deadline() { # json_qcount_deadline FILE KEY
  sed -n '/"deadline"/,$p' "$1" \
    | sed -n "s/.*\"$2\": *\([0-9][0-9]*\).*/\1/p" | head -n 1
}

log=BENCH_LOG.tsv
header='timestamp\tcommit\tpdhg_iters_per_s\tper_iteration_speedup\tsweep_sequential_s\tend_to_end_speedup\tsweep_parallel_s\tfaulted_parallel_s\tfault_overhead_ratio\tfault_pdhg_retries\tfault_simplex_fallbacks\tfault_worker_deaths\tfault_respawns\tdeadline_budget_s\tdeadline_elapsed_s\tdeadline_within_budget\tdeadline_time_budget_cells\tdeadline_iter_budget_cells\tobs_null_overhead_ratio\tobs_jsonl_overhead_ratio\ttree_dp_s\ttree_lp_s\ttree_dp_speedup\tscale_nodes\tscale_objects\tscale_sweep_s\tscale_bundle_ratio\tavail_scenarios\tavail_replay_s\tavail_fragility\tdist_workers\tdist_sweep_s\tdist_recoveries\tonline_epochs_s\tonline_warm_speedup'
# An early bench.sh rotated to an unnumbered "$log.old", which the next
# rotation would clobber. Fold any such straggler into the numbered
# scheme before rotating.
if [ -e "$log.old" ]; then
  n=1
  while [ -e "$log.old.$n" ]; do n=$((n + 1)); done
  mv "$log.old" "$log.old.$n"
  echo "migrated legacy $log.old to $log.old.$n"
fi
# Rotate a log whose header predates the current column set rather than
# appending rows that no longer line up with it. Numbered suffixes so a
# rotation never clobbers an earlier generation's history.
if [ -f "$log" ] && [ "$(head -n 1 "$log")" != "$(printf "$header\n" | head -n 1)" ]; then
  n=1
  while [ -e "$log.old.$n" ]; do n=$((n + 1)); done
  mv "$log" "$log.old.$n"
  echo "rotated stale $log to $log.old.$n"
fi
if [ ! -f "$log" ]; then
  printf "$header\n" > "$log"
fi
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
printf '%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n' \
  "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  "$commit" \
  "$(json_num BENCH_lp.json fused_iters_per_s)" \
  "$(json_num BENCH_lp.json per_iteration_speedup)" \
  "$(json_num BENCH_lp.json sequential_s)" \
  "$(json_num BENCH_lp.json end_to_end_speedup)" \
  "$(json_num BENCH_sweep.json parallel_s)" \
  "$(json_num_faulted BENCH_sweep.json parallel_s)" \
  "$(json_num_faulted BENCH_sweep.json overhead_ratio)" \
  "$(json_num_faulted BENCH_sweep.json pdhg-retry)" \
  "$(json_num_faulted BENCH_sweep.json simplex-fallback)" \
  "$(json_num_faulted BENCH_sweep.json worker_deaths)" \
  "$(json_num_faulted BENCH_sweep.json respawns)" \
  "$(json_num_deadline BENCH_sweep.json budget_s)" \
  "$(json_num_deadline BENCH_sweep.json elapsed_s)" \
  "$(json_bool_deadline BENCH_sweep.json within_budget)" \
  "$(json_qcount_deadline BENCH_sweep.json time-budget)" \
  "$(json_qcount_deadline BENCH_sweep.json iter-budget)" \
  "$(json_num BENCH_obs.json null_sink_overhead_ratio)" \
  "$(json_num BENCH_obs.json jsonl_sink_overhead_ratio)" \
  "$(json_num BENCH_tree.json tree_dp_s)" \
  "$(json_num BENCH_tree.json tree_lp_s)" \
  "$(json_num BENCH_tree.json tree_dp_speedup)" \
  "$(json_num BENCH_scale.json scale_nodes)" \
  "$(json_num BENCH_scale.json scale_objects)" \
  "$(json_num BENCH_scale.json scale_sweep_s)" \
  "$(json_num BENCH_scale.json bundle_ratio)" \
  "$(json_num BENCH_avail.json avail_scenarios)" \
  "$(json_num BENCH_avail.json avail_replay_s)" \
  "$(json_num BENCH_avail.json avail_fragility)" \
  "$(json_num BENCH_dist.json dist_workers)" \
  "$(json_num BENCH_dist.json dist_sweep_s)" \
  "$(json_num BENCH_dist.json dist_recoveries)" \
  "$(json_num BENCH_online.json online_epochs_s)" \
  "$(json_num BENCH_online.json online_warm_speedup)" \
  >> "$log"
echo "appended to $log:"
tail -n 1 "$log"
# The migration above must have retired every unnumbered rotation; a
# straggler here means a regression in this script's own bookkeeping.
if [ -e "$log.old" ]; then
  echo "error: unnumbered $log.old left behind" >&2
  exit 1
fi
