#!/usr/bin/env sh
# Performance evidence refresh: run the LP-substrate benchmark (which
# reads the *previous* BENCH_sweep.json as its end-to-end baseline) and
# then the sweep benchmark (which overwrites it), in that order, and
# append a timestamped summary row to BENCH_LOG.tsv so regressions are
# visible across revisions.
set -e
cd "$(dirname "$0")/.."

dune build bench/main.exe
./_build/default/bench/main.exe lp
./_build/default/bench/main.exe sweep

# One summary row: pull the headline numbers out of the two JSON files.
json_num() { # json_num FILE KEY (anchored so KEY never matches a suffix)
  sed -n "s/^ *\"$2\": *\([0-9.eE+-]*\).*/\1/p" "$1" | head -n 1
}

log=BENCH_LOG.tsv
if [ ! -f "$log" ]; then
  printf 'timestamp\tcommit\tpdhg_iters_per_s\tper_iteration_speedup\tsweep_sequential_s\tend_to_end_speedup\tsweep_parallel_s\n' \
    > "$log"
fi
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
printf '%s\t%s\t%s\t%s\t%s\t%s\t%s\n' \
  "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  "$commit" \
  "$(json_num BENCH_lp.json fused_iters_per_s)" \
  "$(json_num BENCH_lp.json per_iteration_speedup)" \
  "$(json_num BENCH_lp.json sequential_s)" \
  "$(json_num BENCH_lp.json end_to_end_speedup)" \
  "$(json_num BENCH_sweep.json parallel_s)" \
  >> "$log"
echo "appended to $log:"
tail -n 1 "$log"
