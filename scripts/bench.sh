#!/usr/bin/env sh
# Performance evidence refresh: run the LP-substrate benchmark (which
# reads the *previous* BENCH_sweep.json as its end-to-end baseline) and
# then the sweep benchmark (which overwrites it), in that order, and
# append a timestamped summary row to BENCH_LOG.tsv so regressions are
# visible across revisions. The sweep benchmark also re-runs the sweep
# under an injected-fault spec (worker crashes + poisoned PDHG cells);
# the row records that leg's overhead and fallback-path counts so the
# cost of the recovery machinery is tracked alongside raw speed.
set -e
cd "$(dirname "$0")/.."

dune build bench/main.exe
./_build/default/bench/main.exe lp
./_build/default/bench/main.exe sweep

# One summary row: pull the headline numbers out of the two JSON files.
json_num() { # json_num FILE KEY (anchored so KEY never matches a suffix)
  sed -n "s/^ *\"$2\": *\([0-9.eE+-]*\).*/\1/p" "$1" | head -n 1
}
# Same, but scoped to the "faulted" object — several keys (parallel_s,
# worker_deaths, the solve-path counts) appear in both the clean and the
# faulted sections, and json_num would take the clean one first.
json_num_faulted() { # json_num_faulted FILE KEY
  sed -n '/"faulted"/,$p' "$1" \
    | sed -n "s/^ *\"$2\": *\([0-9.eE+-]*\).*/\1/p" | head -n 1
}

log=BENCH_LOG.tsv
header='timestamp\tcommit\tpdhg_iters_per_s\tper_iteration_speedup\tsweep_sequential_s\tend_to_end_speedup\tsweep_parallel_s\tfaulted_parallel_s\tfault_overhead_ratio\tfault_pdhg_retries\tfault_simplex_fallbacks\tfault_worker_deaths\tfault_respawns'
# Rotate a log whose header predates the robustness columns rather than
# appending rows that no longer line up with it.
if [ -f "$log" ] && [ "$(head -n 1 "$log")" != "$(printf "$header\n" | head -n 1)" ]; then
  mv "$log" "$log.old"
  echo "rotated stale $log to $log.old"
fi
if [ ! -f "$log" ]; then
  printf "$header\n" > "$log"
fi
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
printf '%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n' \
  "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  "$commit" \
  "$(json_num BENCH_lp.json fused_iters_per_s)" \
  "$(json_num BENCH_lp.json per_iteration_speedup)" \
  "$(json_num BENCH_lp.json sequential_s)" \
  "$(json_num BENCH_lp.json end_to_end_speedup)" \
  "$(json_num BENCH_sweep.json parallel_s)" \
  "$(json_num_faulted BENCH_sweep.json parallel_s)" \
  "$(json_num_faulted BENCH_sweep.json overhead_ratio)" \
  "$(json_num_faulted BENCH_sweep.json pdhg-retry)" \
  "$(json_num_faulted BENCH_sweep.json simplex-fallback)" \
  "$(json_num_faulted BENCH_sweep.json worker_deaths)" \
  "$(json_num_faulted BENCH_sweep.json respawns)" \
  >> "$log"
echo "appended to $log:"
tail -n 1 "$log"
