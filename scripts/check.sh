#!/usr/bin/env sh
# Full local gate: build everything (including the benchmark executable,
# so bench-only breakage fails here and not at measurement time), run the
# whole test suite (unit, property, differential, fault-injection, and
# golden round-trip tests), then re-run the fault-injection suite at both
# pool widths — recovered sweeps must be byte-identical to unfaulted
# ones whether the pool is sequential or four workers wide.
set -e
cd "$(dirname "$0")/.."
dune build
dune build bench/main.exe
dune runtest

echo "== faults stage: injection suite at --jobs 1 =="
FAULTS_JOBS=1 ./_build/default/test/test_faults.exe
echo "== faults stage: injection suite at --jobs 4 =="
FAULTS_JOBS=4 ./_build/default/test/test_faults.exe

# Obs stage (DESIGN.md §11): instrumentation must not change what a
# sweep computes (the untraced and traced CSVs are byte-identical), and
# the trace merged from four workers must be byte-identical to the
# sequential one — logical-mode events carry no clocks, so any diff is
# a merge bug. The traces must also be well-formed: every line a JSON
# object, span begins balanced by span ends.
echo "== obs stage: traced sweep at --jobs 1 and 4 =="
obsdir=_build/obs-check
rm -rf "$obsdir"
mkdir -p "$obsdir"
./_build/default/bin/experiments.exe fig2 --quick --scale 0.02 \
  --jobs 1 -w web --csv "$obsdir/plain" > /dev/null
./_build/default/bin/experiments.exe fig2 --quick --scale 0.02 \
  --jobs 1 -w web --csv "$obsdir/j1" --trace "$obsdir/j1.jsonl" > /dev/null
./_build/default/bin/experiments.exe fig2 --quick --scale 0.02 \
  --jobs 4 -w web --csv "$obsdir/j4" --trace "$obsdir/j4.jsonl" > /dev/null
cmp "$obsdir/plain/fig2-web.csv" "$obsdir/j1/fig2-web.csv" \
  || { echo "obs stage: tracing changed the figure output"; exit 1; }
cmp "$obsdir/j1/fig2-web.csv" "$obsdir/j4/fig2-web.csv" \
  || { echo "obs stage: figure output differs across --jobs"; exit 1; }
cmp "$obsdir/j1.jsonl" "$obsdir/j4.jsonl" \
  || { echo "obs stage: merged trace differs between --jobs 1 and 4"; exit 1; }
lines=$(wc -l < "$obsdir/j4.jsonl")
bad=$(grep -cv '^{"scope":".*}$' "$obsdir/j4.jsonl" || true)
begins=$(grep -c '"kind":"B"' "$obsdir/j4.jsonl")
ends=$(grep -c '"kind":"E"' "$obsdir/j4.jsonl")
[ "$lines" -gt 0 ] && [ "$bad" -eq 0 ] && [ "$begins" -eq "$ends" ] \
  || { echo "obs stage: malformed trace ($lines lines, $bad bad, $begins B vs $ends E)"; exit 1; }
echo "obs stage OK: $lines events, $begins spans, traces and CSVs identical"

# Deadline stage: a budgeted figure sweep must finish within its budget
# plus one cell's grace, degrade cells to looser-but-still-certified
# bounds, and pass the from-scratch certificate recheck (--certify makes
# any overrun or failed recheck exit nonzero) — at both pool widths.
for j in 1 4; do
  echo "== deadline stage: governed sweep + certificate recheck at --jobs $j =="
  out=_build/deadline-check-j$j.out
  ./_build/default/bin/experiments.exe fig2 --quick --scale 0.02 \
    --deadline 10 --certify --jobs "$j" -w web > "$out"
  grep -E 'deadline|certificates' "$out"
done

# Tree stage: on seeded tree instances the closest-allocation DP is the
# exact optimum, so validate --family tree checks every other producer
# against it (simplex/PDHG/Lagrangian below, rounded LP and heuristics
# above) and exits nonzero on any inversion. The validate output prints
# no wall clocks, so sequential and four-worker runs must agree to the
# byte — any diff is sweep nondeterminism.
echo "== tree stage: DP-vs-LP agreement at --jobs 1 and 4 =="
treedir=_build/tree-check
rm -rf "$treedir"
mkdir -p "$treedir"
./_build/default/bin/experiments.exe validate --family tree --count 3 \
  --jobs 1 > "$treedir/j1.out"
./_build/default/bin/experiments.exe validate --family tree --count 3 \
  --jobs 4 > "$treedir/j4.out"
cmp "$treedir/j1.out" "$treedir/j4.out" \
  || { echo "tree stage: validate output differs across --jobs"; exit 1; }
grep -q 'all checks passed' "$treedir/j1.out" \
  || { echo "tree stage: bound ordering violations"; exit 1; }
echo "tree stage OK: $(grep -c 'tree-dp' "$treedir/j1.out") DP cells, outputs identical across --jobs"

# Scale stage: the bundled + sharded Lagrangian sweep (DESIGN.md §13)
# prints no wall clocks on stdout (timings go to stderr), so runs at
# --jobs 1 and 4 must agree to the byte — any diff is shard
# nondeterminism. --check additionally gates the decomposition on a
# small instance: the dual must sit below the exact simplex optimum
# (bound sandwich) and the bundled bound must equal the
# forced-unbundled one bit for bit (the family is homogeneous).
echo "== scale stage: bundled Lagrangian sweep at --jobs 1 and 4 =="
scaledir=_build/scale-check
rm -rf "$scaledir"
mkdir -p "$scaledir"
./_build/default/bin/experiments.exe figscale --objects 2000 --check \
  --jobs 1 > "$scaledir/j1.out" 2> /dev/null
./_build/default/bin/experiments.exe figscale --objects 2000 --check \
  --jobs 4 > "$scaledir/j4.out" 2> /dev/null
cmp "$scaledir/j1.out" "$scaledir/j4.out" \
  || { echo "scale stage: figscale output differs across --jobs"; exit 1; }
grep -q 'scale checks passed' "$scaledir/j1.out" \
  || { echo "scale stage: bound-sandwich or bundling-exactness gate failed"; exit 1; }
echo "scale stage OK: $(sed -n 's/^bundling: .*(\(.*\)x).*/\1/p' "$scaledir/j1.out")x bundle ratio, outputs identical across --jobs"

# Avail stage: the availability validation family checks the sampler's
# determinism, the all-up/monotonicity laws of the degraded re-pricer,
# the scenario LP's lower-bound validity against every evaluated
# placement, and the k-failure survival flags — and its output prints no
# wall clocks, so the sequential and four-worker runs must agree to the
# byte (scenario sampling, assessment and replay are all seeded FNV
# decisions, never scheduling).
echo "== avail stage: availability validation at --jobs 1 and 4 =="
availdir=_build/avail-check
rm -rf "$availdir"
mkdir -p "$availdir"
./_build/default/bin/experiments.exe validate --family avail --count 6 \
  --jobs 1 > "$availdir/j1.out"
./_build/default/bin/experiments.exe validate --family avail --count 6 \
  --jobs 4 > "$availdir/j4.out"
cmp "$availdir/j1.out" "$availdir/j4.out" \
  || { echo "avail stage: validate output differs across --jobs"; exit 1; }
grep -q 'all checks passed' "$availdir/j1.out" \
  || { echo "avail stage: availability law violations"; exit 1; }
echo "avail stage OK: $(grep -c 'k2:' "$availdir/j1.out") placements checked, outputs identical across --jobs"

# Dist stage (DESIGN.md §15): a fig2 sweep dispatched to two loopback
# TCP workers under injected network chaos — session crashes, dropped
# and garbled dispatch frames, refused connects, delayed sends — must
# produce a CSV byte-identical to the local sequential run, at both
# pool widths. Then the coordinator itself is killed after its second
# checkpoint (ckill_after=2, exit 96) and resumed from the journal;
# the resumed run must also match to the byte. The fault decisions are
# keyed by (seed, kind, task key) only, so this chaos schedule is the
# same one every time.
echo "== dist stage: fault-injected sweep on 2 loopback TCP workers =="
distdir=_build/dist-check
rm -rf "$distdir"
mkdir -p "$distdir/seq" "$distdir/j1" "$distdir/j4" "$distdir/resume" "$distdir/journal"
./_build/default/bin/experiments.exe worker --listen 0 2> "$distdir/w1.err" &
W1=$!
./_build/default/bin/experiments.exe worker --listen 0 2> "$distdir/w2.err" &
W2=$!
trap 'kill $W1 $W2 2>/dev/null || true' EXIT
sleep 1
port1=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "$distdir/w1.err")
port2=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "$distdir/w2.err")
[ -n "$port1" ] && [ -n "$port2" ] \
  || { echo "dist stage: workers failed to start"; exit 1; }
DIST_FAULTS="seed=11,crash=0.15,drop=0.2,garble=0.2,disconnect=0.2,partition=0.3,delay=0.3,delay_s=0.01"
./_build/default/bin/experiments.exe fig2 --quick --scale 0.01 \
  --jobs 1 -w web --csv "$distdir/seq" > /dev/null
for j in 1 4; do
  ./_build/default/bin/experiments.exe fig2 --quick --scale 0.01 \
    --jobs "$j" -w web --workers "127.0.0.1:$port1,127.0.0.1:$port2" \
    --task-timeout 20 --inject "$DIST_FAULTS" \
    --csv "$distdir/j$j" > "$distdir/j$j.out"
  cmp "$distdir/seq/fig2-web.csv" "$distdir/j$j/fig2-web.csv" \
    || { echo "dist stage: chaos run differs from sequential at --jobs $j"; exit 1; }
done
# Coordinator crash and journal recovery: the killed run must exit with
# the injected-kill status and leave a resumable journal behind.
kill_status=0
./_build/default/bin/experiments.exe fig2 --quick --scale 0.01 \
  --jobs 1 -w web --workers "127.0.0.1:$port1,127.0.0.1:$port2" \
  --task-timeout 20 --inject "$DIST_FAULTS,ckill_after=2" \
  --journal "$distdir/journal" --csv "$distdir/resume" \
  > /dev/null 2>&1 || kill_status=$?
[ "$kill_status" -eq 96 ] \
  || { echo "dist stage: coordinator kill exited $kill_status, want 96"; exit 1; }
[ -n "$(ls "$distdir/journal")" ] \
  || { echo "dist stage: no journal left by the killed coordinator"; exit 1; }
./_build/default/bin/experiments.exe fig2 --quick --scale 0.01 \
  --jobs 1 -w web --workers "127.0.0.1:$port1,127.0.0.1:$port2" \
  --task-timeout 20 --inject "$DIST_FAULTS" \
  --journal "$distdir/journal" --csv "$distdir/resume" > "$distdir/resume.out"
cmp "$distdir/seq/fig2-web.csv" "$distdir/resume/fig2-web.csv" \
  || { echo "dist stage: resumed run differs from sequential"; exit 1; }
grep -q 'resuming sweep' "$distdir/resume.out" \
  || grep -q 'resumed=[1-9]' "$distdir/resume.out" \
  || { echo "dist stage: resume did not restore cells from the journal"; exit 1; }
kill $W1 $W2 2>/dev/null || true
trap - EXIT
echo "dist stage OK: chaos CSVs identical at --jobs 1 and 4, coordinator kill+resume identical"

# Online stage (DESIGN.md §16): the epoch-driven placement service must
# be a pure function of (trace, epoch size, strategy set) — its stdout
# carries no wall clocks (timings go to stderr), so runs at --jobs 1
# and 4 must agree to the byte, every reported regret must be
# nonnegative (serve itself exits nonzero on a negative one), and the
# Strategy-interface route must reproduce the pre-redesign heuristic
# deployments bit for bit on the seed figures.
echo "== online stage: serve at --jobs 1 and 4, strategy-port equivalence =="
onlinedir=_build/online-check
rm -rf "$onlinedir"
mkdir -p "$onlinedir"
for j in 1 4; do
  ./_build/default/bin/experiments.exe serve -w web --scale 0.01 \
    --intervals 12 --epoch-intervals 4 \
    --strategies greedy-global,greedy-replica,lru-caching \
    --jobs "$j" > "$onlinedir/j$j.out" 2> /dev/null
done
cmp "$onlinedir/j1.out" "$onlinedir/j4.out" \
  || { echo "online stage: serve output differs across --jobs"; exit 1; }
grep -q '^served ' "$onlinedir/j1.out" \
  || { echo "online stage: serve did not complete"; exit 1; }
./_build/default/bin/experiments.exe validate --family strategy --scale 0.02 \
  > "$onlinedir/strategy.out"
grep -q 'all strategy-port checks passed' "$onlinedir/strategy.out" \
  || { echo "online stage: ported strategies diverge from the legacy route"; exit 1; }
echo "online stage OK: $(grep -c '^epoch ' "$onlinedir/j1.out") epochs identical across --jobs, $(grep -c ' ok ' "$onlinedir/strategy.out") port checks passed"
