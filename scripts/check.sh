#!/usr/bin/env sh
# Full local gate: build everything (including the benchmark executable,
# so bench-only breakage fails here and not at measurement time), run the
# whole test suite (unit, property, differential, fault-injection, and
# golden round-trip tests), then re-run the fault-injection suite at both
# pool widths — recovered sweeps must be byte-identical to unfaulted
# ones whether the pool is sequential or four workers wide.
set -e
cd "$(dirname "$0")/.."
dune build
dune build bench/main.exe
dune runtest

echo "== faults stage: injection suite at --jobs 1 =="
FAULTS_JOBS=1 ./_build/default/test/test_faults.exe
echo "== faults stage: injection suite at --jobs 4 =="
FAULTS_JOBS=4 ./_build/default/test/test_faults.exe
