#!/usr/bin/env sh
# Full local gate: build everything (including the benchmark executable,
# so bench-only breakage fails here and not at measurement time), then
# run the whole test suite (unit, property, differential, and golden
# round-trip tests).
set -e
cd "$(dirname "$0")/.."
dune build
dune build bench/main.exe
dune runtest
