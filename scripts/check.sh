#!/usr/bin/env sh
# Full local gate: build everything (including the benchmark executable,
# so bench-only breakage fails here and not at measurement time), run the
# whole test suite (unit, property, differential, fault-injection, and
# golden round-trip tests), then re-run the fault-injection suite at both
# pool widths — recovered sweeps must be byte-identical to unfaulted
# ones whether the pool is sequential or four workers wide.
set -e
cd "$(dirname "$0")/.."
dune build
dune build bench/main.exe
dune runtest

echo "== faults stage: injection suite at --jobs 1 =="
FAULTS_JOBS=1 ./_build/default/test/test_faults.exe
echo "== faults stage: injection suite at --jobs 4 =="
FAULTS_JOBS=4 ./_build/default/test/test_faults.exe

# Deadline stage: a budgeted figure sweep must finish within its budget
# plus one cell's grace, degrade cells to looser-but-still-certified
# bounds, and pass the from-scratch certificate recheck (--certify makes
# any overrun or failed recheck exit nonzero) — at both pool widths.
for j in 1 4; do
  echo "== deadline stage: governed sweep + certificate recheck at --jobs $j =="
  out=_build/deadline-check-j$j.out
  ./_build/default/bin/experiments.exe fig2 --quick --scale 0.02 \
    --deadline 10 --certify --jobs "$j" -w web > "$out"
  grep -E 'deadline|certificates' "$out"
done
