#!/usr/bin/env sh
# Full local gate: build everything, then run the whole test suite
# (unit, property, differential, and golden round-trip tests).
set -e
cd "$(dirname "$0")/.."
dune build
dune runtest
