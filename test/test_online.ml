(* Online engine: chunk-size invariance, jobs byte-identity, regret sign.

   The engine's contract is that epoching is an observation schedule,
   not a workload transformation — the same trace chunked at any epoch
   size must fold to the same cumulative state, and the final epoch's
   deployments must match the offline ones bit for bit. *)

module CS = Replica_select.Case_study
module E = Online.Engine

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v [ Marshal.No_sharing ]))

let cs = lazy (CS.make ~nodes:10 ~scale:0.01 ~intervals:12 CS.Web)

let intervals = 12

let interval_s () =
  Workload.Trace.duration_s (Lazy.force cs).CS.trace /. float_of_int intervals

let config ?(strategies = [ ("greedy-global", Heuristics.Greedy_global.strategy) ])
    ?(jobs = 1) ~epoch_intervals () =
  let cs = Lazy.force cs in
  {
    E.system = cs.CS.system;
    interval_s = interval_s ();
    epoch_intervals;
    costs = Mcperf.Spec.default_costs;
    goal = Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 0.95 };
    placeable = None;
    strategies;
    solver = Bounds.Pipeline.Auto;
    warm = true;
    jobs;
  }

(* A deterministic fingerprint of an epoch: everything except the wall
   clocks. *)
let epoch_view (e : E.epoch) =
  ( e.E.index,
    e.E.intervals,
    e.E.chunk_events,
    e.E.total_events,
    e.E.working_set,
    List.map
      (fun (n, (r : Bounds.Pipeline.t)) ->
        (n, r.Bounds.Pipeline.feasible, r.Bounds.Pipeline.lower_bound))
      e.E.bounds,
    e.E.decisions )

(* --- chunking is lossless ------------------------------------------------- *)

(* Folding the trace chunk-by-chunk through Incremental must reproduce
   the whole-trace Demand.of_trace byte for byte, at every epoch size. *)
let test_chunking_reproduces_demand () =
  let cs = Lazy.force cs in
  let s = interval_s () in
  let full = Workload.Demand.of_trace ~intervals cs.CS.trace in
  let dfull = digest full in
  List.iter
    (fun k ->
      let chunks = E.chunks ~interval_s:s ~epoch_intervals:k cs.CS.trace in
      let nodes = Workload.Trace.node_count cs.CS.trace in
      let incr =
        List.fold_left Workload.Incremental.extend
          (Workload.Incremental.create ~nodes ~interval_s:s)
          chunks
      in
      Alcotest.(check int)
        (Printf.sprintf "events k=%d" k)
        (Workload.Trace.length cs.CS.trace)
        (Workload.Incremental.events incr);
      Alcotest.(check string)
        (Printf.sprintf "demand k=%d" k)
        dfull
        (digest (Workload.Incremental.demand incr));
      (* The cumulative trace rebuilt from the chunks is the original. *)
      let rebuilt =
        match chunks with
        | first :: rest -> List.fold_left Workload.Trace.extend first rest
        | [] -> assert false
      in
      Alcotest.(check string)
        (Printf.sprintf "trace k=%d" k)
        (digest cs.CS.trace) (digest rebuilt))
    [ 1; 2; 3; 4; 5; 6; 12 ]

(* The final epoch sees the whole trace, so its deployments must equal
   the offline ones — and must not depend on the epoch size. *)
let test_epoch_size_invariant_final_decisions () =
  let cs = Lazy.force cs in
  let spec = CS.qos_spec cs ~fraction:0.95 ~for_bounds:false () in
  let offline =
    match Sim.Runner.greedy_global ~spec () with
    | Some d -> (d.Sim.Runner.parameter, d.Sim.Runner.cost)
    | None -> Alcotest.fail "offline greedy-global infeasible"
  in
  let finals =
    List.map
      (fun k ->
        let _, epochs = E.run (config ~epoch_intervals:k ()) ~trace:cs.CS.trace in
        let last = List.nth epochs (List.length epochs - 1) in
        Alcotest.(check int)
          (Printf.sprintf "final intervals k=%d" k)
          intervals last.E.intervals;
        match last.E.decisions with
        | [ d ] ->
          ( (match d.E.parameter with
            | Some p -> p
            | None -> Alcotest.fail "final epoch infeasible"),
            Option.get d.E.cost )
        | _ -> Alcotest.fail "expected one decision")
      [ 4; 6; 12 ]
  in
  List.iteri
    (fun i (p, c) ->
      Alcotest.(check int) (Printf.sprintf "param run %d" i) (fst offline) p;
      Alcotest.(check (float 0.)) (Printf.sprintf "cost run %d" i) (snd offline) c)
    finals

(* --- jobs byte-identity --------------------------------------------------- *)

let test_jobs_identity () =
  let cs = Lazy.force cs in
  let strategies =
    [
      ("greedy-global", Heuristics.Greedy_global.strategy);
      ("greedy-replica", Heuristics.Greedy_replica.strategy);
      ("lru-caching", Heuristics.Cache_strategy.lru);
    ]
  in
  let run jobs =
    let _, epochs =
      E.run (config ~strategies ~jobs ~epoch_intervals:4 ()) ~trace:cs.CS.trace
    in
    digest (List.map epoch_view epochs)
  in
  Alcotest.(check string) "jobs 1 = jobs 4" (run 1) (run 4)

(* --- regret --------------------------------------------------------------- *)

let test_regret_nonnegative () =
  let cs = Lazy.force cs in
  let strategies =
    [
      ("greedy-global", Heuristics.Greedy_global.strategy);
      ("greedy-replica", Heuristics.Greedy_replica.strategy);
      ("proportional", Heuristics.Proportional.strategy);
    ]
  in
  let t, epochs =
    E.run (config ~strategies ~epoch_intervals:4 ()) ~trace:cs.CS.trace
  in
  let seen = ref 0 in
  List.iter
    (fun (e : E.epoch) ->
      List.iter
        (fun (d : E.decision) ->
          match d.E.regret with
          | Some r ->
            incr seen;
            Alcotest.(check bool)
              (Printf.sprintf "regret >= 0 (%s, epoch %d, regret %.9f)"
                 d.E.strategy e.E.index r)
              true (r >= -1e-9)
          | None -> ())
        e.E.decisions)
    epochs;
  Alcotest.(check bool) "some regrets reported" true (!seen > 0);
  Alcotest.(check bool) "bounds were solved" true (E.bound_solves t > 0)

(* Warm starts change solve effort, never the reported bound's validity:
   a warm run still reports nonnegative regret and the same deployments
   as a cold run. *)
let test_warm_vs_cold_decisions_agree () =
  let cs = Lazy.force cs in
  let run warm =
    let _, epochs =
      E.run { (config ~epoch_intervals:6 ()) with E.warm } ~trace:cs.CS.trace
    in
    List.map
      (fun (e : E.epoch) ->
        List.map
          (fun (d : E.decision) -> (d.E.strategy, d.E.parameter, d.E.cost))
          e.E.decisions)
      epochs
  in
  Alcotest.(check bool) "same deployments" true (run true = run false)

(* --- engine stream edge cases --------------------------------------------- *)

let test_feed_rejects_misaligned_chunk () =
  let cs = Lazy.force cs in
  let t = E.create (config ~epoch_intervals:4 ()) in
  let chunks = E.chunks ~interval_s:(interval_s ()) ~epoch_intervals:4 cs.CS.trace in
  ignore (E.feed t (List.hd chunks));
  (* Re-feeding the same chunk is not a continuation: same horizon. *)
  Alcotest.(check bool) "misaligned chunk rejected" true
    (match E.feed t (List.hd chunks) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "online"
    [
      ( "chunking",
        [
          Alcotest.test_case "demand reproduced at every epoch size" `Quick
            test_chunking_reproduces_demand;
          Alcotest.test_case "final decisions epoch-size invariant" `Quick
            test_epoch_size_invariant_final_decisions;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 4 byte-identical" `Quick
            test_jobs_identity;
          Alcotest.test_case "warm vs cold deployments agree" `Quick
            test_warm_vs_cold_decisions_agree;
        ] );
      ( "regret",
        [
          Alcotest.test_case "nonnegative every epoch" `Quick
            test_regret_nonnegative;
        ] );
      ( "stream",
        [
          Alcotest.test_case "misaligned chunk rejected" `Quick
            test_feed_rejects_misaligned_chunk;
        ] );
    ]
