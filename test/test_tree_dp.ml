(* Brute-force / differential oracle layer for the exact tree DP.

   Three rings of evidence, from strongest to broadest:

   - exhaustive: on random native instances with <= 12 nodes, per-object
     subset enumeration over the permitted sites must reproduce the DP's
     optimum exactly, for both service disciplines (latencies and
     budgets are integer-valued so path sums are exact floats and the
     comparison is equality, not tolerance);
   - independent solvers: on MC-PERF tree specs the branch-and-bound IP
     optimum must equal the DP, the LP/Lagrangian relaxations must lower
     bound it, and every heuristic that meets the goal must cost at
     least as much (the sandwich LP <= DP <= heuristic);
   - pipeline plumbing: [compute]/sweeps must route eligible cells
     through [Path_tree_dp] with a zero gap, [certify] must accept them,
     and tree sweeps must stay byte-identical across --jobs and under
     tracing. *)

module TD = Bounds.Tree_dp
module TS = Replica_select.Tree_scenario

let float_eq = Alcotest.float 1e-9
let rel_tol = 1e-6

(* --- random native instances -------------------------------------------- *)

(* Integer-valued latencies, budgets, demands and capacities: every
   quantity either discipline sums along a path stays an exact float, so
   oracle and DP cannot disagree by rounding, only by logic. *)
let random_instance rng =
  let nodes = 2 + Util.Prng.int rng 11 in
  let parent = Array.init nodes (fun v -> if v = 0 then -1 else Util.Prng.int rng v) in
  let up_ms =
    Array.init nodes (fun v ->
        if v = 0 then 0. else float_of_int (1 + Util.Prng.int rng 20))
  in
  let objects = 1 + Util.Prng.int rng 3 in
  let demand =
    Array.init objects (fun _ ->
        Array.init nodes (fun v ->
            if v > 0 && Util.Prng.float rng 1. < 0.55 then
              float_of_int (1 + Util.Prng.int rng 9)
            else if v = 0 || Util.Prng.float rng 1. < 0.9 then 0.
            else float_of_int (1 + Util.Prng.int rng 9)))
  in
  let budget_ms =
    Array.init nodes (fun _ -> float_of_int (5 + Util.Prng.int rng 41))
  in
  let permitted =
    Array.init nodes (fun v -> v <> 0 && Util.Prng.float rng 1. < 0.8)
  in
  let replica_cost =
    Array.init objects (fun _ -> float_of_int (1 + Util.Prng.int rng 5))
  in
  let service =
    if Util.Prng.bool rng then TD.Any_replica
    else
      TD.Closest_ancestor
        { capacity = float_of_int (5 + Util.Prng.int rng 56) }
  in
  TD.make ~parent ~up_ms ~permitted ~demand ~budget_ms ~replica_cost ~service ()

(* Pairwise tree distances by walking parent chains — deliberately a
   different algorithm from the DP's shifted accumulations. *)
let distances (inst : TD.instance) =
  let n = inst.TD.nodes in
  let depth_chain v =
    let rec up acc v = if v < 0 then acc else up ((v) :: acc) inst.TD.parent.(v) in
    up [] v
  in
  let dist_to_root = Array.make n 0. in
  for v = 0 to n - 1 do
    if inst.TD.parent.(v) >= 0 then
      dist_to_root.(v) <- dist_to_root.(inst.TD.parent.(v)) +. inst.TD.up_ms.(v)
  done;
  let dist = Array.make_matrix n n 0. in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      (* lowest common ancestor: longest shared prefix of root chains *)
      let cu = depth_chain u and cv = depth_chain v in
      let rec lca last = function
        | x :: xs, y :: ys when x = y -> lca x (xs, ys)
        | _ -> last
      in
      let a = lca 0 (cu, cv) in
      dist.(u).(v) <-
        dist_to_root.(u) +. dist_to_root.(v) -. (2. *. dist_to_root.(a))
    done
  done;
  dist

(* Exhaustive per-object optimum: every subset of the permitted sites.
   Objects do not interact in either discipline, so per-object
   enumeration is exhaustive for the whole instance. *)
let brute_force (inst : TD.instance) =
  let n = inst.TD.nodes in
  let dist = distances inst in
  let perm_sites =
    List.filter (fun v -> inst.TD.permitted.(v)) (List.init n Fun.id)
  in
  let sites = Array.of_list perm_sites in
  let nsites = Array.length sites in
  let subset_feasible k mask =
    let in_set v =
      let rec find i = i < nsites && ((sites.(i) = v && mask land (1 lsl i) <> 0) || find (i + 1)) in
      find 0
    in
    match inst.TD.service with
    | TD.Any_replica ->
      let ok = ref true in
      for v = 0 to n - 1 do
        if inst.TD.demand.(k).(v) > 0. then begin
          let covered = ref false in
          for i = 0 to nsites - 1 do
            if mask land (1 lsl i) <> 0 && dist.(v).(sites.(i)) <= inst.TD.budget_ms.(v)
            then covered := true
          done;
          if not !covered then ok := false
        end
      done;
      !ok
    | TD.Closest_ancestor { capacity } ->
      let load = Array.make n 0. in
      let ok = ref true in
      for v = 0 to n - 1 do
        let d = inst.TD.demand.(k).(v) in
        if d > 0. then begin
          (* first replica on the way to the root, else the root *)
          let rec server u = if u < 0 then inst.TD.root else if in_set u then u else server inst.TD.parent.(u) in
          let s = server v in
          if dist.(v).(s) > inst.TD.budget_ms.(v) then ok := false;
          if s <> inst.TD.root || in_set inst.TD.root then load.(s) <- load.(s) +. d
        end
      done;
      for i = 0 to nsites - 1 do
        if mask land (1 lsl i) <> 0 && load.(sites.(i)) > capacity then ok := false
      done;
      !ok
  in
  let objects = Array.length inst.TD.demand in
  let rec per_object k cost =
    if k = objects then TD.Optimal { TD.cost; placement = [||] }
    else begin
      let best = ref max_int in
      for mask = 0 to (1 lsl nsites) - 1 do
        let count =
          let rec pop m acc = if m = 0 then acc else pop (m lsr 1) (acc + (m land 1)) in
          pop mask 0
        in
        if count < !best && subset_feasible k mask then best := count
      done;
      if !best = max_int then TD.Unsatisfiable { object_id = k }
      else
        per_object (k + 1)
          (cost +. (float_of_int !best *. inst.TD.replica_cost.(k)))
    end
  in
  per_object 0 0.

(* The DP's own placement must be feasible and priced as claimed — an
   independent re-check through the oracle's feasibility test. *)
let check_placement (inst : TD.instance) (sol : TD.solution) =
  let dist = distances inst in
  let claimed = ref 0. in
  Array.iteri
    (fun k sites ->
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "object %d: site %d permitted" k v)
            true inst.TD.permitted.(v))
        sites;
      claimed :=
        !claimed
        +. (float_of_int (List.length sites) *. inst.TD.replica_cost.(k));
      match inst.TD.service with
      | TD.Any_replica ->
        Array.iteri
          (fun v d ->
            if d > 0. then
              Alcotest.(check bool)
                (Printf.sprintf "object %d: demand at %d covered" k v)
                true
                (List.exists
                   (fun u -> dist.(v).(u) <= inst.TD.budget_ms.(v))
                   sites))
          inst.TD.demand.(k)
      | TD.Closest_ancestor { capacity } ->
        let load = Array.make inst.TD.nodes 0. in
        Array.iteri
          (fun v d ->
            if d > 0. then begin
              let rec server u =
                if u < 0 then inst.TD.root
                else if List.mem u sites then u
                else server inst.TD.parent.(u)
              in
              let s = server v in
              Alcotest.(check bool)
                (Printf.sprintf "object %d: demand at %d within budget" k v)
                true
                (dist.(v).(s) <= inst.TD.budget_ms.(v));
              if s <> inst.TD.root then load.(s) <- load.(s) +. d
            end)
          inst.TD.demand.(k);
        List.iter
          (fun u ->
            Alcotest.(check bool)
              (Printf.sprintf "object %d: replica %d within capacity" k u)
              true
              (load.(u) <= capacity))
          sites)
    sol.TD.placement;
  Alcotest.check float_eq "placement priced as claimed" sol.TD.cost !claimed

let test_brute_force_oracle () =
  let rng = Util.Prng.create ~seed:90210 in
  for i = 1 to 100 do
    let inst = random_instance rng in
    let dp = TD.solve inst in
    let oracle = brute_force inst in
    match (dp, oracle) with
    | TD.Optimal dps, TD.Optimal os ->
      Alcotest.check float_eq
        (Printf.sprintf "instance %d: dp equals exhaustive optimum" i)
        os.TD.cost dps.TD.cost;
      check_placement inst dps
    | TD.Unsatisfiable { object_id = a }, TD.Unsatisfiable { object_id = b } ->
      Alcotest.(check int)
        (Printf.sprintf "instance %d: same unsatisfiable object" i)
        b a
    | TD.Optimal _, TD.Unsatisfiable { object_id } ->
      Alcotest.failf "instance %d: dp feasible, oracle says object %d cannot"
        i object_id
    | TD.Unsatisfiable { object_id }, TD.Optimal _ ->
      Alcotest.failf "instance %d: oracle feasible, dp gives up on object %d"
        i object_id
  done

(* Determinism: the same instance must produce the same placement,
   value-for-value, across repeated solves. *)
let test_solve_deterministic () =
  let rng = Util.Prng.create ~seed:4242 in
  for i = 1 to 10 do
    let inst = random_instance rng in
    match (TD.solve inst, TD.solve inst) with
    | TD.Optimal a, TD.Optimal b ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d: identical placements" i)
        true
        (a.TD.placement = b.TD.placement)
    | TD.Unsatisfiable a, TD.Unsatisfiable b ->
      Alcotest.(check int) "same object" b.object_id a.object_id
    | _ -> Alcotest.failf "instance %d: outcome changed between solves" i
  done

(* --- MC-PERF differential: DP vs LP vs IP vs heuristics ------------------ *)

let dp_cell_of (scen : TS.t) =
  Bounds.Pipeline.compute ?placeable:scen.TS.placeable scen.TS.spec
    Mcperf.Classes.general

let test_family_eligible_and_exact () =
  List.iteri
    (fun i (scen : TS.t) ->
      let name fmt = Printf.sprintf ("%s (%d): " ^^ fmt) scen.TS.name i in
      (match
         TD.of_spec ?placeable:scen.TS.placeable scen.TS.spec
           Mcperf.Classes.general
       with
      | Error reason -> Alcotest.failf "%signeligible: %s" (name "") reason
      | Ok inst -> (
        match TD.solve inst with
        | TD.Unsatisfiable { object_id } ->
          Alcotest.failf "%sunsatisfiable object %d" (name "") object_id
        | TD.Optimal _ -> ()));
      let cell = dp_cell_of scen in
      Alcotest.(check bool) (name "feasible") true cell.Bounds.Pipeline.feasible;
      Alcotest.(check bool)
        (name "routed through tree-dp")
        true
        (cell.Bounds.Pipeline.solve_path = Bounds.Pipeline.Path_tree_dp);
      Alcotest.(check bool)
        (name "quality exact")
        true
        (cell.Bounds.Pipeline.quality = Bounds.Pipeline.Exact);
      (* gap is [Some 0.] against a positive bound; a zero-cost optimum
         (all demand origin-covered) reports [None], matching [finish] *)
      let expected_gap =
        if cell.Bounds.Pipeline.lower_bound > 0. then Some 0. else None
      in
      Alcotest.(check (option (float 0.))) (name "zero gap") expected_gap
        cell.Bounds.Pipeline.gap;
      (match cell.Bounds.Pipeline.rounded with
      | None -> Alcotest.failf "%sno placement attached" (name "")
      | Some r ->
        Alcotest.(check bool)
          (name "placement meets goal")
          true
          r.Rounding.Round.evaluation.Mcperf.Costing.meets_goal;
        Alcotest.check float_eq
          (name "bound equals placement cost")
          r.Rounding.Round.evaluation.Mcperf.Costing.total
          cell.Bounds.Pipeline.lower_bound);
      (* certify replays the DP from scratch *)
      (match
         Bounds.Pipeline.certify ?placeable:scen.TS.placeable scen.TS.spec
           Mcperf.Classes.general cell
       with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%scertify rejected: %s" (name "") msg))
    (TS.family ~seed:23 ~count:10 ())

(* Sandwich on the same instances: LP relaxation (forced through the
   simplex/PDHG chain) <= DP optimum <= every goal-meeting heuristic;
   the rounded LP placement must itself be feasible and >= DP. *)
let test_sandwich () =
  List.iteri
    (fun i (scen : TS.t) ->
      let name what = Printf.sprintf "%s (%d): %s" scen.TS.name i what in
      let dp = (dp_cell_of scen).Bounds.Pipeline.lower_bound in
      let scale = 1. +. Float.abs dp in
      let lp =
        Bounds.Pipeline.compute ~solver:Bounds.Pipeline.Exact_simplex
          ?placeable:scen.TS.placeable scen.TS.spec Mcperf.Classes.general
      in
      Alcotest.(check bool) (name "lp cell feasible") true lp.Bounds.Pipeline.feasible;
      Alcotest.(check bool)
        (name "lp path is not tree-dp")
        true
        (lp.Bounds.Pipeline.solve_path <> Bounds.Pipeline.Path_tree_dp);
      Alcotest.(check bool)
        (Printf.sprintf "%s (lp %.3f, dp %.3f)" (name "lp bound <= dp")
           lp.Bounds.Pipeline.lower_bound dp)
        true
        (lp.Bounds.Pipeline.lower_bound <= dp +. (rel_tol *. scale));
      (* rounding satellite: the rounded LP point is feasible on trees and
         can never undercut the exact optimum *)
      (match lp.Bounds.Pipeline.rounded with
      | None -> Alcotest.failf "%s" (name "lp cell has no rounded solution")
      | Some r ->
        let ev = r.Rounding.Round.evaluation in
        Alcotest.(check bool)
          (name "rounded lp placement feasible")
          true ev.Mcperf.Costing.meets_goal;
        Alcotest.(check bool)
          (Printf.sprintf "%s (rounded %.3f, dp %.3f)"
             (name "rounded lp >= dp") ev.Mcperf.Costing.total dp)
          true
          (ev.Mcperf.Costing.total >= dp -. (rel_tol *. scale)));
      (* Lagrangian bound (no placeable support: unrestricted only) *)
      if scen.TS.placeable = None then begin
        let lag =
          Bounds.Lagrangian.bound ~iterations:40 scen.TS.spec
            Mcperf.Classes.general
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s (lag %.3f, dp %.3f)" (name "lagrangian <= dp")
             lag.Bounds.Lagrangian.bound dp)
          true
          (lag.Bounds.Lagrangian.bound <= dp +. (rel_tol *. scale))
      end;
      (* heuristics: anything that meets the goal costs at least dp *)
      (match
         Heuristics.Proportional.search ?placeable:scen.TS.placeable
           ~spec:scen.TS.spec ()
       with
      | None -> Alcotest.failf "%s" (name "proportional search found nothing")
      | Some (_, ev) ->
        Alcotest.(check bool)
          (name "proportional meets goal")
          true ev.Mcperf.Costing.meets_goal;
        Alcotest.(check bool)
          (Printf.sprintf "%s (prop %.3f, dp %.3f)" (name "proportional >= dp")
             ev.Mcperf.Costing.total dp)
          true
          (ev.Mcperf.Costing.total >= dp -. (rel_tol *. scale)));
      List.iter
        (fun strategy ->
          let ev =
            Heuristics.Placement_baselines.evaluate
              ?placeable:scen.TS.placeable ~spec:scen.TS.spec ~strategy
              ~replicas:3 ()
          in
          if ev.Mcperf.Costing.meets_goal then
            Alcotest.(check bool)
              (name
                 (Printf.sprintf "%s baseline >= dp"
                    (Heuristics.Placement_baselines.strategy_name strategy)))
              true
              (ev.Mcperf.Costing.total >= dp -. (rel_tol *. scale)))
        [
          Heuristics.Placement_baselines.Random;
          Heuristics.Placement_baselines.Hotspot;
          Heuristics.Placement_baselines.Greedy;
        ])
    (TS.family ~seed:31 ~count:8 ())

(* Fully independent integer oracle: branch and bound on the MC-PERF IP
   itself must reproduce the DP optimum on small trees. *)
let test_ip_oracle () =
  List.iter
    (fun scen ->
      let dp = (dp_cell_of scen).Bounds.Pipeline.lower_bound in
      let perm =
        Mcperf.Permission.compute ?placeable:scen.TS.placeable scen.TS.spec
          Mcperf.Classes.general
      in
      let model = Mcperf.Model.build perm in
      match
        Ipsolve.Branch_bound.solve ~max_nodes:200_000
          model.Mcperf.Model.problem
      with
      | Ipsolve.Branch_bound.Optimal { objective; _ } ->
        let ip = objective +. model.Mcperf.Model.objective_offset in
        Alcotest.(check bool)
          (Printf.sprintf "%s: ip optimum %.6f equals dp %.6f" scen.TS.name ip
             dp)
          true
          (Float.abs (ip -. dp) <= rel_tol *. (1. +. Float.abs dp))
      | Ipsolve.Branch_bound.Infeasible ->
        Alcotest.failf "%s: ip oracle says infeasible" scen.TS.name
      | Ipsolve.Branch_bound.Node_limit _ ->
        Alcotest.failf "%s: ip oracle hit its node limit" scen.TS.name)
    [
      TS.make ~seed:5 ~objects:3 (TS.Balanced { fanout = 2; depth = 2 });
      TS.make ~seed:6 ~objects:3 (TS.Random { nodes = 6 });
      TS.make ~seed:7 ~objects:3 ~restrict_sites:true (TS.Random { nodes = 7 });
    ]

(* Brute force through the of_spec mapping: the instance the pipeline
   actually solves, cross-checked exhaustively on small specs. *)
let test_of_spec_brute_force () =
  List.iter
    (fun (scen : TS.t) ->
      match
        TD.of_spec ?placeable:scen.TS.placeable scen.TS.spec
          Mcperf.Classes.general
      with
      | Error reason -> Alcotest.failf "%s: ineligible: %s" scen.TS.name reason
      | Ok inst -> (
        match (TD.solve inst, brute_force inst) with
        | TD.Optimal dps, TD.Optimal os ->
          Alcotest.check float_eq
            (Printf.sprintf "%s: dp equals exhaustive optimum" scen.TS.name)
            os.TD.cost dps.TD.cost
        | TD.Unsatisfiable _, TD.Unsatisfiable _ -> ()
        | _ -> Alcotest.failf "%s: dp and oracle disagree" scen.TS.name))
    (List.filter
       (fun (s : TS.t) -> Topology.Graph.node_count s.TS.system.Topology.System.graph <= 12)
       (TS.family ~seed:47 ~count:12 ())
    @ [
        TS.make ~seed:3 (TS.Balanced { fanout = 2; depth = 2 });
        TS.make ~seed:4 (TS.Random { nodes = 11 });
        TS.make ~seed:9 ~restrict_sites:true (TS.Random { nodes = 12 });
      ])

(* of_spec must refuse specs outside the proven-exact scope. *)
let test_of_spec_scope () =
  let scen = TS.make ~seed:8 (TS.Random { nodes = 9 }) in
  let reject what spec cls =
    match TD.of_spec spec cls with
    | Ok _ -> Alcotest.failf "%s: accepted out-of-scope spec" what
    | Error _ -> ()
  in
  reject "constrained class" scen.TS.spec Mcperf.Classes.caching;
  (match scen.TS.spec.Mcperf.Spec.goal with
  | Mcperf.Spec.Qos { tlat_ms; _ } ->
    reject "avg-latency goal"
      {
        scen.TS.spec with
        Mcperf.Spec.goal = Mcperf.Spec.Avg_latency { tavg_ms = tlat_ms };
      }
      Mcperf.Classes.general
  | _ -> assert false);
  (* non-tree topology *)
  let rng = Util.Prng.create ~seed:1 in
  let g =
    Topology.Generate.ring ~rng ~nodes:6
      ~latency:Topology.Generate.default_hop_latency
  in
  let system = Topology.System.make ~origin:0 g in
  let reads =
    [|
      [| { Workload.Demand.node = 3; interval = 0; count = 50. } |];
    |]
  in
  let demand =
    Workload.Demand.create ~nodes:6 ~intervals:1 ~interval_s:3600. ~reads ()
  in
  let spec =
    Mcperf.Spec.make ~system ~demand
      ~goal:(Mcperf.Spec.Qos { tlat_ms = 250.; fraction = 0.95 })
      ()
  in
  reject "ring topology" spec Mcperf.Classes.general

(* --- sweeps: byte-identical across jobs and tracing ---------------------- *)

(* [No_sharing]: cells built in one process can physically share
   substructures that per-task unmarshaling in workers does not, and
   plain [Marshal] encodes that sharing as back-references — byte
   equality must witness the values, not the allocation history. *)
let sweep_signature (sweep : Bounds.Pipeline.sweep) =
  Marshal.to_string
    ( sweep.Bounds.Pipeline.per_class,
      List.map
        (fun (s : Bounds.Pipeline.task_stat) ->
          ( s.Bounds.Pipeline.label,
            s.Bounds.Pipeline.x,
            s.Bounds.Pipeline.iterations,
            s.Bounds.Pipeline.solved_exactly ))
        sweep.Bounds.Pipeline.stats )
    [ Marshal.No_sharing ]

let tree_sweep ?obs ~jobs () =
  let scen = TS.make ~seed:77 (TS.Random { nodes = 14 }) in
  let cfg =
    Bounds.Pipeline.Sweep_config.(
      let c = default |> with_jobs jobs in
      match obs with Some o -> with_obs o c | None -> c)
  in
  let sweep =
    Bounds.Pipeline.sweep_classes cfg scen.TS.spec
      ~fractions:TS.default_fractions
      [
        ("general", Mcperf.Classes.general);
        ("caching", Mcperf.Classes.caching);
      ]
  in
  (* the third producer must actually fire: every general cell is a tree
     cell, and no caching cell is *)
  List.iter
    (fun (label, cells) ->
      List.iter
        (fun (fraction, (r : Bounds.Pipeline.t)) ->
          let is_dp =
            r.Bounds.Pipeline.solve_path = Bounds.Pipeline.Path_tree_dp
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s @ %g: tree-dp routing" label fraction)
            (String.equal label "general")
            is_dp)
        cells)
    sweep.Bounds.Pipeline.per_class;
  sweep

let test_sweep_jobs_identical () =
  let seq = tree_sweep ~jobs:1 () in
  let par = tree_sweep ~jobs:4 () in
  Alcotest.(check bool)
    "jobs 1 and jobs 4 byte-identical" true
    (String.equal (sweep_signature seq) (sweep_signature par))

let test_sweep_tracing_identical () =
  let untraced = tree_sweep ~jobs:2 () in
  let traced =
    Fun.protect
      ~finally:(fun () -> Obs.Config.install Obs.Config.disabled)
      (fun () ->
        tree_sweep
          ~obs:{ Obs.Config.default with Obs.Config.sink = Obs.Config.Memory }
          ~jobs:2 ())
  in
  Alcotest.(check bool)
    "traced and untraced byte-identical" true
    (String.equal (sweep_signature untraced) (sweep_signature traced))

(* --- golden fixtures: hand-verified optima on two named trees ------------ *)

let fixture path = Filename.concat "fixtures" path

let load_tree name =
  match Topology.Topo_io.load_result ~path:(fixture name) with
  | Ok (g, _origin) -> g
  | Error e ->
    Alcotest.failf "fixture %s failed to load: %s" name
      (Topology.Topo_io.error_to_string e)

(* fixtures/tree_chain.topo: 0 -120ms- 1 -120ms- 2 -120ms- 3 -120ms- 4.
   Budget 250 everywhere: the origin covers nodes 1 and 2 (120, 240),
   nodes 3 and 4 need a replica; a single replica at 2, 3 or 4 covers
   both (node 2 reaches 4 at 240 <= 250) — hand-verified optimum: one
   replica, cost alpha + beta. *)
let test_golden_chain () =
  let g = load_tree "tree_chain.topo" in
  Alcotest.(check bool) "chain is a tree" true (Topology.Graph.is_tree g);
  let system = Topology.System.make ~origin:0 g in
  let reads =
    [|
      [|
        { Workload.Demand.node = 3; interval = 0; count = 40. };
        { Workload.Demand.node = 4; interval = 0; count = 40. };
      |];
    |]
  in
  let demand =
    Workload.Demand.create ~nodes:5 ~intervals:1 ~interval_s:3600. ~reads ()
  in
  let spec =
    Mcperf.Spec.make ~system ~demand
      ~goal:(Mcperf.Spec.Qos { tlat_ms = 250.; fraction = 0.95 })
      ()
  in
  match TD.of_spec spec Mcperf.Classes.general with
  | Error reason -> Alcotest.failf "chain ineligible: %s" reason
  | Ok inst -> (
    match TD.solve inst with
    | TD.Unsatisfiable _ -> Alcotest.fail "chain unsatisfiable"
    | TD.Optimal { cost; placement } ->
      (* alpha + beta = 2 per replica at weight 1 *)
      Alcotest.check float_eq "one replica, cost alpha+beta" 2. cost;
      (match placement.(0) with
      | [ v ] ->
        Alcotest.(check bool)
          (Printf.sprintf "replica at 2, 3 or 4 (got %d)" v)
          true
          (v = 2 || v = 3 || v = 4)
      | sites ->
        Alcotest.failf "expected one site, got %d" (List.length sites)))

(* fixtures/tree_star.topo: hub 0 with spokes 1..4 at 180 ms each.
   Budget 200: each spoke is origin-covered (180 <= 200) EXCEPT the
   far spoke 4 at 220 ms; spoke-to-spoke distance is >= 360, so node 4
   can only be served by itself — hand-verified optimum: one replica
   at node 4, for each of the two objects read there. *)
let test_golden_star () =
  let g = load_tree "tree_star.topo" in
  Alcotest.(check bool) "star is a tree" true (Topology.Graph.is_tree g);
  let system = Topology.System.make ~origin:0 g in
  let reads =
    [|
      [|
        { Workload.Demand.node = 1; interval = 0; count = 30. };
        { Workload.Demand.node = 4; interval = 0; count = 50. };
      |];
      [| { Workload.Demand.node = 4; interval = 0; count = 45. } |];
    |]
  in
  let demand =
    Workload.Demand.create ~nodes:5 ~intervals:1 ~interval_s:3600. ~reads ()
  in
  let spec =
    Mcperf.Spec.make ~system ~demand
      ~goal:(Mcperf.Spec.Qos { tlat_ms = 200.; fraction = 0.95 })
      ()
  in
  match TD.of_spec spec Mcperf.Classes.general with
  | Error reason -> Alcotest.failf "star ineligible: %s" reason
  | Ok inst -> (
    match TD.solve inst with
    | TD.Unsatisfiable _ -> Alcotest.fail "star unsatisfiable"
    | TD.Optimal { cost; placement } ->
      Alcotest.check float_eq "two replicas, cost 2*(alpha+beta)" 4. cost;
      Alcotest.(check (list int)) "object 0 served at node 4" [ 4 ] placement.(0);
      Alcotest.(check (list int)) "object 1 served at node 4" [ 4 ] placement.(1))

let () =
  Alcotest.run "tree_dp"
    [
      ( "oracle",
        [
          Alcotest.test_case "brute force, 100 random instances" `Quick
            test_brute_force_oracle;
          Alcotest.test_case "solve deterministic" `Quick
            test_solve_deterministic;
        ] );
      ( "mcperf",
        [
          Alcotest.test_case "family eligible, exact, certified" `Quick
            test_family_eligible_and_exact;
          Alcotest.test_case "sandwich lp <= dp <= heuristics" `Quick
            test_sandwich;
          Alcotest.test_case "branch-and-bound ip equals dp" `Quick
            test_ip_oracle;
          Alcotest.test_case "of_spec instances vs brute force" `Quick
            test_of_spec_brute_force;
          Alcotest.test_case "of_spec scope checks" `Quick test_of_spec_scope;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "jobs 1 = jobs 4" `Quick test_sweep_jobs_identical;
          Alcotest.test_case "traced = untraced" `Quick
            test_sweep_tracing_identical;
        ] );
      ( "golden",
        [
          Alcotest.test_case "chain fixture" `Quick test_golden_chain;
          Alcotest.test_case "star fixture" `Quick test_golden_star;
        ] );
    ]
