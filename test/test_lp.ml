(* Tests for the LP substrate: problem construction, exact simplex,
   first-order PDHG, and the dual-certificate lower bounds. *)

let approx = Util.Vecops.approx_equal

let check_float name ?(eps = 1e-6) expected actual =
  if not (approx ~eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" name expected actual

(* --- construction helpers ------------------------------------------- *)

let build_problem vars rows =
  let b = Lp.Problem.Builder.create () in
  List.iter
    (fun (name, lo, hi, obj) ->
      ignore (Lp.Problem.Builder.add_var b ~name ~lo ~hi ~obj ()))
    vars;
  List.iter
    (fun (kind, rhs, terms) -> Lp.Problem.Builder.add_row b kind ~rhs terms)
    rows;
  Lp.Problem.Builder.build b

let solve_simplex p =
  match Lp.Simplex.solve p with
  | Lp.Simplex.Optimal { x; objective } -> (x, objective)
  | Infeasible -> Alcotest.fail "unexpected: infeasible"
  | Unbounded -> Alcotest.fail "unexpected: unbounded"

(* --- simplex unit tests ---------------------------------------------- *)

let test_simplex_box_max () =
  (* max x + y over the triangle x + y <= 1 => min -(x+y) = -1 *)
  let p =
    build_problem
      [ ("x", 0., 1., -1.); ("y", 0., 1., -1.) ]
      [ (Lp.Problem.Le, 1., [ (0, 1.); (1, 1.) ]) ]
  in
  let x, obj = solve_simplex p in
  check_float "objective" (-1.) obj;
  check_float "x+y" 1. (x.(0) +. x.(1))

let test_simplex_diet () =
  (* Classic 2-var diet-style LP:
     min 3a + 2b  s.t.  a + b >= 4, a + 3b >= 6, a,b >= 0.
     Vertices: (0,4) -> 8, (3,1) -> 11, (6,0) -> 18; optimum 8 at (0,4). *)
  let p =
    build_problem
      [ ("a", 0., infinity, 3.); ("b", 0., infinity, 2.) ]
      [
        (Lp.Problem.Ge, 4., [ (0, 1.); (1, 1.) ]);
        (Lp.Problem.Ge, 6., [ (0, 1.); (1, 3.) ]);
      ]
  in
  let x, obj = solve_simplex p in
  check_float "objective" 8. obj;
  check_float "a" 0. x.(0);
  check_float "b" 4. x.(1)

let test_simplex_equality () =
  (* min x + 2y s.t. x + y = 5, x <= 3 => x=3, y=2, obj 7 *)
  let p =
    build_problem
      [ ("x", 0., 3., 1.); ("y", 0., infinity, 2.) ]
      [ (Lp.Problem.Eq, 5., [ (0, 1.); (1, 1.) ]) ]
  in
  let x, obj = solve_simplex p in
  check_float "objective" 7. obj;
  check_float "x" 3. x.(0);
  check_float "y" 2. x.(1)

let test_simplex_infeasible () =
  let p =
    build_problem
      [ ("x", 0., 1., 1.) ]
      [ (Lp.Problem.Ge, 2., [ (0, 1.) ]) ]
  in
  match Lp.Simplex.solve p with
  | Lp.Simplex.Infeasible -> ()
  | Optimal _ -> Alcotest.fail "expected infeasible, got optimal"
  | Unbounded -> Alcotest.fail "expected infeasible, got unbounded"

let test_simplex_unbounded () =
  let p =
    build_problem
      [ ("x", 0., infinity, -1.) ]
      [ (Lp.Problem.Ge, 0., [ (0, 1.) ]) ]
  in
  match Lp.Simplex.solve p with
  | Lp.Simplex.Unbounded -> ()
  | Optimal _ -> Alcotest.fail "expected unbounded, got optimal"
  | Infeasible -> Alcotest.fail "expected unbounded, got infeasible"

let test_simplex_negative_rhs () =
  (* min x s.t. -x <= -2 (i.e. x >= 2), x in [0, 10] => 2 *)
  let p =
    build_problem
      [ ("x", 0., 10., 1.) ]
      [ (Lp.Problem.Le, -2., [ (0, -1.) ]) ]
  in
  let _, obj = solve_simplex p in
  check_float "objective" 2. obj

let test_simplex_shifted_lower_bounds () =
  (* min x + y with x in [2, 10], y in [3, 10], x + y >= 7 => 7 *)
  let p =
    build_problem
      [ ("x", 2., 10., 1.); ("y", 3., 10., 1.) ]
      [ (Lp.Problem.Ge, 7., [ (0, 1.); (1, 1.) ]) ]
  in
  let x, obj = solve_simplex p in
  check_float "objective" 7. obj;
  Alcotest.(check bool) "x >= 2" true (x.(0) >= 2. -. 1e-9);
  Alcotest.(check bool) "y >= 3" true (x.(1) >= 3. -. 1e-9)

let test_simplex_set_cover_lp () =
  (* Fractional set cover: 3 elements, sets {1,2} {2,3} {1,3}, unit costs.
     LP optimum is 1.5 (x = 1/2 each); the IP optimum would be 2. *)
  let p =
    build_problem
      [ ("s12", 0., 1., 1.); ("s23", 0., 1., 1.); ("s13", 0., 1., 1.) ]
      [
        (Lp.Problem.Ge, 1., [ (0, 1.); (2, 1.) ]);
        (Lp.Problem.Ge, 1., [ (0, 1.); (1, 1.) ]);
        (Lp.Problem.Ge, 1., [ (1, 1.); (2, 1.) ]);
      ]
  in
  let _, obj = solve_simplex p in
  check_float "objective" 1.5 obj

let test_simplex_degenerate () =
  (* Degenerate vertex: several constraints meet at the optimum. Bland's
     rule must still terminate. *)
  let p =
    build_problem
      [ ("x", 0., 10., -0.75); ("y", 0., 10., 150.); ("z", 0., 10., -0.02);
        ("w", 0., 10., 6.) ]
      [
        (Lp.Problem.Le, 0., [ (0, 0.25); (1, -60.); (2, -0.04); (3, 9.) ]);
        (Lp.Problem.Le, 0., [ (0, 0.5); (1, -90.); (2, -0.02); (3, 3.) ]);
        (Lp.Problem.Le, 1., [ (2, 1.) ]);
      ]
  in
  let x, obj = solve_simplex p in
  (* Beale's classic cycling example: optimum -0.05 at z = 1. *)
  check_float "objective" (-0.05) obj;
  check_float "z" 1. x.(2)

(* --- PDHG and certificates ------------------------------------------- *)

let pdhg_options =
  { Lp.Pdhg.default_options with max_iters = 50_000; rel_tol = 1e-7 }

let test_pdhg_matches_simplex_small () =
  let p =
    build_problem
      [ ("a", 0., 10., 3.); ("b", 0., 10., 2.) ]
      [
        (Lp.Problem.Ge, 4., [ (0, 1.); (1, 1.) ]);
        (Lp.Problem.Ge, 6., [ (0, 1.); (1, 3.) ]);
      ]
  in
  let _, obj = solve_simplex p in
  let out = Lp.Pdhg.solve ~options:pdhg_options p in
  Alcotest.(check bool) "converged" true out.converged;
  check_float ~eps:1e-4 "bound matches optimum" obj out.best_bound;
  Alcotest.(check bool) "bound is a lower bound" true
    (out.best_bound <= obj +. 1e-6)

let test_pdhg_equality_rows () =
  let p =
    build_problem
      [ ("x", 0., 3., 1.); ("y", 0., 8., 2.) ]
      [ (Lp.Problem.Eq, 5., [ (0, 1.); (1, 1.) ]) ]
  in
  let _, obj = solve_simplex p in
  let out = Lp.Pdhg.solve ~options:pdhg_options p in
  check_float ~eps:1e-4 "bound" obj out.best_bound

let test_certificate_is_valid_for_any_dual () =
  (* For arbitrary (even silly) dual vectors, the certified bound must stay
     below the true optimum. *)
  let p =
    build_problem
      [ ("a", 0., 10., 3.); ("b", 0., 10., 2.) ]
      [
        (Lp.Problem.Ge, 4., [ (0, 1.); (1, 1.) ]);
        (Lp.Problem.Ge, 6., [ (0, 1.); (1, 3.) ]);
      ]
  in
  let _, opt = solve_simplex p in
  let norm = Lp.Problem.normalize_ge p in
  List.iter
    (fun y ->
      let bound = Lp.Certificate.dual_bound norm ~y in
      if bound > opt +. 1e-9 then
        Alcotest.failf "certificate exceeded optimum: %g > %g" bound opt)
    [
      [| 0.; 0. |]; [| 1.; 1. |]; [| 10.; 0. |]; [| -5.; 2. |]; [| 2.5; 0.5 |];
      [| 0.33; 1.77 |];
    ]

let test_certificate_rejects_le_rows () =
  let p =
    build_problem
      [ ("x", 0., 1., 1.) ]
      [ (Lp.Problem.Le, 1., [ (0, 1.) ]) ]
  in
  Alcotest.check_raises "Le rejected"
    (Invalid_argument "Certificate.dual_bound: problem must be Ge-normalized")
    (fun () -> ignore (Lp.Certificate.dual_bound p ~y:[| 1. |]))


(* --- presolve ----------------------------------------------------------- *)

let test_presolve_fixed_vars () =
  (* y is fixed by its bounds; the row becomes a singleton on x. *)
  let p =
    build_problem
      [ ("x", 0., 10., 1.); ("y", 3., 3., 2.) ]
      [ (Lp.Problem.Ge, 5., [ (0, 1.); (1, 1.) ]) ]
  in
  let r = Lp.Presolve.run p in
  Alcotest.(check bool) "reduced" true (r.Lp.Presolve.status = `Reduced);
  (* y is bound-fixed at 3, the row becomes the singleton x >= 2, and x —
     now unreferenced with a positive objective — is fixed at that bound:
     the whole problem presolves away. *)
  Alcotest.(check int) "fully presolved" 0
    (Lp.Problem.nvars r.Lp.Presolve.reduced);
  (* Solve reduced + offset = solve original. *)
  let orig =
    match Lp.Simplex.solve p with
    | Lp.Simplex.Optimal { objective; _ } -> objective
    | _ -> Alcotest.fail "original should solve"
  in
  let red =
    if Lp.Problem.nvars r.Lp.Presolve.reduced = 0 then r.Lp.Presolve.offset
    else
      match Lp.Simplex.solve r.Lp.Presolve.reduced with
      | Lp.Simplex.Optimal { objective; _ } -> objective +. r.Lp.Presolve.offset
      | _ -> Alcotest.fail "reduced should solve"
  in
  check_float "same optimum" orig red

let test_presolve_singleton_row_tightens () =
  (* 2x >= 6 is a bound x >= 3; with obj +1 the optimum is 3. *)
  let p =
    build_problem
      [ ("x", 0., 10., 1.) ]
      [ (Lp.Problem.Ge, 6., [ (0, 2.) ]) ]
  in
  let r = Lp.Presolve.run p in
  Alcotest.(check bool) "rows dropped" true (r.Lp.Presolve.dropped_rows >= 1);
  (match Lp.Simplex.solve r.Lp.Presolve.reduced with
  | Lp.Simplex.Optimal { objective; _ } ->
    check_float "optimum preserved" 3. (objective +. r.Lp.Presolve.offset)
  | _ ->
    (* x may have been fixed outright if bounds collapsed - then the
       reduced problem is empty and the offset carries the optimum. *)
    check_float "optimum via offset" 3. r.Lp.Presolve.offset)

let test_presolve_detects_infeasible_bounds () =
  (* x <= 2 and x >= 5 via two singleton rows. *)
  let p =
    build_problem
      [ ("x", 0., 10., 1.) ]
      [ (Lp.Problem.Le, 2., [ (0, 1.) ]); (Lp.Problem.Ge, 5., [ (0, 1.) ]) ]
  in
  let r = Lp.Presolve.run p in
  Alcotest.(check bool) "infeasible" true (r.Lp.Presolve.status = `Infeasible)

let test_presolve_unreferenced_vars () =
  (* z appears in no row; with positive objective it is fixed at its lower
     bound. *)
  let p =
    build_problem
      [ ("x", 0., 10., 1.); ("z", 2., 9., 5.) ]
      [ (Lp.Problem.Ge, 4., [ (0, 1.) ]) ]
  in
  let r = Lp.Presolve.run p in
  Alcotest.(check bool) "reduced" true (r.Lp.Presolve.status = `Reduced);
  (* z fixed at 2 (5 * 2 = 10); the singleton row then fixes x at 4. *)
  check_float "offset" 14. r.Lp.Presolve.offset;
  let x' = Array.make (Lp.Problem.nvars r.Lp.Presolve.reduced) 0. in
  let x = r.Lp.Presolve.restore x' in
  check_float "x restored" 4. x.(0);
  check_float "z restored" 2. x.(1)

let test_presolve_unchanged () =
  let p =
    build_problem
      [ ("x", 0., 10., 1.); ("y", 0., 10., 1.) ]
      [ (Lp.Problem.Ge, 4., [ (0, 1.); (1, 1.) ]) ]
  in
  let r = Lp.Presolve.run p in
  Alcotest.(check bool) "unchanged" true (r.Lp.Presolve.status = `Unchanged)

(* --- randomized agreement tests -------------------------------------- *)

(* Random LPs built around a known interior point so they are feasible by
   construction: pick x0 in the box, make each row a.x >= a.x0 - slack. *)
let random_feasible_lp rng ~nvars ~nrows =
  let b = Lp.Problem.Builder.create () in
  let x0 = Array.init nvars (fun _ -> Util.Prng.float rng 5.) in
  for j = 0 to nvars - 1 do
    ignore
      (Lp.Problem.Builder.add_var b ~lo:0. ~hi:(5. +. Util.Prng.float rng 5.)
         ~obj:(Util.Prng.uniform rng ~lo:0.1 ~hi:3.)
         ());
    ignore j
  done;
  for _ = 1 to nrows do
    let terms = ref [] in
    let activity = ref 0. in
    for j = 0 to nvars - 1 do
      if Util.Prng.float rng 1. < 0.6 then begin
        let v = Util.Prng.uniform rng ~lo:(-1.) ~hi:2. in
        terms := (j, v) :: !terms;
        activity := !activity +. (v *. x0.(j))
      end
    done;
    if !terms <> [] then
      Lp.Problem.Builder.add_row b Lp.Problem.Ge
        ~rhs:(!activity -. Util.Prng.float rng 1.)
        !terms
  done;
  Lp.Problem.Builder.build b

let prop_presolve_preserves_optimum =
  QCheck2.Test.make ~count:50
    ~name:"presolve preserves the LP optimum (reduced + offset = original)"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 2) in
      let nvars = 2 + Util.Prng.int rng 6 in
      let nrows = 1 + Util.Prng.int rng 6 in
      let p = random_feasible_lp rng ~nvars ~nrows in
      let r = Lp.Presolve.run p in
      match r.Lp.Presolve.status with
      | `Infeasible -> false (* feasible by construction *)
      | `Unchanged -> true
      | `Reduced -> (
        match Lp.Simplex.solve p with
        | Lp.Simplex.Optimal { objective = orig; _ } ->
          let red =
            if Lp.Problem.nvars r.Lp.Presolve.reduced = 0 then
              Some r.Lp.Presolve.offset
            else
              match Lp.Simplex.solve r.Lp.Presolve.reduced with
              | Lp.Simplex.Optimal { objective; x } ->
                (* The restored point must be feasible for the original. *)
                let restored = r.Lp.Presolve.restore x in
                if Lp.Problem.max_violation p restored > 1e-6 then None
                else Some (objective +. r.Lp.Presolve.offset)
              | _ -> None
          in
          (match red with
          | Some v -> Float.abs (v -. orig) <= 1e-6 *. (1. +. Float.abs orig)
          | None -> false)
        | _ -> false))

let prop_pdhg_bound_below_simplex =
  QCheck2.Test.make ~count:40
    ~name:"pdhg certified bound <= simplex optimum on random feasible LPs"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed in
      let nvars = 2 + Util.Prng.int rng 6 in
      let nrows = 1 + Util.Prng.int rng 6 in
      let p = random_feasible_lp rng ~nvars ~nrows in
      match Lp.Simplex.solve p with
      | Lp.Simplex.Optimal { objective; _ } ->
        let out = Lp.Pdhg.solve ~options:pdhg_options p in
        out.best_bound <= objective +. 1e-5
        && (not out.converged
           || Float.abs (out.best_bound -. objective)
              <= 1e-3 *. (1. +. Float.abs objective))
      | Infeasible | Unbounded -> false (* feasible & bounded by design *))

let prop_simplex_solution_feasible =
  QCheck2.Test.make ~count:60
    ~name:"simplex solutions satisfy all constraints"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 7) in
      let nvars = 2 + Util.Prng.int rng 6 in
      let nrows = 1 + Util.Prng.int rng 6 in
      let p = random_feasible_lp rng ~nvars ~nrows in
      match Lp.Simplex.solve p with
      | Lp.Simplex.Optimal { x; _ } -> Lp.Problem.max_violation p x < 1e-6
      | Infeasible | Unbounded -> false)

(* --- sparse matrix tests ---------------------------------------------- *)

let test_sparse_roundtrip () =
  let a =
    Lp.Sparse.of_row_list ~rows:3 ~cols:4
      [|
        [ (0, 1.); (2, -2.) ];
        [ (1, 3.); (1, 1.); (3, 0.5) ];  (* duplicate col summed: 4. *)
        [ (0, 0.) ];  (* explicit zero dropped *)
      |]
  in
  Alcotest.(check int) "nnz" 4 (Lp.Sparse.nnz a);
  let x = [| 1.; 2.; 3.; 4. |] in
  let y = Array.make 3 0. in
  Lp.Sparse.mul a x y;
  check_float "row0" (-5.) y.(0);
  check_float "row1" 10. y.(1);
  check_float "row2" 0. y.(2);
  let z = Array.make 4 0. in
  Lp.Sparse.mul_t a [| 1.; 1.; 1. |] z;
  check_float "col0" 1. z.(0);
  check_float "col1" 4. z.(1);
  check_float "col2" (-2.) z.(2);
  check_float "col3" 0.5 z.(3)

let test_sparse_rejects_nonfinite () =
  let expect_reject what rows =
    match Lp.Sparse.of_row_list ~rows:(Array.length rows) ~cols:2 rows with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  expect_reject "NaN coefficient" [| [ (0, Float.nan) ] |];
  expect_reject "+inf coefficient" [| [ (1, Float.infinity) ] |];
  expect_reject "-inf coefficient" [| [ (0, 1.); (1, Float.neg_infinity) ] |];
  (* A NaN must be rejected even where the old path would have summed or
     dropped it (duplicate entries, explicit zeros elsewhere). *)
  expect_reject "NaN duplicate" [| [ (0, Float.nan); (0, Float.nan) ] |]

let test_problem_violation () =
  let p =
    build_problem
      [ ("x", 0., 1., 1.) ]
      [ (Lp.Problem.Ge, 2., [ (0, 1.) ]) ]
  in
  check_float "violation of x=0" 2. (Lp.Problem.max_violation p [| 0. |]);
  check_float "violation of x=1" 1. (Lp.Problem.max_violation p [| 1. |]);
  check_float "bound violation of x=3" 2. (Lp.Problem.max_violation p [| 3. |])

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_pdhg_bound_below_simplex; prop_simplex_solution_feasible ]
  in
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "box max" `Quick test_simplex_box_max;
          Alcotest.test_case "diet" `Quick test_simplex_diet;
          Alcotest.test_case "equality" `Quick test_simplex_equality;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "shifted lower bounds" `Quick
            test_simplex_shifted_lower_bounds;
          Alcotest.test_case "set-cover LP relaxation" `Quick
            test_simplex_set_cover_lp;
          Alcotest.test_case "degenerate (Beale)" `Quick test_simplex_degenerate;
        ] );
      ( "pdhg",
        [
          Alcotest.test_case "matches simplex" `Quick
            test_pdhg_matches_simplex_small;
          Alcotest.test_case "equality rows" `Quick test_pdhg_equality_rows;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "valid for any dual" `Quick
            test_certificate_is_valid_for_any_dual;
          Alcotest.test_case "rejects Le rows" `Quick
            test_certificate_rejects_le_rows;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "fixed vars" `Quick test_presolve_fixed_vars;
          Alcotest.test_case "singleton rows" `Quick
            test_presolve_singleton_row_tightens;
          Alcotest.test_case "infeasible bounds" `Quick
            test_presolve_detects_infeasible_bounds;
          Alcotest.test_case "unreferenced vars" `Quick
            test_presolve_unreferenced_vars;
          Alcotest.test_case "unchanged" `Quick test_presolve_unchanged;
          QCheck_alcotest.to_alcotest prop_presolve_preserves_optimum;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "roundtrip" `Quick test_sparse_roundtrip;
          Alcotest.test_case "rejects non-finite coefficients" `Quick
            test_sparse_rejects_nonfinite;
          Alcotest.test_case "violations" `Quick test_problem_violation;
        ] );
      ("properties", qsuite);
    ]
