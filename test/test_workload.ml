(* Tests for the workload substrate: Zipf fitting, traces, demand
   bucketing, the WEB/GROUP generators, and object aggregation. *)

let rng () = Util.Prng.create ~seed:77

(* --- zipf ---------------------------------------------------------------- *)

let test_harmonic () =
  Alcotest.(check (float 1e-9)) "H_1" 1. (Workload.Zipf.harmonic ~n:1 ~s:1.);
  Alcotest.(check (float 1e-9)) "H_3 s=1" (1. +. 0.5 +. (1. /. 3.))
    (Workload.Zipf.harmonic ~n:3 ~s:1.);
  Alcotest.(check (float 1e-9)) "H_3 s=0" 3. (Workload.Zipf.harmonic ~n:3 ~s:0.)

let test_frequencies_normalized () =
  let f = Workload.Zipf.frequencies ~n:100 ~s:0.8 in
  Alcotest.(check (float 1e-9)) "sums to 1" 1. (Util.Vecops.sum f);
  for i = 1 to 99 do
    Alcotest.(check bool) "monotone" true (f.(i) <= f.(i - 1))
  done

let test_fit_mandelbrot_web_marginals () =
  (* The paper's WEB marginals: 1000 objects, 300K requests, max 36K,
     min 1. *)
  let m =
    Workload.Zipf.fit_mandelbrot ~n:1000 ~total:300_000. ~max_count:36_000.
      ~min_count:1.
  in
  Alcotest.(check (float 1.)) "rank 1" 36_000. (Workload.Zipf.mandelbrot_count m 1);
  Alcotest.(check (float 0.01)) "rank 1000" 1. (Workload.Zipf.mandelbrot_count m 1000);
  let total = ref 0. in
  for r = 1 to 1000 do
    total := !total +. Workload.Zipf.mandelbrot_count m r
  done;
  Alcotest.(check bool) "total within 0.5%" true
    (Float.abs (!total -. 300_000.) < 1_500.)

let test_counts_preserve_total_and_shape () =
  let m =
    Workload.Zipf.fit_mandelbrot ~n:100 ~total:30_000. ~max_count:3_600.
      ~min_count:1.
  in
  let counts = Workload.Zipf.counts m ~n:100 in
  let total = Array.fold_left ( + ) 0 counts in
  Alcotest.(check bool) "total close" true (abs (total - 30_000) <= 150);
  Alcotest.(check bool) "every rank >= 1" true (Array.for_all (fun c -> c >= 1) counts);
  Alcotest.(check bool) "head biggest" true
    (Array.for_all (fun c -> c <= counts.(0)) counts)

let test_fit_rejects_impossible () =
  (* total >= n * max is unrepresentable *)
  Alcotest.check_raises "too big"
    (Invalid_argument "Zipf.fit_mandelbrot: total out of representable range")
    (fun () ->
      ignore
        (Workload.Zipf.fit_mandelbrot ~n:10 ~total:1000. ~max_count:10.
           ~min_count:1.))

(* --- trace ---------------------------------------------------------------- *)

let test_trace_of_events_sorts () =
  let t =
    Workload.Trace.of_events ~nodes:2 ~objects:3 ~duration_s:10.
      [
        (5., 0, 1, Workload.Trace.Read);
        (1., 1, 2, Workload.Trace.Read);
        (3., 0, 0, Workload.Trace.Write);
      ]
  in
  Alcotest.(check int) "length" 3 (Workload.Trace.length t);
  Alcotest.(check (float 1e-9)) "first time" 1. (Workload.Trace.time t 0);
  Alcotest.(check int) "first node" 1 (Workload.Trace.node t 0);
  Alcotest.(check int) "reads" 2 (Workload.Trace.read_count t);
  Alcotest.(check int) "writes" 1 (Workload.Trace.write_count t)

let test_trace_validation () =
  Alcotest.check_raises "bad node"
    (Invalid_argument "Trace: node out of range") (fun () ->
      ignore
        (Workload.Trace.of_events ~nodes:1 ~objects:1 ~duration_s:1.
           [ (0., 5, 0, Workload.Trace.Read) ]))

let test_trace_remap () =
  let t =
    Workload.Trace.of_events ~nodes:3 ~objects:1 ~duration_s:1.
      [ (0., 0, 0, Workload.Trace.Read); (0.5, 2, 0, Workload.Trace.Read) ]
  in
  let t' = Workload.Trace.remap_nodes t ~mapping:[| 1; 1; 1 |] in
  Alcotest.(check int) "node 0 remapped" 1 (Workload.Trace.node t' 0);
  Alcotest.(check int) "node 2 remapped" 1 (Workload.Trace.node t' 1)

(* --- demand ---------------------------------------------------------------- *)

let test_demand_of_trace_buckets () =
  (* 4 intervals over 8 seconds: interval length 2s. *)
  let t =
    Workload.Trace.of_events ~nodes:2 ~objects:2 ~duration_s:8.
      [
        (0.1, 0, 0, Workload.Trace.Read);
        (1.9, 0, 0, Workload.Trace.Read);
        (2.1, 0, 0, Workload.Trace.Read);
        (7.9, 1, 1, Workload.Trace.Read);
        (3.0, 1, 1, Workload.Trace.Write);
      ]
  in
  let d = Workload.Demand.of_trace ~intervals:4 t in
  Alcotest.(check (float 1e-9)) "interval 0 count" 2.
    (Workload.Demand.read_at d ~node:0 ~interval:0 ~object_id:0);
  Alcotest.(check (float 1e-9)) "interval 1 count" 1.
    (Workload.Demand.read_at d ~node:0 ~interval:1 ~object_id:0);
  Alcotest.(check (float 1e-9)) "absent" 0.
    (Workload.Demand.read_at d ~node:1 ~interval:0 ~object_id:0);
  Alcotest.(check (float 1e-9)) "last interval" 1.
    (Workload.Demand.read_at d ~node:1 ~interval:3 ~object_id:1);
  Alcotest.(check (float 1e-9)) "total reads" 4. (Workload.Demand.total_reads d);
  Alcotest.(check (option int)) "first read of obj 0" (Some 0)
    (Workload.Demand.first_read_interval d 0);
  Alcotest.(check (option int)) "last read of obj 0" (Some 1)
    (Workload.Demand.last_read_interval d 0);
  Alcotest.(check (option int)) "first access of node 1 obj 1" (Some 3)
    (Workload.Demand.first_access_of_node d ~object_id:1 ~node:1)

let test_demand_node_totals () =
  let t =
    Workload.Trace.of_events ~nodes:2 ~objects:1 ~duration_s:4.
      [
        (0., 0, 0, Workload.Trace.Read);
        (1., 0, 0, Workload.Trace.Read);
        (2., 1, 0, Workload.Trace.Read);
      ]
  in
  let d = Workload.Demand.of_trace ~intervals:2 t in
  let totals = Workload.Demand.node_read_totals d in
  Alcotest.(check (float 1e-9)) "node 0" 2. totals.(0);
  Alcotest.(check (float 1e-9)) "node 1" 1. totals.(1)

let test_demand_remap_merges () =
  let t =
    Workload.Trace.of_events ~nodes:3 ~objects:1 ~duration_s:2.
      [
        (0., 0, 0, Workload.Trace.Read);
        (0.5, 1, 0, Workload.Trace.Read);
        (1.5, 2, 0, Workload.Trace.Read);
      ]
  in
  let d = Workload.Demand.of_trace ~intervals:2 t in
  let d' = Workload.Demand.remap_nodes d ~mapping:[| 1; 1; 1 |] in
  Alcotest.(check (float 1e-9)) "merged interval 0" 2.
    (Workload.Demand.read_at d' ~node:1 ~interval:0 ~object_id:0);
  Alcotest.(check (float 1e-9)) "merged interval 1" 1.
    (Workload.Demand.read_at d' ~node:1 ~interval:1 ~object_id:0);
  Alcotest.(check (float 1e-9)) "node 0 empty" 0.
    (Workload.Demand.read_at d' ~node:0 ~interval:0 ~object_id:0);
  Alcotest.(check (float 1e-9)) "total preserved" 3.
    (Workload.Demand.total_reads d')

let test_demand_scale () =
  let t =
    Workload.Trace.of_events ~nodes:1 ~objects:1 ~duration_s:1.
      [ (0., 0, 0, Workload.Trace.Read) ]
  in
  let d = Workload.Demand.of_trace ~intervals:1 t in
  let d' = Workload.Demand.scale_counts d ~factor:2.5 in
  Alcotest.(check (float 1e-9)) "scaled" 2.5 (Workload.Demand.total_reads d')

(* --- generators -------------------------------------------------------------- *)

let small_web_spec =
  Workload.Synthesize.scale_spec Workload.Synthesize.web_spec ~factor:0.1

let small_group_spec =
  Workload.Synthesize.scale_spec Workload.Synthesize.group_spec ~factor:0.01

let test_web_generator_marginals () =
  let t = Workload.Synthesize.web ~rng:(rng ()) small_web_spec in
  Alcotest.(check int) "nodes" 20 (Workload.Trace.node_count t);
  Alcotest.(check int) "objects" 100 (Workload.Trace.object_count t);
  let total = Workload.Trace.length t in
  Alcotest.(check bool) "total near 30000" true (abs (total - 30_000) < 600);
  (* Per-object counts: max should be near the spec's max. *)
  let counts = Array.make 100 0 in
  Workload.Trace.iter
    (fun ~time:_ ~node:_ ~object_id ~kind:_ ->
      counts.(object_id) <- counts.(object_id) + 1)
    t;
  let cmax = Array.fold_left max 0 counts in
  Alcotest.(check bool) "max near 3600" true (abs (cmax - 3_600) < 180);
  let cmin = Array.fold_left min max_int counts in
  Alcotest.(check bool) "tail has rare objects" true (cmin <= 5)

let test_group_generator_marginals () =
  let t = Workload.Synthesize.group ~rng:(rng ()) small_group_spec in
  let objects = Workload.Trace.object_count t in
  let counts = Array.make objects 0 in
  Workload.Trace.iter
    (fun ~time:_ ~node:_ ~object_id ~kind:_ ->
      counts.(object_id) <- counts.(object_id) + 1)
    t;
  let spec = small_group_spec in
  Alcotest.(check bool) "all objects popular" true
    (Array.for_all (fun c -> c >= spec.min_object_requests - 1) counts);
  Alcotest.(check int) "pinned max" spec.max_object_requests counts.(0);
  let total = Array.fold_left ( + ) 0 counts in
  Alcotest.(check bool) "total within 5%" true
    (abs (total - spec.total_requests)
    < (spec.total_requests / 20) + objects)

let test_all_nodes_active () =
  let t = Workload.Synthesize.group ~rng:(rng ()) small_group_spec in
  let active = Array.make 20 false in
  Workload.Trace.iter
    (fun ~time:_ ~node ~object_id:_ ~kind:_ -> active.(node) <- true)
    t;
  Alcotest.(check bool) "all nodes generate requests" true
    (Array.for_all Fun.id active)

let test_node_weights () =
  let w = Workload.Synthesize.node_weights ~rng:(rng ()) ~nodes:10 ~skew:0.8 in
  Alcotest.(check (float 1e-9)) "normalized" 1. (Util.Vecops.sum w);
  Alcotest.(check bool) "uneven" true
    (Array.fold_left Float.max 0. w > 2. *. Array.fold_left Float.min 1. w)

let test_with_writes () =
  let t = Workload.Synthesize.web ~rng:(rng ()) small_web_spec in
  let t' = Workload.Synthesize.with_writes ~rng:(rng ()) ~write_fraction:0.3 t in
  let frac =
    float_of_int (Workload.Trace.write_count t')
    /. float_of_int (Workload.Trace.length t')
  in
  Alcotest.(check bool) "about 30% writes" true (Float.abs (frac -. 0.3) < 0.03)


(* --- trace serialization -------------------------------------------------- *)

let test_trace_io_roundtrip () =
  let t =
    Workload.Trace.of_events ~nodes:3 ~objects:5 ~duration_s:100.
      [
        (1.5, 0, 2, Workload.Trace.Read);
        (2.25, 1, 4, Workload.Trace.Write);
        (99.9, 2, 0, Workload.Trace.Read);
      ]
  in
  let t2 = Workload.Trace_io.of_string (Workload.Trace_io.to_string t) in
  Alcotest.(check int) "length" (Workload.Trace.length t) (Workload.Trace.length t2);
  Alcotest.(check int) "nodes" 3 (Workload.Trace.node_count t2);
  Alcotest.(check int) "objects" 5 (Workload.Trace.object_count t2);
  Alcotest.(check (float 1e-9)) "duration" 100. (Workload.Trace.duration_s t2);
  for i = 0 to Workload.Trace.length t - 1 do
    Alcotest.(check (float 1e-9)) "time" (Workload.Trace.time t i)
      (Workload.Trace.time t2 i);
    Alcotest.(check int) "node" (Workload.Trace.node t i) (Workload.Trace.node t2 i);
    Alcotest.(check int) "object" (Workload.Trace.object_id t i)
      (Workload.Trace.object_id t2 i);
    Alcotest.(check bool) "kind" true
      (Workload.Trace.kind t i = Workload.Trace.kind t2 i)
  done

let test_trace_io_file_roundtrip () =
  let t = Workload.Synthesize.web ~rng:(rng ()) small_web_spec in
  let path = Filename.temp_file "trace" ".csv" in
  Workload.Trace_io.save t ~path;
  let t2 = Workload.Trace_io.load ~path in
  Sys.remove path;
  Alcotest.(check int) "length preserved" (Workload.Trace.length t)
    (Workload.Trace.length t2)

let test_trace_io_rejects_garbage () =
  (match Workload.Trace_io.of_string "not a trace" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "should reject");
  let bad = "# replica-select trace v1 nodes=2 objects=2 duration_s=10\ntime_s,node,object,kind\n1.0,0,0,x\n" in
  match Workload.Trace_io.of_string bad with
  | exception Failure msg ->
    Alcotest.(check bool) "line number in error" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "should reject unknown kind"

let trace_header =
  "# replica-select trace v1 nodes=2 objects=2 duration_s=10\n\
   time_s,node,object,kind\n"

let test_trace_io_structured_errors () =
  (match Workload.Trace_io.parse "garbage" with
  | Error e ->
    Alcotest.(check int) "whole-file error" 0 e.Workload.Trace_io.line
  | Ok _ -> Alcotest.fail "garbage must be rejected");
  (match
     Workload.Trace_io.parse
       "# replica-select trace v1 nodes=2 objects=2\ntime_s,node,object,kind\n"
   with
  | Error e ->
    Alcotest.(check int) "header error line" 1 e.Workload.Trace_io.line;
    Alcotest.(check string) "missing field named"
      "missing header field duration_s" e.Workload.Trace_io.msg
  | Ok _ -> Alcotest.fail "missing duration must be rejected");
  (match Workload.Trace_io.parse (trace_header ^ "nan,0,0,r\n") with
  | Error e ->
    Alcotest.(check int) "NaN time line" 3 e.Workload.Trace_io.line;
    Alcotest.(check string) "NaN time message" "non-finite time"
      e.Workload.Trace_io.msg
  | Ok _ -> Alcotest.fail "NaN timestamp must be rejected");
  (match Workload.Trace_io.parse (trace_header ^ "-1,0,0,r\n") with
  | Error e ->
    Alcotest.(check string) "negative time" "negative time"
      e.Workload.Trace_io.msg
  | Ok _ -> Alcotest.fail "negative timestamp must be rejected");
  (match Workload.Trace_io.parse (trace_header ^ "1.0,5,0,r\n") with
  | Error e ->
    Alcotest.(check string) "node range" "node 5 out of range"
      e.Workload.Trace_io.msg
  | Ok _ -> Alcotest.fail "out-of-range node must be rejected");
  (match Workload.Trace_io.parse (trace_header ^ "1.0,0,7,w\n") with
  | Error e ->
    Alcotest.(check string) "object range" "object 7 out of range"
      e.Workload.Trace_io.msg
  | Ok _ -> Alcotest.fail "out-of-range object must be rejected");
  match Workload.Trace_io.parse (trace_header ^ "1.0,0,0\n") with
  | Error e ->
    Alcotest.(check string) "truncated record"
      "expected 4 comma-separated fields" e.Workload.Trace_io.msg
  | Ok _ -> Alcotest.fail "truncated record must be rejected"

let test_trace_io_load_result_missing_file () =
  match Workload.Trace_io.load_result ~path:"/nonexistent/trace.csv" with
  | Error e ->
    Alcotest.(check int) "whole-file error" 0 e.Workload.Trace_io.line;
    Alcotest.(check string) "file carried" "/nonexistent/trace.csv"
      e.Workload.Trace_io.file
  | Ok _ -> Alcotest.fail "missing file must be an error"


(* --- profiling ------------------------------------------------------------ *)

let test_profile_counts () =
  let t =
    Workload.Trace.of_events ~nodes:3 ~objects:4 ~duration_s:10.
      [
        (0., 0, 0, Workload.Trace.Read);
        (1., 0, 0, Workload.Trace.Read);
        (2., 0, 1, Workload.Trace.Read);
        (3., 1, 0, Workload.Trace.Read);
        (4., 1, 0, Workload.Trace.Write);
      ]
  in
  let p = Workload.Profile.of_trace t in
  Alcotest.(check int) "reads" 4 p.Workload.Profile.reads;
  Alcotest.(check int) "writes" 1 p.Workload.Profile.writes;
  Alcotest.(check int) "objects touched" 2 p.Workload.Profile.objects_touched;
  Alcotest.(check int) "top object" 3 p.Workload.Profile.top_object_reads;
  Alcotest.(check int) "active nodes" 2 p.Workload.Profile.active_nodes;
  (* Distinct (site, object) pairs: (0,0), (0,1), (1,0) -> 3 of 4 reads. *)
  Alcotest.(check (float 1e-9)) "cold misses" 0.75
    p.Workload.Profile.cold_miss_fraction;
  (* Node 1: 1 read, 1 first access -> worst cold-miss fraction 1. *)
  Alcotest.(check (float 1e-9)) "worst user" 1.
    p.Workload.Profile.worst_user_cold_miss_fraction;
  Alcotest.(check int) "max working set" 2 p.Workload.Profile.max_working_set

let test_profile_locality_reduces_working_sets () =
  (* The locality model concentrates tail objects, shrinking working sets
     and cold-miss fractions. *)
  let gen h seed =
    let rng = Util.Prng.create ~seed in
    Workload.Synthesize.web ~rng
      { small_web_spec with locality_h = h }
  in
  let without = Workload.Profile.of_trace (gen 0. 5) in
  let with_loc = Workload.Profile.of_trace (gen 300. 5) in
  Alcotest.(check bool) "smaller mean working set" true
    (with_loc.Workload.Profile.mean_working_set
    < without.Workload.Profile.mean_working_set);
  Alcotest.(check bool) "fewer cold misses" true
    (with_loc.Workload.Profile.cold_miss_fraction
    < without.Workload.Profile.cold_miss_fraction)

(* --- aggregation ---------------------------------------------------------------- *)

let test_aggregate_exact_merges_identical () =
  (* Objects 0 and 1 have identical patterns; object 2 differs. *)
  let cell n i c : Workload.Demand.cell = { node = n; interval = i; count = c } in
  let d =
    Workload.Demand.create ~nodes:2 ~intervals:2 ~interval_s:3600.
      ~reads:
        [|
          [| cell 0 0 2.; cell 1 1 1. |];
          [| cell 0 0 2.; cell 1 1 1. |];
          [| cell 0 1 5. |];
        |]
      ()
  in
  let m = Workload.Aggregate.exact d in
  Alcotest.(check int) "two classes" 2 m.demand.objects;
  Alcotest.(check int) "obj0 and obj1 same class" m.class_of_object.(0)
    m.class_of_object.(1);
  Alcotest.(check bool) "obj2 different" true
    (m.class_of_object.(2) <> m.class_of_object.(0));
  (* Weighted total demand must be preserved. *)
  Alcotest.(check (float 1e-9)) "total preserved"
    (Workload.Demand.total_reads d)
    (Workload.Demand.total_reads m.demand);
  let cls = m.class_of_object.(0) in
  Alcotest.(check (float 1e-9)) "class weight" 2. m.demand.weight.(cls)

let test_aggregate_by_popularity () =
  let t = Workload.Synthesize.web ~rng:(rng ()) small_web_spec in
  let d = Workload.Demand.of_trace ~intervals:6 t in
  let m = Workload.Aggregate.by_popularity ~classes:8 d in
  Alcotest.(check bool) "fewer classes" true (m.demand.objects <= 12);
  Alcotest.(check bool) "total approximately preserved" true
    (Float.abs
       (Workload.Demand.total_reads m.demand -. Workload.Demand.total_reads d)
    < 1e-6 *. Workload.Demand.total_reads d)

let prop_aggregate_preserves_totals =
  QCheck2.Test.make ~count:30 ~name:"aggregation preserves weighted demand"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let r = Util.Prng.create ~seed in
      let spec =
        Workload.Synthesize.scale_spec Workload.Synthesize.web_spec
          ~factor:0.02
      in
      let t = Workload.Synthesize.web ~rng:r spec in
      let d = Workload.Demand.of_trace ~intervals:4 t in
      let exact = Workload.Aggregate.exact d in
      let pop = Workload.Aggregate.by_popularity ~classes:5 d in
      let total = Workload.Demand.total_reads d in
      Float.abs (Workload.Demand.total_reads exact.demand -. total)
      < 1e-6 *. total
      && Float.abs (Workload.Demand.total_reads pop.demand -. total)
         < 1e-6 *. total)

let prop_zipf_frequencies_normalized_monotone =
  QCheck2.Test.make ~count:200
    ~name:"zipf frequencies are a monotone probability distribution"
    QCheck2.Gen.(tup2 (int_range 1 200) (float_range 0. 3.))
    (fun (n, s) ->
      let f = Workload.Zipf.frequencies ~n ~s in
      let sum = Array.fold_left ( +. ) 0. f in
      Array.length f = n
      && Float.abs (sum -. 1.) < 1e-9
      && Array.for_all (fun p -> p > 0.) f
      && (let mono = ref true in
          for i = 0 to n - 2 do
            if f.(i) < f.(i + 1) then mono := false
          done;
          !mono))

let prop_zipf_fit_and_counts =
  QCheck2.Test.make ~count:100
    ~name:"mandelbrot fit honors marginals; integer counts preserve total"
    QCheck2.Gen.(
      tup4 (int_range 2 300) (float_range 1. 5.) (float_range 2. 10_000.)
        (float_range 0.05 0.95))
    (fun (n, min_count, spread, t) ->
      let max_count = min_count +. spread in
      let nf = float_of_int n in
      (* Any total strictly between the degenerate end points is a legal
         request (out-of-reach totals are clamped by the fitter). *)
      let total =
        (nf *. min_count) +. (t *. nf *. (max_count -. min_count))
      in
      let m = Workload.Zipf.fit_mandelbrot ~n ~total ~max_count ~min_count in
      let head = Workload.Zipf.mandelbrot_count m 1 in
      let tail = Workload.Zipf.mandelbrot_count m n in
      let raw_total = ref 0. in
      let mono = ref true and prev = ref infinity in
      for r = 1 to n do
        let c = Workload.Zipf.mandelbrot_count m r in
        raw_total := !raw_total +. c;
        if c > !prev +. 1e-9 then mono := false;
        prev := c
      done;
      let counts = Workload.Zipf.counts m ~n in
      let count_total = float_of_int (Array.fold_left ( + ) 0 counts) in
      Float.abs (head -. max_count) < 1e-6 *. max_count
      (* The tail marginal is found by root-finding; in the clamped
         near-flat regime it is honored to ~0.5% relative. *)
      && Float.abs (tail -. min_count) < 1e-2 *. min_count
      && !mono
      && Array.length counts = n
      && Array.for_all (fun c -> c >= 1) counts
      (* min_count >= 1 keeps every floor positive, so the largest-
         fractional-part redistribution lands on the law's rounded
         total (up to the rounding knife-edge of the float sum). *)
      && Float.abs (count_total -. !raw_total) <= 0.5 +. 1e-9 *. !raw_total)

(* --- incremental demand ----------------------------------------------------- *)

(* Demand.extend is an O(delta) continuation of of_trace: splitting any
   trace at an interval boundary and folding the suffix through extend
   must reproduce the whole-trace demand byte for byte. Exact-float
   arithmetic throughout: interval width 16s, event times multiples of
   0.25, so bucketing never sits on a rounding knife-edge. *)
let prop_demand_extend_equals_of_trace =
  QCheck2.Test.make ~count:200
    ~name:"Demand.extend = of_trace on the concatenated trace"
    QCheck2.Gen.(
      tup4 (int_range 2 8) (int_range 1 7) (int_range 0 120)
        (int_range 0 1_000_000))
    (fun (total_intervals, split_raw, nevents, seed) ->
      let interval_s = 16. in
      let duration_s = float_of_int total_intervals *. interval_s in
      let split = 1 + (split_raw mod (total_intervals - 1)) in
      let rng = ref seed in
      let rand m =
        rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
        !rng mod m
      in
      let nodes = 2 + rand 4 and objects = 1 + rand 8 in
      let events =
        List.init nevents (fun _ ->
            let time = 0.25 *. float_of_int (rand (total_intervals * 64)) in
            let kind =
              if rand 10 = 0 then Workload.Trace.Write else Workload.Trace.Read
            in
            (time, rand nodes, rand objects, kind))
      in
      let trace =
        Workload.Trace.of_events ~nodes ~objects ~duration_s events
      in
      let full = Workload.Demand.of_trace ~intervals:total_intervals trace in
      let boundary = float_of_int split *. interval_s in
      let n = Workload.Trace.length trace in
      let cut = ref 0 in
      while !cut < n && Workload.Trace.time trace !cut < boundary do
        incr cut
      done;
      let prefix = Workload.Trace.sub trace ~lo:0 ~hi:!cut ~duration_s:boundary in
      let suffix = Workload.Trace.sub trace ~lo:!cut ~hi:n ~duration_s in
      let d0 =
        Workload.Demand.of_trace ~interval_s ~intervals:split prefix
      in
      let d = Workload.Demand.extend d0 suffix in
      Marshal.to_string d [ Marshal.No_sharing ]
      = Marshal.to_string full [ Marshal.No_sharing ])

let test_demand_extend_rejects_bad_horizon () =
  let t =
    Workload.Trace.of_events ~nodes:2 ~objects:1 ~duration_s:8.
      [ (1., 0, 0, Workload.Trace.Read) ]
  in
  let d = Workload.Demand.of_trace ~intervals:4 t in
  (* A "continuation" whose horizon does not grow is rejected. *)
  let bad = Workload.Trace.sub t ~lo:0 ~hi:1 ~duration_s:8. in
  Alcotest.(check bool) "same-horizon delta rejected" true
    (match Workload.Demand.extend d bad with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_incremental_stats () =
  let t =
    Workload.Trace.of_events ~nodes:2 ~objects:3 ~duration_s:8.
      [
        (0.5, 0, 0, Workload.Trace.Read);
        (2.5, 1, 1, Workload.Trace.Read);
        (3.0, 0, 1, Workload.Trace.Write);
        (6.5, 1, 2, Workload.Trace.Read);
      ]
  in
  (* Two chunks of two intervals each (2s buckets). *)
  let c1 = Workload.Trace.sub t ~lo:0 ~hi:2 ~duration_s:4. in
  let c2 = Workload.Trace.sub t ~lo:2 ~hi:4 ~duration_s:8. in
  let i0 = Workload.Incremental.create ~nodes:2 ~interval_s:2. in
  let i1 = Workload.Incremental.extend i0 c1 in
  let i2 = Workload.Incremental.extend i1 c2 in
  Alcotest.(check int) "intervals" 4 (Workload.Incremental.intervals i2);
  Alcotest.(check int) "chunks" 2 (Workload.Incremental.chunks i2);
  Alcotest.(check int) "events" 4 (Workload.Incremental.events i2);
  Alcotest.(check int) "reads" 3 (Workload.Incremental.reads i2);
  Alcotest.(check int) "writes" 1 (Workload.Incremental.writes i2);
  Alcotest.(check int) "objects" 3 (Workload.Incremental.object_count i2);
  Alcotest.(check (option int)) "first read of 2" (Some 3)
    (Workload.Incremental.first_read_interval i2 2);
  (* Object 0's only read is in interval 0, outside a 2-interval window
     ending at interval 3; objects 1 and 2 are inside it? Object 1's
     last read is interval 1 — also outside. Only object 2 qualifies. *)
  Alcotest.(check int) "working set (window 2)" 1
    (Workload.Incremental.working_set i2 ~window:2)

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "harmonic" `Quick test_harmonic;
          Alcotest.test_case "frequencies" `Quick test_frequencies_normalized;
          Alcotest.test_case "fit WEB marginals" `Quick
            test_fit_mandelbrot_web_marginals;
          Alcotest.test_case "integer counts" `Quick
            test_counts_preserve_total_and_shape;
          Alcotest.test_case "rejects impossible fit" `Quick
            test_fit_rejects_impossible;
          QCheck_alcotest.to_alcotest prop_zipf_frequencies_normalized_monotone;
          QCheck_alcotest.to_alcotest prop_zipf_fit_and_counts;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sorting" `Quick test_trace_of_events_sorts;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "remap" `Quick test_trace_remap;
        ] );
      ( "demand",
        [
          Alcotest.test_case "bucketing" `Quick test_demand_of_trace_buckets;
          Alcotest.test_case "node totals" `Quick test_demand_node_totals;
          Alcotest.test_case "remap merges" `Quick test_demand_remap_merges;
          Alcotest.test_case "scale" `Quick test_demand_scale;
        ] );
      ( "incremental",
        [
          QCheck_alcotest.to_alcotest prop_demand_extend_equals_of_trace;
          Alcotest.test_case "rejects stale horizon" `Quick
            test_demand_extend_rejects_bad_horizon;
          Alcotest.test_case "running stats" `Quick test_incremental_stats;
        ] );
      ( "generators",
        [
          Alcotest.test_case "WEB marginals" `Quick test_web_generator_marginals;
          Alcotest.test_case "GROUP marginals" `Quick
            test_group_generator_marginals;
          Alcotest.test_case "all nodes active" `Quick test_all_nodes_active;
          Alcotest.test_case "node weights" `Quick test_node_weights;
          Alcotest.test_case "write injection" `Quick test_with_writes;
        ] );
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_profile_counts;
          Alcotest.test_case "locality effect" `Quick
            test_profile_locality_reduces_working_sets;
        ] );
      ( "trace-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick
            test_trace_io_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_trace_io_rejects_garbage;
          Alcotest.test_case "structured errors" `Quick
            test_trace_io_structured_errors;
          Alcotest.test_case "missing file" `Quick
            test_trace_io_load_result_missing_file;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "exact merge" `Quick
            test_aggregate_exact_merges_identical;
          Alcotest.test_case "popularity buckets" `Quick
            test_aggregate_by_popularity;
          QCheck_alcotest.to_alcotest prop_aggregate_preserves_totals;
        ] );
    ]
