(* Tests for the utility substrate: PRNG, priority queue, vector helpers,
   and statistics. *)

let test_prng_determinism () =
  let a = Util.Prng.create ~seed:42 and b = Util.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Prng.bits64 a) (Util.Prng.bits64 b)
  done

let test_prng_copy () =
  let a = Util.Prng.create ~seed:7 in
  ignore (Util.Prng.bits64 a);
  let b = Util.Prng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy tracks original" (Util.Prng.bits64 a)
      (Util.Prng.bits64 b)
  done

let test_prng_split_independence () =
  let a = Util.Prng.create ~seed:1 in
  let child = Util.Prng.split a in
  (* Drawing from the child must not perturb the parent's future stream
     relative to a parent that split and then ignored the child. *)
  let a' = Util.Prng.create ~seed:1 in
  ignore (Util.Prng.split a');
  for _ = 1 to 20 do
    ignore (Util.Prng.bits64 child)
  done;
  for _ = 1 to 20 do
    Alcotest.(check int64) "parent unaffected" (Util.Prng.bits64 a')
      (Util.Prng.bits64 a)
  done

let test_prng_int_range () =
  let rng = Util.Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Util.Prng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_prng_int_rejects_nonpositive () =
  let rng = Util.Prng.create ~seed:3 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Util.Prng.int rng 0))

let test_prng_uniformity () =
  (* Chi-squared-ish sanity: 10 buckets, 10k draws, each bucket within
     30% of expectation. *)
  let rng = Util.Prng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Util.Prng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near 1000" true (c > 700 && c < 1300))
    buckets

let test_pick_weighted () =
  let rng = Util.Prng.create ~seed:5 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Util.Prng.pick_weighted rng ~weights:[| 1.; 2.; 7. |] in
    counts.(i) <- counts.(i) + 1
  done;
  let total = float_of_int (Array.fold_left ( + ) 0 counts) in
  let frac i = float_of_int counts.(i) /. total in
  Alcotest.(check bool) "w0 ~ 0.1" true (Float.abs (frac 0 -. 0.1) < 0.02);
  Alcotest.(check bool) "w1 ~ 0.2" true (Float.abs (frac 1 -. 0.2) < 0.02);
  Alcotest.(check bool) "w2 ~ 0.7" true (Float.abs (frac 2 -. 0.7) < 0.02)

let test_pick_weighted_zero_head () =
  let rng = Util.Prng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "skips zero-weight head" 1
      (Util.Prng.pick_weighted rng ~weights:[| 0.; 3. |])
  done

let test_shuffle_is_permutation () =
  let rng = Util.Prng.create ~seed:9 in
  let a = Array.init 50 (fun i -> i) in
  Util.Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* --- priority queue --------------------------------------------------- *)

let test_pqueue_ordering () =
  let h = Util.Pqueue.create () in
  let rng = Util.Prng.create ~seed:13 in
  let items = Array.init 500 (fun _ -> Util.Prng.float rng 100.) in
  Array.iteri (fun i p -> Util.Pqueue.push h p i) items;
  let last = ref neg_infinity in
  let popped = ref 0 in
  let rec drain () =
    match Util.Pqueue.pop_min h with
    | None -> ()
    | Some (p, _) ->
      Alcotest.(check bool) "non-decreasing" true (p >= !last);
      last := p;
      incr popped;
      drain ()
  in
  drain ();
  Alcotest.(check int) "all popped" 500 !popped

let test_pqueue_empty () =
  let h = Util.Pqueue.create () in
  Alcotest.(check bool) "empty" true (Util.Pqueue.is_empty h);
  Alcotest.(check bool) "pop none" true (Util.Pqueue.pop_min h = None);
  Util.Pqueue.push h 1. "a";
  Alcotest.(check int) "length" 1 (Util.Pqueue.length h);
  Util.Pqueue.clear h;
  Alcotest.(check bool) "cleared" true (Util.Pqueue.is_empty h)

let prop_pqueue_matches_sort =
  QCheck2.Test.make ~count:100 ~name:"pqueue pops in sorted order"
    QCheck2.Gen.(list_size (int_range 0 60) (float_range (-50.) 50.))
    (fun floats ->
      let h = Util.Pqueue.create () in
      List.iteri (fun i p -> Util.Pqueue.push h p i) floats;
      let rec drain acc =
        match Util.Pqueue.pop_min h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare floats)

(* Interleaved pushes and pops against a sorted-list reference model:
   peek/pop must always return the model's minimum, and the multiset
   of priorities pushed must round-trip through the heap exactly. *)
let prop_pqueue_model =
  QCheck2.Test.make ~count:100
    ~name:"pqueue matches a sorted-list model under interleaved ops"
    QCheck2.Gen.(
      list_size (int_range 0 100)
        (oneof [ map Option.some (float_range (-100.) 100.); return None ]))
    (fun ops ->
      let h = Util.Pqueue.create () in
      let model = ref [] (* sorted ascending *) in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun op ->
          match op with
          | Some p ->
            Util.Pqueue.push h p ();
            model := List.sort compare (p :: !model)
          | None -> (
            check
              (Option.map fst (Util.Pqueue.peek_min h)
              = (match !model with [] -> None | p :: _ -> Some p));
            match (Util.Pqueue.pop_min h, !model) with
            | None, [] -> ()
            | Some (p, ()), m :: rest ->
              check (p = m);
              model := rest
            | None, _ :: _ | Some _, [] -> check false))
        ops;
      check (Util.Pqueue.length h = List.length !model);
      let rec drain acc =
        match Util.Pqueue.pop_min h with
        | None -> List.rev acc
        | Some (p, ()) -> drain (p :: acc)
      in
      check (drain [] = !model);
      !ok)

(* --- parallel map ------------------------------------------------------- *)

let test_parallel_order_preserved () =
  let inputs = List.init 20 Fun.id in
  let expected = List.map (fun i -> i * i) inputs in
  Alcotest.(check (list int))
    "jobs=1 (sequential path)" expected
    (Util.Parallel.map_values ~jobs:1 ~f:(fun i -> i * i) inputs);
  Alcotest.(check (list int))
    "jobs=3 (worker pool)" expected
    (Util.Parallel.map_values ~jobs:3 ~f:(fun i -> i * i) inputs);
  Alcotest.(check (list int))
    "more workers than tasks" [ 4; 9 ]
    (Util.Parallel.map_values ~jobs:8 ~f:(fun i -> i * i) [ 2; 3 ])

let test_parallel_empty_and_single () =
  Alcotest.(check (list int))
    "empty" []
    (Util.Parallel.map_values ~jobs:4 ~f:Fun.id []);
  Alcotest.(check (list string))
    "single task" [ "x!" ]
    (Util.Parallel.map_values ~jobs:4 ~f:(fun s -> s ^ "!") [ "x" ])

let test_parallel_task_failure () =
  match
    Util.Parallel.map_values ~jobs:3
      ~f:(fun i -> if i = 2 then failwith "boom" else i)
      [ 0; 1; 2; 3 ]
  with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Util.Parallel.Task_failed { index; message } ->
    Alcotest.(check int) "failing task index" 2 index;
    let contains ~needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      "message carries the exception" true
      (contains ~needle:"boom" message)

let test_parallel_worker_crash_fallback () =
  if Util.Parallel.fork_available then begin
    (* A worker that dies without replying (here: [_exit] mid-task) must
       be detected via EOF on its pipe; the parent then recomputes the
       lost task inline, so the caller still sees every result. *)
    let parent = Unix.getpid () in
    let f i =
      if i = 1 && Unix.getpid () <> parent then Unix._exit 7 else i * 10
    in
    Alcotest.(check (list int))
      "crashed worker's task recomputed inline" [ 0; 10; 20; 30 ]
      (Util.Parallel.map_values ~jobs:2 ~f [ 0; 1; 2; 3 ])
  end

let test_parallel_timeout () =
  if Util.Parallel.fork_available then
    match
      Util.Parallel.map_values ~jobs:2 ~timeout_s:0.3
        ~f:(fun i ->
          if i = 1 then Unix.sleepf 30.;
          i)
        [ 0; 1; 2 ]
    with
    | _ -> Alcotest.fail "expected Task_timeout"
    | exception Util.Parallel.Task_timeout { index; _ } ->
      Alcotest.(check int) "timed-out task index" 1 index

(* --- vector ops -------------------------------------------------------- *)

let test_vecops () =
  Alcotest.(check (float 1e-9)) "dot" 11. (Util.Vecops.dot [| 1.; 2. |] [| 3.; 4. |]);
  let y = [| 1.; 1. |] in
  Util.Vecops.axpy 2. [| 1.; 2. |] y;
  Alcotest.(check (float 1e-9)) "axpy0" 3. y.(0);
  Alcotest.(check (float 1e-9)) "axpy1" 5. y.(1);
  Alcotest.(check (float 1e-9)) "norm_inf" 5. (Util.Vecops.norm_inf [| -5.; 3. |]);
  Alcotest.(check (float 1e-9)) "clamp lo" 0. (Util.Vecops.clamp (-1.) ~lo:0. ~hi:1.);
  Alcotest.(check (float 1e-9)) "clamp hi" 1. (Util.Vecops.clamp 2. ~lo:0. ~hi:1.);
  Alcotest.(check (float 1e-9)) "sum" 6. (Util.Vecops.sum [| 1.; 2.; 3. |])

let test_kahan_sum_precision () =
  (* 10^7 additions of 0.1 stay within 1e-6 of the exact value. *)
  let xs = Array.make 10_000_000 0.1 in
  let s = Util.Vecops.sum xs in
  Alcotest.(check bool) "compensated" true (Float.abs (s -. 1_000_000.) < 1e-6)

(* --- stats ------------------------------------------------------------- *)

let test_stats_summary () =
  let s = Util.Stats.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.(check int) "count" 8 s.count;
  Alcotest.(check (float 1e-9)) "mean" 5. s.mean;
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 s.stddev;
  Alcotest.(check (float 1e-9)) "min" 2. s.min;
  Alcotest.(check (float 1e-9)) "max" 9. s.max

let test_stats_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "median" 3. (Util.Stats.percentile xs 50.);
  Alcotest.(check (float 1e-9)) "p0" 1. (Util.Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Util.Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p25" 2. (Util.Stats.percentile xs 25.)

let test_fraction_within () =
  Alcotest.(check (float 1e-9)) "half" 0.5
    (Util.Stats.fraction_within [| 1.; 2.; 3.; 4. |] ~threshold:2.);
  Alcotest.(check (float 1e-9)) "empty" 1.
    (Util.Stats.fraction_within [||] ~threshold:0.)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split independence" `Quick
            test_prng_split_independence;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int rejects <= 0" `Quick
            test_prng_int_rejects_nonpositive;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "pick_weighted" `Quick test_pick_weighted;
          Alcotest.test_case "pick_weighted zero head" `Quick
            test_pick_weighted_zero_head;
          Alcotest.test_case "shuffle permutation" `Quick
            test_shuffle_is_permutation;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          QCheck_alcotest.to_alcotest prop_pqueue_matches_sort;
          QCheck_alcotest.to_alcotest prop_pqueue_model;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "order preserved" `Quick
            test_parallel_order_preserved;
          Alcotest.test_case "empty and single" `Quick
            test_parallel_empty_and_single;
          Alcotest.test_case "task failure propagates" `Quick
            test_parallel_task_failure;
          Alcotest.test_case "worker crash falls back inline" `Quick
            test_parallel_worker_crash_fallback;
          Alcotest.test_case "timeout kills stuck worker" `Quick
            test_parallel_timeout;
        ] );
      ( "vecops",
        [
          Alcotest.test_case "basics" `Quick test_vecops;
          Alcotest.test_case "kahan sum" `Slow test_kahan_sum_precision;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "fraction_within" `Quick test_fraction_within;
        ] );
    ]
