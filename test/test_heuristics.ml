(* Tests for the deployed heuristics: the LRU cache structure, the
   event-level cache simulator, the centralized greedy placements, and the
   minimal-parameter searches. *)

let cell n i c : Workload.Demand.cell = { node = n; interval = i; count = c }

(* --- LRU cache structure ----------------------------------------------- *)

let test_lru_basic () =
  let c = Heuristics.Lru_cache.create ~capacity:2 in
  Alcotest.(check int) "empty" 0 (Heuristics.Lru_cache.size c);
  Alcotest.(check (option int)) "insert 1" None (Heuristics.Lru_cache.insert c 1);
  Alcotest.(check (option int)) "insert 2" None (Heuristics.Lru_cache.insert c 2);
  Alcotest.(check (list int)) "order 2,1" [ 2; 1 ] (Heuristics.Lru_cache.contents c);
  (* Touch 1 -> becomes MRU; inserting 3 evicts 2. *)
  Alcotest.(check bool) "touch 1" true (Heuristics.Lru_cache.touch c 1);
  Alcotest.(check (option int)) "insert 3 evicts 2" (Some 2)
    (Heuristics.Lru_cache.insert c 3);
  Alcotest.(check (list int)) "order 3,1" [ 3; 1 ] (Heuristics.Lru_cache.contents c);
  Alcotest.(check bool) "2 gone" false (Heuristics.Lru_cache.mem c 2)

let test_lru_duplicate_insert () =
  let c = Heuristics.Lru_cache.create ~capacity:2 in
  ignore (Heuristics.Lru_cache.insert c 1);
  ignore (Heuristics.Lru_cache.insert c 2);
  Alcotest.(check (option int)) "reinsert is refresh" None
    (Heuristics.Lru_cache.insert c 1);
  Alcotest.(check int) "size stays 2" 2 (Heuristics.Lru_cache.size c);
  Alcotest.(check (list int)) "1 refreshed" [ 1; 2 ]
    (Heuristics.Lru_cache.contents c)

let test_lru_zero_capacity () =
  let c = Heuristics.Lru_cache.create ~capacity:0 in
  Alcotest.(check (option int)) "cannot retain" (Some 7)
    (Heuristics.Lru_cache.insert c 7);
  Alcotest.(check int) "still empty" 0 (Heuristics.Lru_cache.size c)

let prop_lru_never_exceeds_capacity =
  QCheck2.Test.make ~count:100 ~name:"lru size <= capacity; eviction is LRU"
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 0 200) (int_range 0 20)))
    (fun (cap, ops) ->
      let c = Heuristics.Lru_cache.create ~capacity:cap in
      (* Reference model: list of keys, most recent first. *)
      let model = ref [] in
      List.for_all
        (fun k ->
          let evicted = Heuristics.Lru_cache.insert c k in
          (if List.mem k !model then
             model := k :: List.filter (fun x -> x <> k) !model
           else begin
             model := k :: !model;
             if List.length !model > cap then begin
               let rec split acc = function
                 | [ last ] -> (List.rev acc, last)
                 | x :: rest -> split (x :: acc) rest
                 | [] -> assert false
               in
               let kept, dropped = split [] !model in
               model := kept;
               ignore dropped
             end
           end);
          Heuristics.Lru_cache.size c <= cap
          && Heuristics.Lru_cache.contents c = !model
          &&
          match evicted with
          | None -> true
          | Some e -> not (List.mem e !model))
        ops)

(* --- event-level cache simulation ---------------------------------------- *)

(* Line 0 -- 1 -- 2 -- 3, 100 ms hops, origin 0, Tlat 150: node 3 misses
   to the origin take 300 ms. *)
let line_system () =
  let g =
    Topology.Graph.of_edges 4 [ (0, 1, 100.); (1, 2, 100.); (2, 3, 100.) ]
  in
  Topology.System.make ~origin:0 g

let simple_trace events =
  Workload.Trace.of_events ~nodes:4 ~objects:3 ~duration_s:4. events

let sim ?(capacity = 2) ?(mode = Heuristics.Event_cache.Local)
    ?(prefetch = false) trace =
  Heuristics.Event_cache.simulate ~system:(line_system ()) ~trace ~intervals:4
    ~costs:Mcperf.Spec.default_costs ~tlat_ms:150. ~capacity ~mode ~prefetch ()

let test_cache_hit_miss_accounting () =
  let t =
    simple_trace
      [
        (0.1, 3, 0, Workload.Trace.Read);  (* miss -> origin, 300ms *)
        (0.2, 3, 0, Workload.Trace.Read);  (* hit, 0ms *)
        (0.3, 3, 1, Workload.Trace.Read);  (* miss *)
        (0.4, 3, 0, Workload.Trace.Read);  (* hit *)
      ]
  in
  let o = sim t in
  Alcotest.(check int) "misses" 2 o.Heuristics.Event_cache.misses;
  Alcotest.(check int) "local hits" 2 o.Heuristics.Event_cache.hits_local;
  Alcotest.(check int) "insertions" 2 o.Heuristics.Event_cache.insertions;
  (* QoS of node 3: 2 of 4 reads within 150ms. *)
  Alcotest.(check (float 1e-9)) "node 3 qos" 0.5 o.Heuristics.Event_cache.qos.(3);
  (* Provisioned cost: capacity 2 on 3 sites for 4 intervals + 2 fills. *)
  Alcotest.(check (float 1e-9)) "provisioned" 26.
    o.Heuristics.Event_cache.provisioned_cost

let test_cache_eviction_under_pressure () =
  let t =
    simple_trace
      [
        (0.1, 3, 0, Workload.Trace.Read);
        (0.2, 3, 1, Workload.Trace.Read);
        (0.3, 3, 2, Workload.Trace.Read);  (* evicts object 0 *)
        (0.4, 3, 0, Workload.Trace.Read);  (* miss again *)
      ]
  in
  let o = sim t in
  Alcotest.(check int) "all four miss" 4 o.Heuristics.Event_cache.misses

let test_origin_node_reads_are_free () =
  let t = simple_trace [ (0.1, 0, 0, Workload.Trace.Read) ] in
  let o = sim t in
  Alcotest.(check int) "no miss at origin" 0 o.Heuristics.Event_cache.misses;
  Alcotest.(check (float 1e-9)) "origin qos" 1. o.Heuristics.Event_cache.qos.(0)

let test_near_origin_miss_is_covered () =
  (* Node 1 is 100 ms from the origin: even misses are within Tlat. *)
  let t = simple_trace [ (0.1, 1, 0, Workload.Trace.Read) ] in
  let o = sim ~capacity:0 t in
  Alcotest.(check int) "miss counted" 1 o.Heuristics.Event_cache.misses;
  Alcotest.(check (float 1e-9)) "node 1 qos" 1. o.Heuristics.Event_cache.qos.(1)

let test_cooperative_fetches_from_peer () =
  (* Node 2 caches object 0; node 3's miss can then be served by node 2
     (100 ms <= 150) instead of the origin (300 ms). *)
  let t =
    simple_trace
      [
        (0.1, 2, 0, Workload.Trace.Read);  (* node 2 miss -> caches it *)
        (0.2, 3, 0, Workload.Trace.Read);  (* coop: remote hit at node 2 *)
      ]
  in
  let local = sim ~mode:Heuristics.Event_cache.Local t in
  Alcotest.(check (float 1e-9)) "local: node 3 uncovered" 0.
    local.Heuristics.Event_cache.qos.(3);
  let coop = sim ~mode:Heuristics.Event_cache.Cooperative t in
  Alcotest.(check int) "remote hit" 1 coop.Heuristics.Event_cache.hits_remote;
  Alcotest.(check (float 1e-9)) "coop: node 3 covered" 1.
    coop.Heuristics.Event_cache.qos.(3)

let test_prefetch_covers_first_access () =
  (* With the oracle prefetcher, node 3's interval-0 read is preloaded. *)
  let t = simple_trace [ (0.5, 3, 0, Workload.Trace.Read) ] in
  let plain = sim t in
  Alcotest.(check (float 1e-9)) "plain: cold miss" 0.
    plain.Heuristics.Event_cache.qos.(3);
  let pf = sim ~prefetch:true t in
  Alcotest.(check (float 1e-9)) "prefetch: covered" 1.
    pf.Heuristics.Event_cache.qos.(3);
  Alcotest.(check int) "prefetch insertion" 1
    pf.Heuristics.Event_cache.insertions

let test_write_messages () =
  let t =
    simple_trace
      [
        (0.1, 3, 0, Workload.Trace.Read);  (* node 3 caches object 0 *)
        (0.2, 1, 0, Workload.Trace.Write);  (* update: 1 cached copy *)
      ]
  in
  let costs = { Mcperf.Spec.default_costs with delta = 1. } in
  let o =
    Heuristics.Event_cache.simulate ~system:(line_system ()) ~trace:t
      ~intervals:4 ~costs ~tlat_ms:150. ~capacity:2
      ~mode:Heuristics.Event_cache.Local ()
  in
  Alcotest.(check (float 1e-9)) "one update message" 1.
    o.Heuristics.Event_cache.write_messages


let test_write_invalidation () =
  (* Node 3 caches object 0; a write invalidates it, so the next read
     misses again. Under Update the copy survives. *)
  let t =
    simple_trace
      [
        (0.1, 3, 0, Workload.Trace.Read);
        (0.2, 1, 0, Workload.Trace.Write);
        (0.3, 3, 0, Workload.Trace.Read);
      ]
  in
  let run write_policy =
    Heuristics.Event_cache.simulate ~system:(line_system ()) ~trace:t
      ~intervals:4 ~costs:{ Mcperf.Spec.default_costs with delta = 1. }
      ~tlat_ms:150. ~capacity:2 ~mode:Heuristics.Event_cache.Local
      ~write_policy ()
  in
  let upd = run Heuristics.Event_cache.Update in
  Alcotest.(check int) "update keeps copy: 1 miss" 1
    upd.Heuristics.Event_cache.misses;
  Alcotest.(check (float 1e-9)) "one update message" 1.
    upd.Heuristics.Event_cache.write_messages;
  let inv = run Heuristics.Event_cache.Invalidate in
  Alcotest.(check int) "invalidate: 2 misses" 2
    inv.Heuristics.Event_cache.misses;
  Alcotest.(check (float 1e-9)) "one invalidation message" 1.
    inv.Heuristics.Event_cache.write_messages

let test_snapshots_match_placement () =
  (* At <= 62 intervals both snapshot views exist and must agree bit for
     bit. *)
  let t =
    simple_trace
      [
        (0.1, 3, 0, Workload.Trace.Read);
        (1.2, 3, 1, Workload.Trace.Read);
        (3.5, 2, 0, Workload.Trace.Read);
      ]
  in
  let o = sim t in
  let p =
    match o.Heuristics.Event_cache.placement with
    | Some p -> p
    | None -> Alcotest.fail "placement view missing at 4 intervals"
  in
  for n = 0 to 3 do
    for k = 0 to 2 do
      for iv = 0 to 3 do
        Alcotest.(check bool)
          (Printf.sprintf "bit (%d,%d,%d)" n k iv)
          (p.(n).(k) land (1 lsl iv) <> 0)
          (Heuristics.Event_cache.held o.Heuristics.Event_cache.snapshots
             ~node:n ~object_id:k ~interval:iv)
      done
    done
  done

let test_long_trace_snapshots () =
  (* 100 intervals: beyond the MC-PERF placement word, so the run must
     still complete, drop the int-bitmask view, and record the wide
     snapshots — node 3 holds object 0 from its first access onward. *)
  let intervals = 100 in
  let t =
    Workload.Trace.of_events ~nodes:4 ~objects:3 ~duration_s:100.
      [ (10.5, 3, 0, Workload.Trace.Read) ]
  in
  let o =
    Heuristics.Event_cache.simulate ~system:(line_system ()) ~trace:t
      ~intervals ~costs:Mcperf.Spec.default_costs ~tlat_ms:150. ~capacity:2
      ~mode:Heuristics.Event_cache.Local ()
  in
  Alcotest.(check bool) "no word-sized placement" true
    (o.Heuristics.Event_cache.placement = None);
  let held iv =
    Heuristics.Event_cache.held o.Heuristics.Event_cache.snapshots ~node:3
      ~object_id:0 ~interval:iv
  in
  Alcotest.(check bool) "not cached before access" false (held 9);
  Alcotest.(check bool) "cached at access interval" true (held 10);
  Alcotest.(check bool) "still cached at the end" true (held 99);
  Alcotest.(check_raises) "malformed interval count"
    (Invalid_argument "Event_cache.simulate: intervals must be positive")
    (fun () ->
      ignore
        (Heuristics.Event_cache.simulate ~system:(line_system ()) ~trace:t
           ~intervals:0 ~costs:Mcperf.Spec.default_costs ~tlat_ms:150.
           ~capacity:2 ~mode:Heuristics.Event_cache.Local ()))

let test_lru_remove () =
  let c = Heuristics.Lru_cache.create ~capacity:3 in
  ignore (Heuristics.Lru_cache.insert c 1);
  ignore (Heuristics.Lru_cache.insert c 2);
  Alcotest.(check bool) "removes present" true (Heuristics.Lru_cache.remove c 1);
  Alcotest.(check bool) "absent now" false (Heuristics.Lru_cache.mem c 1);
  Alcotest.(check int) "size" 1 (Heuristics.Lru_cache.size c);
  Alcotest.(check bool) "removing absent" false
    (Heuristics.Lru_cache.remove c 9);
  (* The list structure survives removal of the head/tail. *)
  ignore (Heuristics.Lru_cache.insert c 3);
  ignore (Heuristics.Lru_cache.insert c 4);
  Alcotest.(check (list int)) "order" [ 4; 3; 2 ]
    (Heuristics.Lru_cache.contents c)

(* --- greedy placements ----------------------------------------------------- *)

let tail_spec ?(fraction = 1.0) () =
  let demand =
    Workload.Demand.create ~nodes:4 ~intervals:4 ~interval_s:3600.
      ~reads:
        [| [| cell 3 0 10.; cell 3 1 10.; cell 3 2 10.; cell 3 3 10. |] |]
      ()
  in
  Mcperf.Spec.make ~system:(line_system ()) ~demand
    ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction })
    ()

let test_greedy_global_covers () =
  let spec = tail_spec () in
  let e = Heuristics.Greedy_global.evaluate ~spec ~capacity:1. () in
  Alcotest.(check bool) "meets 100% goal" true e.Mcperf.Costing.meets_goal;
  (* One slot on every site (uniform SC): padding makes all 3 sites pay
     4 intervals each, plus the creation(s). *)
  Alcotest.(check bool) "cost at least 12" true (e.Mcperf.Costing.total >= 12.)

let test_greedy_global_zero_capacity () =
  let spec = tail_spec () in
  let e = Heuristics.Greedy_global.evaluate ~spec ~capacity:0. () in
  Alcotest.(check bool) "cannot meet goal" false e.Mcperf.Costing.meets_goal;
  Alcotest.(check (float 1e-9)) "zero cost" 0. e.Mcperf.Costing.total

let test_greedy_replica_covers () =
  let spec = tail_spec () in
  let e = Heuristics.Greedy_replica.evaluate ~spec ~replicas:1 () in
  Alcotest.(check bool) "meets goal" true e.Mcperf.Costing.meets_goal;
  (* One replica held the full horizon: 4 storage + 1 create; the uniform
     replica constraint pads nothing else (single object). *)
  Alcotest.(check (float 1e-9)) "cost" 5. e.Mcperf.Costing.total

let test_greedy_replica_sticks_to_best_node () =
  (* Two readers (1 and 3) of one object; a replica at node 2 covers both
     (100 ms each); greedy should prefer it over separate replicas. *)
  let demand =
    Workload.Demand.create ~nodes:4 ~intervals:2 ~interval_s:3600.
      ~reads:[| [| cell 1 0 5.; cell 3 0 5.; cell 1 1 5.; cell 3 1 5. |] |]
      ()
  in
  let spec =
    Mcperf.Spec.make ~system:(line_system ()) ~demand
      ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 1. })
      ()
  in
  let perm =
    Mcperf.Permission.compute spec Mcperf.Classes.replica_constrained_uniform
  in
  let placement = Heuristics.Greedy_replica.place ~perm ~replicas:1 () in
  (* Node 1 is origin-covered (100 ms from node 0), so greedy only needs
     to serve node 3; it may pick node 2 or 3. *)
  Alcotest.(check bool) "one replica placed" true
    (placement.(2).(0) <> 0 || placement.(3).(0) <> 0)


(* --- replacement policies ------------------------------------------------ *)

let test_policy_fifo_ignores_recency () =
  (* Capacity 2; insert 1,2; touch 1; insert 3. FIFO evicts 1 (oldest
     insertion) even though it was just used; LRU evicts 2. *)
  let run kind =
    let c = Heuristics.Policy_cache.create kind ~capacity:2 in
    ignore (Heuristics.Policy_cache.insert c 1);
    ignore (Heuristics.Policy_cache.insert c 2);
    ignore (Heuristics.Policy_cache.touch c 1);
    Heuristics.Policy_cache.insert c 3
  in
  Alcotest.(check (option int)) "fifo evicts 1" (Some 1)
    (run Heuristics.Policy_cache.Fifo);
  Alcotest.(check (option int)) "lru evicts 2" (Some 2)
    (run Heuristics.Policy_cache.Lru)

let test_policy_lfu_keeps_hot () =
  (* Capacity 2; object 1 accessed three times, object 2 once; inserting 3
     evicts the cold object 2. *)
  let c = Heuristics.Policy_cache.create Heuristics.Policy_cache.Lfu ~capacity:2 in
  ignore (Heuristics.Policy_cache.insert c 1);
  ignore (Heuristics.Policy_cache.insert c 2);
  ignore (Heuristics.Policy_cache.touch c 1);
  ignore (Heuristics.Policy_cache.touch c 1);
  Alcotest.(check (option int)) "evicts cold" (Some 2)
    (Heuristics.Policy_cache.insert c 3);
  Alcotest.(check bool) "hot object kept" true
    (Heuristics.Policy_cache.mem c 1)

let test_policy_size_never_exceeds_capacity () =
  List.iter
    (fun kind ->
      let c = Heuristics.Policy_cache.create kind ~capacity:3 in
      let rng = Util.Prng.create ~seed:3 in
      for _ = 1 to 500 do
        let k = Util.Prng.int rng 10 in
        if not (Heuristics.Policy_cache.touch c k) then
          ignore (Heuristics.Policy_cache.insert c k);
        Alcotest.(check bool) "size bound" true
          (Heuristics.Policy_cache.size c <= 3)
      done)
    [ Heuristics.Policy_cache.Lru; Heuristics.Policy_cache.Fifo;
      Heuristics.Policy_cache.Lfu ]

(* --- searches ----------------------------------------------------------------- *)

let test_min_feasible_int () =
  let calls = ref 0 in
  let feasible p =
    incr calls;
    p >= 13
  in
  Alcotest.(check (option int)) "finds 13" (Some 13)
    (Sim.Search.min_feasible_int ~lo:0 ~hi:100 feasible);
  Alcotest.(check bool) "logarithmic" true (!calls <= 12);
  Alcotest.(check (option int)) "none" None
    (Sim.Search.min_feasible_int ~lo:0 ~hi:10 (fun _ -> false));
  Alcotest.(check (option int)) "lo immediately" (Some 5)
    (Sim.Search.min_feasible_int ~lo:5 ~hi:10 (fun _ -> true))

let test_min_feasible_float () =
  match
    Sim.Search.min_feasible_float ~lo:0. ~hi:100. ~tol:1e-3 (fun x ->
        x >= Float.pi)
  with
  | Some v ->
    Alcotest.(check bool) "close to pi" true
      (v >= Float.pi && v < Float.pi +. 1e-2)
  | None -> Alcotest.fail "expected a value"

(* --- runner ---------------------------------------------------------------------- *)

let trace_for_tail_spec () =
  (* Event-level version of the tail demand: node 3 reads object 0 ten
     times in each of four intervals (duration 4 h, 1 h intervals). *)
  let events = ref [] in
  for i = 0 to 3 do
    for r = 0 to 9 do
      events :=
        ( (float_of_int i *. 3600.) +. (float_of_int r *. 60.),
          3,
          0,
          Workload.Trace.Read )
        :: !events
    done
  done;
  Workload.Trace.of_events ~nodes:4 ~objects:1 ~duration_s:14400. !events

let test_policy_runner_entrypoint () =
  (* All policies cost at least the LRU-class bound; on this simple trace
     they find the same minimal capacity. *)
  let spec = tail_spec ~fraction:0.9 () in
  let trace = trace_for_tail_spec () in
  List.iter
    (fun policy ->
      match Sim.Runner.policy_caching ~policy ~spec ~trace () with
      | Some d ->
        Alcotest.(check int)
          (Heuristics.Policy_cache.kind_name policy ^ " capacity")
          1 d.Sim.Runner.parameter
      | None -> Alcotest.fail "policy caching should be feasible at 90%")
    [ Heuristics.Policy_cache.Lru; Heuristics.Policy_cache.Fifo;
      Heuristics.Policy_cache.Lfu ]

let test_runner_lru_infeasible_at_100 () =
  (* The first access is always a cold miss 300 ms from the origin, so no
     capacity reaches 100%. *)
  let spec = tail_spec () in
  let trace = trace_for_tail_spec () in
  Alcotest.(check bool) "infeasible" true
    (Sim.Runner.lru_caching ~spec ~trace () = None)

let test_runner_lru_feasible_at_90 () =
  let spec = tail_spec ~fraction:0.9 () in
  let trace = trace_for_tail_spec () in
  match Sim.Runner.lru_caching ~spec ~trace () with
  | None -> Alcotest.fail "expected feasible"
  | Some d ->
    Alcotest.(check int) "capacity 1" 1 d.Sim.Runner.parameter;
    (* 39/40 covered = 0.975 >= 0.9. *)
    Alcotest.(check bool) "qos" true (d.Sim.Runner.worst_qos >= 0.9);
    (* Cost: capacity 1 * 3 sites * 4 intervals + 1 fill = 13. *)
    Alcotest.(check (float 1e-9)) "cost" 13. d.Sim.Runner.cost

let test_runner_prefetch_feasible_at_100 () =
  let spec = tail_spec () in
  let trace = trace_for_tail_spec () in
  match Sim.Runner.caching_with_prefetch ~spec ~trace () with
  | None -> Alcotest.fail "prefetching should reach 100%"
  | Some d -> Alcotest.(check bool) "qos 1" true (d.Sim.Runner.worst_qos >= 1.)

let test_runner_greedy_cheaper_than_caching () =
  (* The paper's headline: the right class beats caching. Here the
     replica-constrained greedy (5) beats LRU (13) at 90%. *)
  let spec = tail_spec ~fraction:0.9 () in
  let trace = trace_for_tail_spec () in
  match (Sim.Runner.greedy_replica ~spec (), Sim.Runner.lru_caching ~spec ~trace ()) with
  | Some gr, Some lru ->
    Alcotest.(check bool) "greedy wins" true (gr.Sim.Runner.cost < lru.Sim.Runner.cost)
  | _ -> Alcotest.fail "both should be feasible"

let test_runner_costs_at_least_class_bound () =
  (* Deployed heuristics can never beat their class's lower bound. *)
  let spec = tail_spec ~fraction:0.75 () in
  let trace = trace_for_tail_spec () in
  let bound cls =
    let r = Bounds.Pipeline.compute spec cls in
    r.Bounds.Pipeline.lower_bound
  in
  (match Sim.Runner.greedy_replica ~spec () with
  | Some d ->
    Alcotest.(check bool) "greedy-replica >= RC bound" true
      (d.Sim.Runner.cost
      >= bound Mcperf.Classes.replica_constrained_uniform -. 1e-6)
  | None -> Alcotest.fail "greedy-replica infeasible");
  (match Sim.Runner.greedy_global ~spec () with
  | Some d ->
    Alcotest.(check bool) "greedy-global >= SC bound" true
      (d.Sim.Runner.cost >= bound Mcperf.Classes.storage_constrained -. 1e-6)
  | None -> Alcotest.fail "greedy-global infeasible");
  match Sim.Runner.lru_caching ~spec ~trace () with
  | Some d ->
    Alcotest.(check bool) "lru >= caching bound" true
      (d.Sim.Runner.cost >= bound Mcperf.Classes.caching -. 1e-6)
  | None -> Alcotest.fail "lru infeasible"



let test_hierarchical_no_intra_cluster_duplication () =
  (* With a 350 ms radius the whole line is one cluster; after node 2
     caches object 0, node 3's read is served by node 2 without creating
     a second copy. Plain cooperative caching duplicates. *)
  let t =
    simple_trace
      [
        (0.1, 2, 0, Workload.Trace.Read);
        (0.2, 3, 0, Workload.Trace.Read);
        (0.3, 3, 0, Workload.Trace.Read);
      ]
  in
  let coop = sim ~mode:Heuristics.Event_cache.Cooperative t in
  Alcotest.(check int) "coop duplicates" 2 coop.Heuristics.Event_cache.insertions;
  let hier =
    sim ~mode:(Heuristics.Event_cache.Hierarchical { cluster_radius_ms = 350. }) t
  in
  Alcotest.(check int) "hierarchical keeps one copy" 1
    hier.Heuristics.Event_cache.insertions;
  (* All three reads are served within the threshold either way. *)
  Alcotest.(check (float 1e-9)) "node 3 covered" 1.
    hier.Heuristics.Event_cache.qos.(3)

let test_hierarchical_cross_cluster_caches_locally () =
  (* With a 50 ms radius every node is its own cluster: hierarchical mode
     degenerates to cooperative (fetch + local insert). *)
  let t =
    simple_trace
      [ (0.1, 2, 0, Workload.Trace.Read); (0.2, 3, 0, Workload.Trace.Read) ]
  in
  let hier =
    sim ~mode:(Heuristics.Event_cache.Hierarchical { cluster_radius_ms = 50. }) t
  in
  Alcotest.(check int) "both cache" 2 hier.Heuristics.Event_cache.insertions

let test_placement_baselines () =
  let spec = tail_spec () in
  let results =
    Heuristics.Placement_baselines.compare_strategies
      ~rng:(Util.Prng.create ~seed:5) ~spec ~replicas:1 ()
  in
  Alcotest.(check int) "three strategies" 3 (List.length results);
  let cost st =
    let _, (e : Mcperf.Costing.evaluation) =
      List.find (fun (s, _) -> s = st) results
    in
    e.Mcperf.Costing.total
  in
  (* Greedy is never worse than hotspot or random here (single reader:
     greedy picks a covering node directly). *)
  Alcotest.(check bool) "greedy <= hotspot" true
    (cost Heuristics.Placement_baselines.Greedy
    <= cost Heuristics.Placement_baselines.Hotspot +. 1e-9);
  (* Hotspot places at node 3 itself (the only demand source): covers. *)
  let _, hotspot_eval =
    List.find
      (fun (s, _) -> s = Heuristics.Placement_baselines.Hotspot)
      results
  in
  Alcotest.(check bool) "hotspot meets goal" true
    hotspot_eval.Mcperf.Costing.meets_goal

let test_placement_baselines_respect_support () =
  (* Whatever the strategy, replicas only land on nodes with store
     support. *)
  let spec = tail_spec () in
  let perm =
    Mcperf.Permission.compute spec Mcperf.Classes.replica_constrained_uniform
  in
  List.iter
    (fun strategy ->
      let placement =
        Heuristics.Placement_baselines.place
          ~rng:(Util.Prng.create ~seed:11) ~perm ~strategy ~replicas:3 ()
      in
      Array.iteri
        (fun m per_obj ->
          Array.iteri
            (fun k mask ->
              if mask <> 0 then
                Alcotest.(check bool) "support" true
                  (perm.Mcperf.Permission.store_mask.(m).(k) <> 0))
            per_obj)
        placement)
    [ Heuristics.Placement_baselines.Random;
      Heuristics.Placement_baselines.Hotspot;
      Heuristics.Placement_baselines.Greedy ]

(* --- conservation and capacity properties --------------------------------- *)

let random_cache_scenario seed =
  let rng = Util.Prng.create ~seed in
  let nodes = 3 + Util.Prng.int rng 4 in
  let g =
    Topology.Generate.as_like ~rng ~nodes
      ~latency:Topology.Generate.default_hop_latency ()
  in
  let sys = Topology.System.make g in
  let objects = 2 + Util.Prng.int rng 6 in
  let n_events = 20 + Util.Prng.int rng 200 in
  let events =
    List.init n_events (fun _ ->
        ( Util.Prng.float rng 100.,
          Util.Prng.int rng nodes,
          Util.Prng.int rng objects,
          Workload.Trace.Read ))
  in
  let trace = Workload.Trace.of_events ~nodes ~objects ~duration_s:100. events in
  (sys, trace)

let prop_cache_conserves_events =
  QCheck2.Test.make ~count:50
    ~name:"cache sim: hits + misses = non-origin reads, for all policies/modes"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let sys, trace = random_cache_scenario seed in
      let origin_reads = ref 0 in
      Workload.Trace.iter
        (fun ~time:_ ~node ~object_id:_ ~kind:_ ->
          if node = sys.Topology.System.origin then incr origin_reads)
        trace;
      let expected = Workload.Trace.length trace - !origin_reads in
      List.for_all
        (fun (mode, policy, prefetch) ->
          let o =
            Heuristics.Event_cache.simulate ~system:sys ~trace ~intervals:5
              ~costs:Mcperf.Spec.default_costs ~tlat_ms:150.
              ~capacity:(1 + seed mod 4) ~mode ~prefetch ~policy ()
          in
          o.Heuristics.Event_cache.hits_local
          + o.Heuristics.Event_cache.hits_remote
          + o.Heuristics.Event_cache.misses
          = expected
          && Array.for_all
               (fun q -> q >= 0. && q <= 1.)
               o.Heuristics.Event_cache.qos)
        [
          (Heuristics.Event_cache.Local, Heuristics.Policy_cache.Lru, false);
          (Heuristics.Event_cache.Cooperative, Heuristics.Policy_cache.Lru, false);
          (Heuristics.Event_cache.Local, Heuristics.Policy_cache.Fifo, false);
          (Heuristics.Event_cache.Cooperative, Heuristics.Policy_cache.Lfu, false);
          (Heuristics.Event_cache.Local, Heuristics.Policy_cache.Lru, true);
        ])

let prop_greedy_global_respects_capacity =
  QCheck2.Test.make ~count:40
    ~name:"greedy global placement never exceeds the per-node capacity"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 13) in
      let nodes = 4 + Util.Prng.int rng 3 in
      let g =
        Topology.Generate.as_like ~rng ~nodes
          ~latency:Topology.Generate.default_hop_latency ()
      in
      let sys = Topology.System.make g in
      let objects = 3 + Util.Prng.int rng 5 in
      let intervals = 3 + Util.Prng.int rng 3 in
      let events =
        List.init (50 + Util.Prng.int rng 100) (fun _ ->
            ( Util.Prng.float rng 100.,
              Util.Prng.int rng nodes,
              Util.Prng.int rng objects,
              Workload.Trace.Read ))
      in
      let trace =
        Workload.Trace.of_events ~nodes ~objects ~duration_s:100. events
      in
      let demand = Workload.Demand.of_trace ~intervals trace in
      let spec =
        Mcperf.Spec.make ~system:sys ~demand
          ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 0.9 })
          ()
      in
      let capacity = float_of_int (1 + Util.Prng.int rng 3) in
      let perm =
        Mcperf.Permission.compute spec Mcperf.Classes.storage_constrained
      in
      let placement = Heuristics.Greedy_global.place ~perm ~capacity () in
      let ok = ref true in
      for i = 0 to intervals - 1 do
        for m = 0 to nodes - 1 do
          let used = ref 0. in
          for k = 0 to objects - 1 do
            if placement.(m).(k) land (1 lsl i) <> 0 then
              used := !used +. demand.Workload.Demand.weight.(k)
          done;
          if !used > capacity +. 1e-9 then ok := false
        done
      done;
      !ok)

let prop_costing_components_sum =
  QCheck2.Test.make ~count:40
    ~name:"costing: total equals the sum of its components"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 29) in
      let nodes = 4 + Util.Prng.int rng 3 in
      let g =
        Topology.Generate.as_like ~rng ~nodes
          ~latency:Topology.Generate.default_hop_latency ()
      in
      let sys = Topology.System.make g in
      let objects = 2 + Util.Prng.int rng 4 in
      let intervals = 3 + Util.Prng.int rng 3 in
      let events =
        List.init (30 + Util.Prng.int rng 60) (fun _ ->
            ( Util.Prng.float rng 50.,
              Util.Prng.int rng nodes,
              Util.Prng.int rng objects,
              (if Util.Prng.bool rng then Workload.Trace.Read
               else Workload.Trace.Write) ))
      in
      (* Ensure at least one read. *)
      let events = (1., 0, 0, Workload.Trace.Read) :: events in
      let trace =
        Workload.Trace.of_events ~nodes ~objects ~duration_s:50. events
      in
      let demand = Workload.Demand.of_trace ~intervals trace in
      let costs =
        {
          Mcperf.Spec.alpha = 1.;
          beta = 0.5;
          gamma = 0.01;
          delta = 0.2;
          zeta = 3.;
        }
      in
      let spec =
        Mcperf.Spec.make ~system:sys ~demand ~costs
          ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 0.9 })
          ()
      in
      let cls = Mcperf.Classes.storage_constrained in
      let perm = Mcperf.Permission.compute spec cls in
      (* Random legal placement inside the store masks. *)
      let placement = Mcperf.Costing.empty_placement spec in
      for m = 0 to nodes - 1 do
        for k = 0 to objects - 1 do
          let mask = perm.Mcperf.Permission.store_mask.(m).(k) in
          if mask <> 0 && Util.Prng.bool rng then
            (* Keep a suffix of the support: always creation-legal. *)
            placement.(m).(k) <- mask
        done
      done;
      let e = Mcperf.Costing.evaluate perm placement in
      let parts =
        e.Mcperf.Costing.storage +. e.Mcperf.Costing.creation
        +. e.Mcperf.Costing.sc_padding +. e.Mcperf.Costing.rc_padding
        +. e.Mcperf.Costing.write_cost +. e.Mcperf.Costing.penalty
        +. e.Mcperf.Costing.open_cost
      in
      Float.abs (parts -. e.Mcperf.Costing.total)
      <= 1e-9 *. (1. +. Float.abs e.Mcperf.Costing.total)
      && Array.for_all (fun q -> q >= -1e-9 && q <= 1. +. 1e-9) e.Mcperf.Costing.qos)

let () =
  Alcotest.run "heuristics"
    [
      ( "lru-cache",
        [
          Alcotest.test_case "basics" `Quick test_lru_basic;
          Alcotest.test_case "duplicate insert" `Quick test_lru_duplicate_insert;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Alcotest.test_case "remove" `Quick test_lru_remove;
          QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity;
        ] );
      ( "event-cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick
            test_cache_hit_miss_accounting;
          Alcotest.test_case "eviction" `Quick test_cache_eviction_under_pressure;
          Alcotest.test_case "origin free" `Quick test_origin_node_reads_are_free;
          Alcotest.test_case "near-origin miss covered" `Quick
            test_near_origin_miss_is_covered;
          Alcotest.test_case "cooperative peer fetch" `Quick
            test_cooperative_fetches_from_peer;
          Alcotest.test_case "prefetch" `Quick test_prefetch_covers_first_access;
          Alcotest.test_case "write messages" `Quick test_write_messages;
          Alcotest.test_case "write invalidation" `Quick
            test_write_invalidation;
          Alcotest.test_case "snapshots match placement" `Quick
            test_snapshots_match_placement;
          Alcotest.test_case "long-trace snapshots" `Quick
            test_long_trace_snapshots;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "global covers" `Quick test_greedy_global_covers;
          Alcotest.test_case "global zero capacity" `Quick
            test_greedy_global_zero_capacity;
          Alcotest.test_case "replica covers" `Quick test_greedy_replica_covers;
          Alcotest.test_case "replica placement choice" `Quick
            test_greedy_replica_sticks_to_best_node;
        ] );
      ( "hierarchical",
        [
          Alcotest.test_case "no intra-cluster duplication" `Quick
            test_hierarchical_no_intra_cluster_duplication;
          Alcotest.test_case "cross-cluster caches" `Quick
            test_hierarchical_cross_cluster_caches_locally;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "strategies compared" `Quick
            test_placement_baselines;
          Alcotest.test_case "respect store support" `Quick
            test_placement_baselines_respect_support;
        ] );
      ( "policies",
        [
          Alcotest.test_case "fifo vs lru" `Quick test_policy_fifo_ignores_recency;
          Alcotest.test_case "lfu keeps hot" `Quick test_policy_lfu_keeps_hot;
          Alcotest.test_case "size bound" `Quick
            test_policy_size_never_exceeds_capacity;
          Alcotest.test_case "runner entrypoint" `Quick
            test_policy_runner_entrypoint;
        ] );
      ( "search",
        [
          Alcotest.test_case "int" `Quick test_min_feasible_int;
          Alcotest.test_case "float" `Quick test_min_feasible_float;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_cache_conserves_events;
          QCheck_alcotest.to_alcotest prop_greedy_global_respects_capacity;
          QCheck_alcotest.to_alcotest prop_costing_components_sum;
        ] );
      ( "runner",
        [
          Alcotest.test_case "lru infeasible at 100%" `Quick
            test_runner_lru_infeasible_at_100;
          Alcotest.test_case "lru feasible at 90%" `Quick
            test_runner_lru_feasible_at_90;
          Alcotest.test_case "prefetch reaches 100%" `Quick
            test_runner_prefetch_feasible_at_100;
          Alcotest.test_case "right class beats caching" `Quick
            test_runner_greedy_cheaper_than_caching;
          Alcotest.test_case "heuristics respect bounds" `Quick
            test_runner_costs_at_least_class_bound;
        ] );
    ]
