(* Golden round-trip tests for the plain-text serializers.

   The fixtures under [fixtures/] are committed in the writers' canonical
   form, so parse-then-print must reproduce them byte for byte. This pins
   the on-disk formats: any accidental change to a header, a separator or
   the float formatting shows up as a byte diff against the fixture rather
   than as silently incompatible files. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_topo_round_trip () =
  let golden = read_file "fixtures/golden.topo" in
  let graph, origin = Topology.Topo_io.of_string golden in
  Alcotest.(check int) "node count" 5 (Topology.Graph.node_count graph);
  Alcotest.(check (option int)) "origin preserved" (Some 0) origin;
  Alcotest.(check (option (float 1e-9)))
    "latency preserved" (Some 120.5)
    (Topology.Graph.edge_weight graph 0 1);
  let printed = Topology.Topo_io.to_string ?origin graph in
  Alcotest.(check string) "read -> write reproduces the fixture" golden printed;
  (* Fixpoint: a second round trip changes nothing. *)
  let graph2, origin2 = Topology.Topo_io.of_string printed in
  Alcotest.(check string)
    "write o read is a fixpoint" printed
    (Topology.Topo_io.to_string ?origin:origin2 graph2)

let test_trace_round_trip () =
  let golden = read_file "fixtures/golden.trace" in
  let trace = Workload.Trace_io.of_string golden in
  Alcotest.(check int) "event count" 8 (Workload.Trace.length trace);
  Alcotest.(check int) "node count" 3 (Workload.Trace.node_count trace);
  Alcotest.(check int) "object count" 4 (Workload.Trace.object_count trace);
  Alcotest.(check int) "write count" 2 (Workload.Trace.write_count trace);
  Alcotest.(check (float 1e-9))
    "duration" 60.
    (Workload.Trace.duration_s trace);
  let printed = Workload.Trace_io.to_string trace in
  Alcotest.(check string) "read -> write reproduces the fixture" golden printed;
  let trace2 = Workload.Trace_io.of_string printed in
  Alcotest.(check string)
    "write o read is a fixpoint" printed
    (Workload.Trace_io.to_string trace2)

(* Tree-family fixtures (the hand-verified DP instances of
   test_tree_dp.ml) are committed in canonical form too. *)
let test_tree_fixtures_round_trip () =
  List.iter
    (fun (name, nodes) ->
      let path = Filename.concat "fixtures" name in
      let golden = read_file path in
      match Topology.Topo_io.load_result ~path with
      | Error e ->
        Alcotest.failf "%s: %s" name (Topology.Topo_io.error_to_string e)
      | Ok (graph, origin) ->
        Alcotest.(check int)
          (name ^ ": node count")
          nodes
          (Topology.Graph.node_count graph);
        Alcotest.(check (option int)) (name ^ ": origin") (Some 0) origin;
        Alcotest.(check bool)
          (name ^ ": is a tree")
          true (Topology.Graph.is_tree graph);
        Alcotest.(check string)
          (name ^ ": read -> write reproduces the fixture")
          golden
          (Topology.Topo_io.to_string ?origin graph))
    [ ("tree_chain.topo", 5); ("tree_star.topo", 5) ]

(* A torn tail (record truncated mid-write) must come back as a
   structured error naming the offending line — never a crash, never a
   silently shorter graph. *)
let test_torn_fixture () =
  match Topology.Topo_io.load_result ~path:"fixtures/tree_torn.topo" with
  | Ok _ -> Alcotest.fail "torn fixture parsed as a valid topology"
  | Error e ->
    Alcotest.(check int) "error names the torn line" 5 e.Topology.Topo_io.line;
    Alcotest.(check bool)
      "error carries the path" true
      (String.length e.Topology.Topo_io.file > 0)

(* The file-based save/load path must agree with the string path. *)
let test_save_load_agree () =
  let tmp = Filename.temp_file "golden" ".topo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let graph, origin = Topology.Topo_io.of_string (read_file "fixtures/golden.topo") in
      Topology.Topo_io.save ?origin graph ~path:tmp;
      Alcotest.(check string)
        "save writes to_string bytes"
        (Topology.Topo_io.to_string ?origin graph)
        (read_file tmp));
  let tmp = Filename.temp_file "golden" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let trace = Workload.Trace_io.of_string (read_file "fixtures/golden.trace") in
      Workload.Trace_io.save trace ~path:tmp;
      Alcotest.(check string)
        "save writes to_string bytes"
        (Workload.Trace_io.to_string trace)
        (read_file tmp))

let () =
  Alcotest.run "golden"
    [
      ( "round-trip",
        [
          Alcotest.test_case "topology fixture" `Quick test_topo_round_trip;
          Alcotest.test_case "trace fixture" `Quick test_trace_round_trip;
          Alcotest.test_case "tree fixtures" `Quick
            test_tree_fixtures_round_trip;
          Alcotest.test_case "torn tree fixture" `Quick test_torn_fixture;
          Alcotest.test_case "save/load agrees with to/of_string" `Quick
            test_save_load_agree;
        ] );
    ]
