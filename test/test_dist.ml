(* Tests for the distributed sweep backend: the supervisor's backoff
   schedule, the wire frame format (round trip and corruption
   detection), the task-function registry, the connect/blacklist policy,
   a live loopback pool under injected faults with mixed local/remote
   worker deaths, and the strict checkpoint-journal loader. *)

module P = Util.Parallel
module F = Util.Faults

(* --- backoff schedule ----------------------------------------------------- *)

let test_backoff_delay () =
  (* Deterministic: same attempt, same delay, every call. *)
  for a = 0 to 12 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "deterministic at %d" a)
      (P.backoff_delay a) (P.backoff_delay a)
  done;
  (* Non-negative, monotone non-decreasing, never above the cap. *)
  let prev = ref 0. in
  for a = 0 to 12 do
    let d = P.backoff_delay a in
    Alcotest.(check bool) "non-negative" true (d >= 0.);
    Alcotest.(check bool) "monotone" true (d >= !prev);
    Alcotest.(check bool) "capped" true (d <= 0.25);
    prev := d
  done;
  Alcotest.(check (float 1e-12)) "base at attempt 0" 0.001 (P.backoff_delay 0);
  Alcotest.(check (float 1e-12)) "doubles" 0.004 (P.backoff_delay 2);
  Alcotest.(check (float 1e-12)) "saturates at cap" 0.25 (P.backoff_delay 20);
  Alcotest.(check (float 1e-12)) "custom base and cap" 0.5
    (P.backoff_delay ~base_s:0.125 ~cap_s:0.5 4)

(* --- wire frames ----------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f a b)

let test_wire_roundtrip () =
  with_socketpair @@ fun a b ->
  Dist.Wire.send_c2w a
    (Dist.Wire.Task { t_index = 7; t_attempt = 1; t_budget_s = 2.5 });
  (match Dist.Wire.recv_c2w b with
  | Dist.Wire.Task { t_index; t_attempt; t_budget_s } ->
    Alcotest.(check int) "index" 7 t_index;
    Alcotest.(check int) "attempt" 1 t_attempt;
    Alcotest.(check (float 0.)) "budget" 2.5 t_budget_s
  | _ -> Alcotest.fail "expected Task");
  Dist.Wire.send_w2c b
    (Dist.Wire.Result
       { r_index = 3; r_res = Ok "blob"; r_wall_s = 0.25; r_payload = "p" });
  (match Dist.Wire.recv_w2c a with
  | Dist.Wire.Result { r_index; r_res; r_wall_s; r_payload } ->
    Alcotest.(check int) "result index" 3 r_index;
    Alcotest.(check bool) "result blob" true (r_res = Ok "blob");
    Alcotest.(check (float 0.)) "wall" 0.25 r_wall_s;
    Alcotest.(check string) "payload" "p" r_payload
  | _ -> Alcotest.fail "expected Result");
  (* Raw frames beneath the typed messages. *)
  let big = String.init 10_000 (fun i -> Char.chr (i mod 251)) in
  Dist.Wire.send_string a big;
  Alcotest.(check string) "raw round trip" big (Dist.Wire.recv_string b)

let test_wire_garble_detected () =
  with_socketpair @@ fun a b ->
  Dist.Wire.send_c2w_garbled a
    (Dist.Wire.Task { t_index = 1; t_attempt = 0; t_budget_s = infinity });
  match Dist.Wire.recv_c2w b with
  | exception Failure _ -> ()
  | exception e ->
    Alcotest.fail ("garbled frame: unexpected " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "garbled frame was accepted"

let test_task_key () =
  (* Client and server compute the fault key independently: it must be a
     pure injective-enough function of (phase, index). *)
  Alcotest.(check string) "pure"
    (Dist.Wire.task_key ~phase:3 ~index:5)
    (Dist.Wire.task_key ~phase:3 ~index:5);
  Alcotest.(check bool) "phase matters" true
    (Dist.Wire.task_key ~phase:3 ~index:5
    <> Dist.Wire.task_key ~phase:4 ~index:5);
  Alcotest.(check bool) "index matters" true
    (Dist.Wire.task_key ~phase:3 ~index:5
    <> Dist.Wire.task_key ~phase:3 ~index:6)

(* --- registry -------------------------------------------------------------- *)

let test_registry () =
  Alcotest.(check bool) "absent name" true
    (Dist.Registry.find "test.absent" = None);
  Dist.Registry.register "test.reg" (fun _ i -> string_of_int i);
  (match Dist.Registry.find "test.reg" with
  | Some f -> Alcotest.(check string) "applies" "4" (f "" 4)
  | None -> Alcotest.fail "registered name not found");
  Alcotest.(check bool) "listed" true
    (List.mem "test.reg" (Dist.Registry.names ()))

(* --- worker address parsing ------------------------------------------------ *)

let test_parse_workers () =
  (match Dist.Client.parse_workers " 127.0.0.1:9181, h2:42 " with
  | Ok ws ->
    Alcotest.(check (list (pair string int)))
      "addresses" [ ("127.0.0.1", 9181); ("h2", 42) ] ws
  | Error e -> Alcotest.fail e);
  (match Dist.Client.parse_workers "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty list");
  List.iter
    (fun bad ->
      match Dist.Client.parse_workers bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad))
    [ "nohost"; "h:0"; "h:notaport"; ":9181"; "h:70000" ]

(* --- connect/blacklist policy ---------------------------------------------- *)

let free_port () =
  let lfd = Dist.Server.bind_listener ~port:0 () in
  let p = Dist.Server.bound_port lfd in
  Unix.close lfd;
  p

let test_factory_blacklist () =
  (* Nothing listens on the port: round 1 is Remote_unavailable, round 2
     trips the blacklist, and the address stays retired for good. *)
  F.install F.none;
  let port = free_port () in
  let fac = Dist.Client.factory ~host:"127.0.0.1" ~port ~fn:"x" ~ctx:"" in
  (match fac () with
  | P.Remote_unavailable -> ()
  | P.Remote_ok _ -> Alcotest.fail "connected to a dead port"
  | P.Remote_blacklisted -> Alcotest.fail "blacklisted after one round");
  (match fac () with
  | P.Remote_blacklisted -> ()
  | _ -> Alcotest.fail "second failed round must blacklist");
  match fac () with
  | P.Remote_blacklisted -> ()
  | _ -> Alcotest.fail "blacklist must be permanent"

(* --- loopback pool --------------------------------------------------------- *)

let square_fn = "test.square"

let () =
  Dist.Registry.register square_fn (fun ctx index ->
      let tasks = (Marshal.from_string ctx 0 : int array) in
      Marshal.to_string (tasks.(index) * tasks.(index)) [])

(* Bind in the parent (learning the ephemeral port), serve in a child. *)
let spawn_worker () =
  let lfd = Dist.Server.bind_listener ~port:0 () in
  let port = Dist.Server.bound_port lfd in
  match Unix.fork () with
  | 0 -> ( try Dist.Server.accept_loop lfd with _ -> Unix._exit 1)
  | pid ->
    Unix.close lfd;
    (port, pid)

let stop_worker pid =
  (try Unix.kill pid Sys.sigkill with _ -> ());
  try ignore (Unix.waitpid [] pid) with _ -> ()

let squares tasks = List.map (fun x -> x * x) tasks

let test_remote_pool_matches_sequential () =
  F.install F.none;
  let tasks = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let ctx = Marshal.to_string (Array.of_list tasks) [] in
  let port, pid = spawn_worker () in
  Fun.protect ~finally:(fun () -> stop_worker pid) @@ fun () ->
  let remote =
    [ Dist.Client.factory ~host:"127.0.0.1" ~port ~fn:square_fn ~ctx ]
  in
  (* jobs = 1 plus remotes: no local fork workers, coordinator + TCP
     endpoint only. *)
  let vs = P.map_values ~jobs:1 ~timeout_s:30. ~remote ~f:(fun x -> x * x) tasks in
  Alcotest.(check (list int)) "values" (squares tasks) vs;
  let st = P.last_pool_stats () in
  Alcotest.(check int) "remote workers" 1 st.P.remote_workers;
  Alcotest.(check int) "no remote deaths" 0 st.P.remote_deaths;
  Alcotest.(check int) "no reconnects" 0 st.P.reconnects;
  Alcotest.(check int) "no blacklisting" 0 st.P.blacklisted;
  Alcotest.(check bool) "not degraded" false st.P.degraded

let test_mixed_deaths_and_stats () =
  (* Every first attempt dies, wherever it runs: local fork workers
     [_exit] mid-task, remote sessions take the injected disconnect and
     vanish instead of replying. Supervision must retry everything to
     completion with the sequential answer, while the counters show both
     kinds of death and the reconnects that healed them. *)
  let tasks = [ 0; 1; 2; 3; 4; 5 ] in
  let ctx = Marshal.to_string (Array.of_list tasks) [] in
  let port, pid = spawn_worker () in
  Fun.protect
    ~finally:(fun () ->
      stop_worker pid;
      F.install F.none)
  @@ fun () ->
  (match F.parse "seed=7,disconnect=1" with
  | Ok s -> F.install s
  | Error e -> Alcotest.fail e);
  let remote =
    [ Dist.Client.factory ~host:"127.0.0.1" ~port ~fn:square_fn ~ctx ]
  in
  let f x =
    if P.in_worker () && P.task_attempt () = 0 then Unix._exit 97;
    x * x
  in
  let vs = P.map_values ~jobs:2 ~timeout_s:30. ~remote ~f tasks in
  Alcotest.(check (list int)) "values survive the chaos" (squares tasks) vs;
  let st = P.last_pool_stats () in
  Alcotest.(check int) "remote workers" 1 st.P.remote_workers;
  Alcotest.(check bool) "local deaths seen" true (st.P.worker_deaths >= 1);
  Alcotest.(check bool) "local respawns" true (st.P.respawns >= 1);
  Alcotest.(check bool) "remote deaths seen" true (st.P.remote_deaths >= 1);
  Alcotest.(check bool) "reconnects healed them" true (st.P.reconnects >= 1);
  Alcotest.(check bool) "tasks were retried" true (st.P.task_retries >= 1);
  Alcotest.(check int) "no blacklisting" 0 st.P.blacklisted;
  Alcotest.(check bool) "not degraded" false st.P.degraded

let test_dead_remote_falls_back_to_local () =
  (* The remote address never answers: its slot must blacklist and the
     local workers must still finish the map. *)
  F.install F.none;
  let tasks = [ 2; 7; 1; 8 ] in
  let port = free_port () in
  let ctx = Marshal.to_string (Array.of_list tasks) [] in
  let remote =
    [ Dist.Client.factory ~host:"127.0.0.1" ~port ~fn:square_fn ~ctx ]
  in
  let vs = P.map_values ~jobs:2 ~timeout_s:30. ~remote ~f:(fun x -> x * x) tasks in
  Alcotest.(check (list int)) "values" (squares tasks) vs;
  let st = P.last_pool_stats () in
  Alcotest.(check int) "remote workers" 1 st.P.remote_workers;
  Alcotest.(check int) "slot blacklisted" 1 st.P.blacklisted;
  Alcotest.(check bool) "not degraded" false st.P.degraded

(* --- strict checkpoint-journal loader -------------------------------------- *)

let journal_header fp = "# replica-select sweep journal v3 fingerprint=" ^ fp

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let test_journal_loader_errors () =
  let fp = String.make 32 'a' in
  let path = Filename.temp_file "dist" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ())
  @@ fun () ->
  Sys.remove path;
  (match Bounds.Pipeline.load_journal_result ~fingerprint:fp path with
  | Error { Util.Parse_error.file; line = 0; msg = "no such journal" } ->
    Alcotest.(check string) "missing: file" path file
  | Error e -> Alcotest.fail ("missing: " ^ Util.Parse_error.to_string e)
  | Ok _ -> Alcotest.fail "missing journal loaded");
  write_file path "";
  (match Bounds.Pipeline.load_journal_result ~fingerprint:fp path with
  | Error { Util.Parse_error.line = 1; msg = "missing journal header"; _ } ->
    ()
  | Error e -> Alcotest.fail ("empty: " ^ Util.Parse_error.to_string e)
  | Ok _ -> Alcotest.fail "empty journal loaded");
  write_file path (journal_header (String.make 32 'b') ^ "\n");
  (match Bounds.Pipeline.load_journal_result ~fingerprint:fp path with
  | Error { Util.Parse_error.line = 1; msg; _ } ->
    Alcotest.(check bool) "mismatch named" true
      (String.length msg >= 6 && String.sub msg 0 6 = "journa")
  | Error e -> Alcotest.fail ("mismatch: " ^ Util.Parse_error.to_string e)
  | Ok _ -> Alcotest.fail "mismatched journal loaded");
  write_file path (journal_header fp ^ "\nnot-a-record\n");
  (match Bounds.Pipeline.load_journal_result ~fingerprint:fp path with
  | Error { Util.Parse_error.line = 2; msg; _ } ->
    Alcotest.(check bool) "corrupt named" true
      (String.length msg >= 22
      && String.sub msg 0 22 = "corrupt journal record")
  | Error e -> Alcotest.fail ("corrupt: " ^ Util.Parse_error.to_string e)
  | Ok _ -> Alcotest.fail "corrupt record loaded");
  write_file path (journal_header fp ^ "\ndeadbeef zz\n");
  (match Bounds.Pipeline.load_journal_result ~fingerprint:fp path with
  | Error { Util.Parse_error.line = 2; _ } -> ()
  | Error e -> Alcotest.fail ("bad hex: " ^ Util.Parse_error.to_string e)
  | Ok _ -> Alcotest.fail "non-hex payload loaded");
  write_file path (journal_header fp ^ "\n");
  match Bounds.Pipeline.load_journal_result ~fingerprint:fp path with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "phantom entries"
  | Error e -> Alcotest.fail ("header-only: " ^ Util.Parse_error.to_string e)

let () =
  Alcotest.run "dist"
    [
      ( "backoff",
        [ Alcotest.test_case "schedule" `Quick test_backoff_delay ] );
      ( "wire",
        [
          Alcotest.test_case "round trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "garble detected" `Quick
            test_wire_garble_detected;
          Alcotest.test_case "task key" `Quick test_task_key;
        ] );
      ( "registry",
        [ Alcotest.test_case "register/find" `Quick test_registry ] );
      ( "client",
        [
          Alcotest.test_case "parse workers" `Quick test_parse_workers;
          Alcotest.test_case "blacklist transitions" `Quick
            test_factory_blacklist;
        ] );
      ( "pool",
        [
          Alcotest.test_case "remote matches sequential" `Quick
            test_remote_pool_matches_sequential;
          Alcotest.test_case "mixed deaths recover" `Quick
            test_mixed_deaths_and_stats;
          Alcotest.test_case "dead remote falls back" `Quick
            test_dead_remote_falls_back_to_local;
        ] );
      ( "journal",
        [
          Alcotest.test_case "strict loader errors" `Quick
            test_journal_loader_errors;
        ] );
    ]
