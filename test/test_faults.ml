(* Fault-injection suite: drives the worker supervisor, the solver
   fallback chain, and the checkpoint journal through deterministic
   injected failures (Util.Faults) and checks that every recovered sweep
   is byte-identical to an unfaulted golden run.

   By default each scenario runs at jobs=1 and jobs=4; setting
   FAULTS_JOBS=<n> pins the pool width (scripts/check.sh uses this to
   gate both widths explicitly). *)

module P = Bounds.Pipeline
module F = Util.Faults

let jobs_under_test =
  match Sys.getenv_opt "FAULTS_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> [ n ]
    | Some _ | None -> [ 1; 4 ])
  | None -> [ 1; 4 ]

(* --- fixture (same tiny line system as test_bounds) ---------------------- *)

let cell n i c : Workload.Demand.cell = { node = n; interval = i; count = c }

let line_system () =
  let g =
    Topology.Graph.of_edges 4 [ (0, 1, 100.); (1, 2, 100.); (2, 3, 100.) ]
  in
  Topology.System.make ~origin:0 g

let tail_demand () =
  Workload.Demand.create ~nodes:4 ~intervals:4 ~interval_s:3600.
    ~reads:[| [| cell 3 0 10.; cell 3 1 10.; cell 3 2 10.; cell 3 3 10. |] |]
    ()

let qos_spec () =
  Mcperf.Spec.make ~system:(line_system ()) ~demand:(tail_demand ())
    ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 1.0 })
    ()

let std_fractions = [ 0.5; 0.75; 1.0 ]

let classes =
  [
    ("general", Mcperf.Classes.general);
    ("caching", Mcperf.Classes.caching);
    ("storage-constrained", Mcperf.Classes.storage_constrained);
  ]

let run_sweep ?jobs ?solver ?timeout_s ?journal ?progress
    ?(fractions = std_fractions) () =
  let cfg =
    {
      P.Sweep_config.default with
      P.Sweep_config.jobs = Option.value jobs ~default:1;
      solver = Option.value solver ~default:P.Auto;
      timeout_s;
      journal;
      progress;
    }
  in
  P.sweep_classes cfg (qos_spec ()) ~fractions classes

(* Everything a sweep reports except wall-clock and the solve-path tags:
   recovery may change *how* a cell was solved, never *what* it found.
   [No_sharing] keeps the digest structural — results that crossed a
   worker pipe or the journal lose/gain internal block sharing, which
   would otherwise change the bytes of equal values. *)
let signature (sw : P.sweep) =
  let proj =
    List.map
      (fun (name, series) ->
        ( name,
          List.map
            (fun (x, (t : P.t)) ->
              ( x,
                t.P.feasible,
                t.P.lower_bound,
                t.P.exact,
                t.P.lp_iterations,
                t.P.gap,
                (match t.P.rounded with
                | Some r ->
                  Some r.Rounding.Round.evaluation.Mcperf.Costing.total
                | None -> None),
                t.P.max_feasible_qos ))
            series ))
      sw.P.per_class
  in
  Digest.to_hex (Digest.string (Marshal.to_string proj [ Marshal.No_sharing ]))

let golden = lazy (signature (run_sweep ~jobs:1 ()))

let fo_solver =
  P.First_order
    { P.default_pdhg_options with Lp.Pdhg.max_iters = 4_000; rel_tol = 1e-6 }

let fo_golden = lazy (run_sweep ~jobs:1 ~solver:fo_solver ())

let with_spec text f =
  (match F.parse text with
  | Ok s -> F.install s
  | Error msg -> Alcotest.fail msg);
  Fun.protect ~finally:(fun () -> F.install F.none) f

(* --- spec parsing and the deterministic coin ----------------------------- *)

let test_parse_roundtrip () =
  (match F.parse "" with
  | Ok s -> Alcotest.(check bool) "empty is none" true (F.is_none s)
  | Error msg -> Alcotest.fail msg);
  let text = "seed=42,crash=0.25,crash_every=3,stall=0.1,stall_s=0.2,diverge=0.5" in
  (match F.parse text with
  | Error msg -> Alcotest.fail msg
  | Ok spec -> (
    Alcotest.(check int) "seed" 42 spec.F.seed;
    Alcotest.(check (float 1e-12)) "crash" 0.25 spec.F.crash_prob;
    Alcotest.(check int) "crash_every" 3 spec.F.crash_every;
    Alcotest.(check (float 1e-12)) "stall_s" 0.2 spec.F.stall_s;
    match F.parse (F.to_string spec) with
    | Ok spec2 -> Alcotest.(check bool) "round trip" true (spec = spec2)
    | Error msg -> Alcotest.fail msg));
  (match F.parse "crash=1.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "probability above 1 must be rejected");
  (match F.parse "bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key must be rejected");
  match F.parse "crash" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing '=' must be rejected"

let test_of_env () =
  Unix.putenv F.env_var "seed=2,diverge=0.5";
  (match F.of_env () with
  | Ok s -> Alcotest.(check (float 1e-12)) "diverge" 0.5 s.F.diverge_prob
  | Error msg -> Alcotest.fail msg);
  Unix.putenv F.env_var "";
  match F.of_env () with
  | Ok s -> Alcotest.(check bool) "empty env is none" true (F.is_none s)
  | Error msg -> Alcotest.fail msg

let test_decide_deterministic () =
  let spec =
    match F.parse "seed=11,crash=0.3" with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  let keys = List.init 200 (fun i -> Printf.sprintf "cell-%d" i) in
  let flip s k = F.decide s ~kind:"crash" ~key:k ~prob:s.F.crash_prob in
  let picks = List.map (flip spec) keys in
  Alcotest.(check (list bool)) "same inputs, same answer" picks
    (List.map (flip spec) keys);
  let hits = List.length (List.filter Fun.id picks) in
  Alcotest.(check bool) "hit rate near the probability" true
    (hits > 20 && hits < 120);
  let picks2 = List.map (flip { spec with F.seed = 12 }) keys in
  Alcotest.(check bool) "seed changes the fault set" true (picks <> picks2)

(* --- worker supervision -------------------------------------------------- *)

let test_crash_recovery jobs () =
  let clean = Lazy.force golden in
  with_spec "seed=3,crash=1" (fun () ->
      let sw = run_sweep ~jobs () in
      Alcotest.(check string) "identical to unfaulted run" clean (signature sw);
      if jobs > 1 && Util.Parallel.fork_available then
        Alcotest.(check bool) "supervisor saw worker deaths" true
          (sw.P.pool.Util.Parallel.worker_deaths >= 1))

let test_crash_every jobs () =
  let clean = Lazy.force golden in
  with_spec "seed=9,crash_every=2" (fun () ->
      let sw = run_sweep ~jobs () in
      Alcotest.(check string) "identical to unfaulted run" clean (signature sw))

let test_stall_timeout jobs () =
  let clean = Lazy.force golden in
  with_spec "seed=4,stall=1,stall_s=1" (fun () ->
      let sw = run_sweep ~jobs ~timeout_s:0.35 () in
      Alcotest.(check string) "identical to unfaulted run" clean (signature sw);
      if jobs > 1 && Util.Parallel.fork_available then
        Alcotest.(check bool) "timeout supervision fired" true
          (sw.P.pool.Util.Parallel.timeouts >= 1))

let test_pool_crash_bookkeeping () =
  if Util.Parallel.fork_available then
    with_spec "seed=1,crash=1" (fun () ->
        let tasks = List.init 12 Fun.id in
        let values =
          Util.Parallel.map_values ~jobs:3
            ~f:(fun i ->
              F.crash_point ~key:(string_of_int i);
              i * 7)
            tasks
        in
        Alcotest.(check (list int)) "all values recovered"
          (List.map (fun i -> i * 7) tasks)
          values;
        let st = Util.Parallel.last_pool_stats () in
        Alcotest.(check bool) "deaths recorded" true
          (st.Util.Parallel.worker_deaths >= 1);
        Alcotest.(check bool) "deaths were recovered" true
          (st.Util.Parallel.task_retries + st.Util.Parallel.inline_recoveries
          >= 1))

let test_pool_stats_clean () =
  let _ =
    Util.Parallel.map_values ~jobs:2 ~f:(fun x -> x + 1) [ 1; 2; 3; 4 ]
  in
  let st = Util.Parallel.last_pool_stats () in
  Alcotest.(check int) "no deaths" 0 st.Util.Parallel.worker_deaths;
  Alcotest.(check int) "no timeouts" 0 st.Util.Parallel.timeouts;
  Alcotest.(check bool) "not degraded" false st.Util.Parallel.degraded

(* --- solver fallback chain ----------------------------------------------- *)

let test_diverge_fallback jobs () =
  let clean_sw = Lazy.force fo_golden in
  Alcotest.(check int) "clean run needs no retries" 0
    (List.assoc P.Path_pdhg_retry (P.path_counts clean_sw));
  Alcotest.(check int) "clean run needs no rescues" 0
    (List.assoc P.Path_simplex_fallback (P.path_counts clean_sw));
  with_spec "seed=5,diverge=1" (fun () ->
      let sw = run_sweep ~jobs ~solver:fo_solver () in
      Alcotest.(check string) "identical to unfaulted run"
        (signature clean_sw) (signature sw);
      Alcotest.(check bool) "retry path exercised" true
        (List.assoc P.Path_pdhg_retry (P.path_counts sw) >= 1))

(* --- checkpoint journal -------------------------------------------------- *)

exception Interrupted

let fresh_journal () =
  let path = Filename.temp_file "sweep" ".journal" in
  Sys.remove path;
  path

let interrupt_after n ?fractions ~journal () =
  match
    run_sweep ~jobs:1 ~journal ?fractions
      ~progress:(fun ~completed ~total:_ ->
        if completed >= n then raise Interrupted)
      ()
  with
  | _ -> Alcotest.fail "sweep should have been interrupted"
  | exception Interrupted -> ()

let check_journal_gone journal =
  Alcotest.(check bool) "journal deleted on completion" false
    (Sys.file_exists journal);
  Alcotest.(check bool) "journal tmp deleted" false
    (Sys.file_exists (journal ^ ".tmp"))

let test_journal_resume () =
  let clean = Lazy.force golden in
  let journal = fresh_journal () in
  interrupt_after 4 ~journal ();
  Alcotest.(check bool) "journal written" true (Sys.file_exists journal);
  let sw = run_sweep ~jobs:1 ~journal () in
  Alcotest.(check int) "cells restored" 4 sw.P.resumed;
  Alcotest.(check string) "identical to uninterrupted run" clean (signature sw);
  check_journal_gone journal

let test_journal_corrupt_tail () =
  let clean = Lazy.force golden in
  let journal = fresh_journal () in
  interrupt_after 4 ~journal ();
  (* A torn write: chop the last record mid-line. The loader must keep the
     intact prefix and recompute only the lost cell. *)
  let ic = open_in_bin journal in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin journal in
  output_string oc (String.sub contents 0 (String.length contents - 17));
  close_out oc;
  let sw = run_sweep ~jobs:1 ~journal () in
  Alcotest.(check int) "intact prefix restored" 3 sw.P.resumed;
  Alcotest.(check string) "identical to uninterrupted run" clean (signature sw);
  check_journal_gone journal

let test_journal_garbage_tail () =
  let clean = Lazy.force golden in
  let journal = fresh_journal () in
  interrupt_after 4 ~journal ();
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 journal in
  output_string oc "deadbeef thisisnothex\n";
  close_out oc;
  let sw = run_sweep ~jobs:1 ~journal () in
  Alcotest.(check int) "records before the garbage survive" 4 sw.P.resumed;
  Alcotest.(check string) "identical to uninterrupted run" clean (signature sw);
  check_journal_gone journal

let test_journal_stale_fingerprint () =
  let clean = Lazy.force golden in
  let journal = fresh_journal () in
  (* Journal a *different* sweep (other fractions), then resume the
     standard one against it: the fingerprint mismatch must discard the
     stale cells rather than serving them. *)
  interrupt_after 2 ~fractions:[ 0.6; 0.8 ] ~journal ();
  let sw = run_sweep ~jobs:1 ~journal () in
  Alcotest.(check int) "stale journal ignored" 0 sw.P.resumed;
  Alcotest.(check string) "identical to uninterrupted run" clean (signature sw);
  check_journal_gone journal

(* --- retry/backoff bookkeeping ------------------------------------------- *)

let prop_backoff_bounded_monotone =
  QCheck2.Test.make ~count:300
    ~name:"backoff delay is nonnegative, capped, and monotone in attempt"
    QCheck2.Gen.(
      tup3 (int_range 0 80) (float_range 1e-6 0.1) (float_range 1e-6 0.5))
    (fun (attempt, base_s, cap_s) ->
      let d = Util.Parallel.backoff_delay ~base_s ~cap_s attempt in
      let d' = Util.Parallel.backoff_delay ~base_s ~cap_s (attempt + 1) in
      d >= 0. && d <= cap_s && d' >= d)

let test_backoff_defaults () =
  Alcotest.(check (float 1e-12)) "first delay is the base" 0.001
    (Util.Parallel.backoff_delay 0);
  Alcotest.(check (float 1e-12)) "doubles" 0.002
    (Util.Parallel.backoff_delay 1);
  Alcotest.(check (float 1e-12)) "caps" 0.25
    (Util.Parallel.backoff_delay 30)

let () =
  let per_jobs name f =
    List.map
      (fun j ->
        Alcotest.test_case (Printf.sprintf "%s (jobs=%d)" name j) `Quick (f j))
      jobs_under_test
  in
  Alcotest.run "faults"
    [
      ( "spec",
        [
          Alcotest.test_case "parse round trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "env variable" `Quick test_of_env;
          Alcotest.test_case "deterministic decisions" `Quick
            test_decide_deterministic;
        ] );
      ( "supervision",
        per_jobs "crash recovery" test_crash_recovery
        @ per_jobs "crash every 2nd cell" test_crash_every
        @ per_jobs "stall hits timeout" test_stall_timeout
        @ [
            Alcotest.test_case "pool bookkeeping under crashes" `Quick
              test_pool_crash_bookkeeping;
            Alcotest.test_case "clean run leaves zero stats" `Quick
              test_pool_stats_clean;
          ] );
      ("fallback", per_jobs "forced divergence recovers" test_diverge_fallback);
      ( "journal",
        [
          Alcotest.test_case "interrupt and resume" `Quick test_journal_resume;
          Alcotest.test_case "torn tail tolerated" `Quick
            test_journal_corrupt_tail;
          Alcotest.test_case "garbage tail tolerated" `Quick
            test_journal_garbage_tail;
          Alcotest.test_case "stale fingerprint ignored" `Quick
            test_journal_stale_fingerprint;
        ] );
      ( "backoff",
        [
          QCheck_alcotest.to_alcotest prop_backoff_bounded_monotone;
          Alcotest.test_case "default schedule" `Quick test_backoff_defaults;
        ] );
    ]
