(* Availability layer: the laws the failure machinery rests on.

   - the scenario sampler and outage timeline are pure functions of
     (spec, system, groups) — regeneration is byte-identical, and the
     committed golden fixture pins the timeline's text rendering;
   - degraded re-pricing reproduces the nominal total under an all-up
     mask and is monotone in the failure set (failing more nodes can
     never make a placement cheaper — the miss penalty is priced at
     least as high as the worst late service);
   - assessments and replays are identical at every jobs value;
   - the scenario LP is a valid lower bound on the measured expected
     degraded cost of a goal-meeting placement;
   - Util.Faults surfaces structured Parse_error values with the legacy
     string wrappers layered on top. *)

module CS = Replica_select.Case_study

(* One small fixture shared by every test: deterministic in CS.make's
   default seed, cheap enough for property iteration. *)
let cs = CS.make ~nodes:6 ~intervals:6 ~scale:0.005 CS.Web
let sys = cs.CS.system
let groups = Avail.Groups.derive sys
let spec = CS.qos_spec cs ~fraction:0.9 ~for_bounds:true ()
let perm = Mcperf.Permission.compute spec Mcperf.Classes.general
let nodes = Topology.System.node_count sys

let scenarios =
  Avail.Scenario.sample_all Avail.Scenario.default sys ~groups

let deployed =
  match Sim.Runner.greedy_global ~spec () with
  | Some d -> d
  | None -> Alcotest.fail "fixture: greedy-global found no feasible placement"

let placement =
  match deployed.Sim.Runner.placement with
  | Some p -> p
  | None -> Alcotest.fail "fixture: deployment carries no placement"

let base = lazy (Mcperf.Costing.evaluate perm placement)

(* --- sampler determinism -------------------------------------------------- *)

let test_sampler_deterministic () =
  let sig_of ss =
    Array.to_list (Array.map Avail.Scenario.signature ss)
  in
  let a = Avail.Scenario.sample_all Avail.Scenario.default sys ~groups in
  let b = Avail.Scenario.sample_all Avail.Scenario.default sys ~groups in
  Alcotest.(check (list string))
    "two draws of the same spec agree" (sig_of a) (sig_of b);
  let other =
    Avail.Scenario.sample_all
      { Avail.Scenario.default with Avail.Scenario.seed = 8 }
      sys ~groups
  in
  Alcotest.(check bool)
    "a different seed draws a different scenario set" true
    (sig_of a <> sig_of other)

let test_sampler_respects_origin_flag () =
  let spec_noorigin =
    {
      Avail.Scenario.default with
      Avail.Scenario.node_prob = 0.5;
      origin_fails = false;
      count = 64;
    }
  in
  let ss = Avail.Scenario.sample_all spec_noorigin sys ~groups in
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        "origin never fails when origin_fails is false" false
        (Avail.Scenario.is_down s sys.Topology.System.origin))
    ss

(* --- golden timeline fixture ---------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_timeline_spec =
  { Avail.Scenario.default with Avail.Scenario.steps = 16 }

let test_timeline_golden () =
  let tl = Avail.Scenario.timeline golden_timeline_spec sys ~groups in
  let rendered = Avail.Scenario.render_timeline tl in
  let golden = read_file "fixtures/avail_timeline.golden" in
  Alcotest.(check string)
    "seeded timeline matches the committed fixture" golden rendered;
  let tl2 = Avail.Scenario.timeline golden_timeline_spec sys ~groups in
  Alcotest.(check string)
    "regeneration is byte-identical" rendered
    (Avail.Scenario.render_timeline tl2)

(* --- degraded re-pricing laws --------------------------------------------- *)

let test_all_up_equals_nominal () =
  let d =
    Avail.Survive.degrade ~base:(Lazy.force base) perm placement
      ~down:(Array.make nodes false)
  in
  let total = (Lazy.force base).Mcperf.Costing.total in
  Alcotest.(check (float (1e-9 *. (1. +. Float.abs total))))
    "all-up degraded cost is the nominal total" total
    d.Avail.Survive.degraded_cost;
  Alcotest.(check (float 1e-12)) "no unavailability when all up" 0.
    d.Avail.Survive.unavail_fraction

(* Growing the failure set can only raise the degraded cost: every read
   that was served keeps its price or moves to a pricier fallback, and an
   unavailable read pays at least the worst late service. The generator
   draws a random down-set as a node bitmask plus one extra node to add. *)
let prop_degraded_cost_monotone =
  QCheck2.Test.make ~count:200
    ~name:"degraded cost is monotone in the failure set"
    QCheck2.Gen.(pair (int_range 0 ((1 lsl nodes) - 1)) (int_range 0 (nodes - 1)))
    (fun (mask, extra) ->
      let down = Array.init nodes (fun n -> mask land (1 lsl n) <> 0) in
      let d_small =
        Avail.Survive.degrade ~base:(Lazy.force base) perm placement ~down
      in
      let bigger = Array.copy down in
      bigger.(extra) <- true;
      let d_big =
        Avail.Survive.degrade ~base:(Lazy.force base) perm placement
          ~down:bigger
      in
      let tol = 1e-9 *. (1. +. Float.abs d_small.Avail.Survive.degraded_cost) in
      d_big.Avail.Survive.degraded_cost
      >= d_small.Avail.Survive.degraded_cost -. tol)

let test_assess_jobs_invariant () =
  let a1 = Avail.Survive.assess ~jobs:1 perm placement ~scenarios in
  let a4 = Avail.Survive.assess ~jobs:4 perm placement ~scenarios in
  Alcotest.(check bool) "assessment identical at jobs 1 and 4" true (a1 = a4)

let test_replay_jobs_invariant () =
  let tl = Avail.Scenario.timeline golden_timeline_spec sys ~groups in
  let r1 =
    Sim.Runner.degradation_replay ~jobs:1 ~perm ~placement ~timeline:tl ()
  in
  let r4 =
    Sim.Runner.degradation_replay ~jobs:4 ~perm ~placement ~timeline:tl ()
  in
  Alcotest.(check bool) "replay identical at jobs 1 and 4" true (r1 = r4);
  Alcotest.(check int) "one step per timeline step"
    tl.Avail.Scenario.steps
    (Array.length r1.Sim.Runner.steps)

(* --- scenario LP validity ------------------------------------------------- *)

let test_scenario_lp_bounds_expected_cost () =
  Alcotest.(check bool) "fixture placement meets the goal" true
    (Lazy.force base).Mcperf.Costing.meets_goal;
  let cell =
    Bounds.Avail_bound.expected_cost_bound spec Mcperf.Classes.general
      ~scenarios
  in
  Alcotest.(check bool) "scenario LP cell is feasible" true
    cell.Bounds.Avail_bound.feasible;
  let a = Avail.Survive.assess perm placement ~scenarios in
  let lb = cell.Bounds.Avail_bound.expected_bound in
  Alcotest.(check bool)
    (Printf.sprintf "LP bound %.4f <= measured expected cost %.4f" lb
       a.Avail.Survive.expected_cost)
    true
    (lb <= a.Avail.Survive.expected_cost
           +. (1e-6 *. (1. +. Float.abs a.Avail.Survive.expected_cost)))

let test_k_failure_flags_consistent () =
  let checks = Bounds.Avail_bound.k_failure_check perm placement ~groups () in
  Alcotest.(check int) "one check per group" (Array.length groups)
    (Array.length checks);
  Array.iter
    (fun (c : Bounds.Avail_bound.group_check) ->
      Alcotest.(check bool)
        (c.Bounds.Avail_bound.group ^ ": survives flag matches its violation")
        (c.Bounds.Avail_bound.violation <= 0.1 +. 1e-12)
        c.Bounds.Avail_bound.survives;
      Alcotest.(check bool)
        (c.Bounds.Avail_bound.group ^ ": failed set within the group and k")
        true
        (Array.length c.Bounds.Avail_bound.failed <= 2
        && Array.for_all
             (fun m -> Array.mem m (Array.find_opt (fun (g : Avail.Groups.t) -> g.Avail.Groups.name = c.Bounds.Avail_bound.group) groups |> Option.get).Avail.Groups.members)
             c.Bounds.Avail_bound.failed))
    checks

(* --- Util.Faults structured parse errors ---------------------------------- *)

let test_faults_parse_result_ok () =
  match Util.Faults.parse_result "seed=42,crash=0.25,diverge=0.1" with
  | Error e -> Alcotest.fail (Util.Parse_error.to_string e)
  | Ok s ->
    Alcotest.(check int) "seed" 42 s.Util.Faults.seed;
    Alcotest.(check (float 0.)) "crash" 0.25 s.Util.Faults.crash_prob;
    Alcotest.(check (float 0.)) "diverge" 0.1 s.Util.Faults.diverge_prob

let test_faults_parse_result_error_fields () =
  (match Util.Faults.parse_result "crash=1.5" with
  | Ok _ -> Alcotest.fail "out-of-range probability accepted"
  | Error e ->
    Alcotest.(check string) "default file label" "<faults>" e.Util.Faults.file;
    Alcotest.(check int) "single-line specs report line 0" 0
      e.Util.Faults.line;
    Alcotest.(check bool) "message names the offending key" true
      (String.length e.Util.Faults.msg > 0));
  match Util.Faults.parse_result ~file:"cli" "bogus" with
  | Ok _ -> Alcotest.fail "malformed spec accepted"
  | Error e ->
    Alcotest.(check string) "caller's file label is preserved" "cli"
      e.Util.Faults.file

let test_faults_legacy_wrapper () =
  match Util.Faults.parse "crash=2" with
  | Ok _ -> Alcotest.fail "out-of-range probability accepted"
  | Error msg ->
    Alcotest.(check bool)
      "legacy wrapper keeps the historical prefix" true
      (String.length msg >= 11 && String.sub msg 0 11 = "fault spec:")

let () =
  Alcotest.run "avail"
    [
      ( "scenario",
        [
          Alcotest.test_case "sampler deterministic" `Quick
            test_sampler_deterministic;
          Alcotest.test_case "origin_fails=false pins the origin" `Quick
            test_sampler_respects_origin_flag;
          Alcotest.test_case "timeline golden fixture" `Quick
            test_timeline_golden;
        ] );
      ( "survive",
        [
          Alcotest.test_case "all-up equals nominal" `Quick
            test_all_up_equals_nominal;
          QCheck_alcotest.to_alcotest prop_degraded_cost_monotone;
          Alcotest.test_case "assess jobs-invariant" `Quick
            test_assess_jobs_invariant;
          Alcotest.test_case "replay jobs-invariant" `Quick
            test_replay_jobs_invariant;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "scenario LP bounds expected cost" `Quick
            test_scenario_lp_bounds_expected_cost;
          Alcotest.test_case "k-failure flags consistent" `Quick
            test_k_failure_flags_consistent;
        ] );
      ( "faults",
        [
          Alcotest.test_case "parse_result ok" `Quick
            test_faults_parse_result_ok;
          Alcotest.test_case "parse_result error fields" `Quick
            test_faults_parse_result_error_fields;
          Alcotest.test_case "legacy wrapper prefix" `Quick
            test_faults_legacy_wrapper;
        ] );
    ]
