(* Tests for graceful degradation under deadlines: the anytime PDHG
   bound (truncated runs are valid and monotone in the budget), Farkas
   infeasibility certificates (emitted rays verify, tampered rays are
   rejected), simplex dual certificates, and the sweep-level time
   governor (budgeted sweeps keep valid, certify-able bounds). *)

let check_float name ?(eps = 1e-6) expected actual =
  if not (Util.Vecops.approx_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" name expected actual

(* --- LP construction helpers (same shapes as test_lp) ----------------- *)

let build_problem vars rows =
  let b = Lp.Problem.Builder.create () in
  List.iter
    (fun (name, lo, hi, obj) ->
      ignore (Lp.Problem.Builder.add_var b ~name ~lo ~hi ~obj ()))
    vars;
  List.iter
    (fun (kind, rhs, terms) -> Lp.Problem.Builder.add_row b kind ~rhs terms)
    rows;
  Lp.Problem.Builder.build b

(* Random LPs built around a known interior point so they are feasible by
   construction; every variable gets finite bounds so both PDHG and the
   certificate evaluator accept them. *)
let random_feasible_lp rng ~nvars ~nrows =
  let b = Lp.Problem.Builder.create () in
  let x0 = Array.init nvars (fun _ -> Util.Prng.float rng 5.) in
  for j = 0 to nvars - 1 do
    ignore
      (Lp.Problem.Builder.add_var b ~lo:0. ~hi:(5. +. Util.Prng.float rng 5.)
         ~obj:(Util.Prng.uniform rng ~lo:0.1 ~hi:3.)
         ());
    ignore j
  done;
  for _ = 1 to nrows do
    let terms = ref [] in
    let activity = ref 0. in
    for j = 0 to nvars - 1 do
      if Util.Prng.float rng 1. < 0.6 then begin
        let v = Util.Prng.uniform rng ~lo:(-1.) ~hi:2. in
        terms := (j, v) :: !terms;
        activity := !activity +. (v *. x0.(j))
      end
    done;
    if !terms <> [] then
      Lp.Problem.Builder.add_row b Lp.Problem.Ge
        ~rhs:(!activity -. Util.Prng.float rng 1.)
        !terms
  done;
  Lp.Problem.Builder.build b

(* A provably infeasible variant: append a Ge row whose left-hand side
   cannot reach the rhs anywhere in the (finite) variable box. *)
let random_infeasible_lp rng ~nvars ~nrows =
  let p = random_feasible_lp rng ~nvars ~nrows in
  let b = Lp.Problem.Builder.create () in
  let sup = ref 0. in
  for j = 0 to p.Lp.Problem.nvars - 1 do
    ignore
      (Lp.Problem.Builder.add_var b ~lo:p.Lp.Problem.lower.(j)
         ~hi:p.Lp.Problem.upper.(j) ~obj:p.Lp.Problem.objective.(j) ());
    sup := !sup +. p.Lp.Problem.upper.(j)
  done;
  Array.iter
    (fun (row : Lp.Problem.row) ->
      Lp.Problem.Builder.add_row b row.Lp.Problem.kind ~rhs:row.Lp.Problem.rhs
        (Array.to_list row.Lp.Problem.coeffs))
    p.Lp.Problem.rows;
  let all = List.init p.Lp.Problem.nvars (fun j -> (j, 1.)) in
  Lp.Problem.Builder.add_row b Lp.Problem.Ge ~rhs:(!sup +. 1.) all;
  Lp.Problem.Builder.build b

let simplex_optimum p =
  match Lp.Simplex.solve p with
  | Lp.Simplex.Optimal { objective; _ } -> objective
  | Lp.Simplex.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected: unbounded"

(* --- anytime PDHG: truncation is valid and monotone -------------------- *)

(* Budgets are multiples of check_every, so each run's checkpoint set is a
   prefix of the next run's: best_bound must be nondecreasing in the
   budget and always below the exact optimum. *)
let prop_anytime_bound_monotone =
  QCheck2.Test.make ~count:20
    ~name:"anytime PDHG bound: monotone in iteration budget, <= optimum"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 11) in
      let nvars = 2 + Util.Prng.int rng 6 in
      let nrows = 1 + Util.Prng.int rng 6 in
      let p = random_feasible_lp rng ~nvars ~nrows in
      let opt = simplex_optimum p in
      let bound_at max_iters =
        let options =
          { Lp.Pdhg.default_options with max_iters; rel_tol = 1e-7 }
        in
        (Lp.Pdhg.solve ~options p).Lp.Pdhg.best_bound
      in
      let bounds = List.map bound_at [ 50; 200; 1_000; 20_000 ] in
      let monotone =
        List.for_all2
          (fun lo hi -> lo <= hi +. 1e-9)
          (List.filteri (fun i _ -> i < 3) bounds)
          (List.tl bounds)
      in
      monotone && List.for_all (fun b -> b <= opt +. 1e-5) bounds)

let test_deadline_zero_still_bounds () =
  (* With a zero wall-clock budget the solver must stop at its first
     checkpoint with stop = Deadline — and that truncated bound is still a
     finite, valid lower bound. *)
  let rng = Util.Prng.create ~seed:42 in
  let p = random_feasible_lp rng ~nvars:40 ~nrows:40 in
  let opt = simplex_optimum p in
  let options =
    { Lp.Pdhg.default_options with rel_tol = 1e-12; deadline_s = 0. }
  in
  let out = Lp.Pdhg.solve ~options p in
  (match out.Lp.Pdhg.stop with
  | Lp.Pdhg.Deadline -> ()
  | s -> Alcotest.failf "expected Deadline stop, got %s" (Lp.Pdhg.stop_label s));
  Alcotest.(check bool) "stopped at first checkpoint" true
    (out.Lp.Pdhg.iterations <= Lp.Pdhg.default_options.Lp.Pdhg.check_every);
  Alcotest.(check bool) "bound finite" true
    (Float.is_finite out.Lp.Pdhg.best_bound);
  Alcotest.(check bool) "bound valid" true
    (out.Lp.Pdhg.best_bound <= opt +. 1e-6);
  (* The truncated bound is a checkpoint of the unconstrained run, so the
     full run can only improve on it. *)
  let full =
    Lp.Pdhg.solve
      ~options:{ Lp.Pdhg.default_options with max_iters = 50_000 }
      p
  in
  Alcotest.(check bool) "full run dominates" true
    (out.Lp.Pdhg.best_bound <= full.Lp.Pdhg.best_bound +. 1e-9)

(* --- Farkas certificates ----------------------------------------------- *)

let test_farkas_unit () =
  (* x in [0,1] but x >= 2: the unit ray on that row proves it. *)
  let p =
    build_problem [ ("x", 0., 1., 1.) ] [ (Lp.Problem.Ge, 2., [ (0, 1.) ]) ]
  in
  let norm = Lp.Problem.normalize_ge p in
  (match Lp.Certificate.row_farkas norm with
  | None -> Alcotest.fail "row_farkas missed a one-row contradiction"
  | Some ray ->
    Alcotest.(check bool) "emitted ray accepted" true
      (Lp.Certificate.check_farkas norm ~ray);
    let neg = Array.map (fun v -> -.v) ray in
    Alcotest.(check bool) "negated ray rejected" false
      (Lp.Certificate.check_farkas norm ~ray:neg));
  Alcotest.(check bool) "zero ray rejected" false
    (Lp.Certificate.check_farkas norm ~ray:(Array.make 1 0.));
  Alcotest.(check bool) "NaN ray rejected" false
    (Lp.Certificate.check_farkas norm ~ray:[| Float.nan |]);
  Alcotest.(check bool) "wrong dimension rejected" false
    (Lp.Certificate.check_farkas norm ~ray:[| 1.; 1. |])

let prop_feasible_lp_rejects_all_rays =
  (* Soundness: on a feasible problem no ray whatsoever may be accepted —
     a positive margin would "prove" infeasibility of a feasible LP. *)
  QCheck2.Test.make ~count:60
    ~name:"check_farkas rejects every ray on feasible problems"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 23) in
      let nvars = 2 + Util.Prng.int rng 5 in
      let nrows = 1 + Util.Prng.int rng 5 in
      let p = random_feasible_lp rng ~nvars ~nrows in
      let norm = Lp.Problem.normalize_ge p in
      let m = Lp.Problem.nrows norm in
      let ok = ref true in
      for _ = 1 to 10 do
        let ray =
          Array.init m (fun _ -> Util.Prng.uniform rng ~lo:(-2.) ~hi:2.)
        in
        if Lp.Certificate.check_farkas norm ~ray then ok := false
      done;
      !ok)

let prop_infeasible_lp_certified =
  (* Completeness on the constructed family: the simplex phase-1 ray and
     the single-row scan must both verify, and tampering must break it. *)
  QCheck2.Test.make ~count:40
    ~name:"emitted Farkas rays verify; tampered rays are rejected"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 37) in
      let nvars = 2 + Util.Prng.int rng 5 in
      let nrows = 1 + Util.Prng.int rng 5 in
      let p = random_infeasible_lp rng ~nvars ~nrows in
      let norm = Lp.Problem.normalize_ge p in
      let row_ok =
        match Lp.Certificate.row_farkas norm with
        | Some ray -> Lp.Certificate.check_farkas norm ~ray
        | None -> false
      in
      match Lp.Simplex.solve_certified p with
      | Lp.Simplex.Cert_infeasible { ray } ->
        row_ok
        && Lp.Certificate.check_farkas norm ~ray
        && not
             (Lp.Certificate.check_farkas norm
                ~ray:(Array.map (fun v -> -.v) ray))
      | Cert_optimal _ | Cert_unbounded -> false)

let prop_simplex_dual_reproduces_optimum =
  (* The Cert_optimal multipliers, replayed through the pure-arithmetic
     dual_bound on the normalized problem, must reproduce the optimum —
     this is exactly what Pipeline.certify replays for exact cells. *)
  QCheck2.Test.make ~count:60
    ~name:"simplex dual certificate reproduces the optimum"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 53) in
      let nvars = 2 + Util.Prng.int rng 6 in
      let nrows = 1 + Util.Prng.int rng 6 in
      let p = random_feasible_lp rng ~nvars ~nrows in
      match Lp.Simplex.solve_certified p with
      | Lp.Simplex.Cert_optimal { objective; dual; _ } ->
        let bound =
          Lp.Certificate.dual_bound (Lp.Problem.normalize_ge p) ~y:dual
        in
        Float.abs (bound -. objective) <= 1e-6 *. (1. +. Float.abs objective)
      | Cert_infeasible _ | Cert_unbounded -> false)

(* --- pipeline certificates and the sweep governor ---------------------- *)

let cell n i c : Workload.Demand.cell = { node = n; interval = i; count = c }

let line_system () =
  let g =
    Topology.Graph.of_edges 4 [ (0, 1, 100.); (1, 2, 100.); (2, 3, 100.) ]
  in
  Topology.System.make ~origin:0 g

let tail_demand () =
  Workload.Demand.create ~nodes:4 ~intervals:4 ~interval_s:3600.
    ~reads:[| [| cell 3 0 10.; cell 3 1 10.; cell 3 2 10.; cell 3 3 10. |] |]
    ()

let qos_spec ?(fraction = 1.0) () =
  Mcperf.Spec.make ~system:(line_system ()) ~demand:(tail_demand ())
    ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction })
    ()

let test_certify_roundtrip () =
  let spec = qos_spec () in
  let r = Bounds.Pipeline.compute spec Mcperf.Classes.general in
  (match Bounds.Pipeline.certify spec Mcperf.Classes.general r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh feasible cell failed recheck: %s" e);
  (* A tampered bound must no longer match its dual witness. *)
  let forged =
    { r with Bounds.Pipeline.lower_bound = r.Bounds.Pipeline.lower_bound +. 1. }
  in
  (match Bounds.Pipeline.certify spec Mcperf.Classes.general forged with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered bound passed the recheck");
  (* Cells without a witness are reported, not silently accepted. *)
  let stripped = { r with Bounds.Pipeline.certificate = None } in
  match Bounds.Pipeline.certify spec Mcperf.Classes.general stripped with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing certificate passed the recheck"

let test_certify_infeasible_cell () =
  (* Caching at 100% QoS is infeasible on the fixture (cold-miss ceiling
     0.75); the cell must carry a Farkas ray that rechecks from scratch. *)
  let spec = qos_spec () in
  let r = Bounds.Pipeline.compute spec Mcperf.Classes.caching in
  Alcotest.(check bool) "infeasible" false r.Bounds.Pipeline.feasible;
  (match r.Bounds.Pipeline.certificate with
  | Some (Bounds.Pipeline.Farkas _) -> ()
  | Some (Bounds.Pipeline.Dual _) -> Alcotest.fail "expected a Farkas ray"
  | None -> Alcotest.fail "infeasible cell carries no certificate");
  (match Bounds.Pipeline.certify spec Mcperf.Classes.caching r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "Farkas recheck failed: %s" e);
  match r.Bounds.Pipeline.certificate with
  | Some (Bounds.Pipeline.Farkas ray) ->
    let forged =
      {
        r with
        Bounds.Pipeline.certificate =
          Some (Bounds.Pipeline.Farkas (Array.map (fun v -> -.v) ray));
      }
    in
    (match Bounds.Pipeline.certify spec Mcperf.Classes.caching forged with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "negated ray passed the recheck")
  | _ -> ()

let sweep_fixture =
  [
    ("general", Mcperf.Classes.general);
    ("caching", Mcperf.Classes.caching);
  ]

let sweep_fractions = [ 0.7; 0.9; 1.0 ]

(* Force the first-order solver so the time governor has something to
   truncate; a tight tolerance keeps the unconstrained run from
   converging inside the very first checkpoint block. *)
let fo_solver =
  Bounds.Pipeline.First_order
    { Lp.Pdhg.default_options with max_iters = 40_000; rel_tol = 1e-9 }

let test_budgeted_sweep_bounds_dominated () =
  let spec = qos_spec () in
  let free =
    Bounds.Pipeline.sweep_classes
      Bounds.Pipeline.Sweep_config.(default |> with_solver fo_solver)
      spec ~fractions:sweep_fractions sweep_fixture
  in
  let tight =
    Bounds.Pipeline.sweep_classes
      Bounds.Pipeline.Sweep_config.(
        default |> with_solver fo_solver |> with_cell_budget 1e-4)
      spec ~fractions:sweep_fractions sweep_fixture
  in
  List.iter2
    (fun (label, fs) (label', ts) ->
      Alcotest.(check string) "class order" label label';
      List.iter2
        (fun (q, (f : Bounds.Pipeline.t)) (q', (t : Bounds.Pipeline.t)) ->
          check_float "same fraction" ~eps:1e-12 q q';
          Alcotest.(check bool)
            (Printf.sprintf "%s@%g feasibility agrees" label q)
            f.Bounds.Pipeline.feasible t.Bounds.Pipeline.feasible;
          if f.Bounds.Pipeline.feasible then
            (* Truncation stops at an earlier checkpoint of the same
               deterministic iterate stream: looser, never invalid. *)
            Alcotest.(check bool)
              (Printf.sprintf "%s@%g degraded bound dominated" label q)
              true
              (t.Bounds.Pipeline.lower_bound
              <= f.Bounds.Pipeline.lower_bound
                 +. 1e-6 *. (1. +. Float.abs f.Bounds.Pipeline.lower_bound)))
        fs ts)
    free.Bounds.Pipeline.per_class tight.Bounds.Pipeline.per_class;
  (* The tiny budget must actually have truncated something... *)
  let count q sweep = List.assoc q (Bounds.Pipeline.quality_counts sweep) in
  Alcotest.(check bool) "some cell hit the time budget" true
    (count Bounds.Pipeline.Time_budget tight > 0);
  (* ...while the unconstrained sweep never reads a clock. *)
  Alcotest.(check int) "free sweep has no time-budget cells" 0
    (count Bounds.Pipeline.Time_budget free)

let test_budgeted_sweep_certificates_verify () =
  (* Every cell of a budgeted sweep — degraded, converged and infeasible
     alike — must recheck from scratch. *)
  let sweep =
    Bounds.Pipeline.sweep_classes
      Bounds.Pipeline.Sweep_config.(
        default |> with_solver fo_solver |> with_cell_budget 1e-4)
      (qos_spec ()) ~fractions:sweep_fractions sweep_fixture
  in
  List.iter
    (fun (label, series) ->
      let cls = List.assoc label sweep_fixture in
      List.iter
        (fun (q, cell) ->
          match Bounds.Pipeline.certify (qos_spec ~fraction:q ()) cls cell with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "cell %s@%g failed recheck: %s" label q e)
        series)
    sweep.Bounds.Pipeline.per_class

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_anytime_bound_monotone;
        prop_feasible_lp_rejects_all_rays;
        prop_infeasible_lp_certified;
        prop_simplex_dual_reproduces_optimum;
      ]
  in
  Alcotest.run "anytime"
    [
      ( "pdhg",
        [ Alcotest.test_case "deadline 0 still bounds" `Quick
            test_deadline_zero_still_bounds ] );
      ("farkas", [ Alcotest.test_case "unit rays" `Quick test_farkas_unit ]);
      ( "certify",
        [
          Alcotest.test_case "round trip" `Quick test_certify_roundtrip;
          Alcotest.test_case "infeasible cell" `Quick
            test_certify_infeasible_cell;
        ] );
      ( "governor",
        [
          Alcotest.test_case "budgeted bounds dominated" `Quick
            test_budgeted_sweep_bounds_dominated;
          Alcotest.test_case "budgeted certificates verify" `Quick
            test_budgeted_sweep_certificates_verify;
        ] );
      ("properties", qsuite);
    ]
