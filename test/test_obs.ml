(* Observability subsystem tests.

   Four concerns, mirroring the determinism contract in DESIGN §11:
   - spans are well-bracketed per scope (thread of control), including
     when inner spans are abandoned and closed implicitly;
   - histogram buckets are strictly bound-ascending and conserve counts;
   - a traced sweep's JSONL output is byte-identical at --jobs 1 and 4
     in logical mode (the worker-merge round-trip);
   - tracing through the null sink does not perturb sweep results. *)

let with_config cfg f =
  Obs.Config.install cfg;
  Fun.protect
    ~finally:(fun () -> Obs.Config.install Obs.Config.disabled)
    f

(* --- fixtures (same shape as test_anytime's sweep fixture) ------------ *)

let cell n i c : Workload.Demand.cell = { node = n; interval = i; count = c }

let line_system () =
  let g =
    Topology.Graph.of_edges 4 [ (0, 1, 100.); (1, 2, 100.); (2, 3, 100.) ]
  in
  Topology.System.make ~origin:0 g

let tail_demand () =
  Workload.Demand.create ~nodes:4 ~intervals:4 ~interval_s:3600.
    ~reads:[| [| cell 3 0 10.; cell 3 1 10.; cell 3 2 10.; cell 3 3 10. |] |]
    ()

let qos_spec ?(fraction = 1.0) () =
  Mcperf.Spec.make ~system:(line_system ()) ~demand:(tail_demand ())
    ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction })
    ()

let sweep_fixture =
  [ ("general", Mcperf.Classes.general); ("caching", Mcperf.Classes.caching) ]

let sweep_fractions = [ 0.7; 0.9; 1.0 ]

let run_sweep ?obs ~jobs () =
  let cfg =
    let base = Bounds.Pipeline.Sweep_config.(default |> with_jobs jobs) in
    match obs with
    | Some o -> Bounds.Pipeline.Sweep_config.with_obs o base
    | None -> base
  in
  Bounds.Pipeline.sweep_classes cfg (qos_spec ()) ~fractions:sweep_fractions
    sweep_fixture

(* Everything a cell *computed*, stripped of wall-clock bookkeeping:
   this must not move when instrumentation is switched on. *)
let signature (s : Bounds.Pipeline.sweep) =
  List.map
    (fun (label, cells) ->
      ( label,
        List.map
          (fun (q, (r : Bounds.Pipeline.t)) ->
            ( q,
              r.Bounds.Pipeline.feasible,
              r.Bounds.Pipeline.lower_bound,
              r.Bounds.Pipeline.lp_iterations ))
          cells ))
    s.Bounds.Pipeline.per_class

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- span bracketing (property) --------------------------------------- *)

(* A random span program: points, explicitly closed spans, and spans
   that are deliberately left open so an ancestor's close must sweep
   them up (the implicit-close path in Trace.span_end). *)
type prog = Point | Span of bool * prog list

let gen_prog =
  let open QCheck2.Gen in
  sized_size (int_range 1 16) @@ fix (fun self n ->
      if n <= 0 then return Point
      else
        frequency
          [
            (1, return Point);
            ( 3,
              map2
                (fun closed kids -> Span (closed, kids))
                bool
                (list_size (int_range 0 3) (self (n / 2))) );
          ])

let gen_program =
  QCheck2.Gen.(
    list_size (int_range 1 6) (pair (int_range 0 2) gen_prog))

let rec exec_prog = function
  | Point -> Obs.Trace.event "p"
  | Span (closed, kids) ->
    let sp = Obs.Trace.span_begin "s" in
    List.iter exec_prog kids;
    if closed then Obs.Trace.span_end sp

(* Replay one scope's events (already in seq order) against a stack and
   check the bracketing invariants. *)
let check_scope_bracketing evs =
  let stack = ref [] in
  let next_seq = ref 0 in
  let next_id = ref 1 in
  let begins = ref 0 in
  let ends = ref 0 in
  let top () = match !stack with [] -> 0 | p :: _ -> p in
  let ok =
    List.for_all
      (fun (e : Obs.Trace.event) ->
        let seq_ok = e.Obs.Trace.seq = !next_seq in
        incr next_seq;
        seq_ok
        &&
        match e.Obs.Trace.kind with
        | Obs.Trace.Span_begin ->
          incr begins;
          let ok = e.Obs.Trace.id = !next_id && e.Obs.Trace.parent = top () in
          incr next_id;
          stack := e.Obs.Trace.id :: !stack;
          ok
        | Obs.Trace.Span_end -> (
          incr ends;
          match !stack with
          | [] -> false
          | id :: rest ->
            stack := rest;
            e.Obs.Trace.id = id && e.Obs.Trace.parent = top ())
        | Obs.Trace.Point ->
          e.Obs.Trace.id = 0 && e.Obs.Trace.parent = top ())
      evs
  in
  ok && !stack = [] && !begins = !ends

let prop_well_bracketed =
  QCheck2.Test.make ~count:200 ~name:"spans well-bracketed per scope"
    gen_program (fun program ->
      with_config
        { Obs.Config.default with sink = Obs.Config.Memory }
        (fun () ->
          let scope_names = [| "main"; "task:0"; "task:1" |] in
          let roots = Hashtbl.create 3 in
          List.iter
            (fun (i, p) ->
              let scope = scope_names.(i) in
              Obs.Trace.set_scope scope;
              if not (Hashtbl.mem roots scope) then
                Hashtbl.replace roots scope (Obs.Trace.span_begin "root");
              exec_prog p)
            program;
          (* Closing each root implicitly closes whatever the program
             left dangling beneath it. *)
          Hashtbl.iter (fun _ sp -> Obs.Trace.span_end sp) roots;
          let by_scope = Hashtbl.create 3 in
          List.iter
            (fun (e : Obs.Trace.event) ->
              let prev =
                Option.value ~default:[]
                  (Hashtbl.find_opt by_scope e.Obs.Trace.scope)
              in
              Hashtbl.replace by_scope e.Obs.Trace.scope (e :: prev))
            (Obs.Trace.events ());
          Hashtbl.fold
            (fun _ evs acc -> acc && check_scope_bracketing (List.rev evs))
            by_scope true))

(* --- histogram buckets (property) -------------------------------------- *)

let gen_samples =
  (* Mantissa/exponent pairs spanning ~12 decades, plus zero and
     negative samples to hit the underflow bucket. *)
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (map
         (fun (m, e) -> float_of_int m /. 100. *. (10. ** float_of_int e))
         (pair (int_range (-100) 1000) (int_range (-6) 6))))

let prop_histogram_buckets =
  QCheck2.Test.make ~count:200 ~name:"histogram buckets monotone, conserve"
    gen_samples (fun samples ->
      with_config Obs.Config.default (fun () ->
          let h = Obs.Metrics.histogram "test.hist" in
          List.iter (Obs.Metrics.observe h) samples;
          let buckets = Obs.Metrics.histogram_buckets h in
          let count, sum, _, _ = Obs.Metrics.histogram_stats h in
          let bounds = List.map fst buckets in
          let counts = List.map snd buckets in
          let rec ascending = function
            | a :: (b :: _ as rest) -> a < b && ascending rest
            | _ -> true
          in
          ascending bounds
          && List.for_all (fun c -> c > 0) counts
          && List.fold_left ( + ) 0 counts = List.length samples
          && count = List.length samples
          && Float.abs (sum -. List.fold_left ( +. ) 0. samples)
             <= 1e-9 *. (1. +. Float.abs sum)))

(* --- logical mode omits wall-clock data -------------------------------- *)

let test_logical_mode_no_clocks () =
  with_config
    { Obs.Config.default with sink = Obs.Config.Memory }
    (fun () ->
      let sp =
        Obs.Trace.span_begin "s"
          ~attrs:[ ("n", Obs.Trace.Int 1); ("wall_x", Obs.Trace.Float 2.) ]
      in
      Obs.Trace.span_end sp;
      let evs = Obs.Trace.events () in
      Alcotest.(check int) "two events" 2 (List.length evs);
      List.iter
        (fun (e : Obs.Trace.event) ->
          Alcotest.(check bool)
            "wall_s is nan in logical mode" true
            (Float.is_nan e.Obs.Trace.wall_s);
          let json = Obs.Trace.event_to_json e in
          let contains needle hay =
            let nl = String.length needle and hl = String.length hay in
            let rec go i = i + nl <= hl
                           && (String.sub hay i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "no wall_s in JSON" false (contains "wall_s" json);
          Alcotest.(check bool) "no wall_ attrs in JSON" false (contains "wall_x" json))
        evs);
  with_config
    { Obs.Config.default with wall_clock = true; sink = Obs.Config.Memory }
    (fun () ->
      let sp = Obs.Trace.span_begin "s" in
      Obs.Trace.span_end sp;
      List.iter
        (fun (e : Obs.Trace.event) ->
          Alcotest.(check bool)
            "wall_s present in profile mode" true
            (Float.is_finite e.Obs.Trace.wall_s))
        (Obs.Trace.events ()))

(* --- traced sweep: JSONL identical across --jobs ----------------------- *)

let sweep_trace_jsonl ~jobs =
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let obs =
        { Obs.Config.default with sink = Obs.Config.Jsonl_file path }
      in
      let sweep = run_sweep ~obs ~jobs () in
      let cells = Obs.Metrics.counter_value (Obs.Metrics.counter "pipeline.cells") in
      Obs.Sink.flush ();
      Obs.Config.install Obs.Config.disabled;
      (read_file path, signature sweep, cells))

let test_trace_jobs_identical () =
  let t1, sig1, cells1 = sweep_trace_jsonl ~jobs:1 in
  let t4, sig4, cells4 = sweep_trace_jsonl ~jobs:4 in
  let total =
    List.length sweep_fixture * List.length sweep_fractions
  in
  Alcotest.(check int) "all cells metered at jobs=1" total cells1;
  Alcotest.(check int) "worker counters merged at jobs=4" total cells4;
  Alcotest.(check bool) "results identical" true (sig1 = sig4);
  let lines s =
    String.split_on_char '\n' s |> List.filter (fun l -> l <> "")
  in
  let l1 = lines t1 in
  Alcotest.(check bool) "trace is non-trivial" true (List.length l1 > 20);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        "line is a JSON object with a scope" true
        (String.length l > 12
        && String.sub l 0 10 = {|{"scope":"|}
        && l.[String.length l - 1] = '}'))
    l1;
  (* The headline property: the merged jobs=4 trace is byte-identical
     to the sequential one. *)
  Alcotest.(check string) "jsonl trace identical at jobs 1 and 4" t1 t4

(* --- null sink does not perturb results -------------------------------- *)

let test_null_sink_determinism () =
  Obs.Config.install Obs.Config.disabled;
  let untraced = signature (run_sweep ~jobs:1 ()) in
  let traced =
    Fun.protect
      ~finally:(fun () -> Obs.Config.install Obs.Config.disabled)
      (fun () -> signature (run_sweep ~obs:Obs.Config.default ~jobs:1 ()))
  in
  let traced4 =
    Fun.protect
      ~finally:(fun () -> Obs.Config.install Obs.Config.disabled)
      (fun () -> signature (run_sweep ~obs:Obs.Config.default ~jobs:4 ()))
  in
  Alcotest.(check bool) "traced = untraced at jobs=1" true (untraced = traced);
  Alcotest.(check bool) "traced = untraced at jobs=4" true (untraced = traced4)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_well_bracketed; prop_histogram_buckets ]
  in
  Alcotest.run "obs"
    [
      ("properties", props);
      ( "trace",
        [
          Alcotest.test_case "logical mode omits clocks" `Quick
            test_logical_mode_no_clocks;
          Alcotest.test_case "jsonl identical across jobs" `Slow
            test_trace_jobs_identical;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "null sink non-interference" `Slow
            test_null_sink_determinism;
        ] );
    ]
