(* Tests for the topology substrate: graphs, shortest paths, generators,
   and the system view (dist / fetch / know matrices). *)

let rng () = Util.Prng.create ~seed:2004

let lat100_200 = Topology.Generate.default_hop_latency

(* --- graphs ------------------------------------------------------------ *)

let test_graph_basics () =
  let g = Topology.Graph.create 4 in
  Topology.Graph.add_edge g 0 1 10.;
  Topology.Graph.add_edge g 1 2 20.;
  Alcotest.(check int) "nodes" 4 (Topology.Graph.node_count g);
  Alcotest.(check int) "edges" 2 (Topology.Graph.edge_count g);
  Alcotest.(check bool) "has 0-1" true (Topology.Graph.has_edge g 0 1);
  Alcotest.(check bool) "has 1-0" true (Topology.Graph.has_edge g 1 0);
  Alcotest.(check bool) "no 0-2" false (Topology.Graph.has_edge g 0 2);
  Alcotest.(check (option (float 1e-9))) "weight" (Some 20.)
    (Topology.Graph.edge_weight g 2 1);
  Alcotest.(check int) "degree 1" 2 (Topology.Graph.degree g 1);
  Alcotest.(check bool) "not connected" false (Topology.Graph.is_connected g)

let test_graph_rejects_bad_edges () =
  let g = Topology.Graph.create 3 in
  Topology.Graph.add_edge g 0 1 5.;
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Topology.Graph.add_edge g 1 1 1.);
  Alcotest.check_raises "parallel"
    (Invalid_argument "Graph.add_edge: parallel edge") (fun () ->
      Topology.Graph.add_edge g 1 0 2.);
  Alcotest.check_raises "negative"
    (Invalid_argument "Graph.add_edge: negative latency") (fun () ->
      Topology.Graph.add_edge g 1 2 (-1.))

let test_graph_of_edges_roundtrip () =
  let edges = [ (0, 1, 5.); (1, 2, 7.); (0, 3, 2.) ] in
  let g = Topology.Graph.of_edges 4 edges in
  Alcotest.(check int) "edge count" 3 (List.length (Topology.Graph.edges g));
  List.iter
    (fun (u, v, w) ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "weight %d-%d" u v)
        (Some w)
        (Topology.Graph.edge_weight g u v))
    edges

(* --- shortest paths ----------------------------------------------------- *)

let test_dijkstra_line () =
  let g = Topology.Graph.of_edges 4 [ (0, 1, 1.); (1, 2, 2.); (2, 3, 4.) ] in
  let d = Topology.Shortest_path.dijkstra g 0 in
  Alcotest.(check (float 1e-9)) "d0" 0. d.(0);
  Alcotest.(check (float 1e-9)) "d1" 1. d.(1);
  Alcotest.(check (float 1e-9)) "d2" 3. d.(2);
  Alcotest.(check (float 1e-9)) "d3" 7. d.(3)

let test_dijkstra_prefers_cheaper_path () =
  let g =
    Topology.Graph.of_edges 3 [ (0, 1, 10.); (0, 2, 1.); (2, 1, 2.) ]
  in
  let d = Topology.Shortest_path.dijkstra g 0 in
  Alcotest.(check (float 1e-9)) "via 2" 3. d.(1)

let test_dijkstra_unreachable () =
  let g = Topology.Graph.of_edges 3 [ (0, 1, 1.) ] in
  let d = Topology.Shortest_path.dijkstra g 0 in
  Alcotest.(check bool) "infinite" true (d.(2) = infinity)

let prop_dijkstra_matches_floyd_warshall =
  QCheck2.Test.make ~count:60 ~name:"dijkstra all-pairs = floyd-warshall"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed in
      let n = 2 + Util.Prng.int rng 12 in
      let g =
        Topology.Generate.as_like ~rng ~nodes:n ~latency:lat100_200 ()
      in
      let a = Topology.Shortest_path.all_pairs g in
      let b = Topology.Shortest_path.floyd_warshall g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if not (Util.Vecops.approx_equal ~eps:1e-6 a.(i).(j) b.(i).(j)) then
            ok := false
        done
      done;
      !ok)

let prop_shortest_paths_metric =
  QCheck2.Test.make ~count:40
    ~name:"shortest-path matrix is symmetric and satisfies triangle inequality"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(seed + 17) in
      let n = 2 + Util.Prng.int rng 10 in
      let g = Topology.Generate.as_like ~rng ~nodes:n ~latency:lat100_200 () in
      let d = Topology.Shortest_path.all_pairs g in
      let ok = ref true in
      for i = 0 to n - 1 do
        if d.(i).(i) <> 0. then ok := false;
        for j = 0 to n - 1 do
          if not (Util.Vecops.approx_equal ~eps:1e-6 d.(i).(j) d.(j).(i)) then
            ok := false;
          for k = 0 to n - 1 do
            if d.(i).(j) > d.(i).(k) +. d.(k).(j) +. 1e-6 then ok := false
          done
        done
      done;
      !ok)

(* --- generators ---------------------------------------------------------- *)

let test_as_like_connected_and_sized () =
  let g =
    Topology.Generate.as_like ~rng:(rng ()) ~nodes:20 ~latency:lat100_200 ()
  in
  Alcotest.(check int) "20 nodes" 20 (Topology.Graph.node_count g);
  Alcotest.(check bool) "connected" true (Topology.Graph.is_connected g);
  Alcotest.(check bool) "at least a tree" true
    (Topology.Graph.edge_count g >= 19);
  List.iter
    (fun (_, _, w) ->
      Alcotest.(check bool) "hop latency in [100, 200]" true
        (w >= 100. && w <= 200.))
    (Topology.Graph.edges g)

let test_as_like_degree_skew () =
  (* Preferential attachment should produce a clear hub: max degree well
     above the minimum. *)
  let g =
    Topology.Generate.as_like ~rng:(rng ()) ~nodes:40 ~latency:lat100_200 ()
  in
  let degrees =
    Array.init 40 (fun v -> Topology.Graph.degree g v)
  in
  let dmax = Array.fold_left max 0 degrees in
  Alcotest.(check bool) "hub exists" true (dmax >= 5)

let test_regular_shapes () =
  let r = rng () in
  let ring = Topology.Generate.ring ~rng:r ~nodes:6 ~latency:lat100_200 in
  Alcotest.(check int) "ring edges" 6 (Topology.Graph.edge_count ring);
  let star = Topology.Generate.star ~rng:r ~nodes:6 ~latency:lat100_200 in
  Alcotest.(check int) "star edges" 5 (Topology.Graph.edge_count star);
  Alcotest.(check int) "star hub degree" 5 (Topology.Graph.degree star 0);
  let grid = Topology.Generate.grid ~rng:r ~width:3 ~height:2 ~latency:lat100_200 in
  Alcotest.(check int) "grid edges" 7 (Topology.Graph.edge_count grid);
  let clique = Topology.Generate.clique ~rng:r ~nodes:5 ~latency:lat100_200 in
  Alcotest.(check int) "clique edges" 10 (Topology.Graph.edge_count clique);
  List.iter
    (fun g -> Alcotest.(check bool) "connected" true (Topology.Graph.is_connected g))
    [ ring; star; grid; clique ]

let test_headquarters_is_max_degree () =
  let g = Topology.Graph.of_edges 4 [ (0, 1, 1.); (1, 2, 1.); (1, 3, 1.) ] in
  Alcotest.(check int) "hq" 1 (Topology.Generate.headquarters g)

(* --- system view ---------------------------------------------------------- *)

let line_system () =
  (* 0 -- 1 -- 2 -- 3 with 100ms hops; origin at node 0. *)
  let g =
    Topology.Graph.of_edges 4 [ (0, 1, 100.); (1, 2, 100.); (2, 3, 100.) ]
  in
  Topology.System.make ~origin:0 g

let test_within_threshold () =
  let sys = line_system () in
  let dist = Topology.System.within_threshold sys ~tlat:150. in
  Alcotest.(check bool) "self" true dist.(2).(2);
  Alcotest.(check bool) "one hop" true dist.(1).(0);
  Alcotest.(check bool) "two hops too far" false dist.(2).(0);
  let dist250 = Topology.System.within_threshold sys ~tlat:250. in
  Alcotest.(check bool) "two hops within 250" true dist250.(2).(0)

let test_covers () =
  let sys = line_system () in
  Alcotest.(check (list int)) "replica at 1 covers 0,1,2" [ 0; 1; 2 ]
    (Topology.System.covers sys ~tlat:150. 1)

let test_fetch_matrices () =
  let sys = line_system () in
  let local = Topology.System.fetch_matrix sys Topology.System.Route_local in
  Alcotest.(check bool) "self" true local.(2).(2);
  Alcotest.(check bool) "origin" true local.(2).(0);
  Alcotest.(check bool) "not peer" false local.(2).(1);
  let glob_fetch = Topology.System.fetch_matrix sys Topology.System.Route_global in
  Alcotest.(check bool) "global peer" true glob_fetch.(2).(1)

let test_know_matrices () =
  let sys = line_system () in
  let local = Topology.System.know_matrix sys Topology.System.Know_local in
  Alcotest.(check bool) "self" true local.(3).(3);
  Alcotest.(check bool) "not peer" false local.(3).(1);
  let g = Topology.System.know_matrix sys Topology.System.Know_global in
  Alcotest.(check bool) "global" true g.(3).(1)

let test_effective_reach_combines () =
  let sys = line_system () in
  (* Route_local at node 1: can reach itself and origin (0, one hop,
     100 <= 150), but not node 2 even though 2 is within threshold. *)
  let reach =
    Topology.System.effective_reach sys ~tlat:150. Topology.System.Route_local
  in
  Alcotest.(check bool) "self" true reach.(1).(1);
  Alcotest.(check bool) "origin in reach" true reach.(1).(0);
  Alcotest.(check bool) "peer excluded by routing" false reach.(1).(2);
  (* Node 3 is 300ms from the origin: routable but not within latency. *)
  Alcotest.(check bool) "origin too far from 3" false reach.(3).(0)

let test_system_rejects_disconnected () =
  let g = Topology.Graph.of_edges 3 [ (0, 1, 1.) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "System.make: graph must be connected") (fun () ->
      ignore (Topology.System.make g))


(* --- serialization -------------------------------------------------------- *)

let test_topo_io_roundtrip () =
  let g =
    Topology.Generate.as_like ~rng:(rng ()) ~nodes:12 ~latency:lat100_200 ()
  in
  let s = Topology.Topo_io.to_string ~origin:3 g in
  let g2, origin = Topology.Topo_io.of_string s in
  Alcotest.(check (option int)) "origin" (Some 3) origin;
  Alcotest.(check int) "nodes" 12 (Topology.Graph.node_count g2);
  Alcotest.(check int) "edges" (Topology.Graph.edge_count g)
    (Topology.Graph.edge_count g2);
  List.iter
    (fun (u, v, w) ->
      Alcotest.(check (option (float 1e-6))) "edge weight" (Some w)
        (Topology.Graph.edge_weight g2 u v))
    (Topology.Graph.edges g)

let test_topo_io_load_system () =
  let g = Topology.Graph.of_edges 3 [ (0, 1, 100.); (1, 2, 100.) ] in
  let path = Filename.temp_file "topo" ".csv" in
  Topology.Topo_io.save ~origin:1 g ~path;
  let sys = Topology.Topo_io.load_system ~path in
  Sys.remove path;
  Alcotest.(check int) "origin from file" 1 sys.Topology.System.origin

let test_topo_io_rejects_garbage () =
  match Topology.Topo_io.of_string "nope" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "should reject"

let topo_header = "# replica-select topology v1 nodes=3\nu,v,latency_ms\n"

let test_topo_io_structured_errors () =
  (match Topology.Topo_io.parse "nope" with
  | Error e ->
    Alcotest.(check int) "whole-file error" 0 e.Topology.Topo_io.line
  | Ok _ -> Alcotest.fail "garbage must be rejected");
  (match Topology.Topo_io.parse (topo_header ^ "0,1,100\n1,2,nan\n") with
  | Error e ->
    Alcotest.(check int) "NaN latency line" 4 e.Topology.Topo_io.line;
    Alcotest.(check string) "NaN latency message" "non-finite latency"
      e.Topology.Topo_io.msg;
    Alcotest.(check string) "rendered location" "<topology>:4: non-finite latency"
      (Topology.Topo_io.error_to_string e)
  | Ok _ -> Alcotest.fail "NaN latency must be rejected");
  (match Topology.Topo_io.parse (topo_header ^ "0,1,inf\n") with
  | Error e -> Alcotest.(check int) "inf latency line" 3 e.Topology.Topo_io.line
  | Ok _ -> Alcotest.fail "infinite latency must be rejected");
  (match Topology.Topo_io.parse (topo_header ^ "0,1,-5\n") with
  | Error e ->
    Alcotest.(check string) "negative latency" "negative latency"
      e.Topology.Topo_io.msg
  | Ok _ -> Alcotest.fail "negative latency must be rejected");
  (match Topology.Topo_io.parse (topo_header ^ "0,1\n") with
  | Error e ->
    Alcotest.(check string) "truncated record"
      "expected 3 comma-separated fields" e.Topology.Topo_io.msg
  | Ok _ -> Alcotest.fail "truncated record must be rejected");
  (* The legacy wrapper renders the structured error, line included. *)
  match Topology.Topo_io.of_string (topo_header ^ "0,1,100\n1,2,nan\n") with
  | exception Failure msg ->
    Alcotest.(check string) "legacy failure"
      "<topology>:4: non-finite latency" msg
  | _ -> Alcotest.fail "legacy of_string must also reject"

let test_topo_io_load_result_missing_file () =
  (match Topology.Topo_io.load_result ~path:"/nonexistent/topo.csv" with
  | Error e ->
    Alcotest.(check int) "whole-file error" 0 e.Topology.Topo_io.line;
    Alcotest.(check string) "file carried" "/nonexistent/topo.csv"
      e.Topology.Topo_io.file
  | Ok _ -> Alcotest.fail "missing file must be an error");
  match Topology.Topo_io.load_system_result ~path:"/nonexistent/topo.csv" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be an error"

let test_topo_io_load_system_result_disconnected () =
  (* A parseable file describing a disconnected graph: the System.make
     validation failure must surface as a structured error, not a raise. *)
  let path = Filename.temp_file "topo" ".csv" in
  let oc = open_out path in
  output_string oc "# replica-select topology v1 nodes=3\nu,v,latency_ms\n0,1,100\n";
  close_out oc;
  let r = Topology.Topo_io.load_system_result ~path in
  Sys.remove path;
  match r with
  | Error e -> Alcotest.(check int) "whole-file error" 0 e.Topology.Topo_io.line
  | Ok _ -> Alcotest.fail "disconnected graph must be an error"

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "rejects bad edges" `Quick
            test_graph_rejects_bad_edges;
          Alcotest.test_case "of_edges roundtrip" `Quick
            test_graph_of_edges_roundtrip;
        ] );
      ( "shortest-path",
        [
          Alcotest.test_case "line" `Quick test_dijkstra_line;
          Alcotest.test_case "cheaper path" `Quick
            test_dijkstra_prefers_cheaper_path;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          QCheck_alcotest.to_alcotest prop_dijkstra_matches_floyd_warshall;
          QCheck_alcotest.to_alcotest prop_shortest_paths_metric;
        ] );
      ( "generate",
        [
          Alcotest.test_case "as_like" `Quick test_as_like_connected_and_sized;
          Alcotest.test_case "degree skew" `Quick test_as_like_degree_skew;
          Alcotest.test_case "regular shapes" `Quick test_regular_shapes;
          Alcotest.test_case "headquarters" `Quick
            test_headquarters_is_max_degree;
        ] );
      ( "topo-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_topo_io_roundtrip;
          Alcotest.test_case "load system" `Quick test_topo_io_load_system;
          Alcotest.test_case "rejects garbage" `Quick
            test_topo_io_rejects_garbage;
          Alcotest.test_case "structured errors" `Quick
            test_topo_io_structured_errors;
          Alcotest.test_case "missing file" `Quick
            test_topo_io_load_result_missing_file;
          Alcotest.test_case "disconnected system" `Quick
            test_topo_io_load_system_result_disconnected;
        ] );
      ( "system",
        [
          Alcotest.test_case "within threshold" `Quick test_within_threshold;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "fetch matrices" `Quick test_fetch_matrices;
          Alcotest.test_case "know matrices" `Quick test_know_matrices;
          Alcotest.test_case "effective reach" `Quick
            test_effective_reach_combines;
          Alcotest.test_case "rejects disconnected" `Quick
            test_system_rejects_disconnected;
        ] );
    ]
