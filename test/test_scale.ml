(* Tests for the scale machinery: object bundling (Mcperf.Bundle), the
   bundled + sharded Lagrangian decomposition, and the CDN scale
   scenario family. *)

module SS = Replica_select.Scale_scenario

let small_scen ?(seed = 7) ?(objects = 60) () =
  SS.make ~seed ~fanouts:[ 2; 3 ] ~objects ()

let small_spec ?seed ?objects ?(fraction = 0.95) () =
  SS.qos_spec (small_scen ?seed ?objects ()) ~fraction

(* --- the scenario family ------------------------------------------------ *)

let test_scenario_shape () =
  let scen = small_scen () in
  Alcotest.(check int) "nodes" 9 (SS.node_count scen);
  Alcotest.(check int) "leaves" 6 scen.SS.leaves;
  Alcotest.(check int) "objects" 60 (SS.object_count scen);
  (* Weights are all 1: the family is homogeneous by construction. *)
  Array.iter
    (fun w -> Alcotest.(check (float 0.)) "unit weight" 1. w)
    scen.SS.demand.Workload.Demand.weight

let test_scenario_deterministic () =
  let d1 = (small_scen ()).SS.demand and d2 = (small_scen ()).SS.demand in
  Alcotest.(check bool)
    "same demand" true
    (Marshal.to_string d1 [ Marshal.No_sharing ]
    = Marshal.to_string d2 [ Marshal.No_sharing ])

(* --- bundling ----------------------------------------------------------- *)

let bundle_of_spec spec =
  Mcperf.Bundle.compute (Mcperf.Permission.compute spec Mcperf.Classes.general)

let test_bundle_collapses () =
  let b = bundle_of_spec (small_spec ()) in
  Alcotest.(check int) "covers all objects" 60 b.Mcperf.Bundle.objects;
  Alcotest.(check bool)
    "strictly fewer bundles" true
    (b.Mcperf.Bundle.count < b.Mcperf.Bundle.objects);
  Alcotest.(check bool) "ratio > 1" true (Mcperf.Bundle.ratio b > 1.);
  (* Homogeneous weights: every member is exact, nothing is rescaled. *)
  Alcotest.(check int) "no rescaled members" 0 b.Mcperf.Bundle.rescaled;
  Array.iter
    (fun e -> Alcotest.(check bool) "exact member" true e)
    b.Mcperf.Bundle.exact_member;
  (* Structural consistency: representatives name their own bundle, and
     every member maps to a live bundle. *)
  Array.iteri
    (fun i rep ->
      Alcotest.(check int) "rep in own bundle" i b.Mcperf.Bundle.bundle_of.(rep))
    b.Mcperf.Bundle.representative;
  Array.iter
    (fun bi ->
      Alcotest.(check bool)
        "bundle id in range" true
        (bi >= 0 && bi < b.Mcperf.Bundle.count))
    b.Mcperf.Bundle.bundle_of

let test_bundle_trivial_is_identity () =
  let spec = small_spec () in
  let b =
    Mcperf.Bundle.trivial (Mcperf.Permission.compute spec Mcperf.Classes.general)
  in
  Alcotest.(check int) "one bundle per object" b.Mcperf.Bundle.objects
    b.Mcperf.Bundle.count;
  Alcotest.(check (float 0.)) "ratio 1" 1. (Mcperf.Bundle.ratio b);
  Array.iteri
    (fun k rep -> Alcotest.(check int) "identity" k rep)
    b.Mcperf.Bundle.representative

(* --- bundling exactness (homogeneous) ----------------------------------- *)

let test_bundled_equals_unbundled_exactly () =
  (* The scale family is homogeneous, so the bundled bound must equal
     the forced-unbundled one bit for bit, at every iteration budget and
     under both step rules. *)
  List.iter
    (fun rule ->
      List.iter
        (fun iters ->
          let spec = small_spec () in
          let b =
            Bounds.Lagrangian.bound ~iterations:iters ~step_rule:rule spec
              Mcperf.Classes.general
          in
          let u =
            Bounds.Lagrangian.bound ~iterations:iters ~step_rule:rule
              ~bundling:false spec Mcperf.Classes.general
          in
          Alcotest.(check bool)
            "bit-identical bound" true
            (b.Bounds.Lagrangian.bound = u.Bounds.Lagrangian.bound);
          Alcotest.(check bool)
            "bundling engaged" true
            (b.Bounds.Lagrangian.bundles < b.Bounds.Lagrangian.objects))
        [ 5; 25 ])
    [ Bounds.Lagrangian.Harmonic; Bounds.Lagrangian.Adaptive ]

(* --- bundling validity (heterogeneous weights) --------------------------- *)

(* Identical read patterns under different multiplicity weights: members
   of a bundle disagree on weight, so the guarded-rescale fallback
   engages. The rescaled bound must stay a valid lower bound on the
   exact LP optimum. *)
let hetero_spec ~seed () =
  let scen = small_scen ~seed () in
  let nodes = SS.node_count scen in
  let rng = Util.Prng.create ~seed:(seed + 11) in
  let objects = 24 in
  let patterns =
    Array.init 6 (fun _ ->
        let leaf = nodes - 1 - Util.Prng.int rng 6 in
        [| { Workload.Demand.node = leaf; interval = 0; count = 2. } |])
  in
  let reads = Array.init objects (fun k -> patterns.(k mod 6)) in
  let weight =
    Array.init objects (fun _ ->
        [| 1.0; 2.0; 3.5 |].(Util.Prng.int rng 3))
  in
  let demand =
    Workload.Demand.create ~nodes ~intervals:1 ~interval_s:3600. ~weight
      ~reads ()
  in
  Mcperf.Spec.make ~system:scen.SS.system ~demand
    ~goal:(Mcperf.Spec.Qos { tlat_ms = SS.default_tlat_ms; fraction = 0.95 })
    ()

let prop_hetero_bundled_below_lp =
  QCheck2.Test.make ~count:15
    ~name:"heterogeneous bundling: guarded rescale stays below LP optimum"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let spec = hetero_spec ~seed () in
      let cls = Mcperf.Classes.general in
      let perm = Mcperf.Permission.compute spec cls in
      if not (Mcperf.Permission.feasible perm) then true
      else begin
        let model = Mcperf.Model.build perm in
        match Lp.Simplex.solve model.Mcperf.Model.problem with
        | Lp.Simplex.Optimal { objective = lp; _ } ->
          let b = Bounds.Lagrangian.bound ~iterations:30 spec cls in
          let u =
            Bounds.Lagrangian.bound ~iterations:30 ~bundling:false spec cls
          in
          (* weights differ inside bundles, so the fallback must engage *)
          b.Bounds.Lagrangian.rescaled_members > 0
          && b.Bounds.Lagrangian.bound <= lp +. 1e-5
          && u.Bounds.Lagrangian.bound <= lp +. 1e-5
        | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> false
      end)

(* --- monotone dual bound under both step rules --------------------------- *)

(* Both step rules depend only on the trajectory so far, so a longer
   budget replays the shorter run's iterations exactly and the reported
   best bound can only improve. *)
let prop_bound_monotone_in_iterations =
  QCheck2.Test.make ~count:10
    ~name:"dual bound monotone nondecreasing in the iteration budget"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 15))
    (fun (seed, base_iters) ->
      let spec = small_spec ~seed:(seed + 3) ~objects:30 () in
      List.for_all
        (fun rule ->
          let bound_at iters =
            (Bounds.Lagrangian.bound ~iterations:iters ~step_rule:rule spec
               Mcperf.Classes.general)
              .Bounds.Lagrangian.bound
          in
          let b1 = bound_at base_iters in
          let b2 = bound_at (base_iters * 2) in
          let b3 = bound_at ((base_iters * 2) + 7) in
          b1 <= b2 && b2 <= b3)
        [ Bounds.Lagrangian.Harmonic; Bounds.Lagrangian.Adaptive ])

(* --- sharded dispatch is invisible --------------------------------------- *)

let signature (outs : (float * Bounds.Lagrangian.outcome) list) =
  Marshal.to_string outs [ Marshal.No_sharing ]

let test_jobs_identical () =
  let spec = small_spec () in
  let sweep_at jobs =
    Bounds.Lagrangian.sweep ~iterations:20 ~jobs spec Mcperf.Classes.general
      ~fractions:[ 0.9; 0.95; 0.99 ]
  in
  Alcotest.(check bool)
    "jobs=1 and jobs=4 byte-identical" true
    (signature (sweep_at 1) = signature (sweep_at 4))

let test_sweep_matches_pointwise_bound () =
  (* The sweep shares the bundling and subproblem models across points;
     each point must still equal an independent [bound] call. *)
  let spec = small_spec () in
  let sweep =
    Bounds.Lagrangian.sweep ~iterations:20 spec Mcperf.Classes.general
      ~fractions:[ 0.9; 0.99 ]
  in
  List.iter
    (fun (q, (out : Bounds.Lagrangian.outcome)) ->
      let spec_q =
        {
          spec with
          Mcperf.Spec.goal =
            Mcperf.Spec.Qos { tlat_ms = SS.default_tlat_ms; fraction = q };
        }
      in
      let solo =
        Bounds.Lagrangian.bound ~iterations:20 spec_q Mcperf.Classes.general
      in
      Alcotest.(check bool)
        "sweep point = solo bound" true
        (out.Bounds.Lagrangian.bound = solo.Bounds.Lagrangian.bound))
    sweep

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_hetero_bundled_below_lp; prop_bound_monotone_in_iterations ]
  in
  Alcotest.run "scale"
    [
      ( "scenario",
        [
          Alcotest.test_case "shape" `Quick test_scenario_shape;
          Alcotest.test_case "deterministic" `Quick
            test_scenario_deterministic;
        ] );
      ( "bundle",
        [
          Alcotest.test_case "collapses homogeneous tail" `Quick
            test_bundle_collapses;
          Alcotest.test_case "trivial is identity" `Quick
            test_bundle_trivial_is_identity;
        ] );
      ( "lagrangian",
        [
          Alcotest.test_case "bundled = unbundled bit-for-bit" `Quick
            test_bundled_equals_unbundled_exactly;
          Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_identical;
          Alcotest.test_case "sweep = pointwise bounds" `Quick
            test_sweep_matches_pointwise_bound;
        ] );
      ("properties", props);
    ]
