(* Differential tests for the LP stack, plus parallel-sweep determinism.

   The methodology's conclusions are only as good as the agreement between
   its bound producers: the exact simplex, the first-order PDHG solver,
   and the weak-duality certificate. This suite cross-checks them on two
   families of PRNG-seeded instances:

   - random dense LPs (feasible by construction: every row is satisfied
     with slack at a random interior point of the box);
   - random small MC-PERF instances drawn from the case-study generator
     across seeds, workloads, node counts and heuristic classes.

   Invariants: PDHG's certified bound must agree with the simplex optimum
   within tolerance, and no certificate value may ever exceed the simplex
   optimum (weak duality — the property the paper's methodology rests
   on). The determinism section then checks that the parallel sweep
   engine returns byte-identical reports at every jobs setting. *)

module CS = Replica_select.Case_study
module Report = Replica_select.Report

let instances = 50

(* Relative tolerances calibrated against the solvers: PDHG at rel_tol
   1e-8 closes the gap to ~1e-9 on the dense family and ~2e-6 on the
   MC-PERF family (where it occasionally stops on the tolerance plateau
   short of full convergence); weak duality is exact up to rounding. *)
let agree_tol = 1e-4
let duality_tol = 1e-9

let tight_pdhg =
  {
    Lp.Pdhg.default_options with
    max_iters = 100_000;
    rel_tol = 1e-8;
    check_every = 25;
  }

(* --- random dense LPs --------------------------------------------------- *)

let random_dense_lp rng =
  let open Lp.Problem in
  let nvars = 3 + Util.Prng.int rng 6 in
  let b = Builder.create () in
  let hi = Array.init nvars (fun _ -> 1. +. Util.Prng.float rng 9.) in
  for j = 0 to nvars - 1 do
    ignore
      (Builder.add_var b ~lo:0. ~hi:hi.(j)
         ~obj:(Util.Prng.float rng 2. -. 1.)
         ())
  done;
  (* Interior point certifying feasibility; rows get slack around it. *)
  let xstar =
    Array.init nvars (fun j -> hi.(j) *. (0.2 +. Util.Prng.float rng 0.6))
  in
  let nrows = nvars + Util.Prng.int rng nvars in
  for _ = 1 to nrows do
    let coeffs = ref [] and dot = ref 0. in
    for j = 0 to nvars - 1 do
      if Util.Prng.float rng 1. < 0.5 then begin
        let c = Util.Prng.float rng 4. -. 2. in
        coeffs := (j, c) :: !coeffs;
        dot := !dot +. (c *. xstar.(j))
      end
    done;
    if !coeffs = [] then begin
      let j = Util.Prng.int rng nvars in
      coeffs := [ (j, 1.) ];
      dot := xstar.(j)
    end;
    let slack = 0.1 +. Util.Prng.float rng 1. in
    if Util.Prng.float rng 1. < 0.5 then
      Builder.add_row b Ge ~rhs:(!dot -. slack) !coeffs
    else Builder.add_row b Le ~rhs:(!dot +. slack) !coeffs
  done;
  Builder.build b

let check_against_simplex ~what ~index problem =
  match Lp.Simplex.solve problem with
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
    Alcotest.failf "%s %d: simplex did not return an optimum" what index
  | Lp.Simplex.Optimal { objective = opt; _ } ->
    let out = Lp.Pdhg.solve ~options:tight_pdhg problem in
    let scale = 1. +. Float.abs opt in
    (* The fused iteration must track the pre-fusion reference exactly:
       both run the same recurrence with the same operation order, so
       their iterates agree far below the 1e-9 budget. *)
    let ref_out = Lp.Pdhg.solve_reference ~options:tight_pdhg problem in
    Alcotest.(check int)
      (Printf.sprintf "%s %d: fused/reference same iteration count" what index)
      ref_out.Lp.Pdhg.iterations out.Lp.Pdhg.iterations;
    Alcotest.(check bool)
      (Printf.sprintf "%s %d: fused matches reference bound" what index)
      true
      (Float.abs (out.Lp.Pdhg.best_bound -. ref_out.Lp.Pdhg.best_bound)
      <= 1e-9 *. scale);
    let max_dx = ref 0. in
    Array.iteri
      (fun j v ->
        max_dx := Float.max !max_dx (Float.abs (v -. ref_out.Lp.Pdhg.x.(j))))
      out.Lp.Pdhg.x;
    Alcotest.(check bool)
      (Printf.sprintf "%s %d: fused matches reference iterates (%.1e)" what
         index !max_dx)
      true (!max_dx <= 1e-9);
    let gap = (opt -. out.Lp.Pdhg.best_bound) /. scale in
    Alcotest.(check bool)
      (Printf.sprintf "%s %d: pdhg agrees (gap %.3e)" what index gap)
      true (gap <= agree_tol);
    Alcotest.(check bool)
      (Printf.sprintf "%s %d: pdhg bound below optimum" what index)
      true
      (out.Lp.Pdhg.best_bound -. opt <= duality_tol *. scale);
    (* Recomputing the certificate from the best dual iterate must again
       stay below the optimum: weak duality holds for ANY multiplier. *)
    let cert =
      Lp.Certificate.dual_bound
        (Lp.Problem.normalize_ge problem)
        ~y:out.Lp.Pdhg.best_y
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s %d: certificate below optimum" what index)
      true
      (cert -. opt <= duality_tol *. scale)

let test_dense_lps () =
  let rng = Util.Prng.create ~seed:77 in
  for index = 1 to instances do
    check_against_simplex ~what:"dense LP" ~index (random_dense_lp rng)
  done

(* --- random small MC-PERF instances ------------------------------------- *)

let mcperf_classes =
  [|
    Mcperf.Classes.general;
    Mcperf.Classes.storage_constrained;
    Mcperf.Classes.replica_constrained_uniform;
    Mcperf.Classes.decentralized_local_routing;
    Mcperf.Classes.cooperative_caching;
  |]

let test_mcperf_instances () =
  let solved = ref 0 in
  for seed = 0 to instances - 1 do
    let workload = if seed mod 2 = 0 then CS.Web else CS.Group in
    let nodes = 4 + (seed mod 3) in
    let cs =
      CS.make ~seed:(1000 + seed) ~nodes ~scale:0.002 ~intervals:4 workload
    in
    let fraction = if seed mod 3 = 0 then 0.9 else 0.95 in
    let spec = CS.qos_spec cs ~fraction ~for_bounds:true () in
    let cls = mcperf_classes.(seed mod Array.length mcperf_classes) in
    let perm = Mcperf.Permission.compute spec cls in
    (* Goal-infeasible draws (caching above its cold-miss ceiling) carry
       no LP to compare; the oracle's verdict is itself part of the
       pipeline and is exercised by test_bounds. *)
    if Mcperf.Permission.feasible perm then begin
      incr solved;
      let model = Mcperf.Model.build perm in
      check_against_simplex ~what:"mcperf" ~index:seed
        model.Mcperf.Model.problem
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough feasible instances (%d)" !solved)
    true (!solved >= 35)

(* --- presolve round-trip ------------------------------------------------- *)

(* Pin one variable of each random LP so presolve has something to
   eliminate, then check the whole chain in the original space: the
   reduced optimum plus [offset] equals the original optimum, [restore]
   yields an original-feasible point whose objective is that optimum, and
   a PDHG certificate computed on the reduced problem remains a valid
   original-space lower bound after the offset shift. This is exactly the
   contract the bounds pipeline relies on. *)
let test_presolve_roundtrip () =
  let rng = Util.Prng.create ~seed:177 in
  let solved = ref 0 in
  for index = 1 to instances do
    let p = random_dense_lp rng in
    let fix_j = index mod Lp.Problem.nvars p in
    let v = 0.5 *. p.Lp.Problem.upper.(fix_j) in
    let p = Lp.Problem.with_var_bounds p fix_j ~lo:v ~hi:v in
    match Lp.Simplex.solve p with
    | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
      (* Pinning can cut off the feasible region; nothing to compare. *)
      ()
    | Lp.Simplex.Optimal { objective = opt; _ } ->
      incr solved;
      let r = Lp.Presolve.run p in
      let scale = 1. +. Float.abs opt in
      Alcotest.(check bool)
        (Printf.sprintf "presolve %d: reduction happened" index)
        true
        (r.Lp.Presolve.status = `Reduced);
      let red = r.Lp.Presolve.reduced in
      let bound, x_red =
        if Lp.Problem.nvars red = 0 then (r.Lp.Presolve.offset, [||])
        else
          match Lp.Simplex.solve red with
          | Lp.Simplex.Optimal { x; objective } ->
            (objective +. r.Lp.Presolve.offset, x)
          | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
            Alcotest.failf "presolve %d: reduced problem unsolvable" index
      in
      Alcotest.(check bool)
        (Printf.sprintf "presolve %d: optimum preserved" index)
        true
        (Float.abs (bound -. opt) <= 1e-6 *. scale);
      let x = r.Lp.Presolve.restore x_red in
      Alcotest.(check bool)
        (Printf.sprintf "presolve %d: restored point feasible" index)
        true
        (Lp.Problem.max_violation p x <= 1e-6);
      Alcotest.(check bool)
        (Printf.sprintf "presolve %d: restored objective matches" index)
        true
        (Float.abs (Lp.Problem.objective_value p x -. bound) <= 1e-6 *. scale);
      if Lp.Problem.nvars red > 0 then begin
        let out = Lp.Pdhg.solve ~options:tight_pdhg red in
        let cert =
          Lp.Certificate.dual_bound
            (Lp.Problem.normalize_ge red)
            ~y:out.Lp.Pdhg.best_y
        in
        Alcotest.(check bool)
          (Printf.sprintf "presolve %d: shifted certificate below optimum"
             index)
          true
          (cert +. r.Lp.Presolve.offset -. opt <= duality_tol *. scale)
      end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough feasible pinned instances (%d)" !solved)
    true (!solved >= 35)

(* --- parallel-sweep determinism ------------------------------------------ *)

(* The quickstart scenario: six sites, a Zipf workload, a 99% QoS goal. *)
let quickstart_spec () =
  let graph =
    Topology.Graph.of_edges 6
      [
        (0, 1, 120.);
        (0, 2, 140.);
        (0, 3, 180.);
        (3, 4, 110.);
        (4, 5, 130.);
        (1, 2, 100.);
      ]
  in
  let system = Topology.System.make graph in
  let rng = Util.Prng.create ~seed:42 in
  let trace =
    Workload.Synthesize.web ~rng
      {
        Workload.Synthesize.web_spec with
        nodes = 6;
        objects = 40;
        total_requests = 5_000;
        max_object_requests = 600;
        min_object_requests = 1;
      }
  in
  let demand = Workload.Demand.of_trace ~intervals:12 trace in
  let spec =
    Mcperf.Spec.make ~system ~demand
      ~goal:(Mcperf.Spec.Qos { tlat_ms = 150.; fraction = 0.99 })
      ()
  in
  (spec, trace)

let sweep_fixture =
  [
    ("general", Mcperf.Classes.general);
    ("storage-constrained", Mcperf.Classes.storage_constrained);
    ("replica-constrained", Mcperf.Classes.replica_constrained_uniform);
  ]

let figure_of (sweep : Bounds.Pipeline.sweep) =
  List.map
    (fun (label, cells) ->
      Report.series_of ~label
        (List.map
           (fun (q, (r : Bounds.Pipeline.t)) ->
             ( q,
               if r.Bounds.Pipeline.feasible then
                 Some r.Bounds.Pipeline.lower_bound
               else None ))
           cells))
    sweep.Bounds.Pipeline.per_class

let strip_walls (sweep : Bounds.Pipeline.sweep) =
  ( sweep.Bounds.Pipeline.per_class,
    List.map
      (fun (s : Bounds.Pipeline.task_stat) ->
        (s.Bounds.Pipeline.label, s.Bounds.Pipeline.x,
         s.Bounds.Pipeline.iterations, s.Bounds.Pipeline.solved_exactly))
      sweep.Bounds.Pipeline.stats )

let test_sweep_determinism () =
  let spec, _ = quickstart_spec () in
  let fractions = [ 0.95; 0.99; 0.999 ] in
  let cfg jobs = Bounds.Pipeline.Sweep_config.(default |> with_jobs jobs) in
  let seq = Bounds.Pipeline.sweep_classes (cfg 1) spec ~fractions sweep_fixture in
  let par = Bounds.Pipeline.sweep_classes (cfg 4) spec ~fractions sweep_fixture in
  (* The rendered report must be byte-identical, and so must everything
     under it except the wall-clock fields. *)
  Alcotest.(check string)
    "csv report byte-identical"
    (Report.csv_of_figure (figure_of seq))
    (Report.csv_of_figure (figure_of par));
  Alcotest.(check bool)
    "results identical (incl. iterations and placements)" true
    (strip_walls seq = strip_walls par)

(* --- incremental model reuse --------------------------------------------- *)

(* [Model.with_fraction] promises value-identity with a fresh build at the
   new fraction: same problem (hence byte-identical solver behaviour) and
   same derived tables. The sweep fast path rests on this. *)
let test_with_fraction_identity () =
  let spec, _ = quickstart_spec () in
  let goal fraction = Mcperf.Spec.Qos { tlat_ms = 150.; fraction } in
  List.iter
    (fun (label, cls) ->
      let spec0 = { spec with Mcperf.Spec.goal = goal 0.95 } in
      let perm0 = Mcperf.Permission.compute spec0 cls in
      if Mcperf.Permission.feasible perm0 then begin
        let base = Mcperf.Model.build perm0 in
        List.iter
          (fun fraction ->
            let patched = Mcperf.Model.with_fraction base fraction in
            let spec' = { spec with Mcperf.Spec.goal = goal fraction } in
            let fresh =
              Mcperf.Model.build (Mcperf.Permission.compute spec' cls)
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s @ %g: problem byte-identical" label fraction)
              true
              (patched.Mcperf.Model.problem = fresh.Mcperf.Model.problem);
            Alcotest.(check (float 0.))
              (Printf.sprintf "%s @ %g: same objective offset" label fraction)
              fresh.Mcperf.Model.objective_offset
              patched.Mcperf.Model.objective_offset;
            (* And the solver sees the same problem: identical bounds. *)
            let solve m =
              let out =
                Lp.Pdhg.solve
                  ~options:
                    { Lp.Pdhg.default_options with max_iters = 2_000 }
                  m.Mcperf.Model.problem
              in
              (out.Lp.Pdhg.best_bound, out.Lp.Pdhg.x)
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s @ %g: identical solve output" label fraction)
              true
              (solve patched = solve fresh))
          [ 0.99; 0.999; 0.9999 ]
      end)
    sweep_fixture

(* The cached sweep path (shared model + prepared matrix per class) must
   produce exactly what per-cell [compute] produces from scratch. *)
let test_sweep_matches_percell_compute () =
  let spec, _ = quickstart_spec () in
  let fractions = [ 0.95; 0.99; 0.999 ] in
  let sweep =
    Bounds.Pipeline.sweep_classes Bounds.Pipeline.Sweep_config.default spec
      ~fractions sweep_fixture
  in
  List.iter2
    (fun (label, cls) (label', cells) ->
      Alcotest.(check string) "class order preserved" label label';
      List.iter
        (fun (fraction, (r : Bounds.Pipeline.t)) ->
          let spec' =
            {
              spec with
              Mcperf.Spec.goal = Mcperf.Spec.Qos { tlat_ms = 150.; fraction };
            }
          in
          let direct = Bounds.Pipeline.compute spec' cls in
          Alcotest.(check bool)
            (Printf.sprintf "%s @ %g: sweep cell equals direct compute" label
               fraction)
            true (r = direct))
        cells)
    sweep_fixture sweep.Bounds.Pipeline.per_class

let test_runner_determinism () =
  let spec, trace = quickstart_spec () in
  let stripped = Option.map (fun (d : Sim.Runner.deployed) ->
      (d.Sim.Runner.name, d.Sim.Runner.parameter, d.Sim.Runner.cost,
       d.Sim.Runner.worst_qos))
  in
  Alcotest.(check bool)
    "greedy-global same at jobs=1/3" true
    (stripped (Sim.Runner.greedy_global ~spec ())
    = stripped (Sim.Runner.greedy_global ~jobs:3 ~spec ()));
  Alcotest.(check bool)
    "greedy-replica same at jobs=1/3" true
    (stripped (Sim.Runner.greedy_replica ~spec ())
    = stripped (Sim.Runner.greedy_replica ~jobs:3 ~spec ()));
  Alcotest.(check bool)
    "lru-caching same at jobs=1/4" true
    (stripped (Sim.Runner.lru_caching ~spec ~trace ())
    = stripped (Sim.Runner.lru_caching ~jobs:4 ~spec ~trace ()))

let prop_search_jobs_equivalent =
  QCheck2.Test.make ~count:200
    ~name:"k-section search equals bisection on monotone predicates"
    QCheck2.Gen.(
      tup3 (int_range 0 500) (int_range 0 500) (int_range 2 8))
    (fun (threshold, hi, jobs) ->
      let feasible p = p >= threshold in
      Sim.Search.min_feasible_int ~lo:0 ~hi feasible
      = Sim.Search.min_feasible_int ~jobs ~lo:0 ~hi feasible)

let () =
  Alcotest.run "differential"
    [
      ( "lp-stack",
        [
          Alcotest.test_case "random dense LPs: simplex vs pdhg vs certificate"
            `Quick test_dense_lps;
          Alcotest.test_case
            "random MC-PERF instances: simplex vs pdhg vs certificate" `Quick
            test_mcperf_instances;
          Alcotest.test_case "presolve round-trip on pinned random LPs" `Quick
            test_presolve_roundtrip;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "with_fraction equals fresh build" `Quick
            test_with_fraction_identity;
          Alcotest.test_case "cached sweep equals per-cell compute" `Quick
            test_sweep_matches_percell_compute;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel sweep byte-identical to sequential"
            `Quick test_sweep_determinism;
          Alcotest.test_case "parallel runner searches identical" `Quick
            test_runner_determinism;
          QCheck_alcotest.to_alcotest prop_search_jobs_equivalent;
        ] );
    ]
