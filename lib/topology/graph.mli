(** Undirected weighted graphs representing wide-area network topologies.

    Nodes are dense integers [0 .. node_count - 1]; each represents a site
    that may host users and replicas. Edge weights are link latencies in
    milliseconds. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] nodes. Requires [n >= 0]. *)

val node_count : t -> int
val edge_count : t -> int

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v w] adds an undirected edge of latency [w].
    Requires distinct valid endpoints and [w >= 0.]. Parallel edges are
    rejected; self-loops are rejected. *)

val has_edge : t -> int -> int -> bool

val edge_weight : t -> int -> int -> float option
(** Latency of the direct link, if present. *)

val neighbors : t -> int -> (int * float) list
(** Adjacent nodes with link latencies, in insertion order. *)

val degree : t -> int -> int

val edges : t -> (int * int * float) list
(** Every undirected edge once, with [u < v]. *)

val of_edges : int -> (int * int * float) list -> t
(** [of_edges n es] builds the graph on [n] nodes with the given edges. *)

val is_connected : t -> bool
(** Whether the graph is connected (the empty graph is connected). *)

val is_tree : t -> bool
(** Whether the graph is a tree: connected with exactly [node_count - 1]
    edges. The empty graph is not a tree; the single node is. *)

val pp : Format.formatter -> t -> unit
