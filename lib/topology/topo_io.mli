(** Plain-text topology serialization.

    Format: a header with the node count (and optionally the origin), then
    one CSV record per undirected edge:

    {v
    # replica-select topology v1 nodes=20 origin=4
    u,v,latency_ms
    0,1,137.2
    1,4,101.0
    v}

    Real AS-level measurements (the paper used a Telstra-derived topology)
    can be converted to this format and loaded with {!load_system}. *)

val save : ?origin:int -> Graph.t -> path:string -> unit

type error = {
  file : string;  (** path, or ["<topology>"] when parsed from a string *)
  line : int;  (** 1-based line of the offending record; 0 = whole file *)
  msg : string;
}
(** Structured parse failure: a truncated, corrupt or poisoned file is a
    reportable condition, not a crash. Latencies are validated at the
    boundary — non-finite or negative values are rejected with the line
    that carries them, before they can corrupt any downstream shortest
    path. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val parse : ?file:string -> string -> (Graph.t * int option, error) result
(** Never raises on malformed input; [file] only labels the error. *)

val load_result : path:string -> (Graph.t * int option, error) result
(** {!parse} on the file's contents; an unreadable file (missing,
    permission) is reported as an [error] with [line = 0]. *)

val load_system_result : path:string -> (System.t, error) result
(** {!load_result} followed by {!System.make}; an origin outside the
    graph is reported as an [error] rather than raised. *)

val load : path:string -> Graph.t * int option
(** The graph plus the origin recorded in the header, if any. Raises
    [Failure] with a line-numbered message on malformed input (legacy
    wrapper over {!load_result}). *)

val load_system : path:string -> System.t
(** {!load} followed by {!System.make} (using the recorded origin, or the
    highest-degree node). *)

val to_string : ?origin:int -> Graph.t -> string

val of_string : string -> Graph.t * int option
(** Exception-raising twin of {!parse}, kept for callers that treat any
    malformed input as fatal. *)
