(** Plain-text topology serialization.

    Format: a header with the node count (and optionally the origin), then
    one CSV record per undirected edge:

    {v
    # replica-select topology v1 nodes=20 origin=4
    u,v,latency_ms
    0,1,137.2
    1,4,101.0
    v}

    Real AS-level measurements (the paper used a Telstra-derived topology)
    can be converted to this format and loaded with {!load_system_result}.

    The result-returning entry points below are the primary API: they
    never raise on malformed input, and every field is validated at the
    boundary — non-finite or negative latencies are rejected as an
    {!error} carrying the offending line, before they can corrupt any
    downstream shortest path. The [Failure]-raising twins at the bottom
    are legacy wrappers that delegate to them. *)

(** {1 Writing} *)

val save : ?origin:int -> Graph.t -> path:string -> unit
val to_string : ?origin:int -> Graph.t -> string

(** {1 Reading (primary, result-returning API)} *)

type error = Util.Parse_error.t = {
  file : string;  (** path, or ["<topology>"] when parsed from a string *)
  line : int;  (** 1-based line of the offending record; 0 = whole file *)
  msg : string;
}
(** Shared structured parse failure (see {!Util.Parse_error}); the
    re-export keeps field access working without opening [Util]. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val of_string_result : string -> (Graph.t * int option, error) result
(** The graph plus the origin recorded in the header, if any. Never
    raises on malformed input; errors are labelled ["<topology>"]. *)

val parse : ?file:string -> string -> (Graph.t * int option, error) result
(** {!of_string_result} with an explicit [file] label for errors. *)

val load_result : path:string -> (Graph.t * int option, error) result
(** {!parse} on the file's contents; an unreadable file (missing,
    permission) is reported as an [error] with [line = 0]. *)

val load_system_result : path:string -> (System.t, error) result
(** {!load_result} followed by {!System.make} (using the recorded
    origin, or the highest-degree node); an origin outside the graph is
    reported as an [error] rather than raised. *)

(** {1 Legacy raising API}

    Thin wrappers over the result API, kept for callers that treat any
    malformed input as fatal. Each raises [Failure] with the rendered
    {!error} message. *)

val of_string : string -> Graph.t * int option
(** Raising twin of {!of_string_result}. *)

val load : path:string -> Graph.t * int option
(** Raising twin of {!load_result}. *)

val load_system : path:string -> System.t
(** Raising twin of {!load_system_result} (may also propagate
    [Invalid_argument] from {!System.make}). *)
