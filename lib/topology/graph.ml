type t = {
  n : int;
  adj : (int * float) list array;
  mutable edge_count : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  { n; adj = Array.make (max n 1) []; edge_count = 0 }

let node_count g = g.n
let edge_count g = g.edge_count

let check_node g u =
  if u < 0 || u >= g.n then invalid_arg "Graph: node index out of range"

let has_edge g u v =
  check_node g u;
  check_node g v;
  List.exists (fun (w, _) -> w = v) g.adj.(u)

let add_edge g u v w =
  check_node g u;
  check_node g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if w < 0. then invalid_arg "Graph.add_edge: negative latency";
  if has_edge g u v then invalid_arg "Graph.add_edge: parallel edge";
  g.adj.(u) <- (v, w) :: g.adj.(u);
  g.adj.(v) <- (u, w) :: g.adj.(v);
  g.edge_count <- g.edge_count + 1

let edge_weight g u v =
  check_node g u;
  check_node g v;
  List.find_map (fun (x, w) -> if x = v then Some w else None) g.adj.(u)

let neighbors g u =
  check_node g u;
  List.rev g.adj.(u)

let degree g u =
  check_node g u;
  List.length g.adj.(u)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun (v, w) -> if u < v then acc := (u, v, w) :: !acc) g.adj.(u)
  done;
  !acc

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v, w) -> add_edge g u v w) es;
  g

let is_connected g =
  if g.n <= 1 then true
  else begin
    let seen = Array.make g.n false in
    let rec visit u =
      if not seen.(u) then begin
        seen.(u) <- true;
        List.iter (fun (v, _) -> visit v) g.adj.(u)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end

let is_tree g = g.n >= 1 && g.edge_count = g.n - 1 && is_connected g

let pp ppf g =
  Format.fprintf ppf "@[<v>graph with %d nodes, %d edges" g.n g.edge_count;
  List.iter
    (fun (u, v, w) -> Format.fprintf ppf "@,  %d -- %d (%.1f ms)" u v w)
    (edges g);
  Format.fprintf ppf "@]"
