(** Synthetic wide-area topologies.

    The paper's case study uses a 20-node AS-level topology derived from
    Telstra's network, with 100–200 ms per AS-level hop. That data set is
    not redistributable, so {!as_like} synthesizes a topology with the same
    observable characteristics: hub-and-spoke degree skew (preferential
    attachment), per-hop latencies uniform in a configurable range, and a
    well-connected "headquarters" candidate. Regular shapes (ring, star,
    grid, clique) are provided for tests and examples. *)

type latency_range = { lo_ms : float; hi_ms : float }

val default_hop_latency : latency_range
(** 100–200 ms, the paper's AS-level hop latency. *)

val as_like :
  ?extra_edge_fraction:float ->
  rng:Util.Prng.t ->
  nodes:int ->
  latency:latency_range ->
  unit ->
  Graph.t
(** Preferential-attachment topology: nodes arrive one at a time and attach
    to an existing node with probability proportional to its degree, then
    [extra_edge_fraction * nodes] additional random edges are added (default
    0.3) to create the meshier core of real AS graphs. Always connected.
    Requires [nodes >= 1]. *)

val ring : rng:Util.Prng.t -> nodes:int -> latency:latency_range -> Graph.t
val star : rng:Util.Prng.t -> nodes:int -> latency:latency_range -> Graph.t
(** [star] has node 0 as the hub. *)

val grid : rng:Util.Prng.t -> width:int -> height:int -> latency:latency_range -> Graph.t
val clique : rng:Util.Prng.t -> nodes:int -> latency:latency_range -> Graph.t

val balanced_tree :
  rng:Util.Prng.t -> fanout:int -> depth:int -> latency:latency_range -> Graph.t
(** Complete [fanout]-ary tree of the given [depth] (depth 0 is the single
    root). Node 0 is the root; children have higher ids than their parents,
    so ids already order the tree top-down. Requires [fanout >= 1]. *)

val random_tree : rng:Util.Prng.t -> nodes:int -> latency:latency_range -> Graph.t
(** Uniform random-attachment tree: node [v] picks its parent uniformly
    among nodes [0 .. v-1]. Samples a broad shape mix (stars through
    paths), which is what the DP's differential tests want. *)

val cdn_hierarchy :
  rng:Util.Prng.t ->
  fanouts:int list ->
  tier_latency:latency_range list ->
  unit ->
  Graph.t
(** CDN-like hierarchy: the root (origin) feeds [List.nth fanouts 0]
    regional nodes over links drawn from the first latency range, each of
    those feeds the next tier, and so on — one fan-out and one latency
    range per tier, typically fast backbone links up high and slow edge
    links down low. *)

val headquarters : Graph.t -> int
(** The designated origin/data-center node: the node with the highest
    degree (ties to the lowest index). In the case study this node stores
    every object permanently. *)
