let header_prefix = "# replica-select topology v1"

let to_buffer ?origin buf g =
  Buffer.add_string buf
    (Printf.sprintf "%s nodes=%d%s\n" header_prefix (Graph.node_count g)
       (match origin with
       | Some o -> Printf.sprintf " origin=%d" o
       | None -> ""));
  Buffer.add_string buf "u,v,latency_ms\n";
  (* Piecewise rows: only the latency goes through a format string (its
     "%.9g" rendering is pinned by the golden fixtures); [string_of_int]
     emits exactly what "%d" would. *)
  List.iter
    (fun (u, v, w) ->
      Buffer.add_string buf (string_of_int u);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.9g" w);
      Buffer.add_char buf '\n')
    (Graph.edges g)

let to_string ?origin g =
  let buf = Buffer.create 1024 in
  to_buffer ?origin buf g;
  Buffer.contents buf

let save ?origin g ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer ?origin buf g;
      Buffer.output_buffer oc buf)

(* --- parsing ------------------------------------------------------------- *)

type error = Util.Parse_error.t = { file : string; line : int; msg : string }

let pp_error = Util.Parse_error.pp
let error_to_string = Util.Parse_error.to_string

(* Internal parse abort: line 0 means the failure is not tied to a
   specific line (wrong magic, empty file). *)
exception Err of int * string

let err line msg = raise (Err (line, msg))

let header_field line key =
  let marker = key ^ "=" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length line then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop =
      match String.index_from_opt line start ' ' with
      | Some j -> j
      | None -> String.length line
    in
    Some (String.sub line start (stop - start))

(* Scanner parse: lines and fields are (lo, hi) ranges of the input
   (Util.Scan), so a 500-node topology loads without materializing every
   line, field, and trimmed copy as separate strings. Validation order,
   accepted grammar, and every error message match the historical
   split_on_char parser exactly. *)
let parse_exn s =
  let len = String.length s in
  let hend = Util.Scan.line_end s 0 in
  if hend >= len then err 0 "empty file";
  let header = String.sub s 0 hend in
  if
    String.length header < String.length header_prefix
    || String.sub header 0 (String.length header_prefix) <> header_prefix
  then err 0 "not a replica-select topology file";
  let nodes =
    match header_field header "nodes" with
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> n
      | Some _ | None -> err 1 "bad nodes")
    | None -> err 1 "missing nodes field"
  in
  let origin =
    match header_field header "origin" with
    | Some v -> (
      match int_of_string_opt v with
      | Some o -> Some o
      | None -> err 1 "bad origin")
    | None -> None
  in
  let g = Graph.create nodes in
  let cend = Util.Scan.line_end s (hend + 1) in
  let pos = ref (cend + 1) in
  let lineno = ref 3 in
  while !pos <= len do
    let lo = !pos in
    let hi = Util.Scan.line_end s lo in
    let lineno_here = !lineno in
    if not (Util.Scan.is_blank s ~lo ~hi) then begin
      let c1 = try String.index_from s lo ',' with Not_found -> len in
      let c2 = if c1 < hi then try String.index_from s (c1 + 1) ',' with Not_found -> len else len in
      let c3 = if c2 < hi then try String.index_from s (c2 + 1) ',' with Not_found -> len else len in
      if not (c1 < hi && c2 < hi && c3 >= hi) then
        err lineno_here "expected 3 comma-separated fields";
      let node_id ~lo ~hi =
        match Util.Scan.int_field s ~lo ~hi with
        | Some u -> u
        | None ->
          err lineno_here ("bad node id " ^ Util.Scan.sub_trimmed s ~lo ~hi)
      in
      let u = node_id ~lo ~hi:c1 in
      let v = node_id ~lo:(c1 + 1) ~hi:c2 in
      let w =
        match Util.Scan.float_field s ~lo:(c2 + 1) ~hi with
        | Some w -> w
        | None ->
          err lineno_here
            ("bad latency " ^ Util.Scan.sub_trimmed s ~lo:(c2 + 1) ~hi)
      in
      (* Reject poison at the boundary: a single NaN latency would
         silently corrupt every shortest-path and QoS computation
         downstream. *)
      if not (Float.is_finite w) then err lineno_here "non-finite latency";
      if w < 0. then err lineno_here "negative latency";
      (try Graph.add_edge g u v w with
      | Failure msg -> err lineno_here msg
      | Invalid_argument msg -> err lineno_here msg)
    end;
    incr lineno;
    pos := hi + 1
  done;
  (g, origin)

let parse ?(file = "<topology>") s =
  match parse_exn s with
  | v -> Ok v
  | exception Err (line, msg) -> Error { file; line; msg }

let of_string_result s = parse s

(* Legacy exception-raising entry point, kept for callers (and tests)
   that treat any malformed file as a fatal [Failure]. Delegates to the
   result API and renders the structured error. *)
let of_string s =
  match of_string_result s with
  | Ok v -> v
  | Error e -> failwith (error_to_string e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let load_result ~path =
  match read_file path with
  | s -> parse ~file:path s
  | exception Sys_error msg -> Error { file = path; line = 0; msg }

let load ~path =
  match load_result ~path with
  | Ok v -> v
  | Error e -> failwith (error_to_string e)

let load_system ~path =
  let g, origin = load ~path in
  System.make ?origin g

let load_system_result ~path =
  match load_result ~path with
  | Error e -> Error e
  | Ok (g, origin) -> (
    try Ok (System.make ?origin g)
    with Invalid_argument msg | Failure msg ->
      Error { file = path; line = 0; msg })
