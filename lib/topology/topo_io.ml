let header_prefix = "# replica-select topology v1"

let to_string ?origin g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s nodes=%d%s\n" header_prefix (Graph.node_count g)
       (match origin with
       | Some o -> Printf.sprintf " origin=%d" o
       | None -> ""));
  Buffer.add_string buf "u,v,latency_ms\n";
  List.iter
    (fun (u, v, w) ->
      Buffer.add_string buf (Printf.sprintf "%d,%d,%.9g\n" u v w))
    (Graph.edges g);
  Buffer.contents buf

let save ?origin g ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?origin g))

(* --- parsing ------------------------------------------------------------- *)

type error = Util.Parse_error.t = { file : string; line : int; msg : string }

let pp_error = Util.Parse_error.pp
let error_to_string = Util.Parse_error.to_string

(* Internal parse abort: line 0 means the failure is not tied to a
   specific line (wrong magic, empty file). *)
exception Err of int * string

let err line msg = raise (Err (line, msg))

let header_field line key =
  let marker = key ^ "=" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length line then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop =
      match String.index_from_opt line start ' ' with
      | Some j -> j
      | None -> String.length line
    in
    Some (String.sub line start (stop - start))

let parse_exn s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: _columns :: rest ->
    if
      String.length header < String.length header_prefix
      || String.sub header 0 (String.length header_prefix) <> header_prefix
    then err 0 "not a replica-select topology file";
    let nodes =
      match header_field header "nodes" with
      | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> n
        | Some _ | None -> err 1 "bad nodes")
      | None -> err 1 "missing nodes field"
    in
    let origin =
      match header_field header "origin" with
      | Some v -> (
        match int_of_string_opt v with
        | Some o -> Some o
        | None -> err 1 "bad origin")
      | None -> None
    in
    let g = Graph.create nodes in
    List.iteri
      (fun idx line ->
        let lineno = idx + 3 in
        if String.trim line <> "" then
          match String.split_on_char ',' line with
          | [ u; v; w ] -> (
            let u =
              match int_of_string_opt (String.trim u) with
              | Some u -> u
              | None -> err lineno ("bad node id " ^ String.trim u)
            in
            let v =
              match int_of_string_opt (String.trim v) with
              | Some v -> v
              | None -> err lineno ("bad node id " ^ String.trim v)
            in
            let w =
              match float_of_string_opt (String.trim w) with
              | Some w -> w
              | None -> err lineno ("bad latency " ^ String.trim w)
            in
            (* Reject poison at the boundary: a single NaN latency would
               silently corrupt every shortest-path and QoS computation
               downstream. *)
            if not (Float.is_finite w) then
              err lineno "non-finite latency";
            if w < 0. then err lineno "negative latency";
            try Graph.add_edge g u v w with
            | Failure msg -> err lineno msg
            | Invalid_argument msg -> err lineno msg)
          | _ -> err lineno "expected 3 comma-separated fields")
      rest;
    (g, origin)
  | _ -> err 0 "empty file"

let parse ?(file = "<topology>") s =
  match parse_exn s with
  | v -> Ok v
  | exception Err (line, msg) -> Error { file; line; msg }

let of_string_result s = parse s

(* Legacy exception-raising entry point, kept for callers (and tests)
   that treat any malformed file as a fatal [Failure]. Delegates to the
   result API and renders the structured error. *)
let of_string s =
  match of_string_result s with
  | Ok v -> v
  | Error e -> failwith (error_to_string e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let load_result ~path =
  match read_file path with
  | s -> parse ~file:path s
  | exception Sys_error msg -> Error { file = path; line = 0; msg }

let load ~path =
  match load_result ~path with
  | Ok v -> v
  | Error e -> failwith (error_to_string e)

let load_system ~path =
  let g, origin = load ~path in
  System.make ?origin g

let load_system_result ~path =
  match load_result ~path with
  | Error e -> Error e
  | Ok (g, origin) -> (
    try Ok (System.make ?origin g)
    with Invalid_argument msg | Failure msg ->
      Error { file = path; line = 0; msg })
