type latency_range = { lo_ms : float; hi_ms : float }

let default_hop_latency = { lo_ms = 100.; hi_ms = 200. }

let draw_latency rng { lo_ms; hi_ms } =
  if lo_ms < 0. || hi_ms < lo_ms then invalid_arg "Generate: bad latency range";
  if hi_ms = lo_ms then lo_ms else Util.Prng.uniform rng ~lo:lo_ms ~hi:hi_ms

let as_like ?(extra_edge_fraction = 0.3) ~rng ~nodes ~latency () =
  if nodes < 1 then invalid_arg "Generate.as_like: need at least one node";
  if extra_edge_fraction < 0. then
    invalid_arg "Generate.as_like: negative extra_edge_fraction";
  let g = Graph.create nodes in
  (* Preferential attachment: endpoints of existing edges, each listed once
     per incidence, form the attachment pool, so a node's pick probability
     is proportional to its degree. *)
  let pool = ref [ 0 ] in
  for v = 1 to nodes - 1 do
    let pool_arr = Array.of_list !pool in
    let target = pool_arr.(Util.Prng.int rng (Array.length pool_arr)) in
    Graph.add_edge g v target (draw_latency rng latency);
    pool := v :: target :: !pool
  done;
  let extra = int_of_float (Float.round (extra_edge_fraction *. float_of_int nodes)) in
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra && !attempts < 50 * (extra + 1) do
    incr attempts;
    let u = Util.Prng.int rng nodes and v = Util.Prng.int rng nodes in
    if u <> v && not (Graph.has_edge g u v) then begin
      Graph.add_edge g u v (draw_latency rng latency);
      incr added
    end
  done;
  g

let ring ~rng ~nodes ~latency =
  if nodes < 1 then invalid_arg "Generate.ring: need at least one node";
  let g = Graph.create nodes in
  if nodes = 2 then Graph.add_edge g 0 1 (draw_latency rng latency)
  else if nodes > 2 then
    for v = 0 to nodes - 1 do
      Graph.add_edge g v ((v + 1) mod nodes) (draw_latency rng latency)
    done;
  g

let star ~rng ~nodes ~latency =
  if nodes < 1 then invalid_arg "Generate.star: need at least one node";
  let g = Graph.create nodes in
  for v = 1 to nodes - 1 do
    Graph.add_edge g 0 v (draw_latency rng latency)
  done;
  g

let grid ~rng ~width ~height ~latency =
  if width < 1 || height < 1 then invalid_arg "Generate.grid: bad dimensions";
  let g = Graph.create (width * height) in
  let id x y = (y * width) + x in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then
        Graph.add_edge g (id x y) (id (x + 1) y) (draw_latency rng latency);
      if y + 1 < height then
        Graph.add_edge g (id x y) (id x (y + 1)) (draw_latency rng latency)
    done
  done;
  g

let clique ~rng ~nodes ~latency =
  if nodes < 1 then invalid_arg "Generate.clique: need at least one node";
  let g = Graph.create nodes in
  for u = 0 to nodes - 1 do
    for v = u + 1 to nodes - 1 do
      Graph.add_edge g u v (draw_latency rng latency)
    done
  done;
  g

(* --- tree family ---------------------------------------------------------
   Rooted trees for the exact closest-allocation DP (Bounds.Tree_dp): the
   root is always node 0 and plays the origin/data-center role, children
   carry higher ids than their parents, so a single left-to-right scan of
   the node ids is already a valid top-down order. *)

let balanced_tree ~rng ~fanout ~depth ~latency =
  if fanout < 1 then invalid_arg "Generate.balanced_tree: fanout must be >= 1";
  if depth < 0 then invalid_arg "Generate.balanced_tree: negative depth";
  (* nodes = 1 + f + f^2 + ... + f^depth *)
  let nodes = ref 1 and layer = ref 1 in
  for _ = 1 to depth do
    layer := !layer * fanout;
    nodes := !nodes + !layer
  done;
  let g = Graph.create !nodes in
  let next = ref 1 in
  let rec grow parent level =
    if level < depth then
      for _ = 1 to fanout do
        let v = !next in
        incr next;
        Graph.add_edge g parent v (draw_latency rng latency);
        grow v (level + 1)
      done
  in
  grow 0 0;
  g

let random_tree ~rng ~nodes ~latency =
  if nodes < 1 then invalid_arg "Generate.random_tree: need at least one node";
  let g = Graph.create nodes in
  (* Uniform random attachment: node v picks any earlier node as its
     parent, giving the broad mix of stars, paths and caterpillars the
     differential tests want to sample. *)
  for v = 1 to nodes - 1 do
    Graph.add_edge g v (Util.Prng.int rng v) (draw_latency rng latency)
  done;
  g

let cdn_hierarchy ~rng ~fanouts ~tier_latency () =
  if fanouts = [] then invalid_arg "Generate.cdn_hierarchy: empty fanouts";
  if List.length fanouts <> List.length tier_latency then
    invalid_arg "Generate.cdn_hierarchy: one latency range per tier";
  List.iter
    (fun f -> if f < 1 then invalid_arg "Generate.cdn_hierarchy: bad fanout")
    fanouts;
  let nodes = ref 1 and layer = ref 1 in
  List.iter
    (fun f ->
      layer := !layer * f;
      nodes := !nodes + !layer)
    fanouts;
  let g = Graph.create !nodes in
  let next = ref 1 in
  (* Tier by tier: the origin feeds regional servers over fast backbone
     links, regions feed edge clusters over slower links, so storage
     trade-offs differ per level — the heterogeneous-latency axis of the
     tree scenario family. *)
  let rec grow parents tiers =
    match tiers with
    | [] -> ()
    | (fanout, latency) :: rest ->
      let children =
        List.concat_map
          (fun parent ->
            List.init fanout (fun _ ->
                let v = !next in
                incr next;
                Graph.add_edge g parent v (draw_latency rng latency);
                v))
          parents
      in
      grow children rest
  in
  grow [ 0 ] (List.combine fanouts tier_latency);
  g

let headquarters g =
  let n = Graph.node_count g in
  if n = 0 then invalid_arg "Generate.headquarters: empty graph";
  let best = ref 0 in
  for v = 1 to n - 1 do
    if Graph.degree g v > Graph.degree g !best then best := v
  done;
  !best
