type attr = Str of string | Int of int | Float of float | Bool of bool
type kind = Span_begin | Span_end | Point

type event = {
  scope : string;
  seq : int;
  kind : kind;
  name : string;
  id : int;
  parent : int;
  wall_s : float;
  attrs : (string * attr) list;
}

type span = { sscope : string; sid : int }

(* Per-scope logical state.  Keyed by scope name so a scope can be
   left and re-entered (its counters resume), and so a task executed in
   a worker process starts from the same zeroed counters as it would in
   the parent. *)
type scope_state = {
  mutable seq : int;
  mutable next_id : int;
  mutable stack : int list;  (* innermost open span first *)
}

let scopes : (string, scope_state) Hashtbl.t = Hashtbl.create 16
let current_scope = ref "main"
let buffer : event list ref = ref []  (* newest first *)

(* Wall clock, forced monotonic: gettimeofday can step backwards under
   NTP; spans must not. Only read when wall-clock mode is on. *)
let last_wall = ref neg_infinity

let now () =
  if Config.wall_clock () then begin
    let t = Unix.gettimeofday () in
    let t = if t > !last_wall then t else !last_wall in
    last_wall := t;
    t
  end
  else nan

let state_of scope =
  match Hashtbl.find_opt scopes scope with
  | Some s -> s
  | None ->
    let s = { seq = 0; next_id = 1; stack = [] } in
    Hashtbl.add scopes scope s;
    s

let reset () =
  Hashtbl.reset scopes;
  current_scope := "main";
  buffer := [];
  last_wall := neg_infinity

let () = Config.on_install reset
let set_scope s = current_scope := s
let scope () = !current_scope

let emit scope st ~kind ~name ~id ~parent ~attrs =
  let seq = st.seq in
  st.seq <- seq + 1;
  buffer :=
    { scope; seq; kind; name; id; parent; wall_s = now (); attrs } :: !buffer

let no_span = { sscope = ""; sid = 0 }

let span_begin ?(attrs = []) name =
  if not (Config.tracing ()) then no_span
  else begin
    let st = state_of !current_scope in
    let id = st.next_id in
    st.next_id <- id + 1;
    let parent = match st.stack with [] -> 0 | p :: _ -> p in
    st.stack <- id :: st.stack;
    emit !current_scope st ~kind:Span_begin ~name ~id ~parent ~attrs;
    { sscope = !current_scope; sid = id }
  end

let span_end ?(attrs = []) sp =
  if sp.sid <> 0 && Config.tracing () then begin
    let st = state_of sp.sscope in
    if List.mem sp.sid st.stack then begin
      (* Implicitly close any children left open, so every emitted
         trace is well-bracketed by construction. *)
      let rec pop () =
        match st.stack with
        | [] -> ()
        | id :: rest ->
          st.stack <- rest;
          let parent = match rest with [] -> 0 | p :: _ -> p in
          if id = sp.sid then
            emit sp.sscope st ~kind:Span_end ~name:"" ~id ~parent ~attrs
          else begin
            emit sp.sscope st ~kind:Span_end ~name:"" ~id ~parent ~attrs:[];
            pop ()
          end
      in
      pop ()
    end
  end

let event ?(attrs = []) name =
  if Config.tracing () then begin
    let st = state_of !current_scope in
    let parent = match st.stack with [] -> 0 | p :: _ -> p in
    emit !current_scope st ~kind:Point ~name ~id:0 ~parent ~attrs
  end

let with_span ?attrs name f =
  let sp = span_begin ?attrs name in
  match f () with
  | v ->
    span_end sp;
    v
  | exception e ->
    span_end sp;
    raise e

let drain () =
  let evs = List.rev !buffer in
  buffer := [];
  evs

let absorb evs = buffer := List.rev_append evs !buffer

(* Deterministic merged order: "main" first, then tasks by index, then
   any other scope alphabetically.  Inside a scope the dense per-scope
   [seq] gives a total order, so the overall sort is total and
   independent of arrival order (hence of --jobs). *)
let scope_rank s =
  if s = "main" then (0, 0, 0, "")
  else
    let task_key () =
      if String.length s > 5 && String.sub s 0 5 = "task:" then begin
        let rest = String.sub s 5 (String.length s - 5) in
        (* "task:<phase>.<index>" from the worker pool, or a bare
           "task:<index>" from hand-set scopes. *)
        match String.index_opt rest '.' with
        | Some d -> (
          match
            ( int_of_string_opt (String.sub rest 0 d),
              int_of_string_opt
                (String.sub rest (d + 1) (String.length rest - d - 1)) )
          with
          | Some p, Some i -> Some (p, i)
          | _ -> None)
        | None -> (
          match int_of_string_opt rest with
          | Some i -> Some (0, i)
          | None -> None)
      end
      else None
    in
    match task_key () with
    | Some (p, i) -> (1, p, i, "")
    | None -> (2, 0, 0, s)

let events () =
  let evs = List.rev !buffer in
  List.stable_sort
    (fun a b ->
      let c = compare (scope_rank a.scope) (scope_rank b.scope) in
      if c <> 0 then c else compare a.seq b.seq)
    evs

(* --- JSONL rendering ----------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_json f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let attr_json = function
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_nan f then "\"nan\""
    else if f = infinity then "\"inf\""
    else if f = neg_infinity then "\"-inf\""
    else float_json f
  | Bool b -> if b then "true" else "false"

let kind_str = function
  | Span_begin -> "B"
  | Span_end -> "E"
  | Point -> "P"

let is_wall_attr (k, _) =
  String.length k >= 5 && String.sub k 0 5 = "wall_"

let event_to_json e =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"scope\":\"";
  Buffer.add_string b (json_escape e.scope);
  Buffer.add_string b "\",\"seq\":";
  Buffer.add_string b (string_of_int e.seq);
  Buffer.add_string b ",\"kind\":\"";
  Buffer.add_string b (kind_str e.kind);
  Buffer.add_string b "\"";
  if e.name <> "" then begin
    Buffer.add_string b ",\"name\":\"";
    Buffer.add_string b (json_escape e.name);
    Buffer.add_string b "\""
  end;
  if e.id <> 0 then begin
    Buffer.add_string b ",\"id\":";
    Buffer.add_string b (string_of_int e.id)
  end;
  Buffer.add_string b ",\"parent\":";
  Buffer.add_string b (string_of_int e.parent);
  let logical = Float.is_nan e.wall_s in
  if not logical then begin
    Buffer.add_string b ",\"wall_s\":";
    Buffer.add_string b (float_json e.wall_s)
  end;
  let attrs = if logical then List.filter (fun a -> not (is_wall_attr a)) e.attrs else e.attrs in
  if attrs <> [] then begin
    Buffer.add_string b ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "\"";
        Buffer.add_string b (json_escape k);
        Buffer.add_string b "\":";
        Buffer.add_string b (attr_json v))
      attrs;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b
