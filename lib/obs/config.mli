(** Ambient observability configuration.

    The configuration is an immutable record installed once per process
    (workers inherit it through [fork]).  Every instrumentation site in
    the codebase guards its work behind {!tracing} / {!metering}, which
    compile down to a ref dereference and a field read, so the default
    {!disabled} configuration costs nothing measurable on hot paths.

    {b Determinism contract.}  When [wall_clock] is [false] (the
    default), no instrumentation site ever reads a clock: trace events
    are ordered by per-scope logical counters and carry no timestamps,
    so a traced sweep produces byte-identical output at every [--jobs].
    Enabling [wall_clock] (the [--profile] flag) attaches wall-clock
    attributes and timing histograms, which naturally differ run to
    run. *)

type sink_spec =
  | Null  (** discard trace events (still counted when tracing) *)
  | Memory  (** keep events in memory; read back with {!Sink.events} *)
  | Jsonl_file of string  (** append-on-flush JSONL trace file *)

type t = {
  trace : bool;  (** collect spans and point events *)
  metrics : bool;  (** collect counters / gauges / histograms *)
  wall_clock : bool;
      (** attach wall-clock attributes; [false] keeps logical mode *)
  sink : sink_spec;  (** where {!Sink.flush} sends the trace *)
  metrics_path : string option;
      (** where {!Sink.flush} writes the metrics snapshot, if anywhere *)
}

val disabled : t
(** Everything off; the process-start default. *)

val default : t
(** Tracing and metrics on in logical (deterministic) mode, null sink.
    A convenient base for [with_*]-style record updates. *)

val install : t -> unit
(** Make [t] the ambient configuration and reset all trace / metric
    state (spans, buffered events, registries).  Install before forking
    workers so children inherit the same view. *)

val current : unit -> t

val on_install : (unit -> unit) -> unit
(** Register a reset hook run by every {!install}.  Used internally by
    {!Trace} and {!Metrics} to clear their state; not for end users. *)

val tracing : unit -> bool
(** Fast check: is span / event collection on? *)

val metering : unit -> bool
(** Fast check: is metric collection on? *)

val wall_clock : unit -> bool
(** Fast check: are wall-clock attributes on? *)
