(* Worker payloads are Marshal-framed (events, metrics delta) pairs.
   Both sides of the pipe run the same binary, so Marshal is safe here
   (the pool already ships results the same way). *)

let payload () =
  let cfg = Config.current () in
  if not (cfg.trace || cfg.metrics) then ""
  else begin
    let evs = if cfg.trace then Trace.drain () else [] in
    let delta = if cfg.metrics then Some (Metrics.drain ()) else None in
    match (evs, delta) with
    | [], None -> ""
    | _ -> Marshal.to_string (evs, delta) []
  end

let absorb_payload s =
  if s <> "" then begin
    let (evs : Trace.event list), (delta : Metrics.delta option) =
      Marshal.from_string s 0
    in
    Trace.absorb evs;
    match delta with None -> () | Some d -> Metrics.absorb d
  end

let events () = Trace.events ()

let write_atomic path body =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out tmp in
  (try output_string oc body
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let trace_jsonl () =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (Trace.event_to_json e);
      Buffer.add_char b '\n')
    (Trace.events ());
  Buffer.contents b

let flush () =
  let cfg = Config.current () in
  (match cfg.sink with
  | Config.Null -> if cfg.trace then ignore (Trace.drain ())
  | Config.Memory -> ()  (* keep buffered; events () reads them *)
  | Config.Jsonl_file path -> write_atomic path (trace_jsonl ()));
  match cfg.metrics_path with
  | Some path when cfg.metrics -> write_atomic path (Metrics.snapshot_json ())
  | _ -> ()
