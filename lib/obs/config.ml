type sink_spec = Null | Memory | Jsonl_file of string

type t = {
  trace : bool;
  metrics : bool;
  wall_clock : bool;
  sink : sink_spec;
  metrics_path : string option;
}

let disabled =
  {
    trace = false;
    metrics = false;
    wall_clock = false;
    sink = Null;
    metrics_path = None;
  }

let default = { disabled with trace = true; metrics = true }
let state = ref disabled

(* Trace / Metrics register their reset functions here at module-init
   time; Config cannot call them directly without a dependency cycle. *)
let reset_hooks : (unit -> unit) list ref = ref []
let on_install f = reset_hooks := f :: !reset_hooks

let install t =
  state := t;
  List.iter (fun f -> f ()) !reset_hooks

let current () = !state
let tracing () = !state.trace
let metering () = !state.metrics
let wall_clock () = !state.wall_clock
