type counter = { mutable c : int }
type gauge = { mutable g : float; mutable present : bool }

let n_buckets = 64

type histogram = {
  buckets : int array;  (* [n_buckets]; .(0) is the underflow bucket *)
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let reset () =
  (* Zero in place rather than dropping the tables: call sites cache
     instrument handles, and those must survive a Config.install. *)
  Hashtbl.iter (fun _ c -> c.c <- 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.g <- 0.;
      g.present <- false)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 n_buckets 0;
      h.count <- 0;
      h.sum <- 0.;
      h.minv <- nan;
      h.maxv <- nan)
    histograms

let () = Config.on_install reset

let find_or_add tbl name mk =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
    let v = mk () in
    Hashtbl.add tbl name v;
    v

let counter name = find_or_add counters name (fun () -> { c = 0 })
let gauge name = find_or_add gauges name (fun () -> { g = 0.; present = false })

let new_hist () =
  { buckets = Array.make n_buckets 0; count = 0; sum = 0.; minv = nan; maxv = nan }

let histogram name = find_or_add histograms name new_hist
let incr ?(by = 1) c = if Config.metering () then c.c <- c.c + by

let set g v =
  if Config.metering () then begin
    g.g <- v;
    g.present <- true
  end

(* Log-spaced bucket bounds: bound i = 1e-9 * 2^i, so buckets cover
   one nanosecond up to ~2^62 ns with one bucket per octave.  The last
   bucket absorbs overflow. *)
let bucket_bound i = 1e-9 *. Float.pow 2.0 (float_of_int i)

let bucket_index v =
  if not (v > 1e-9) then 0  (* also catches nan and non-positive *)
  else begin
    let i = ref 1 in
    let b = ref 2e-9 in
    while !i < n_buckets - 1 && v > !b do
      i := !i + 1;
      b := !b *. 2.0
    done;
    !i
  end

let observe h v =
  if Config.metering () then begin
    let i = bucket_index v in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if Float.is_nan h.minv || v < h.minv then h.minv <- v;
    if Float.is_nan h.maxv || v > h.maxv then h.maxv <- v
  end

let counter_value c = c.c
let gauge_value g = g.g
let histogram_stats h = (h.count, h.sum, h.minv, h.maxv)

let histogram_buckets h =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then out := (bucket_bound i, h.buckets.(i)) :: !out
  done;
  !out

(* --- worker -> parent merge ---------------------------------------- *)

type hist_data = {
  hd_buckets : int array;
  hd_count : int;
  hd_sum : float;
  hd_min : float;
  hd_max : float;
}

type delta = {
  d_counters : (string * int) list;
  d_gauges : (string * float) list;
  d_histograms : (string * hist_data) list;
}

let drain () =
  let d_counters =
    Hashtbl.fold (fun k c acc -> if c.c <> 0 then (k, c.c) :: acc else acc) counters []
  and d_gauges =
    Hashtbl.fold (fun k g acc -> if g.present then (k, g.g) :: acc else acc) gauges []
  and d_histograms =
    Hashtbl.fold
      (fun k h acc ->
        if h.count <> 0 then
          ( k,
            {
              hd_buckets = Array.copy h.buckets;
              hd_count = h.count;
              hd_sum = h.sum;
              hd_min = h.minv;
              hd_max = h.maxv;
            } )
          :: acc
        else acc)
      histograms []
  in
  reset ();
  { d_counters; d_gauges; d_histograms }

let absorb d =
  List.iter (fun (k, v) -> (counter k).c <- (counter k).c + v) d.d_counters;
  List.iter
    (fun (k, v) ->
      let g = gauge k in
      g.g <- v;
      g.present <- true)
    d.d_gauges;
  List.iter
    (fun (k, hd) ->
      let h = histogram k in
      for i = 0 to n_buckets - 1 do
        h.buckets.(i) <- h.buckets.(i) + hd.hd_buckets.(i)
      done;
      h.count <- h.count + hd.hd_count;
      h.sum <- h.sum +. hd.hd_sum;
      if Float.is_nan h.minv || hd.hd_min < h.minv then h.minv <- hd.hd_min;
      if Float.is_nan h.maxv || hd.hd_max > h.maxv then h.maxv <- hd.hd_max)
    d.d_histograms

(* --- JSON snapshot -------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_json f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"counters\": {";
  let first = ref true in
  List.iter
    (fun (k, c) ->
      if c.c <> 0 then begin
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b
          (Printf.sprintf "\n    \"%s\": %d" (json_escape k) c.c)
      end)
    (sorted_bindings counters);
  Buffer.add_string b "\n  },\n  \"gauges\": {";
  first := true;
  List.iter
    (fun (k, g) ->
      if g.present then begin
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b
          (Printf.sprintf "\n    \"%s\": %s" (json_escape k) (float_json g.g))
      end)
    (sorted_bindings gauges);
  Buffer.add_string b "\n  },\n  \"histograms\": {";
  first := true;
  List.iter
    (fun (k, h) ->
      if h.count <> 0 then begin
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b
          (Printf.sprintf
             "\n    \"%s\": {\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"buckets\": ["
             (json_escape k) h.count (float_json h.sum) (float_json h.minv)
             (float_json h.maxv));
        List.iteri
          (fun i (bound, n) ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_string b
              (Printf.sprintf "{\"le\": %s, \"n\": %d}" (float_json bound) n))
          (histogram_buckets h);
        Buffer.add_string b "]}"
      end)
    (sorted_bindings histograms);
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b
