(** Structured spans and point events.

    Events belong to a {e scope} — a logical thread of control such as
    ["main"], ["task:1.17"] (phase 1, task 17), or ["pool"].  Each scope
    carries its own span
    stack, span-id counter, and logical sequence counter, so a task's
    events are identical no matter which OS process executed it.  That
    is what lets a [--jobs 4] trace merge into the same byte sequence as
    a [--jobs 1] trace (modulo wall-clock attributes): the merge orders
    events by [(scope, seq)], both of which are logical.

    Spans are well-bracketed by construction: {!span_end} implicitly
    closes any children still open on the scope's stack, and ending a
    span that is not on the stack is a silent no-op (its events were
    already attributed). *)

type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type kind = Span_begin | Span_end | Point

type event = {
  scope : string;
  seq : int;  (** per-scope logical tick; dense from 0 *)
  kind : kind;
  name : string;
  id : int;  (** span id (per-scope, dense from 1); 0 for points *)
  parent : int;  (** enclosing span id; 0 at scope root *)
  wall_s : float;  (** wall-clock seconds; [nan] in logical mode *)
  attrs : (string * attr) list;
}

type span
(** Handle returned by {!span_begin}; scope-local. *)

val set_scope : string -> unit
(** Switch the ambient scope for subsequent events.  Scope state is
    keyed by name, so re-entering a scope resumes its counters. *)

val scope : unit -> string

val span_begin : ?attrs:(string * attr) list -> string -> span
(** Open a span in the ambient scope.  No-op handle when tracing is
    off. *)

val span_end : ?attrs:(string * attr) list -> span -> unit

val event : ?attrs:(string * attr) list -> string -> unit
(** Emit a point event parented to the innermost open span. *)

val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] in a span; the span is closed on
    both normal return and exception. *)

val drain : unit -> event list
(** Remove and return every buffered event (worker side, before
    shipping to the parent).  Order is emission order. *)

val absorb : event list -> unit
(** Append events drained in another process to this process's buffer
    (parent side).  Scopes are preserved, so the final sort puts them
    where a sequential run would have. *)

val events : unit -> event list
(** All buffered events in deterministic merged order: sorted by
    [(scope_rank, seq)] where task scopes rank numerically by
    [(phase, index)], ["main"] ranks first and other scopes (e.g.
    ["pool"]) last alphabetically.  The sort is stable and total
    because [seq] is dense per scope. *)

val event_to_json : event -> string
(** One JSONL line (no trailing newline).  Wall-clock attributes —
    the [wall_s] field and any attr whose key starts with ["wall_"] —
    are omitted in logical mode and present otherwise. *)

val reset : unit -> unit
(** Clear all scopes and buffers (also run by {!Config.install}). *)
