(** Trace / metrics output backends and the worker payload protocol.

    The sink is chosen by {!Config.t.sink}:
    - [Null] — events are buffered and then discarded on {!flush};
      recording still happens so determinism checks can compare traced
      and untraced runs.
    - [Memory] — events stay readable via {!events} after {!flush}.
    - [Jsonl_file f] — {!flush} writes the merged trace to [f], one
      JSON object per line, in deterministic [(scope, seq)] order.

    Worker processes never touch the sink: they buffer locally and the
    pool ships their buffers to the parent as an opaque {!payload}
    string riding the existing result pipe, where {!absorb_payload}
    merges them.  An empty payload string is the "nothing to report"
    fast path. *)

val payload : unit -> string
(** Drain this process's trace buffer and metrics registry into an
    opaque string (worker side).  Returns [""] when observability is
    off or nothing was recorded — callers can ship that for free. *)

val absorb_payload : string -> unit
(** Merge a {!payload} from a worker (parent side).  [""] is a no-op.
    Absorbing the same worker buffer twice would double-count, so the
    pool only absorbs payloads of {e accepted} task completions. *)

val events : unit -> Trace.event list
(** Merged in-memory events (see {!Trace.events}); what [Memory] keeps
    and [Jsonl_file] writes. *)

val flush : unit -> unit
(** Send buffered data to the configured backends: the trace to
    {!Config.t.sink}, and — if [metrics_path] is set — the metrics
    snapshot JSON to that path.  File writes go through a temp file and
    rename, so a crash mid-flush never leaves a torn trace. *)
