(** Counters, gauges, and log-bucketed histograms.

    Instruments are registered by name in a process-global registry and
    are cheap to look up once and cache.  All recording calls are
    no-ops while {!Config.metering} is off.

    Worker processes accumulate into their own registry copy; {!drain}
    ships the accumulated values to the parent, whose {!absorb} merges
    them (counters and histogram buckets add, gauges take the incoming
    value if newer).  Because counter merge is commutative and the
    snapshot sorts by name, the merged snapshot does not depend on
    worker scheduling. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create.  Registering the same name twice returns the same
    instrument. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Record a sample.  Buckets are logarithmic (powers of two from
    [1e-9] up), so latencies spanning nanoseconds to minutes land in
    distinct buckets; non-positive samples land in the underflow
    bucket. *)

val counter_value : counter -> int
val gauge_value : gauge -> float

val histogram_stats : histogram -> int * float * float * float
(** [(count, sum, min, max)]; min/max are [nan] when empty. *)

val histogram_buckets : histogram -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], bound-ascending. *)

type delta
(** Opaque registry snapshot shipped from worker to parent. *)

val drain : unit -> delta
(** Capture and zero this process's registry (worker side). *)

val absorb : delta -> unit
(** Merge a drained registry into this one (parent side). *)

val snapshot_json : unit -> string
(** The whole registry as one JSON object, instruments sorted by name:
    [{"counters":{...},"gauges":{...},"histograms":{...}}]. *)

val reset : unit -> unit
(** Clear the registry (also run by {!Config.install}). *)
