(** Object bundling: canonicalization of per-object subproblem structure.

    Under Zipf demand most objects are tail objects — read a handful of
    times from one or two nodes — and vast numbers of them present the
    {e identical} face to a per-object solver: the same store/create
    permission masks and the same read cells, differing only in the demand
    weight. This pass groups objects by that structural key so a
    decomposition solver (see {!Bounds.Lagrangian}) solves one
    representative subproblem per bundle and rescales.

    The key of object [k] is the triple

    - the store-mask column [store_mask.(m).(k)] over all nodes [m],
    - the create-mask column [create_mask.(m).(k)] over all nodes [m],
    - the read cells [(node, interval, count)] of [k],

    and deliberately {e excludes} the demand weight [w_k]. Exactness in
    the homogeneous case: every term of the per-object Lagrangian
    subproblem objective carries the factor [w_k] (storage [alpha*w],
    creation [beta*w], the per-object replica variable [alpha*I*w], and
    the relaxed coverage prices [-lambda_n * count * w]), while the
    constraints never read [w_k]. The minimum is therefore linear in
    [w_k] and the argmin is [w_k]-invariant, so members with the
    representative's weight reuse its optimum bitwise and members with a
    different weight rescale by [w_k / w_rep] (callers must guard that
    rescale against rounding to keep lower bounds valid — see
    [exact_member]). *)

type t = {
  objects : int;  (** number of objects bundled *)
  count : int;  (** number of bundles (distinct structural keys) *)
  representative : int array;
      (** bundle -> the lowest object id with that key *)
  bundle_of : int array;  (** object -> its bundle *)
  exact_member : bool array;
      (** per object: its demand weight equals its representative's, so
          the representative's optimum transfers bitwise (no rescale) *)
  rescaled : int;  (** objects with [exact_member = false] *)
}

val compute : Permission.t -> t
(** Groups the permission analysis's objects by structural key. Bundles
    are numbered in first-occurrence order over ascending object ids, so
    the result is deterministic for a given permission analysis. *)

val ratio : t -> float
(** Objects per bundle ([objects / count]; 1.0 when nothing collapses,
    and for the degenerate 0-object instance). *)

val trivial : Permission.t -> t
(** The identity bundling: every object its own bundle. Used to force the
    unbundled reference path. *)
