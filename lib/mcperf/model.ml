type var_kind =
  | Store of { node : int; interval : int; object_id : int }
  | Create of { node : int; interval : int; object_id : int }
  | Covered of { node : int; interval : int; object_id : int }
  | Route of { node : int; from_node : int; interval : int; object_id : int }
  | Capacity of { node : int option }
  | Replicas of { object_id : int option }
  | Open_node of { node : int }

type t = {
  permission : Permission.t;
  problem : Lp.Problem.t;
  kinds : var_kind array;
  store_index : (int, int) Hashtbl.t;
  objective_offset : float;
  node_totals : float array;
  always_covered : float array;
  qos_rows : int array;
  qos_has_terms : bool array;
}

let pack ~intervals ~objects ~node ~interval ~object_id =
  ((node * objects) + object_id) * intervals + interval

let build (perm : Permission.t) =
  let spec = perm.spec in
  let cls = perm.cls in
  let sys = spec.system in
  let demand = spec.demand in
  let nodes = Spec.node_count spec in
  let intervals = Spec.interval_count spec in
  let objects = Spec.object_count spec in
  let origin = sys.Topology.System.origin in
  let weight = demand.Workload.Demand.weight in
  let costs = spec.costs in
  let b = Lp.Problem.Builder.create () in
  let kinds = ref [] in
  let nkinds = ref 0 in
  let new_var kind ?name ~lo ~hi ~obj () =
    let idx = Lp.Problem.Builder.add_var b ?name ~lo ~hi ~obj () in
    kinds := kind :: !kinds;
    incr nkinds;
    idx
  in
  (* Storage cost carrier: under a storage or replica constraint the
     per-interval storage bill is alpha * capacity (equality-constrained
     heuristics always pay for the full fixed footprint), so the alpha
     coefficient moves from the store variables to the capacity/replica
     variables. *)
  let sc_active = cls.Classes.storage <> Classes.Sc_none in
  let rc_active = cls.Classes.replicas <> Classes.Rc_none in
  let alpha_on_store = (not sc_active) && not rc_active in
  (* Total (weighted) write count per (object, interval), for the update
     cost extension (12). *)
  let write_totals =
    if costs.Spec.delta > 0. then begin
      let w = Array.make_matrix objects intervals 0. in
      Array.iteri
        (fun k cells ->
          Array.iter
            (fun (c : Workload.Demand.cell) ->
              w.(k).(c.interval) <- w.(k).(c.interval) +. c.count)
            cells)
        demand.Workload.Demand.writes;
      Some w
    end
    else None
  in
  (* --- store and create variables over the pruned support -------------- *)
  let store_tbl = Hashtbl.create 4096 in
  (* Accumulators for the coupling rows built after variable creation. *)
  let sc_terms = Array.make_matrix nodes intervals [] in
  let rc_terms = Array.make_matrix objects intervals [] in
  let node_has_store = Array.make nodes false in
  for m = 0 to nodes - 1 do
    if m <> origin then
      for k = 0 to objects - 1 do
        let smask = perm.Permission.store_mask.(m).(k) in
        if smask <> 0 then begin
          let w = weight.(k) in
          let prev_store = ref None in
          for i = 0 to intervals - 1 do
            if smask land (1 lsl i) <> 0 then begin
              let store_obj =
                (if alpha_on_store then costs.Spec.alpha *. w else 0.)
                +.
                match write_totals with
                | Some wt -> costs.Spec.delta *. w *. wt.(k).(i)
                | None -> 0.
              in
              let sv =
                new_var
                  (Store { node = m; interval = i; object_id = k })
                  ~lo:0. ~hi:1. ~obj:store_obj ()
              in
              Hashtbl.add store_tbl
                (pack ~intervals ~objects ~node:m ~interval:i ~object_id:k)
                sv;
              node_has_store.(m) <- true;
              sc_terms.(m).(i) <- (sv, w) :: sc_terms.(m).(i);
              rc_terms.(k).(i) <- (sv, 1.) :: rc_terms.(k).(i);
              (* Continuity row (3)+(20): store_i <= store_(i-1) + create_i,
                 with the terms that exist. *)
              let row = ref [ (sv, 1.) ] in
              (match !prev_store with
              | Some pv -> row := (pv, -1.) :: !row
              | None -> ());
              if Permission.create_allowed perm ~node:m ~interval:i ~object_id:k
              then begin
                let cv =
                  new_var
                    (Create { node = m; interval = i; object_id = k })
                    ~lo:0. ~hi:1.
                    ~obj:(costs.Spec.beta *. w)
                    ()
                in
                row := (cv, -1.) :: !row
              end;
              Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0. !row;
              prev_store := Some sv
            end
            else prev_store := None
          done
        end
      done
  done;
  (* --- goal-specific variables and rows --------------------------------- *)
  let node_totals = Workload.Demand.node_read_totals demand in
  let always_covered = Array.make nodes 0. in
  let objective_offset = ref 0. in
  let qos_rows = ref [||] in
  let qos_has_terms = ref [||] in
  (match spec.Spec.goal with
  | Spec.Qos { tlat_ms; fraction } ->
    let qos_terms = Array.make nodes [] in
    let penalty_per_read n =
      if costs.Spec.gamma <= 0. then 0.
      else
        (* Uncovered reads fall back to the origin; penalty accrues for the
           latency above the threshold (term (11), with the fallback route
           made explicit). *)
        Float.max 0. (sys.Topology.System.latency.(n).(origin) -. tlat_ms)
        *. costs.Spec.gamma
    in
    Array.iteri
      (fun k cells ->
        let w = weight.(k) in
        Array.iter
          (fun (c : Workload.Demand.cell) ->
            let n = c.node and i = c.interval in
            let rw = w *. c.count in
            if perm.Permission.origin_covered.(n) then
              always_covered.(n) <- always_covered.(n) +. rw
            else begin
              (* Stores that can cover this read. *)
              let covering = ref [] in
              for m = 0 to nodes - 1 do
                if perm.Permission.reach.(n).(m) then
                  match
                    Hashtbl.find_opt store_tbl
                      (pack ~intervals ~objects ~node:m ~interval:i
                         ~object_id:k)
                  with
                  | Some sv -> covering := sv :: !covering
                  | None -> ()
              done;
              if !covering <> [] then begin
                let pen = penalty_per_read n in
                let cv =
                  new_var
                    (Covered { node = n; interval = i; object_id = k })
                    ~lo:0. ~hi:1.
                    ~obj:(-.rw *. pen)
                    ()
                in
                objective_offset := !objective_offset +. (rw *. pen);
                Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
                  ((cv, 1.) :: List.map (fun sv -> (sv, -1.)) !covering);
                qos_terms.(n) <- (cv, rw) :: qos_terms.(n)
              end
              else begin
                (* Uncoverable demand still pays the penalty. *)
                objective_offset :=
                  !objective_offset +. (rw *. penalty_per_read n)
              end
            end)
          cells)
      demand.Workload.Demand.reads;
    (* Constraint (2), one row per user/node. Rows are emitted whenever
       the node has coverage options, even when trivially satisfied, so
       the model's shape is identical across QoS sweeps (enabling PDHG
       warm starts). *)
    let row_of = Array.make nodes (-1) in
    let has_terms = Array.make nodes false in
    for n = 0 to nodes - 1 do
      let rhs = (fraction *. node_totals.(n)) -. always_covered.(n) in
      if qos_terms.(n) <> [] then begin
        has_terms.(n) <- true;
        row_of.(n) <- Lp.Problem.Builder.row_count b;
        Lp.Problem.Builder.add_row b Lp.Problem.Ge ~rhs qos_terms.(n)
      end
      else if rhs > 1e-9 then begin
        (* No coverage options at all: encode the (infeasible) requirement
           explicitly so the LP reports infeasibility rather than silently
           dropping the user. *)
        row_of.(n) <- Lp.Problem.Builder.row_count b;
        Lp.Problem.Builder.add_row b Lp.Problem.Ge ~rhs []
      end
    done;
    qos_rows := row_of;
    qos_has_terms := has_terms
  | Spec.Avg_latency { tavg_ms } ->
    (* Constraints (7)-(10) with route variables restricted to nodes that
       can possibly hold the object (plus the origin, which always can). *)
    let avg_terms = Array.make nodes [] in
    Array.iteri
      (fun k cells ->
        let w = weight.(k) in
        Array.iter
          (fun (c : Workload.Demand.cell) ->
            let n = c.node and i = c.interval in
            let rw = w *. c.count in
            let routes = ref [] in
            for m = 0 to nodes - 1 do
              let candidate =
                if m = origin then perm.Permission.reach.(n).(m)
                else
                  perm.Permission.reach.(n).(m)
                  && Hashtbl.mem store_tbl
                       (pack ~intervals ~objects ~node:m ~interval:i
                          ~object_id:k)
              in
              if candidate then begin
                let rv =
                  new_var
                    (Route { node = n; from_node = m; interval = i; object_id = k })
                    ~lo:0. ~hi:1. ~obj:0. ()
                in
                routes := (m, rv) :: !routes;
                if m <> origin then begin
                  let sv =
                    Hashtbl.find store_tbl
                      (pack ~intervals ~objects ~node:m ~interval:i
                         ~object_id:k)
                  in
                  (* (9): route only to nodes that store the object. *)
                  Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
                    [ (rv, 1.); (sv, -1.) ]
                end;
                avg_terms.(n) <-
                  (rv, rw *. sys.Topology.System.latency.(n).(m))
                  :: avg_terms.(n)
              end
            done;
            (* (8): each request is routed somewhere. *)
            Lp.Problem.Builder.add_row b Lp.Problem.Eq ~rhs:1.
              (List.map (fun (_, rv) -> (rv, 1.)) !routes))
          cells)
      demand.Workload.Demand.reads;
    (* (7): per-user average latency bound. *)
    for n = 0 to nodes - 1 do
      if node_totals.(n) > 0. && avg_terms.(n) <> [] then
        Lp.Problem.Builder.add_row b Lp.Problem.Le
          ~rhs:(tavg_ms *. node_totals.(n))
          avg_terms.(n)
    done);
  (* --- storage constraint (16)/(16a) ------------------------------------ *)
  let total_weight = Util.Vecops.sum weight in
  (match cls.Classes.storage with
  | Classes.Sc_none -> ()
  | Classes.Sc_uniform ->
    let sites =
      float_of_int
        (Array.fold_left
           (fun acc p -> if p then acc + 1 else acc)
           0 perm.Permission.placeable)
    in
    let cap =
      new_var (Capacity { node = None }) ~name:"capacity" ~lo:0.
        ~hi:total_weight
        ~obj:(costs.Spec.alpha *. float_of_int intervals *. sites)
        ()
    in
    for m = 0 to nodes - 1 do
      for i = 0 to intervals - 1 do
        if sc_terms.(m).(i) <> [] then
          Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
            ((cap, -1.) :: sc_terms.(m).(i))
      done
    done
  | Classes.Sc_per_node ->
    for m = 0 to nodes - 1 do
      if node_has_store.(m) then begin
        let cap =
          new_var (Capacity { node = Some m })
            ~name:(Printf.sprintf "capacity_n%d" m)
            ~lo:0. ~hi:total_weight
            ~obj:(costs.Spec.alpha *. float_of_int intervals)
            ()
        in
        for i = 0 to intervals - 1 do
          if sc_terms.(m).(i) <> [] then
            Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
              ((cap, -1.) :: sc_terms.(m).(i))
        done
      end
    done);
  (* --- replica constraint (17)/(17a) ------------------------------------ *)
  (match cls.Classes.replicas with
  | Classes.Rc_none -> ()
  | Classes.Rc_uniform ->
    let rep =
      new_var (Replicas { object_id = None }) ~name:"replicas" ~lo:0.
        ~hi:(float_of_int (nodes - 1))
        ~obj:(costs.Spec.alpha *. float_of_int intervals *. total_weight)
        ()
    in
    for k = 0 to objects - 1 do
      for i = 0 to intervals - 1 do
        if rc_terms.(k).(i) <> [] then
          Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
            ((rep, -1.) :: rc_terms.(k).(i))
      done
    done
  | Classes.Rc_per_object ->
    for k = 0 to objects - 1 do
      let has_any =
        Array.exists (fun terms -> terms <> []) rc_terms.(k)
      in
      if has_any then begin
        let rep =
          new_var (Replicas { object_id = Some k })
            ~name:(Printf.sprintf "replicas_k%d" k)
            ~lo:0.
            ~hi:(float_of_int (nodes - 1))
            ~obj:(costs.Spec.alpha *. float_of_int intervals *. weight.(k))
            ()
        in
        for i = 0 to intervals - 1 do
          if rc_terms.(k).(i) <> [] then
            Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
              ((rep, -1.) :: rc_terms.(k).(i))
        done
      end
    done);
  (* --- node opening (13)/(14) -------------------------------------------- *)
  if costs.Spec.zeta > 0. then
    for m = 0 to nodes - 1 do
      if m <> origin && node_has_store.(m) then begin
        let ov =
          new_var (Open_node { node = m })
            ~name:(Printf.sprintf "open_n%d" m)
            ~lo:0. ~hi:1. ~obj:costs.Spec.zeta ()
        in
        for k = 0 to objects - 1 do
          for i = 0 to intervals - 1 do
            match
              Hashtbl.find_opt store_tbl
                (pack ~intervals ~objects ~node:m ~interval:i ~object_id:k)
            with
            | Some sv ->
              Lp.Problem.Builder.add_row b Lp.Problem.Le ~rhs:0.
                [ (sv, 1.); (ov, -1.) ]
            | None -> ()
          done
        done
      end
    done;
  let problem = Lp.Problem.Builder.build b in
  {
    permission = perm;
    problem;
    kinds = Array.of_list (List.rev !kinds);
    store_index = store_tbl;
    objective_offset = !objective_offset;
    node_totals;
    always_covered;
    qos_rows = !qos_rows;
    qos_has_terms = !qos_has_terms;
  }

(* Only the QoS rows (2) read the target fraction — every variable, every
   other row and the objective are fraction-invariant — so re-targeting a
   built model is an rhs patch on those rows. The rhs expression below is
   the same as in [build] (same operations, same order), so the patched
   problem is value-identical to a fresh build at the new fraction. The
   one shape-dependent case is a node with no coverage options, whose
   explicit infeasibility row exists only when its requirement is
   positive; if re-targeting flips that condition we fall back to a full
   rebuild. *)
let with_fraction t fraction =
  let perm = Permission.with_fraction t.permission fraction in
  let nodes = Array.length t.node_totals in
  let shape_ok = ref true in
  let patches = ref [] in
  for n = 0 to nodes - 1 do
    let rhs = (fraction *. t.node_totals.(n)) -. t.always_covered.(n) in
    if t.qos_has_terms.(n) then patches := (t.qos_rows.(n), rhs) :: !patches
    else begin
      let emitted = t.qos_rows.(n) >= 0 in
      if emitted <> (rhs > 1e-9) then shape_ok := false
      else if emitted then patches := (t.qos_rows.(n), rhs) :: !patches
    end
  done;
  if not !shape_ok then build perm
  else
    { t with
      permission = perm;
      problem = Lp.Problem.with_rhs t.problem !patches }

let store_var t ~node ~interval ~object_id =
  let spec = t.permission.Permission.spec in
  let intervals = Spec.interval_count spec in
  let objects = Spec.object_count spec in
  Hashtbl.find_opt t.store_index
    (pack ~intervals ~objects ~node ~interval ~object_id)

let cost_of t x = Lp.Problem.objective_value t.problem x +. t.objective_offset

let store_placement t x =
  let spec = t.permission.Permission.spec in
  let nodes = Spec.node_count spec in
  let intervals = Spec.interval_count spec in
  let objects = Spec.object_count spec in
  let out =
    Array.init nodes (fun _ -> Array.make_matrix objects intervals 0.)
  in
  Array.iteri
    (fun j kind ->
      match kind with
      | Store { node; interval; object_id } ->
        out.(node).(object_id).(interval) <- x.(j)
      | Create _ | Covered _ | Route _ | Capacity _ | Replicas _
      | Open_node _ ->
        ())
    t.kinds;
  out

let var_count t = Lp.Problem.nvars t.problem
let row_count t = Lp.Problem.nrows t.problem

let pp_stats ppf t =
  Format.fprintf ppf "model: %d vars, %d rows, %d nnz (offset %.3g)"
    (var_count t) (row_count t) (Lp.Problem.nnz t.problem) t.objective_offset
