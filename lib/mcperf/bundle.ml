type t = {
  objects : int;
  count : int;
  representative : int array;
  bundle_of : int array;
  exact_member : bool array;
  rescaled : int;
}

(* The structural key is serialized through [Marshal] with sharing
   disabled — two objects get the same bytes iff their mask columns and
   read cells are structurally equal, which is exactly the bundling
   equivalence — then digested so a 100k-object table holds 16-byte keys
   instead of kilobyte mask columns. *)
let key_of (perm : Permission.t) ~nodes k =
  let demand = perm.Permission.spec.Spec.demand in
  let store_col = Array.init nodes (fun m -> perm.Permission.store_mask.(m).(k)) in
  let create_col =
    Array.init nodes (fun m -> perm.Permission.create_mask.(m).(k))
  in
  let cells =
    Array.map
      (fun (c : Workload.Demand.cell) -> (c.node, c.interval, c.count))
      demand.Workload.Demand.reads.(k)
  in
  Digest.string
    (Marshal.to_string (store_col, create_col, cells) [ Marshal.No_sharing ])

let finish ~objects ~count ~representative ~bundle_of ~weight =
  let exact_member =
    Array.init objects (fun k ->
        weight.(k) = weight.(representative.(bundle_of.(k))))
  in
  let rescaled =
    Array.fold_left (fun acc e -> if e then acc else acc + 1) 0 exact_member
  in
  { objects; count; representative; bundle_of; exact_member; rescaled }

let compute (perm : Permission.t) =
  let spec = perm.Permission.spec in
  let nodes = Spec.node_count spec in
  let objects = Spec.object_count spec in
  let weight = spec.Spec.demand.Workload.Demand.weight in
  let table : (string, int) Hashtbl.t = Hashtbl.create ((objects / 4) + 16) in
  let reps = ref [] in
  let count = ref 0 in
  let bundle_of = Array.make objects 0 in
  for k = 0 to objects - 1 do
    let key = key_of perm ~nodes k in
    match Hashtbl.find_opt table key with
    | Some b -> bundle_of.(k) <- b
    | None ->
      let b = !count in
      incr count;
      Hashtbl.add table key b;
      reps := k :: !reps;
      bundle_of.(k) <- b
  done;
  let representative = Array.of_list (List.rev !reps) in
  finish ~objects ~count:!count ~representative ~bundle_of ~weight

let trivial (perm : Permission.t) =
  let spec = perm.Permission.spec in
  let objects = Spec.object_count spec in
  let weight = spec.Spec.demand.Workload.Demand.weight in
  let identity = Array.init objects (fun k -> k) in
  finish ~objects ~count:objects ~representative:identity
    ~bundle_of:(Array.copy identity) ~weight

let ratio t = if t.count = 0 then 1. else float_of_int t.objects /. float_of_int t.count
