(** Placement-permission analysis for a (spec, heuristic class) pair.

    The knowledge, history and reactivity properties (constraints (20),
    (20a), (21) of the paper) all reduce to a statement of the form "object
    [k] may be {e created} on node [m] at interval [i] only if some node in
    [m]'s sphere of knowledge accessed [k] within the history window".
    Because executions have at most 62 intervals, the permitted intervals
    for each (node, object) pair are precomputed as integer bitmasks; the
    model builder and the simulator's oracle heuristics both consume them.

    The same analysis yields two byproducts:
    - {e store support}: intervals where storing can possibly help (a
      create was permitted at or before [i], and a read that this node can
      cover happens at or after [i]) — used to prune LP variables, which is
      safe by dominance (any optimal solution can be rewritten to one that
      stores only inside the support, at equal or lower cost);
    - the {e feasibility oracle}: the maximum QoS any heuristic of the
      class can reach, which detects unreachable goals without solving an
      LP (e.g. Figure 1: local caching cannot exceed 99% on WEB). *)

type t = private {
  spec : Spec.t;
  cls : Classes.t;
  placeable : bool array;
      (** nodes allowed to host replicas (always false for the origin) *)
  reach : bool array array;
      (** [reach.(n).(m)]: a replica at [m] serves node [n] within the
          latency threshold AND [n] is allowed to route to [m]. *)
  know : bool array array;  (** sphere of knowledge *)
  origin_covered : bool array;
      (** per node: the origin itself is within reach (those reads are
          always served in time, at zero placement cost) *)
  create_mask : int array array;
      (** [create_mask.(m).(k)]: bit [i] set iff creating [k] on [m] at
          interval [i] is permitted. Always all-zero for the origin (it
          permanently stores everything; placing there is pointless). *)
  store_mask : int array array;
      (** [store_mask.(m).(k)]: bit [i] set iff storing can help. *)
}

val compute : ?placeable:bool array -> Spec.t -> Classes.t -> t
(** [placeable] restricts the nodes that may host replicas (deployment
    scenario of Section 6.2: only opened sites have file servers); nodes
    outside it get empty create/store masks. Defaults to every node. The
    origin is never placeable regardless. *)

val with_fraction : t -> float -> t
(** [with_fraction t f] re-targets a QoS analysis at fraction [f] without
    recomputing anything: the reach matrix depends only on the latency
    threshold and the masks never read the fraction, so the result equals
    [compute] at the new goal (the matrices are shared, not rebuilt).
    Raises [Invalid_argument] on an average-latency analysis. *)

val create_allowed : t -> node:int -> interval:int -> object_id:int -> bool
val store_possible : t -> node:int -> interval:int -> object_id:int -> bool

val max_feasible_qos : t -> float array
(** Per node: the largest fraction of its (weighted) reads that any
    heuristic of the class could serve within the threshold. *)

val feasible : t -> bool
(** Whether the spec's goal is achievable by the class at all. For a QoS
    goal this compares {!max_feasible_qos} against the target per user.
    For an average-latency goal it evaluates the per-user average latency
    of the maximal placement (replicate everywhere permitted). *)

val interval_bits : int -> int
(** [interval_bits i] is the mask with bits [0..i-1] set. (Exposed for the
    tests.) *)
