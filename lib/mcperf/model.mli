(** MC-PERF model assembly: from a (spec, class) permission analysis to a
    concrete {!Lp.Problem}.

    The LP relaxation implements the paper's formulation:

    - cost function (1) with extensions (11) write cost, (12) penalty,
      (13) node-opening cost;
    - QoS constraint (2) per user, or average-latency constraints (7)–(10)
      with explicit route variables;
    - replica dynamics (3)–(6): [create >= store_i - store_(i-1)],
      coverage [covered <= sum of reachable stores], empty initial
      placement (4);
    - heuristic-property constraints: storage constraint (16)/(16a) and
      replica constraint (17)/(17a) via auxiliary capacity variables whose
      objective charge equals the equality-constrained storage cost;
      routing knowledge (18)/(19) folded into the reach matrix; knowledge,
      history and reactivity (20)/(20a)/(21) folded into per-variable
      create permissions (see {!Permission}).

    Variable-support pruning (safe by dominance): store/create variables
    exist only inside {!Permission.store_mask}; covered variables only
    where there is demand not already served by the origin. The origin
    node receives no variables — it permanently stores every object and
    its coverage enters the constraints as constants.

    Every variable gets finite box bounds so that {!Lp.Certificate} bounds
    are always finite. *)

type var_kind =
  | Store of { node : int; interval : int; object_id : int }
  | Create of { node : int; interval : int; object_id : int }
  | Covered of { node : int; interval : int; object_id : int }
  | Route of { node : int; from_node : int; interval : int; object_id : int }
  | Capacity of { node : int option }  (** [None] = uniform across nodes *)
  | Replicas of { object_id : int option }  (** [None] = uniform *)
  | Open_node of { node : int }

type t = private {
  permission : Permission.t;
  problem : Lp.Problem.t;
  kinds : var_kind array;
  store_index : (int, int) Hashtbl.t;
      (** packed (node, interval, object) -> store-variable index; use
          {!store_var} rather than this directly *)
  objective_offset : float;
      (** constant term (from the penalty extension); the true cost of a
          solution [x] is [objective_value problem x + objective_offset] *)
  node_totals : float array;  (** weighted reads per node *)
  always_covered : float array;
      (** per node: weighted reads served by the origin within the
          threshold (no placement needed) *)
  qos_rows : int array;
      (** per node: row index of its QoS constraint (2), or [-1] when no
          row was emitted; [[||]] for average-latency models *)
  qos_has_terms : bool array;
      (** per node: the QoS row has coverage terms (such rows exist at
          every fraction; empty infeasibility rows do not) *)
}

val build : Permission.t -> t

val with_fraction : t -> float -> t
(** [with_fraction m f] re-targets a QoS model at fraction [f] by patching
    the rhs of the QoS rows — the only part of the model that reads the
    fraction. The patched model is value-identical to
    [build (Permission.with_fraction m.permission f)] but shares the
    variables, the row coefficient arrays (so {!Lp.Pdhg.prepare} matrix
    reuse applies) and all derived tables with [m]. Falls back to a full
    rebuild when the set of emitted rows would change (only possible via
    the explicit infeasibility rows of uncoverable nodes). Raises
    [Invalid_argument] on an average-latency model. *)

val store_var : t -> node:int -> interval:int -> object_id:int -> int option
(** Index of a store variable, when it exists (i.e. inside the pruned
    support). *)

val cost_of : t -> float array -> float
(** Objective value plus the constant offset. *)

val store_placement : t -> float array -> float array array array
(** [store_placement m x] expands a solution vector into a dense
    [node][object] -> per-interval fractional store array (entries outside
    the support are 0). Convenience for the rounding algorithm. *)

val var_count : t -> int
val row_count : t -> int

val pp_stats : Format.formatter -> t -> unit
