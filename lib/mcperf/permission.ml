type t = {
  spec : Spec.t;
  cls : Classes.t;
  placeable : bool array;
  reach : bool array array;
  know : bool array array;
  origin_covered : bool array;
  create_mask : int array array;
  store_mask : int array array;
}

let interval_bits i =
  if i < 0 || i > 62 then invalid_arg "Permission.interval_bits";
  if i = 62 then -1 lsr 1 else (1 lsl i) - 1

(* OR of [mask lsl d] for d in [d0, d1], i.e. an access at interval j
   permits intervals j+d0 .. j+d1. *)
let smear mask ~d0 ~d1 ~bits =
  let acc = ref 0 in
  for d = d0 to d1 do
    acc := !acc lor (mask lsl d)
  done;
  !acc land bits

let prefix_or mask ~intervals =
  let acc = ref mask in
  let shift = ref 1 in
  while !shift < intervals do
    acc := !acc lor (!acc lsl !shift);
    shift := !shift * 2
  done;
  !acc land interval_bits intervals

let compute ?placeable (spec : Spec.t) (cls : Classes.t) =
  let sys = spec.system in
  let nodes = Spec.node_count spec in
  let placeable =
    match placeable with
    | None -> Array.make nodes true
    | Some p ->
      if Array.length p <> nodes then
        invalid_arg "Permission.compute: placeable length must equal node count";
      p
  in
  let intervals = Spec.interval_count spec in
  let objects = Spec.object_count spec in
  let bits = interval_bits intervals in
  (* For a QoS goal, a replica helps node n only when it is both routable
     and within the latency threshold. For an average-latency goal there is
     no hard threshold: any routable replica can lower the average. *)
  let reach =
    match spec.goal with
    | Spec.Qos { tlat_ms; _ } ->
      Topology.System.effective_reach sys ~tlat:tlat_ms cls.routing
    | Spec.Avg_latency _ -> Topology.System.fetch_matrix sys cls.routing
  in
  let know = Topology.System.know_matrix sys cls.knowledge in
  let origin = sys.origin in
  let origin_covered = Array.init nodes (fun n -> reach.(n).(origin)) in
  (* Access masks: for each (node, object), the intervals with reads. *)
  let access = Array.make_matrix nodes objects 0 in
  Array.iteri
    (fun k cells ->
      Array.iter
        (fun (c : Workload.Demand.cell) ->
          access.(c.node).(k) <- access.(c.node).(k) lor (1 lsl c.interval))
        cells)
    spec.demand.Workload.Demand.reads;
  (* Sphere masks: union of access masks over the sphere of knowledge.
     The two canonical knowledge models short-circuit the O(N^2 * K)
     union: under [Know_global] every row of [know] is all-true, so each
     node's sphere is the one global access union (O(N * K)); under
     [Know_local] the matrix is the identity, so the sphere {e is} the
     access matrix. Custom matrices keep the general triple loop. *)
  let sphere = Array.make_matrix nodes objects 0 in
  (match cls.knowledge with
  | Topology.System.Know_global ->
    let global = Array.make objects 0 in
    for v = 0 to nodes - 1 do
      let av = access.(v) in
      for k = 0 to objects - 1 do
        global.(k) <- global.(k) lor av.(k)
      done
    done;
    for m = 0 to nodes - 1 do
      Array.blit global 0 sphere.(m) 0 objects
    done
  | Topology.System.Know_local ->
    for m = 0 to nodes - 1 do
      Array.blit access.(m) 0 sphere.(m) 0 objects
    done
  | Topology.System.Know_custom _ ->
    for m = 0 to nodes - 1 do
      for v = 0 to nodes - 1 do
        if know.(m).(v) then
          for k = 0 to objects - 1 do
            sphere.(m).(k) <- sphere.(m).(k) lor access.(v).(k)
          done
      done
    done);
  (* Per-access refinement (Theorem 3): intervals where the sphere sees at
     least two accesses, so a per-access reactive heuristic has already
     reacted to the first by the time the later ones arrive. Only needed
     when the class opts in. *)
  let sphere_multi =
    if not cls.intra_interval then [||]
    else begin
      match cls.knowledge with
      | Topology.System.Know_global ->
        (* Every node sees every access: the per-interval totals are
           global sums over the (unique, node-ascending) cells, and the
           resulting row is identical for all nodes. *)
        let totals = Array.make_matrix objects intervals 0. in
        Array.iteri
          (fun k cells ->
            Array.iter
              (fun (c : Workload.Demand.cell) ->
                totals.(k).(c.interval) <- totals.(k).(c.interval) +. c.count)
              cells)
          spec.demand.Workload.Demand.reads;
        let row = Array.make objects 0 in
        for k = 0 to objects - 1 do
          for i = 0 to intervals - 1 do
            if totals.(k).(i) >= 2. then row.(k) <- row.(k) lor (1 lsl i)
          done
        done;
        Array.init nodes (fun _ -> Array.copy row)
      | Topology.System.Know_local ->
        (* A node sees only its own cells, and cells are unique per
           (interval, node): at least two sphere accesses iff that one
           cell carries count >= 2. *)
        let multi = Array.make_matrix nodes objects 0 in
        Array.iteri
          (fun k cells ->
            Array.iter
              (fun (c : Workload.Demand.cell) ->
                if c.count >= 2. then
                  multi.(c.node).(k) <- multi.(c.node).(k) lor (1 lsl c.interval))
              cells)
          spec.demand.Workload.Demand.reads;
        multi
      | Topology.System.Know_custom _ ->
        let counts = Array.make_matrix nodes objects [||] in
        for n = 0 to nodes - 1 do
          for k = 0 to objects - 1 do
            counts.(n).(k) <- Array.make intervals 0.
          done
        done;
        Array.iteri
          (fun k cells ->
            Array.iter
              (fun (c : Workload.Demand.cell) ->
                counts.(c.node).(k).(c.interval) <-
                  counts.(c.node).(k).(c.interval) +. c.count)
              cells)
          spec.demand.Workload.Demand.reads;
        let multi = Array.make_matrix nodes objects 0 in
        for m = 0 to nodes - 1 do
          for k = 0 to objects - 1 do
            for i = 0 to intervals - 1 do
              let total = ref 0. in
              for v = 0 to nodes - 1 do
                if know.(m).(v) then total := !total +. counts.(v).(k).(i)
              done;
              if !total >= 2. then multi.(m).(k) <- multi.(m).(k) lor (1 lsl i)
            done
          done
        done;
        multi
    end
  in
  (* Last interval with a read this node's replica could usefully cover.
     Under a QoS goal, reads from origin-covered nodes are already served
     within the threshold and never need placement; under an average-
     latency goal every read can still benefit from a closer replica. *)
  let needs_placement =
    match spec.goal with
    | Spec.Qos _ -> fun n -> not origin_covered.(n)
    | Spec.Avg_latency _ -> fun _ -> true
  in
  let last_coverable = Array.make_matrix nodes objects (-1) in
  Array.iteri
    (fun k cells ->
      Array.iter
        (fun (c : Workload.Demand.cell) ->
          if needs_placement c.node then
            for m = 0 to nodes - 1 do
              if reach.(c.node).(m) && c.interval > last_coverable.(m).(k) then
                last_coverable.(m).(k) <- c.interval
            done)
        cells)
    spec.demand.Workload.Demand.reads;
  let create_mask = Array.make_matrix nodes objects 0 in
  let store_mask = Array.make_matrix nodes objects 0 in
  for m = 0 to nodes - 1 do
    if m <> origin && placeable.(m) then
      for k = 0 to objects - 1 do
        let permitted =
          match (cls.history, cls.timing) with
          | Classes.All_intervals, Classes.Proactive ->
            prefix_or sphere.(m).(k) ~intervals
          | Classes.All_intervals, Classes.Reactive ->
            prefix_or sphere.(m).(k) ~intervals lsl 1 land bits
          | Classes.Window w, Classes.Proactive ->
            if w < 1 then invalid_arg "Permission.compute: window must be >= 1";
            smear sphere.(m).(k) ~d0:0 ~d1:(w - 1) ~bits
          | Classes.Window w, Classes.Reactive ->
            if w < 1 then invalid_arg "Permission.compute: window must be >= 1";
            smear sphere.(m).(k) ~d0:1 ~d1:w ~bits
        in
        let permitted =
          if cls.intra_interval && cls.timing = Classes.Reactive then
            permitted lor sphere_multi.(m).(k)
          else permitted
        in
        let lc = last_coverable.(m).(k) in
        if lc >= 0 then begin
          let useful = interval_bits (lc + 1) in
          create_mask.(m).(k) <- permitted land useful;
          store_mask.(m).(k) <-
            prefix_or create_mask.(m).(k) ~intervals land useful
        end
      done
  done;
  let placeable =
    Array.mapi (fun m p -> p && m <> sys.Topology.System.origin) placeable
  in
  { spec; cls; placeable; reach; know; origin_covered; create_mask; store_mask }

(* The reach matrix depends on the goal only through [tlat_ms], and the
   masks never read the target fraction, so re-targeting a QoS analysis is
   a pure record update — [compute] at the new fraction would rebuild the
   exact same matrices. *)
let with_fraction t fraction =
  match t.spec.Spec.goal with
  | Spec.Qos { tlat_ms; _ } ->
    { t with
      spec = { t.spec with goal = Spec.Qos { tlat_ms; fraction } } }
  | Spec.Avg_latency _ ->
    invalid_arg "Permission.with_fraction: requires a QoS goal"

let create_allowed t ~node ~interval ~object_id =
  t.create_mask.(node).(object_id) land (1 lsl interval) <> 0

let store_possible t ~node ~interval ~object_id =
  t.store_mask.(node).(object_id) land (1 lsl interval) <> 0

let covered_possible t ~node ~interval ~object_id =
  t.origin_covered.(node)
  ||
  let nodes = Array.length t.reach in
  let rec scan m =
    if m >= nodes then false
    else if
      t.reach.(node).(m)
      && t.store_mask.(m).(object_id) land (1 lsl interval) <> 0
    then true
    else scan (m + 1)
  in
  scan 0

let max_feasible_qos t =
  let spec = t.spec in
  let nodes = Spec.node_count spec in
  let covered = Array.make nodes 0. in
  let totals = Workload.Demand.node_read_totals spec.demand in
  Array.iteri
    (fun k cells ->
      let w = spec.demand.Workload.Demand.weight.(k) in
      Array.iter
        (fun (c : Workload.Demand.cell) ->
          if covered_possible t ~node:c.node ~interval:c.interval ~object_id:k
          then covered.(c.node) <- covered.(c.node) +. (c.count *. w))
        cells)
    spec.demand.Workload.Demand.reads;
  Array.init nodes (fun n ->
      if totals.(n) <= 0. then 1. else covered.(n) /. totals.(n))

let feasible t =
  let spec = t.spec in
  match spec.goal with
  | Spec.Qos { fraction; _ } ->
    Array.for_all
      (fun q -> q >= fraction -. 1e-12)
      (max_feasible_qos t)
  | Spec.Avg_latency { tavg_ms } ->
    (* Best case: every read is served from the closest node that could
       possibly store the object at that time (or the origin). *)
    let sys = spec.system in
    let nodes = Spec.node_count spec in
    let latency_sum = Array.make nodes 0. in
    let totals = Workload.Demand.node_read_totals spec.demand in
    Array.iteri
      (fun k cells ->
        let w = spec.demand.Workload.Demand.weight.(k) in
        Array.iter
          (fun (c : Workload.Demand.cell) ->
            let best = ref sys.latency.(c.node).(sys.origin) in
            for m = 0 to nodes - 1 do
              if
                t.store_mask.(m).(k) land (1 lsl c.interval) <> 0
                && sys.latency.(c.node).(m) < !best
              then best := sys.latency.(c.node).(m)
            done;
            latency_sum.(c.node) <-
              latency_sum.(c.node) +. (!best *. c.count *. w))
          cells)
      spec.demand.Workload.Demand.reads;
    let ok = ref true in
    for n = 0 to nodes - 1 do
      if totals.(n) > 0. && latency_sum.(n) /. totals.(n) > tavg_ms +. 1e-9
      then ok := false
    done;
    !ok
