(** Deployed-heuristic evaluation: run an actual heuristic against the
    case study, find its minimal resource parameter that meets the goal,
    and report its cost (the data of Figure 2).

    Caching heuristics are simulated at event granularity on the request
    trace; the centralized greedy heuristics place at interval granularity
    on the bucketed demand and are costed by {!Mcperf.Costing} under their
    class, so their costs are directly comparable to the class lower
    bounds.

    Every search takes an optional [jobs] (default 1): with [jobs > 1] the
    minimal-parameter search probes several candidate parameters
    concurrently via {!Search} and {!Util.Parallel}. Feasibility is
    monotone in the parameter, so the chosen parameter — and hence the
    reported deployment — is identical at every [jobs] value. *)

type detail =
  | Cache of Heuristics.Event_cache.outcome
  | Placement of Mcperf.Costing.evaluation

type deployed = {
  name : string;
  parameter : int;  (** capacity (objects) or replication factor *)
  cost : float;
  worst_qos : float;  (** min per-user QoS achieved *)
  detail : detail;
  placement : Mcperf.Costing.placement option;
      (** the interval-granularity placement the deployment settled on —
          cache heuristics report their end-of-interval snapshots, the
          greedy heuristics their placed replicas — so every deployed
          heuristic can be re-priced under failure scenarios
          ({!Avail.Survive}, {!degradation_replay}) *)
}

val deploy :
  ?jobs:int ->
  factory:Heuristics.Strategy.factory ->
  ctx:Heuristics.Strategy.Context.t ->
  delta:Heuristics.Strategy.delta ->
  unit ->
  deployed option
(** The generic deployment path every entry point below routes through:
    instantiate the strategy at candidate parameters (the context's
    [parameter] field is the knob), fold in the workload delta, and find
    the minimal parameter whose verdict meets the goal. [None] when even
    the strategy's own parameter ceiling fails. *)

val deploy_offline :
  ?jobs:int ->
  ?placeable:bool array ->
  ?trace:Workload.Trace.t ->
  factory:Heuristics.Strategy.factory ->
  spec:Mcperf.Spec.t ->
  unit ->
  deployed option
(** [deploy] on the offline single-epoch delta of a spec ([trace] is
    required by event-level strategies). *)

val lru_caching :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option
(** Plain per-node LRU with the smallest uniform capacity meeting the
    goal; [None] when no capacity suffices (cold misses from sites beyond
    the threshold). [placeable] limits cache sites (Section 6.2). *)

val cooperative_caching :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option

val caching_with_prefetch :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option
(** Oracle-prefetching LRU (the proactive caching class). *)

val cooperative_caching_with_prefetch :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option

val hierarchical_caching :
  ?jobs:int ->
  ?placeable:bool array ->
  ?cluster_radius_ms:float ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option
(** Hierarchical cooperative caching (Korupolu et al. style): clusters of
    the given radius share one logical cache. Default radius 150 ms. *)

val policy_caching :
  ?jobs:int ->
  ?placeable:bool array ->
  policy:Heuristics.Policy_cache.kind ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option
(** Plain local caching under an arbitrary replacement policy (LRU, FIFO,
    LFU) — same heuristic class, different distance from its bound. *)

val greedy_global :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  unit ->
  deployed option
(** Storage-constrained greedy placement with minimal uniform capacity. *)

val greedy_replica :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  unit ->
  deployed option
(** Replica-constrained greedy placement with minimal uniform replication
    factor. *)

type replay_step = {
  step : int;
  down_count : int;
  violation : float;
  unavail_fraction : float;
  degraded_cost : float;
}

type replay = {
  steps : replay_step array;  (** one per timeline step, in step order *)
  base_cost : float;  (** nominal evaluation total *)
  mean_violation : float;
  worst_violation : float;
  mean_unavail : float;
  unavail_steps : int;  (** steps with any unavailability mass *)
  mean_cost_ratio : float;
  worst_cost_ratio : float;
}

val degradation_replay :
  ?jobs:int ->
  perm:Mcperf.Permission.t ->
  placement:Mcperf.Costing.placement ->
  timeline:Avail.Scenario.timeline ->
  unit ->
  replay
(** Replay a placement against a failure timeline ({!Avail.Scenario}):
    each step's down-mask re-prices the placement via
    {!Avail.Survive.degrade} (closest {e surviving} replica, unavailability
    mass on origin loss), emitting per-step violation/unavailability and
    the aggregate fragility picture over the {!Obs} pipe
    ([sim.degradation_replay] span, [sim.replay_steps] counter). Steps are
    pure and order-preserved, so the replay is byte-identical at every
    [jobs] value. Raises on an empty timeline. *)

val cache_outcome_at :
  ?placeable:bool array ->
  ?policy:Heuristics.Policy_cache.kind ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  capacity:int ->
  mode:Heuristics.Event_cache.mode ->
  ?prefetch:bool ->
  unit ->
  Heuristics.Event_cache.outcome
(** Low-level escape hatch: simulate a cache at a fixed capacity. *)
