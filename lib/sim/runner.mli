(** Deployed-heuristic evaluation: run an actual heuristic against the
    case study, find its minimal resource parameter that meets the goal,
    and report its cost (the data of Figure 2).

    Caching heuristics are simulated at event granularity on the request
    trace; the centralized greedy heuristics place at interval granularity
    on the bucketed demand and are costed by {!Mcperf.Costing} under their
    class, so their costs are directly comparable to the class lower
    bounds.

    Every search takes an optional [jobs] (default 1): with [jobs > 1] the
    minimal-parameter search probes several candidate parameters
    concurrently via {!Search} and {!Util.Parallel}. Feasibility is
    monotone in the parameter, so the chosen parameter — and hence the
    reported deployment — is identical at every [jobs] value. *)

type detail =
  | Cache of Heuristics.Event_cache.outcome
  | Placement of Mcperf.Costing.evaluation

type deployed = {
  name : string;
  parameter : int;  (** capacity (objects) or replication factor *)
  cost : float;
  worst_qos : float;  (** min per-user QoS achieved *)
  detail : detail;
}

val lru_caching :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option
(** Plain per-node LRU with the smallest uniform capacity meeting the
    goal; [None] when no capacity suffices (cold misses from sites beyond
    the threshold). [placeable] limits cache sites (Section 6.2). *)

val cooperative_caching :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option

val caching_with_prefetch :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option
(** Oracle-prefetching LRU (the proactive caching class). *)

val cooperative_caching_with_prefetch :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option

val hierarchical_caching :
  ?jobs:int ->
  ?placeable:bool array ->
  ?cluster_radius_ms:float ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option
(** Hierarchical cooperative caching (Korupolu et al. style): clusters of
    the given radius share one logical cache. Default radius 150 ms. *)

val policy_caching :
  ?jobs:int ->
  ?placeable:bool array ->
  policy:Heuristics.Policy_cache.kind ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  unit ->
  deployed option
(** Plain local caching under an arbitrary replacement policy (LRU, FIFO,
    LFU) — same heuristic class, different distance from its bound. *)

val greedy_global :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  unit ->
  deployed option
(** Storage-constrained greedy placement with minimal uniform capacity. *)

val greedy_replica :
  ?jobs:int ->
  ?placeable:bool array ->
  spec:Mcperf.Spec.t ->
  unit ->
  deployed option
(** Replica-constrained greedy placement with minimal uniform replication
    factor. *)

val cache_outcome_at :
  ?placeable:bool array ->
  ?policy:Heuristics.Policy_cache.kind ->
  spec:Mcperf.Spec.t ->
  trace:Workload.Trace.t ->
  capacity:int ->
  mode:Heuristics.Event_cache.mode ->
  ?prefetch:bool ->
  unit ->
  Heuristics.Event_cache.outcome
(** Low-level escape hatch: simulate a cache at a fixed capacity. *)
