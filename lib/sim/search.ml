(* Bracket invariant throughout: feasible hi, not (feasible lo). With
   [jobs] parallel probes at interior points m_1 < ... < m_k, monotonicity
   means the flags form a 0*1* pattern; the bracket narrows to the segment
   around the flip. The first feasible probe (or [hi] when none is
   feasible) is exactly what adaptive bisection would converge to, so the
   integer search returns the same parameter at every [jobs]. *)

let interior_points ~lo ~hi k =
  (* Up to [k] distinct evenly spaced integers strictly inside (lo, hi). *)
  let span = hi - lo in
  let k = min k (span - 1) in
  let rec build i acc =
    if i < 1 then acc
    else
      let p = lo + (span * i / (k + 1)) in
      let acc = match acc with q :: _ when q = p -> acc | _ -> p :: acc in
      build (i - 1) acc
  in
  build k []

(* Deterministic fault-injection points for the probe workers: inert
   unless a Util.Faults spec is installed, and even then they only fire
   inside a pool worker on a probe's first attempt, so the supervisor's
   retry always completes the round with the same flags. *)
let probe_int ~feasible p =
  let key = Printf.sprintf "probe-int|%d" p in
  Util.Faults.crash_point ~key;
  Util.Faults.stall_point ~key;
  feasible p

let probe_float ~feasible p =
  let key = Printf.sprintf "probe-float|%.17g" p in
  Util.Faults.crash_point ~key;
  Util.Faults.stall_point ~key;
  feasible p

let narrow_int ~jobs ~feasible lo hi =
  let probes = interior_points ~lo ~hi jobs in
  let flags =
    Util.Parallel.map_values ~jobs ~f:(probe_int ~feasible) probes
  in
  let rec scan lo = function
    | [], [] -> (lo, hi)
    | p :: _, true :: _ -> (lo, p)
    | p :: ps, false :: fs -> scan p (ps, fs)
    | _ -> assert false
  in
  scan lo (probes, flags)

(* Both searches maintain "[hi] is known feasible" as their invariant, so
   they can stop refining at any moment and still return a valid (merely
   non-minimal) parameter. When the ambient task budget expires
   ({!Util.Parallel.task_expired}) they do exactly that — the bisection
   analogue of an anytime LP bound. Unbudgeted runs never read the clock
   and keep their deterministic narrowing sequence. *)

let min_feasible_int ?(jobs = 1) ~lo ~hi feasible =
  if lo > hi then invalid_arg "Search.min_feasible_int: lo > hi";
  if not (feasible hi) then None
  else if feasible lo then Some lo
  else begin
    (* Invariant: feasible hi, not (feasible lo). *)
    let lo = ref lo and hi = ref hi in
    while !hi - !lo > 1 && not (Util.Parallel.task_expired ()) do
      if jobs <= 1 then begin
        let mid = !lo + ((!hi - !lo) / 2) in
        if feasible mid then hi := mid else lo := mid
      end
      else begin
        let lo', hi' = narrow_int ~jobs ~feasible !lo !hi in
        lo := lo';
        hi := hi'
      end
    done;
    Some !hi
  end

let min_feasible_float ?(jobs = 1) ~lo ~hi ~tol feasible =
  if lo > hi then invalid_arg "Search.min_feasible_float: lo > hi";
  if tol <= 0. then invalid_arg "Search.min_feasible_float: tol must be positive";
  if not (feasible hi) then None
  else if feasible lo then Some lo
  else begin
    let lo = ref lo and hi = ref hi in
    while !hi -. !lo > tol && not (Util.Parallel.task_expired ()) do
      if jobs <= 1 then begin
        let mid = 0.5 *. (!lo +. !hi) in
        if feasible mid then hi := mid else lo := mid
      end
      else begin
        let span = !hi -. !lo in
        let k = jobs in
        let probes =
          List.init k (fun i ->
              !lo +. (span *. float_of_int (i + 1) /. float_of_int (k + 1)))
        in
        let flags =
          Util.Parallel.map_values ~jobs ~f:(probe_float ~feasible) probes
        in
        let rec scan l = function
          | [], [] -> (l, !hi)
          | p :: _, true :: _ -> (l, p)
          | p :: ps, false :: fs -> scan p (ps, fs)
          | _ -> assert false
        in
        let lo', hi' = scan !lo (probes, flags) in
        lo := lo';
        hi := hi'
      end
    done;
    Some !hi
  end
