(** Minimal-parameter searches for deployed heuristics.

    Heuristic families are parameterized by a scalar knob — cache capacity,
    replication factor — and the designer wants the smallest knob value
    that meets the performance goal (storage cost grows with the knob).
    Feasibility is monotone for these families (LRU contents satisfy the
    inclusion property; the greedy placements only grow with their
    budget), so binary search applies.

    With [jobs > 1] the bisection becomes a [jobs]-section: each round
    probes up to [jobs] evenly spaced interior points concurrently
    (through {!Util.Parallel}) and narrows the bracket to the segment
    where feasibility flips. For a monotone predicate the answer is
    identical to plain bisection — only the probe schedule changes — so
    parallel and sequential searches return the same parameter.

    Both searches are {e anytime}: the upper bracket end is feasible by
    invariant, so when the ambient per-task budget expires
    ({!Util.Parallel.task_expired}) the search stops refining and returns
    the current feasible end — a valid, merely non-minimal, parameter.
    Unbudgeted runs never consult the clock. *)

val min_feasible_int :
  ?jobs:int -> lo:int -> hi:int -> (int -> bool) -> int option
(** [min_feasible_int ~lo ~hi feasible] is the smallest [p] in
    [\[lo, hi\]] with [feasible p], assuming monotonicity
    ([feasible p] implies [feasible (p+1)]). [None] when even [hi] fails.
    [feasible] is invoked O(log (hi - lo)) times ([jobs] probes per round
    when parallel). [jobs] defaults to 1 (sequential). Requires
    [lo <= hi]. *)

val min_feasible_float :
  ?jobs:int -> lo:float -> hi:float -> tol:float -> (float -> bool) -> float option
(** Continuous counterpart, narrowing until the bracket is tighter than
    [tol] and returning the feasible end. *)
