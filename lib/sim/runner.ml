type detail =
  | Cache of Heuristics.Event_cache.outcome
  | Placement of Mcperf.Costing.evaluation

type deployed = {
  name : string;
  parameter : int;
  cost : float;
  worst_qos : float;
  detail : detail;
  placement : Mcperf.Costing.placement option;
}

let worst arr = Array.fold_left Float.min 1. arr

(* Every heuristic run gets a span tagged with its name and, on success,
   the provisioning parameter and cost it settled on — enough to see
   from a trace which heuristic dominated a sweep's wall-clock. *)
let m_runs = lazy (Obs.Metrics.counter "sim.heuristic_runs")

let with_run_obs name f =
  Obs.Metrics.incr (Lazy.force m_runs);
  let sp =
    Obs.Trace.span_begin "sim.heuristic"
      ~attrs:[ ("name", Obs.Trace.Str name) ]
  in
  match f () with
  | r ->
    Obs.Trace.span_end sp
      ~attrs:
        (match r with
        | None -> [ ("found", Obs.Trace.Bool false) ]
        | Some d ->
          [
            ("found", Obs.Trace.Bool true);
            ("parameter", Obs.Trace.Int d.parameter);
            ("cost", Obs.Trace.Float d.cost);
          ]);
    r
  | exception e ->
    Obs.Trace.span_end sp;
    raise e

let goal_parts spec =
  match spec.Mcperf.Spec.goal with
  | Mcperf.Spec.Qos { tlat_ms; fraction } -> (tlat_ms, `Qos fraction)
  | Mcperf.Spec.Avg_latency { tavg_ms } -> (tavg_ms, `Avg tavg_ms)

let cache_outcome_at ?placeable ?policy ~spec ~trace ~capacity ~mode
    ?(prefetch = false) () =
  let tlat_ms, _ = goal_parts spec in
  Heuristics.Event_cache.simulate ~system:spec.Mcperf.Spec.system ~trace
    ~intervals:(Mcperf.Spec.interval_count spec)
    ~costs:spec.Mcperf.Spec.costs ~tlat_ms ~capacity ~mode ~prefetch
    ?placeable ?policy ()

let cache_meets spec (o : Heuristics.Event_cache.outcome) =
  match goal_parts spec with
  | _, `Qos fraction -> Heuristics.Event_cache.meets_qos o ~fraction
  | _, `Avg tavg ->
    Array.for_all (fun l -> l <= tavg +. 1e-9) o.Heuristics.Event_cache.avg_latency

let cache_heuristic ?jobs ?placeable ?policy ~name ~mode ~prefetch ~spec ~trace
    () =
  with_run_obs name @@ fun () ->
  let objects = Workload.Trace.object_count trace in
  let outcome_at c =
    cache_outcome_at ?placeable ?policy ~spec ~trace ~capacity:c ~mode
      ~prefetch ()
  in
  let feasible c = cache_meets spec (outcome_at c) in
  match Search.min_feasible_int ?jobs ~lo:0 ~hi:objects feasible with
  | None -> None
  | Some capacity ->
    let o = outcome_at capacity in
    Some
      {
        name;
        parameter = capacity;
        cost = o.Heuristics.Event_cache.provisioned_cost;
        worst_qos = worst o.Heuristics.Event_cache.qos;
        detail = Cache o;
        placement = o.Heuristics.Event_cache.placement;
      }

let lru_caching ?jobs ?placeable ~spec ~trace () =
  cache_heuristic ?jobs ?placeable ~name:"lru-caching"
    ~mode:Heuristics.Event_cache.Local ~prefetch:false ~spec ~trace ()

let cooperative_caching ?jobs ?placeable ~spec ~trace () =
  cache_heuristic ?jobs ?placeable ~name:"cooperative-caching"
    ~mode:Heuristics.Event_cache.Cooperative ~prefetch:false ~spec ~trace ()

let caching_with_prefetch ?jobs ?placeable ~spec ~trace () =
  cache_heuristic ?jobs ?placeable ~name:"caching-prefetch"
    ~mode:Heuristics.Event_cache.Local ~prefetch:true ~spec ~trace ()

let cooperative_caching_with_prefetch ?jobs ?placeable ~spec ~trace () =
  cache_heuristic ?jobs ?placeable ~name:"cooperative-caching-prefetch"
    ~mode:Heuristics.Event_cache.Cooperative ~prefetch:true ~spec ~trace ()

let hierarchical_caching ?jobs ?placeable ?(cluster_radius_ms = 150.) ~spec
    ~trace () =
  cache_heuristic ?jobs ?placeable ~name:"hierarchical-caching"
    ~mode:(Heuristics.Event_cache.Hierarchical { cluster_radius_ms })
    ~prefetch:false ~spec ~trace ()

let policy_caching ?jobs ?placeable ~policy ~spec ~trace () =
  cache_heuristic ?jobs ?placeable ~policy
    ~name:(Heuristics.Policy_cache.kind_name policy ^ "-caching")
    ~mode:Heuristics.Event_cache.Local ~prefetch:false ~spec ~trace ()

let placement_meets (e : Mcperf.Costing.evaluation) = e.Mcperf.Costing.meets_goal

let greedy_global ?jobs ?placeable ~spec () =
  with_run_obs "greedy-global" @@ fun () ->
  let total_weight =
    Util.Vecops.sum spec.Mcperf.Spec.demand.Workload.Demand.weight
  in
  let hi = int_of_float (Float.ceil total_weight) in
  let eval_at c =
    Heuristics.Greedy_global.evaluate ?placeable ~spec
      ~capacity:(float_of_int c) ()
  in
  let feasible c = placement_meets (eval_at c) in
  match Search.min_feasible_int ?jobs ~lo:0 ~hi feasible with
  | None -> None
  | Some capacity ->
    let e = eval_at capacity in
    let perm =
      Mcperf.Permission.compute ?placeable spec
        Mcperf.Classes.storage_constrained
    in
    let p =
      Heuristics.Greedy_global.place ~perm
        ~capacity:(float_of_int capacity)
        ()
    in
    Some
      {
        name = "greedy-global";
        parameter = capacity;
        cost = e.Mcperf.Costing.total;
        worst_qos = worst e.Mcperf.Costing.qos;
        detail = Placement e;
        placement = Some p;
      }

let greedy_replica ?jobs ?placeable ~spec () =
  with_run_obs "greedy-replica" @@ fun () ->
  let hi = Mcperf.Spec.node_count spec - 1 in
  let eval_at r =
    Heuristics.Greedy_replica.evaluate ?placeable ~spec ~replicas:r ()
  in
  let feasible r = placement_meets (eval_at r) in
  match Search.min_feasible_int ?jobs ~lo:0 ~hi feasible with
  | None -> None
  | Some replicas ->
    let e = eval_at replicas in
    let perm =
      Mcperf.Permission.compute ?placeable spec
        Mcperf.Classes.replica_constrained_uniform
    in
    let p = Heuristics.Greedy_replica.place ~perm ~replicas () in
    Some
      {
        name = "greedy-replica";
        parameter = replicas;
        cost = e.Mcperf.Costing.total;
        worst_qos = worst e.Mcperf.Costing.qos;
        detail = Placement e;
        placement = Some p;
      }

(* --- degradation replay ------------------------------------------------- *)

type replay_step = {
  step : int;
  down_count : int;
  violation : float;
  unavail_fraction : float;
  degraded_cost : float;
}

type replay = {
  steps : replay_step array;
  base_cost : float;
  mean_violation : float;
  worst_violation : float;
  mean_unavail : float;
  unavail_steps : int;
  mean_cost_ratio : float;
  worst_cost_ratio : float;
}

let m_replay_steps = lazy (Obs.Metrics.counter "sim.replay_steps")

let degradation_replay ?(jobs = 1) ~(perm : Mcperf.Permission.t) ~placement
    ~(timeline : Avail.Scenario.timeline) () =
  let nsteps = timeline.Avail.Scenario.steps in
  if nsteps = 0 then invalid_arg "Runner.degradation_replay: empty timeline";
  let sp =
    Obs.Trace.span_begin "sim.degradation_replay"
      ~attrs:[ ("steps", Obs.Trace.Int nsteps) ]
  in
  let base = Mcperf.Costing.evaluate perm placement in
  let eval (t, down) =
    let d = Avail.Survive.degrade ~base perm placement ~down in
    {
      step = t;
      down_count = d.Avail.Survive.down_count;
      violation = d.Avail.Survive.violation;
      unavail_fraction = d.Avail.Survive.unavail_fraction;
      degraded_cost = d.Avail.Survive.degraded_cost;
    }
  in
  let tasks =
    Array.to_list (Array.mapi (fun t down -> (t, down)) timeline.Avail.Scenario.down)
  in
  (* Each step is a pure function of (perm, placement, down mask), and
     Parallel.map_values preserves order — replays are byte-identical at
     every [jobs]. *)
  let steps =
    Array.of_list
      (if jobs <= 1 then List.map eval tasks
       else Util.Parallel.map_values ~jobs ~f:eval tasks)
  in
  Obs.Metrics.incr ~by:nsteps (Lazy.force m_replay_steps);
  let n = float_of_int nsteps in
  let sum f = Array.fold_left (fun acc s -> acc +. f s) 0. steps in
  let worst_of f = Array.fold_left (fun acc s -> Float.max acc (f s)) 0. steps in
  let base_cost = base.Mcperf.Costing.total in
  let ratio s =
    if base_cost > 0. then s.degraded_cost /. base_cost
    else 1. +. s.degraded_cost
  in
  let r =
    {
      steps;
      base_cost;
      mean_violation = sum (fun s -> s.violation) /. n;
      worst_violation = worst_of (fun s -> s.violation);
      mean_unavail = sum (fun s -> s.unavail_fraction) /. n;
      unavail_steps =
        Array.fold_left
          (fun acc s -> if s.unavail_fraction > 0. then acc + 1 else acc)
          0 steps;
      mean_cost_ratio = sum ratio /. n;
      worst_cost_ratio = worst_of ratio;
    }
  in
  Obs.Trace.span_end sp
    ~attrs:
      [
        ("worst_violation", Obs.Trace.Float r.worst_violation);
        ("mean_cost_ratio", Obs.Trace.Float r.mean_cost_ratio);
        ("unavail_steps", Obs.Trace.Int r.unavail_steps);
      ];
  r
