type detail =
  | Cache of Heuristics.Event_cache.outcome
  | Placement of Mcperf.Costing.evaluation

type deployed = {
  name : string;
  parameter : int;
  cost : float;
  worst_qos : float;
  detail : detail;
  placement : Mcperf.Costing.placement option;
}

(* Every heuristic run gets a span tagged with its name and, on success,
   the provisioning parameter and cost it settled on — enough to see
   from a trace which heuristic dominated a sweep's wall-clock. *)
let m_runs = lazy (Obs.Metrics.counter "sim.heuristic_runs")

let with_run_obs name f =
  Obs.Metrics.incr (Lazy.force m_runs);
  let sp =
    Obs.Trace.span_begin "sim.heuristic"
      ~attrs:[ ("name", Obs.Trace.Str name) ]
  in
  match f () with
  | r ->
    Obs.Trace.span_end sp
      ~attrs:
        (match r with
        | None -> [ ("found", Obs.Trace.Bool false) ]
        | Some d ->
          [
            ("found", Obs.Trace.Bool true);
            ("parameter", Obs.Trace.Int d.parameter);
            ("cost", Obs.Trace.Float d.cost);
          ]);
    r
  | exception e ->
    Obs.Trace.span_end sp;
    raise e

let cache_outcome_at ?placeable ?policy ~spec ~trace ~capacity ~mode
    ?(prefetch = false) () =
  let tlat_ms = Mcperf.Spec.latency_threshold spec in
  Heuristics.Event_cache.simulate ~system:spec.Mcperf.Spec.system ~trace
    ~intervals:(Mcperf.Spec.interval_count spec)
    ~costs:spec.Mcperf.Spec.costs ~tlat_ms ~capacity ~mode ~prefetch
    ?placeable ?policy ()

(* The single deployment path: every heuristic is a strategy instance,
   and a deployment is the minimal provisioning parameter whose verdict
   meets the goal. Feasibility is monotone in the parameter, so the
   parallel search settles on the same parameter at every [jobs]. *)
let deploy ?jobs ~(factory : Heuristics.Strategy.factory) ~ctx ~delta () =
  let module S = Heuristics.Strategy in
  let at p = S.observe (factory (S.Context.with_parameter ctx p)) delta in
  let name = S.name (factory ctx) in
  with_run_obs name @@ fun () ->
  let hi = S.parameter_ceiling (at 0) in
  let feasible p = (S.assess (at p)).S.meets_goal in
  match Search.min_feasible_int ?jobs ~lo:0 ~hi feasible with
  | None -> None
  | Some parameter ->
    let v = S.assess (at parameter) in
    Some
      {
        name;
        parameter;
        cost = v.S.cost;
        worst_qos = v.S.worst_qos;
        detail =
          (match v.S.detail with
          | S.Evaluation e -> Placement e
          | S.Cache_outcome o -> Cache o);
        placement = v.S.placement;
      }

let deploy_offline ?jobs ?placeable ?trace ~factory ~spec () =
  deploy ?jobs ~factory
    ~ctx:(Heuristics.Strategy.Context.of_spec ?placeable spec)
    ~delta:(Heuristics.Strategy.delta_of_spec ?trace spec)
    ()

let lru_caching ?jobs ?placeable ~spec ~trace () =
  deploy_offline ?jobs ?placeable ~trace
    ~factory:Heuristics.Cache_strategy.lru ~spec ()

let cooperative_caching ?jobs ?placeable ~spec ~trace () =
  deploy_offline ?jobs ?placeable ~trace
    ~factory:Heuristics.Cache_strategy.cooperative ~spec ()

let caching_with_prefetch ?jobs ?placeable ~spec ~trace () =
  deploy_offline ?jobs ?placeable ~trace
    ~factory:Heuristics.Cache_strategy.prefetching ~spec ()

let cooperative_caching_with_prefetch ?jobs ?placeable ~spec ~trace () =
  deploy_offline ?jobs ?placeable ~trace
    ~factory:Heuristics.Cache_strategy.cooperative_prefetching ~spec ()

let hierarchical_caching ?jobs ?placeable ?(cluster_radius_ms = 150.) ~spec
    ~trace () =
  deploy_offline ?jobs ?placeable ~trace
    ~factory:(Heuristics.Cache_strategy.hierarchical ~cluster_radius_ms ())
    ~spec ()

let policy_caching ?jobs ?placeable ~policy ~spec ~trace () =
  deploy_offline ?jobs ?placeable ~trace
    ~factory:(Heuristics.Cache_strategy.policy policy)
    ~spec ()

let greedy_global ?jobs ?placeable ~spec () =
  deploy_offline ?jobs ?placeable ~factory:Heuristics.Greedy_global.strategy
    ~spec ()

let greedy_replica ?jobs ?placeable ~spec () =
  deploy_offline ?jobs ?placeable ~factory:Heuristics.Greedy_replica.strategy
    ~spec ()

(* --- degradation replay ------------------------------------------------- *)

type replay_step = {
  step : int;
  down_count : int;
  violation : float;
  unavail_fraction : float;
  degraded_cost : float;
}

type replay = {
  steps : replay_step array;
  base_cost : float;
  mean_violation : float;
  worst_violation : float;
  mean_unavail : float;
  unavail_steps : int;
  mean_cost_ratio : float;
  worst_cost_ratio : float;
}

let m_replay_steps = lazy (Obs.Metrics.counter "sim.replay_steps")

let degradation_replay ?(jobs = 1) ~(perm : Mcperf.Permission.t) ~placement
    ~(timeline : Avail.Scenario.timeline) () =
  let nsteps = timeline.Avail.Scenario.steps in
  if nsteps = 0 then invalid_arg "Runner.degradation_replay: empty timeline";
  let sp =
    Obs.Trace.span_begin "sim.degradation_replay"
      ~attrs:[ ("steps", Obs.Trace.Int nsteps) ]
  in
  let base = Mcperf.Costing.evaluate perm placement in
  let eval (t, down) =
    let d = Avail.Survive.degrade ~base perm placement ~down in
    {
      step = t;
      down_count = d.Avail.Survive.down_count;
      violation = d.Avail.Survive.violation;
      unavail_fraction = d.Avail.Survive.unavail_fraction;
      degraded_cost = d.Avail.Survive.degraded_cost;
    }
  in
  let tasks =
    Array.to_list (Array.mapi (fun t down -> (t, down)) timeline.Avail.Scenario.down)
  in
  (* Each step is a pure function of (perm, placement, down mask), and
     Parallel.map_values preserves order — replays are byte-identical at
     every [jobs]. *)
  let steps =
    Array.of_list
      (if jobs <= 1 then List.map eval tasks
       else Util.Parallel.map_values ~jobs ~f:eval tasks)
  in
  Obs.Metrics.incr ~by:nsteps (Lazy.force m_replay_steps);
  let n = float_of_int nsteps in
  let sum f = Array.fold_left (fun acc s -> acc +. f s) 0. steps in
  let worst_of f = Array.fold_left (fun acc s -> Float.max acc (f s)) 0. steps in
  let base_cost = base.Mcperf.Costing.total in
  let ratio s =
    if base_cost > 0. then s.degraded_cost /. base_cost
    else 1. +. s.degraded_cost
  in
  let r =
    {
      steps;
      base_cost;
      mean_violation = sum (fun s -> s.violation) /. n;
      worst_violation = worst_of (fun s -> s.violation);
      mean_unavail = sum (fun s -> s.unavail_fraction) /. n;
      unavail_steps =
        Array.fold_left
          (fun acc s -> if s.unavail_fraction > 0. then acc + 1 else acc)
          0 steps;
      mean_cost_ratio = sum ratio /. n;
      worst_cost_ratio = worst_of ratio;
    }
  in
  Obs.Trace.span_end sp
    ~attrs:
      [
        ("worst_violation", Obs.Trace.Float r.worst_violation);
        ("mean_cost_ratio", Obs.Trace.Float r.mean_cost_ratio);
        ("unavail_steps", Obs.Trace.Int r.unavail_steps);
      ];
  r
