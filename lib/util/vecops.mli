(** Small dense-vector helpers shared by the LP solvers.

    These are deliberately plain [float array] functions — no abstraction —
    because the solvers live in tight loops and the arrays are reused as
    scratch space. *)

val dot : float array -> float array -> float
(** Inner product. Requires equal lengths. *)

val dot2 : float array -> float array -> float array -> float * float
(** [dot2 x y z] returns [(dot x y, dot x z)], streaming [x] once. *)

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val axpby_into :
  float -> float array -> float -> float array -> float array -> unit
(** [axpby_into a x b y dst] writes [a*x + b*y] into [dst] in one pass.
    [dst] may alias [x] or [y]. *)

val scale : float -> float array -> unit
(** In-place multiply by a scalar. *)

val norm2 : float array -> float
(** Euclidean norm. *)

val norm_inf : float array -> float
(** Max absolute entry; [0.] for the empty vector. *)

val sub_into : float array -> float array -> float array -> unit
(** [sub_into x y dst] writes [x - y] into [dst]. *)

val clamp : float -> lo:float -> hi:float -> float
(** Clamp a scalar into an interval. *)

val clamp_into : float array -> lo:float array -> hi:float array -> unit
(** In-place box projection: [x.(i) <- clamp x.(i) lo.(i) hi.(i)]. *)

val step_clamp_into :
  float array ->
  float array ->
  float array ->
  lo:float array ->
  hi:float array ->
  float array ->
  unit
(** [step_clamp_into x g step ~lo ~hi dst] performs the clamped gradient
    update [dst.(i) <- clamp (x.(i) - step.(i) * g.(i))] in one pass —
    the projected (preconditioned) descent step of the first-order
    solvers. [dst] may alias [x]. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Absolute-plus-relative comparison used throughout the tests:
    [|a-b| <= eps * (1 + max |a| |b|)]. Default [eps = 1e-9]. *)

val sum : float array -> float
(** Sum of entries (Kahan-compensated). *)
