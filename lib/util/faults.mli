(** Deterministic fault injection for the sweep stack.

    Robustness claims are only testable if the failures are repeatable:
    the supervision layer in {!Parallel}, the solver fallback chain, and
    the checkpoint journal all need to be driven through their recovery
    paths on demand, in tests and from the CLI, without flaky timing
    races. This module decides — {e deterministically} — whether a given
    fault fires for a given cell, by hashing the cell's stable key
    together with the fault kind and the injection seed and feeding the
    hash through {!Prng}. The decision depends only on (spec, kind, key),
    never on scheduling, worker identity, or [--jobs], so an injected run
    exercises the same faults at any parallelism level and a recovered
    run can be compared byte-for-byte against an unfaulted one.

    Three fault kinds are supported:

    - {b crash}: the worker process calls [Unix._exit] mid-task, as if
      it had been SIGKILLed. Fires only inside a pool worker on a task's
      {e first} attempt ({!Parallel.task_attempt}[ () = 0]), so the
      supervisor's retry always succeeds and injected sweeps terminate.
    - {b stall}: the task sleeps [stall_s] seconds, long enough (by the
      caller's choice of pool [timeout_s]) to trip timeout supervision.
      Also first-attempt-only, for the same reason.
    - {b diverge}: the sweep pipeline poisons the PDHG solver's input
      (NaN in the patched rhs) on the cell's first solve attempt, forcing
      the numerical-health guards and the fallback chain to run. The
      decision is made here; the poisoning and its attempt-gating live in
      the pipeline.

    The ambient spec is installed per process ({!install}) and inherited
    by pool workers through [fork]; separate processes pick it up from
    the [REPLICA_FAULTS] environment variable ({!of_env}). *)

type spec = {
  seed : int;  (** injection seed; distinct seeds pick distinct fault sets *)
  crash_prob : float;  (** per-task probability of a worker crash *)
  crash_every : int;  (** crash tasks whose key-hash is [= 0 mod n]; 0 = off *)
  stall_prob : float;  (** per-task probability of an artificial stall *)
  stall_s : float;  (** stall duration in seconds (default 0.5) *)
  diverge_prob : float;  (** per-cell probability of solver-input poisoning *)
  drop_prob : float;
      (** per-task probability that the coordinator's dispatch frame is
          silently dropped (first attempt only; recovers via the task
          timeout) *)
  delay_prob : float;  (** per-task probability of delaying the dispatch *)
  delay_s : float;  (** dispatch delay in seconds (default 0.05) *)
  garble_prob : float;
      (** per-task probability that the dispatch frame is corrupted in
          flight (first attempt only; caught by the frame digest, the
          connection is torn down and the task retried) *)
  disconnect_prob : float;
      (** per-task probability that the remote worker drops the
          connection instead of replying (first attempt only) *)
  partition_prob : float;
      (** per-connection probability that a connect attempt is refused,
          as if the worker host were partitioned away *)
  ckill_after : int;
      (** kill the coordinator after its [n]-th checkpoint write this
          run (0 = off); the next run resumes from the journal *)
}

val none : spec
(** All faults disabled — the default ambient spec. *)

val is_none : spec -> bool

type error = Parse_error.t = { file : string; line : int; msg : string }
(** Structured parse failure, shared with the other text-format loaders
    ({!Parse_error}). [line] is always 0: fault specs are single-line
    strings, not files. *)

val parse_result : ?file:string -> string -> (spec, error) Stdlib.result
(** Parse a comma-separated [key=value] spec, e.g.
    ["seed=42,crash=0.2,diverge=0.1"] or ["crash_every=3,stall=0.05,stall_s=1"].
    Keys: [seed], [crash], [crash_every], [stall], [stall_s], [diverge],
    and the network kinds [drop], [delay], [delay_s], [garble],
    [disconnect], [partition], [ckill_after].
    Probabilities must lie in [\[0, 1\]]. The empty string parses to
    {!none}. [file] labels the error's [file] field (default
    ["<faults>"]; CLI and env callers pass their own source label). *)

val parse : string -> (spec, string) Stdlib.result
(** Legacy wrapper around {!parse_result}: the error rendered as the
    historical ["fault spec: ..."] message. *)

val to_string : spec -> string
(** Round-trips through {!parse}; [""] for {!none}. *)

val env_var : string
(** ["REPLICA_FAULTS"] — read by {!of_env}. *)

val of_env_result : unit -> (spec, error) Stdlib.result
(** Parse {!env_var} from the environment ({!none} when unset). The
    error's [file] field is ["$REPLICA_FAULTS"]. *)

val of_env : unit -> (spec, string) Stdlib.result
(** Legacy wrapper around {!of_env_result} with the historical string
    message. *)

val install : spec -> unit
(** Set the ambient spec for this process (and, through [fork], for any
    pool workers spawned afterwards). *)

val current : unit -> spec

val active : unit -> bool
(** [not (is_none (current ()))]. *)

val hash : seed:int -> kind:string -> string -> int
(** The FNV-1a hash behind {!decide}: a non-negative integer that is a
    pure function of ([seed], [kind], key). Exposed so other
    deterministic samplers (the availability scenario sampler) can
    derive stable per-key integers — outage durations, scenario
    memberships — with the same seeding discipline. *)

val decide : spec -> kind:string -> key:string -> prob:float -> bool
(** The pure core: a deterministic coin flip for ([spec.seed], [kind],
    [key]) with success probability [prob]. Same inputs, same answer, in
    any process. *)

val crash_requested : key:string -> bool
(** Whether the ambient spec asks for a crash on this key (combining
    [crash_prob] and [crash_every]); ignores execution context. *)

val stall_requested : key:string -> bool

val diverge_requested : key:string -> bool
(** Whether the ambient spec asks for solver-input poisoning on this
    cell. Callers must apply it on the first solve attempt only. *)

val crash_exit_code : int
(** Exit status used by injected crashes (distinguishable in waitpid). *)

val crash_point : key:string -> unit
(** Kill this process via [Unix._exit] if (a) the ambient spec requests
    a crash for [key], (b) we are inside a pool worker, and (c) this is
    the task's first attempt. No-op otherwise — in particular, never
    fires in the parent or on retries. *)

val stall_point : key:string -> unit
(** Sleep [stall_s] under the same worker/first-attempt gating. *)

(** {2 Network faults}

    Deterministic transport faults for the distributed sweep backend.
    Unlike the worker-process kinds above they are gated on the frame's
    [attempt] number {e explicitly} — the transport code sending a task
    knows which attempt it is dispatching — so a faulted first dispatch
    always recovers on the supervisor's retry and chaos runs terminate.
    All decisions use the same FNV scheme as {!decide}: a function of
    (seed, kind, key) only, identical in every process and at every
    [--jobs]/worker mix. *)

val drop_requested : key:string -> attempt:int -> bool
(** Drop the dispatch frame (the worker never sees the task; recovery
    relies on the pool's per-task timeout). First attempt only. *)

val delay_requested : key:string -> attempt:int -> bool
(** Delay the dispatch frame by [delay_s]. First attempt only. *)

val garble_requested : key:string -> attempt:int -> bool
(** Corrupt the dispatch frame in flight. The frame digest catches it on
    the receiving side, which tears the connection down rather than
    unmarshaling garbage. First attempt only. *)

val disconnect_requested : key:string -> attempt:int -> bool
(** The remote worker session drops the connection instead of replying.
    First attempt only. *)

val partition_requested : key:string -> bool
(** Refuse this connect attempt, as if the worker host were partitioned
    away. Keyed by worker address and connection ordinal, so a partition
    heals deterministically on a later reconnect. *)

val coordinator_kill_point : nth:int -> unit
(** Kill this process via [Unix._exit] once [nth] (the checkpoint count
    of the current run) reaches the ambient spec's [ckill_after]
    (0 = never). Fires only in the coordinator — never inside a pool
    worker — so it models the driving process dying mid-sweep with a
    complete journal prefix on disk. *)
