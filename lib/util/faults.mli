(** Deterministic fault injection for the sweep stack.

    Robustness claims are only testable if the failures are repeatable:
    the supervision layer in {!Parallel}, the solver fallback chain, and
    the checkpoint journal all need to be driven through their recovery
    paths on demand, in tests and from the CLI, without flaky timing
    races. This module decides — {e deterministically} — whether a given
    fault fires for a given cell, by hashing the cell's stable key
    together with the fault kind and the injection seed and feeding the
    hash through {!Prng}. The decision depends only on (spec, kind, key),
    never on scheduling, worker identity, or [--jobs], so an injected run
    exercises the same faults at any parallelism level and a recovered
    run can be compared byte-for-byte against an unfaulted one.

    Three fault kinds are supported:

    - {b crash}: the worker process calls [Unix._exit] mid-task, as if
      it had been SIGKILLed. Fires only inside a pool worker on a task's
      {e first} attempt ({!Parallel.task_attempt}[ () = 0]), so the
      supervisor's retry always succeeds and injected sweeps terminate.
    - {b stall}: the task sleeps [stall_s] seconds, long enough (by the
      caller's choice of pool [timeout_s]) to trip timeout supervision.
      Also first-attempt-only, for the same reason.
    - {b diverge}: the sweep pipeline poisons the PDHG solver's input
      (NaN in the patched rhs) on the cell's first solve attempt, forcing
      the numerical-health guards and the fallback chain to run. The
      decision is made here; the poisoning and its attempt-gating live in
      the pipeline.

    The ambient spec is installed per process ({!install}) and inherited
    by pool workers through [fork]; separate processes pick it up from
    the [REPLICA_FAULTS] environment variable ({!of_env}). *)

type spec = {
  seed : int;  (** injection seed; distinct seeds pick distinct fault sets *)
  crash_prob : float;  (** per-task probability of a worker crash *)
  crash_every : int;  (** crash tasks whose key-hash is [= 0 mod n]; 0 = off *)
  stall_prob : float;  (** per-task probability of an artificial stall *)
  stall_s : float;  (** stall duration in seconds (default 0.5) *)
  diverge_prob : float;  (** per-cell probability of solver-input poisoning *)
}

val none : spec
(** All faults disabled — the default ambient spec. *)

val is_none : spec -> bool

type error = Parse_error.t = { file : string; line : int; msg : string }
(** Structured parse failure, shared with the other text-format loaders
    ({!Parse_error}). [line] is always 0: fault specs are single-line
    strings, not files. *)

val parse_result : ?file:string -> string -> (spec, error) Stdlib.result
(** Parse a comma-separated [key=value] spec, e.g.
    ["seed=42,crash=0.2,diverge=0.1"] or ["crash_every=3,stall=0.05,stall_s=1"].
    Keys: [seed], [crash], [crash_every], [stall], [stall_s], [diverge].
    Probabilities must lie in [\[0, 1\]]. The empty string parses to
    {!none}. [file] labels the error's [file] field (default
    ["<faults>"]; CLI and env callers pass their own source label). *)

val parse : string -> (spec, string) Stdlib.result
(** Legacy wrapper around {!parse_result}: the error rendered as the
    historical ["fault spec: ..."] message. *)

val to_string : spec -> string
(** Round-trips through {!parse}; [""] for {!none}. *)

val env_var : string
(** ["REPLICA_FAULTS"] — read by {!of_env}. *)

val of_env_result : unit -> (spec, error) Stdlib.result
(** Parse {!env_var} from the environment ({!none} when unset). The
    error's [file] field is ["$REPLICA_FAULTS"]. *)

val of_env : unit -> (spec, string) Stdlib.result
(** Legacy wrapper around {!of_env_result} with the historical string
    message. *)

val install : spec -> unit
(** Set the ambient spec for this process (and, through [fork], for any
    pool workers spawned afterwards). *)

val current : unit -> spec

val active : unit -> bool
(** [not (is_none (current ()))]. *)

val hash : seed:int -> kind:string -> string -> int
(** The FNV-1a hash behind {!decide}: a non-negative integer that is a
    pure function of ([seed], [kind], key). Exposed so other
    deterministic samplers (the availability scenario sampler) can
    derive stable per-key integers — outage durations, scenario
    memberships — with the same seeding discipline. *)

val decide : spec -> kind:string -> key:string -> prob:float -> bool
(** The pure core: a deterministic coin flip for ([spec.seed], [kind],
    [key]) with success probability [prob]. Same inputs, same answer, in
    any process. *)

val crash_requested : key:string -> bool
(** Whether the ambient spec asks for a crash on this key (combining
    [crash_prob] and [crash_every]); ignores execution context. *)

val stall_requested : key:string -> bool

val diverge_requested : key:string -> bool
(** Whether the ambient spec asks for solver-input poisoning on this
    cell. Callers must apply it on the first solve attempt only. *)

val crash_exit_code : int
(** Exit status used by injected crashes (distinguishable in waitpid). *)

val crash_point : key:string -> unit
(** Kill this process via [Unix._exit] if (a) the ambient spec requests
    a crash for [key], (b) we are inside a pool worker, and (c) this is
    the task's first attempt. No-op otherwise — in particular, never
    fires in the parent or on retries. *)

val stall_point : key:string -> unit
(** Sleep [stall_s] under the same worker/first-attempt gating. *)
