(** Process-level parallel map for the sweep layers.

    The methodology's sweeps (heuristic class x goal point, bisection
    probes over resource parameters) are embarrassingly parallel but
    CPU-bound, so parallelism is process-level: [map] forks a pool of
    workers, streams task {e indices} to them over pipes (the task array
    itself is inherited through [fork], so only indices and results are
    [Marshal]-framed), and collects results {e in task order} regardless
    of completion order — callers observe exactly the sequential result
    list.

    Failure semantics:

    - a task that raises in a worker surfaces as {!Task_failed} in the
      parent (the worker itself survives and keeps serving tasks);
    - a worker that dies (segfault, [kill], [_exit]) is detected by EOF
      on its result pipe; its in-flight task is recomputed in the parent
      and the pool keeps going with the remaining workers;
    - a task that exceeds [timeout_s] kills its worker and raises
      {!Task_timeout};
    - when [fork] is unavailable (non-Unix), [jobs <= 1], or there are
      fewer than two tasks, [map] degrades to a plain sequential map
      ([timeout_s] is then ignored — there is nothing to preempt).

    Results must be marshallable (no closures, no custom blocks beyond
    the stdlib's); everything the sweep layers return — floats, arrays,
    records of those — qualifies. *)

type 'a result = {
  value : 'a;
  wall_s : float;  (** task wall-clock, measured inside the worker *)
}

exception Task_failed of { index : int; message : string }
(** Task [index] raised in a worker; [message] is the printed exception. *)

exception Task_timeout of { index : int; timeout_s : float }

val available_cores : unit -> int
(** Processor count from [/proc/cpuinfo] (fallback: [getconf
    _NPROCESSORS_ONLN]; 1 when neither is readable). *)

val default_jobs : unit -> int
(** [available_cores], floored at 1 — the [--jobs 0] auto value. *)

val fork_available : bool
(** Whether the process-pool path can run at all (Unix only). *)

val map :
  ?jobs:int -> ?timeout_s:float -> f:('a -> 'b) -> 'a list -> 'b result list
(** [map ~jobs ~f tasks] is [List.map f tasks] with per-task wall-clock
    timing, computed by up to [jobs] worker processes. [jobs] defaults to
    {!default_jobs}[ ()]. Result order always matches task order. *)

val map_values :
  ?jobs:int -> ?timeout_s:float -> f:('a -> 'b) -> 'a list -> 'b list
(** {!map} without the timing wrapper. *)
