(** Supervised process-level parallel map for the sweep layers.

    The methodology's sweeps (heuristic class x goal point, bisection
    probes over resource parameters) are embarrassingly parallel but
    CPU-bound, so parallelism is process-level: [map] forks a pool of
    workers, streams task {e indices} to them over pipes (the task array
    itself is inherited through [fork], so only indices and results are
    [Marshal]-framed), and collects results {e in task order} regardless
    of completion order — callers observe exactly the sequential result
    list.

    The pool is supervised — a long sweep survives partial failure:

    - a worker that dies (segfault, [kill], [_exit]) is detected by EOF
      on its result pipe and reaped via [waitpid]; a replacement worker
      is forked and the in-flight task is re-dispatched with exponential
      backoff. After {!max_task_attempts} worker attempts the task is
      computed inline in the parent, so every task still yields a result;
    - a task that raises in a worker is a {e structured} failure: the
      worker survives, every other task still runs to completion, and the
      failure is reported at the end — {!map} raises {!Task_failed} for
      the lowest failing index, {!map_results} returns it in place;
    - a task that exceeds [timeout_s] gets its worker killed and is
      retried on a fresh worker (transient stalls recover); when the
      attempt budget is spent, {!Task_timeout} is raised;
    - when [fork] fails repeatedly (bounded retries with backoff), the
      pool degrades gracefully: it runs narrower, and with no workers
      left the remaining tasks execute sequentially in the parent;
    - [Unix.select] and [waitpid] retry on [EINTR]; teardown polls with
      [WNOHANG] before escalating to [SIGKILL] and swallows [ECHILD], so
      no zombie workers survive the pool.

    {!last_pool_stats} reports the supervision counters of the most
    recent map on this process, so sweeps can surface how much recovery
    actually happened.

    Results must be marshallable (no closures, no custom blocks beyond
    the stdlib's); everything the sweep layers return — floats, arrays,
    records of those — qualifies.

    {b Observability.} When [Obs] is enabled, each task body runs under
    a per-task trace scope ([task:<index>]) with fresh logical counters
    on every execution path, and workers ship their drained trace /
    metrics buffers back on the result pipe; the parent absorbs a
    buffer only for the attempt it accepts. Supervision events
    (dispatch, deaths, respawns, backoff, timeouts) are traced only in
    wall-clock mode because they depend on scheduling; in logical mode
    the merged trace is byte-identical at every [jobs]. With [Obs]
    disabled (the default) the only addition to the pipe protocol is an
    empty payload string per response. *)

type 'a result = {
  value : 'a;
  wall_s : float;  (** task wall-clock, measured inside the worker *)
}

exception Task_failed of { index : int; message : string }
(** Task [index] raised in a worker; [message] is the printed exception. *)

exception Task_timeout of { index : int; timeout_s : float }

type task_error = {
  index : int;
  message : string;  (** printed exception from the last attempt *)
  attempts : int;  (** attempts consumed when the task was given up *)
}

type pool_stats = {
  worker_deaths : int;  (** workers that died while the pool was live *)
  respawns : int;  (** replacement workers forked *)
  task_retries : int;  (** in-flight tasks re-dispatched to a worker *)
  inline_recoveries : int;  (** tasks computed in the parent as last resort *)
  timeouts : int;  (** deadline expiries (the task may have recovered) *)
  fork_failures : int;  (** failed [fork]/[pipe] attempts *)
  degraded : bool;  (** the pool fell back to sequential execution *)
}

val zero_stats : pool_stats

val last_pool_stats : unit -> pool_stats
(** Counters of the most recent {!map}/{!map_results} call in this
    process (all-zero after a sequential-path run). *)

val max_task_attempts : int
(** Worker attempts per task before the parent computes it inline (or,
    for timeouts, raises). *)

val backoff_delay : ?base_s:float -> ?cap_s:float -> int -> float
(** [backoff_delay attempt] is the supervisor's sleep before retry number
    [attempt] (0-based): [base_s * 2^attempt], capped at [cap_s].
    Non-negative, monotone in [attempt], and never above [cap_s].
    Defaults: [base_s = 0.001], [cap_s = 0.25]. *)

val in_worker : unit -> bool
(** True while executing a task body inside a pool worker process. *)

val task_attempt : unit -> int
(** The current task's 0-based attempt number inside a worker (0 in the
    parent). Fault injectors use it to fail only first attempts. *)

val task_deadline : unit -> float
(** Absolute [Unix.gettimeofday] deadline of the currently running task,
    or [infinity] when it has no budget. Installed around every task body
    (worker, sequential path, inline recovery) from the [budget_of]
    callback; budget-aware bodies poll it to degrade to a looser-but-valid
    answer instead of overrunning. *)

val task_expired : unit -> bool
(** [task_deadline () < infinity] and the clock has passed it. Never
    reads the clock for unbudgeted tasks, so budget-free runs stay
    byte-identical. *)

val available_cores : unit -> int
(** Processor count from [/proc/cpuinfo] (fallback: [getconf
    _NPROCESSORS_ONLN]; 1 when neither is readable). *)

val default_jobs : unit -> int
(** [available_cores], floored at 1 — the [--jobs 0] auto value. *)

val fork_available : bool
(** Whether the process-pool path can run at all (Unix only). *)

val map :
  ?jobs:int ->
  ?timeout_s:float ->
  ?budget_of:(int -> float) ->
  ?on_result:(int -> 'b result -> unit) ->
  f:('a -> 'b) ->
  'a list ->
  'b result list
(** [map ~jobs ~f tasks] is [List.map f tasks] with per-task wall-clock
    timing, computed by up to [jobs] worker processes. [jobs] defaults to
    {!default_jobs}[ ()]. Result order always matches task order.
    [on_result] is invoked in the {e parent}, in completion order, as
    each task finishes (checkpoint journals hang off this). If any task
    failed, {!Task_failed} is raised for the lowest failing index after
    the whole pool has drained.

    [budget_of index] is evaluated in the parent at each dispatch of task
    [index] (including retries) and travels with the request; the task
    body observes it via {!task_deadline}/{!task_expired}. [infinity]
    (and any non-finite value) means unbudgeted. Unlike [timeout_s] —
    which is enforced by killing the worker — a budget is advisory: only
    bodies that poll it degrade. *)

val map_results :
  ?jobs:int ->
  ?timeout_s:float ->
  ?budget_of:(int -> float) ->
  ?on_result:(int -> 'b result -> unit) ->
  f:('a -> 'b) ->
  'a list ->
  ('b result, task_error) Stdlib.result list
(** Like {!map} but task failures are returned in place instead of
    raised, so one poisoned cell cannot void a sweep's other results.
    {!Task_timeout} still raises. *)

val map_values :
  ?jobs:int ->
  ?timeout_s:float ->
  ?budget_of:(int -> float) ->
  ?on_result:(int -> 'b result -> unit) ->
  f:('a -> 'b) ->
  'a list ->
  'b list
(** {!map} without the timing wrapper. *)
