(** Supervised process-level parallel map for the sweep layers.

    The methodology's sweeps (heuristic class x goal point, bisection
    probes over resource parameters) are embarrassingly parallel but
    CPU-bound, so parallelism is process-level: [map] forks a pool of
    workers, streams task {e indices} to them over pipes (the task array
    itself is inherited through [fork], so only indices and results are
    [Marshal]-framed), and collects results {e in task order} regardless
    of completion order — callers observe exactly the sequential result
    list.

    The pool is supervised — a long sweep survives partial failure:

    - a worker that dies (segfault, [kill], [_exit]) is detected by EOF
      on its result pipe and reaped via [waitpid]; a replacement worker
      is forked and the in-flight task is re-dispatched with exponential
      backoff. After {!max_task_attempts} worker attempts the task is
      computed inline in the parent, so every task still yields a result;
    - a task that raises in a worker is a {e structured} failure: the
      worker survives, every other task still runs to completion, and the
      failure is reported at the end — {!map} raises {!Task_failed} for
      the lowest failing index, {!map_results} returns it in place;
    - a task that exceeds [timeout_s] gets its worker killed and is
      retried on a fresh worker (transient stalls recover); when the
      attempt budget is spent, {!Task_timeout} is raised;
    - when [fork] fails repeatedly (bounded retries with backoff), the
      pool degrades gracefully: it runs narrower, and with no workers
      left the remaining tasks execute sequentially in the parent;
    - [Unix.select] and [waitpid] retry on [EINTR]; teardown polls with
      [WNOHANG] before escalating to [SIGKILL] and swallows [ECHILD], so
      no zombie workers survive the pool.

    {!last_pool_stats} reports the supervision counters of the most
    recent map on this process, so sweeps can surface how much recovery
    actually happened.

    Results must be marshallable (no closures, no custom blocks beyond
    the stdlib's); everything the sweep layers return — floats, arrays,
    records of those — qualifies.

    {b Observability.} When [Obs] is enabled, each task body runs under
    a per-task trace scope ([task:<index>]) with fresh logical counters
    on every execution path, and workers ship their drained trace /
    metrics buffers back on the result pipe; the parent absorbs a
    buffer only for the attempt it accepts. Supervision events
    (dispatch, deaths, respawns, backoff, timeouts) are traced only in
    wall-clock mode because they depend on scheduling; in logical mode
    the merged trace is byte-identical at every [jobs]. With [Obs]
    disabled (the default) the only addition to the pipe protocol is an
    empty payload string per response. *)

type 'a result = {
  value : 'a;
  wall_s : float;  (** task wall-clock, measured inside the worker *)
}

exception Task_failed of { index : int; message : string }
(** Task [index] raised in a worker; [message] is the printed exception. *)

exception Task_timeout of { index : int; timeout_s : float }

type task_error = {
  index : int;
  message : string;  (** printed exception from the last attempt *)
  attempts : int;  (** attempts consumed when the task was given up *)
}

type pool_stats = {
  worker_deaths : int;  (** local fork workers that died while the pool was live *)
  respawns : int;  (** replacement workers forked *)
  task_retries : int;  (** in-flight tasks re-dispatched to a worker *)
  inline_recoveries : int;  (** tasks computed in the parent as last resort *)
  timeouts : int;  (** deadline expiries (the task may have recovered) *)
  fork_failures : int;  (** failed [fork]/[pipe] attempts *)
  degraded : bool;  (** the pool fell back to sequential execution *)
  remote_workers : int;  (** remote endpoints configured for this map *)
  remote_deaths : int;  (** remote endpoints that died mid-pool *)
  reconnects : int;  (** successful remote re-acquisitions after a death *)
  blacklisted : int;  (** remote endpoints retired after repeated failures *)
}

val zero_stats : pool_stats

val last_pool_stats : unit -> pool_stats
(** Counters of the most recent {!map}/{!map_results} call in this
    process (all-zero after a sequential-path run). *)

val max_task_attempts : int
(** Worker attempts per task before the parent computes it inline (or,
    for timeouts, raises). *)

val backoff_delay : ?base_s:float -> ?cap_s:float -> int -> float
(** [backoff_delay attempt] is the supervisor's sleep before retry number
    [attempt] (0-based): [base_s * 2^attempt], capped at [cap_s].
    Non-negative, monotone in [attempt], and never above [cap_s].
    Defaults: [base_s = 0.001], [cap_s = 0.25]. *)

val in_worker : unit -> bool
(** True while executing a task body inside a pool worker process. *)

val task_attempt : unit -> int
(** The current task's 0-based attempt number inside a worker (0 in the
    parent). Fault injectors use it to fail only first attempts. *)

val task_deadline : unit -> float
(** Absolute [Unix.gettimeofday] deadline of the currently running task,
    or [infinity] when it has no budget. Installed around every task body
    (worker, sequential path, inline recovery) from the [budget_of]
    callback; budget-aware bodies poll it to degrade to a looser-but-valid
    answer instead of overrunning. *)

val task_expired : unit -> bool
(** [task_deadline () < infinity] and the clock has passed it. Never
    reads the clock for unbudgeted tasks, so budget-free runs stay
    byte-identical. *)

val available_cores : unit -> int
(** Processor count from [/proc/cpuinfo] (fallback: [getconf
    _NPROCESSORS_ONLN]; 1 when neither is readable). *)

val default_jobs : unit -> int
(** [available_cores], floored at 1 — the [--jobs 0] auto value. *)

val fork_available : bool
(** Whether the process-pool path can run at all (Unix only). *)

(** {2 Remote endpoints}

    The pool is generalized over its transport: besides forked local
    workers it can feed {e remote endpoints} — live connections to worker
    processes elsewhere, created by factories the caller passes via
    [?remote] (the TCP implementation lives in [Dist]). Each factory owns
    one pool slot; the pool asks it for a connection at startup and after
    every death, so reconnect-backoff and blacklist policy live in the
    factory while requeue/retry/inline-recovery supervision stays here.
    A dead endpoint (exception out of send/recv/ping) has its in-flight
    task requeued exactly like a dead local worker; when every endpoint
    and worker is gone the pool degrades to sequential execution in the
    parent, so a sweep always completes. *)

type 'b response = int * ('b, string) Stdlib.result * float * string
(** One task response: (index, result-or-printed-exception, task
    wall-clock, drained observability payload — [""] when obs is off). *)

type 'b endpoint = {
  ep_descr : string;  (** for supervision traces, e.g. ["dist:host:9070"] *)
  ep_fd : Unix.file_descr;
      (** select handle; readable must mean a full response is coming —
          endpoints exchange exactly one response per dispatched task and
          keep no buffered partial frames between exchanges *)
  ep_fds : Unix.file_descr list;
      (** every parent-side fd of the endpoint; freshly forked local
          workers close them so endpoint death surfaces as EOF *)
  ep_send : int * int * float -> unit;
      (** dispatch [(index, attempt, budget_s)]; raising marks the
          endpoint dead and requeues the task at the same attempt *)
  ep_recv : unit -> 'b response;
      (** read the one pending response; raising marks the endpoint dead *)
  ep_ping : unit -> unit;
      (** synchronous liveness round trip, called only while no task is
          in flight on this endpoint; no-op for local forks *)
  ep_close : kill:bool -> unit;
      (** release the endpoint; [kill] skips graceful shutdown *)
}

type 'b remote_acquire =
  | Remote_ok of 'b endpoint
  | Remote_unavailable
      (** connect failed after the factory's bounded backoff retries;
          the pool retries the factory at a later dispatch round *)
  | Remote_blacklisted
      (** the factory gave up on this endpoint for good; its slot is
          retired and never refilled *)

type 'b remote_factory = unit -> 'b remote_acquire

val heartbeat_idle_s : float
(** A remote endpoint idle longer than this is pinged (one synchronous
    round trip) before the next task is committed to it, so a silently
    half-open connection costs a reconnect, not a task timeout. *)

val current_phase : unit -> int
(** The pool phase counter (bumped once per {!map} call, reset by
    [Obs.Config.install]). Remote sessions receive the coordinator's
    phase in their handshake so merged traces agree on task scopes. *)

val set_phase : int -> unit
(** Install a phase received from a coordinator (remote worker sessions
    only; call {e after} installing the obs config, which resets it). *)

val run_task :
  f:(unit -> 'b) ->
  index:int ->
  attempt:int ->
  budget_s:float ->
  ('b, string) Stdlib.result * float * string
(** Execute one task body under the full worker discipline — ambient
    {!task_attempt} context, {!task_deadline}, per-task trace scope,
    clamped wall clock, drained obs payload — exactly as the forked
    serve loop does. Remote worker servers use it so a task behaves
    identically whichever transport delivered it. *)

val map :
  ?jobs:int ->
  ?timeout_s:float ->
  ?budget_of:(int -> float) ->
  ?remote:'b remote_factory list ->
  ?on_result:(int -> 'b result -> unit) ->
  f:('a -> 'b) ->
  'a list ->
  'b result list
(** [map ~jobs ~f tasks] is [List.map f tasks] with per-task wall-clock
    timing, computed by up to [jobs] worker processes. [jobs] defaults to
    {!default_jobs}[ ()]. Result order always matches task order.
    [on_result] is invoked in the {e parent}, in completion order, as
    each task finishes (checkpoint journals hang off this). If any task
    failed, {!Task_failed} is raised for the lowest failing index after
    the whole pool has drained.

    [budget_of index] is evaluated in the parent at each dispatch of task
    [index] (including retries) and travels with the request; the task
    body observes it via {!task_deadline}/{!task_expired}. [infinity]
    (and any non-finite value) means unbudgeted. Unlike [timeout_s] —
    which is enforced by killing the worker — a budget is advisory: only
    bodies that poll it degrade.

    [remote] adds one pool slot per endpoint factory. With [remote]
    non-empty the pool always runs (even at [jobs <= 1], which then
    means {e no local fork workers} — coordinator plus remotes only).
    Pass [timeout_s] whenever remote endpoints are configured: a dropped
    dispatch frame produces no response and only the task timeout can
    reclaim it. *)

val map_results :
  ?jobs:int ->
  ?timeout_s:float ->
  ?budget_of:(int -> float) ->
  ?remote:'b remote_factory list ->
  ?on_result:(int -> 'b result -> unit) ->
  f:('a -> 'b) ->
  'a list ->
  ('b result, task_error) Stdlib.result list
(** Like {!map} but task failures are returned in place instead of
    raised, so one poisoned cell cannot void a sweep's other results.
    {!Task_timeout} still raises. *)

val map_values :
  ?jobs:int ->
  ?timeout_s:float ->
  ?budget_of:(int -> float) ->
  ?remote:'b remote_factory list ->
  ?on_result:(int -> 'b result -> unit) ->
  f:('a -> 'b) ->
  'a list ->
  'b list
(** {!map} without the timing wrapper. *)
