let line_end s pos =
  let len = String.length s in
  if pos >= len then len
  else match String.index_from_opt s pos '\n' with Some i -> i | None -> len

(* The exact character set of [String.trim]. *)
let is_space = function
  | ' ' | '\012' | '\n' | '\r' | '\t' -> true
  | _ -> false

let trim_bounds s ~lo ~hi =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi && is_space s.[!lo] do
    incr lo
  done;
  while !hi > !lo && is_space s.[!hi - 1] do
    decr hi
  done;
  (!lo, !hi)

let is_blank s ~lo ~hi =
  let lo, hi = trim_bounds s ~lo ~hi in
  hi <= lo

let sub_trimmed s ~lo ~hi =
  let lo, hi = trim_bounds s ~lo ~hi in
  String.sub s lo (hi - lo)

let int_field s ~lo ~hi =
  let lo, hi = trim_bounds s ~lo ~hi in
  if hi <= lo then None
  else begin
    let neg = s.[lo] = '-' in
    let d0 = if neg then lo + 1 else lo in
    let rec digits i =
      i >= hi || (s.[i] >= '0' && s.[i] <= '9' && digits (i + 1))
    in
    let ndigits = hi - d0 in
    (* 18 decimal digits always fit in OCaml's 63-bit int; longer runs
       (and any non-decimal spelling) go through the stdlib so overflow
       and grammar edge cases behave exactly as before. *)
    if ndigits >= 1 && ndigits <= 18 && digits d0 then begin
      let v = ref 0 in
      for i = d0 to hi - 1 do
        v := (!v * 10) + (Char.code s.[i] - Char.code '0')
      done;
      Some (if neg then - !v else !v)
    end
    else int_of_string_opt (String.sub s lo (hi - lo))
  end

let float_field s ~lo ~hi =
  let lo, hi = trim_bounds s ~lo ~hi in
  if hi <= lo then None else float_of_string_opt (String.sub s lo (hi - lo))
