(** Structured parse failure shared by every text-format loader.

    A truncated, corrupt or poisoned input file is a reportable
    condition, not a crash: loaders validate at the boundary (including
    non-finite numeric fields) and return this record instead of
    raising. Format-specific IO modules re-export the record
    ([type error = Util.Parse_error.t = {...}]) so callers can match on
    the fields without an extra open while the type stays shared across
    formats. *)

type t = {
  file : string;  (** path, or a ["<format>"] label when parsed from a string *)
  line : int;  (** 1-based line of the offending record; 0 = whole file *)
  msg : string;
}

val pp : Format.formatter -> t -> unit
(** [file:line: msg], omitting the line when it is 0. *)

val to_string : t -> string
