type 'a result = { value : 'a; wall_s : float }

exception Task_failed of { index : int; message : string }
exception Task_timeout of { index : int; timeout_s : float }

let fork_available = Sys.unix

let available_cores () =
  let from_cpuinfo () =
    let ic = open_in "/proc/cpuinfo" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let count = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if
               String.length line >= 9
               && String.sub line 0 9 = "processor"
             then incr count
           done
         with End_of_file -> ());
        !count)
  in
  let from_getconf () =
    let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
    Fun.protect
      ~finally:(fun () -> ignore (Unix.close_process_in ic))
      (fun () -> int_of_string (String.trim (input_line ic)))
  in
  let attempt f = try f () with _ -> 0 in
  let n = attempt from_cpuinfo in
  let n = if n > 0 then n else attempt from_getconf in
  max 1 n

let default_jobs () = available_cores ()

(* --- sequential fallback ------------------------------------------------ *)

let sequential ~f tasks =
  List.map
    (fun task ->
      let t0 = Unix.gettimeofday () in
      let value = f task in
      { value; wall_s = Unix.gettimeofday () -. t0 })
    tasks

(* --- worker pool --------------------------------------------------------- *)

type worker = {
  pid : int;
  req_fd : Unix.file_descr;  (** parent's write end, also behind [req_oc] *)
  req_oc : out_channel;
  resp_fd : Unix.file_descr;
  resp_ic : in_channel;
  mutable task : int option;  (** index in flight *)
  mutable deadline : float;
  mutable alive : bool;
}

(* One response per dispatched request, so the parent's buffered [resp_ic]
   is empty whenever it selects on [resp_fd]; readability of the raw fd is
   therefore an accurate "a full response is coming" signal. *)
type 'b response = int * ('b, string) Stdlib.result * float

let spawn ~inherited ~tasks ~f =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* Child: drop every parent-side fd of earlier workers so that a
       worker crash shows up as EOF in the parent (no stray write-end
       copies keep the pipe open), then serve indices until EOF. *)
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) inherited;
    Unix.close req_w;
    Unix.close resp_r;
    let ic = Unix.in_channel_of_descr req_r in
    let oc = Unix.out_channel_of_descr resp_w in
    let rec serve () =
      match (Marshal.from_channel ic : int) with
      | exception (End_of_file | Failure _) -> ()
      | index ->
        let t0 = Unix.gettimeofday () in
        let res =
          try Ok (f tasks.(index))
          with e -> Error (Printexc.to_string e)
        in
        let wall = Unix.gettimeofday () -. t0 in
        (Marshal.to_channel oc (index, res, wall : _ response) [];
         flush oc);
        serve ()
    in
    (try serve () with _ -> ());
    (* [Unix._exit]: skip at_exit/flushing so the child cannot replay the
       parent's buffered stdout. *)
    (try flush oc with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    {
      pid;
      req_fd = req_w;
      req_oc = Unix.out_channel_of_descr req_w;
      resp_fd = resp_r;
      resp_ic = Unix.in_channel_of_descr resp_r;
      task = None;
      deadline = infinity;
      alive = true;
    }

let reap w ~kill =
  if w.alive then begin
    w.alive <- false;
    if kill then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try close_out_noerr w.req_oc with _ -> ());
    (try close_in_noerr w.resp_ic with _ -> ());
    (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
  end

let run_pool ~jobs ~timeout_s ~f tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  let completed = ref 0 in
  let next = ref 0 in
  let run_inline index =
    (* Crash fallback and end-of-pool path: compute in the parent. *)
    let t0 = Unix.gettimeofday () in
    let value = f tasks.(index) in
    results.(index) <- Some { value; wall_s = Unix.gettimeofday () -. t0 };
    incr completed
  in
  let inherited = ref [] in
  let workers =
    Array.init (min jobs n) (fun _ ->
        let w = spawn ~inherited:!inherited ~tasks ~f in
        inherited := w.req_fd :: w.resp_fd :: !inherited;
        w)
  in
  let cleanup ~kill = Array.iter (fun w -> reap w ~kill) workers in
  let dispatch w =
    if w.alive && w.task = None && !next < n then begin
      let index = !next in
      match
        Marshal.to_channel w.req_oc (index : int) [];
        flush w.req_oc
      with
      | () ->
        incr next;
        w.task <- Some index;
        w.deadline <-
          (match timeout_s with
          | Some t -> Unix.gettimeofday () +. t
          | None -> infinity)
      | exception Sys_error _ ->
        (* The worker died before we could feed it; it never received the
           task, so just retire it. *)
        reap w ~kill:false
    end
  in
  let on_crash w =
    let pending = w.task in
    w.task <- None;
    reap w ~kill:false;
    match pending with Some index -> run_inline index | None -> ()
  in
  let on_response w =
    match (Marshal.from_channel w.resp_ic : _ response) with
    | exception (End_of_file | Failure _) -> on_crash w
    | index, res, wall ->
      w.task <- None;
      w.deadline <- infinity;
      (match res with
      | Ok value ->
        results.(index) <- Some { value; wall_s = wall };
        incr completed
      | Error message ->
        cleanup ~kill:true;
        raise (Task_failed { index; message }))
  in
  let finally_cleanup body =
    match body () with
    | () -> cleanup ~kill:false
    | exception e ->
      cleanup ~kill:true;
      raise e
  in
  (* A dead worker turns the next dispatch into EPIPE; take the error, not
     the signal. *)
  let prev_sigpipe =
    if Sys.os_type = "Unix" then
      Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    else None
  in
  Fun.protect
    ~finally:(fun () ->
      match prev_sigpipe with
      | Some b -> Sys.set_signal Sys.sigpipe b
      | None -> ())
    (fun () ->
      finally_cleanup (fun () ->
          while !completed < n do
            Array.iter dispatch workers;
            let in_flight =
              Array.to_list workers
              |> List.filter (fun w -> w.alive && w.task <> None)
            in
            if in_flight = [] then
              (* Every worker is gone: drain the rest sequentially. *)
              while !completed < n do
                run_inline !next;
                incr next
              done
            else begin
              let now = Unix.gettimeofday () in
              let horizon =
                List.fold_left
                  (fun acc w -> Float.min acc w.deadline)
                  infinity in_flight
              in
              let select_timeout =
                if horizon = infinity then -1. else Float.max 0. (horizon -. now)
              in
              let readable, _, _ =
                Unix.select (List.map (fun w -> w.resp_fd) in_flight) [] []
                  select_timeout
              in
              if readable = [] then begin
                let now = Unix.gettimeofday () in
                List.iter
                  (fun w ->
                    if w.deadline <= now then begin
                      let index = Option.value w.task ~default:(-1) in
                      reap w ~kill:true;
                      cleanup ~kill:true;
                      raise
                        (Task_timeout
                           {
                             index;
                             timeout_s = Option.value timeout_s ~default:0.;
                           })
                    end)
                  in_flight
              end
              else
                List.iter
                  (fun w -> if List.mem w.resp_fd readable then on_response w)
                  in_flight
            end
          done));
  Array.map Option.get results

let map ?jobs ?timeout_s ~f tasks =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let arr = Array.of_list tasks in
  if (not fork_available) || jobs <= 1 || Array.length arr <= 1 then
    sequential ~f tasks
  else Array.to_list (run_pool ~jobs ~timeout_s ~f arr)

let map_values ?jobs ?timeout_s ~f tasks =
  List.map (fun r -> r.value) (map ?jobs ?timeout_s ~f tasks)
