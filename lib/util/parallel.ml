type 'a result = { value : 'a; wall_s : float }

exception Task_failed of { index : int; message : string }
exception Task_timeout of { index : int; timeout_s : float }

type task_error = { index : int; message : string; attempts : int }

type pool_stats = {
  worker_deaths : int;
  respawns : int;
  task_retries : int;
  inline_recoveries : int;
  timeouts : int;
  fork_failures : int;
  degraded : bool;
  remote_workers : int;
  remote_deaths : int;
  reconnects : int;
  blacklisted : int;
}

let zero_stats =
  {
    worker_deaths = 0;
    respawns = 0;
    task_retries = 0;
    inline_recoveries = 0;
    timeouts = 0;
    fork_failures = 0;
    degraded = false;
    remote_workers = 0;
    remote_deaths = 0;
    reconnects = 0;
    blacklisted = 0;
  }

let stats_ref = ref zero_stats

let last_pool_stats () = !stats_ref

let fork_available = Sys.unix

(* Ambient worker context, readable from inside a task. [worker_ctx] is
   [Some attempt] while a worker process executes a task body; the parent
   (sequential path, inline recovery) always reads [None]/0. Fault
   injectors use it to crash only inside a disposable worker and only on
   a task's first attempt, so recovery terminates. *)
let worker_ctx : int option ref = ref None

let in_worker () = !worker_ctx <> None

let task_attempt () = match !worker_ctx with Some a -> a | None -> 0

(* Ambient per-task wall-clock deadline (an absolute [Unix.gettimeofday]
   value; [infinity] = unbudgeted), installed around each task body on
   every execution path — worker serve loop, sequential fallback, inline
   recovery. Budget-aware task bodies (anytime LP solves, bisection
   searches) poll it to degrade to a valid-but-looser answer instead of
   overrunning a sweep deadline. Budgets travel with the dispatch message
   because workers fork before the budgets are known. *)
let task_deadline_ref = ref infinity

let task_deadline () = !task_deadline_ref

let task_expired () =
  let d = !task_deadline_ref in
  d < infinity && Unix.gettimeofday () >= d

let with_task_deadline budget body =
  let deadline =
    if Float.is_finite budget then Unix.gettimeofday () +. Float.max 0. budget
    else infinity
  in
  task_deadline_ref := deadline;
  Fun.protect ~finally:(fun () -> task_deadline_ref := infinity) body

(* --- observability ------------------------------------------------------- *)

(* Task bodies run under a per-task trace scope ("task:<phase>.<index>")
   with fresh logical counters, on every execution path — worker serve
   loop, sequential fallback, inline recovery. A task's events are
   therefore identical whichever process ran it, which is what lets a
   --jobs 4 trace merge byte-identically with a --jobs 1 trace.

   The phase number distinguishes [run] invocations: a program that maps
   twice (say a bound sweep, then a deployment search) reuses task
   indices, and in a forked pool the second phase's workers restart each
   scope's counters from zero — without the namespace the two phases
   would collide on (scope, seq) keys, which sequential execution (where
   counters resume across phases) would merge differently. The counter
   bumps in the parent before workers fork, so every process agrees on
   it, and it resets on [Obs.Config.install] so identical traced runs
   stay identical. *)
let phase = ref 0
let () = Obs.Config.on_install (fun () -> phase := 0)

(* Remote worker sessions must agree with the coordinator on the phase
   (their task scopes would otherwise collide or diverge in the merged
   trace), so the coordinator ships its phase in the session handshake
   and the session installs it here — after installing the obs config,
   which resets the counter. *)
let current_phase () = !phase
let set_phase p = phase := p

let with_task_obs index ~attempt body =
  if not (Obs.Config.tracing ()) then body ()
  else begin
    let prev = Obs.Trace.scope () in
    Obs.Trace.set_scope (Printf.sprintf "task:%d.%d" !phase index);
    let sp =
      Obs.Trace.span_begin ~attrs:[ ("attempt", Obs.Trace.Int attempt) ] "task"
    in
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.span_end sp;
        Obs.Trace.set_scope prev)
      body
  end

(* Supervision events (dispatch, deaths, respawns, backoff) depend on
   worker scheduling, so they are only traced in wall-clock mode — in
   logical mode they would break the any-jobs byte-identity contract. *)
let pool_event name attrs =
  if Obs.Config.tracing () && Obs.Config.wall_clock () then begin
    let prev = Obs.Trace.scope () in
    Obs.Trace.set_scope "pool";
    Obs.Trace.event ~attrs name;
    Obs.Trace.set_scope prev
  end

let m_dispatched = lazy (Obs.Metrics.counter "pool.tasks_dispatched")
let m_deaths = lazy (Obs.Metrics.counter "pool.worker_deaths")
let m_respawns = lazy (Obs.Metrics.counter "pool.respawns")
let m_retries = lazy (Obs.Metrics.counter "pool.task_retries")
let m_timeouts = lazy (Obs.Metrics.counter "pool.timeouts")
let m_inline = lazy (Obs.Metrics.counter "pool.inline_recoveries")
let m_backoff = lazy (Obs.Metrics.counter "pool.backoff_sleeps")
let h_task_wall = lazy (Obs.Metrics.histogram "pool.task_wall_s")

let observe_task_wall wall =
  (* Time-based, hence only meaningful (and only deterministic to skip)
     in wall-clock mode; logical-mode metric snapshots stay identical at
     every --jobs. *)
  if Obs.Config.wall_clock () then
    Obs.Metrics.observe (Lazy.force h_task_wall) wall

(* --- supervision policy -------------------------------------------------- *)

let max_task_attempts = 3

let backoff_delay ?(base_s = 0.001) ?(cap_s = 0.25) attempt =
  if attempt <= 0 then Float.min base_s cap_s
  else Float.min cap_s (base_s *. (2. ** float_of_int attempt))

let available_cores () =
  let from_cpuinfo () =
    let ic = open_in "/proc/cpuinfo" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let count = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if
               String.length line >= 9
               && String.sub line 0 9 = "processor"
             then incr count
           done
         with End_of_file -> ());
        !count)
  in
  let from_getconf () =
    let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
    Fun.protect
      ~finally:(fun () -> ignore (Unix.close_process_in ic))
      (fun () -> int_of_string (String.trim (input_line ic)))
  in
  let attempt f = try f () with _ -> 0 in
  let n = attempt from_cpuinfo in
  let n = if n > 0 then n else attempt from_getconf in
  max 1 n

let default_jobs () = available_cores ()

(* --- sequential fallback ------------------------------------------------ *)

let sequential ?budget_of ?on_result ~f tasks =
  List.mapi
    (fun index task ->
      let budget = match budget_of with Some g -> g index | None -> infinity in
      let t0 = Unix.gettimeofday () in
      match
        with_task_deadline budget (fun () ->
            with_task_obs index ~attempt:0 (fun () -> f task))
      with
      | value ->
        (* wall_s clamped: a backwards NTP step between the two clock
           reads must not surface as a negative duration. *)
        let r = { value; wall_s = Float.max 0. (Unix.gettimeofday () -. t0) } in
        observe_task_wall r.wall_s;
        (match on_result with Some g -> g index r | None -> ());
        Ok r
      | exception e ->
        Error { index; message = Printexc.to_string e; attempts = 1 })
    tasks

(* --- worker pool --------------------------------------------------------- *)

type worker = {
  pid : int;
  req_fd : Unix.file_descr;  (** parent's write end, also behind [req_oc] *)
  req_oc : out_channel;
  resp_fd : Unix.file_descr;
  resp_ic : in_channel;
  mutable alive : bool;
}

(* One response per dispatched request, so the parent's buffered [resp_ic]
   is empty whenever it selects on [resp_fd]; readability of the raw fd is
   therefore an accurate "a full response is coming" signal. The fourth
   element is the worker's drained observability buffer (trace events +
   metric deltas, Marshal-framed by [Obs.Sink.payload]); it is [""] — and
   costs one length word on the pipe — whenever observability is off. *)
type 'b response = int * ('b, string) Stdlib.result * float * string

(* One task execution under the full worker discipline — ambient attempt
   context, per-task deadline, per-task trace scope, wall clamp, drained
   obs payload. Shared by the forked serve loop below and by remote
   worker sessions (lib/dist), so a task behaves identically whichever
   transport delivered it. *)
let run_task ~f ~index ~attempt ~budget_s =
  let t0 = Unix.gettimeofday () in
  worker_ctx := Some attempt;
  let res =
    try Ok (with_task_deadline budget_s (fun () -> with_task_obs index ~attempt f))
    with e -> Error (Printexc.to_string e)
  in
  worker_ctx := None;
  let wall = Float.max 0. (Unix.gettimeofday () -. t0) in
  let payload = Obs.Sink.payload () in
  (res, wall, payload)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let spawn ~inherited ~tasks ~f =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w =
    try Unix.pipe ()
    with e ->
      close_noerr req_r;
      close_noerr req_w;
      raise e
  in
  match Unix.fork () with
  | exception e ->
    List.iter close_noerr [ req_r; req_w; resp_r; resp_w ];
    raise e
  | 0 ->
    (* Child: drop every parent-side fd of the other live workers so that
       a worker crash shows up as EOF in the parent (no stray write-end
       copies keep the pipe open), then serve (index, attempt) requests
       until EOF. *)
    List.iter close_noerr inherited;
    Unix.close req_w;
    Unix.close resp_r;
    (* The fork copied the parent's accumulated trace buffer and metric
       registry into this child. Those events belong to the parent — it
       still has them, and shipping them back would duplicate them in
       the merged trace — so discard the inherited state; payloads must
       carry only what this worker records itself. *)
    ignore (Obs.Sink.payload ());
    let ic = Unix.in_channel_of_descr req_r in
    let oc = Unix.out_channel_of_descr resp_w in
    let rec serve () =
      match (Marshal.from_channel ic : int * int * float) with
      | exception (End_of_file | Failure _) -> ()
      | index, attempt, budget_s ->
        let res, wall, payload =
          run_task ~f:(fun () -> f tasks.(index)) ~index ~attempt ~budget_s
        in
        (Marshal.to_channel oc (index, res, wall, payload : _ response) [];
         flush oc);
        serve ()
    in
    (try serve () with _ -> ());
    (* [Unix._exit]: skip at_exit/flushing so the child cannot replay the
       parent's buffered stdout. *)
    (try flush oc with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    {
      pid;
      req_fd = req_w;
      req_oc = Unix.out_channel_of_descr req_w;
      resp_fd = resp_r;
      resp_ic = Unix.in_channel_of_descr resp_r;
      alive = true;
    }

(* Retire a worker without leaving a zombie: close its pipes (EOF makes a
   live child exit on its own), poll with WNOHANG for up to [grace_s],
   escalate to SIGKILL if it has not exited by then, and swallow ECHILD
   (someone else — or a double reap — already collected it). Returns the
   wait status when one was collected. *)
let reap ?(grace_s = 0.05) w ~kill =
  if not w.alive then None
  else begin
    w.alive <- false;
    (try close_out_noerr w.req_oc with _ -> ());
    (try close_in_noerr w.resp_ic with _ -> ());
    if kill then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    let deadline = ref (Unix.gettimeofday () +. grace_s) in
    let rec blocking_wait () =
      match Unix.waitpid [] w.pid with
      | _, status -> Some status
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> blocking_wait ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None
      | exception Unix.Unix_error _ -> None
    in
    let rec poll () =
      match Unix.waitpid [ Unix.WNOHANG ] w.pid with
      | 0, _ ->
        let now = Unix.gettimeofday () in
        (* Re-derive after a backwards clock step so the grace period can
           never stretch beyond [grace_s] of real polling. *)
        if !deadline -. now > grace_s then deadline := now +. grace_s;
        if now >= !deadline then begin
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          (* SIGKILL cannot be caught; a blocking wait now terminates. *)
          blocking_wait ()
        end
        else begin
          Unix.sleepf 0.002;
          poll ()
        end
      | _, status -> Some status
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None
      | exception Unix.Unix_error _ -> None
    in
    poll ()
  end

let rec select_eintr fds timeout =
  try Unix.select fds [] [] timeout
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_eintr fds timeout

(* --- endpoints ----------------------------------------------------------- *)

(* A worker the pool can feed, abstracted over its transport: a forked
   child behind a pipe pair, or a remote TCP session (lib/dist). The pool
   only ever (a) sends one [(index, attempt, budget_s)] dispatch, (b)
   selects on [ep_fd] for exactly one response per dispatch, (c) pings an
   idle link before reusing it, and (d) closes. Any exception out of
   send/recv/ping means the endpoint is dead; supervision requeues its
   in-flight task and asks the slot's factory for a replacement. *)
type 'b endpoint = {
  ep_descr : string;  (** for supervision traces, e.g. ["fork:4711"] *)
  ep_fd : Unix.file_descr;  (** select handle; readable = response coming *)
  ep_fds : Unix.file_descr list;
      (** every parent-side fd of this endpoint — freshly forked local
          workers close these so a dead endpoint shows up as EOF *)
  ep_send : int * int * float -> unit;
  ep_recv : unit -> 'b response;
  ep_ping : unit -> unit;  (** liveness round trip; no-op for local forks *)
  ep_close : kill:bool -> unit;
}

type 'b remote_acquire =
  | Remote_ok of 'b endpoint
  | Remote_unavailable
  | Remote_blacklisted

type 'b remote_factory = unit -> 'b remote_acquire

let endpoint_of_worker w =
  {
    ep_descr = Printf.sprintf "fork:%d" w.pid;
    ep_fd = w.resp_fd;
    ep_fds = [ w.req_fd; w.resp_fd ];
    ep_send =
      (fun (msg : int * int * float) ->
        Marshal.to_channel w.req_oc msg [];
        flush w.req_oc);
    ep_recv = (fun () -> (Marshal.from_channel w.resp_ic : _ response));
    ep_ping = (fun () -> ());
    ep_close = (fun ~kill -> ignore (reap w ~kill));
  }

let heartbeat_idle_s = 1.0

(* A pool slot: the supervision unit. Local slots respawn through [fork]
   against the shared respawn budget; remote slots reacquire through
   their factory, which owns the reconnect-backoff and blacklist policy. *)
type 'b slot = {
  sl_remote : bool;
  sl_factory : respawn:bool -> 'b remote_acquire;
  mutable sl_conn : 'b endpoint option;
  mutable sl_task : (int * int) option;
  mutable sl_deadline : float;
  mutable sl_idle_since : float;
  mutable sl_ever : bool;  (** acquired at least once (later ones count) *)
  mutable sl_retired : bool;  (** blacklisted / budget spent: never refilled *)
}

let run_pool ~jobs ~timeout_s ?budget_of ?(remote = []) ?on_result ~f tasks =
  let budget_for index =
    match budget_of with Some g -> g index | None -> infinity
  in
  let n = Array.length tasks in
  let results = Array.make n None in
  let failures : task_error option array = Array.make n None in
  let completed = ref 0 in
  let next = ref 0 in
  let retries : (int * int) Queue.t = Queue.create () in
  let worker_deaths = ref 0
  and respawns = ref 0
  and task_retries = ref 0
  and inline_recoveries = ref 0
  and timeouts = ref 0
  and fork_failures = ref 0
  and degraded = ref false
  and remote_deaths = ref 0
  and reconnects = ref 0
  and blacklisted = ref 0 in
  let complete_ok index r =
    if results.(index) = None && failures.(index) = None then begin
      results.(index) <- Some r;
      incr completed;
      observe_task_wall r.wall_s;
      match on_result with Some g -> g index r | None -> ()
    end
  in
  let complete_err index message attempts =
    if results.(index) = None && failures.(index) = None then begin
      failures.(index) <- Some { index; message; attempts };
      incr completed
    end
  in
  let run_inline (index, attempt) =
    (* Last-resort path: compute in the parent (also the drain path once
       every worker is gone). Exceptions become structured failures. *)
    let t0 = Unix.gettimeofday () in
    match
      with_task_deadline (budget_for index) (fun () ->
          with_task_obs index ~attempt (fun () -> f tasks.(index)))
    with
    | value ->
      complete_ok index
        { value; wall_s = Float.max 0. (Unix.gettimeofday () -. t0) }
    | exception e ->
      complete_err index (Printexc.to_string e) (attempt + 1)
  in
  (* Slot plan: [jobs] local fork slots — none when [jobs <= 1], so with
     remote endpoints configured [--jobs 1] means coordinator-only — plus
     one slot per remote endpoint factory, both capped at the task
     count. *)
  let local_slots = if fork_available && jobs > 1 then min jobs n else 0 in
  let remote_facs = List.filteri (fun i _ -> i < n) remote in
  let respawn_budget = ref (max 4 (2 * local_slots)) in
  let slots = ref [||] in
  let child_close_fds () =
    Array.fold_left
      (fun acc s ->
        match s.sl_conn with Some ep -> ep.ep_fds @ acc | None -> acc)
      [] !slots
  in
  (* Fork with bounded retries and exponential backoff; [None] after the
     budget means the pool runs narrower (and, once empty, sequentially). *)
  let try_fork () =
    let rec go attempt =
      match spawn ~inherited:(child_close_fds ()) ~tasks ~f with
      | w -> Some w
      | exception (Unix.Unix_error _ | Sys_error _) ->
        incr fork_failures;
        if attempt >= 2 then None
        else begin
          Unix.sleepf (backoff_delay attempt);
          go (attempt + 1)
        end
    in
    go 0
  in
  let local_factory ~respawn =
    if respawn && !respawn_budget <= 0 then Remote_blacklisted
    else begin
      if respawn then decr respawn_budget;
      match try_fork () with
      | Some w -> Remote_ok (endpoint_of_worker w)
      | None ->
        if respawn then degraded := true;
        Remote_blacklisted
    end
  in
  let fresh_slot ~remote factory =
    {
      sl_remote = remote;
      sl_factory = factory;
      sl_conn = None;
      sl_task = None;
      sl_deadline = infinity;
      sl_idle_since = 0.;
      sl_ever = false;
      sl_retired = false;
    }
  in
  slots :=
    Array.of_list
      (List.init local_slots (fun _ -> fresh_slot ~remote:false local_factory)
      @ List.map
          (fun fac -> fresh_slot ~remote:true (fun ~respawn:_ -> fac ()))
          remote_facs);
  let acquire slot =
    match slot.sl_conn with
    | Some _ -> ()
    | None ->
      if not slot.sl_retired then begin
        match slot.sl_factory ~respawn:slot.sl_ever with
        | Remote_ok ep ->
          if slot.sl_ever then begin
            if slot.sl_remote then incr reconnects
            else begin
              incr respawns;
              Obs.Metrics.incr (Lazy.force m_respawns)
            end;
            pool_event
              (if slot.sl_remote then "reconnect" else "respawn")
              [ ("endpoint", Obs.Trace.Str ep.ep_descr) ]
          end;
          slot.sl_ever <- true;
          slot.sl_conn <- Some ep;
          slot.sl_task <- None;
          slot.sl_deadline <- infinity;
          slot.sl_idle_since <- Unix.gettimeofday ()
        | Remote_unavailable ->
          (* The factory already slept through its reconnect backoff;
             leave the slot empty and let a later dispatch round retry.
             Repeated failures end in [Remote_blacklisted]. *)
          ()
        | Remote_blacklisted ->
          slot.sl_retired <- true;
          if slot.sl_remote then begin
            incr blacklisted;
            pool_event "blacklist" []
          end
      end
  in
  (* An endpoint died (EOF / ECONNRESET on its link, or EPIPE at
     dispatch). Close it, requeue its in-flight task with backoff —
     bounded attempts, then the parent computes it inline — and ask the
     slot's factory for a replacement. *)
  let on_death slot =
    match slot.sl_conn with
    | None -> ()
    | Some ep ->
      if slot.sl_remote then incr remote_deaths else incr worker_deaths;
      Obs.Metrics.incr (Lazy.force m_deaths);
      pool_event "worker_death" [ ("endpoint", Obs.Trace.Str ep.ep_descr) ];
      ep.ep_close ~kill:false;
      slot.sl_conn <- None;
      (match slot.sl_task with
      | Some (index, attempt) ->
        slot.sl_task <- None;
        let attempt = attempt + 1 in
        if attempt >= max_task_attempts then begin
          incr inline_recoveries;
          Obs.Metrics.incr (Lazy.force m_inline);
          pool_event "inline_recovery" [ ("index", Obs.Trace.Int index) ];
          run_inline (index, attempt)
        end
        else begin
          incr task_retries;
          Obs.Metrics.incr (Lazy.force m_retries);
          Obs.Metrics.incr (Lazy.force m_backoff);
          pool_event "backoff"
            [
              ("index", Obs.Trace.Int index);
              ("attempt", Obs.Trace.Int attempt);
              ("wall_sleep_s", Obs.Trace.Float (backoff_delay (attempt - 1)));
            ];
          Unix.sleepf (backoff_delay (attempt - 1));
          Queue.push (index, attempt) retries
        end
      | None -> ());
      acquire slot
  in
  let dispatch slot =
    (match slot.sl_conn with None -> acquire slot | Some _ -> ());
    match slot.sl_conn with
    | Some ep when slot.sl_task = None -> (
      let job =
        if not (Queue.is_empty retries) then Some (Queue.pop retries)
        else if !next < n then begin
          let index = !next in
          incr next;
          Some (index, 0)
        end
        else None
      in
      match job with
      | None -> ()
      | Some (index, attempt) ->
        (* Heartbeat: a remote link that has sat idle may be half-open
           (peer rebooted, connection silently dropped); validate it with
           a ping round trip before committing a task to it. *)
        let healthy =
          (not slot.sl_remote)
          || Unix.gettimeofday () -. slot.sl_idle_since <= heartbeat_idle_s
          ||
          match ep.ep_ping () with
          | () ->
            slot.sl_idle_since <- Unix.gettimeofday ();
            true
          | exception _ -> false
        in
        if not healthy then begin
          Queue.push (index, attempt) retries;
          on_death slot
        end
        else begin
          match ep.ep_send (index, attempt, budget_for index) with
          | () ->
            Obs.Metrics.incr (Lazy.force m_dispatched);
            pool_event "dispatch"
              [
                ("index", Obs.Trace.Int index);
                ("attempt", Obs.Trace.Int attempt);
                ("endpoint", Obs.Trace.Str ep.ep_descr);
              ];
            slot.sl_task <- Some (index, attempt);
            slot.sl_deadline <-
              (match timeout_s with
              | Some t -> Unix.gettimeofday () +. t
              | None -> infinity)
          | exception (Sys_error _ | Unix.Unix_error _ | End_of_file) ->
            (* The endpoint died before we could feed it; the task never
               ran, so requeue it at the same attempt and supervise the
               death. *)
            Queue.push (index, attempt) retries;
            on_death slot
        end)
    | Some _ | None -> ()
  in
  let on_response slot =
    match slot.sl_conn with
    | None -> ()
    | Some ep -> (
      match ep.ep_recv () with
      | exception (End_of_file | Failure _ | Sys_error _ | Unix.Unix_error _)
        ->
        on_death slot
      | index, res, wall, payload -> (
        let attempt = match slot.sl_task with Some (_, a) -> a | None -> 0 in
        slot.sl_task <- None;
        slot.sl_deadline <- infinity;
        slot.sl_idle_since <- Unix.gettimeofday ();
        (* Absorb the worker's trace/metrics buffer only for the attempt
           that is actually accepted, so a retried task can never be
           double-counted in the merged trace. *)
        if results.(index) = None && failures.(index) = None then
          Obs.Sink.absorb_payload payload;
        match res with
        | Ok value -> complete_ok index { value; wall_s = wall }
        | Error message ->
          (* A raising task is a structured failure, not a pool teardown:
             the worker survives and keeps serving, the other cells
             finish, and [map]/[map_results] report the failure at the
             end. *)
          complete_err index message (attempt + 1)))
  in
  (* A stalled task: kill its endpoint and retry on a fresh one
     (transient stalls recover); once the attempt budget is spent, the
     task is genuinely stuck — raise rather than hang the parent on an
     inline run. *)
  let on_timeout slot =
    match slot.sl_conn with
    | None -> ()
    | Some ep ->
      incr timeouts;
      Obs.Metrics.incr (Lazy.force m_timeouts);
      pool_event "timeout"
        [
          ("endpoint", Obs.Trace.Str ep.ep_descr);
          ( "index",
            Obs.Trace.Int
              (match slot.sl_task with Some (i, _) -> i | None -> -1) );
        ];
      let pending = slot.sl_task in
      slot.sl_task <- None;
      ep.ep_close ~kill:true;
      slot.sl_conn <- None;
      (match pending with
      | Some (index, attempt) ->
        let attempt = attempt + 1 in
        if attempt >= max_task_attempts then
          raise
            (Task_timeout
               { index; timeout_s = Option.value timeout_s ~default:0. })
        else begin
          incr task_retries;
          Obs.Metrics.incr (Lazy.force m_retries);
          Obs.Metrics.incr (Lazy.force m_backoff);
          Unix.sleepf (backoff_delay (attempt - 1));
          Queue.push (index, attempt) retries
        end
      | None -> ());
      acquire slot
  in
  let cleanup ~kill =
    Array.iter
      (fun s ->
        match s.sl_conn with
        | Some ep ->
          ep.ep_close ~kill;
          s.sl_conn <- None
        | None -> ())
      !slots
  in
  let record_stats () =
    stats_ref :=
      {
        worker_deaths = !worker_deaths;
        respawns = !respawns;
        task_retries = !task_retries;
        inline_recoveries = !inline_recoveries;
        timeouts = !timeouts;
        fork_failures = !fork_failures;
        degraded = !degraded;
        remote_workers = List.length remote_facs;
        remote_deaths = !remote_deaths;
        reconnects = !reconnects;
        blacklisted = !blacklisted;
      }
  in
  let finally_cleanup body =
    match body () with
    | () ->
      cleanup ~kill:false;
      record_stats ()
    | exception e ->
      cleanup ~kill:true;
      record_stats ();
      raise e
  in
  (* A dead worker turns the next dispatch into EPIPE; take the error, not
     the signal. *)
  let prev_sigpipe =
    if Sys.os_type = "Unix" then
      Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    else None
  in
  Fun.protect
    ~finally:(fun () ->
      match prev_sigpipe with
      | Some b -> Sys.set_signal Sys.sigpipe b
      | None -> ())
    (fun () ->
      finally_cleanup (fun () ->
          Array.iter acquire !slots;
          while !completed < n do
            Array.iter dispatch !slots;
            let in_flight =
              Array.to_list !slots
              |> List.filter_map (fun s ->
                     match s.sl_conn with
                     | Some ep when s.sl_task <> None -> Some (s, ep)
                     | Some _ | None -> None)
            in
            match in_flight with
            | [] ->
              (* Every worker is gone (or fork/connect never succeeded):
                 degrade to sequential execution in the parent. *)
              if !completed < n then degraded := true;
              while not (Queue.is_empty retries) do
                run_inline (Queue.pop retries)
              done;
              while !completed < n && !next < n do
                let index = !next in
                incr next;
                run_inline (index, 0)
              done
            | _ :: _ ->
              let now = Unix.gettimeofday () in
              (* A backwards clock step (NTP) would leave absolute
                 deadlines far in the future and stretch the select
                 below by the size of the jump; re-derive so no
                 in-flight task ever has more than the configured
                 timeout left. *)
              (match timeout_s with
              | Some t ->
                List.iter
                  (fun (s, _) ->
                    if s.sl_deadline > now +. t then s.sl_deadline <- now +. t)
                  in_flight
              | None -> ());
              let horizon =
                List.fold_left
                  (fun acc (s, _) -> Float.min acc s.sl_deadline)
                  infinity in_flight
              in
              let select_timeout =
                if horizon = infinity then -1. else Float.max 0. (horizon -. now)
              in
              let readable, _, _ =
                select_eintr
                  (List.map (fun (_, ep) -> ep.ep_fd) in_flight)
                  select_timeout
              in
              if readable = [] then begin
                let now = Unix.gettimeofday () in
                Array.iter
                  (fun s ->
                    match s.sl_conn with
                    | Some _ when s.sl_task <> None && s.sl_deadline <= now ->
                      on_timeout s
                    | Some _ | None -> ())
                  !slots
              end
              else
                Array.iter
                  (fun s ->
                    match s.sl_conn with
                    | Some ep
                      when s.sl_task <> None && List.mem ep.ep_fd readable ->
                      on_response s
                    | Some _ | None -> ())
                  !slots
          done));
  Array.init n (fun i ->
      match (results.(i), failures.(i)) with
      | Some r, _ -> Ok r
      | None, Some e -> Error e
      | None, None -> assert false)

(* --- public maps --------------------------------------------------------- *)

let run ?jobs ?timeout_s ?budget_of ?(remote = []) ?on_result ~f tasks =
  incr phase;
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let arr = Array.of_list tasks in
  let no_remote = match remote with [] -> true | _ :: _ -> false in
  if
    no_remote
    && ((not fork_available) || jobs <= 1 || Array.length arr <= 1)
  then begin
    stats_ref := zero_stats;
    sequential ?budget_of ?on_result ~f tasks
  end
  else
    Array.to_list
      (run_pool ~jobs ~timeout_s ?budget_of ~remote ?on_result ~f arr)

let map_results ?jobs ?timeout_s ?budget_of ?remote ?on_result ~f tasks =
  run ?jobs ?timeout_s ?budget_of ?remote ?on_result ~f tasks

let map ?jobs ?timeout_s ?budget_of ?remote ?on_result ~f tasks =
  let outcomes = run ?jobs ?timeout_s ?budget_of ?remote ?on_result ~f tasks in
  (* Report the lowest-index failure, matching the sequential order a
     plain [List.map] would have surfaced it in. *)
  List.iter
    (fun o ->
      match o with
      | Ok _ -> ()
      | Error { index; message; _ } -> raise (Task_failed { index; message }))
    outcomes;
  List.map (function Ok r -> r | Error _ -> assert false) outcomes

let map_values ?jobs ?timeout_s ?budget_of ?remote ?on_result ~f tasks =
  List.map (fun r -> r.value)
    (map ?jobs ?timeout_s ?budget_of ?remote ?on_result ~f tasks)
