type spec = {
  seed : int;
  crash_prob : float;
  crash_every : int;
  stall_prob : float;
  stall_s : float;
  diverge_prob : float;
  drop_prob : float;
  delay_prob : float;
  delay_s : float;
  garble_prob : float;
  disconnect_prob : float;
  partition_prob : float;
  ckill_after : int;
}

let none =
  {
    seed = 0;
    crash_prob = 0.;
    crash_every = 0;
    stall_prob = 0.;
    stall_s = 0.5;
    diverge_prob = 0.;
    drop_prob = 0.;
    delay_prob = 0.;
    delay_s = 0.05;
    garble_prob = 0.;
    disconnect_prob = 0.;
    partition_prob = 0.;
    ckill_after = 0;
  }

let is_none s =
  s.crash_prob = 0. && s.crash_every = 0 && s.stall_prob = 0.
  && s.diverge_prob = 0. && s.drop_prob = 0. && s.delay_prob = 0.
  && s.garble_prob = 0. && s.disconnect_prob = 0. && s.partition_prob = 0.
  && s.ckill_after = 0

type error = Parse_error.t = { file : string; line : int; msg : string }

let default_file = "<faults>"

let parse_result ?(file = default_file) text =
  let fail fmt =
    Printf.ksprintf (fun msg -> Error { file; line = 0; msg }) fmt
  in
  let text = String.trim text in
  if text = "" then Ok none
  else
    let parse_field acc field =
      match acc with
      | Error _ as e -> e
      | Ok s -> (
          match String.index_opt field '=' with
          | None -> fail "missing '=' in %S" field
          | Some i ->
              let key = String.trim (String.sub field 0 i) in
              let v =
                String.trim
                  (String.sub field (i + 1) (String.length field - i - 1))
              in
              let prob set =
                match float_of_string_opt v with
                | Some p when p >= 0. && p <= 1. -> Ok (set p)
                | _ ->
                    fail "%s must be a probability in [0,1], got %S" key v
              in
              let nonneg_float set =
                match float_of_string_opt v with
                | Some x when x >= 0. && Float.is_finite x -> Ok (set x)
                | _ -> fail "%s must be a non-negative number, got %S" key v
              in
              let nonneg_int set =
                match int_of_string_opt v with
                | Some n when n >= 0 -> Ok (set n)
                | _ -> fail "%s must be a non-negative integer, got %S" key v
              in
              match key with
              | "seed" -> nonneg_int (fun n -> { s with seed = n })
              | "crash" -> prob (fun p -> { s with crash_prob = p })
              | "crash_every" -> nonneg_int (fun n -> { s with crash_every = n })
              | "stall" -> prob (fun p -> { s with stall_prob = p })
              | "stall_s" -> nonneg_float (fun x -> { s with stall_s = x })
              | "diverge" -> prob (fun p -> { s with diverge_prob = p })
              | "drop" -> prob (fun p -> { s with drop_prob = p })
              | "delay" -> prob (fun p -> { s with delay_prob = p })
              | "delay_s" -> nonneg_float (fun x -> { s with delay_s = x })
              | "garble" -> prob (fun p -> { s with garble_prob = p })
              | "disconnect" -> prob (fun p -> { s with disconnect_prob = p })
              | "partition" -> prob (fun p -> { s with partition_prob = p })
              | "ckill_after" -> nonneg_int (fun n -> { s with ckill_after = n })
              | _ -> fail "unknown key %S" key)
    in
    List.fold_left parse_field (Ok none) (String.split_on_char ',' text)

(* Legacy string-message wrapper: the historical messages carried a
   "fault spec: " prefix instead of the error record's file label. *)
let parse text =
  Result.map_error (fun e -> "fault spec: " ^ e.msg) (parse_result text)

let to_string s =
  if is_none s then ""
  else
    let fields = ref [] in
    let addf name v = if v <> 0. then fields := Printf.sprintf "%s=%g" name v :: !fields in
    let addi name v = if v <> 0 then fields := Printf.sprintf "%s=%d" name v :: !fields in
    addi "ckill_after" s.ckill_after;
    addf "partition" s.partition_prob;
    addf "disconnect" s.disconnect_prob;
    addf "garble" s.garble_prob;
    if s.delay_s <> none.delay_s then
      fields := Printf.sprintf "delay_s=%g" s.delay_s :: !fields;
    addf "delay" s.delay_prob;
    addf "drop" s.drop_prob;
    addf "diverge" s.diverge_prob;
    if s.stall_s <> none.stall_s then
      fields := Printf.sprintf "stall_s=%g" s.stall_s :: !fields;
    addf "stall" s.stall_prob;
    addi "crash_every" s.crash_every;
    addf "crash" s.crash_prob;
    addi "seed" s.seed;
    String.concat "," !fields

let env_var = "REPLICA_FAULTS"

let of_env_result () =
  match Sys.getenv_opt env_var with
  | None -> Ok none
  | Some text -> parse_result ~file:("$" ^ env_var) text

let of_env () =
  Result.map_error (fun (e : error) -> "fault spec: " ^ e.msg) (of_env_result ())

let state = ref none
let install s = state := s
let current () = !state
let active () = not (is_none !state)

(* FNV-1a over the (seed, kind, key) triple, masked to stay well inside
   OCaml's 63-bit native int on every platform. The hash seeds a private
   splitmix64 stream so the crash/stall/diverge decisions for one cell
   are independent coin flips yet identical in every process. *)
let mask = 0x3FFFFFFFFFFFFFFF

let hash ~seed ~kind key =
  let h = ref (0x811c9dc5 lxor (seed * 0x9E3779B1)) in
  let feed s =
    String.iter
      (fun c -> h := ((!h lxor Char.code c) * 0x01000193) land mask)
      s
  in
  feed kind;
  feed "|";
  feed key;
  !h land mask

let decide spec ~kind ~key ~prob =
  if prob <= 0. then false
  else if prob >= 1. then true
  else
    let rng = Prng.create ~seed:(hash ~seed:spec.seed ~kind key) in
    Prng.float rng 1.0 < prob

let crash_requested ~key =
  let s = !state in
  decide s ~kind:"crash" ~key ~prob:s.crash_prob
  || (s.crash_every > 0 && hash ~seed:s.seed ~kind:"crash-every" key mod s.crash_every = 0)

let stall_requested ~key =
  let s = !state in
  decide s ~kind:"stall" ~key ~prob:s.stall_prob

let diverge_requested ~key =
  let s = !state in
  decide s ~kind:"diverge" ~key ~prob:s.diverge_prob

let crash_exit_code = 96

let first_attempt_in_worker () =
  Parallel.in_worker () && Parallel.task_attempt () = 0

let crash_point ~key =
  if first_attempt_in_worker () && crash_requested ~key then
    Unix._exit crash_exit_code

let stall_point ~key =
  if first_attempt_in_worker () && stall_requested ~key then
    Unix.sleepf (current ()).stall_s

(* --- network faults ------------------------------------------------------ *)

(* Transport-layer faults are decided by the same FNV scheme but gated on
   the message's [attempt] explicitly (the distributed transport knows
   the attempt it is sending; it is not "inside a worker"), so a dropped
   or garbled first dispatch always recovers on the retry. *)

let drop_requested ~key ~attempt =
  let s = !state in
  attempt = 0 && decide s ~kind:"net-drop" ~key ~prob:s.drop_prob

let delay_requested ~key ~attempt =
  let s = !state in
  attempt = 0 && decide s ~kind:"net-delay" ~key ~prob:s.delay_prob

let garble_requested ~key ~attempt =
  let s = !state in
  attempt = 0 && decide s ~kind:"net-garble" ~key ~prob:s.garble_prob

let disconnect_requested ~key ~attempt =
  let s = !state in
  attempt = 0 && decide s ~kind:"net-disconnect" ~key ~prob:s.disconnect_prob

let partition_requested ~key =
  let s = !state in
  decide s ~kind:"net-partition" ~key ~prob:s.partition_prob

(* Coordinator kill: exit the coordinator after its [ckill_after]-th
   checkpoint this run, as if the driving process had been SIGKILLed
   mid-sweep. The journal on disk is a complete prefix at that point, so
   a re-run with the same arguments (minus the kill) must resume and
   produce byte-identical output. Never fires inside a worker — the kill
   models the *coordinator* dying, worker deaths have their own knobs. *)
let coordinator_kill_point ~nth =
  let s = !state in
  if s.ckill_after > 0 && nth >= s.ckill_after && not (Parallel.in_worker ())
  then Unix._exit crash_exit_code
