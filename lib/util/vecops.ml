(* Kernel note: these run inside the PDHG iteration, which is the hot
   path of every bound computation. Lengths are validated once up front so
   the loops can use unsafe accesses; without flambda, cross-module calls
   are not inlined, which is why the fused variants below exist at all —
   each one replaces two or three separate passes (and their per-element
   call overhead) with a single stream over the data. *)

let dot x y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Vecops.dot: length mismatch";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
  done;
  !acc

let dot2 x y z =
  let n = Array.length x in
  if n <> Array.length y || n <> Array.length z then
    invalid_arg "Vecops.dot2: length mismatch";
  let a = ref 0. and b = ref 0. in
  for i = 0 to n - 1 do
    let xi = Array.unsafe_get x i in
    a := !a +. (xi *. Array.unsafe_get y i);
    b := !b +. (xi *. Array.unsafe_get z i)
  done;
  (!a, !b)

let axpy a x y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Vecops.axpy: length mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set y i
      (Array.unsafe_get y i +. (a *. Array.unsafe_get x i))
  done

let axpby_into a x b y dst =
  let n = Array.length x in
  if n <> Array.length y || n <> Array.length dst then
    invalid_arg "Vecops.axpby_into: length mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i
      ((a *. Array.unsafe_get x i) +. (b *. Array.unsafe_get y i))
  done

let scale a x =
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set x i (a *. Array.unsafe_get x i)
  done

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. x

let sub_into x y dst =
  let n = Array.length x in
  if n <> Array.length y || n <> Array.length dst then
    invalid_arg "Vecops.sub_into: length mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i (Array.unsafe_get x i -. Array.unsafe_get y i)
  done

let clamp v ~lo ~hi = if v < lo then lo else if v > hi then hi else v

let clamp_into x ~lo ~hi =
  let n = Array.length x in
  if n <> Array.length lo || n <> Array.length hi then
    invalid_arg "Vecops.clamp_into: length mismatch";
  for i = 0 to n - 1 do
    let v = Array.unsafe_get x i in
    let l = Array.unsafe_get lo i and h = Array.unsafe_get hi i in
    Array.unsafe_set x i (if v < l then l else if v > h then h else v)
  done

let step_clamp_into x g step ~lo ~hi dst =
  let n = Array.length x in
  if
    n <> Array.length g || n <> Array.length step || n <> Array.length lo
    || n <> Array.length hi || n <> Array.length dst
  then invalid_arg "Vecops.step_clamp_into: length mismatch";
  for i = 0 to n - 1 do
    let v =
      Array.unsafe_get x i -. (Array.unsafe_get step i *. Array.unsafe_get g i)
    in
    let l = Array.unsafe_get lo i and h = Array.unsafe_get hi i in
    Array.unsafe_set dst i (if v < l then l else if v > h then h else v)
  done

let approx_equal ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. (1. +. Float.max (Float.abs a) (Float.abs b))

let sum x =
  let acc = ref 0. and comp = ref 0. in
  for i = 0 to Array.length x - 1 do
    let y = Array.unsafe_get x i -. !comp in
    let t = !acc +. y in
    comp := t -. !acc -. y;
    acc := t
  done;
  !acc
