(** Allocation-light field scanning for the line-oriented IO formats.

    [Topo_io] and [Trace_io] parse comma-separated lines; materializing
    every line and field as a string (plus a trimmed copy of each) is the
    dominant cost of loading a 100k-event trace. These helpers work on
    [(lo, hi)] byte ranges of the whole input instead, allocating only
    when a value genuinely needs the general [int_of_string] /
    [float_of_string] grammar or when an error message quotes the field.

    Trimming matches [String.trim] exactly (space, [\t], [\n], [\r],
    [\012]), and {!int_field} / {!float_field} accept exactly the strings
    their [Stdlib] counterparts do — the fast paths only shortcut the
    common pure-decimal case. *)

val line_end : string -> int -> int
(** [line_end s pos] is the index of the first ['\n'] at or after [pos],
    or [String.length s] when there is none (or [pos] is past the end). *)

val trim_bounds : string -> lo:int -> hi:int -> int * int
(** The sub-range of [\[lo, hi)] with leading and trailing whitespace
    (as per [String.trim]) removed; empty ranges come back as [(hi, hi)]. *)

val is_blank : string -> lo:int -> hi:int -> bool
(** Whether the range contains only whitespace (or is empty) — i.e.
    [String.trim] of the substring would be [""]. *)

val sub_trimmed : string -> lo:int -> hi:int -> string
(** The trimmed substring, allocated — for error messages. *)

val int_field : string -> lo:int -> hi:int -> int option
(** [int_of_string_opt] of the trimmed range. Pure decimal runs (an
    optional ['-'] and 1–18 digits) parse without allocating; everything
    else (hex/octal/binary prefixes, ['+'], ['_'] separators, overflow
    lengths) defers to [int_of_string_opt] on the substring. *)

val float_field : string -> lo:int -> hi:int -> float option
(** [float_of_string_opt] of the trimmed range. *)
