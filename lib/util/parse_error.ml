type t = { file : string; line : int; msg : string }

let pp ppf e =
  if e.line = 0 then Format.fprintf ppf "%s: %s" e.file e.msg
  else Format.fprintf ppf "%s:%d: %s" e.file e.line e.msg

let to_string e = Format.asprintf "%a" pp e
