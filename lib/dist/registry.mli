(** Named task functions for the distributed backend.

    Closures cannot be marshaled, so everything a remote worker runs is
    referenced by name: a {e task function} maps an opaque context blob
    (marshaled plain data, shipped once in the session handshake) to an
    [index -> result blob] solver. Register at module-init time so the
    name resolves in every process of the binary — coordinator and
    workers run the same executable. *)

val register : string -> (string -> int -> string) -> unit
(** [register name f]: [f ctx index] computes the marshaled result blob
    of task [index] under context [ctx]. Re-registering a name replaces
    the previous entry. *)

val find : string -> (string -> int -> string) option

val names : unit -> string list
(** Sorted registered names (for the worker's startup banner). *)
