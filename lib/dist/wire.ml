(* Length-prefixed, digest-checked Marshal frames over a stream socket.

   Every frame is

     [4-byte big-endian payload length][16-byte MD5 digest][payload]

   and the digest is verified *before* the payload reaches
   [Marshal.from_string]: unmarshaling corrupted bytes can crash the
   OCaml runtime outright, whereas a digest mismatch is an ordinary
   [Failure] that the supervisor treats as a dead connection. This is
   what makes the [garble] fault injectable — a corrupted frame costs a
   reconnect and a task retry, never a wedged process. *)

let magic = "replica-dist v1"

(* Refuse absurd lengths before allocating: a corrupted length field is
   not covered by the digest (it tells us how many digest-covered bytes
   to read), so it must be sanity-checked on its own. *)
let max_frame = 1 lsl 28

let rec restart f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart f

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = restart (fun () -> Unix.write fd buf off len) in
    write_all fd buf (off + n) (len - n)
  end

let rec read_all fd buf off len =
  if len > 0 then begin
    let n = restart (fun () -> Unix.read fd buf off len) in
    if n = 0 then raise End_of_file;
    read_all fd buf (off + n) (len - n)
  end

let digest_len = 16

let send_raw fd ~digest payload =
  let len = Bytes.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  write_all fd hdr 0 4;
  write_all fd (Bytes.of_string digest) 0 digest_len;
  write_all fd payload 0 len

let send_string fd payload =
  send_raw fd ~digest:(Digest.string payload) (Bytes.of_string payload)

(* Digest of the pristine payload, bytes of a corrupted one: the
   receiver's digest check is guaranteed to fail. Used only by the
   fault-injecting client transport. *)
let send_string_garbled fd payload =
  let digest = Digest.string payload in
  let corrupted = Bytes.of_string payload in
  if Bytes.length corrupted > 0 then begin
    let i = Bytes.length corrupted / 2 in
    Bytes.set corrupted i (Char.chr (Char.code (Bytes.get corrupted i) lxor 0x5A))
  end;
  send_raw fd ~digest corrupted

let recv_string fd =
  let hdr = Bytes.create 4 in
  read_all fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame then
    failwith (Printf.sprintf "dist: corrupt frame length %d" len);
  let digest = Bytes.create digest_len in
  read_all fd digest 0 digest_len;
  let payload = Bytes.create len in
  read_all fd payload 0 len;
  let payload = Bytes.unsafe_to_string payload in
  if not (String.equal (Digest.string payload) (Bytes.unsafe_to_string digest))
  then failwith "dist: corrupt frame (digest mismatch)";
  payload

(* --- messages ----------------------------------------------------------- *)

type hello = {
  h_magic : string;
  h_fn : string;  (** registry name of the task function *)
  h_ctx : string;  (** opaque context blob for {!Registry} *)
  h_faults : Util.Faults.spec;
  h_obs : Obs.Config.t;
  h_phase : int;  (** coordinator's {!Util.Parallel.current_phase} *)
}

type c2w =
  | Hello of hello
  | Task of { t_index : int; t_attempt : int; t_budget_s : float }
  | Ping of int
  | Shutdown

type w2c =
  | Welcome
  | Reject of string
  | Result of {
      r_index : int;
      r_res : (string, string) Stdlib.result;
      r_wall_s : float;
      r_payload : string;
    }
  | Pong of int

let send_c2w fd (m : c2w) = send_string fd (Marshal.to_string m [])
let send_c2w_garbled fd (m : c2w) = send_string_garbled fd (Marshal.to_string m [])
let recv_c2w fd : c2w = Marshal.from_string (recv_string fd) 0
let send_w2c fd (m : w2c) = send_string fd (Marshal.to_string m [])
let recv_w2c fd : w2c = Marshal.from_string (recv_string fd) 0

(* The fault key for one task dispatch: a pure function of (phase,
   index), so client and server agree on it and injected fault sets are
   identical at every [--jobs] and worker mix. Matches the task trace
   scope naming. *)
let task_key ~phase ~index = Printf.sprintf "task:%d.%d" phase index
