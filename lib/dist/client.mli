(** Coordinator side of the distributed sweep backend.

    {!factory} turns one worker address into a
    {!Util.Parallel.remote_factory}: the pool calls it at startup and
    after every endpoint death, and the factory owns the
    reconnect/blacklist policy — up to 3 connect attempts per
    acquisition round with {!Util.Parallel.backoff_delay} sleeps, then
    [Remote_unavailable] (the pool retries later); after 2 consecutive
    failed rounds the address is blacklisted for the rest of the
    process and every further acquisition returns
    [Remote_blacklisted].

    The endpoint's send path injects the deterministic network faults
    ([drop]/[delay]/[garble], keyed by {!Wire.task_key}); its connect
    path injects [partition] (keyed by address and connect ordinal).
    Pool supervision — requeue on death, per-task timeouts, inline
    recovery — stays in {!Util.Parallel}. *)

val factory :
  host:string ->
  port:int ->
  fn:string ->
  ctx:string ->
  'b Util.Parallel.remote_factory
(** [factory ~host ~port ~fn ~ctx] acquires sessions against the
    registered task function [fn] with context blob [ctx] (see
    {!Registry}). The ['b] result type must match what the registered
    function marshals — coordinator and worker are the same binary, so
    this holds by construction. Handshakes ship the coordinator's
    ambient fault spec, obs config, and pool phase. *)

val parse_workers : string -> ((string * int) list, string) Stdlib.result
(** Parse a comma-separated ["HOST:PORT,..."] worker list (the
    [--workers] CLI syntax). The empty string is [Ok []]. *)
