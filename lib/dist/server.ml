(* Worker side of the distributed sweep backend.

   The listener accepts connections and forks one *session* child per
   coordinator connection, so an injected crash ([Unix._exit] inside a
   task body) kills only that session — the listener survives and the
   coordinator's reconnect lands on a fresh child. SIGCHLD is ignored,
   so finished sessions are reaped by the kernel and the accept loop
   never blocks on [waitpid]. *)

let session fd =
  match Wire.recv_c2w fd with
  | exception _ -> ()
  | Task _ | Ping _ | Shutdown ->
      (try Wire.send_w2c fd (Wire.Reject "protocol error: expected Hello")
       with _ -> ())
  | Hello h ->
      if not (String.equal h.Wire.h_magic Wire.magic) then
        (try
           Wire.send_w2c fd
             (Wire.Reject
                (Printf.sprintf "magic mismatch: got %S, want %S"
                   h.Wire.h_magic Wire.magic))
         with _ -> ())
      else begin
        (* Adopt the coordinator's ambient state before anything runs:
           obs first (install resets trace state and the pool phase),
           then the coordinator's phase, then the fault spec. Drain any
           obs payload inherited from the pre-fork process so the first
           task ships only its own events. *)
        Obs.Config.install h.Wire.h_obs;
        Util.Parallel.set_phase h.Wire.h_phase;
        Util.Faults.install h.Wire.h_faults;
        ignore (Obs.Sink.payload ());
        match Registry.find h.Wire.h_fn with
        | None ->
            (try
               Wire.send_w2c fd
                 (Wire.Reject (Printf.sprintf "unknown function %S" h.Wire.h_fn))
             with _ -> ())
        | Some f -> (
            match f h.Wire.h_ctx with
            | exception e ->
                (try
                   Wire.send_w2c fd
                     (Wire.Reject
                        (Printf.sprintf "context rejected: %s"
                           (Printexc.to_string e)))
                 with _ -> ())
            | solver ->
                Wire.send_w2c fd Wire.Welcome;
                let rec serve () =
                  match Wire.recv_c2w fd with
                  | exception (End_of_file | Failure _ | Unix.Unix_error _) ->
                      ()
                  | Hello _ -> () (* protocol error: tear down *)
                  | Shutdown -> ()
                  | Ping n ->
                      Wire.send_w2c fd (Wire.Pong n);
                      serve ()
                  | Task { t_index; t_attempt; t_budget_s } ->
                      let key =
                        Wire.task_key
                          ~phase:(Util.Parallel.current_phase ())
                          ~index:t_index
                      in
                      if
                        Util.Faults.disconnect_requested ~key
                          ~attempt:t_attempt
                      then
                        (* Injected disconnect: vanish instead of
                           replying; the coordinator sees EOF and
                           requeues the task on a fresh session. *)
                        ()
                      else begin
                        let res, wall_s, payload =
                          Util.Parallel.run_task
                            ~f:(fun () -> solver t_index)
                            ~index:t_index ~attempt:t_attempt
                            ~budget_s:t_budget_s
                        in
                        Wire.send_w2c fd
                          (Wire.Result
                             {
                               r_index = t_index;
                               r_res = res;
                               r_wall_s = wall_s;
                               r_payload = payload;
                             });
                        serve ()
                      end
                in
                serve ())
      end

let resolve ~host ~port ~passive =
  let hints =
    Unix.AI_SOCKTYPE Unix.SOCK_STREAM
    :: (if passive then [ Unix.AI_PASSIVE ] else [])
  in
  match Unix.getaddrinfo host (string_of_int port) hints with
  | ai :: _ -> ai.Unix.ai_addr
  | [] -> failwith (Printf.sprintf "dist: cannot resolve %s:%d" host port)

let bind_listener ?(host = "127.0.0.1") ~port () =
  let addr = resolve ~host ~port ~passive:true in
  let lfd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  (try Unix.bind lfd addr
   with e ->
     (try Unix.close lfd with _ -> ());
     raise e);
  Unix.listen lfd 16;
  lfd

let bound_port lfd =
  match Unix.getsockname lfd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> 0

let accept_loop lfd : 'a =
  (* Dead coordinators must surface as EPIPE on write, not kill the
     session; finished session children must not accumulate as
     zombies. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigchld Sys.Signal_ignore;
  let rec loop () =
    match Unix.accept lfd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | fd, _peer -> (
        match Unix.fork () with
        | 0 ->
            (try Unix.close lfd with _ -> ());
            (try session fd with _ -> ());
            (try Unix.close fd with _ -> ());
            Unix._exit 0
        | _pid ->
            (try Unix.close fd with _ -> ());
            loop ())
  in
  loop ()

let serve ?(host = "127.0.0.1") ~port () =
  let lfd = bind_listener ~host ~port () in
  Printf.eprintf "dist: worker listening on %s:%d (functions: %s)\n%!" host
    (bound_port lfd)
    (String.concat ", " (Registry.names ()));
  accept_loop lfd
