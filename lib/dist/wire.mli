(** Frame format and message set of the distributed sweep transport.

    One frame is [4-byte big-endian payload length][16-byte MD5
    digest][Marshal payload]. The digest is checked {e before} the
    payload is unmarshaled — [Marshal.from_string] on corrupted bytes
    can crash the runtime, a digest mismatch is just a [Failure] that
    tears the connection down. The coordinator speaks {!c2w}, workers
    answer {!w2c}; both sides exchange exactly one response per request,
    so a readable socket always means a whole reply is in flight (the
    select-accuracy invariant of {!Util.Parallel.endpoint}). *)

val magic : string
(** Protocol identifier carried in {!hello}; mismatches are rejected. *)

val max_frame : int
(** Upper bound on accepted payload length. The length prefix is not
    digest-covered, so it is sanity-checked before allocation. *)

type hello = {
  h_magic : string;
  h_fn : string;  (** registry name of the task function *)
  h_ctx : string;  (** opaque context blob handed to {!Registry} *)
  h_faults : Util.Faults.spec;
      (** coordinator's fault spec; installed by the worker session so
          chaos runs inject the same deterministic faults everywhere *)
  h_obs : Obs.Config.t;
      (** coordinator's observability config, installed before any task
          runs so merged traces agree on mode and scopes *)
  h_phase : int;  (** coordinator's {!Util.Parallel.current_phase} *)
}

type c2w =
  | Hello of hello  (** handshake; must be the first frame *)
  | Task of { t_index : int; t_attempt : int; t_budget_s : float }
  | Ping of int  (** liveness probe; answered by [Pong] with the same n *)
  | Shutdown  (** graceful end of session *)

type w2c =
  | Welcome
  | Reject of string  (** bad magic / unknown function / ctx parse error *)
  | Result of {
      r_index : int;
      r_res : (string, string) Stdlib.result;
          (** [Ok blob] is the marshaled task value; [Error msg] a
              printed task exception (structured failure) *)
      r_wall_s : float;
      r_payload : string;  (** drained obs payload, [""] when off *)
    }
  | Pong of int

val send_c2w : Unix.file_descr -> c2w -> unit
val recv_c2w : Unix.file_descr -> c2w
val send_w2c : Unix.file_descr -> w2c -> unit
val recv_w2c : Unix.file_descr -> w2c
(** Blocking frame exchange. Raise [End_of_file] on a closed peer,
    [Failure] on a corrupt frame, [Unix.Unix_error] on socket errors —
    the pool supervisor treats all three as endpoint death. *)

val send_c2w_garbled : Unix.file_descr -> c2w -> unit
(** Send the frame with one payload byte flipped {e after} the digest
    was computed, so the receiver's digest check necessarily fails.
    Exists only for the [garble] fault injector. *)

val send_string : Unix.file_descr -> string -> unit
val recv_string : Unix.file_descr -> string
(** Raw frame exchange beneath the typed messages (exposed for tests). *)

val task_key : phase:int -> index:int -> string
(** Deterministic fault key of one task dispatch: a pure function of
    (phase, index) that client and server compute independently, so
    injected network fault sets are identical at every [--jobs] and
    worker mix. *)
