(* Coordinator side: one endpoint factory per remote worker address.

   The factory owns the reconnect/blacklist policy for its pool slot —
   bounded connect attempts with exponential backoff, a blacklist after
   repeated whole-round failures — while requeue/retry/inline-recovery
   supervision stays in [Util.Parallel]. It also injects the
   deterministic network faults on the send path (drop, delay, garble)
   and on the connect path (partition), keyed by the same FNV scheme as
   every other fault, so a chaos run is replayable at any worker mix. *)

let connect_attempts = 3
let blacklist_after = 2

let resolve ~host ~port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | ai :: _ -> ai.Unix.ai_addr
  | [] -> failwith (Printf.sprintf "dist: cannot resolve %s:%d" host port)

let connect ~host ~port =
  let addr = resolve ~host ~port in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

let close_quietly fd = try Unix.close fd with _ -> ()

(* Connect plus Hello/Welcome handshake; raises on any failure. *)
let handshake ~host ~port ~fn ~ctx =
  let fd = connect ~host ~port in
  match
    Wire.send_c2w fd
      (Wire.Hello
         {
           h_magic = Wire.magic;
           h_fn = fn;
           h_ctx = ctx;
           h_faults = Util.Faults.current ();
           h_obs = Obs.Config.current ();
           h_phase = Util.Parallel.current_phase ();
         });
    Wire.recv_w2c fd
  with
  | Wire.Welcome -> fd
  | Wire.Reject reason ->
      close_quietly fd;
      failwith (Printf.sprintf "dist: %s:%d rejected session: %s" host port reason)
  | Wire.Result _ | Wire.Pong _ ->
      close_quietly fd;
      failwith (Printf.sprintf "dist: %s:%d protocol error in handshake" host port)
  | exception e ->
      close_quietly fd;
      raise e

let make_endpoint ~descr ~fd =
  let ping_seq = ref 0 in
  {
    Util.Parallel.ep_descr = descr;
    ep_fd = fd;
    ep_fds = [ fd ];
    ep_send =
      (fun (index, attempt, budget_s) ->
        let key =
          Wire.task_key ~phase:(Util.Parallel.current_phase ()) ~index
        in
        let msg =
          Wire.Task
            { t_index = index; t_attempt = attempt; t_budget_s = budget_s }
        in
        if Util.Faults.drop_requested ~key ~attempt then
          (* Silently lose the dispatch: no frame is written, so the
             only recovery path is the pool's per-task timeout. *)
          ()
        else begin
          if Util.Faults.delay_requested ~key ~attempt then
            Unix.sleepf (Util.Faults.current ()).Util.Faults.delay_s;
          if Util.Faults.garble_requested ~key ~attempt then
            Wire.send_c2w_garbled fd msg
          else Wire.send_c2w fd msg
        end);
    ep_recv =
      (fun () ->
        match Wire.recv_w2c fd with
        | Wire.Result { r_index; r_res; r_wall_s; r_payload } ->
            let res =
              match r_res with
              | Ok blob -> Ok (Marshal.from_string blob 0)
              | Error msg -> Error msg
            in
            (r_index, res, r_wall_s, r_payload)
        | Wire.Welcome | Wire.Reject _ | Wire.Pong _ ->
            failwith (descr ^ ": protocol error: unexpected message"));
    ep_ping =
      (fun () ->
        incr ping_seq;
        let n = !ping_seq in
        Wire.send_c2w fd (Wire.Ping n);
        match Wire.recv_w2c fd with
        | Wire.Pong m when m = n -> ()
        | _ -> failwith (descr ^ ": bad ping reply"));
    ep_close =
      (fun ~kill ->
        if not kill then (try Wire.send_c2w fd Wire.Shutdown with _ -> ());
        close_quietly fd);
  }

let factory ~host ~port ~fn ~ctx =
  let descr = Printf.sprintf "dist:%s:%d" host port in
  (* Whole acquisition rounds that failed, consecutively: reset by any
     successful handshake, blacklisting the address when it reaches
     [blacklist_after]. The connect ordinal keys the partition fault so
     a partition heals deterministically on a later attempt. *)
  let failed_rounds = ref 0 in
  let ordinal = ref 0 in
  let blacklisted = ref false in
  fun () ->
    if !blacklisted then Util.Parallel.Remote_blacklisted
    else begin
      let rec attempt k =
        if k >= connect_attempts then None
        else begin
          if k > 0 then Unix.sleepf (Util.Parallel.backoff_delay (k - 1));
          let conn_key = Printf.sprintf "%s#%d" descr !ordinal in
          incr ordinal;
          if Util.Faults.partition_requested ~key:conn_key then
            (* The address is "unreachable" for this attempt. *)
            attempt (k + 1)
          else
            match handshake ~host ~port ~fn ~ctx with
            | fd -> Some fd
            | exception _ -> attempt (k + 1)
        end
      in
      match attempt 0 with
      | Some fd ->
          failed_rounds := 0;
          Util.Parallel.Remote_ok (make_endpoint ~descr ~fd)
      | None ->
          incr failed_rounds;
          if !failed_rounds >= blacklist_after then begin
            blacklisted := true;
            Util.Parallel.Remote_blacklisted
          end
          else Util.Parallel.Remote_unavailable
    end

let parse_workers text =
  let parse_one part =
    let part = String.trim part in
    match String.rindex_opt part ':' with
    | None ->
        Error
          (Printf.sprintf "worker %S: expected HOST:PORT" part)
    | Some i -> (
        let host = String.sub part 0 i in
        let port = String.sub part (i + 1) (String.length part - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
        | _ ->
            Error
              (Printf.sprintf "worker %S: expected HOST:PORT" part))
  in
  let parts =
    List.filter
      (fun s -> String.trim s <> "")
      (String.split_on_char ',' text)
  in
  List.fold_left
    (fun acc part ->
      match (acc, parse_one part) with
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e
      | Ok ws, Ok w -> Ok (w :: ws))
    (Ok []) parts
  |> Result.map List.rev
