(* Closures cannot cross the wire, so distributed task functions are
   named: callers register "fn name -> (ctx blob -> (index -> result
   blob))" at module-init time, the coordinator ships the name plus a
   marshaled plain-data context in its Hello, and the worker session
   looks the name up here. Coordinator and workers are the same binary,
   so a registered name resolves to the same code on both sides. *)

let table : (string, string -> int -> string) Hashtbl.t = Hashtbl.create 7
let register name f = Hashtbl.replace table name f
let find name = Hashtbl.find_opt table name

let names () =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) table [])
