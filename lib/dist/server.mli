(** Worker side of the distributed sweep backend.

    A worker process binds a TCP listener and forks one {e session}
    child per coordinator connection. The session performs the
    {!Wire.hello} handshake — adopting the coordinator's observability
    config, pool phase, and fault spec, in that order — resolves the
    task function through {!Registry}, and then answers [Task] frames
    with [Result] frames by running each body under
    {!Util.Parallel.run_task}, so a task behaves identically whichever
    transport delivered it (injected crash faults included: the session
    child dies, the listener survives, the coordinator reconnects).

    Failure model: a corrupt frame, EOF, protocol violation, or
    [Shutdown] ends the session child; the listener itself only dies
    with the host. SIGCHLD is ignored (kernel reaps sessions) and
    SIGPIPE is ignored (a dead coordinator surfaces as a socket error,
    tearing down just that session). *)

val serve : ?host:string -> port:int -> unit -> 'a
(** [serve ~port ()] binds [host:port] (default host [127.0.0.1]),
    prints a banner to stderr, and accepts coordinators forever; it
    never returns. [port = 0] binds an ephemeral port (the banner shows
    the actual one). *)

val bind_listener : ?host:string -> port:int -> unit -> Unix.file_descr
(** Bound, listening socket without the accept loop. Tests and the
    bench harness bind in the parent (learning the ephemeral port via
    {!bound_port}), then fork a child that runs {!accept_loop} on the
    inherited descriptor. *)

val bound_port : Unix.file_descr -> int
(** Actual port of a bound listener ([port = 0] resolves here). *)

val accept_loop : Unix.file_descr -> 'a
(** Accept coordinators on an already-bound listener forever; installs
    the SIGCHLD/SIGPIPE dispositions described above. Never returns. *)

val session : Unix.file_descr -> unit
(** One coordinator session on an accepted connection (exposed for
    tests; {!accept_loop} runs it in a forked child). Returns when the
    session ends; never raises. *)
