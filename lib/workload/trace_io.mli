(** Plain-text trace serialization.

    Format: a header line carrying the trace dimensions, then one CSV
    record per event in time order:

    {v
    # replica-select trace v1 nodes=20 objects=1000 duration_s=86400
    time_s,node,object,kind
    12.5,3,17,r
    13.1,0,2,w
    v}

    Intended for exchanging synthetic workloads between runs and for
    importing real traces (convert to this format, then
    {!Workload.Demand.of_trace} buckets them).

    The result-returning entry points below are the primary API: they
    never raise on malformed input, and every field is validated at the
    boundary — non-finite timestamps or durations are rejected as an
    {!error} carrying the offending line, and node/object ids are
    checked against the header dimensions. The [Failure]-raising twins
    at the bottom are legacy wrappers that delegate to them. *)

(** {1 Writing} *)

val save : Trace.t -> path:string -> unit
(** Writes the trace; overwrites an existing file. *)

val to_string : Trace.t -> string

(** {1 Reading (primary, result-returning API)} *)

type error = Util.Parse_error.t = {
  file : string;  (** path, or ["<trace>"] when parsed from a string *)
  line : int;  (** 1-based line of the offending record; 0 = whole file *)
  msg : string;
}
(** Shared structured parse failure (see {!Util.Parse_error}); the
    re-export keeps field access working without opening [Util]. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val of_string_result : string -> (Trace.t, error) result
(** Never raises on malformed input; errors are labelled ["<trace>"]. *)

val parse : ?file:string -> string -> (Trace.t, error) result
(** {!of_string_result} with an explicit [file] label for errors. *)

val load_result : path:string -> (Trace.t, error) result
(** {!parse} on the file's contents; an unreadable file (missing,
    permission) is reported as an [error] with [line = 0]. *)

(** {1 Legacy raising API}

    Thin wrappers over the result API, kept for callers that treat any
    malformed input as fatal. Each raises [Failure] with the rendered
    {!error} message. *)

val of_string : string -> Trace.t
(** Raising twin of {!of_string_result}. *)

val load : path:string -> Trace.t
(** Raising twin of {!load_result}. *)
