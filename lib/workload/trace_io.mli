(** Plain-text trace serialization.

    Format: a header line carrying the trace dimensions, then one CSV
    record per event in time order:

    {v
    # replica-select trace v1 nodes=20 objects=1000 duration_s=86400
    time_s,node,object,kind
    12.5,3,17,r
    13.1,0,2,w
    v}

    Intended for exchanging synthetic workloads between runs and for
    importing real traces (convert to this format, then
    {!Workload.Demand.of_trace} buckets them). *)

val save : Trace.t -> path:string -> unit
(** Writes the trace; overwrites an existing file. *)

type error = {
  file : string;  (** path, or ["<trace>"] when parsed from a string *)
  line : int;  (** 1-based line of the offending record; 0 = whole file *)
  msg : string;
}
(** Structured parse failure: a truncated, corrupt or poisoned file is a
    reportable condition, not a crash. Timestamps are validated at the
    boundary (finite, non-negative) and node/object ids checked against
    the header dimensions, with the offending line reported. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val parse : ?file:string -> string -> (Trace.t, error) result
(** Never raises on malformed input; [file] only labels the error. *)

val load_result : path:string -> (Trace.t, error) result
(** {!parse} on the file's contents; an unreadable file (missing,
    permission) is reported as an [error] with [line = 0]. *)

val load : path:string -> Trace.t
(** Raises [Failure] with a line-numbered message on malformed input
    (legacy wrapper over {!load_result}). *)

val to_string : Trace.t -> string

val of_string : string -> Trace.t
(** Exception-raising twin of {!parse}, kept for callers that treat any
    malformed input as fatal. *)
