let header_prefix = "# replica-select trace v1"

let to_buffer buf t =
  Buffer.add_string buf
    (Printf.sprintf "%s nodes=%d objects=%d duration_s=%.9g\n" header_prefix
       (Trace.node_count t) (Trace.object_count t) (Trace.duration_s t));
  Buffer.add_string buf "time_s,node,object,kind\n";
  (* Rows are appended piecewise — only the float goes through a format
     string (its "%.9g" rendering is pinned by the golden fixtures);
     [string_of_int] emits exactly what "%d" would. *)
  Trace.iter
    (fun ~time ~node ~object_id ~kind ->
      Buffer.add_string buf (Printf.sprintf "%.9g" time);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int node);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int object_id);
      Buffer.add_char buf ',';
      Buffer.add_char buf
        (match kind with Trace.Read -> 'r' | Trace.Write -> 'w');
      Buffer.add_char buf '\n')
    t

let to_string t =
  let buf = Buffer.create 4096 in
  to_buffer buf t;
  Buffer.contents buf

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer buf t;
      Buffer.output_buffer oc buf)

(* --- parsing ------------------------------------------------------------- *)

type error = Util.Parse_error.t = { file : string; line : int; msg : string }

let pp_error = Util.Parse_error.pp
let error_to_string = Util.Parse_error.to_string

(* Internal parse abort: line 0 means the failure is not tied to a
   specific line (wrong magic, empty file). *)
exception Err of int * string

let err line msg = raise (Err (line, msg))

let header_field line key =
  let marker = key ^ "=" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length line then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> err 1 ("missing header field " ^ key)
  | Some start ->
    let stop =
      match String.index_from_opt line start ' ' with
      | Some j -> j
      | None -> String.length line
    in
    String.sub line start (stop - start)

let parse_header header =
  let int_field key =
    match int_of_string_opt (header_field header key) with
    | Some n when n >= 0 -> n
    | Some _ | None -> err 1 ("bad header field " ^ key)
  in
  let nodes = int_field "nodes" in
  let objects = int_field "objects" in
  let duration_s =
    match float_of_string_opt (header_field header "duration_s") with
    | Some d when Float.is_finite d && d >= 0. -> d
    | Some _ | None -> err 1 "bad header field duration_s"
  in
  (nodes, objects, duration_s)

(* Scanner parse: lines and fields are (lo, hi) ranges of the input
   (Util.Scan), so a 100k-event trace loads without materializing every
   line, field, and trimmed copy as separate strings. Validation order,
   accepted grammar, and every error message match the historical
   split_on_char parser exactly. *)
let parse_exn s =
  let len = String.length s in
  let hend = Util.Scan.line_end s 0 in
  if hend >= len then err 0 "empty file";
  let header = String.sub s 0 hend in
  if
    String.length header < String.length header_prefix
    || String.sub header 0 (String.length header_prefix) <> header_prefix
  then err 0 "not a replica-select trace file";
  let nodes, objects, duration_s = parse_header header in
  let cend = Util.Scan.line_end s (hend + 1) in
  let events = ref [] in
  let pos = ref (cend + 1) in
  let lineno = ref 3 in
  while !pos <= len do
    let lo = !pos in
    let hi = Util.Scan.line_end s lo in
    let lineno_here = !lineno in
    if not (Util.Scan.is_blank s ~lo ~hi) then begin
      let c1 = try String.index_from s lo ',' with Not_found -> len in
      let c2 = if c1 < hi then try String.index_from s (c1 + 1) ',' with Not_found -> len else len in
      let c3 = if c2 < hi then try String.index_from s (c2 + 1) ',' with Not_found -> len else len in
      let c4 = if c3 < hi then try String.index_from s (c3 + 1) ',' with Not_found -> len else len in
      if not (c1 < hi && c2 < hi && c3 < hi && c4 >= hi) then
        err lineno_here "expected 4 comma-separated fields";
      let kind =
        let klo, khi = Util.Scan.trim_bounds s ~lo:(c3 + 1) ~hi in
        if khi - klo = 1 && s.[klo] = 'r' then Trace.Read
        else if khi - klo = 1 && s.[klo] = 'w' then Trace.Write
        else
          err lineno_here
            ("unknown kind " ^ Util.Scan.sub_trimmed s ~lo:(c3 + 1) ~hi)
      in
      let time =
        match Util.Scan.float_field s ~lo ~hi:c1 with
        | Some t -> t
        | None ->
          err lineno_here ("bad time " ^ Util.Scan.sub_trimmed s ~lo ~hi:c1)
      in
      (* Reject poison at the boundary: a NaN timestamp would corrupt
         interval bucketing silently. *)
      if not (Float.is_finite time) then err lineno_here "non-finite time";
      if time < 0. then err lineno_here "negative time";
      let int_field label ~lo ~hi =
        match Util.Scan.int_field s ~lo ~hi with
        | Some n -> n
        | None ->
          err lineno_here ("bad " ^ label ^ " " ^ Util.Scan.sub_trimmed s ~lo ~hi)
      in
      let node = int_field "node" ~lo:(c1 + 1) ~hi:c2 in
      if node < 0 || node >= nodes then
        err lineno_here (Printf.sprintf "node %d out of range" node);
      let obj = int_field "object" ~lo:(c2 + 1) ~hi:c3 in
      if obj < 0 || obj >= objects then
        err lineno_here (Printf.sprintf "object %d out of range" obj);
      events := (time, node, obj, kind) :: !events
    end;
    incr lineno;
    pos := hi + 1
  done;
  (try Trace.of_events ~nodes ~objects ~duration_s (List.rev !events) with
  | Invalid_argument msg -> err 0 msg
  | Failure msg -> err 0 msg)

let parse ?(file = "<trace>") s =
  match parse_exn s with
  | v -> Ok v
  | exception Err (line, msg) -> Error { file; line; msg }

let of_string_result s = parse s

(* Legacy exception-raising entry point, kept for callers (and tests)
   that treat any malformed file as a fatal [Failure]. Delegates to the
   result API and renders the structured error. *)
let of_string s =
  match of_string_result s with
  | Ok v -> v
  | Error e -> failwith (error_to_string e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let load_result ~path =
  match read_file path with
  | s -> parse ~file:path s
  | exception Sys_error msg -> Error { file = path; line = 0; msg }

let load ~path =
  match load_result ~path with
  | Ok v -> v
  | Error e -> failwith (error_to_string e)
