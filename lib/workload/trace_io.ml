let header_prefix = "# replica-select trace v1"

let to_buffer buf t =
  Buffer.add_string buf
    (Printf.sprintf "%s nodes=%d objects=%d duration_s=%.9g\n" header_prefix
       (Trace.node_count t) (Trace.object_count t) (Trace.duration_s t));
  Buffer.add_string buf "time_s,node,object,kind\n";
  Trace.iter
    (fun ~time ~node ~object_id ~kind ->
      Buffer.add_string buf
        (Printf.sprintf "%.9g,%d,%d,%c" time node object_id
           (match kind with Trace.Read -> 'r' | Trace.Write -> 'w'));
      Buffer.add_char buf '\n')
    t

let to_string t =
  let buf = Buffer.create 4096 in
  to_buffer buf t;
  Buffer.contents buf

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* --- parsing ------------------------------------------------------------- *)

type error = Util.Parse_error.t = { file : string; line : int; msg : string }

let pp_error = Util.Parse_error.pp
let error_to_string = Util.Parse_error.to_string

(* Internal parse abort: line 0 means the failure is not tied to a
   specific line (wrong magic, empty file). *)
exception Err of int * string

let err line msg = raise (Err (line, msg))

let header_field line key =
  let marker = key ^ "=" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length line then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> err 1 ("missing header field " ^ key)
  | Some start ->
    let stop =
      match String.index_from_opt line start ' ' with
      | Some j -> j
      | None -> String.length line
    in
    String.sub line start (stop - start)

let parse_header header =
  let int_field key =
    match int_of_string_opt (header_field header key) with
    | Some n when n >= 0 -> n
    | Some _ | None -> err 1 ("bad header field " ^ key)
  in
  let nodes = int_field "nodes" in
  let objects = int_field "objects" in
  let duration_s =
    match float_of_string_opt (header_field header "duration_s") with
    | Some d when Float.is_finite d && d >= 0. -> d
    | Some _ | None -> err 1 "bad header field duration_s"
  in
  (nodes, objects, duration_s)

let parse_exn s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: _column_names :: rest ->
    if
      String.length header < String.length header_prefix
      || String.sub header 0 (String.length header_prefix) <> header_prefix
    then err 0 "not a replica-select trace file";
    let nodes, objects, duration_s = parse_header header in
    let events = ref [] in
    List.iteri
      (fun idx line ->
        let lineno = idx + 3 in
        if String.trim line <> "" then
          match String.split_on_char ',' line with
          | [ time; node; obj; kind ] ->
            let kind =
              match String.trim kind with
              | "r" -> Trace.Read
              | "w" -> Trace.Write
              | other -> err lineno ("unknown kind " ^ other)
            in
            let time =
              match float_of_string_opt (String.trim time) with
              | Some t -> t
              | None -> err lineno ("bad time " ^ String.trim time)
            in
            (* Reject poison at the boundary: a NaN timestamp would
               corrupt interval bucketing silently. *)
            if not (Float.is_finite time) then
              err lineno "non-finite time";
            if time < 0. then err lineno "negative time";
            let int_field label v =
              match int_of_string_opt (String.trim v) with
              | Some n -> n
              | None -> err lineno ("bad " ^ label ^ " " ^ String.trim v)
            in
            let node = int_field "node" node in
            if node < 0 || node >= nodes then
              err lineno (Printf.sprintf "node %d out of range" node);
            let obj = int_field "object" obj in
            if obj < 0 || obj >= objects then
              err lineno (Printf.sprintf "object %d out of range" obj);
            events := (time, node, obj, kind) :: !events
          | _ -> err lineno "expected 4 comma-separated fields")
      rest;
    (try Trace.of_events ~nodes ~objects ~duration_s (List.rev !events) with
    | Invalid_argument msg -> err 0 msg
    | Failure msg -> err 0 msg)
  | _ -> err 0 "empty file"

let parse ?(file = "<trace>") s =
  match parse_exn s with
  | v -> Ok v
  | exception Err (line, msg) -> Error { file; line; msg }

let of_string_result s = parse s

(* Legacy exception-raising entry point, kept for callers (and tests)
   that treat any malformed file as a fatal [Failure]. Delegates to the
   result API and renders the structured error. *)
let of_string s =
  match of_string_result s with
  | Ok v -> v
  | Error e -> failwith (error_to_string e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let load_result ~path =
  match read_file path with
  | s -> parse ~file:path s
  | exception Sys_error msg -> Error { file = path; line = 0; msg }

let load ~path =
  match load_result ~path with
  | Ok v -> v
  | Error e -> failwith (error_to_string e)
