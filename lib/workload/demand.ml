type cell = { node : int; interval : int; count : float }

type t = {
  nodes : int;
  intervals : int;
  objects : int;
  interval_s : float;
  reads : cell array array;
  writes : cell array array;
  weight : float array;
}

let cell_order a b =
  match compare a.interval b.interval with
  | 0 -> compare a.node b.node
  | c -> c

let validate_cells t name cells =
  Array.iteri
    (fun k per_object ->
      ignore k;
      Array.iteri
        (fun i c ->
          if c.node < 0 || c.node >= t.nodes then
            invalid_arg (name ^ ": cell node out of range");
          if c.interval < 0 || c.interval >= t.intervals then
            invalid_arg (name ^ ": cell interval out of range");
          if c.count <= 0. then
            invalid_arg (name ^ ": cell count must be positive");
          if i > 0 && cell_order per_object.(i - 1) c >= 0 then
            invalid_arg (name ^ ": cells must be sorted and unique"))
        per_object)
    cells

let create ~nodes ~intervals ~interval_s ?weight ?writes ~reads () =
  if nodes <= 0 || intervals <= 0 then
    invalid_arg "Demand.create: need positive node and interval counts";
  if interval_s <= 0. then invalid_arg "Demand.create: interval_s must be positive";
  let objects = Array.length reads in
  let weight =
    match weight with
    | None -> Array.make objects 1.
    | Some w ->
      if Array.length w <> objects then
        invalid_arg "Demand.create: weight length must equal object count";
      Array.iter
        (fun x -> if x < 1. then invalid_arg "Demand.create: weights must be >= 1")
        w;
      Array.copy w
  in
  let writes =
    match writes with
    | None -> Array.make objects [||]
    | Some w ->
      if Array.length w <> objects then
        invalid_arg "Demand.create: writes length must equal object count";
      w
  in
  let t = { nodes; intervals; objects; interval_s; reads; writes; weight } in
  validate_cells t "Demand.create reads" reads;
  validate_cells t "Demand.create writes" writes;
  t

let of_trace ?interval_s ~intervals trace =
  if intervals <= 0 then invalid_arg "Demand.of_trace: intervals must be positive";
  let nodes = Trace.node_count trace in
  let objects = Trace.object_count trace in
  let duration = Trace.duration_s trace in
  let interval_s =
    match interval_s with
    | None -> duration /. float_of_int intervals
    | Some s ->
      (* An explicit width lets chunked loads share the exact bucket
         arithmetic of a whole-trace load (Float division of a sliced
         horizon can differ by an ulp). *)
      if s <= 0. then invalid_arg "Demand.of_trace: interval_s must be positive";
      if Float.abs ((s *. float_of_int intervals) -. duration) > 1e-6 *. s then
        invalid_arg "Demand.of_trace: interval_s inconsistent with duration";
      s
  in
  let read_tbl = Hashtbl.create 4096 and write_tbl = Hashtbl.create 64 in
  let bump tbl key =
    match Hashtbl.find_opt tbl key with
    | Some c -> Hashtbl.replace tbl key (c +. 1.)
    | None -> Hashtbl.add tbl key 1.
  in
  Trace.iter
    (fun ~time ~node ~object_id ~kind ->
      let interval =
        min (intervals - 1) (int_of_float (time /. interval_s))
      in
      let key = (object_id, interval, node) in
      match kind with
      | Trace.Read -> bump read_tbl key
      | Trace.Write -> bump write_tbl key)
    trace;
  let collect tbl =
    let per_object = Array.make objects [] in
    Hashtbl.iter
      (fun (k, i, n) c ->
        per_object.(k) <- { node = n; interval = i; count = c } :: per_object.(k))
      tbl;
    Array.map
      (fun cells ->
        let arr = Array.of_list cells in
        Array.sort cell_order arr;
        arr)
      per_object
  in
  create ~nodes ~intervals ~interval_s ~writes:(collect write_tbl)
    ~reads:(collect read_tbl) ()

let extend t delta =
  if Trace.node_count delta <> t.nodes then
    invalid_arg "Demand.extend: node counts differ";
  let duration = Trace.duration_s delta in
  let total_f = Float.round (duration /. t.interval_s) in
  if Float.abs ((total_f *. t.interval_s) -. duration) > 1e-6 *. t.interval_s
  then invalid_arg "Demand.extend: horizon not a whole number of intervals";
  let total = int_of_float total_f in
  if total <= t.intervals then
    invalid_arg "Demand.extend: continuation must add at least one interval";
  let objects = max t.objects (Trace.object_count delta) in
  let read_tbl = Hashtbl.create 1024 and write_tbl = Hashtbl.create 64 in
  let bump tbl key =
    match Hashtbl.find_opt tbl key with
    | Some c -> Hashtbl.replace tbl key (c +. 1.)
    | None -> Hashtbl.add tbl key 1.
  in
  Trace.iter
    (fun ~time ~node ~object_id ~kind ->
      (* Identical arithmetic to [of_trace] on the whole trace (times in
         the chunk are absolute), with a floor at the already-bucketed
         prefix so the appended cells stay in the new intervals. *)
      let interval =
        max t.intervals (min (total - 1) (int_of_float (time /. t.interval_s)))
      in
      let key = (object_id, interval, node) in
      match kind with
      | Trace.Read -> bump read_tbl key
      | Trace.Write -> bump write_tbl key)
    delta;
  let fresh tbl =
    let per_object = Array.make objects [] in
    Hashtbl.iter
      (fun (k, i, n) c ->
        per_object.(k) <- { node = n; interval = i; count = c } :: per_object.(k))
      tbl;
    Array.map
      (fun cells ->
        let arr = Array.of_list cells in
        Array.sort cell_order arr;
        arr)
      per_object
  in
  let grow old fresh_cells =
    Array.init objects (fun k ->
        let old_cells = if k < Array.length old then old.(k) else [||] in
        if Array.length fresh_cells.(k) = 0 then old_cells
        else Array.append old_cells fresh_cells.(k))
  in
  (* New cells all land in intervals >= t.intervals, past every existing
     cell, so per-object ordering is preserved and the O(delta) append
     needs no re-validation of the prefix. *)
  {
    nodes = t.nodes;
    intervals = total;
    objects;
    interval_s = t.interval_s;
    reads = grow t.reads (fresh read_tbl);
    writes = grow t.writes (fresh write_tbl);
    weight =
      (if objects = t.objects then t.weight
       else Array.append t.weight (Array.make (objects - t.objects) 1.));
  }

let read_at t ~node ~interval ~object_id =
  let cells = t.reads.(object_id) in
  let probe = { node; interval; count = 1. } in
  let rec search lo hi =
    if lo > hi then 0.
    else
      let mid = (lo + hi) / 2 in
      match cell_order cells.(mid) probe with
      | 0 -> cells.(mid).count
      | c when c < 0 -> search (mid + 1) hi
      | _ -> search lo (mid - 1)
  in
  search 0 (Array.length cells - 1)

let total_reads t =
  let acc = ref 0. in
  Array.iteri
    (fun k cells ->
      Array.iter (fun c -> acc := !acc +. (c.count *. t.weight.(k))) cells)
    t.reads;
  !acc

let node_read_totals t =
  let totals = Array.make t.nodes 0. in
  Array.iteri
    (fun k cells ->
      Array.iter
        (fun c -> totals.(c.node) <- totals.(c.node) +. (c.count *. t.weight.(k)))
        cells)
    t.reads;
  totals

let object_total t k =
  Array.fold_left (fun acc c -> acc +. c.count) 0. t.reads.(k)

let first_read_interval t k =
  let cells = t.reads.(k) in
  if Array.length cells = 0 then None else Some cells.(0).interval

let last_read_interval t k =
  let cells = t.reads.(k) in
  let n = Array.length cells in
  if n = 0 then None else Some cells.(n - 1).interval

let first_access_of_node t ~object_id ~node =
  let cells = t.reads.(object_id) in
  let best = ref None in
  Array.iter
    (fun c ->
      if c.node = node then
        match !best with
        | None -> best := Some c.interval
        | Some b -> if c.interval < b then best := Some c.interval)
    cells;
  !best

let merge_cells cells =
  (* Combine duplicate (interval, node) cells produced by a node remap. *)
  let arr = Array.copy cells in
  Array.sort cell_order arr;
  let out = ref [] in
  Array.iter
    (fun c ->
      match !out with
      | prev :: rest when cell_order prev c = 0 ->
        out := { prev with count = prev.count +. c.count } :: rest
      | _ -> out := c :: !out)
    arr;
  Array.of_list (List.rev !out)

let remap_nodes t ~mapping =
  if Array.length mapping <> t.nodes then
    invalid_arg "Demand.remap_nodes: mapping length must equal node count";
  Array.iter
    (fun m ->
      if m < 0 || m >= t.nodes then
        invalid_arg "Demand.remap_nodes: mapping target out of range")
    mapping;
  let remap cells =
    merge_cells (Array.map (fun c -> { c with node = mapping.(c.node) }) cells)
  in
  {
    t with
    reads = Array.map remap t.reads;
    writes = Array.map remap t.writes;
  }

let scale_counts t ~factor =
  if factor <= 0. then invalid_arg "Demand.scale_counts: factor must be positive";
  let scale cells = Array.map (fun c -> { c with count = c.count *. factor }) cells in
  { t with reads = Array.map scale t.reads; writes = Array.map scale t.writes }

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>demand: %d nodes, %d intervals (%.0fs each), %d object classes@,\
     total reads (weighted): %.0f@]"
    t.nodes t.intervals t.interval_s t.objects (total_reads t)
