(** Incremental workload state for the online engine.

    Folds a stream of continuation chunks (absolute-time {!Trace} slices,
    see {!Trace.extend}) into a growing {!Demand} via {!Demand.extend} —
    O(chunk) per fold instead of an O(total) [of_trace] rebuild — plus
    cheap running statistics: per-node and per-object read totals,
    first/last access intervals, and a recency-window working-set size.

    Bucketing matches a whole-trace {!Demand.of_trace} exactly: the
    interval width is fixed at creation and every chunk's events carry
    absolute times, so any chunking of the same trace yields the same
    final demand, cell for cell. *)

type t

val create : nodes:int -> interval_s:float -> t
(** Empty state: no intervals yet, fixed bucket width. *)

val extend : t -> Trace.t -> t
(** Fold one continuation chunk. The first chunk establishes the initial
    intervals (its horizon must be a whole number of widths); later
    chunks go through {!Demand.extend}. *)

val demand : t -> Demand.t
(** Cumulative demand. Raises [Invalid_argument] before the first chunk. *)

val intervals : t -> int
(** Intervals ingested so far (0 before the first chunk). *)

val chunks : t -> int
val events : t -> int
val reads : t -> int
val writes : t -> int

val node_reads : t -> float array
(** Per-node cumulative read counts (copy). *)

val object_count : t -> int
val object_reads : t -> int -> float

val first_read_interval : t -> int -> int option
val last_read_interval : t -> int -> int option

val working_set : t -> window:int -> int
(** Objects whose last read falls within the trailing [window] intervals. *)
