(** Interval-bucketed demand: the [read]/[write] counts of the MC-PERF
    model (Table 1 of the paper).

    Demand maps each (node, interval, object) triple to an access count.
    Counts are floats because object aggregation ({!Aggregate}) averages
    patterns across a class of similar objects; each object additionally
    carries a multiplicity [weight] (how many real objects the entry
    represents — 1 for raw demand). Storage is sparse per object, since
    heavy-tailed workloads touch most objects from few nodes and
    intervals. *)

type cell = { node : int; interval : int; count : float }

type t = private {
  nodes : int;
  intervals : int;
  objects : int;
  interval_s : float;  (** evaluation-interval length, seconds *)
  reads : cell array array;  (** per object, cells with positive count *)
  writes : cell array array;  (** per object, may be empty *)
  weight : float array;  (** per object multiplicity, >= 1 *)
}

val create :
  nodes:int ->
  intervals:int ->
  interval_s:float ->
  ?weight:float array ->
  ?writes:cell array array ->
  reads:cell array array ->
  unit ->
  t
(** Validates ranges, positive counts, and cell ordering requirements
    (cells of an object are sorted by (interval, node) and unique). *)

val of_trace : ?interval_s:float -> intervals:int -> Trace.t -> t
(** Bucket a trace into [intervals] equal evaluation intervals. When
    [interval_s] is given it is used as the bucket width instead of
    [duration /. intervals] (it must agree with the horizon to within
    1e-6 of a bucket) — chunked loads pass the globally computed width
    so their bucket arithmetic matches a whole-trace load exactly. *)

val extend : t -> Trace.t -> t
(** [extend t delta] appends a continuation chunk (absolute times, new
    longer horizon — see {!Trace.extend}) in O(delta) time: the chunk's
    events are bucketed with the same arithmetic [of_trace] would use on
    the concatenated trace and appended as new intervals past the
    existing ones. The object universe may grow (new objects get weight
    1). Raises if the chunk's horizon is not a whole number of new
    intervals or node counts differ. *)

val read_at : t -> node:int -> interval:int -> object_id:int -> float
(** Count lookup (0. when absent). O(log cells) per call. *)

val total_reads : t -> float
(** Weighted total read count. *)

val node_read_totals : t -> float array
(** Weighted read count per node (the QoS denominators of constraint (2)). *)

val object_total : t -> int -> float
(** Unweighted read count of one object across all nodes and intervals. *)

val first_read_interval : t -> int -> int option
(** Earliest interval in which the object is read anywhere. *)

val last_read_interval : t -> int -> int option

val first_access_of_node : t -> object_id:int -> node:int -> int option
(** Earliest interval in which [node] itself reads the object. *)

val remap_nodes : t -> mapping:int array -> t
(** Merge demand along a user-to-node assignment (deployment scenario). *)

val scale_counts : t -> factor:float -> t
(** Multiply every read/write count by [factor] (> 0). Used to down-scale
    case studies while preserving popularity shape. *)

val pp_summary : Format.formatter -> t -> unit
