type kind = Read | Write

type t = {
  nodes : int;
  objects : int;
  duration_s : float;
  times : float array;
  event_nodes : int array;
  event_objects : int array;
  kinds : kind array;
}

let length t = Array.length t.times
let duration_s t = t.duration_s
let node_count t = t.nodes
let object_count t = t.objects

let time t i = t.times.(i)
let node t i = t.event_nodes.(i)
let object_id t i = t.event_objects.(i)
let kind t i = t.kinds.(i)

let iter f t =
  for i = 0 to length t - 1 do
    f ~time:t.times.(i) ~node:t.event_nodes.(i) ~object_id:t.event_objects.(i)
      ~kind:t.kinds.(i)
  done

let validate t =
  let n = length t in
  if
    Array.length t.event_nodes <> n
    || Array.length t.event_objects <> n
    || Array.length t.kinds <> n
  then invalid_arg "Trace: field arrays must have equal lengths";
  if t.duration_s <= 0. then invalid_arg "Trace: duration must be positive";
  for i = 0 to n - 1 do
    if t.times.(i) < 0. || t.times.(i) >= t.duration_s then
      invalid_arg "Trace: event time outside [0, duration)";
    if t.event_nodes.(i) < 0 || t.event_nodes.(i) >= t.nodes then
      invalid_arg "Trace: node out of range";
    if t.event_objects.(i) < 0 || t.event_objects.(i) >= t.objects then
      invalid_arg "Trace: object out of range";
    if i > 0 && t.times.(i) < t.times.(i - 1) then
      invalid_arg "Trace: events not sorted by time"
  done;
  t

let of_events ~nodes ~objects ~duration_s events =
  let arr = Array.of_list events in
  Array.sort (fun (t1, _, _, _) (t2, _, _, _) -> compare t1 t2) arr;
  let n = Array.length arr in
  let times = Array.make n 0.
  and event_nodes = Array.make n 0
  and event_objects = Array.make n 0
  and kinds = Array.make n Read in
  Array.iteri
    (fun i (t, nd, k, kd) ->
      times.(i) <- t;
      event_nodes.(i) <- nd;
      event_objects.(i) <- k;
      kinds.(i) <- kd)
    arr;
  validate
    { nodes; objects; duration_s; times; event_nodes; event_objects; kinds }

let create_unsafe ~nodes ~objects ~duration_s ~times ~event_nodes
    ~event_objects ~kinds =
  validate
    { nodes; objects; duration_s; times; event_nodes; event_objects; kinds }

let sub t ~lo ~hi ~duration_s =
  if lo < 0 || hi > length t || lo > hi then
    invalid_arg "Trace.sub: index range out of bounds";
  let n = hi - lo in
  validate
    {
      nodes = t.nodes;
      objects = t.objects;
      duration_s;
      times = Array.sub t.times lo n;
      event_nodes = Array.sub t.event_nodes lo n;
      event_objects = Array.sub t.event_objects lo n;
      kinds = Array.sub t.kinds lo n;
    }

let extend t delta =
  if delta.nodes <> t.nodes then
    invalid_arg "Trace.extend: node counts differ";
  if delta.duration_s <= t.duration_s then
    invalid_arg "Trace.extend: continuation must extend the horizon";
  let n1 = length t in
  if n1 > 0 && length delta > 0 && delta.times.(0) < t.times.(n1 - 1) then
    invalid_arg "Trace.extend: continuation events precede existing ones";
  validate
    {
      nodes = t.nodes;
      objects = max t.objects delta.objects;
      duration_s = delta.duration_s;
      times = Array.append t.times delta.times;
      event_nodes = Array.append t.event_nodes delta.event_nodes;
      event_objects = Array.append t.event_objects delta.event_objects;
      kinds = Array.append t.kinds delta.kinds;
    }

let append t1 t2 =
  if t2.nodes <> t1.nodes then
    invalid_arg "Trace.append: node counts differ";
  let shifted = Array.map (fun x -> x +. t1.duration_s) t2.times in
  validate
    {
      nodes = t1.nodes;
      objects = max t1.objects t2.objects;
      duration_s = t1.duration_s +. t2.duration_s;
      times = Array.append t1.times shifted;
      event_nodes = Array.append t1.event_nodes t2.event_nodes;
      event_objects = Array.append t1.event_objects t2.event_objects;
      kinds = Array.append t1.kinds t2.kinds;
    }

let count_kind t k =
  Array.fold_left (fun acc kd -> if kd = k then acc + 1 else acc) 0 t.kinds

let read_count t = count_kind t Read
let write_count t = count_kind t Write

let remap_nodes t ~mapping =
  if Array.length mapping <> t.nodes then
    invalid_arg "Trace.remap_nodes: mapping length must equal node count";
  Array.iter
    (fun m ->
      if m < 0 || m >= t.nodes then
        invalid_arg "Trace.remap_nodes: mapping target out of range")
    mapping;
  { t with event_nodes = Array.map (fun n -> mapping.(n)) t.event_nodes }
