type t = {
  nodes : int;
  interval_s : float;
  demand : Demand.t option;
  chunks : int;
  events : int;
  reads : int;
  writes : int;
  node_reads : float array;
  object_reads : float array;
  first_read : int array;
  last_read : int array;
}

let create ~nodes ~interval_s =
  if nodes <= 0 then invalid_arg "Incremental.create: need positive nodes";
  if interval_s <= 0. then
    invalid_arg "Incremental.create: interval_s must be positive";
  {
    nodes;
    interval_s;
    demand = None;
    chunks = 0;
    events = 0;
    reads = 0;
    writes = 0;
    node_reads = Array.make nodes 0.;
    object_reads = [||];
    first_read = [||];
    last_read = [||];
  }

let intervals t =
  match t.demand with None -> 0 | Some d -> d.Demand.intervals

let demand t =
  match t.demand with
  | Some d -> d
  | None -> invalid_arg "Incremental.demand: no chunk ingested yet"

let chunks t = t.chunks
let events t = t.events
let reads t = t.reads
let writes t = t.writes
let node_reads t = Array.copy t.node_reads
let object_count t = Array.length t.object_reads
let object_reads t k = t.object_reads.(k)

let last_read_interval t k =
  if t.last_read.(k) < 0 then None else Some t.last_read.(k)

let first_read_interval t k =
  if t.first_read.(k) < 0 then None else Some t.first_read.(k)

let working_set t ~window =
  if window <= 0 then invalid_arg "Incremental.working_set: window must be > 0";
  let horizon = intervals t - window in
  let n = ref 0 in
  Array.iter (fun last -> if last >= horizon && last >= 0 then incr n) t.last_read;
  !n

let grow_int arr n fill =
  if Array.length arr >= n then arr
  else Array.append arr (Array.make (n - Array.length arr) fill)

let grow_float arr n =
  if Array.length arr >= n then arr
  else Array.append arr (Array.make (n - Array.length arr) 0.)

let extend t chunk =
  if Trace.node_count chunk <> t.nodes then
    invalid_arg "Incremental.extend: node counts differ";
  let demand =
    match t.demand with
    | None ->
      let dur = Trace.duration_s chunk in
      let k = int_of_float (Float.round (dur /. t.interval_s)) in
      if k <= 0 then
        invalid_arg "Incremental.extend: chunk shorter than one interval";
      Demand.of_trace ~interval_s:t.interval_s ~intervals:k chunk
    | Some d -> Demand.extend d chunk
  in
  let objects = demand.Demand.objects in
  let node_reads = Array.copy t.node_reads in
  let object_reads = grow_float t.object_reads objects in
  let first_read = grow_int t.first_read objects (-1) in
  let last_read = grow_int t.last_read objects (-1) in
  let total = demand.Demand.intervals in
  let base = intervals t in
  let nreads = ref t.reads and nwrites = ref t.writes in
  Trace.iter
    (fun ~time ~node ~object_id ~kind ->
      match kind with
      | Trace.Write -> incr nwrites
      | Trace.Read ->
        incr nreads;
        let interval =
          max base (min (total - 1) (int_of_float (time /. t.interval_s)))
        in
        node_reads.(node) <- node_reads.(node) +. 1.;
        object_reads.(object_id) <- object_reads.(object_id) +. 1.;
        if first_read.(object_id) < 0 then first_read.(object_id) <- interval;
        last_read.(object_id) <- max last_read.(object_id) interval)
    chunk;
  {
    t with
    demand = Some demand;
    chunks = t.chunks + 1;
    events = t.events + Trace.length chunk;
    reads = !nreads;
    writes = !nwrites;
    node_reads;
    object_reads;
    first_read;
    last_read;
  }
