(** Request traces: time-ordered sequences of object accesses.

    A trace is the event-level view of a workload; it drives the deployed
    heuristics (caching decides on every single access). The interval-level
    view consumed by the MC-PERF model is derived by {!Demand.of_trace}.
    Stored as a structure of arrays to keep multi-million-request traces
    compact. *)

type kind = Read | Write

type t

val length : t -> int
val duration_s : t -> float
(** The trace's nominal duration (its time horizon, not the last event
    time). *)

val node_count : t -> int
val object_count : t -> int

val time : t -> int -> float
val node : t -> int -> int
val object_id : t -> int -> int
val kind : t -> int -> kind

val iter : (time:float -> node:int -> object_id:int -> kind:kind -> unit) -> t -> unit
(** Iterate events in time order. *)

val of_events :
  nodes:int ->
  objects:int ->
  duration_s:float ->
  (float * int * int * kind) list ->
  t
(** Build from [(time, node, object, kind)] events; sorts by time.
    Validates that every event is within bounds and the horizon. *)

val create_unsafe :
  nodes:int ->
  objects:int ->
  duration_s:float ->
  times:float array ->
  event_nodes:int array ->
  event_objects:int array ->
  kinds:kind array ->
  t
(** Zero-copy constructor for generators that produce already-sorted
    struct-of-arrays data. Validates sortedness and bounds. *)

val sub : t -> lo:int -> hi:int -> duration_s:float -> t
(** Event index range [lo, hi) as a trace with the given horizon. Times
    are kept as-is (absolute), so a suffix slice is a continuation chunk
    in the sense of {!extend}, not a standalone trace starting at 0. *)

val extend : t -> t -> t
(** [extend t delta] appends a continuation chunk whose times are
    absolute (already past [t]'s events) and whose [duration_s] is the
    new, longer horizon. Node counts must match; the object universe may
    grow. Inverse of slicing a long trace into prefix + {!sub} suffix. *)

val append : t -> t -> t
(** [append t1 t2] concatenates two standalone traces, shifting [t2]'s
    times by [t1]'s duration. Node counts must match; the object
    universe is the larger of the two. *)

val read_count : t -> int
val write_count : t -> int

val remap_nodes : t -> mapping:int array -> t
(** [remap_nodes t ~mapping] redirects every event from node [n] to
    [mapping.(n)] — used when users of a closed site are assigned to a
    deployed node (deployment scenario of the paper, Section 6.2). The
    node count is unchanged. *)
