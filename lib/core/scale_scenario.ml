type t = {
  name : string;
  system : Topology.System.t;
  demand : Workload.Demand.t;
  tlat_ms : float;
  leaves : int;
}

let cell_compare (a : Workload.Demand.cell) (b : Workload.Demand.cell) =
  match compare a.interval b.interval with
  | 0 -> compare a.node b.node
  | c -> c

(* CDN hierarchy with latencies chosen so a leaf reaches its parent and
   grandparent tiers (and its sibling leaves through the shared parent)
   within the threshold, but never the origin: every leaf read needs a
   replica, which is what makes the sweep nontrivial at scale. *)
let tier_range i =
  if i = 0 then { Topology.Generate.lo_ms = 40.; hi_ms = 50. }
  else if i = 1 then { Topology.Generate.lo_ms = 25.; hi_ms = 35. }
  else { Topology.Generate.lo_ms = 15.; hi_ms = 25. }

let default_tlat_ms = 60.

let make ?(seed = 7) ?(fanouts = [ 4; 7; 7 ]) ?(objects = 10_000)
    ?(intervals = 2) () =
  if objects < 1 then invalid_arg "Scale_scenario.make: objects must be >= 1";
  if intervals < 1 then
    invalid_arg "Scale_scenario.make: intervals must be >= 1";
  let rng = Util.Prng.create ~seed in
  let tier_latency = List.mapi (fun i _ -> tier_range i) fanouts in
  let graph = Topology.Generate.cdn_hierarchy ~rng ~fanouts ~tier_latency () in
  let system = Topology.System.make ~origin:0 graph in
  let nodes = Topology.System.node_count system in
  let nleaves = List.fold_left ( * ) 1 fanouts in
  let first_leaf = nodes - nleaves in
  (* Zipf-style popularity with integer counts. The handful of head
     objects are read from a contiguous run of leaves in every interval;
     tail objects are read once or a few times from a single leaf, with
     the count quantized to a power of two and the interval derived from
     the leaf — so the tail collapses into O(leaves) distinct
     (masks, cells) patterns, the structure {!Mcperf.Bundle} exploits. *)
  let head_scale = 160. in
  let reads =
    Array.init objects (fun k ->
        let raw = max 1 (int_of_float (head_scale /. float_of_int (k + 1))) in
        if raw >= 8 then begin
          let spread = min 6 (max 2 (raw / 8)) in
          let start = Util.Prng.int rng nleaves in
          let per =
            float_of_int (max 1 (raw / (spread * intervals)))
          in
          let cells = ref [] in
          for i = 0 to intervals - 1 do
            for j = 0 to spread - 1 do
              let leaf = first_leaf + ((start + j) mod nleaves) in
              cells :=
                { Workload.Demand.node = leaf; interval = i; count = per }
                :: !cells
            done
          done;
          let a = Array.of_list !cells in
          Array.sort cell_compare a;
          a
        end
        else begin
          (* power-of-two quantization: 1, 2 or 4 *)
          let q = if raw >= 4 then 4 else if raw >= 2 then 2 else 1 in
          let leaf = first_leaf + Util.Prng.int rng nleaves in
          let i = leaf mod intervals in
          [| { Workload.Demand.node = leaf; interval = i;
               count = float_of_int q } |]
        end)
  in
  let demand =
    Workload.Demand.create ~nodes ~intervals ~interval_s:3600. ~reads ()
  in
  {
    name = Printf.sprintf "cdn-%dn-%do" nodes objects;
    system;
    demand;
    tlat_ms = default_tlat_ms;
    leaves = nleaves;
  }

let qos_spec t ~fraction =
  Mcperf.Spec.make ~system:t.system ~demand:t.demand
    ~goal:(Mcperf.Spec.Qos { tlat_ms = t.tlat_ms; fraction })
    ()

let node_count t = Topology.System.node_count t.system
let object_count t = t.demand.Workload.Demand.objects
