(** The scale scenario family: CDN hierarchies at 200+ nodes with
    heavy-tailed demand over 10k+ objects.

    The paper's case study stops at 20 nodes / 1000 objects; this family
    is the substrate for pushing fig2-style sweeps 10–100x further
    through the Lagrangian decomposition route ({!Bounds.Lagrangian}).
    Latencies are chosen so leaves are never origin-covered (every leaf
    read needs a replica), and the Zipf tail is quantized so that vast
    numbers of objects share identical permission masks and read cells —
    the structure {!Mcperf.Bundle} collapses. All demand weights are 1,
    so the family is {e homogeneous}: the bundled Lagrangian bound equals
    the unbundled one exactly (bit for bit), which the scale gates in
    [scripts/check.sh] and [bench scale] assert. *)

type t = {
  name : string;
  system : Topology.System.t;
  demand : Workload.Demand.t;
  tlat_ms : float;  (** QoS latency threshold of {!qos_spec} *)
  leaves : int;  (** size of the bottom tier (where all reads originate) *)
}

val default_tlat_ms : float

val make :
  ?seed:int ->
  ?fanouts:int list ->
  ?objects:int ->
  ?intervals:int ->
  unit ->
  t
(** Deterministic in [seed] (default 7). [fanouts] (default [[4; 7; 7]],
    i.e. 229 nodes) sets one tier fan-out per level below the origin;
    [objects] defaults to 10_000 and [intervals] to 2. *)

val qos_spec : t -> fraction:float -> Mcperf.Spec.t
(** The MC-PERF spec at one QoS point (default unit alpha/beta costs). *)

val node_count : t -> int
val object_count : t -> int
