(** The tree scenario family: MC-PERF instances on tree topologies, built
    to sit inside {!Bounds.Tree_dp}'s proven-exact scope so every cell of
    a tree sweep carries a zero gap by construction.

    Three shapes: complete [fanout]-ary trees, uniform random-attachment
    trees (stars through paths), and CDN-like hierarchies with fast
    backbone tiers above slow edge tiers. The origin is always node 0
    (the tree root). Demand is single-interval with per-node object
    shares bounded away from zero, which keeps the DP's atomicity
    condition satisfied at every fraction in {!default_fractions};
    [restrict_sites] adds heterogeneous storage as permitted sets while
    preserving feasibility (only origin-covered nodes can lose hosting
    rights).

    Used by [experiments validate --family tree] (DP vs LP vs Lagrangian
    vs heuristics cross-checks), the tree figure, [bench tree] and the
    differential tests. *)

type shape =
  | Balanced of { fanout : int; depth : int }
  | Random of { nodes : int }
  | Cdn of { fanouts : int list }

val shape_name : shape -> string

type t = {
  name : string;  (** stable identifier: shape, seed, site restriction *)
  shape : shape;
  system : Topology.System.t;
  spec : Mcperf.Spec.t;  (** QoS goal at the construction fraction *)
  placeable : bool array option;
      (** permitted replica sites; [None] = everywhere *)
}

val default_tlat_ms : float
(** 250 ms: one 100–200 ms hop is always covered by the origin, two
    usually are not, so instances mix origin-covered and replica-needing
    demand. *)

val default_fraction : float

val default_fractions : float list
(** Sweep fractions at which the family's atomicity margin holds. *)

val make :
  ?seed:int ->
  ?objects:int ->
  ?tlat_ms:float ->
  ?fraction:float ->
  ?latency:Topology.Generate.latency_range ->
  ?restrict_sites:bool ->
  shape ->
  t
(** Deterministic in all arguments. [objects] defaults to 6 (minimum 3,
    needed for the atomicity margin); [restrict_sites] defaults to
    false. Requires a shape with at least two nodes. *)

val family : ?seed:int -> count:int -> unit -> t list
(** [count] instances cycling through the shapes, varying size, latency
    threshold and site restriction deterministically. Instance [i] uses
    seed [seed + i]. *)
