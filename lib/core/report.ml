type point = { x : float; cost : float option }

type series = { label : string; points : point list }

let series_of ~label points =
  { label; points = List.map (fun (x, cost) -> { x; cost }) points }

let xs_of series =
  let xs =
    List.concat_map (fun s -> List.map (fun p -> p.x) s.points) series
  in
  List.sort_uniq compare xs

let cost_at s x =
  List.find_map
    (fun p -> if Float.abs (p.x -. x) < 1e-12 then Some p.cost else None)
    s.points

let format_cost = function
  | Some (Some c) ->
    if Float.abs c >= 10_000. then Printf.sprintf "%.3gk" (c /. 1000.)
    else Printf.sprintf "%.4g" c
  | Some None -> "-"
  | None -> ""

let print_figure ?(oc = stdout) ~title ~xlabel series =
  let xs = xs_of series in
  Printf.fprintf oc "\n=== %s ===\n" title;
  let col_width =
    List.fold_left (fun acc s -> max acc (String.length s.label)) 12 series + 2
  in
  let pad s = Printf.sprintf "%-*s" col_width s in
  Printf.fprintf oc "%-12s" xlabel;
  List.iter (fun s -> output_string oc (pad s.label)) series;
  output_char oc '\n';
  List.iter
    (fun x ->
      Printf.fprintf oc "%-12.5g" x;
      List.iter
        (fun s -> output_string oc (pad (format_cost (cost_at s x))))
        series;
      output_char oc '\n')
    xs;
  flush oc

let print_selection ?(oc = stdout) ~title (sel : Methodology.selection) =
  Printf.fprintf oc "\n=== %s ===\n" title;
  Printf.fprintf oc "general lower bound: %.1f\n" sel.Methodology.general_bound;
  List.iter
    (fun (r : Methodology.ranked) ->
      let b = r.Methodology.result in
      if b.Bounds.Pipeline.feasible then
        Printf.fprintf oc "  %-34s bound %12.1f%s%s\n"
          b.Bounds.Pipeline.class_name b.Bounds.Pipeline.lower_bound
          (match b.Bounds.Pipeline.gap with
          | Some g -> Printf.sprintf "  (rounding gap %4.1f%%)" (100. *. g)
          | None -> "")
          (match r.Methodology.deployable with
          | Some h -> Printf.sprintf "  -> deploy %s" h
          | None -> "")
      else
        Printf.fprintf oc "  %-34s infeasible (max QoS %.5f)\n"
          b.Bounds.Pipeline.class_name b.Bounds.Pipeline.max_feasible_qos)
    sel.Methodology.ranking;
  (match sel.Methodology.chosen with
  | Some c ->
    Printf.fprintf oc "chosen class: %s%s\n"
      c.Methodology.result.Bounds.Pipeline.class_name
      (if sel.Methodology.near_general then
         " (close to the general bound: no class can do much better)"
       else " (note: far from the general bound; consider other classes)")
  | None -> Printf.fprintf oc "no feasible class\n");
  flush oc

let print_deployment ?(oc = stdout) (d : Methodology.deployment) =
  Printf.fprintf oc "\n=== deployment plan ===\n";
  Printf.fprintf oc "open nodes (%d): %s\n"
    (List.length d.Methodology.open_nodes)
    (String.concat ", " (List.map string_of_int d.Methodology.open_nodes));
  Printf.fprintf oc "phase-1 bound (incl. opening costs): %.1f\n"
    d.Methodology.phase1_bound;
  Printf.fprintf oc "site assignment: %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.mapi (fun n a -> Printf.sprintf "%d->%d" n a)
             d.Methodology.assignment)));
  flush oc

type timing_row = {
  task : string;
  x : float;
  wall_s : float;
  solver : string;
  iterations : int;
  quality : string;
}

let timing_of_stats stats =
  List.map
    (fun (s : Bounds.Pipeline.task_stat) ->
      {
        task = s.Bounds.Pipeline.label;
        x = s.Bounds.Pipeline.x;
        wall_s = s.Bounds.Pipeline.wall_s;
        solver = Bounds.Pipeline.path_label s.Bounds.Pipeline.cell_path;
        iterations = s.Bounds.Pipeline.iterations;
        quality = Bounds.Pipeline.quality_label s.Bounds.Pipeline.cell_quality;
      })
    stats

let print_timing ?(oc = stdout) ~title ~jobs ~elapsed_s rows =
  Printf.fprintf oc "\n--- sweep timing: %s ---\n" title;
  let col_width =
    List.fold_left (fun acc r -> max acc (String.length r.task)) 12 rows + 2
  in
  Printf.fprintf oc "%-*s %-10s %10s %10s  %-16s %s\n" col_width "task" "x"
    "wall(s)" "iters" "solver" "quality";
  List.iter
    (fun r ->
      Printf.fprintf oc "%-*s %-10.5g %10.3f %10d  %-16s %s\n" col_width
        r.task r.x r.wall_s r.iterations r.solver r.quality)
    rows;
  let total = List.fold_left (fun acc r -> acc +. r.wall_s) 0. rows in
  Printf.fprintf oc
    "%d tasks  task-wall %.2fs  elapsed %.2fs  speedup %.2fx  jobs %d\n"
    (List.length rows) total elapsed_s
    (if elapsed_s > 0. then total /. elapsed_s else 1.)
    jobs;
  flush oc

let csv_of_figure series =
  let xs = xs_of series in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "qos";
  List.iter
    (fun s ->
      Buffer.add_char buf ',';
      Buffer.add_string buf s.label)
    series;
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%.6g" x);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          match cost_at s x with
          | Some (Some c) -> Buffer.add_string buf (Printf.sprintf "%.6g" c)
          | Some None | None -> Buffer.add_string buf "")
        series;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf
