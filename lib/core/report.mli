(** Plain-text rendering of experiment series and methodology output.

    The experiment binaries print the same rows/series as the paper's
    figures; a series maps the QoS sweep to costs, with [None] marking
    goals the class cannot meet (e.g. local caching above its cold-miss
    ceiling on WEB). *)

type point = { x : float; cost : float option }

type series = { label : string; points : point list }

val series_of : label:string -> (float * float option) list -> series

val print_figure :
  ?oc:out_channel -> title:string -> xlabel:string -> series list -> unit
(** Aligned-column table: one row per x value, one column per series;
    infeasible points print as ["-"]. *)

val print_selection :
  ?oc:out_channel -> title:string -> Methodology.selection -> unit
(** The ranked class table of the selection methodology. *)

val print_deployment : ?oc:out_channel -> Methodology.deployment -> unit

val csv_of_figure : series list -> string
(** Machine-readable dump (one line per x value). *)

(** {2 Sweep timing}

    Every parallel-sweep task reports its own wall-clock (and solver
    iteration count, for LP cells); the driver aggregates them into a
    per-sweep table so a designer can see where the compute budget went
    and what the worker pool bought. *)

type timing_row = {
  task : string;  (** class label or heuristic name *)
  x : float;  (** the swept goal point *)
  wall_s : float;  (** task wall-clock inside its worker *)
  solver : string;  (** ["simplex"], ["pdhg"], ["sim"], ... *)
  iterations : int;  (** 0 when not iteration-based *)
  quality : string;
      (** {!Bounds.Pipeline.quality_label} of the cell's stop quality;
          ["-"] for rows with no LP bound (deployed-heuristic sims) *)
}

val timing_of_stats : Bounds.Pipeline.task_stat list -> timing_row list
(** Adapt the bound sweep's per-cell stats to timing rows. *)

val print_timing :
  ?oc:out_channel ->
  title:string ->
  jobs:int ->
  elapsed_s:float ->
  timing_row list ->
  unit
(** Aligned table of the rows followed by a summary line: task count,
    summed task wall-clock, parent-side elapsed wall-clock, the implied
    speedup (sum / elapsed), and the worker count. *)
