type shape =
  | Balanced of { fanout : int; depth : int }
  | Random of { nodes : int }
  | Cdn of { fanouts : int list }

let shape_name = function
  | Balanced { fanout; depth } -> Printf.sprintf "balanced-f%dd%d" fanout depth
  | Random { nodes } -> Printf.sprintf "random-n%d" nodes
  | Cdn { fanouts } ->
    Printf.sprintf "cdn-%s"
      (String.concat "x" (List.map string_of_int fanouts))

type t = {
  name : string;
  shape : shape;
  system : Topology.System.t;
  spec : Mcperf.Spec.t;
  placeable : bool array option;
}

(* Per-node object counts and read volumes are chosen so the atomicity
   condition of Tree_dp.of_spec holds at every swept fraction: a node
   reads 2-3 of the [objects] objects with counts in [30, 60], so the
   smallest per-object share of a node's reads is 30/150 = 0.2, safely
   above the 1 - fraction uncovered allowance for every fraction >= 0.85.
   One evaluation interval, unit weights — exactly the DP's scope. *)
let demand_of ~rng ~nodes ~objects =
  if objects < 3 then invalid_arg "Tree_scenario: need at least 3 objects";
  let reads = Array.make objects [] in
  let ids = Array.init objects Fun.id in
  for v = 1 to nodes - 1 do
    let wanted = 2 + Util.Prng.int rng 2 in
    let pool = Array.copy ids in
    Util.Prng.shuffle rng pool;
    for i = 0 to wanted - 1 do
      let k = pool.(i) in
      let count = float_of_int (30 + Util.Prng.int rng 31) in
      reads.(k) <-
        { Workload.Demand.node = v; interval = 0; count } :: reads.(k)
    done
  done;
  (* Cells were appended per node in ascending id order at a single
     interval, so reversing restores the required (interval, node) sort. *)
  let reads = Array.map (fun cells -> Array.of_list (List.rev cells)) reads in
  Workload.Demand.create ~nodes ~intervals:1 ~interval_s:3600. ~reads ()

let default_tlat_ms = 250.
let default_fraction = 0.95
let default_fractions = [ 0.95; 0.99; 0.999 ]

let make ?(seed = 11) ?(objects = 6) ?(tlat_ms = default_tlat_ms)
    ?(fraction = default_fraction)
    ?(latency = Topology.Generate.default_hop_latency)
    ?(restrict_sites = false) shape =
  let rng = Util.Prng.create ~seed in
  let graph =
    match shape with
    | Balanced { fanout; depth } ->
      Topology.Generate.balanced_tree ~rng ~fanout ~depth ~latency
    | Random { nodes } -> Topology.Generate.random_tree ~rng ~nodes ~latency
    | Cdn { fanouts } ->
      (* Fast backbone links up high, the given (slow) range at the
         edge: the heterogeneous-latency axis of the family. *)
      let tiers = List.length fanouts in
      let tier_latency =
        List.mapi
          (fun i _ ->
            if i < tiers - 1 then
              { Topology.Generate.lo_ms = 40.; hi_ms = 90. }
            else latency)
          fanouts
      in
      Topology.Generate.cdn_hierarchy ~rng ~fanouts ~tier_latency ()
  in
  let nodes = Topology.Graph.node_count graph in
  if nodes < 2 then
    invalid_arg "Tree_scenario.make: need at least two nodes for demand";
  let system = Topology.System.make ~origin:0 graph in
  let demand = demand_of ~rng ~nodes ~objects in
  let spec =
    Mcperf.Spec.make ~system ~demand
      ~goal:(Mcperf.Spec.Qos { tlat_ms; fraction })
      ()
  in
  let placeable =
    if not restrict_sites then None
    else
      (* Heterogeneous storage as permitted sets. Nodes the origin already
         covers lose hosting rights with probability ~0.4; nodes beyond
         the threshold always keep them, so every uncovered demand can at
         worst be served by a replica at its own node and the instance
         stays feasible by construction. *)
      Some
        (Array.init nodes (fun v ->
             system.Topology.System.latency.(v).(0) > tlat_ms
             || Util.Prng.float rng 1. >= 0.4))
  in
  {
    name = Printf.sprintf "%s-s%d%s" (shape_name shape) seed
        (if restrict_sites then "-sites" else "");
    shape;
    system;
    spec;
    placeable;
  }

let family ?(seed = 11) ~count () =
  List.init count (fun i ->
      let shape =
        match i mod 5 with
        | 0 -> Balanced { fanout = 2; depth = 3 }
        | 1 -> Balanced { fanout = 3; depth = 2 }
        | 2 -> Random { nodes = 8 + (i * 7 mod 17) }
        | 3 -> Cdn { fanouts = [ 2; 3 ] }
        | _ -> Random { nodes = 20 + (i mod 13) }
      in
      let tlat_ms = if i mod 4 = 1 then 180. else default_tlat_ms in
      make ~seed:(seed + i) ~tlat_ms ~restrict_sites:(i mod 3 = 2) shape)
