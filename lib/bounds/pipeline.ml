type solver =
  | Auto
  | Exact_simplex
  | First_order of Lp.Pdhg.options

type solve_path =
  | Path_presolve
  | Path_tree_dp
  | Path_simplex
  | Path_pdhg
  | Path_pdhg_retry
  | Path_simplex_fallback
  | Path_infeasible

let all_paths =
  [
    Path_presolve;
    Path_tree_dp;
    Path_simplex;
    Path_pdhg;
    Path_pdhg_retry;
    Path_simplex_fallback;
    Path_infeasible;
  ]

let path_label = function
  | Path_presolve -> "presolve"
  | Path_tree_dp -> "tree-dp"
  | Path_simplex -> "simplex"
  | Path_pdhg -> "pdhg"
  | Path_pdhg_retry -> "pdhg-retry"
  | Path_simplex_fallback -> "simplex-fallback"
  | Path_infeasible -> "infeasible"

type quality = Exact | Converged | Iter_budget | Time_budget

let all_qualities = [ Exact; Converged; Iter_budget; Time_budget ]

let quality_label = function
  | Exact -> "exact"
  | Converged -> "converged"
  | Iter_budget -> "iter-budget"
  | Time_budget -> "time-budget"

type certificate =
  | Dual of float array
  | Farkas of float array

type t = {
  class_name : string;
  feasible : bool;
  lower_bound : float;
  rounded : Rounding.Round.result option;
  gap : float option;
  exact : bool;
  lp_iterations : int;
  vars : int;
  rows : int;
  max_feasible_qos : float;
  solve_path : solve_path;
  quality : quality;
  rel_gap : float;
  certificate : certificate option;
}

let src = Logs.Src.create "bounds" ~doc:"lower-bound pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

(* Observability instruments: one counter per fallback-chain leg, so the
   metrics snapshot shows at a glance how cells were obtained. *)
let m_paths =
  lazy
    (List.map
       (fun p -> (p, Obs.Metrics.counter ("pipeline.path." ^ path_label p)))
       all_paths)

let count_path p = Obs.Metrics.incr (List.assoc p (Lazy.force m_paths))
let m_cells = lazy (Obs.Metrics.counter "pipeline.cells")
let m_fallbacks = lazy (Obs.Metrics.counter "pipeline.fallback_hops")

let default_pdhg_options =
  { Lp.Pdhg.default_options with max_iters = 40_000; rel_tol = 1e-4 }

let simplex_size_limit = 260

let infeasible_result ?ray cls worst_qos =
  {
    class_name = cls.Mcperf.Classes.name;
    feasible = false;
    lower_bound = infinity;
    rounded = None;
    gap = None;
    exact = true;
    lp_iterations = 0;
    vars = 0;
    rows = 0;
    max_feasible_qos = worst_qos;
    solve_path = Path_infeasible;
    quality = Exact;
    rel_gap = 0.;
    certificate = Option.map (fun r -> Farkas r) ray;
  }

(* A verified Farkas ray for an infeasible model, expressed on the
   Ge-normalized *full* model problem (so verification needs no presolve
   replay). The single-row scan covers the MC-PERF pattern — a QoS row
   demanding more coverage than its variables' box allows — without
   running a solver; the phase-1 simplex ray is the completeness fallback
   at exact-solver scale. Only rays accepted by [check_farkas] are
   attached. *)
let farkas_of problem =
  let norm = Lp.Problem.normalize_ge problem in
  let verified ray =
    if Lp.Certificate.check_farkas norm ~ray then Some ray else None
  in
  match Lp.Certificate.row_farkas norm with
  | Some ray -> verified ray
  | None ->
    if
      Lp.Problem.nvars norm <= simplex_size_limit
      && Lp.Problem.nrows norm <= simplex_size_limit
    then
      match Lp.Simplex.solve_certified norm with
      | Lp.Simplex.Cert_infeasible { ray } -> verified ray
      | Lp.Simplex.Cert_optimal _ | Lp.Simplex.Cert_unbounded -> None
    else None

(* --- shared LP-relaxation solve ----------------------------------------- *)

(* One solve of a model's LP relaxation, used by [compute] and both sweep
   drivers: presolve, pick the solver on the *original* dimensions (so the
   choice is stable across reductions), solve the reduced problem, and map
   the point and the certified bound back through [restore]/[offset].
   [reuse] threads a prepared PDHG image across structurally identical
   sweep models; [warm] carries reduced-space iterates between consecutive
   QoS fractions.

   The PDHG leg is a supervised fallback chain. A solve is *healthy* when
   every reported quantity is finite and an independent re-evaluation of
   [Certificate.dual_bound] at the best dual iterate reproduces the bound
   the solver claims — anything else (NaN-poisoned inputs, a diverged
   iterate, a cap-hit that produced no usable certificate) triggers a
   clean cold re-solve of the unpoisoned problem, and if that is unhealthy
   too, an exact simplex rescue. The first attempt and the clean retry run
   from the same prepared structure and the same warm start, so whenever
   the input itself was sound the retry reproduces the primary attempt's
   iterates exactly and recovery is invisible in the results. *)
(* A feasible solve's payload: the original-space point, the certified
   bound (presolve offset folded in), how it was obtained and its
   witness. [dual] is the certificate on the Ge-normalized presolve-
   reduced problem — the space the bound was computed in; [certify]
   replays the deterministic presolve to verify it. *)
type solution = {
  point : float array;
  bound : float;
  exact_sol : bool;
  iterations : int;
  sol_quality : quality;
  sol_rel_gap : float;
  dual : float array option;
}

type relaxation = {
  outcome : solution option;  (* [None] when the LP is infeasible *)
  prep : Lp.Pdhg.prepared option;  (* for the next cell's [reuse] *)
  warm : (float array * float array) option;  (* reduced-space iterates *)
  path : solve_path;
  infeasible_ray : float array option;
      (* verified Farkas ray on the normalized full problem when the LP
         (as opposed to the oracle) declared the cell infeasible *)
}

let no_solution ?ray () =
  {
    outcome = None;
    prep = None;
    warm = None;
    path = Path_infeasible;
    infeasible_ray = ray;
  }

(* Independent health check of a PDHG outcome: all reported scalars and
   the primal point finite, and the certified bound reproducible from the
   dual iterate alone. [Certificate.dual_bound] is valid for *any* y, so
   a finite, matching re-evaluation means the bound stands regardless of
   what happened to the iterates. *)
let pdhg_healthy prep (out : Lp.Pdhg.outcome) =
  Float.is_finite out.Lp.Pdhg.best_bound
  && Float.is_finite out.Lp.Pdhg.primal_objective
  && Float.is_finite out.Lp.Pdhg.primal_infeasibility
  && Array.for_all Float.is_finite out.Lp.Pdhg.x
  &&
  let recheck =
    Lp.Certificate.dual_bound
      (Lp.Pdhg.prepared_problem prep)
      ~y:out.Lp.Pdhg.best_y
  in
  Float.is_finite recheck
  && Float.abs (recheck -. out.Lp.Pdhg.best_bound)
     <= 1e-9 *. (1. +. Float.abs out.Lp.Pdhg.best_bound)

let solve_relaxation_raw ?(solver = Auto) ?reuse ?warm ?warm_full
    ?(inject_nan = false) ?deadline_s problem =
  let vars = Lp.Problem.nvars problem and rows = Lp.Problem.nrows problem in
  let pre = Lp.Presolve.run problem in
  match pre.Lp.Presolve.status with
  | `Infeasible -> no_solution ?ray:(farkas_of problem) ()
  | `Unchanged | `Reduced ->
    let red = pre.Lp.Presolve.reduced in
    if Lp.Problem.nvars red = 0 then
      (* Presolve solved the whole LP: the fixed assignment is the unique
         feasible point, hence optimal. The all-zero dual vector is its
         certificate — the reduced problem has no variables left, so the
         dual bound is 0 and the recorded bound is pure offset. *)
      {
        outcome =
          Some
            {
              point = pre.Lp.Presolve.restore [||];
              bound = pre.Lp.Presolve.offset;
              exact_sol = true;
              iterations = 0;
              sol_quality = Exact;
              sol_rel_gap = 0.;
              dual = Some (Array.make (Lp.Problem.nrows red) 0.);
            };
        prep = None;
        warm = None;
        path = Path_presolve;
        infeasible_ray = None;
      }
    else begin
      let use_simplex =
        match solver with
        | Exact_simplex -> true
        | First_order _ -> false
        | Auto -> vars <= simplex_size_limit && rows <= simplex_size_limit
      in
      let simplex_solution x objective dual =
        {
          point = pre.Lp.Presolve.restore x;
          bound = objective +. pre.Lp.Presolve.offset;
          exact_sol = true;
          iterations = 0;
          sol_quality = Exact;
          sol_rel_gap = 0.;
          dual = Some dual;
        }
      in
      if use_simplex then
        match Lp.Simplex.solve_certified red with
        | Lp.Simplex.Cert_optimal { x; objective; dual } ->
          {
            outcome = Some (simplex_solution x objective dual);
            prep = None;
            warm = None;
            path = Path_simplex;
            infeasible_ray = None;
          }
        | Lp.Simplex.Cert_infeasible _ ->
          (* The simplex ray lives in reduced-row space; re-derive one on
             the full problem so the certificate verifies without a
             presolve replay. *)
          no_solution ?ray:(farkas_of problem) ()
        | Lp.Simplex.Cert_unbounded ->
          invalid_arg "Bounds.Pipeline: unbounded MC-PERF relaxation"
      else begin
        let options =
          match solver with
          | First_order o -> o
          | Auto | Exact_simplex -> default_pdhg_options
        in
        (* The sweep governor's per-cell budget caps the solver deadline;
           an already-exhausted budget still runs the checkpointed first
           block, so every cell returns some valid bound. *)
        let options =
          match deadline_s with
          | Some d when Float.is_finite d ->
            {
              options with
              Lp.Pdhg.deadline_s =
                Float.min options.Lp.Pdhg.deadline_s (Float.max 0. d);
            }
          | Some _ | None -> options
        in
        let x0, y0 =
          match warm with
          | Some (x0, y0)
            when Array.length x0 = Lp.Problem.nvars red
                 && Array.length y0 = Lp.Problem.nrows red ->
            (Some x0, Some y0)
          | Some _ | None -> (
            (* A full-space primal warm start (e.g. last epoch's solution
               lifted onto this epoch's model) projects through the
               presolve variable map; eliminated variables drop out, new
               ones start at the box corner like a cold start. The dual
               starts cold — any dual iterate certifies a valid bound, so
               warm starts can only change speed, never validity. *)
            match warm_full with
            | Some xf when Array.length xf = Lp.Problem.nvars problem ->
              let x0 = Array.make (Lp.Problem.nvars red) 0. in
              Array.iteri
                (fun j rj -> if rj >= 0 then x0.(rj) <- xf.(j))
                pre.Lp.Presolve.var_map;
              (Some x0, None)
            | Some _ | None -> (None, None))
        in
        let attempt ~poisoned =
          let target =
            if poisoned && Lp.Problem.nrows red > 0 then
              Lp.Problem.with_rhs red [ (0, Float.nan) ]
            else red
          in
          let prep = Lp.Pdhg.prepare ?reuse target in
          (prep, Lp.Pdhg.solve_prepared ~options ?x0 ?y0 prep)
        in
        let accept path prep (out : Lp.Pdhg.outcome) =
          {
            outcome =
              Some
                {
                  point = pre.Lp.Presolve.restore out.Lp.Pdhg.x;
                  bound = out.Lp.Pdhg.best_bound +. pre.Lp.Presolve.offset;
                  exact_sol = false;
                  iterations = out.Lp.Pdhg.iterations;
                  sol_quality =
                    (match out.Lp.Pdhg.stop with
                    | Lp.Pdhg.Converged -> Converged
                    | Lp.Pdhg.Deadline -> Time_budget
                    | Lp.Pdhg.Budget -> Iter_budget);
                  sol_rel_gap = out.Lp.Pdhg.rel_gap;
                  dual = Some out.Lp.Pdhg.best_y;
                };
            prep = Some prep;
            warm = Some (out.Lp.Pdhg.x, out.Lp.Pdhg.y);
            path;
            infeasible_ray = None;
          }
        in
        let prep1, out1 = attempt ~poisoned:inject_nan in
        if pdhg_healthy prep1 out1 then accept Path_pdhg prep1 out1
        else begin
          Log.warn (fun f ->
              f
                "pdhg solve unhealthy (bound %g, infeas %g, %d iters): \
                 retrying cold on a clean rebuild"
                out1.Lp.Pdhg.best_bound out1.Lp.Pdhg.primal_infeasibility
                out1.Lp.Pdhg.iterations);
          Obs.Metrics.incr (Lazy.force m_fallbacks);
          if Obs.Config.tracing () then
            Obs.Trace.event "pipeline.pdhg_unhealthy"
              ~attrs:
                [
                  ("cause", Obs.Trace.Str "primary");
                  ("bound", Obs.Trace.Float out1.Lp.Pdhg.best_bound);
                  ("pinf", Obs.Trace.Float out1.Lp.Pdhg.primal_infeasibility);
                  ("iters", Obs.Trace.Int out1.Lp.Pdhg.iterations);
                ];
          let prep2, out2 = attempt ~poisoned:false in
          if pdhg_healthy prep2 out2 then accept Path_pdhg_retry prep2 out2
          else begin
            Log.warn (fun f ->
                f "pdhg retry unhealthy: rescuing with exact simplex");
            Obs.Metrics.incr (Lazy.force m_fallbacks);
            if Obs.Config.tracing () then
              Obs.Trace.event "pipeline.pdhg_unhealthy"
                ~attrs:
                  [
                    ("cause", Obs.Trace.Str "retry");
                    ("bound", Obs.Trace.Float out2.Lp.Pdhg.best_bound);
                    ("pinf", Obs.Trace.Float out2.Lp.Pdhg.primal_infeasibility);
                    ("iters", Obs.Trace.Int out2.Lp.Pdhg.iterations);
                  ];
            match Lp.Simplex.solve_certified red with
            | Lp.Simplex.Cert_optimal { x; objective; dual } ->
              {
                outcome = Some (simplex_solution x objective dual);
                prep = Some prep2;
                warm = None;
                path = Path_simplex_fallback;
                infeasible_ray = None;
              }
            | Lp.Simplex.Cert_infeasible _ ->
              no_solution ?ray:(farkas_of problem) ()
            | Lp.Simplex.Cert_unbounded ->
              invalid_arg "Bounds.Pipeline: unbounded MC-PERF relaxation"
          end
        end
      end
    end

(* Instrumented entry point: a span around the whole fallback chain,
   tagged with the leg that finally produced the bound. The span and
   path counters never touch the numbers — the raw chain above is the
   entire computation. *)
let solve_relaxation ?solver ?reuse ?warm ?warm_full ?inject_nan ?deadline_s
    problem =
  let sp =
    Obs.Trace.span_begin "pipeline.solve_relaxation"
      ~attrs:
        [
          ("vars", Obs.Trace.Int (Lp.Problem.nvars problem));
          ("rows", Obs.Trace.Int (Lp.Problem.nrows problem));
        ]
  in
  match
    solve_relaxation_raw ?solver ?reuse ?warm ?warm_full ?inject_nan
      ?deadline_s problem
  with
  | r ->
    count_path r.path;
    Obs.Trace.span_end sp
      ~attrs:[ ("path", Obs.Trace.Str (path_label r.path)) ];
    r
  | exception e ->
    Obs.Trace.span_end sp ~attrs:[ ("path", Obs.Trace.Str "exception") ];
    raise e

(* Turn a feasible relaxation outcome into a pipeline result: round the
   fractional point, evaluate the integral placement, report the gap. *)
let finish ~round ~path model cls worst_qos sol =
  let problem = model.Mcperf.Model.problem in
  let lower_bound = sol.bound +. model.Mcperf.Model.objective_offset in
  let rounded =
    (* Rounding a heavily truncated fractional point is the slowest stage
       of a degraded cell (the greedy repair has far more violations to
       fix), and unlike the solver it has no checkpoints. When the cell's
       budget is already spent, skip it: the certified bound is this
       cell's deliverable; the rounded column degrades to "-".
       [task_expired] never reads the clock on unbudgeted runs. *)
    if Util.Parallel.task_expired () then begin
      Log.info (fun f ->
          f "budget spent for class %s: skipping rounding"
            cls.Mcperf.Classes.name);
      None
    end
    else
      match round model ~x:sol.point with
      | Ok r -> Some r
      | Error msg ->
        Log.warn (fun f ->
            f "rounding failed for class %s: %s" cls.Mcperf.Classes.name msg);
        None
  in
  let gap =
    match rounded with
    | Some r when r.Rounding.Round.evaluation.Mcperf.Costing.total > 0. ->
      Some
        ((r.Rounding.Round.evaluation.Mcperf.Costing.total -. lower_bound)
        /. r.Rounding.Round.evaluation.Mcperf.Costing.total)
    | Some _ | None -> None
  in
  {
    class_name = cls.Mcperf.Classes.name;
    feasible = true;
    lower_bound;
    rounded;
    gap;
    exact = sol.exact_sol;
    lp_iterations = sol.iterations;
    vars = Lp.Problem.nvars problem;
    rows = Lp.Problem.nrows problem;
    max_feasible_qos = worst_qos;
    solve_path = path;
    quality = sol.sol_quality;
    rel_gap = sol.sol_rel_gap;
    certificate = Option.map (fun d -> Dual d) sol.dual;
  }

(* --- exact tree producer ------------------------------------------------- *)

(* Third bound producer: on tree instances where {!Tree_dp.of_spec}
   proves the closest-allocation DP exact, the cell's lower bound and its
   rounded solution are the same integer optimum and the gap is zero by
   construction — no LP is built at all. Belt and braces before claiming
   exactness: the DP placement is re-evaluated through [Costing] (the
   same arithmetic that judges heuristics and rounded LP points) and must
   meet the goal, respect permissions, and reproduce the DP's own cost;
   any disagreement — e.g. a demand sitting exactly on the QoS threshold
   where accumulated path sums and the Dijkstra latency matrix could
   round differently — silently falls back to the LP chain. Eligibility
   is a pure function of (spec, class, fraction, placeable), so sweeps
   stay byte-identical at every [--jobs]. *)
let tree_cell ?placeable spec cls perm worst_qos =
  match Tree_dp.of_spec ?placeable spec cls with
  | Error reason ->
    Log.debug (fun f ->
        f "class %s: tree-dp ineligible (%s)" cls.Mcperf.Classes.name reason);
    None
  | Ok inst -> (
    match Tree_dp.solve inst with
    | Tree_dp.Unsatisfiable _ ->
      (* Let the LP chain certify infeasibility with a Farkas ray. *)
      None
    | Tree_dp.Optimal { cost; placement } ->
      let pl = Tree_dp.placement_of inst placement in
      let ev = Mcperf.Costing.evaluate perm pl in
      if
        ev.Mcperf.Costing.meets_goal
        && Mcperf.Costing.respects_permissions perm pl
        && Float.abs (ev.Mcperf.Costing.total -. cost)
           <= 1e-6 *. (1. +. Float.abs cost)
      then begin
        count_path Path_tree_dp;
        let lower_bound = ev.Mcperf.Costing.total in
        Some
          {
            class_name = cls.Mcperf.Classes.name;
            feasible = true;
            lower_bound;
            rounded =
              Some
                {
                  Rounding.Round.placement = pl;
                  evaluation = ev;
                  rounded_up = 0;
                  rounded_down = 0;
                  repaired = 0;
                };
            gap = (if lower_bound > 0. then Some 0. else None);
            exact = true;
            lp_iterations = 0;
            vars = 0;
            rows = 0;
            max_feasible_qos = worst_qos;
            solve_path = Path_tree_dp;
            quality = Exact;
            rel_gap = 0.;
            certificate = None;
          }
      end
      else begin
        Log.warn (fun f ->
            f
              "class %s: tree-dp solution failed Costing verification \
               (dp %g, evaluated %g, meets_goal %b): falling back to LP"
              cls.Mcperf.Classes.name cost ev.Mcperf.Costing.total
              ev.Mcperf.Costing.meets_goal);
        None
      end)

(* What a successful LP leg leaves behind for the next epoch of an
   online solve: the model's variable identities, the solution point in
   the model's own space, and the prepared PDHG image. *)
type warm_state = {
  w_kinds : Mcperf.Model.var_kind array;
  w_point : float array;
  w_prep : Lp.Pdhg.prepared option;
}

let compute_with ?(solver = Auto) ?placeable ?reuse ?lift spec cls =
  let perm = Mcperf.Permission.compute ?placeable spec cls in
  let worst_qos =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos _ ->
      Array.fold_left Float.min 1. (Mcperf.Permission.max_feasible_qos perm)
    | Mcperf.Spec.Avg_latency _ -> 1.
  in
  if not (Mcperf.Permission.feasible perm) then begin
    (* Even oracle-detected infeasibility gets a checkable witness: the
       model builder emits the unsatisfiable QoS rows verbatim, so a
       single-row Farkas scan certifies the ceiling independently. *)
    let model = Mcperf.Model.build perm in
    ( infeasible_result
        ?ray:(farkas_of model.Mcperf.Model.problem)
        cls worst_qos,
      None )
  end
  else begin
    let dp =
      match solver with
      | Auto -> tree_cell ?placeable spec cls perm worst_qos
      | Exact_simplex | First_order _ -> None
    in
    match dp with
    | Some cell -> (cell, None)
    | None -> (
      let model = Mcperf.Model.build perm in
      Log.info (fun f ->
          f "class %s: %a" cls.Mcperf.Classes.name Mcperf.Model.pp_stats model);
      let round =
        match spec.Mcperf.Spec.goal with
        | Mcperf.Spec.Qos _ -> Rounding.Round.round
        | Mcperf.Spec.Avg_latency _ -> Rounding.Round_avg.round
      in
      let warm_full = match lift with None -> None | Some f -> f model in
      let r =
        solve_relaxation ~solver ?reuse ?warm_full model.Mcperf.Model.problem
      in
      match r.outcome with
      | None ->
        (* The LP disagreed with the coverage oracle: conservative report. *)
        (infeasible_result ?ray:r.infeasible_ray cls worst_qos, None)
      | Some sol ->
        ( finish ~round ~path:r.path model cls worst_qos sol,
          Some
            {
              w_kinds = model.Mcperf.Model.kinds;
              w_point = sol.point;
              w_prep = r.prep;
            } ))
  end

let compute ?solver ?placeable spec cls =
  fst (compute_with ?solver ?placeable spec cls)

module Online = struct
  type entry = {
    kinds : Mcperf.Model.var_kind array;
    point : float array;
    prep : Lp.Pdhg.prepared option;
  }

  type handle = {
    solver : solver;
    placeable : bool array option;
    use_warm : bool;
    entries : (string, entry) Hashtbl.t;
    mutable solves : int;
    mutable warm_lifts : int;
    mutable lifted_vars : int;
  }

  let create ?(solver = Auto) ?placeable ?(warm = true) () =
    {
      solver;
      placeable;
      use_warm = warm;
      entries = Hashtbl.create 7;
      solves = 0;
      warm_lifts = 0;
      lifted_vars = 0;
    }

  (* Kind-keyed primal lift: epoch models differ in dimension (more
     intervals, possibly more objects), so indices do not line up —
     variable identities do. Every (node, interval, object) variable the
     previous model also had starts at last epoch's value; variables new
     to this epoch start cold. *)
  let lift entry (model : Mcperf.Model.t) =
    let tbl = Hashtbl.create (Array.length entry.kinds) in
    Array.iteri
      (fun j k -> Hashtbl.replace tbl k entry.point.(j))
      entry.kinds;
    let matched = ref 0 in
    let x =
      Array.map
        (fun k ->
          match Hashtbl.find_opt tbl k with
          | Some v ->
            incr matched;
            v
          | None -> 0.)
        model.Mcperf.Model.kinds
    in
    if !matched = 0 then None else Some (x, !matched)

  let solve h spec cls =
    h.solves <- h.solves + 1;
    let key = cls.Mcperf.Classes.name in
    let prev = if h.use_warm then Hashtbl.find_opt h.entries key else None in
    let reuse = match prev with Some e -> e.prep | None -> None in
    let lifted = ref 0 in
    let lift_fn =
      Option.map
        (fun e model ->
          match lift e model with
          | Some (x, m) ->
            lifted := m;
            Some x
          | None -> None)
        prev
    in
    let cell, warm =
      compute_with ~solver:h.solver ?placeable:h.placeable ?reuse
        ?lift:lift_fn spec cls
    in
    if !lifted > 0 then begin
      h.warm_lifts <- h.warm_lifts + 1;
      h.lifted_vars <- h.lifted_vars + !lifted
    end;
    (match warm with
    | Some w ->
      Hashtbl.replace h.entries key
        { kinds = w.w_kinds; point = w.w_point; prep = w.w_prep }
    | None -> ());
    cell

  let solves h = h.solves
  let warm_lifts h = h.warm_lifts
  let lifted_vars h = h.lifted_vars
end

let compare_classes ?solver ?placeable spec classes =
  List.map (fun cls -> compute ?solver ?placeable spec cls) classes

let best_class results =
  List.fold_left
    (fun acc r ->
      if not r.feasible then acc
      else
        match acc with
        | Some best when best.lower_bound <= r.lower_bound -> acc
        | Some _ | None -> Some r)
    None results

let pp ppf t =
  if not t.feasible then
    Format.fprintf ppf "%-32s infeasible (max QoS %.5f)" t.class_name
      t.max_feasible_qos
  else
    Format.fprintf ppf "%-32s bound %10.1f%s%s" t.class_name t.lower_bound
      (match t.rounded with
      | Some r ->
        Printf.sprintf "  rounded %10.1f"
          r.Rounding.Round.evaluation.Mcperf.Costing.total
      | None -> "")
      (match t.gap with
      | Some g -> Printf.sprintf "  gap %5.1f%%" (100. *. g)
      | None -> "")

(* --- certificate recheck ------------------------------------------------- *)

(* Independent verification of a cell's certificate from nothing but the
   spec and the recorded result: rebuild the model the cell was solved
   from, replay the (deterministic) presolve, and re-evaluate the
   certificate arithmetic. A [Dual] witness must reproduce the recorded
   lower bound; a [Farkas] witness must pass [check_farkas] on the
   Ge-normalized full model problem. No solver runs — only the linear
   algebra of the certificate itself. *)
let certify ?placeable spec cls cell =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match cell.certificate with
  | None when cell.solve_path = Path_tree_dp ->
    (* Tree-DP cells carry no LP certificate; their witness is the DP
       itself. Replay it from scratch — eligibility, solve, and the
       Costing evaluation of the optimal placement must all reproduce the
       recorded bound. The DP is deterministic, so this is as strong as
       re-running the cell. *)
    if not cell.feasible then
      fail "%s: tree-dp path on an infeasible cell" cell.class_name
    else (
      match Tree_dp.of_spec ?placeable spec cls with
      | Error reason ->
        fail "%s: tree-dp replay ineligible: %s" cell.class_name reason
      | Ok inst -> (
        match Tree_dp.solve inst with
        | Tree_dp.Unsatisfiable { object_id } ->
          fail "%s: tree-dp replay unsatisfiable for object %d"
            cell.class_name object_id
        | Tree_dp.Optimal { cost = _; placement } ->
          let perm = Mcperf.Permission.compute ?placeable spec cls in
          let ev =
            Mcperf.Costing.evaluate perm (Tree_dp.placement_of inst placement)
          in
          if not ev.Mcperf.Costing.meets_goal then
            fail "%s: replayed tree-dp placement misses the goal"
              cell.class_name
          else if
            Float.abs (ev.Mcperf.Costing.total -. cell.lower_bound)
            <= 1e-6 *. (1. +. Float.abs cell.lower_bound)
          then Ok ()
          else
            fail
              "%s: replayed tree-dp optimum %.12g does not match recorded \
               %.12g"
              cell.class_name ev.Mcperf.Costing.total cell.lower_bound))
  | None -> fail "%s: no certificate attached" cell.class_name
  | Some (Farkas ray) ->
    if cell.feasible then
      fail "%s: Farkas certificate on a feasible cell" cell.class_name
    else begin
      let perm = Mcperf.Permission.compute ?placeable spec cls in
      let model = Mcperf.Model.build perm in
      let norm = Lp.Problem.normalize_ge model.Mcperf.Model.problem in
      if Array.length ray <> Lp.Problem.nrows norm then
        fail "%s: Farkas ray has %d entries, model has %d rows"
          cell.class_name (Array.length ray) (Lp.Problem.nrows norm)
      else if Lp.Certificate.check_farkas norm ~ray then Ok ()
      else fail "%s: Farkas ray rejected by check_farkas" cell.class_name
    end
  | Some (Dual y) ->
    if not cell.feasible then
      fail "%s: dual certificate on an infeasible cell" cell.class_name
    else begin
      let perm = Mcperf.Permission.compute ?placeable spec cls in
      if not (Mcperf.Permission.feasible perm) then
        fail "%s: rebuilt model is infeasible" cell.class_name
      else begin
        let model = Mcperf.Model.build perm in
        let pre = Lp.Presolve.run model.Mcperf.Model.problem in
        match pre.Lp.Presolve.status with
        | `Infeasible ->
          fail "%s: presolve replay reports infeasible" cell.class_name
        | `Unchanged | `Reduced ->
          let red = pre.Lp.Presolve.reduced in
          if Array.length y <> Lp.Problem.nrows red then
            fail "%s: dual has %d entries, reduced problem has %d rows"
              cell.class_name (Array.length y) (Lp.Problem.nrows red)
          else begin
            let bound =
              Lp.Certificate.dual_bound (Lp.Problem.normalize_ge red) ~y
              +. pre.Lp.Presolve.offset
              +. model.Mcperf.Model.objective_offset
            in
            if not (Float.is_finite bound) then
              fail "%s: replayed dual bound is not finite" cell.class_name
            else if
              Float.abs (bound -. cell.lower_bound)
              <= 1e-6 *. (1. +. Float.abs cell.lower_bound)
            then Ok ()
            else
              fail "%s: replayed dual bound %.12g does not match recorded \
                    %.12g"
                cell.class_name bound cell.lower_bound
          end
      end
    end

type task_stat = {
  label : string;
  x : float;
  wall_s : float;
  iterations : int;
  solved_exactly : bool;
  cell_path : solve_path;
  cell_quality : quality;
  cell_rel_gap : float;
}

type sweep = {
  per_class : (string * (float * t) list) list;
  stats : task_stat list;
  jobs : int;
  elapsed_s : float;
  pool : Util.Parallel.pool_stats;
  resumed : int;
}

let path_counts sweep =
  List.map
    (fun path ->
      let n =
        List.fold_left
          (fun acc (_, series) ->
            List.fold_left
              (fun acc (_, r) -> if r.solve_path = path then acc + 1 else acc)
              acc series)
          0 sweep.per_class
      in
      (path, n))
    all_paths

let quality_counts sweep =
  List.map
    (fun q ->
      let n =
        List.fold_left
          (fun acc (_, series) ->
            List.fold_left
              (fun acc (_, r) -> if r.quality = q then acc + 1 else acc)
              acc series)
          0 sweep.per_class
      in
      (q, n))
    all_qualities

(* --- checkpoint journal -------------------------------------------------- *)

(* A sweep journal is a plain text file: a header line carrying a
   fingerprint of the sweep's identity (labels, class names, fractions,
   latency threshold), then one line per completed cell. Each record is
   the MD5 digest of its payload followed by the hex-encoded marshaled
   [(key, (result, wall_s))] triple, so a torn tail from a crash is
   detected and dropped rather than crashing the loader. The whole file
   is rewritten to a temp path and [rename]d on every completion — the
   journal on disk is always a complete, self-consistent prefix of the
   sweep. It is deleted when the sweep finishes. *)

let cell_key label fraction = Printf.sprintf "%s|%.17g" label fraction

(* v2: cell payloads gained quality/certificate fields and the
   fingerprint covers the time-budget configuration, so a journal written
   under one budget is never replayed into a sweep running under another
   (degraded bounds must not masquerade as unconstrained ones).
   v3: [solve_path] gained the [Path_tree_dp] constructor, which shifts
   the Marshal tags of every later constructor — a v2 payload would
   deserialize into the wrong path, so v2 journals are discarded. *)
let journal_magic = "# replica-select sweep journal v3"

let sweep_fingerprint ?(deadline_s = infinity) ?(cell_budget_s = infinity)
    ~tlat_ms ~fractions classes =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "tlat=%.17g" tlat_ms);
  Buffer.add_string b
    (Printf.sprintf ";deadline=%.17g;cell-budget=%.17g" deadline_s
       cell_budget_s);
  List.iter (fun x -> Buffer.add_string b (Printf.sprintf ";%.17g" x)) fractions;
  List.iter
    (fun (label, cls) ->
      Buffer.add_string b
        (Printf.sprintf ";%s=%s" label cls.Mcperf.Classes.name))
    classes;
  Digest.to_hex (Digest.string (Buffer.contents b))

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then None
  else
    try
      Some
        (String.init (n / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))
    with Failure _ | Invalid_argument _ -> None

let journal_header fingerprint =
  Printf.sprintf "%s fingerprint=%s" journal_magic fingerprint

(* Why a journal scan stopped. One scanner backs both loader APIs: the
   strict result-first [load_journal_result] maps every non-complete
   stop onto a structured [Util.Parse_error.t], while the tolerant
   [load_journal] keeps the historical never-fails contract (fewer
   cached cells, a warning, never an error). *)
type journal_scan_stop =
  | Scan_complete
  | Scan_missing  (** no file at the path *)
  | Scan_no_header  (** empty file: not even a header line *)
  | Scan_header_mismatch  (** wrong magic or fingerprint on line 1 *)
  | Scan_bad_record of int * string  (** 1-based line number, defect *)

let scan_journal ~fingerprint path =
  if not (Sys.file_exists path) then ([], Scan_missing)
  else begin
    let ic = open_in_bin path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    match List.rev !lines with
    | [] -> ([], Scan_no_header)
    | header :: records ->
      if not (String.equal header (journal_header fingerprint)) then
        ([], Scan_header_mismatch)
      else begin
        let entries = ref [] in
        let stop = ref Scan_complete in
        (try
           List.iteri
             (fun i line ->
               let bad msg =
                 stop := Scan_bad_record (i + 2, msg);
                 raise Exit
               in
               if String.trim line = "" then bad "empty record line";
               match String.index_opt line ' ' with
               | None -> bad "missing digest separator"
               | Some j -> (
                 let digest = String.sub line 0 j in
                 let payload_hex =
                   String.sub line (j + 1) (String.length line - j - 1)
                 in
                 match string_of_hex payload_hex with
                 | None -> bad "payload is not hex"
                 | Some payload ->
                   if
                     not
                       (String.equal
                          (Digest.to_hex (Digest.string payload))
                          digest)
                   then bad "record digest mismatch"
                   else
                     let key, (cell, wall_s) =
                       (Marshal.from_string payload 0
                         : string * (t * float))
                     in
                     entries := (key, (cell, wall_s)) :: !entries))
             records
         with Exit -> ());
        (List.rev !entries, !stop)
      end
  end

(* Strict loader: every way the journal can be unusable is a structured
   error ([line] pins the first bad line; 0 means the whole file). A
   bad-record error still names the defect, but returns no prefix —
   callers that want salvage semantics use [load_journal]. *)
let load_journal_result ~fingerprint path :
    ((string * (t * float)) list, Util.Parse_error.t) result =
  let entries, stop = scan_journal ~fingerprint path in
  match stop with
  | Scan_complete -> Ok entries
  | Scan_missing ->
    Error { Util.Parse_error.file = path; line = 0; msg = "no such journal" }
  | Scan_no_header ->
    Error
      { Util.Parse_error.file = path; line = 1; msg = "missing journal header" }
  | Scan_header_mismatch ->
    Error
      {
        Util.Parse_error.file = path;
        line = 1;
        msg =
          "journal header does not match this sweep's fingerprint \
           (different classes, fractions, threshold or journal version)";
      }
  | Scan_bad_record (line, msg) ->
    Error
      {
        Util.Parse_error.file = path;
        line;
        msg = Printf.sprintf "corrupt journal record: %s" msg;
      }

(* Load the completed-cell table from a journal. Tolerant by design: a
   missing file, a stale fingerprint, or a corrupt/truncated tail just
   mean fewer cached cells — the sweep recomputes whatever is absent. *)
let load_journal ~fingerprint path : (string, t * float) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  let entries, stop = scan_journal ~fingerprint path in
  (match stop with
  | Scan_complete | Scan_missing | Scan_no_header -> ()
  | Scan_header_mismatch ->
    Log.warn (fun f ->
        f
          "journal %s does not match this sweep (different classes, \
           fractions or threshold): ignoring it"
          path)
  | Scan_bad_record _ ->
    Log.warn (fun f ->
        f "journal %s has a corrupt tail: dropping it (%d cells kept)" path
          (List.length entries)));
  (match stop with
  | Scan_header_mismatch -> ()
  | _ -> List.iter (fun (k, v) -> Hashtbl.replace tbl k v) entries);
  tbl

let write_journal ~fingerprint path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (journal_header fingerprint);
  output_char oc '\n';
  List.iter
    (fun (key, cell, wall_s) ->
      let payload = Marshal.to_string ((key, (cell, wall_s)) : string * (t * float)) [] in
      output_string oc (Digest.to_hex (Digest.string payload));
      output_char oc ' ';
      output_string oc (hex_of_string payload);
      output_char oc '\n')
    entries;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp path

(* --- cell solver ---------------------------------------------------------- *)

(* The per-cell solve of [sweep_classes], factored to toplevel so the
   same code runs behind every transport: the sequential path, local
   fork workers, and remote TCP worker sessions (the [Dist.Registry]
   entry below). Each call builds fresh per-process incremental state:
   the first cell of a class builds the model; subsequent cells of the
   same class (in the same process) patch only the QoS rhs and reuse the
   prepared constraint matrix. Because a patched model is
   value-identical to a fresh build at its fraction, and every cell
   starts the solver cold, the results do not depend on which cell
   seeded which cache — the sweep stays byte-identical however the
   cells are distributed. *)
let make_cell_solver ~solver ?placeable ~tlat_ms spec =
  let model_cache : (string, Mcperf.Model.t * float) Hashtbl.t =
    Hashtbl.create 8
  in
  let prep_cache : (string, Lp.Pdhg.prepared) Hashtbl.t = Hashtbl.create 8 in
  let solve_cell (key, label, cls, fraction) =
    (* Deterministic fault-injection points: both fire only inside a pool
       worker on a task's first attempt, so the supervisor's retry always
       completes the cell. *)
    Util.Faults.crash_point ~key;
    Util.Faults.stall_point ~key;
    let spec =
      { spec with Mcperf.Spec.goal = Mcperf.Spec.Qos { tlat_ms; fraction } }
    in
    let cached = Hashtbl.find_opt model_cache label in
    let perm, worst_qos =
      match cached with
      | Some (base, worst_qos) ->
        ( Mcperf.Permission.with_fraction base.Mcperf.Model.permission
            fraction,
          worst_qos )
      | None ->
        let perm = Mcperf.Permission.compute ?placeable spec cls in
        let worst_qos =
          Array.fold_left Float.min 1.
            (Mcperf.Permission.max_feasible_qos perm)
        in
        (perm, worst_qos)
    in
    if not (Mcperf.Permission.feasible perm) then begin
      (* Attach a verified Farkas ray so the feasibility ceiling is
         certified, not just asserted. [with_fraction] is value-identical
         to a fresh build, so the witness is cache-independent. *)
      let model =
        match cached with
        | Some (base, _) -> Mcperf.Model.with_fraction base fraction
        | None -> Mcperf.Model.build perm
      in
      infeasible_result
        ?ray:(farkas_of model.Mcperf.Model.problem)
        cls worst_qos
    end
    else begin
      (* Exact tree cells bypass the model/prep caches entirely; LP cells
         behave exactly as before, so mixed tree/LP series (atomicity can
         hold at one fraction and fail at another) stay deterministic. *)
      let dp =
        match solver with
        | Auto -> tree_cell ?placeable spec cls perm worst_qos
        | Exact_simplex | First_order _ -> None
      in
      match dp with
      | Some cell -> cell
      | None ->
      let model =
        match cached with
        | Some (base, _) -> Mcperf.Model.with_fraction base fraction
        | None ->
          let m = Mcperf.Model.build perm in
          Hashtbl.replace model_cache label (m, worst_qos);
          m
      in
      let reuse = Hashtbl.find_opt prep_cache label in
      let inject_nan = Util.Faults.diverge_requested ~key in
      (* Remaining share of the cell's budget, installed by the pool from
         [budget_of] at dispatch. Unbudgeted sweeps never read the clock
         here, preserving byte-identical output at every [--jobs]. *)
      let deadline_s =
        let d = Util.Parallel.task_deadline () in
        if Float.is_finite d then Some (d -. Unix.gettimeofday ()) else None
      in
      let r =
        solve_relaxation ~solver ?reuse ~inject_nan ?deadline_s
          model.Mcperf.Model.problem
      in
      (match r.prep with
      | Some p -> Hashtbl.replace prep_cache label p
      | None -> ());
      match r.outcome with
      | None -> infeasible_result ?ray:r.infeasible_ray cls worst_qos
      | Some sol ->
        finish ~round:Rounding.Round.round ~path:r.path model cls worst_qos sol
    end
  in
  (* Each cell gets a span in its task scope, tagged with the class and
     fraction it computed and how the solve went. *)
  fun ((_, label, _, fraction) as cell) ->
    Obs.Metrics.incr (Lazy.force m_cells);
    let sp =
      Obs.Trace.span_begin "pipeline.cell"
        ~attrs:
          [
            ("class", Obs.Trace.Str label);
            ("fraction", Obs.Trace.Float fraction);
          ]
    in
    match solve_cell cell with
    | r ->
      Obs.Trace.span_end sp
        ~attrs:
          [
            ("path", Obs.Trace.Str (path_label r.solve_path));
            ("quality", Obs.Trace.Str (quality_label r.quality));
          ];
      r
    | exception e ->
      Obs.Trace.span_end sp;
      raise e

(* --- distributed dispatch ------------------------------------------------- *)

(* Everything a remote worker session needs to solve any pending cell of
   one sweep: plain data only (specs, class tables, the pending cell
   array), marshaled once into the session handshake. The task protocol
   then ships bare indices into [dc_cells]. *)
type dist_cell_ctx = {
  dc_spec : Mcperf.Spec.t;
  dc_tlat_ms : float;
  dc_placeable : bool array option;
  dc_solver : solver;
  dc_cells : (string * string * Mcperf.Classes.t * float) array;
}

let dist_fn = "pipeline.sweep-cell"

let () =
  Dist.Registry.register dist_fn (fun blob ->
      let ctx = (Marshal.from_string blob 0 : dist_cell_ctx) in
      let solve =
        make_cell_solver ~solver:ctx.dc_solver ?placeable:ctx.dc_placeable
          ~tlat_ms:ctx.dc_tlat_ms ctx.dc_spec
      in
      fun index -> Marshal.to_string (solve ctx.dc_cells.(index) : t) [])

(* Sweep knobs as one record with [with_*] builders: call sites stay
   readable and new knobs ride along without touching every caller. *)
module Sweep_config = struct
  type t = {
    jobs : int;
    solver : solver;
    placeable : bool array option;
    timeout_s : float option;
    deadline_s : float;
    cell_budget_s : float;
    journal : string option;
    progress : (completed:int -> total:int -> unit) option;
    obs : Obs.Config.t option;
    workers : (string * int) list;
        (* remote TCP workers ([host, port]); [] = local-only sweep *)
  }

  let default =
    {
      jobs = 1;
      solver = Auto;
      placeable = None;
      timeout_s = None;
      deadline_s = infinity;
      cell_budget_s = infinity;
      journal = None;
      progress = None;
      obs = None;
      workers = [];
    }

  let with_jobs jobs t = { t with jobs }
  let with_solver solver t = { t with solver }
  let with_placeable placeable t = { t with placeable = Some placeable }
  let with_timeout timeout_s t = { t with timeout_s = Some timeout_s }
  let with_deadline deadline_s t = { t with deadline_s }
  let with_cell_budget cell_budget_s t = { t with cell_budget_s }
  let with_journal journal t = { t with journal = Some journal }
  let with_progress progress t = { t with progress = Some progress }
  let with_obs obs t = { t with obs = Some obs }
  let with_workers workers t = { t with workers }
end

let sweep_classes (cfg : Sweep_config.t) spec ~fractions classes =
  let {
    Sweep_config.jobs;
    solver;
    placeable;
    timeout_s;
    deadline_s;
    cell_budget_s;
    journal;
    progress;
    obs;
    workers;
  } =
    cfg
  in
  (* Install the sweep's observability view before any instrumentation
     fires (and before workers fork, so they inherit it). [None] keeps
     whatever the caller installed ambiently. *)
  (match obs with Some o -> Obs.Config.install o | None -> ());
  let tlat_ms =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos { tlat_ms; _ } -> tlat_ms
    | Mcperf.Spec.Avg_latency _ ->
      invalid_arg "Pipeline.sweep_classes: requires a QoS goal"
  in
  let deadline_s = if deadline_s > 0. then deadline_s else infinity in
  let cell_budget_s = if cell_budget_s > 0. then cell_budget_s else infinity in
  let budgeted =
    Float.is_finite deadline_s || Float.is_finite cell_budget_s
  in
  let keyed_cells =
    List.concat_map
      (fun (label, cls) ->
        List.map
          (fun fraction -> (cell_key label fraction, label, cls, fraction))
          fractions)
      classes
  in
  let fingerprint =
    sweep_fingerprint ~deadline_s ~cell_budget_s ~tlat_ms ~fractions classes
  in
  let done_tbl =
    match journal with
    | None -> Hashtbl.create 0
    | Some path -> load_journal ~fingerprint path
  in
  let pending =
    List.filter (fun (k, _, _, _) -> not (Hashtbl.mem done_tbl k)) keyed_cells
  in
  let resumed = List.length keyed_cells - List.length pending in
  if resumed > 0 then
    Log.info (fun f ->
        f "resuming sweep: %d/%d cells restored from journal" resumed
          (List.length keyed_cells));
  let solve = make_cell_solver ~solver ?placeable ~tlat_ms spec in
  let total = List.length keyed_cells in
  let completed_count = ref resumed in
  let journal_entries =
    ref (Hashtbl.fold (fun k (c, w) acc -> (k, c, w) :: acc) done_tbl [])
  in
  let pending_arr = Array.of_list pending in
  let on_result i (res : t Util.Parallel.result) =
    let k, _, _, _ = pending_arr.(i) in
    incr completed_count;
    (match journal with
    | Some path ->
      journal_entries :=
        (k, res.Util.Parallel.value, res.Util.Parallel.wall_s)
        :: !journal_entries;
      write_journal ~fingerprint path !journal_entries;
      (* Injected coordinator death, placed *after* the checkpoint hits
         disk: the journal is a complete prefix when we die, so a re-run
         resumes exactly the remaining cells. [nth] counts checkpoints
         written by this run (resumed cells never re-checkpoint). *)
      Util.Faults.coordinator_kill_point ~nth:(!completed_count - resumed)
    | None -> ());
    match progress with
    | Some f -> f ~completed:!completed_count ~total
    | None -> ()
  in
  (* Remote endpoint factories: each worker address becomes one pool
     slot feeding the same pending-cell array by index. The context blob
     is marshaled once per sweep and shipped in each session handshake;
     reconnect/backoff/blacklist policy lives in [Dist.Client]. *)
  let remote =
    match workers with
    | [] -> []
    | ws ->
      let ctx =
        Marshal.to_string
          {
            dc_spec = spec;
            dc_tlat_ms = tlat_ms;
            dc_placeable = placeable;
            dc_solver = solver;
            dc_cells = pending_arr;
          }
          []
      in
      List.map
        (fun (host, port) -> Dist.Client.factory ~host ~port ~fn:dist_fn ~ctx)
        ws
  in
  let sweep_sp =
    Obs.Trace.span_begin "pipeline.sweep"
      ~attrs:
        [
          ("classes", Obs.Trace.Int (List.length classes));
          ("fractions", Obs.Trace.Int (List.length fractions));
          ("cells", Obs.Trace.Int total);
          ("resumed", Obs.Trace.Int resumed);
        ]
  in
  let t0 = Unix.gettimeofday () in
  (* Time governor: apportion what is left of the global deadline across
     the cells still outstanding. A cell's share is
       min(cell cap, remaining, remaining * eff_jobs / cells_left)
     — with [eff_jobs] concurrent workers, [cells_left] cells share
     [remaining] wall-clock at [eff_jobs] cells a time. Re-evaluated at
     every dispatch (so cells that finish early donate their slack to the
     rest) and clamped at 0 so late cells still run their first
     checkpointed block and return a valid, if loose, bound. Unbudgeted
     sweeps pass no [budget_of] at all: no clocks, no behavior change. *)
  let budget_of =
    if not budgeted then None
    else begin
      let width =
        (if jobs <= 1 then 1 else jobs) + List.length workers
      in
      let eff_jobs = max 1 (min width (List.length pending)) in
      Some
        (fun _index ->
          let remaining = deadline_s -. (Unix.gettimeofday () -. t0) in
          let cells_left =
            max 1 (List.length pending - (!completed_count - resumed))
          in
          let share =
            remaining *. float_of_int eff_jobs /. float_of_int cells_left
          in
          Float.max 0. (Float.min cell_budget_s (Float.min remaining share)))
    end
  in
  let outcomes =
    Util.Parallel.map ~jobs ?timeout_s ?budget_of ~remote ~on_result ~f:solve
      pending
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Obs.Trace.span_end sweep_sp
    ~attrs:[ ("wall_elapsed_s", Obs.Trace.Float elapsed_s) ];
  (match journal with
  | Some path ->
    if Sys.file_exists path then Sys.remove path;
    let tmp = path ^ ".tmp" in
    if Sys.file_exists tmp then Sys.remove tmp
  | None -> ());
  let result_tbl : (string, t * float) Hashtbl.t = Hashtbl.create total in
  Hashtbl.iter (fun k v -> Hashtbl.replace result_tbl k v) done_tbl;
  List.iter2
    (fun (k, _, _, _) (o : t Util.Parallel.result) ->
      Hashtbl.replace result_tbl k
        (o.Util.Parallel.value, o.Util.Parallel.wall_s))
    pending outcomes;
  let lookup k = Hashtbl.find result_tbl k in
  let stats =
    List.map
      (fun (k, label, _, fraction) ->
        let cell, wall_s = lookup k in
        {
          label;
          x = fraction;
          wall_s;
          iterations = cell.lp_iterations;
          solved_exactly = cell.exact;
          cell_path = cell.solve_path;
          cell_quality = cell.quality;
          cell_rel_gap = cell.rel_gap;
        })
      keyed_cells
  in
  let per_class =
    List.map
      (fun (label, _) ->
        ( label,
          List.filter_map
            (fun (k, l, _, fraction) ->
              if String.equal l label then Some (fraction, fst (lookup k))
              else None)
            keyed_cells ))
      classes
  in
  {
    per_class;
    stats;
    jobs = (if jobs <= 1 then 1 else jobs);
    elapsed_s;
    pool = Util.Parallel.last_pool_stats ();
    resumed;
  }

let sweep_qos ?(solver = Auto) ?placeable spec fractions cls =
  let tlat_ms =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos { tlat_ms; _ } -> tlat_ms
    | Mcperf.Spec.Avg_latency _ ->
      invalid_arg "Pipeline.sweep_qos: requires a QoS goal"
  in
  let base = ref None in
  let prep = ref None in
  let warm = ref None in
  List.map
    (fun fraction ->
      let spec =
        {
          spec with
          Mcperf.Spec.goal = Mcperf.Spec.Qos { tlat_ms; fraction };
        }
      in
      let perm =
        match !base with
        | Some (m : Mcperf.Model.t) ->
          Mcperf.Permission.with_fraction m.Mcperf.Model.permission fraction
        | None -> Mcperf.Permission.compute ?placeable spec cls
      in
      let worst_qos =
        Array.fold_left Float.min 1. (Mcperf.Permission.max_feasible_qos perm)
      in
      if not (Mcperf.Permission.feasible perm) then begin
        let model =
          match !base with
          | Some m -> Mcperf.Model.with_fraction m fraction
          | None -> Mcperf.Model.build perm
        in
        ( fraction,
          infeasible_result
            ?ray:(farkas_of model.Mcperf.Model.problem)
            cls worst_qos )
      end
      else begin
        let dp =
          match solver with
          | Auto -> tree_cell ?placeable spec cls perm worst_qos
          | Exact_simplex | First_order _ -> None
        in
        match dp with
        | Some cell -> (fraction, cell)
        | None ->
        let model =
          match !base with
          | Some m -> Mcperf.Model.with_fraction m fraction
          | None ->
            let m = Mcperf.Model.build perm in
            base := Some m;
            m
        in
        let r =
          solve_relaxation ~solver ?reuse:!prep ?warm:!warm
            model.Mcperf.Model.problem
        in
        (match r.prep with Some p -> prep := Some p | None -> ());
        (match r.warm with Some w -> warm := Some w | None -> ());
        match r.outcome with
        | None ->
          (fraction, infeasible_result ?ray:r.infeasible_ray cls worst_qos)
        | Some sol ->
          ( fraction,
            finish ~round:Rounding.Round.round ~path:r.path model cls
              worst_qos sol )
      end)
    fractions
