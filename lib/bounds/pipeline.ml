type solver =
  | Auto
  | Exact_simplex
  | First_order of Lp.Pdhg.options

type t = {
  class_name : string;
  feasible : bool;
  lower_bound : float;
  rounded : Rounding.Round.result option;
  gap : float option;
  exact : bool;
  lp_iterations : int;
  vars : int;
  rows : int;
  max_feasible_qos : float;
}

let src = Logs.Src.create "bounds" ~doc:"lower-bound pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

let default_pdhg_options =
  { Lp.Pdhg.default_options with max_iters = 40_000; rel_tol = 1e-4 }

let simplex_size_limit = 260

let infeasible_result cls worst_qos =
  {
    class_name = cls.Mcperf.Classes.name;
    feasible = false;
    lower_bound = infinity;
    rounded = None;
    gap = None;
    exact = true;
    lp_iterations = 0;
    vars = 0;
    rows = 0;
    max_feasible_qos = worst_qos;
  }

(* --- shared LP-relaxation solve ----------------------------------------- *)

(* One solve of a model's LP relaxation, used by [compute] and both sweep
   drivers: presolve, pick the solver on the *original* dimensions (so the
   choice is stable across reductions), solve the reduced problem, and map
   the point and the certified bound back through [restore]/[offset].
   [reuse] threads a prepared PDHG image across structurally identical
   sweep models; [warm] carries reduced-space iterates between consecutive
   QoS fractions. *)
type relaxation = {
  outcome : (float array * float * bool * int) option;
      (* original-space x, certified bound (presolve offset folded in),
         solved exactly, LP iterations; [None] when the LP is infeasible *)
  prep : Lp.Pdhg.prepared option;  (* for the next cell's [reuse] *)
  warm : (float array * float array) option;  (* reduced-space iterates *)
}

let no_solution = { outcome = None; prep = None; warm = None }

let solve_relaxation ?(solver = Auto) ?reuse ?warm problem =
  let vars = Lp.Problem.nvars problem and rows = Lp.Problem.nrows problem in
  let pre = Lp.Presolve.run problem in
  match pre.Lp.Presolve.status with
  | `Infeasible -> no_solution
  | `Unchanged | `Reduced ->
    let red = pre.Lp.Presolve.reduced in
    if Lp.Problem.nvars red = 0 then
      (* Presolve solved the whole LP: the fixed assignment is the unique
         feasible point, hence optimal. *)
      {
        outcome =
          Some (pre.Lp.Presolve.restore [||], pre.Lp.Presolve.offset, true, 0);
        prep = None;
        warm = None;
      }
    else begin
      let use_simplex =
        match solver with
        | Exact_simplex -> true
        | First_order _ -> false
        | Auto -> vars <= simplex_size_limit && rows <= simplex_size_limit
      in
      if use_simplex then
        match Lp.Simplex.solve red with
        | Lp.Simplex.Optimal { x; objective } ->
          {
            outcome =
              Some
                ( pre.Lp.Presolve.restore x,
                  objective +. pre.Lp.Presolve.offset,
                  true,
                  0 );
            prep = None;
            warm = None;
          }
        | Lp.Simplex.Infeasible -> no_solution
        | Lp.Simplex.Unbounded ->
          invalid_arg "Bounds.Pipeline: unbounded MC-PERF relaxation"
      else begin
        let options =
          match solver with
          | First_order o -> o
          | Auto | Exact_simplex -> default_pdhg_options
        in
        let prep = Lp.Pdhg.prepare ?reuse red in
        let x0, y0 =
          match warm with
          | Some (x0, y0)
            when Array.length x0 = Lp.Problem.nvars red
                 && Array.length y0 = Lp.Problem.nrows red ->
            (Some x0, Some y0)
          | Some _ | None -> (None, None)
        in
        let out = Lp.Pdhg.solve_prepared ~options ?x0 ?y0 prep in
        {
          outcome =
            Some
              ( pre.Lp.Presolve.restore out.Lp.Pdhg.x,
                out.Lp.Pdhg.best_bound +. pre.Lp.Presolve.offset,
                false,
                out.Lp.Pdhg.iterations );
          prep = Some prep;
          warm = Some (out.Lp.Pdhg.x, out.Lp.Pdhg.y);
        }
      end
    end

(* Turn a feasible relaxation outcome into a pipeline result: round the
   fractional point, evaluate the integral placement, report the gap. *)
let finish ~round model cls worst_qos (x, bound, exact, iterations) =
  let problem = model.Mcperf.Model.problem in
  let lower_bound = bound +. model.Mcperf.Model.objective_offset in
  let rounded =
    match round model ~x with
    | Ok r -> Some r
    | Error msg ->
      Log.warn (fun f ->
          f "rounding failed for class %s: %s" cls.Mcperf.Classes.name msg);
      None
  in
  let gap =
    match rounded with
    | Some r when r.Rounding.Round.evaluation.Mcperf.Costing.total > 0. ->
      Some
        ((r.Rounding.Round.evaluation.Mcperf.Costing.total -. lower_bound)
        /. r.Rounding.Round.evaluation.Mcperf.Costing.total)
    | Some _ | None -> None
  in
  {
    class_name = cls.Mcperf.Classes.name;
    feasible = true;
    lower_bound;
    rounded;
    gap;
    exact;
    lp_iterations = iterations;
    vars = Lp.Problem.nvars problem;
    rows = Lp.Problem.nrows problem;
    max_feasible_qos = worst_qos;
  }

let compute ?(solver = Auto) ?placeable spec cls =
  let perm = Mcperf.Permission.compute ?placeable spec cls in
  let worst_qos =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos _ ->
      Array.fold_left Float.min 1. (Mcperf.Permission.max_feasible_qos perm)
    | Mcperf.Spec.Avg_latency _ -> 1.
  in
  if not (Mcperf.Permission.feasible perm) then
    infeasible_result cls worst_qos
  else begin
    let model = Mcperf.Model.build perm in
    Log.info (fun f ->
        f "class %s: %a" cls.Mcperf.Classes.name Mcperf.Model.pp_stats model);
    let round =
      match spec.Mcperf.Spec.goal with
      | Mcperf.Spec.Qos _ -> Rounding.Round.round
      | Mcperf.Spec.Avg_latency _ -> Rounding.Round_avg.round
    in
    let r = solve_relaxation ~solver model.Mcperf.Model.problem in
    match r.outcome with
    | None ->
      (* The LP disagreed with the coverage oracle: conservative report. *)
      infeasible_result cls worst_qos
    | Some sol -> finish ~round model cls worst_qos sol
  end

let compare_classes ?solver ?placeable spec classes =
  List.map (fun cls -> compute ?solver ?placeable spec cls) classes

let best_class results =
  List.fold_left
    (fun acc r ->
      if not r.feasible then acc
      else
        match acc with
        | Some best when best.lower_bound <= r.lower_bound -> acc
        | Some _ | None -> Some r)
    None results

let pp ppf t =
  if not t.feasible then
    Format.fprintf ppf "%-32s infeasible (max QoS %.5f)" t.class_name
      t.max_feasible_qos
  else
    Format.fprintf ppf "%-32s bound %10.1f%s%s" t.class_name t.lower_bound
      (match t.rounded with
      | Some r ->
        Printf.sprintf "  rounded %10.1f"
          r.Rounding.Round.evaluation.Mcperf.Costing.total
      | None -> "")
      (match t.gap with
      | Some g -> Printf.sprintf "  gap %5.1f%%" (100. *. g)
      | None -> "")

type task_stat = {
  label : string;
  x : float;
  wall_s : float;
  iterations : int;
  solved_exactly : bool;
}

type sweep = {
  per_class : (string * (float * t) list) list;
  stats : task_stat list;
  jobs : int;
  elapsed_s : float;
}

let sweep_classes ?(jobs = 1) ?(solver = Auto) ?placeable spec ~fractions
    classes =
  let tlat_ms =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos { tlat_ms; _ } -> tlat_ms
    | Mcperf.Spec.Avg_latency _ ->
      invalid_arg "Pipeline.sweep_classes: requires a QoS goal"
  in
  let cells =
    List.concat_map
      (fun (label, cls) ->
        List.map (fun fraction -> (label, cls, fraction)) fractions)
      classes
  in
  (* Per-process incremental state: the first cell of a class builds the
     model; subsequent cells of the same class (in the same worker) patch
     only the QoS rhs and reuse the prepared constraint matrix. Because a
     patched model is value-identical to a fresh build at its fraction,
     and every cell starts the solver cold, the results do not depend on
     which cell seeded the cache — the sweep stays deterministic at any
     [jobs]. *)
  let model_cache : (string, Mcperf.Model.t * float) Hashtbl.t =
    Hashtbl.create 8
  in
  let prep_cache : (string, Lp.Pdhg.prepared) Hashtbl.t = Hashtbl.create 8 in
  let solve (label, cls, fraction) =
    let spec =
      { spec with Mcperf.Spec.goal = Mcperf.Spec.Qos { tlat_ms; fraction } }
    in
    let cached = Hashtbl.find_opt model_cache label in
    let perm, worst_qos =
      match cached with
      | Some (base, worst_qos) ->
        ( Mcperf.Permission.with_fraction base.Mcperf.Model.permission
            fraction,
          worst_qos )
      | None ->
        let perm = Mcperf.Permission.compute ?placeable spec cls in
        let worst_qos =
          Array.fold_left Float.min 1.
            (Mcperf.Permission.max_feasible_qos perm)
        in
        (perm, worst_qos)
    in
    if not (Mcperf.Permission.feasible perm) then
      infeasible_result cls worst_qos
    else begin
      let model =
        match cached with
        | Some (base, _) -> Mcperf.Model.with_fraction base fraction
        | None ->
          let m = Mcperf.Model.build perm in
          Hashtbl.replace model_cache label (m, worst_qos);
          m
      in
      let reuse = Hashtbl.find_opt prep_cache label in
      let r = solve_relaxation ~solver ?reuse model.Mcperf.Model.problem in
      (match r.prep with
      | Some p -> Hashtbl.replace prep_cache label p
      | None -> ());
      match r.outcome with
      | None -> infeasible_result cls worst_qos
      | Some sol ->
        finish ~round:Rounding.Round.round model cls worst_qos sol
    end
  in
  let t0 = Unix.gettimeofday () in
  let outcomes = Util.Parallel.map ~jobs ~f:solve cells in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let stats =
    List.map2
      (fun (label, _, fraction) (o : _ Util.Parallel.result) ->
        {
          label;
          x = fraction;
          wall_s = o.Util.Parallel.wall_s;
          iterations = o.Util.Parallel.value.lp_iterations;
          solved_exactly = o.Util.Parallel.value.exact;
        })
      cells outcomes
  in
  let tagged =
    List.map2
      (fun (label, _, fraction) (o : _ Util.Parallel.result) ->
        (label, fraction, o.Util.Parallel.value))
      cells outcomes
  in
  let per_class =
    List.map
      (fun (label, _) ->
        ( label,
          List.filter_map
            (fun (l, fraction, r) ->
              if String.equal l label then Some (fraction, r) else None)
            tagged ))
      classes
  in
  { per_class; stats; jobs = (if jobs <= 1 then 1 else jobs); elapsed_s }

let sweep_qos ?(solver = Auto) ?placeable spec fractions cls =
  let tlat_ms =
    match spec.Mcperf.Spec.goal with
    | Mcperf.Spec.Qos { tlat_ms; _ } -> tlat_ms
    | Mcperf.Spec.Avg_latency _ ->
      invalid_arg "Pipeline.sweep_qos: requires a QoS goal"
  in
  let base = ref None in
  let prep = ref None in
  let warm = ref None in
  List.map
    (fun fraction ->
      let spec =
        {
          spec with
          Mcperf.Spec.goal = Mcperf.Spec.Qos { tlat_ms; fraction };
        }
      in
      let perm =
        match !base with
        | Some (m : Mcperf.Model.t) ->
          Mcperf.Permission.with_fraction m.Mcperf.Model.permission fraction
        | None -> Mcperf.Permission.compute ?placeable spec cls
      in
      let worst_qos =
        Array.fold_left Float.min 1. (Mcperf.Permission.max_feasible_qos perm)
      in
      if not (Mcperf.Permission.feasible perm) then
        (fraction, infeasible_result cls worst_qos)
      else begin
        let model =
          match !base with
          | Some m -> Mcperf.Model.with_fraction m fraction
          | None ->
            let m = Mcperf.Model.build perm in
            base := Some m;
            m
        in
        let r =
          solve_relaxation ~solver ?reuse:!prep ?warm:!warm
            model.Mcperf.Model.problem
        in
        (match r.prep with Some p -> prep := Some p | None -> ());
        (match r.warm with Some w -> warm := Some w | None -> ());
        match r.outcome with
        | None -> (fraction, infeasible_result cls worst_qos)
        | Some sol ->
          (fraction, finish ~round:Rounding.Round.round model cls worst_qos sol)
      end)
    fractions
