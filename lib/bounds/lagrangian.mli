(** Lagrangian-decomposition lower bounds for MC-PERF.

    The only constraints of the basic QoS formulation that couple objects
    are the per-user QoS rows (2). Relaxing them with multipliers
    [lambda_n >= 0] makes the problem separate into one small subproblem
    per object:

    {v
    L(lambda) = sum_n lambda_n * T_n
              + sum_k min { cost_k(x_k) - sum_n lambda_n * coverage_nk(x_k) }
    v}

    and weak duality gives [L(lambda) <= LP optimum <= IP optimum] for
    {e every} non-negative [lambda] — the same always-valid-bound property
    as {!Lp.Certificate}, obtained by a different route. Each subproblem
    is solved exactly (dense simplex) when small, or itself lower-bounded
    by a short PDHG run's dual certificate when large; both compose into a
    valid overall bound.

    Why this exists alongside the monolithic LP: the subproblems are
    embarrassingly parallel and have constant size as |K| grows, so this
    path scales to object counts where even the first-order solver's
    per-iteration cost hurts (the paper reports 12-hour CPLEX runs at
    K = 1000). It also cross-checks the PDHG bounds in the test suite.

    {b Scaling.} Two mechanisms push this route to 200+ nodes and 10k+
    objects. {e Bundling} ({!Mcperf.Bundle}): objects whose permission
    masks and read cells are identical up to the demand weight share one
    representative subproblem; on homogeneous bundles (equal weights) the
    merged totals are bitwise those of solving every member, so the
    bundled bound equals the unbundled one exactly, and heterogeneous
    members transfer the representative's optimum rescaled by
    [w / w_rep] with a conservative downward nudge (counted in
    [rescaled_members]) that keeps the bound valid. {e Sharding}: each
    iteration's representative solves dispatch through {!Util.Parallel}
    in contiguous shards; only shard ranges and result payloads cross the
    worker pipes, the merge is in fixed object order, and the outcome is
    byte-identical at every [jobs].

    Class support: knowledge/history/reactivity/routing properties are
    honored exactly (they live in the per-object permission masks); the
    per-object replica constraint (17a) is honored exactly; the uniform
    replica constraint and the storage constraints couple objects and are
    dropped, which keeps the bound valid for the class (dropping
    constraints can only lower a minimum) but makes it no tighter than the
    corresponding unconstrained-storage bound. *)

(** Step-size schedule of the projected subgradient ascent. Both rules
    depend only on past iterations, so the trajectory at a smaller
    iteration budget is a prefix of the one at a larger budget and the
    best bound is monotone nondecreasing in the budget. *)
type step_rule =
  | Harmonic
      (** classic divergent-series rule: [step_scale * unit_cost / (1+t)] *)
  | Adaptive
      (** Polyak-style geometric backoff: start at
          [step_scale * unit_cost] and halve after three consecutive
          non-improving iterations — typically far fewer outer iterations
          to a given bound on large instances *)

type outcome = {
  bound : float;  (** best certified lower bound over all iterations *)
  iterations : int;
  lambda : float array;  (** multipliers achieving [bound] *)
  subproblems_exact : int;
      (** representative solves settled exactly (simplex / fixed point) *)
  subproblems_bounded : int;
      (** representative solves lower-bounded by PDHG *)
  objects : int;  (** objects covered by the decomposition *)
  bundles : int;  (** representative subproblems actually solved *)
  rescaled_members : int;
      (** members merged through the guarded weight rescale (0 on a
          homogeneous instance — the bound is then exactly the unbundled
          one) *)
}

val bound :
  ?iterations:int ->
  ?step_scale:float ->
  ?step_rule:step_rule ->
  ?jobs:int ->
  ?bundling:bool ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t ->
  outcome
(** Projected subgradient ascent on the QoS multipliers ([iterations]
    default 60, [step_scale] default 1.0, [step_rule] default
    {!Harmonic} — the historical schedule, [jobs] default 1, [bundling]
    default on). Requires a QoS goal. Infeasible classes (by the
    {!Mcperf.Permission} oracle) yield [infinity]. The result is
    independent of [jobs] to the byte, and independent of [bundling]
    whenever [rescaled_members = 0]. *)

val sweep :
  ?iterations:int ->
  ?step_scale:float ->
  ?step_rule:step_rule ->
  ?jobs:int ->
  ?bundling:bool ->
  Mcperf.Spec.t ->
  Mcperf.Classes.t ->
  fractions:float list ->
  (float * outcome) list
(** [sweep spec cls ~fractions] is [bound] at each QoS fraction, sharing
    the permission analysis, the bundling, and every representative
    subproblem across the whole sweep (the masks never read the
    fraction); multipliers restart cold at each point, so each outcome
    equals the standalone {!bound} at that fraction. *)
